// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) plus the ablations called out in DESIGN.md. Each benchmark prints
// the reproduced rows/series once via b.Log; run with
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/arborescence"
	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/image"
	"repro/internal/objtrace"
	"repro/internal/slm"
	"repro/internal/structural"
	"repro/internal/synth"
)

// BenchmarkTable2 regenerates Table 2: the application distance of every
// benchmark with and without SLMs.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunAll()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + eval.Table2(rows))
		}
	}
}

// BenchmarkMotivatingDKL regenerates the §2 numbers: the DKL from Stream
// and from ConfirmableStream to FlushableStream, whose ordering picks
// Fig. 6a over Fig. 6b.
func BenchmarkMotivatingDKL(b *testing.B) {
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	stripped := img.Strip()
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(stripped, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		stream := img.Meta.TypeByName("Stream").VTable
		conf := img.Meta.TypeByName("ConfirmableStream").VTable
		flu := img.Meta.TypeByName("FlushableStream").VTable
		dSF := res.Dist[[2]uint64{stream, flu}]
		dCF := res.Dist[[2]uint64{conf, flu}]
		if dSF >= dCF {
			b.Fatalf("ranking inverted: %v >= %v", dSF, dCF)
		}
		if i == 0 {
			b.Logf("D(Stream||Flushable)=%.3f < D(Confirmable||Flushable)=%.3f (paper: 0.07 < 0.21)", dSF, dCF)
		}
	}
}

// BenchmarkEchoparams regenerates the §6.4 echoparams discussion: 4
// structurally equivalent types, exact recovery with SLMs.
func BenchmarkEchoparams(b *testing.B) {
	bm := bench.ByName("echoparams")
	for i := 0; i < b.N; i++ {
		row, err := eval.Run(bm)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("echoparams: without=%.2f/%.2f with=%.2f/%.2f (paper 0/2.25 -> 0/0)",
				row.WithoutMissing, row.WithoutAdded, row.WithMissing, row.WithAdded)
		}
	}
}

// BenchmarkFig9 regenerates the Fig. 9 benchmark (CGridListCtrlEx).
func BenchmarkFig9(b *testing.B) {
	bm := bench.ByName("CGridListCtrlEx")
	for i := 0; i < b.N; i++ {
		row, err := eval.Run(bm)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("CGridListCtrlEx: with=%.3f/%.3f (paper 0.07/0.07)", row.WithMissing, row.WithAdded)
		}
	}
}

// BenchmarkMetricAblation regenerates the §6.4 "Other Metrics" comparison
// over the structurally unresolvable benchmarks.
func BenchmarkMetricAblation(b *testing.B) {
	for _, metric := range []slm.Metric{slm.MetricKL, slm.MetricJSDivergence, slm.MetricJSDistance} {
		b.Run(metric.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				totM, totA := 0.0, 0.0
				n := 0
				for _, bm := range bench.All() {
					if bm.Resolvable {
						continue
					}
					cfg := core.DefaultConfig()
					cfg.Metric = metric
					row, err := eval.RunWithConfig(bm, cfg)
					if err != nil {
						b.Fatal(err)
					}
					totM += row.WithMissing
					totA += row.WithAdded
					n++
				}
				if i == 0 {
					b.Logf("%s: avg missing %.3f added %.3f", metric, totM/float64(n), totA/float64(n))
				}
			}
		})
	}
}

// BenchmarkSLMDepth is the SLM-order ablation from DESIGN.md.
func BenchmarkSLMDepth(b *testing.B) {
	bm := bench.ByName("echoparams")
	for _, depth := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("D%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.SLMDepth = depth
				row, err := eval.RunWithConfig(bm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("depth %d: with=%.3f/%.3f", depth, row.WithMissing, row.WithAdded)
				}
			}
		})
	}
}

// BenchmarkTraceletWindow is the tracelet-length ablation (the paper uses
// windows up to length 7).
func BenchmarkTraceletWindow(b *testing.B) {
	bm := bench.ByName("gperf")
	for _, w := range []int{3, 5, 7, 9} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Trace = objtrace.DefaultConfig()
				cfg.Trace.Window = w
				row, err := eval.RunWithConfig(bm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("window %d: with=%.3f/%.3f", w, row.WithMissing, row.WithAdded)
				}
			}
		})
	}
}

// BenchmarkStructuralAblation toggles the §5 phases.
func BenchmarkStructuralAblation(b *testing.B) {
	bm := bench.ByName("tinyserver")
	configs := map[string]structural.Config{
		"full":           {},
		"noSharedSlots":  {DisableSharedSlots: true},
		"noInstances":    {DisableInstanceInstalls: true},
		"noCtorCalls":    {DisableCtorCalls: true},
		"noSizeRule":     {DisableSizeRule: true},
		"noPurecallRule": {DisablePurecallRule: true},
		"structuralNone": {DisableSharedSlots: true, DisableInstanceInstalls: true, DisableCtorCalls: true, DisableSizeRule: true, DisablePurecallRule: true},
	}
	for name, sc := range configs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Structural = sc
				row, err := eval.RunWithConfig(bm, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s: with=%.3f/%.3f", name, row.WithMissing, row.WithAdded)
				}
			}
		})
	}
}

// BenchmarkMultipleInheritance exercises §5.3.
func BenchmarkMultipleInheritance(b *testing.B) {
	img, err := compiler.Compile(bench.MultipleInheritance(), compiler.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	stripped := img.Strip()
	for i := 0; i < b.N; i++ {
		res, err := core.Analyze(stripped, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		fax := img.Meta.TypeByName("FaxMachine").VTable
		if len(res.MultiParents[fax]) != 2 {
			b.Fatalf("FaxMachine parents = %v, want 2", res.MultiParents[fax])
		}
	}
}

// BenchmarkScalePipeline is the §3.2 scalability sweep: end-to-end
// analysis time on growing synthetic binaries.
func BenchmarkScalePipeline(b *testing.B) {
	for _, fams := range []int{10, 25, 50} {
		p := synth.DefaultParams(7)
		p.Families = fams
		prog, _ := synth.Generate(p)
		img, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		stripped := img.Strip()
		b.Run(fmt.Sprintf("families%d", fams), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(stripped, core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineWorkers compares the serial pipeline (Workers: 1)
// against worker pools of growing size on the largest Table 2 benchmark —
// the measurement behind `rockbench -pipeline`. On a multi-core machine
// the parallel variants should approach linear speedup; the reconstructed
// hierarchy is identical in every variant (see rock's determinism test).
func BenchmarkPipelineWorkers(b *testing.B) {
	var img *image.Image
	for _, bm := range bench.All() {
		bi, _, err := bm.Build()
		if err != nil {
			b.Fatal(err)
		}
		if img == nil || len(bi.Code)+len(bi.Rodata) > len(img.Code)+len(img.Rodata) {
			img = bi
		}
	}
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(img, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEdmonds measures the arborescence solver alone (the paper: "a
// few minutes to construct the weighted graph and find an arborescence").
func BenchmarkEdmonds(b *testing.B) {
	var edges []arborescence.Edge
	n := 64
	for u := 0; u < n; u++ {
		for v := 1; v < n; v++ {
			if u != v {
				edges = append(edges, arborescence.Edge{From: u, To: v, W: float64((u*7+v*13)%29) + 1})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arborescence.MinArborescence(n, 0, edges); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSLMTraining measures PPM-C training throughput.
func BenchmarkSLMTraining(b *testing.B) {
	seqs := make([][]int, 128)
	for i := range seqs {
		seq := make([]int, 7)
		for j := range seq {
			seq[j] = (i*31 + j*17) % 24
		}
		seqs[i] = seq
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := slm.New(2, 24)
		for _, s := range seqs {
			m.Train(s)
		}
	}
}

// slmQueryFixture trains two deterministic PPM-C models on overlapping
// corpora (the shape of one family's model pair) and returns them with a
// word set — the workload of the frozen-kernel benchmarks below and of
// `rockbench -slm`.
func slmQueryFixture() (a, b *slm.Model, words [][]int) {
	const alpha = 24
	a, b = slm.New(2, alpha), slm.New(2, alpha)
	words = make([][]int, 256)
	for i := range words {
		w := make([]int, 7)
		for j := range w {
			w[j] = (i*31 + j*17 + i*i%13) % alpha
		}
		words[i] = w
		if i%2 == 0 {
			a.Train(w)
		}
		if i%3 != 0 {
			b.Train(w)
		}
	}
	return a, b, words
}

// BenchmarkLogProbSeq measures the per-word PPM-C query kernel: the
// map-based builder trie against the frozen flat trie driven through a
// reusable Querier. The frozen path must report 0 allocs/op.
func BenchmarkLogProbSeq(b *testing.B) {
	m, _, words := slmQueryFixture()
	f := m.Freeze()
	q := f.NewQuerier()
	b.Run("Builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.LogProbSeq(words[i%len(words)])
		}
	})
	b.Run("Frozen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.LogProbSeq(words[i%len(words)])
		}
	})
}

// BenchmarkWordDist measures deriving one model's normalized distribution
// over a family word set — the unit the DistanceCalculator memoizes, and
// the dominant cost of the behavioral analysis.
func BenchmarkWordDist(b *testing.B) {
	m, _, words := slmQueryFixture()
	f := m.Freeze()
	b.Run("Builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slm.WordDistribution(m, words)
		}
	})
	b.Run("Frozen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slm.WordDistribution(f, words)
		}
	})
}
