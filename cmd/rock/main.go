// Command rock analyzes a serialized binary image and reports the
// reconstructed class hierarchy.
//
// Usage:
//
//	rock [-metric kl|js-divergence|js-distance] [-depth D] [-window W]
//	     [-workers N] [-cache DIR] [-invalidate LEVEL]
//	     [-structural-only] [-v] image.rbin
//
// The input is an image produced by this repository's compiler (see
// cmd/rockbench -emit or the examples). If the image carries ground-truth
// metadata, it is stripped before analysis and used only to print names.
//
// With -cache DIR, analysis artifacts are persisted as content-addressed
// snapshots under DIR: re-analyzing an unchanged binary under an unchanged
// configuration skips the whole pipeline, and configuration changes
// invalidate only the stages they affect. -invalidate caps the reuse
// (none, hierarchy, models, all) to force recomputation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/rock"
)

func main() {
	metric := flag.String("metric", "kl", "pairwise distance: kl, js-divergence, js-distance")
	depth := flag.Int("depth", 2, "SLM maximum order D")
	window := flag.Int("window", 7, "object tracelet window length")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "snapshot cache directory (created if missing); repeat analyses of the same binary reuse cached stages")
	invalidate := flag.String("invalidate", "none", "snapshot reuse cap: none, hierarchy, models, or all")
	structuralOnly := flag.Bool("structural-only", false, "skip the behavioral analysis (type families and possible parents only)")
	verbose := flag.Bool("v", false, "print families and candidate parents")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rock [flags] image.rbin")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fatal(err)
		}
	}
	rep, err := rock.Analyze(data, rock.Options{
		Metric:         *metric,
		SLMDepth:       *depth,
		Window:         *window,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		Invalidate:     *invalidate,
		StructuralOnly: *structuralOnly,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("binary types: %d, families: %d, structurally resolvable: %v\n",
		len(rep.Types), len(rep.Families), rep.StructurallyResolved)
	if *verbose {
		for i, fam := range rep.Families {
			fmt.Printf("family %d:\n", i)
			for _, t := range fam {
				var cands []string
				for _, p := range rep.PossibleParents[t] {
					cands = append(cands, rep.Name(p))
				}
				sort.Strings(cands)
				fmt.Printf("  %-32s candidates: %v\n", rep.Name(t), cands)
			}
		}
	}
	if *structuralOnly {
		return
	}
	fmt.Println("\nreconstructed hierarchy:")
	fmt.Print(rep.HierarchyString())
	if len(rep.MultiParents) > 0 {
		fmt.Println("multiple-inheritance types:")
		for t, ps := range rep.MultiParents {
			fmt.Printf("  %s parents:", rep.Name(t))
			for _, p := range ps {
				fmt.Printf(" %s", rep.Name(p))
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rock:", err)
	os.Exit(1)
}
