// Command rock analyzes a serialized binary image and reports the
// reconstructed class hierarchy.
//
// Usage:
//
//	rock [-metric kl|js-divergence|js-distance] [-depth D] [-window W]
//	     [-workers N] [-cache DIR] [-invalidate LEVEL]
//	     [-structural-only] [-v] image.rbin
//	rock -corpus DIR [flags]
//
// The input is an image produced by this repository's compiler (see
// cmd/rockbench -emit or the examples). If the image carries ground-truth
// metadata, it is stripped before analysis and used only to print names.
//
// With -corpus DIR, every *.rbin under DIR is analyzed as one batch over a
// single shared worker pool (-workers bounds the whole batch, not each
// image): results stream as they complete and a summary line per image is
// printed in name order at the end. Combined with -cache, images whose
// snapshots are fully warm bypass the analysis queue entirely.
//
// With -cache DIR, analysis artifacts are persisted as content-addressed
// snapshots under DIR: re-analyzing an unchanged binary under an unchanged
// configuration skips the whole pipeline, and configuration changes
// invalidate only the stages they affect. -invalidate caps the reuse
// (none, hierarchy, models, all) to force recomputation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/image"
	"repro/rock"
)

func main() {
	metric := flag.String("metric", "kl", "pairwise distance: kl, js-divergence, js-distance")
	depth := flag.Int("depth", 2, "SLM maximum order D")
	window := flag.Int("window", 7, "object tracelet window length")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = all CPUs, 1 = serial)")
	cacheDir := flag.String("cache", "", "snapshot cache directory (created if missing); repeat analyses of the same binary reuse cached stages")
	invalidate := flag.String("invalidate", "none", "snapshot reuse cap: none, hierarchy, models, or all")
	structuralOnly := flag.Bool("structural-only", false, "skip the behavioral analysis (type families and possible parents only)")
	corpusDir := flag.String("corpus", "", "analyze every *.rbin under this directory as one batch on a shared worker pool")
	verbose := flag.Bool("v", false, "print families and candidate parents")
	flag.Parse()
	opts := rock.Options{
		Metric:         *metric,
		SLMDepth:       *depth,
		Window:         *window,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		Invalidate:     *invalidate,
		StructuralOnly: *structuralOnly,
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *corpusDir != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: rock -corpus DIR [flags]")
			os.Exit(2)
		}
		runCorpus(*corpusDir, opts)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rock [flags] image.rbin")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	rep, err := rock.Analyze(data, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("binary types: %d, families: %d, structurally resolvable: %v\n",
		len(rep.Types), len(rep.Families), rep.StructurallyResolved)
	if *verbose {
		for i, fam := range rep.Families {
			fmt.Printf("family %d:\n", i)
			for _, t := range fam {
				var cands []string
				for _, p := range rep.PossibleParents[t] {
					cands = append(cands, rep.Name(p))
				}
				sort.Strings(cands)
				fmt.Printf("  %-32s candidates: %v\n", rep.Name(t), cands)
			}
		}
	}
	if *structuralOnly {
		return
	}
	fmt.Println("\nreconstructed hierarchy:")
	fmt.Print(rep.HierarchyString())
	if len(rep.MultiParents) > 0 {
		fmt.Println("multiple-inheritance types:")
		for t, ps := range rep.MultiParents {
			fmt.Printf("  %s parents:", rep.Name(t))
			for _, p := range ps {
				fmt.Printf(" %s", rep.Name(p))
			}
			fmt.Println()
		}
	}
}

// runCorpus analyzes every *.rbin under dir as one batch: the images are
// loaded up front, scheduled over a single shared worker pool, progress
// streams as analyses complete, and per-image summaries print in file
// order at the end (the batch result is deterministic — identical to
// analyzing each image alone).
func runCorpus(dir string, opts rock.Options) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rbin"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no *.rbin images under %s", dir))
	}
	imgs := make([]*image.Image, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		if imgs[i], err = image.Load(data); err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
	}
	start := time.Now()
	rep, err := rock.AnalyzeCorpus(context.Background(), imgs, rock.CorpusOptions{
		Options: opts,
		OnResult: func(it rock.CorpusItem) {
			state := "done"
			if it.Warm {
				state = "warm"
			}
			if it.Err != nil {
				state = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %-40s %s\n",
				it.Index+1, len(paths), filepath.Base(paths[it.Index]), state)
		},
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	failed := 0
	for i, it := range rep.Items {
		name := filepath.Base(paths[i])
		if it.Err != nil {
			failed++
			fmt.Printf("%-40s error: %v\n", name, it.Err)
			continue
		}
		fmt.Printf("%-40s types %3d  families %3d  edges %3d  resolvable %-5v",
			name, len(it.Report.Types), len(it.Report.Families),
			len(it.Report.Edges), it.Report.StructurallyResolved)
		if it.Warm {
			fmt.Print("  (warm)")
		}
		fmt.Println()
	}
	fmt.Printf("corpus: %d images (%d warm, %d cold) in %s, peak heap %.1f MiB\n",
		len(paths), rep.Warm, rep.Cold, elapsed.Round(time.Millisecond),
		float64(rep.PeakHeap)/(1<<20))
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d images failed", failed, len(paths)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rock:", err)
	os.Exit(1)
}
