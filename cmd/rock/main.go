// Command rock analyzes a serialized binary image and reports the
// reconstructed class hierarchy.
//
// Usage:
//
//	rock [-metric kl|js-divergence|js-distance] [-depth D] [-window W]
//	     [-workers N] [-cache DIR] [-invalidate LEVEL] [-incr-from SNAP]
//	     [-evidence slm,subtype] [-fuse-weights slm=1,subtype=5]
//	     [-structural-only] [-dense-dist] [-stats] [-trace FILE] [-v] image.rbin
//	rock -corpus DIR [flags]
//
// The input is an image produced by this repository's compiler (see
// cmd/rockbench -emit or the examples). If the image carries ground-truth
// metadata, it is stripped before analysis and used only to print names.
//
// With -corpus DIR, every *.rbin under DIR is analyzed as one batch over a
// single shared worker pool (-workers bounds the whole batch, not each
// image): results stream as they complete and a summary line per image is
// printed in name order at the end. Combined with -cache, images whose
// snapshots are fully warm bypass the analysis queue entirely.
//
// With -cache DIR, analysis artifacts are persisted as content-addressed
// snapshots under DIR: re-analyzing an unchanged binary under an unchanged
// configuration skips the whole pipeline, and configuration changes
// invalidate only the stages they affect. -invalidate caps the reuse
// (none, hierarchy, models, all) to force recomputation.
//
// When the binary itself changed (a new version of the same program), the
// exact snapshot misses, but the analysis can still diff against a prior
// version: -incr-from names that version's .rsnap explicitly, and with
// -cache alone the nearest prior of the same image name is auto-discovered
// in the cache directory. Functions whose content digests are unchanged
// skip re-extraction, types whose training inputs are unchanged keep their
// models, and untouched families restore verbatim — the report is
// identical to a cold run either way. -stats shows the reuse as the
// fn_digest_hit/fn_digest_miss, types_retrained, and families_resolved
// counters.
//
// With -evidence, additional edge-evidence providers are fused into the
// hierarchy solve: "slm" is the paper's behavioral divergence sweep,
// "subtype" a constraint-based structural subtyping scorer (vtable-slot
// overlap, construction install flow, parent-method calls) that holds up
// on binaries whose behavioral evidence was erased by devirtualization,
// COMDAT folding, or ctor inlining. -fuse-weights overrides the weighted
// ensemble, e.g. -fuse-weights slm=1,subtype=5; with -stats each
// provider reports its own evidence:NAME stage row.
//
// -stats prints the per-stage observability table after the analysis:
// wall time, allocation estimates, and cache-hit attribution (stages
// restored from a snapshot show as "cached", disabled ones as "off"). In
// corpus mode the table is printed per image. -trace FILE additionally
// writes the run as chrome-tracing JSON — open it in Perfetto
// (ui.perfetto.dev) to see the stages and every pool fan-out helper; in
// corpus mode each image draws on its own lane, making the batch
// scheduling visible. Neither flag changes results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cliutil"
	"repro/internal/image"
	"repro/rock"
)

func main() {
	metric := flag.String("metric", "kl", "pairwise distance: kl, js-divergence, js-distance")
	depth := flag.Int("depth", 2, "SLM maximum order D")
	window := flag.Int("window", 7, "object tracelet window length")
	shared := cliutil.Register(flag.CommandLine)
	structuralOnly := flag.Bool("structural-only", false, "skip the behavioral analysis (type families and possible parents only)")
	denseDist := flag.Bool("dense-dist", false, "compute the full per-family pairwise distance matrix instead of the sparse candidate-pair sweep (same hierarchy, quadratic cost)")
	corpusDir := flag.String("corpus", "", "analyze every *.rbin under this directory as one batch on a shared worker pool")
	stats := flag.Bool("stats", false, "print the per-stage observability table (wall time, allocs, cache attribution)")
	traceFile := flag.String("trace", "", "write a chrome-tracing (Perfetto) JSON trace of the run to this file")
	verbose := flag.Bool("v", false, "print families and candidate parents")
	flag.Parse()
	if _, err := shared.Resolve(); err != nil {
		cliutil.Usage("rock", err.Error())
	}
	// Ctrl-C / SIGTERM cancels the analysis cleanly (workers drain, the
	// snapshot store is never left mid-write); a second signal kills.
	ctx, stop := cliutil.WithSignals(context.Background())
	defer stop()
	opts := rock.Options{
		Metric:          *metric,
		SLMDepth:        *depth,
		Window:          *window,
		Workers:         shared.Workers,
		CacheDir:        shared.CacheDir,
		Invalidate:      shared.Invalidate,
		IncrementalFrom: shared.IncrFrom,
		Evidence:        shared.Evidence,
		FuseWeights:     shared.FuseWeights,
		StructuralOnly:  *structuralOnly,
		DenseDistances:  *denseDist,
	}
	var trace *rock.Trace
	if *traceFile != "" {
		trace = rock.NewTrace()
	}
	if *corpusDir != "" {
		if flag.NArg() != 0 {
			cliutil.Usage("rock", "usage: rock -corpus DIR [flags]")
		}
		runCorpus(ctx, *corpusDir, opts, *stats, trace)
		writeTrace(trace, *traceFile)
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		cliutil.Usage("rock", "usage: rock [flags] image.rbin")
	}
	if *stats || trace != nil {
		opts.Observer = rock.NewObserver()
		opts.Observer.Trace = trace
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	rep, err := rock.AnalyzeContext(ctx, data, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("binary types: %d, families: %d, structurally resolvable: %v\n",
		len(rep.Types), len(rep.Families), rep.StructurallyResolved)
	if *verbose {
		for i, fam := range rep.Families {
			fmt.Printf("family %d:\n", i)
			for _, t := range fam {
				var cands []string
				for _, p := range rep.PossibleParents[t] {
					cands = append(cands, rep.Name(p))
				}
				sort.Strings(cands)
				fmt.Printf("  %-32s candidates: %v\n", rep.Name(t), cands)
			}
		}
	}
	if *stats && rep.Stats != nil {
		fmt.Println("\nper-stage stats:")
		fmt.Print(rep.Stats.Table())
	}
	writeTrace(trace, *traceFile)
	if *structuralOnly {
		return
	}
	fmt.Println("\nreconstructed hierarchy:")
	fmt.Print(rep.HierarchyString())
	if len(rep.MultiParents) > 0 {
		fmt.Println("multiple-inheritance types:")
		for t, ps := range rep.MultiParents {
			fmt.Printf("  %s parents:", rep.Name(t))
			for _, p := range ps {
				fmt.Printf(" %s", rep.Name(p))
			}
			fmt.Println()
		}
	}
}

// writeTrace serializes the chrome-tracing sink, if one was requested.
func writeTrace(trace *rock.Trace, path string) {
	if trace == nil {
		return
	}
	if err := trace.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "rock: wrote trace to %s (open in ui.perfetto.dev)\n", path)
}

// runCorpus analyzes every *.rbin under dir as one batch: the images are
// loaded up front, scheduled over a single shared worker pool, progress
// streams as analyses complete, and per-image summaries print in file
// order at the end (the batch result is deterministic — identical to
// analyzing each image alone).
func runCorpus(ctx context.Context, dir string, opts rock.Options, stats bool, trace *rock.Trace) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.rbin"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no *.rbin images under %s", dir))
	}
	imgs := make([]*image.Image, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		if imgs[i], err = image.Load(data); err != nil {
			fatal(fmt.Errorf("%s: %w", p, err))
		}
	}
	start := time.Now()
	rep, err := rock.AnalyzeCorpus(ctx, imgs, rock.CorpusOptions{
		Options: opts,
		Observe: stats,
		Trace:   trace,
		OnResult: func(it rock.CorpusItem) {
			state := "done"
			if it.Warm {
				state = "warm"
			}
			if it.Err != nil {
				state = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %-40s %s\n",
				it.Index+1, len(paths), filepath.Base(paths[it.Index]), state)
		},
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	failed := 0
	for i, it := range rep.Items {
		name := filepath.Base(paths[i])
		if it.Err != nil {
			failed++
			fmt.Printf("%-40s error: %v\n", name, it.Err)
			continue
		}
		fmt.Printf("%-40s types %3d  families %3d  edges %3d  resolvable %-5v",
			name, len(it.Report.Types), len(it.Report.Families),
			len(it.Report.Edges), it.Report.StructurallyResolved)
		if it.Warm {
			fmt.Print("  (warm)")
		}
		fmt.Println()
		if stats && it.Stats != nil {
			fmt.Printf("  queued %s before start\n", it.Wait.Round(time.Microsecond))
			fmt.Print(it.Stats.Table())
		}
	}
	fmt.Printf("corpus: %d images (%d warm, %d cold) in %s, peak heap %.1f MiB\n",
		len(paths), rep.Warm, rep.Cold, elapsed.Round(time.Millisecond),
		float64(rep.PeakHeap)/(1<<20))
	if failed > 0 {
		fatal(fmt.Errorf("%d of %d images failed", failed, len(paths)))
	}
}

func fatal(err error) {
	cliutil.Fatal("rock", err)
}
