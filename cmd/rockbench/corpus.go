package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/image"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// corpusResult is the JSON record emitted by -corpus (the CI artifact
// BENCH_corpus.json): the corpus batch engine against the sequential
// per-image loop it replaced, over the whole Table 2 suite.
type corpusResult struct {
	Benchmarks int   `json:"benchmarks"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	Runs       int   `json:"runs"`
	SeqNS      int64 `json:"seq_ns"`
	Corpus1NS  int64 `json:"corpus1_ns"`
	// Corpus1Overhead is corpus1/seq - 1: the scheduling cost of the batch
	// engine when it degrades to a fully serial run (target ≤ 0.05).
	Corpus1Overhead float64 `json:"corpus1_overhead"`
	CorpusNNS       int64   `json:"corpusn_ns"`
	Speedup         float64 `json:"speedup"`
	ColdNS          int64   `json:"cold_ns"`
	WarmNS          int64   `json:"warm_ns"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmImages      int     `json:"warm_images"`
	Identical       bool    `json:"identical"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	PeakRSSKB       int64   `json:"peak_rss_kb"`
}

// corpusSuiteRun schedules the prebuilt suite through the batch engine.
func corpusSuiteRun(imgs []*image.Image, cfg core.Config, workers int) ([]*core.Result, corpus.Stats, error) {
	cfg.Workers = workers
	scratch := slm.NewScratchPool()
	items, stats, err := corpus.Run(context.Background(), len(imgs),
		corpus.Options{Workers: workers},
		func(i int) bool { return core.ProbeSnapshot(imgs[i], cfg) == snapshot.LevelHierarchy },
		func(ctx context.Context, i int, sh *pool.Shared) (*core.Result, error) {
			c := cfg
			c.Pool = sh
			c.Scratch = scratch
			return core.AnalyzeContext(ctx, imgs[i], c)
		})
	if err != nil {
		return nil, stats, err
	}
	res := make([]*core.Result, len(items))
	for i, it := range items {
		if it.Err != nil {
			return nil, stats, fmt.Errorf("image %d: %w", i, it.Err)
		}
		res[i] = it.Value
	}
	return res, stats, nil
}

// runCorpusBench measures the corpus batch engine on the whole Table 2
// suite: a sequential per-image loop (the code path the engine replaced)
// against the corpus at workers 1 (serial-degradation overhead) and
// workers N (cross-image speedup), then a cold and a warm cached corpus
// pass (warm images bypass the analysis queue entirely). Every corpus
// result is asserted deep-equal to the sequential loop — a divergence is
// fatal. Image compilation is excluded from all timings.
func runCorpusBench(jsonPath string) {
	fmt.Println("== corpus batch engine: sequential loop vs shared-pool scheduling (Table 2 suite) ==")
	benches := bench.All()
	imgs := make([]*image.Image, len(benches))
	for i, b := range benches {
		img, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		imgs[i] = img
	}
	cfg := benchConfig()
	nWorkers := shared.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	// The three timed passes are interleaved within each round (and the
	// best of each kept), so a slow container phase hits all of them
	// alike instead of biasing whichever measurement block it landed on —
	// the workers=1 overhead comparison is a few percent, well inside
	// block-to-block noise on a shared machine.
	const runs = 5
	timed := func(d *time.Duration, res *[]*core.Result, f func() []*core.Result) {
		start := time.Now()
		out := f()
		if e := time.Since(start); *d == 0 || e < *d {
			*d = e
		}
		*res = out
	}

	// Sequential per-image loop, fully serial — the replaced code path.
	seqCfg := cfg
	seqCfg.Workers = 1
	var seqD, corpus1D, corpusND time.Duration
	var seqRes, corpus1Res, corpusNRes []*core.Result
	for r := 0; r < runs; r++ {
		timed(&seqD, &seqRes, func() []*core.Result {
			out := make([]*core.Result, len(imgs))
			for i, img := range imgs {
				r, err := core.Analyze(img, seqCfg)
				if err != nil {
					fatal(err)
				}
				out[i] = r
			}
			return out
		})
		timed(&corpus1D, &corpus1Res, func() []*core.Result {
			res, _, err := corpusSuiteRun(imgs, cfg, 1)
			if err != nil {
				fatal(err)
			}
			return res
		})
		timed(&corpusND, &corpusNRes, func() []*core.Result {
			res, _, err := corpusSuiteRun(imgs, cfg, nWorkers)
			if err != nil {
				fatal(err)
			}
			return res
		})
	}

	assertEqual := func(what string, got []*core.Result) {
		for i := range got {
			if !snapshotResultsEqual(seqRes[i], got[i]) {
				fatal(fmt.Errorf("%s: %s diverged from the sequential loop", what, benches[i].Name))
			}
		}
	}
	assertEqual("corpus workers=1", corpus1Res)
	assertEqual(fmt.Sprintf("corpus workers=%d", nWorkers), corpusNRes)

	// Cold and warm cached passes: the cold pass computes and persists
	// every snapshot; the warm pass probes every image fully warm and
	// bypasses the analysis queue.
	cacheDir, err := os.MkdirTemp("", "rockbench-corpus-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cachedCfg := cfg
	cachedCfg.CacheDir = cacheDir
	coldStart := time.Now()
	coldRes, coldStats, err := corpusSuiteRun(imgs, cachedCfg, nWorkers)
	if err != nil {
		fatal(err)
	}
	coldD := time.Since(coldStart)
	if coldStats.Warm != 0 {
		fatal(fmt.Errorf("cold corpus pass classified %d images warm", coldStats.Warm))
	}
	assertEqual("corpus cold", coldRes)

	var warmD time.Duration
	var warmRes []*core.Result
	var warmStats corpus.Stats
	for r := 0; r < runs; r++ {
		start := time.Now()
		warmRes, warmStats, err = corpusSuiteRun(imgs, cachedCfg, nWorkers)
		if err != nil {
			fatal(err)
		}
		if d := time.Since(start); warmD == 0 || d < warmD {
			warmD = d
		}
	}
	if warmStats.Warm != len(imgs) {
		fatal(fmt.Errorf("warm corpus pass classified only %d of %d images warm", warmStats.Warm, len(imgs)))
	}
	assertEqual("corpus warm", warmRes)

	out := corpusResult{
		Benchmarks:      len(benches),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         nWorkers,
		Runs:            runs,
		SeqNS:           seqD.Nanoseconds(),
		Corpus1NS:       corpus1D.Nanoseconds(),
		Corpus1Overhead: float64(corpus1D)/float64(seqD) - 1,
		CorpusNNS:       corpusND.Nanoseconds(),
		Speedup:         float64(seqD) / float64(corpusND),
		ColdNS:          coldD.Nanoseconds(),
		WarmNS:          warmD.Nanoseconds(),
		WarmSpeedup:     float64(coldD) / float64(warmD),
		WarmImages:      warmStats.Warm,
		Identical:       true, // assertEqual is fatal on divergence
		PeakHeapBytes:   warmStats.PeakHeap,
		PeakRSSKB:       peakRSSKB(),
	}
	fmt.Printf("  suite: %d benchmarks, GOMAXPROCS %d\n", out.Benchmarks, out.GOMAXPROCS)
	fmt.Printf("  sequential loop (workers=1):  %12s\n", seqD.Round(time.Microsecond))
	fmt.Printf("  corpus (workers=1):           %12s  (overhead %+.1f%%)\n",
		corpus1D.Round(time.Microsecond), 100*out.Corpus1Overhead)
	fmt.Printf("  corpus (workers=%-2d):          %12s  (%.2fx vs sequential)\n",
		nWorkers, corpusND.Round(time.Microsecond), out.Speedup)
	fmt.Printf("  corpus cold (cache write):    %12s\n", coldD.Round(time.Microsecond))
	fmt.Printf("  corpus warm (%2d/%2d bypass):   %12s  (%.1fx vs cold)\n",
		out.WarmImages, out.Benchmarks, warmD.Round(time.Microsecond), out.WarmSpeedup)
	fmt.Printf("  peak heap %.1f MiB, peak RSS %d KiB, results identical: %v\n",
		float64(out.PeakHeapBytes)/(1<<20), out.PeakRSSKB, out.Identical)
	writeJSON(jsonPath, out)
}
