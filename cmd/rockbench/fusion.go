package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/image"
	"repro/internal/obs"
)

// providerBenchRow is one evidence provider's cost attribution from the
// observed fused run (the evidence:NAME stage rows).
type providerBenchRow struct {
	Name       string `json:"name"`
	WallNS     int64  `json:"wall_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	Families   int64  `json:"families"`
}

// fusionBenchResult is the JSON record emitted by -fusion's timing half
// (the CI artifact BENCH_fusion.json): what fusing the subtype provider
// costs on top of the SLM-only sweep, on the largest Table 2 benchmark.
type fusionBenchResult struct {
	Benchmark     string             `json:"benchmark"`
	Types         int                `json:"types"`
	Workers       int                `json:"workers"`
	Runs          int                `json:"runs"`
	SLMOnlyNS     int64              `json:"slm_only_ns"`
	FusedNS       int64              `json:"fused_ns"`
	Overhead      float64            `json:"overhead"`
	EvidenceEdges int64              `json:"evidence_edges_scored"`
	Providers     []providerBenchRow `json:"providers"`
}

// runFusion is the -fusion mode: the accuracy half reruns the
// adversarial grid under the SLM-only and the fused configuration and
// writes the paired scores (ACC_fusion.json); the timing half measures
// the fused sweep's overhead on the largest Table 2 benchmark with
// per-provider attribution (BENCH_fusion.json). With a floors file both
// the fusion contract (fused >= SLM everywhere, strictly better on >= 3
// hard modes) and the checked-in v2 floors gate the run — any regression
// exits non-zero.
func runFusion(accPath, benchPath, floorsPath string) {
	fmt.Println("== fusion: SLM-only vs slm+subtype on the adversarial grid ==")
	rep, err := eval.RunFusionGrid(context.Background(), benchConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Print(eval.FusionTable(rep))
	writeJSON(accPath, rep)

	writeJSON(benchPath, measureFusionOverhead())

	gateErr := eval.CheckFusion(rep, 3)
	if floorsPath != "" {
		floors, err := eval.LoadFloors(floorsPath)
		if err != nil {
			fatal(err)
		}
		if ferr := eval.CheckFusionFloors(rep, floors); ferr != nil {
			if gateErr != nil {
				gateErr = fmt.Errorf("%v\n%v", gateErr, ferr)
			} else {
				gateErr = ferr
			}
		}
	}
	if gateErr != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", gateErr)
		os.Exit(1)
	}
	suffix := ""
	if floorsPath != "" {
		suffix = fmt.Sprintf(", floors OK (%s)", floorsPath)
	}
	fmt.Printf("  fusion contract OK%s\n", suffix)
}

// measureFusionOverhead times the SLM-only and fused analyses of the
// largest Table 2 benchmark (best of 3, untimed observer run separately
// for the per-provider attribution).
func measureFusionOverhead() fusionBenchResult {
	var largest *bench.Benchmark
	var img *image.Image
	for _, b := range bench.All() {
		bi, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		if img == nil || len(bi.Code)+len(bi.Rodata) > len(img.Code)+len(img.Rodata) {
			largest, img = b, bi
		}
	}
	slmCfg := benchConfig()
	fusedCfg := benchConfig()
	fusedCfg.Evidence = []string{evidence.NameSLM, evidence.NameSubtype}

	const runs = 3
	measure := func(cfg core.Config) (time.Duration, *core.Result) {
		best := time.Duration(0)
		var res *core.Result
		for i := 0; i < runs; i++ {
			start := time.Now()
			r, err := core.Analyze(img, cfg)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			res = r
		}
		return best, res
	}
	slmD, slmRes := measure(slmCfg)
	fusedD, _ := measure(fusedCfg)

	obsCfg := fusedCfg
	obsCfg.Obs = obs.NewBus()
	if _, err := core.Analyze(img, obsCfg); err != nil {
		fatal(err)
	}
	orep := obsCfg.Obs.Report()
	out := fusionBenchResult{
		Benchmark:     largest.Name,
		Types:         len(slmRes.VTables),
		Workers:       slmCfg.Workers,
		Runs:          runs,
		SLMOnlyNS:     slmD.Nanoseconds(),
		FusedNS:       fusedD.Nanoseconds(),
		Overhead:      float64(fusedD) / float64(slmD),
		EvidenceEdges: orep.Counters["evidence_edges_scored"],
	}
	for _, st := range orep.Stages {
		if !strings.HasPrefix(st.Name, "evidence:") {
			continue
		}
		out.Providers = append(out.Providers, providerBenchRow{
			Name:       strings.TrimPrefix(st.Name, "evidence:"),
			WallNS:     st.Wall.Nanoseconds(),
			AllocBytes: st.AllocBytes,
			Allocs:     st.Allocs,
			Families:   st.Count,
		})
	}
	fmt.Printf("  overhead on %s: slm-only %s, fused %s (%.2fx), %d edges scored\n",
		out.Benchmark, slmD.Round(time.Microsecond), fusedD.Round(time.Microsecond),
		out.Overhead, out.EvidenceEdges)
	for _, p := range out.Providers {
		fmt.Printf("    evidence:%-8s %12s  %8d families\n",
			p.Name, time.Duration(p.WallNS).Round(time.Microsecond), p.Families)
	}
	return out
}
