package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
)

// writeJSON marshals a benchmark record to path (indented, trailing
// newline) — the single report sink every -json mode shares. A "" path
// is a no-op so modes can pass their maybe-suppressed flag through.
func writeJSON(path string, v any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("  wrote %s\n", path)
}

// measureOp times fn in a ~200ms loop and reports ns, heap allocations,
// and heap bytes per call (the rockbench equivalent of -benchmem).
func measureOp(fn func()) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	fn() // warm up
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < 200*time.Millisecond {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n
}

// snapshotResultsEqual compares the analysis outcome of two runs field by
// field. Funcs and Models are deliberately excluded: a warm run never
// lifts functions or retains builder-form models (both are documented as
// nil when their stage is restored from a snapshot).
func snapshotResultsEqual(cold, warm *core.Result) bool {
	return reflect.DeepEqual(cold.VTables, warm.VTables) &&
		reflect.DeepEqual(cold.Structural, warm.Structural) &&
		reflect.DeepEqual(cold.Tracelets, warm.Tracelets) &&
		reflect.DeepEqual(cold.Alphabet, warm.Alphabet) &&
		reflect.DeepEqual(cold.Frozen, warm.Frozen) &&
		reflect.DeepEqual(cold.Dist, warm.Dist) &&
		reflect.DeepEqual(cold.Families, warm.Families) &&
		reflect.DeepEqual(cold.Hierarchy, warm.Hierarchy) &&
		reflect.DeepEqual(cold.MultiParents, warm.MultiParents)
}

// peakRSSKB reads the process's high-water resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			var kb int64
			fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d", &kb)
			return kb
		}
	}
	return 0
}
