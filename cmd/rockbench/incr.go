package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/synth"
)

// incrCase is one measured patch size of the -incr harness.
type incrCase struct {
	PatchedFunctions int     `json:"patched_functions"`
	ColdNS           int64   `json:"cold_ns"`
	IncrNS           int64   `json:"incr_ns"`
	Speedup          float64 `json:"speedup"`
	FnDigestHits     int     `json:"fn_digest_hits"`
	FnDigestMisses   int     `json:"fn_digest_misses"`
	TypesReused      int     `json:"types_reused"`
	TypesRetrained   int     `json:"types_retrained"`
	FamiliesRestored int     `json:"families_restored"`
	FamiliesResolved int     `json:"families_resolved"`
	Identical        bool    `json:"identical"`
}

// incrResult is the JSON record emitted by -incr (the CI artifact
// BENCH_incr.json): version-diff incremental re-analysis against a prior
// snapshot vs a from-scratch analysis of the patched binary, per patch
// size.
type incrResult struct {
	Functions     int        `json:"functions"`
	Types         int        `json:"types"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	Workers       int        `json:"workers"`
	Runs          int        `json:"runs"`
	SnapshotBytes int64      `json:"snapshot_bytes"`
	Cases         []incrCase `json:"cases"`
}

// incrImage builds the -incr harness binary: a deep synthetic hierarchy
// (6 families, depth 6, branch 4) compiled with the default options and
// stripped. The shape is chosen so the from-scratch cost is dominated by
// the superlinear stages (training, per-family distance sweeps) that the
// incremental lane skips when a patch leaves their inputs unchanged.
func incrImage() *image.Image {
	p := synth.DefaultParams(97)
	p.Families = 6
	p.MaxDepth = 6
	p.MaxBranch = 4
	p.UseReps = 4
	prog, _ := synth.Generate(p)
	cimg, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	return cimg.Strip()
}

// runIncrBench measures the version-diff warm lane: a base binary is
// analyzed cold once to persist its snapshot, then for each patch size k
// the binary is re-linked with k functions modified and analyzed both
// from scratch and incrementally against the base snapshot (best of
// -incr's runs each). Every incremental result is verified deep-equal to
// its from-scratch counterpart, the per-function digest diff must report
// exactly k misses, and a 1-function patch must re-analyze at least 10x
// faster than cold. Image building and the base analysis are excluded
// from both timings; a final untimed observed run prints the per-stage
// table with the reuse counters.
func runIncrBench(jsonPath, patchesSpec string) {
	fmt.Println("== incremental re-analysis: version-diff warm lane vs cold ==")
	var ks []int
	for _, f := range strings.Split(patchesSpec, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || k < 1 {
			fatal(fmt.Errorf("-patches: bad patch count %q", f))
		}
		ks = append(ks, k)
	}

	base := incrImage()
	cacheDir, err := os.MkdirTemp("", "rockbench-incr-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	baseCfg := benchConfig()
	baseCfg.CacheDir = cacheDir
	baseCfg.IncrementalFrom = ""
	baseRes, err := core.Analyze(base, baseCfg)
	if err != nil {
		fatal(err)
	}
	if baseRes.SnapshotReuse != snapshot.LevelNone {
		fatal(fmt.Errorf("base run reused a snapshot (level %d)", baseRes.SnapshotReuse))
	}
	snaps, err := filepath.Glob(filepath.Join(cacheDir, "*.rsnap"))
	if err != nil || len(snaps) != 1 {
		fatal(fmt.Errorf("expected one base snapshot, found %d (%v)", len(snaps), err))
	}
	snapPath := snaps[0]
	snapInfo, err := os.Stat(snapPath)
	if err != nil {
		fatal(err)
	}

	cands := bench.PatchableFunctions(base)
	mid := len(cands) / 2
	for _, k := range ks {
		if mid+k > len(cands) {
			fatal(fmt.Errorf("harness image has only %d patchable functions, need %d", len(cands), mid+k))
		}
	}
	fmt.Printf("  base: %d functions, %d types, snapshot %d bytes (%d patchable candidates)\n",
		len(base.Entries), len(baseRes.VTables), snapInfo.Size(), len(cands))

	coldCfg := benchConfig()
	coldCfg.CacheDir = ""
	coldCfg.IncrementalFrom = ""
	incrCfg := coldCfg
	incrCfg.IncrementalFrom = snapPath

	const runs = 3
	out := incrResult{
		Functions:     len(base.Entries),
		Types:         len(baseRes.VTables),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       shared.Workers,
		Runs:          runs,
		SnapshotBytes: snapInfo.Size(),
	}
	var smallest *image.Image
	for _, k := range ks {
		patched := base.Strip()
		for _, entry := range cands[mid : mid+k] {
			if err := bench.PatchFunction(patched, entry); err != nil {
				fatal(err)
			}
		}
		if smallest == nil {
			smallest = patched
		}

		var cold *core.Result
		var coldD time.Duration
		for run := 0; run < runs; run++ {
			start := time.Now()
			r, err := core.Analyze(patched, coldCfg)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); coldD == 0 || d < coldD {
				coldD = d
			}
			cold = r
		}

		var incr *core.Result
		var incrD time.Duration
		for run := 0; run < runs; run++ {
			start := time.Now()
			r, err := core.Analyze(patched, incrCfg)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); incrD == 0 || d < incrD {
				incrD = d
			}
			incr = r
		}
		st := incr.Incremental
		if st == nil {
			fatal(fmt.Errorf("k=%d: incremental lane did not engage", k))
		}
		if st.FnMisses != k {
			fatal(fmt.Errorf("k=%d: digest diff found %d changed functions", k, st.FnMisses))
		}
		identical := snapshotResultsEqual(cold, incr)
		c := incrCase{
			PatchedFunctions: k,
			ColdNS:           coldD.Nanoseconds(),
			IncrNS:           incrD.Nanoseconds(),
			Speedup:          float64(coldD) / float64(incrD),
			FnDigestHits:     st.FnHits,
			FnDigestMisses:   st.FnMisses,
			TypesReused:      st.TypesReused,
			TypesRetrained:   st.TypesRetrained,
			FamiliesRestored: st.FamiliesRestored,
			FamiliesResolved: st.FamiliesResolved,
			Identical:        identical,
		}
		out.Cases = append(out.Cases, c)
		fmt.Printf("  k=%-3d cold %12s  incr %12s  %6.1fx  (hits %d, reuse %d/%d types, restored %d/%d families, identical %v)\n",
			k, coldD.Round(time.Microsecond), incrD.Round(time.Microsecond), c.Speedup,
			st.FnHits, st.TypesReused, st.TypesReused+st.TypesRetrained,
			st.FamiliesRestored, st.FamiliesRestored+st.FamiliesResolved, identical)
		if !identical {
			fatal(fmt.Errorf("k=%d: incremental result diverged from the from-scratch analysis", k))
		}
		if k == 1 && c.Speedup < 10 {
			fatal(fmt.Errorf("k=1: incremental speedup %.1fx below the 10x floor", c.Speedup))
		}
	}

	// Untimed observed incremental run on the smallest patch: the
	// per-stage table shows the digest diff and the reuse counters
	// (fn_digest_hit/fn_digest_miss, types_retrained, families_resolved).
	obsCfg := incrCfg
	obsCfg.Obs = obs.NewBus()
	if _, err := core.Analyze(smallest, obsCfg); err != nil {
		fatal(err)
	}
	fmt.Printf("  per-stage attribution of a k=%d incremental run (observed, untimed):\n", ks[0])
	fmt.Print(obsCfg.Obs.Report().Table())

	writeJSON(jsonPath, out)
}
