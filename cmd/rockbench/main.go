// Command rockbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	rockbench -table2       Table 2 (application distance, 19 benchmarks)
//	rockbench -motivating   §2 walk-through: Fig. 7 sequences, DKL values,
//	                        and the chosen hierarchy (Fig. 6a)
//	rockbench -slmdump      Fig. 8: the trained depth-2 SLM of Class3
//	rockbench -fig9         Fig. 9: CGridListCtrlEx ground truth vs
//	                        reconstruction
//	rockbench -metrics      §6.4 "Other Metrics": DKL vs JS variants
//	rockbench -scale        §3.2 scalability: synthetic programs, 50-800 types
//	rockbench -pipeline     serial vs parallel pipeline wall-clock on the
//	                        largest benchmark (-json FILE writes the result)
//	rockbench -slm          SLM micro-bench: map-based builder vs frozen
//	                        flat-trie query kernel (-json FILE writes the
//	                        result, e.g. BENCH_slm.json)
//	rockbench -snapshot     cold vs warm end-to-end analysis over the whole
//	                        Table 2 suite through the content-addressed
//	                        snapshot cache (-json FILE writes the result,
//	                        e.g. BENCH_snapshot.json)
//	rockbench -corpus       corpus batch engine: the whole Table 2 suite as
//	                        one batch on a shared worker pool — sequential
//	                        loop vs corpus at workers 1 and N, cold vs warm
//	                        cached passes, peak heap/RSS; every corpus
//	                        result is asserted deep-equal to the sequential
//	                        loop (-json FILE writes the result, e.g.
//	                        BENCH_corpus.json)
//	rockbench -emit DIR     write every benchmark image to DIR (for cmd/rock)
//	rockbench -all          everything above except -emit
//
// The global -workers flag bounds the analysis worker pool in every mode
// (0 = all CPUs, 1 = serial). -cpuprofile FILE and -memprofile FILE write
// pprof profiles covering whichever experiments ran, so perf work can
// measure instead of guess:
//
//	rockbench -table2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/image"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
	"repro/internal/synth"
)

// workers is the global worker-pool bound applied to every experiment.
var workers = flag.Int("workers", 0, "analysis worker pool size (0 = all CPUs, 1 = serial)")

// benchConfig returns the paper-default pipeline configuration with the
// -workers bound applied.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = *workers
	return cfg
}

func main() {
	table2 := flag.Bool("table2", false, "regenerate Table 2")
	motivating := flag.Bool("motivating", false, "run the §2 motivating example")
	slmdump := flag.Bool("slmdump", false, "dump the Fig. 8 SLM")
	fig9 := flag.Bool("fig9", false, "print the Fig. 9 hierarchies")
	metrics := flag.Bool("metrics", false, "run the §6.4 metric ablation")
	scale := flag.Bool("scale", false, "run the scalability sweep")
	pipeline := flag.Bool("pipeline", false, "measure serial vs parallel pipeline wall-clock")
	slmBench := flag.Bool("slm", false, "measure the builder vs frozen SLM query kernel")
	snapBench := flag.Bool("snapshot", false, "measure cold vs warm analysis through the snapshot cache")
	corpusBench := flag.Bool("corpus", false, "measure the corpus batch engine against a sequential per-image loop")
	jsonOut := flag.String("json", "", "write the -pipeline, -slm, -snapshot, or -corpus result to this JSON file")
	emit := flag.String("emit", "", "write benchmark images to this directory")
	all := flag.Bool("all", false, "run every experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU pprof profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap pprof profile to this file")
	flag.Parse()
	if *all {
		*table2, *motivating, *slmdump, *fig9, *metrics, *scale, *pipeline, *slmBench, *snapBench, *corpusBench = true, true, true, true, true, true, true, true, true, true
	}
	jsonModes := 0
	for _, on := range []bool{*pipeline, *slmBench, *snapBench, *corpusBench} {
		if on {
			jsonModes++
		}
	}
	if *jsonOut != "" && jsonModes > 1 && !*all {
		fatal(fmt.Errorf("-json names a single output file; run -pipeline, -slm, -snapshot, and -corpus separately"))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	ran := false
	if *table2 {
		ran = true
		runTable2()
	}
	if *motivating {
		ran = true
		runMotivating()
	}
	if *slmdump {
		ran = true
		runSLMDump()
	}
	if *fig9 {
		ran = true
		runFig9()
	}
	if *metrics {
		ran = true
		runMetrics()
	}
	if *scale {
		ran = true
		runScale()
	}
	if *pipeline {
		ran = true
		runPipeline(*jsonOut)
	}
	if *slmBench {
		ran = true
		jp := *jsonOut
		if *pipeline {
			jp = "" // -all: the single -json path belongs to -pipeline
		}
		runSLMBench(jp)
	}
	if *snapBench {
		ran = true
		jp := *jsonOut
		if *pipeline || *slmBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runSnapshotBench(jp)
	}
	if *corpusBench {
		ran = true
		jp := *jsonOut
		if *pipeline || *slmBench || *snapBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runCorpusBench(jp)
	}
	if *emit != "" {
		ran = true
		runEmit(*emit)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockbench:", err)
	os.Exit(1)
}

func runTable2() {
	fmt.Println("== Table 2: application distance from H_P ==")
	rows, err := eval.RunAllWithConfig(benchConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Println(eval.Table2(rows))
}

// runMotivating reproduces the §2 walk-through end to end.
func runMotivating() {
	fmt.Println("== §2 motivating example (Stream / Confirmable / Flushable) ==")
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(img.Strip(), benchConfig())
	if err != nil {
		fatal(err)
	}
	name := core.TypeNamer(img.Meta)

	fmt.Println("\nFig. 7 — usage sequences extracted from the stripped binary:")
	var vts []uint64
	for _, v := range res.VTables {
		vts = append(vts, v.Addr)
	}
	sort.Slice(vts, func(i, j int) bool { return vts[i] < vts[j] })
	for _, t := range vts {
		fmt.Printf("  %s:\n", name(t))
		for _, seq := range res.Tracelets.RawPerType[t] {
			s := ""
			for i, e := range seq {
				if i > 0 {
					s += "; "
				}
				s += e.String()
			}
			fmt.Printf("    %s\n", s)
		}
	}

	fmt.Println("\npairwise DKL distances (parent || child):")
	for _, p := range vts {
		for _, c := range vts {
			if p == c {
				continue
			}
			fmt.Printf("  D( %-22s || %-22s ) = %.4f\n", name(p), name(c), res.Dist[[2]uint64{p, c}])
		}
	}

	fmt.Println("\nreconstructed hierarchy (Fig. 6a):")
	fmt.Print(res.Hierarchy.String(name))
}

// runSLMDump prints the trained SLM of the FlushableStream type — the
// paper's Fig. 8 "trained statistical language model of Class3".
func runSLMDump() {
	fmt.Println("== Fig. 8: trained SLM (depth 2) of FlushableStream (Class3) ==")
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(img.Strip(), benchConfig())
	if err != nil {
		fatal(err)
	}
	tm := img.Meta.TypeByName("FlushableStream")
	if tm == nil {
		fatal(fmt.Errorf("FlushableStream not emitted"))
	}
	m := res.Models[tm.VTable]
	fmt.Print(m.Dump(res.SymbolName))
}

func runFig9() {
	fmt.Println("== Fig. 9: CGridListCtrlEx ground truth vs reconstruction ==")
	b := bench.ByName("CGridListCtrlEx")
	img, meta, err := b.Build()
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(img, benchConfig())
	if err != nil {
		fatal(err)
	}
	gt, err := eval.GroundTruthForest(meta)
	if err != nil {
		fatal(err)
	}
	name := core.TypeNamer(meta)
	fmt.Println("\n(a) ground truth (CDialog and CEdit were optimized out):")
	fmt.Print(gt.String(name))
	fmt.Println("\n(b) reconstructed (the orphan pairs are spliced):")
	fmt.Print(res.Hierarchy.String(name))
}

// runMetrics reruns the nine unresolvable benchmarks under each §6.4
// metric and reports average with-SLM errors: the asymmetric DKL should
// dominate the symmetric variants.
func runMetrics() {
	fmt.Println("== §6.4 Other Metrics: DKL vs JS-divergence vs JS-distance ==")
	for _, metric := range []slm.Metric{slm.MetricKL, slm.MetricJSDivergence, slm.MetricJSDistance} {
		totM, totA := 0.0, 0.0
		n := 0
		for _, b := range bench.All() {
			if b.Resolvable {
				continue
			}
			cfg := benchConfig()
			cfg.Metric = metric
			row, err := eval.RunWithConfig(b, cfg)
			if err != nil {
				fatal(err)
			}
			totM += row.WithMissing
			totA += row.WithAdded
			n++
		}
		fmt.Printf("  %-14s avg missing %.3f  avg added %.3f  (9 unresolvable benchmarks)\n",
			metric.String(), totM/float64(n), totA/float64(n))
	}
}

func runScale() {
	fmt.Println("== §3.2 scalability: synthetic programs ==")
	fmt.Printf("%8s %8s %10s %12s %12s\n", "families", "types", "funcs", "analysis", "parentAcc")
	for _, fams := range []int{10, 25, 50, 100} {
		p := synth.DefaultParams(7)
		p.Families = fams
		prog, _ := synth.Generate(p)
		img, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		stripped := img.Strip()
		start := time.Now()
		res, err := core.Analyze(stripped, benchConfig())
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		gt, err := eval.GroundTruthForest(img.Meta)
		if err != nil {
			fatal(err)
		}
		total, correct := 0, 0
		for _, t := range gt.Nodes() {
			wp, wok := gt.Parent(t)
			gp, gok := res.Hierarchy.Parent(t)
			total++
			if wok == gok && (!wok || wp == gp) {
				correct++
			}
		}
		fmt.Printf("%8d %8d %10d %12s %11.1f%%\n",
			fams, len(res.VTables), len(stripped.Entries), elapsed.Round(time.Millisecond),
			100*float64(correct)/float64(total))
	}
}

// pipelineResult is the JSON record emitted by -pipeline (the CI smoke
// artifact BENCH_pipeline.json).
type pipelineResult struct {
	Benchmark  string  `json:"benchmark"`
	Types      int     `json:"types"`
	Families   int     `json:"families"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Runs       int     `json:"runs"`
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
}

// runPipeline measures the end-to-end analysis wall-clock of the largest
// Table 2 benchmark (by image size) with Workers=1 against the parallel
// pool, verifies the two results are deep-equal, and optionally writes the
// measurement to a JSON file.
func runPipeline(jsonPath string) {
	fmt.Println("== pipeline: serial vs parallel wall-clock (largest benchmark) ==")
	var largest *bench.Benchmark
	var img *image.Image
	for _, b := range bench.All() {
		bi, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		if img == nil || len(bi.Code)+len(bi.Rodata) > len(img.Code)+len(img.Rodata) {
			largest, img = b, bi
		}
	}

	serialCfg := benchConfig()
	serialCfg.Workers = 1
	parCfg := benchConfig()
	if parCfg.Workers == 0 {
		parCfg.Workers = runtime.GOMAXPROCS(0)
	}
	if parCfg.Workers == 1 && runtime.GOMAXPROCS(0) > 1 {
		parCfg.Workers = runtime.GOMAXPROCS(0)
	}

	const runs = 3
	measure := func(cfg core.Config) (time.Duration, *core.Result) {
		best := time.Duration(0)
		var res *core.Result
		for i := 0; i < runs; i++ {
			start := time.Now()
			r, err := core.Analyze(img, cfg)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			res = r
		}
		return best, res
	}
	serialD, serialRes := measure(serialCfg)
	parD, parRes := measure(parCfg)

	identical := reflect.DeepEqual(serialRes.Dist, parRes.Dist) &&
		reflect.DeepEqual(serialRes.Families, parRes.Families) &&
		reflect.DeepEqual(serialRes.MultiParents, parRes.MultiParents)

	out := pipelineResult{
		Benchmark:  largest.Name,
		Types:      len(serialRes.VTables),
		Families:   len(serialRes.Families),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parCfg.Workers,
		Runs:       runs,
		SerialNS:   serialD.Nanoseconds(),
		ParallelNS: parD.Nanoseconds(),
		Speedup:    float64(serialD) / float64(parD),
		Identical:  identical,
	}
	fmt.Printf("  benchmark %s: %d types, %d families\n", out.Benchmark, out.Types, out.Families)
	fmt.Printf("  serial (workers=1):   %12s\n", serialD.Round(time.Microsecond))
	fmt.Printf("  parallel (workers=%d): %12s\n", out.Workers, parD.Round(time.Microsecond))
	fmt.Printf("  speedup %.2fx on GOMAXPROCS=%d, results identical: %v\n",
		out.Speedup, out.GOMAXPROCS, identical)
	if !identical {
		fatal(fmt.Errorf("parallel pipeline diverged from the serial pipeline"))
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

// slmResult is the JSON record emitted by -slm (the CI artifact
// BENCH_slm.json): the map-based builder trie against the frozen
// flat-trie kernel on the same deterministic corpus the repository's
// BenchmarkLogProbSeq/BenchmarkWordDist use.
type slmResult struct {
	Alphabet          int     `json:"alphabet"`
	Depth             int     `json:"depth"`
	Words             int     `json:"words"`
	BuilderSeqNS      float64 `json:"builder_logprobseq_ns"`
	FrozenSeqNS       float64 `json:"frozen_logprobseq_ns"`
	SeqSpeedup        float64 `json:"logprobseq_speedup"`
	BuilderWordDistNS float64 `json:"builder_worddist_ns"`
	FrozenWordDistNS  float64 `json:"frozen_worddist_ns"`
	WordDistSpeedup   float64 `json:"worddist_speedup"`
	BuilderSeqAllocs  float64 `json:"builder_logprobseq_allocs"`
	FrozenSeqAllocs   float64 `json:"frozen_logprobseq_allocs"`
	BuilderSeqBytes   float64 `json:"builder_logprobseq_bytes"`
	FrozenSeqBytes    float64 `json:"frozen_logprobseq_bytes"`
}

// measureOp times fn in a ~200ms loop and reports ns, heap allocations,
// and heap bytes per call (the rockbench equivalent of -benchmem).
func measureOp(fn func()) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	fn() // warm up
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for time.Since(start) < 200*time.Millisecond {
		fn()
		iters++
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n
}

// runSLMBench measures the PPM-C query kernel in isolation: per-word
// LogProbSeq and per-model word-distribution derivation, builder vs
// frozen, on a deterministic corpus (alphabet 24, depth 2, 256 words of
// length 7 — the shape of one family's sweep).
func runSLMBench(jsonPath string) {
	fmt.Println("== SLM kernel: map-based builder vs frozen flat trie ==")
	const alpha, depth, nWords, wordLen = 24, 2, 256, 7
	builder := slm.New(depth, alpha)
	words := make([][]int, nWords)
	for i := range words {
		w := make([]int, wordLen)
		for j := range w {
			w[j] = (i*31 + j*17 + i*i%13) % alpha
		}
		words[i] = w
		if i%2 == 0 {
			builder.Train(w)
		}
	}
	frozen := builder.Freeze()
	querier := frozen.NewQuerier()

	out := slmResult{Alphabet: alpha, Depth: depth, Words: nWords}
	i := 0
	out.BuilderSeqNS, out.BuilderSeqAllocs, out.BuilderSeqBytes = measureOp(func() {
		builder.LogProbSeq(words[i%nWords])
		i++
	})
	i = 0
	out.FrozenSeqNS, out.FrozenSeqAllocs, out.FrozenSeqBytes = measureOp(func() {
		querier.LogProbSeq(words[i%nWords])
		i++
	})
	out.BuilderWordDistNS, _, _ = measureOp(func() { slm.WordDistribution(builder, words) })
	out.FrozenWordDistNS, _, _ = measureOp(func() { slm.WordDistribution(frozen, words) })
	out.SeqSpeedup = out.BuilderSeqNS / out.FrozenSeqNS
	out.WordDistSpeedup = out.BuilderWordDistNS / out.FrozenWordDistNS

	fmt.Printf("  corpus: alphabet %d, depth %d, %d words of length %d (%d trie nodes)\n",
		alpha, depth, nWords, wordLen, frozen.Nodes())
	fmt.Printf("  LogProbSeq  builder: %8.0f ns/op  %6.1f allocs/op  %7.0f B/op\n",
		out.BuilderSeqNS, out.BuilderSeqAllocs, out.BuilderSeqBytes)
	fmt.Printf("  LogProbSeq  frozen:  %8.0f ns/op  %6.1f allocs/op  %7.0f B/op  (%.2fx)\n",
		out.FrozenSeqNS, out.FrozenSeqAllocs, out.FrozenSeqBytes, out.SeqSpeedup)
	fmt.Printf("  wordDist    builder: %8.0f ns/op\n", out.BuilderWordDistNS)
	fmt.Printf("  wordDist    frozen:  %8.0f ns/op  (%.2fx)\n", out.FrozenWordDistNS, out.WordDistSpeedup)
	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

// snapshotResult is the JSON record emitted by -snapshot (the CI artifact
// BENCH_snapshot.json): end-to-end analysis wall-clock over the whole
// Table 2 suite, cold (empty cache, so every run computes everything and
// writes its snapshot) against warm (every run restores the hierarchy
// stage from its snapshot).
type snapshotResult struct {
	Benchmarks int     `json:"benchmarks"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	WarmRuns   int     `json:"warm_runs"`
	ColdNS     int64   `json:"cold_ns"`
	WarmNS     int64   `json:"warm_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
	CacheBytes int64   `json:"cache_bytes"`
}

// snapshotResultsEqual compares the analysis outcome of a cold and a warm
// run field by field. Funcs and Models are deliberately excluded: a warm
// run never lifts functions or retains builder-form models (both are
// documented as nil when their stage is restored from a snapshot).
func snapshotResultsEqual(cold, warm *core.Result) bool {
	return reflect.DeepEqual(cold.VTables, warm.VTables) &&
		reflect.DeepEqual(cold.Structural, warm.Structural) &&
		reflect.DeepEqual(cold.Tracelets, warm.Tracelets) &&
		reflect.DeepEqual(cold.Alphabet, warm.Alphabet) &&
		reflect.DeepEqual(cold.Frozen, warm.Frozen) &&
		reflect.DeepEqual(cold.Dist, warm.Dist) &&
		reflect.DeepEqual(cold.Families, warm.Families) &&
		reflect.DeepEqual(cold.Hierarchy, warm.Hierarchy) &&
		reflect.DeepEqual(cold.MultiParents, warm.MultiParents)
}

// runSnapshotBench measures the content-addressed snapshot cache on the
// full Table 2 suite: a cold pass over an empty cache directory (computing
// and persisting every snapshot) against warm passes that restore the
// hierarchy stage, with every warm result verified deep-equal to its cold
// counterpart. Image compilation is excluded from both timings.
func runSnapshotBench(jsonPath string) {
	fmt.Println("== snapshot cache: cold vs warm analysis (Table 2 suite) ==")
	benches := bench.All()
	imgs := make([]*image.Image, len(benches))
	for i, b := range benches {
		img, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		imgs[i] = img
	}
	cacheDir, err := os.MkdirTemp("", "rockbench-snap-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cfg := benchConfig()
	cfg.CacheDir = cacheDir

	coldRes := make([]*core.Result, len(imgs))
	coldStart := time.Now()
	for i, img := range imgs {
		r, err := core.Analyze(img, cfg)
		if err != nil {
			fatal(err)
		}
		coldRes[i] = r
	}
	coldD := time.Since(coldStart)
	for i, r := range coldRes {
		if r.SnapshotReuse != snapshot.LevelNone {
			fatal(fmt.Errorf("%s: cold run reused a snapshot (level %d)", benches[i].Name, r.SnapshotReuse))
		}
	}

	const warmRuns = 3
	warmRes := make([]*core.Result, len(imgs))
	warmD := time.Duration(0)
	for run := 0; run < warmRuns; run++ {
		start := time.Now()
		for i, img := range imgs {
			r, err := core.Analyze(img, cfg)
			if err != nil {
				fatal(err)
			}
			warmRes[i] = r
		}
		if d := time.Since(start); warmD == 0 || d < warmD {
			warmD = d
		}
	}
	identical := true
	for i := range imgs {
		if warmRes[i].SnapshotReuse != snapshot.LevelHierarchy {
			fatal(fmt.Errorf("%s: warm run reused only level %d", benches[i].Name, warmRes[i].SnapshotReuse))
		}
		if !snapshotResultsEqual(coldRes[i], warmRes[i]) {
			identical = false
			fmt.Printf("  MISMATCH: %s warm result differs from cold\n", benches[i].Name)
		}
	}

	var cacheBytes int64
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			cacheBytes += info.Size()
		}
	}

	out := snapshotResult{
		Benchmarks: len(benches),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		WarmRuns:   warmRuns,
		ColdNS:     coldD.Nanoseconds(),
		WarmNS:     warmD.Nanoseconds(),
		Speedup:    float64(coldD) / float64(warmD),
		Identical:  identical,
		CacheBytes: cacheBytes,
	}
	fmt.Printf("  suite: %d benchmarks, %d snapshot files, %d bytes cached\n",
		out.Benchmarks, len(entries), out.CacheBytes)
	fmt.Printf("  cold (compute + persist): %12s\n", coldD.Round(time.Microsecond))
	fmt.Printf("  warm (restore hierarchy): %12s  (best of %d)\n", warmD.Round(time.Microsecond), warmRuns)
	fmt.Printf("  speedup %.2fx, results identical: %v\n", out.Speedup, identical)
	if !identical {
		fatal(fmt.Errorf("warm snapshot results diverged from cold results"))
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

// corpusResult is the JSON record emitted by -corpus (the CI artifact
// BENCH_corpus.json): the corpus batch engine against the sequential
// per-image loop it replaced, over the whole Table 2 suite.
type corpusResult struct {
	Benchmarks int   `json:"benchmarks"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	Runs       int   `json:"runs"`
	SeqNS      int64 `json:"seq_ns"`
	Corpus1NS  int64 `json:"corpus1_ns"`
	// Corpus1Overhead is corpus1/seq - 1: the scheduling cost of the batch
	// engine when it degrades to a fully serial run (target ≤ 0.05).
	Corpus1Overhead float64 `json:"corpus1_overhead"`
	CorpusNNS       int64   `json:"corpusn_ns"`
	Speedup         float64 `json:"speedup"`
	ColdNS          int64   `json:"cold_ns"`
	WarmNS          int64   `json:"warm_ns"`
	WarmSpeedup     float64 `json:"warm_speedup"`
	WarmImages      int     `json:"warm_images"`
	Identical       bool    `json:"identical"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	PeakRSSKB       int64   `json:"peak_rss_kb"`
}

// corpusSuiteRun schedules the prebuilt suite through the batch engine.
func corpusSuiteRun(imgs []*image.Image, cfg core.Config, workers int) ([]*core.Result, corpus.Stats, error) {
	cfg.Workers = workers
	scratch := slm.NewScratchPool()
	items, stats, err := corpus.Run(context.Background(), len(imgs),
		corpus.Options{Workers: workers},
		func(i int) bool { return core.ProbeSnapshot(imgs[i], cfg) == snapshot.LevelHierarchy },
		func(ctx context.Context, i int, sh *pool.Shared) (*core.Result, error) {
			c := cfg
			c.Pool = sh
			c.Scratch = scratch
			return core.AnalyzeContext(ctx, imgs[i], c)
		})
	if err != nil {
		return nil, stats, err
	}
	res := make([]*core.Result, len(items))
	for i, it := range items {
		if it.Err != nil {
			return nil, stats, fmt.Errorf("image %d: %w", i, it.Err)
		}
		res[i] = it.Value
	}
	return res, stats, nil
}

// peakRSSKB reads the process's high-water resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			var kb int64
			fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d", &kb)
			return kb
		}
	}
	return 0
}

// runCorpusBench measures the corpus batch engine on the whole Table 2
// suite: a sequential per-image loop (the code path the engine replaced)
// against the corpus at workers 1 (serial-degradation overhead) and
// workers N (cross-image speedup), then a cold and a warm cached corpus
// pass (warm images bypass the analysis queue entirely). Every corpus
// result is asserted deep-equal to the sequential loop — a divergence is
// fatal. Image compilation is excluded from all timings.
func runCorpusBench(jsonPath string) {
	fmt.Println("== corpus batch engine: sequential loop vs shared-pool scheduling (Table 2 suite) ==")
	benches := bench.All()
	imgs := make([]*image.Image, len(benches))
	for i, b := range benches {
		img, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		imgs[i] = img
	}
	cfg := benchConfig()
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	// The three timed passes are interleaved within each round (and the
	// best of each kept), so a slow container phase hits all of them
	// alike instead of biasing whichever measurement block it landed on —
	// the workers=1 overhead comparison is a few percent, well inside
	// block-to-block noise on a shared machine.
	const runs = 5
	timed := func(d *time.Duration, res *[]*core.Result, f func() []*core.Result) {
		start := time.Now()
		out := f()
		if e := time.Since(start); *d == 0 || e < *d {
			*d = e
		}
		*res = out
	}

	// Sequential per-image loop, fully serial — the replaced code path.
	seqCfg := cfg
	seqCfg.Workers = 1
	var seqD, corpus1D, corpusND time.Duration
	var seqRes, corpus1Res, corpusNRes []*core.Result
	for r := 0; r < runs; r++ {
		timed(&seqD, &seqRes, func() []*core.Result {
			out := make([]*core.Result, len(imgs))
			for i, img := range imgs {
				r, err := core.Analyze(img, seqCfg)
				if err != nil {
					fatal(err)
				}
				out[i] = r
			}
			return out
		})
		timed(&corpus1D, &corpus1Res, func() []*core.Result {
			res, _, err := corpusSuiteRun(imgs, cfg, 1)
			if err != nil {
				fatal(err)
			}
			return res
		})
		timed(&corpusND, &corpusNRes, func() []*core.Result {
			res, _, err := corpusSuiteRun(imgs, cfg, nWorkers)
			if err != nil {
				fatal(err)
			}
			return res
		})
	}

	assertEqual := func(what string, got []*core.Result) {
		for i := range got {
			if !snapshotResultsEqual(seqRes[i], got[i]) {
				fatal(fmt.Errorf("%s: %s diverged from the sequential loop", what, benches[i].Name))
			}
		}
	}
	assertEqual("corpus workers=1", corpus1Res)
	assertEqual(fmt.Sprintf("corpus workers=%d", nWorkers), corpusNRes)

	// Cold and warm cached passes: the cold pass computes and persists
	// every snapshot; the warm pass probes every image fully warm and
	// bypasses the analysis queue.
	cacheDir, err := os.MkdirTemp("", "rockbench-corpus-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cachedCfg := cfg
	cachedCfg.CacheDir = cacheDir
	coldStart := time.Now()
	coldRes, coldStats, err := corpusSuiteRun(imgs, cachedCfg, nWorkers)
	if err != nil {
		fatal(err)
	}
	coldD := time.Since(coldStart)
	if coldStats.Warm != 0 {
		fatal(fmt.Errorf("cold corpus pass classified %d images warm", coldStats.Warm))
	}
	assertEqual("corpus cold", coldRes)

	var warmD time.Duration
	var warmRes []*core.Result
	var warmStats corpus.Stats
	for r := 0; r < runs; r++ {
		start := time.Now()
		warmRes, warmStats, err = corpusSuiteRun(imgs, cachedCfg, nWorkers)
		if err != nil {
			fatal(err)
		}
		if d := time.Since(start); warmD == 0 || d < warmD {
			warmD = d
		}
	}
	if warmStats.Warm != len(imgs) {
		fatal(fmt.Errorf("warm corpus pass classified only %d of %d images warm", warmStats.Warm, len(imgs)))
	}
	assertEqual("corpus warm", warmRes)

	out := corpusResult{
		Benchmarks:      len(benches),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         nWorkers,
		Runs:            runs,
		SeqNS:           seqD.Nanoseconds(),
		Corpus1NS:       corpus1D.Nanoseconds(),
		Corpus1Overhead: float64(corpus1D)/float64(seqD) - 1,
		CorpusNNS:       corpusND.Nanoseconds(),
		Speedup:         float64(seqD) / float64(corpusND),
		ColdNS:          coldD.Nanoseconds(),
		WarmNS:          warmD.Nanoseconds(),
		WarmSpeedup:     float64(coldD) / float64(warmD),
		WarmImages:      warmStats.Warm,
		Identical:       true, // assertEqual is fatal on divergence
		PeakHeapBytes:   warmStats.PeakHeap,
		PeakRSSKB:       peakRSSKB(),
	}
	fmt.Printf("  suite: %d benchmarks, GOMAXPROCS %d\n", out.Benchmarks, out.GOMAXPROCS)
	fmt.Printf("  sequential loop (workers=1):  %12s\n", seqD.Round(time.Microsecond))
	fmt.Printf("  corpus (workers=1):           %12s  (overhead %+.1f%%)\n",
		corpus1D.Round(time.Microsecond), 100*out.Corpus1Overhead)
	fmt.Printf("  corpus (workers=%-2d):          %12s  (%.2fx vs sequential)\n",
		nWorkers, corpusND.Round(time.Microsecond), out.Speedup)
	fmt.Printf("  corpus cold (cache write):    %12s\n", coldD.Round(time.Microsecond))
	fmt.Printf("  corpus warm (%2d/%2d bypass):   %12s  (%.1fx vs cold)\n",
		out.WarmImages, out.Benchmarks, warmD.Round(time.Microsecond), out.WarmSpeedup)
	fmt.Printf("  peak heap %.1f MiB, peak RSS %d KiB, results identical: %v\n",
		float64(out.PeakHeapBytes)/(1<<20), out.PeakRSSKB, out.Identical)
	if jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
}

func runEmit(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for _, b := range bench.All() {
		img, meta, err := b.Build()
		if err != nil {
			fatal(err)
		}
		img.Meta = meta // keep ground truth for display by cmd/rock
		data, err := img.Marshal()
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, b.Name+".rbin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
