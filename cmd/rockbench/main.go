// Command rockbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	rockbench -table2       Table 2 (application distance, 19 benchmarks)
//	rockbench -motivating   §2 walk-through: Fig. 7 sequences, DKL values,
//	                        and the chosen hierarchy (Fig. 6a)
//	rockbench -slmdump      Fig. 8: the trained depth-2 SLM of Class3
//	rockbench -fig9         Fig. 9: CGridListCtrlEx ground truth vs
//	                        reconstruction
//	rockbench -metrics      §6.4 "Other Metrics": DKL vs JS variants
//	rockbench -scale        sub-quadratic sweep benchmark: one wide synthetic
//	                        family at -sizes (default 1000,3000,10000 types),
//	                        sparse candidate-pair sweep vs the dense n×n
//	                        matrix (measured up to -densemax types,
//	                        model-estimated above; every measured dense run
//	                        is asserted to reconstruct the same hierarchy);
//	                        -json FILE writes the result, e.g.
//	                        BENCH_scale.json
//	rockbench -pipeline     serial vs parallel pipeline wall-clock on the
//	                        largest benchmark (-json FILE writes the result)
//	rockbench -slm          SLM micro-bench: map-based builder vs frozen
//	                        flat-trie query kernel (-json FILE writes the
//	                        result, e.g. BENCH_slm.json)
//	rockbench -snapshot     cold vs warm end-to-end analysis over the whole
//	                        Table 2 suite through the content-addressed
//	                        snapshot cache (-json FILE writes the result,
//	                        e.g. BENCH_snapshot.json)
//	rockbench -corpus       corpus batch engine: the whole Table 2 suite as
//	                        one batch on a shared worker pool — sequential
//	                        loop vs corpus at workers 1 and N, cold vs warm
//	                        cached passes, peak heap/RSS; every corpus
//	                        result is asserted deep-equal to the sequential
//	                        loop (-json FILE writes the result, e.g.
//	                        BENCH_corpus.json)
//	rockbench -synth        adversarial accuracy grid: seeded generator
//	                        shapes x compiler hard-case modes, scored per
//	                        edge (precision/recall/F1 + tier); -json FILE
//	                        writes the report (e.g. ACC_synth.json) and
//	                        -floors FILE gates it against checked-in
//	                        accuracy floors (non-zero exit on regression)
//	rockbench -fusion       evidence fusion: rerun the adversarial grid with
//	                        the subtype provider fused into the SLM sweep,
//	                        pair the per-config scores against SLM-only
//	                        (-json FILE writes ACC_fusion.json), and measure
//	                        the fused sweep's overhead with per-provider
//	                        attribution on the largest benchmark
//	                        (-fusion-bench FILE writes BENCH_fusion.json);
//	                        -floors FILE additionally gates both halves
//	                        against the checked-in v2 accuracy floors
//	rockbench -incr         incremental re-analysis: a deep synthetic binary
//	                        is analyzed once to persist its snapshot, then
//	                        re-linked with -patches functions modified
//	                        (default 1,5,25) and re-analyzed both from
//	                        scratch and through the version-diff warm lane
//	                        (-incr-from); every incremental result is
//	                        asserted deep-equal to the from-scratch one, and
//	                        a 1-function patch must be at least 10x faster
//	                        than cold (-json FILE writes the result, e.g.
//	                        BENCH_incr.json)
//	rockbench -serve        rockd daemon loadgen: starts an in-process
//	                        daemon on a loopback listener and drives it
//	                        over HTTP — 100 concurrent identical
//	                        submissions must collapse to exactly 1 analysis
//	                        (singleflight), hot-cache hits must beat the
//	                        cold analysis by >= 50x at p50, and the
//	                        interactive hot path must stay under one
//	                        cold-analysis time while a batch backlog
//	                        drains; all three are fatal assertions (-json
//	                        FILE writes the result, e.g. BENCH_serve.json)
//	rockbench -emit DIR     write every benchmark image to DIR (for cmd/rock)
//	rockbench -all          everything above except -emit
//
// Each mode lives in its own file (paper.go, pipeline.go, slm.go,
// snapshot.go, corpus.go, synth.go, fusion.go, incr.go, serve.go) over
// the shared harness in harness.go.
//
// The global -workers flag bounds the analysis worker pool in every mode
// (0 = all CPUs, 1 = serial), and -cache/-invalidate thread the snapshot
// cache settings into every analysis (the -snapshot and -corpus modes
// measure their own temporary caches regardless). -cpuprofile FILE and
// -memprofile FILE write pprof profiles covering whichever experiments
// ran, so perf work can measure instead of guess:
//
//	rockbench -table2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cliutil"
	"repro/internal/core"
)

// shared holds the -workers/-cache/-invalidate flags every mode obeys.
var shared *cliutil.Flags

// benchConfig returns the paper-default pipeline configuration with the
// shared flags applied.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	if err := shared.Apply(&cfg); err != nil {
		fatal(err)
	}
	return cfg
}

func main() {
	table2 := flag.Bool("table2", false, "regenerate Table 2")
	motivating := flag.Bool("motivating", false, "run the §2 motivating example")
	slmdump := flag.Bool("slmdump", false, "dump the Fig. 8 SLM")
	fig9 := flag.Bool("fig9", false, "print the Fig. 9 hierarchies")
	metrics := flag.Bool("metrics", false, "run the §6.4 metric ablation")
	scale := flag.Bool("scale", false, "benchmark the sparse distance sweep against the dense matrix on one wide synthetic family")
	sizes := flag.String("sizes", "1000,3000,10000", "with -scale: comma-separated family sizes (types per family)")
	denseMax := flag.Int("densemax", 1000, "with -scale: largest size at which the dense baseline is actually run (estimated above)")
	pipeline := flag.Bool("pipeline", false, "measure serial vs parallel pipeline wall-clock")
	slmBench := flag.Bool("slm", false, "measure the builder vs frozen SLM query kernel")
	snapBench := flag.Bool("snapshot", false, "measure cold vs warm analysis through the snapshot cache")
	corpusBench := flag.Bool("corpus", false, "measure the corpus batch engine against a sequential per-image loop")
	synthGrid := flag.Bool("synth", false, "run the adversarial accuracy grid and score reconstruction per edge")
	fusionMode := flag.Bool("fusion", false, "rerun the adversarial grid with the subtype evidence provider fused in, compare against SLM-only, and measure the overhead")
	fusionBenchOut := flag.String("fusion-bench", "", "with -fusion: write the timing artifact to this JSON file (e.g. BENCH_fusion.json)")
	floors := flag.String("floors", "", "with -synth or -fusion: compare the report against this accuracy-floors JSON file and exit non-zero on regression")
	incrBench := flag.Bool("incr", false, "measure incremental re-analysis of a patched binary against a prior snapshot vs from scratch")
	serveBench := flag.Bool("serve", false, "load-generate against an in-process rockd daemon and assert its serving-path claims (singleflight, hot cache, admission isolation)")
	patches := flag.String("patches", "1,5,25", "with -incr: comma-separated patch sizes (functions modified per case)")
	jsonOut := flag.String("json", "", "write the -pipeline, -slm, -snapshot, -corpus, or -synth result to this JSON file")
	emit := flag.String("emit", "", "write benchmark images to this directory")
	all := flag.Bool("all", false, "run every experiment")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU pprof profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap pprof profile to this file")
	shared = cliutil.Register(flag.CommandLine)
	flag.Parse()
	if _, err := shared.Resolve(); err != nil {
		cliutil.Usage("rockbench", err.Error())
	}
	if *all {
		*table2, *motivating, *slmdump, *fig9, *metrics, *scale, *pipeline, *slmBench, *snapBench, *corpusBench, *synthGrid, *fusionMode, *incrBench, *serveBench = true, true, true, true, true, true, true, true, true, true, true, true, true, true
	}
	jsonModes := 0
	for _, on := range []bool{*scale, *pipeline, *slmBench, *snapBench, *corpusBench, *synthGrid, *fusionMode, *incrBench, *serveBench} {
		if on {
			jsonModes++
		}
	}
	if *jsonOut != "" && jsonModes > 1 && !*all {
		cliutil.Usage("rockbench", "-json names a single output file; run -scale, -pipeline, -slm, -snapshot, -corpus, -synth, -fusion, -incr, and -serve separately")
	}
	if *floors != "" && !*synthGrid && !*fusionMode {
		cliutil.Usage("rockbench", "-floors requires -synth or -fusion")
	}
	if *fusionBenchOut != "" && !*fusionMode {
		cliutil.Usage("rockbench", "-fusion-bench requires -fusion")
	}
	if *patches != "1,5,25" && !*incrBench {
		cliutil.Usage("rockbench", "-patches requires -incr")
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	ran := false
	if *table2 {
		ran = true
		runTable2()
	}
	if *motivating {
		ran = true
		runMotivating()
	}
	if *slmdump {
		ran = true
		runSLMDump()
	}
	if *fig9 {
		ran = true
		runFig9()
	}
	if *metrics {
		ran = true
		runMetrics()
	}
	if *scale {
		ran = true
		runScale(*jsonOut, *sizes, *denseMax)
	}
	if *pipeline {
		ran = true
		jp := *jsonOut
		if *scale {
			jp = "" // -all: the single -json path belongs to -scale
		}
		runPipeline(jp)
	}
	if *slmBench {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runSLMBench(jp)
	}
	if *snapBench {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runSnapshotBench(jp)
	}
	if *corpusBench {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench || *snapBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runCorpusBench(jp)
	}
	if *synthGrid {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench || *snapBench || *corpusBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runSynth(jp, *floors)
	}
	if *fusionMode {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench || *snapBench || *corpusBench || *synthGrid {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runFusion(jp, *fusionBenchOut, *floors)
	}
	if *incrBench {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench || *snapBench || *corpusBench || *synthGrid || *fusionMode {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runIncrBench(jp, *patches)
	}
	if *serveBench {
		ran = true
		jp := *jsonOut
		if *scale || *pipeline || *slmBench || *snapBench || *corpusBench || *synthGrid || *fusionMode || *incrBench {
			jp = "" // -all: the single -json path belongs to an earlier mode
		}
		runServe(jp)
	}
	if *emit != "" {
		ran = true
		runEmit(*emit)
	}
	if !ran {
		flag.Usage()
		os.Exit(cliutil.ExitUsage)
	}
}

func fatal(err error) {
	cliutil.Fatal("rockbench", err)
}
