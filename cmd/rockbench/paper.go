package main

// The paper-facing modes: every table and figure of the evaluation, plus
// -emit for producing cmd/rock input images.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/slm"
)

func runTable2() {
	fmt.Println("== Table 2: application distance from H_P ==")
	rows, err := eval.RunAllWithConfig(benchConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Println(eval.Table2(rows))
}

// runMotivating reproduces the §2 walk-through end to end.
func runMotivating() {
	fmt.Println("== §2 motivating example (Stream / Confirmable / Flushable) ==")
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	cfg := benchConfig()
	// This walk-through prints every pairwise DKL value, so it needs the
	// full matrix, not just the admissible candidate pairs.
	cfg.DenseDist = true
	res, err := core.Analyze(img.Strip(), cfg)
	if err != nil {
		fatal(err)
	}
	name := core.TypeNamer(img.Meta)

	fmt.Println("\nFig. 7 — usage sequences extracted from the stripped binary:")
	var vts []uint64
	for _, v := range res.VTables {
		vts = append(vts, v.Addr)
	}
	sort.Slice(vts, func(i, j int) bool { return vts[i] < vts[j] })
	for _, t := range vts {
		fmt.Printf("  %s:\n", name(t))
		for _, seq := range res.Tracelets.RawPerType[t] {
			s := ""
			for i, e := range seq {
				if i > 0 {
					s += "; "
				}
				s += e.String()
			}
			fmt.Printf("    %s\n", s)
		}
	}

	fmt.Println("\npairwise DKL distances (parent || child):")
	for _, p := range vts {
		for _, c := range vts {
			if p == c {
				continue
			}
			fmt.Printf("  D( %-22s || %-22s ) = %.4f\n", name(p), name(c), res.Dist[[2]uint64{p, c}])
		}
	}

	fmt.Println("\nreconstructed hierarchy (Fig. 6a):")
	fmt.Print(res.Hierarchy.String(name))
}

// runSLMDump prints the trained SLM of the FlushableStream type — the
// paper's Fig. 8 "trained statistical language model of Class3".
func runSLMDump() {
	fmt.Println("== Fig. 8: trained SLM (depth 2) of FlushableStream (Class3) ==")
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(img.Strip(), benchConfig())
	if err != nil {
		fatal(err)
	}
	tm := img.Meta.TypeByName("FlushableStream")
	if tm == nil {
		fatal(fmt.Errorf("FlushableStream not emitted"))
	}
	m := res.Models[tm.VTable]
	fmt.Print(m.Dump(res.SymbolName))
}

func runFig9() {
	fmt.Println("== Fig. 9: CGridListCtrlEx ground truth vs reconstruction ==")
	b := bench.ByName("CGridListCtrlEx")
	img, meta, err := b.Build()
	if err != nil {
		fatal(err)
	}
	res, err := core.Analyze(img, benchConfig())
	if err != nil {
		fatal(err)
	}
	gt, err := eval.GroundTruthForest(meta)
	if err != nil {
		fatal(err)
	}
	name := core.TypeNamer(meta)
	fmt.Println("\n(a) ground truth (CDialog and CEdit were optimized out):")
	fmt.Print(gt.String(name))
	fmt.Println("\n(b) reconstructed (the orphan pairs are spliced):")
	fmt.Print(res.Hierarchy.String(name))
}

// runMetrics reruns the nine unresolvable benchmarks under each §6.4
// metric and reports average with-SLM errors: the asymmetric DKL should
// dominate the symmetric variants.
func runMetrics() {
	fmt.Println("== §6.4 Other Metrics: DKL vs JS-divergence vs JS-distance ==")
	for _, metric := range []slm.Metric{slm.MetricKL, slm.MetricJSDivergence, slm.MetricJSDistance} {
		totM, totA := 0.0, 0.0
		n := 0
		for _, b := range bench.All() {
			if b.Resolvable {
				continue
			}
			cfg := benchConfig()
			cfg.Metric = metric
			row, err := eval.RunWithConfig(b, cfg)
			if err != nil {
				fatal(err)
			}
			totM += row.WithMissing
			totA += row.WithAdded
			n++
		}
		fmt.Printf("  %-14s avg missing %.3f  avg added %.3f  (9 unresolvable benchmarks)\n",
			metric.String(), totM/float64(n), totA/float64(n))
	}
}

func runEmit(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for _, b := range bench.All() {
		img, meta, err := b.Build()
		if err != nil {
			fatal(err)
		}
		img.Meta = meta // keep ground truth for display by cmd/rock
		data, err := img.Marshal()
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, b.Name+".rbin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
}
