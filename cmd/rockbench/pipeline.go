package main

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/obs"
)

// pipelineResult is the JSON record emitted by -pipeline (the CI smoke
// artifact BENCH_pipeline.json).
type pipelineResult struct {
	Benchmark  string  `json:"benchmark"`
	Types      int     `json:"types"`
	Families   int     `json:"families"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Runs       int     `json:"runs"`
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
}

// runPipeline measures the end-to-end analysis wall-clock of the largest
// Table 2 benchmark (by image size) with Workers=1 against the parallel
// pool, verifies the two results are deep-equal, and optionally writes the
// measurement to a JSON file. The timed runs carry no observer — that is
// the configuration whose regressions matter — and a separate observed
// run afterwards prints the per-stage breakdown.
func runPipeline(jsonPath string) {
	fmt.Println("== pipeline: serial vs parallel wall-clock (largest benchmark) ==")
	var largest *bench.Benchmark
	var img *image.Image
	for _, b := range bench.All() {
		bi, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		if img == nil || len(bi.Code)+len(bi.Rodata) > len(img.Code)+len(img.Rodata) {
			largest, img = b, bi
		}
	}

	serialCfg := benchConfig()
	serialCfg.Workers = 1
	parCfg := benchConfig()
	if parCfg.Workers == 0 {
		parCfg.Workers = runtime.GOMAXPROCS(0)
	}
	if parCfg.Workers == 1 && runtime.GOMAXPROCS(0) > 1 {
		parCfg.Workers = runtime.GOMAXPROCS(0)
	}

	const runs = 3
	measure := func(cfg core.Config) (time.Duration, *core.Result) {
		best := time.Duration(0)
		var res *core.Result
		for i := 0; i < runs; i++ {
			start := time.Now()
			r, err := core.Analyze(img, cfg)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			res = r
		}
		return best, res
	}
	serialD, serialRes := measure(serialCfg)
	parD, parRes := measure(parCfg)

	identical := reflect.DeepEqual(serialRes.Dist, parRes.Dist) &&
		reflect.DeepEqual(serialRes.Families, parRes.Families) &&
		reflect.DeepEqual(serialRes.MultiParents, parRes.MultiParents)

	out := pipelineResult{
		Benchmark:  largest.Name,
		Types:      len(serialRes.VTables),
		Families:   len(serialRes.Families),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parCfg.Workers,
		Runs:       runs,
		SerialNS:   serialD.Nanoseconds(),
		ParallelNS: parD.Nanoseconds(),
		Speedup:    float64(serialD) / float64(parD),
		Identical:  identical,
	}
	fmt.Printf("  benchmark %s: %d types, %d families\n", out.Benchmark, out.Types, out.Families)
	fmt.Printf("  serial (workers=1):   %12s\n", serialD.Round(time.Microsecond))
	fmt.Printf("  parallel (workers=%d): %12s\n", out.Workers, parD.Round(time.Microsecond))
	fmt.Printf("  speedup %.2fx on GOMAXPROCS=%d, results identical: %v\n",
		out.Speedup, out.GOMAXPROCS, identical)
	if !identical {
		fatal(fmt.Errorf("parallel pipeline diverged from the serial pipeline"))
	}

	// Untimed observed run: where did the parallel wall-clock go?
	obsCfg := parCfg
	obsCfg.Obs = obs.NewBus()
	if _, err := core.Analyze(img, obsCfg); err != nil {
		fatal(err)
	}
	fmt.Println("  per-stage breakdown (observed run, untimed):")
	fmt.Print(obsCfg.Obs.Report().Table())

	writeJSON(jsonPath, out)
}
