package main

// The -scale mode: the sub-quadratic distance-sweep benchmark. It drives
// the synth generator at 1k–10k types in a single wide family (the
// scaling wall ROADMAP names: one family of n types used to cost an n×n
// distance matrix), analyzes each size with the default sparse sweep and
// — up to -densemax — with the DenseDist reporting sweep, and reports the
// wall-clock ratio alongside the pair counts that explain it. Every
// measured dense run is also a correctness smoke: its reconstruction must
// match the sparse run's exactly (hierarchies, arborescences, multiple
// parents) and every sparse Dist entry must be bit-identical to the dense
// one, or the mode fatals.

import (
	"fmt"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/synth"
)

// ScaleSchema identifies the BENCH_scale.json format.
const ScaleSchema = "rock-bench-scale/v1"

// scaleRow is one family size's measurement.
type scaleRow struct {
	// Types is the number of discovered binary types (family size + 1 root).
	Types int `json:"types"`
	// Funcs is the image's function count.
	Funcs int `json:"funcs"`
	// Words is the number of distinct tracelets image-wide — the shared
	// word set every distribution is measured over.
	Words int `json:"words"`
	// Families is the structural family count (1 when the generator's
	// single family survives intact).
	Families int `json:"families"`
	// AdmissiblePairs counts the (parent, child) pairs the structural
	// analysis admits — the edges Edmonds can actually consume.
	AdmissiblePairs int64 `json:"admissible_pairs"`
	// DensePairs is Σ n·(n-1) over families — what the dense sweep reduces.
	DensePairs int64 `json:"dense_pairs"`
	// SparseNs is the end-to-end sparse analysis wall-clock.
	SparseNs int64 `json:"sparse_ns"`
	// SparseDistPairs / SparseDistPairsPruned are the sparse run's observed
	// sweep counters: pairs reduced and pairs skipped.
	SparseDistPairs       int64 `json:"sparse_dist_pairs"`
	SparseDistPairsPruned int64 `json:"sparse_dist_pairs_pruned"`
	// DenseMeasured reports whether the dense sweep actually ran at this
	// size (sizes above -densemax only get the model-based estimate).
	DenseMeasured bool `json:"dense_measured"`
	// DenseNs is the measured dense analysis wall-clock (0 if not measured).
	DenseNs int64 `json:"dense_ns,omitempty"`
	// DenseEstNs is the model-based dense estimate for unmeasured sizes:
	// the measured sparse time plus the largest measured dense-sweep excess
	// scaled by (dense_pairs × words), the dense reduction volume.
	DenseEstNs int64 `json:"dense_est_ns,omitempty"`
	// Speedup is dense / sparse wall-clock (measured when available, else
	// estimated; 0 when no dense reference exists).
	Speedup float64 `json:"speedup,omitempty"`
	// ParentAcc is the fraction of types whose reconstructed parent edge
	// matches the generator's ground truth.
	ParentAcc float64 `json:"parent_acc"`
	// PeakRSSKB is the process high-water resident set after this size
	// (process-wide, monotone across rows).
	PeakRSSKB int64 `json:"peak_rss_kb"`
}

// scaleReport is the rockbench -scale output (BENCH_scale.json).
type scaleReport struct {
	Schema   string     `json:"schema"`
	Workers  int        `json:"workers"`
	DenseMax int        `json:"dense_max"`
	Rows     []scaleRow `json:"rows"`
}

// parseSizes parses the -sizes spec ("1000,3000,10000").
func parseSizes(spec string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad -sizes entry %q (want integers >= 2)", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// scaleImage generates and compiles one single-wide-family program of n
// types: a root with n-1 direct children, debug-friendly compilation (no
// inlining/folding) so the constructor-chain rule keeps the family whole,
// and minimal per-type usage so the shared word set stays lean at 10k
// types.
func scaleImage(n int) *image.Image {
	p := synth.DefaultParams(101)
	p.Families = 1
	p.Shape = synth.ShapeWide
	p.MaxDepth = 2
	p.MaxBranch = n - 1
	p.MethodsPerClass = 1
	p.FieldsPerClass = 0
	p.UseReps = 1
	prog, _ := synth.Generate(p)
	img, err := compiler.Compile(prog, compiler.DebugFriendlyOptions())
	if err != nil {
		fatal(err)
	}
	return img
}

// analyzeScale runs one observed, timed analysis. Observation costs a few
// atomic adds against multi-second runs, so the timed and counted run are
// one and the same for both modes (a fair comparison).
func analyzeScale(img *image.Image, dense bool) (*core.Result, time.Duration, *obs.Report) {
	cfg := benchConfig()
	cfg.DenseDist = dense
	bus := obs.NewBus()
	cfg.Obs = bus
	start := time.Now()
	res, err := core.Analyze(img.Strip(), cfg)
	if err != nil {
		fatal(err)
	}
	return res, time.Since(start), bus.Report()
}

// assertScaleEquivalent fatals unless the dense and sparse runs agree
// everywhere the sparse sweep claims equivalence: same hierarchy, same
// arborescences (weights excluded — the sparse root bound legitimately
// differs), same multi-parent choices, and bit-identical Dist entries for
// every pair the sparse sweep computed.
func assertScaleEquivalent(n int, sparse, dense *core.Result) {
	if !reflect.DeepEqual(sparse.Hierarchy, dense.Hierarchy) {
		fatal(fmt.Errorf("scale n=%d: sparse and dense hierarchies differ", n))
	}
	if !reflect.DeepEqual(sparse.MultiParents, dense.MultiParents) {
		fatal(fmt.Errorf("scale n=%d: sparse and dense multi-parent choices differ", n))
	}
	if len(sparse.Families) != len(dense.Families) {
		fatal(fmt.Errorf("scale n=%d: family counts differ", n))
	}
	for i := range sparse.Families {
		s, d := sparse.Families[i], dense.Families[i]
		if !reflect.DeepEqual(s.Types, d.Types) || !reflect.DeepEqual(s.Arbs, d.Arbs) || s.Truncated != d.Truncated {
			fatal(fmt.Errorf("scale n=%d: family %d arborescences differ", n, i))
		}
	}
	for pc, sd := range sparse.Dist {
		if dd, ok := dense.Dist[pc]; !ok || dd != sd {
			fatal(fmt.Errorf("scale n=%d: Dist[%v] sparse %v vs dense %v", n, pc, sd, dd))
		}
	}
}

// runScale benchmarks the sparse sweep against the dense baseline across
// family sizes.
func runScale(jsonPath, sizesSpec string, denseMax int) {
	fmt.Println("== scale: sparse candidate-pair sweep vs dense n×n matrix, one wide family ==")
	sizes, err := parseSizes(sizesSpec)
	if err != nil {
		fatal(err)
	}
	workers := benchConfig().Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &scaleReport{Schema: ScaleSchema, Workers: workers, DenseMax: denseMax}
	fmt.Printf("%7s %8s %10s %12s %12s %12s %10s %9s\n",
		"types", "words", "admissible", "dense pairs", "sparse", "dense", "speedup", "parentAcc")
	// refExcess is the dense-sweep cost beyond the sparse run at the
	// largest measured dense size, with its reduction volume — the basis
	// for estimates above -densemax.
	var refExcess time.Duration
	var refVolume float64
	for _, n := range sizes {
		img := scaleImage(n)
		meta := img.Meta
		res, sparseWall, srep := analyzeScale(img, false)

		row := scaleRow{
			Types:    len(res.VTables),
			Funcs:    len(img.Entries),
			Families: len(res.Structural.Families),
			SparseNs: sparseWall.Nanoseconds(),
		}
		words := map[string]bool{}
		for _, tls := range res.Tracelets.PerType {
			for _, tl := range tls {
				words[tl.String()] = true
			}
		}
		row.Words = len(words)
		for _, ps := range res.Structural.PossibleParents {
			row.AdmissiblePairs += int64(len(ps))
		}
		for _, fam := range res.Structural.Families {
			row.DensePairs += int64(len(fam) * (len(fam) - 1))
		}
		row.SparseDistPairs = srep.Counters["dist_pairs"]
		row.SparseDistPairsPruned = srep.Counters["dist_pairs_pruned"]

		gt, err := eval.GroundTruthForest(meta)
		if err != nil {
			fatal(err)
		}
		total, correct := 0, 0
		for _, t := range gt.Nodes() {
			wp, wok := gt.Parent(t)
			gp, gok := res.Hierarchy.Parent(t)
			total++
			if wok == gok && (!wok || wp == gp) {
				correct++
			}
		}
		row.ParentAcc = float64(correct) / float64(total)

		denseCol := "-"
		if n <= denseMax {
			dres, denseWall, _ := analyzeScale(img, true)
			assertScaleEquivalent(n, res, dres)
			row.DenseMeasured = true
			row.DenseNs = denseWall.Nanoseconds()
			row.Speedup = float64(row.DenseNs) / float64(row.SparseNs)
			denseCol = denseWall.Round(time.Millisecond).String()
			if excess := denseWall - sparseWall; excess > refExcess {
				refExcess = excess
				refVolume = float64(row.DensePairs) * float64(row.Words)
			}
		} else if refVolume > 0 {
			// The dense sweep's excess over sparse is the pair-reduction
			// volume: dense_pairs reductions, each O(words). Scale the
			// largest measured excess by the volume ratio.
			est := sparseWall + time.Duration(float64(refExcess)*float64(row.DensePairs)*float64(row.Words)/refVolume)
			row.DenseEstNs = est.Nanoseconds()
			row.Speedup = float64(row.DenseEstNs) / float64(row.SparseNs)
			denseCol = "~" + est.Round(time.Second).String()
		}
		row.PeakRSSKB = peakRSSKB()
		rep.Rows = append(rep.Rows, row)
		fmt.Printf("%7d %8d %10d %12d %12s %12s %9.1fx %8.1f%%\n",
			row.Types, row.Words, row.AdmissiblePairs, row.DensePairs,
			sparseWall.Round(time.Millisecond), denseCol, row.Speedup, 100*row.ParentAcc)
	}
	writeJSON(jsonPath, rep)
}
