package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/compiler"
	"repro/internal/rockd"
	"repro/internal/synth"
	"repro/rock"
)

// ServeSchema identifies the BENCH_serve.json format.
const ServeSchema = "rock-bench-serve/v1"

// serveReport is the JSON record emitted by -serve (the CI artifact
// BENCH_serve.json): the daemon's three serving-path claims, each
// measured over real HTTP on a loopback listener and asserted fatally —
// a regression fails the benchmark, not just a number in a file.
type serveReport struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`

	// Singleflight: N concurrent identical submissions -> ONE analysis.
	Singleflight struct {
		Submissions int   `json:"submissions"`
		Analyses    int64 `json:"analyses"` // asserted == 1
		Coalesced   int64 `json:"coalesced"`
		HotHits     int64 `json:"hot_hits"`
	} `json:"singleflight"`

	// HotCache: a hot hit (no snapshot decode, no disk) against the cold
	// analysis of the same image. Speedup asserted >= 50.
	HotCache struct {
		ColdNS    int64   `json:"cold_ns"`
		HotP50NS  int64   `json:"hot_p50_ns"`
		HotP99NS  int64   `json:"hot_p99_ns"`
		Samples   int     `json:"samples"`
		Speedup   float64 `json:"speedup"`
		MinWanted float64 `json:"min_wanted"`
	} `json:"hot_cache"`

	// Isolation: interactive hot-path p50 with the batch queue idle vs
	// under a cold batch backlog. Loaded p50 asserted under one cold
	// analysis time — interactive latency must not degrade to batch
	// latency just because batch work is queued.
	Isolation struct {
		IdlP50NS     int64   `json:"idle_p50_ns"`
		LoadedP50NS  int64   `json:"loaded_p50_ns"`
		LoadedMaxNS  int64   `json:"loaded_max_ns"`
		Samples      int     `json:"samples"`
		BatchBacklog int     `json:"batch_backlog"`
		BatchColdNS  int64   `json:"batch_cold_ns"`
		Ratio        float64 `json:"ratio"`
	} `json:"isolation"`

	DrainNS int64 `json:"drain_ns"`
}

// serveImage compiles one synthetic program to wire bytes. Deep trees
// with high idiom repetition maximize analysis work per wire byte, which
// keeps the hot-path comparison about the daemon (a hot hit's cost is
// bounded by upload + digest, so a bloated image would flatter neither
// side).
func serveImage(seed int64, families int) []byte {
	p := synth.DefaultParams(seed)
	p.Families = families
	p.MaxDepth = 6
	p.UseReps = 8
	prog, _ := synth.Generate(p)
	img, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		fatal(err)
	}
	return data
}

// runServe benchmarks the rockd serving paths end to end: it starts a
// real daemon on a loopback listener, drives it over HTTP, and fatally
// asserts the three properties the daemon exists for (singleflight
// dedupe, hot-cache speedup, interactive isolation) before writing the
// record. See the serveReport fields for the individual claims.
func runServe(jsonPath string) {
	fmt.Println("== rockd serving paths: singleflight, hot cache, admission isolation ==")
	cacheDir, err := os.MkdirTemp("", "rockbench-serve-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	// Depth-3 models over a longer window make the cold analysis
	// representative of a hard configuration; the hot path's cost is
	// payload-bound and does not change, so the contrast is honest in
	// both directions.
	srv, err := rockd.New(rockd.Config{
		Analysis: rock.Options{Workers: shared.Workers, CacheDir: cacheDir, SLMDepth: 3, Window: 32},
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}

	rep := &serveReport{Schema: ServeSchema, GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: srv.Workers()}

	post := func(body []byte, query string) (int64, int) {
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/analyze"+query, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		// Drain so the keep-alive connection is reused — the benchmark
		// measures the daemon, not TCP handshakes.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(t0).Nanoseconds(), resp.StatusCode
	}
	analyses := func() int64 {
		m := srv.Metrics()
		return m.AnalysesCold + m.AnalysesWarm + m.AnalysesIncremental
	}

	// --- Hot cache: cold analysis once, then the hot path. -------------
	hotImg := serveImage(1, 6)
	coldNS, code := post(hotImg, "")
	if code != http.StatusOK {
		fatal(fmt.Errorf("cold reference request: HTTP %d", code))
	}
	const hotSamples = 200
	hot := make([]int64, hotSamples)
	for i := range hot {
		hot[i], code = post(hotImg, "")
		if code != http.StatusOK {
			fatal(fmt.Errorf("hot request: HTTP %d", code))
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	rep.HotCache.ColdNS = coldNS
	rep.HotCache.HotP50NS = hot[hotSamples/2]
	rep.HotCache.HotP99NS = hot[hotSamples*99/100]
	rep.HotCache.Samples = hotSamples
	rep.HotCache.Speedup = float64(coldNS) / float64(rep.HotCache.HotP50NS)
	rep.HotCache.MinWanted = 50
	fmt.Printf("  hot cache: cold %s, hot p50 %s (%.0fx, p99 %s)\n",
		time.Duration(coldNS), time.Duration(rep.HotCache.HotP50NS),
		rep.HotCache.Speedup, time.Duration(rep.HotCache.HotP99NS))
	if rep.HotCache.Speedup < rep.HotCache.MinWanted {
		fatal(fmt.Errorf("hot-cache speedup %.1fx below the %.0fx floor", rep.HotCache.Speedup, rep.HotCache.MinWanted))
	}

	// --- Singleflight: 100 concurrent identical submissions. -----------
	sfImg := serveImage(2, 6)
	before := analyses()
	const concurrent = 100
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, code := post(sfImg, ""); code != http.StatusOK {
				fatal(fmt.Errorf("singleflight request: HTTP %d", code))
			}
		}()
	}
	wg.Wait()
	m := srv.Metrics()
	rep.Singleflight.Submissions = concurrent
	rep.Singleflight.Analyses = analyses() - before
	rep.Singleflight.Coalesced = m.Coalesced
	rep.Singleflight.HotHits = m.HotHits
	fmt.Printf("  singleflight: %d concurrent identical submissions -> %d analysis (%d coalesced)\n",
		concurrent, rep.Singleflight.Analyses, rep.Singleflight.Coalesced)
	if rep.Singleflight.Analyses != 1 {
		fatal(fmt.Errorf("singleflight ran %d analyses for %d identical submissions, want exactly 1",
			rep.Singleflight.Analyses, concurrent))
	}

	// --- Isolation: interactive hot path under a cold batch backlog. ---
	// Idle baseline: the interactive image is hot, the batch queue empty.
	const isoSamples = 60
	idle := make([]int64, isoSamples)
	for i := range idle {
		idle[i], _ = post(hotImg, "?class=interactive")
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i] < idle[j] })
	// Backlog: distinct cold images submitted async as batch.
	const backlog = 6
	tb := time.Now()
	for i := 0; i < backlog; i++ {
		resp, err := client.Post(base+"/v1/submit?class=batch", "application/octet-stream",
			bytes.NewReader(serveImage(100+int64(i), 4)))
		if err != nil {
			fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			fatal(fmt.Errorf("batch submit: HTTP %d", resp.StatusCode))
		}
	}
	loaded := make([]int64, 0, isoSamples)
	var loadedMax int64
	for len(loaded) < isoSamples && srv.Metrics().InFlight > 0 {
		ns, code := post(hotImg, "?class=interactive")
		if code != http.StatusOK {
			fatal(fmt.Errorf("loaded interactive request: HTTP %d", code))
		}
		loaded = append(loaded, ns)
		if ns > loadedMax {
			loadedMax = ns
		}
	}
	if len(loaded) == 0 {
		fatal(fmt.Errorf("batch backlog drained before any loaded sample was taken"))
	}
	// Let the backlog drain off the clock so drain timing below is clean.
	for srv.Metrics().InFlight > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	batchColdNS := time.Since(tb).Nanoseconds() / backlog
	sort.Slice(loaded, func(i, j int) bool { return loaded[i] < loaded[j] })
	rep.Isolation.IdlP50NS = idle[len(idle)/2]
	rep.Isolation.LoadedP50NS = loaded[len(loaded)/2]
	rep.Isolation.LoadedMaxNS = loadedMax
	rep.Isolation.Samples = len(loaded)
	rep.Isolation.BatchBacklog = backlog
	rep.Isolation.BatchColdNS = batchColdNS
	rep.Isolation.Ratio = float64(rep.Isolation.LoadedP50NS) / float64(rep.Isolation.IdlP50NS)
	fmt.Printf("  isolation: interactive hot p50 idle %s, loaded %s (%.1fx) under %d-image batch backlog (avg cold %s)\n",
		time.Duration(rep.Isolation.IdlP50NS), time.Duration(rep.Isolation.LoadedP50NS),
		rep.Isolation.Ratio, backlog, time.Duration(batchColdNS))
	// The robust claim (single-core CI machines cannot promise a flat
	// p50): a loaded interactive hot hit must stay far under the cost of
	// one cold analysis — i.e. interactive requests never queue behind
	// the batch backlog.
	if rep.Isolation.LoadedP50NS >= coldNS {
		fatal(fmt.Errorf("loaded interactive p50 %s reached cold-analysis territory (%s) — batch backlog starved the interactive class",
			time.Duration(rep.Isolation.LoadedP50NS), time.Duration(coldNS)))
	}

	// --- Graceful drain. ------------------------------------------------
	td := time.Now()
	cancel()
	if err := <-served; err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	rep.DrainNS = time.Since(td).Nanoseconds()
	fmt.Printf("  drained in %s\n", time.Duration(rep.DrainNS))

	writeJSON(jsonPath, rep)
}
