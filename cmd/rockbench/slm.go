package main

import (
	"fmt"

	"repro/internal/slm"
)

// slmResult is the JSON record emitted by -slm (the CI artifact
// BENCH_slm.json): the map-based builder trie against the frozen
// flat-trie kernel on the same deterministic corpus the repository's
// BenchmarkLogProbSeq/BenchmarkWordDist use.
type slmResult struct {
	Alphabet          int     `json:"alphabet"`
	Depth             int     `json:"depth"`
	Words             int     `json:"words"`
	BuilderSeqNS      float64 `json:"builder_logprobseq_ns"`
	FrozenSeqNS       float64 `json:"frozen_logprobseq_ns"`
	SeqSpeedup        float64 `json:"logprobseq_speedup"`
	BuilderWordDistNS float64 `json:"builder_worddist_ns"`
	FrozenWordDistNS  float64 `json:"frozen_worddist_ns"`
	WordDistSpeedup   float64 `json:"worddist_speedup"`
	BuilderSeqAllocs  float64 `json:"builder_logprobseq_allocs"`
	FrozenSeqAllocs   float64 `json:"frozen_logprobseq_allocs"`
	BuilderSeqBytes   float64 `json:"builder_logprobseq_bytes"`
	FrozenSeqBytes    float64 `json:"frozen_logprobseq_bytes"`
}

// runSLMBench measures the PPM-C query kernel in isolation: per-word
// LogProbSeq and per-model word-distribution derivation, builder vs
// frozen, on a deterministic corpus (alphabet 24, depth 2, 256 words of
// length 7 — the shape of one family's sweep).
func runSLMBench(jsonPath string) {
	fmt.Println("== SLM kernel: map-based builder vs frozen flat trie ==")
	const alpha, depth, nWords, wordLen = 24, 2, 256, 7
	builder := slm.New(depth, alpha)
	words := make([][]int, nWords)
	for i := range words {
		w := make([]int, wordLen)
		for j := range w {
			w[j] = (i*31 + j*17 + i*i%13) % alpha
		}
		words[i] = w
		if i%2 == 0 {
			builder.Train(w)
		}
	}
	frozen := builder.Freeze()
	querier := frozen.NewQuerier()

	out := slmResult{Alphabet: alpha, Depth: depth, Words: nWords}
	i := 0
	out.BuilderSeqNS, out.BuilderSeqAllocs, out.BuilderSeqBytes = measureOp(func() {
		builder.LogProbSeq(words[i%nWords])
		i++
	})
	i = 0
	out.FrozenSeqNS, out.FrozenSeqAllocs, out.FrozenSeqBytes = measureOp(func() {
		querier.LogProbSeq(words[i%nWords])
		i++
	})
	out.BuilderWordDistNS, _, _ = measureOp(func() { slm.WordDistribution(builder, words) })
	out.FrozenWordDistNS, _, _ = measureOp(func() { slm.WordDistribution(frozen, words) })
	out.SeqSpeedup = out.BuilderSeqNS / out.FrozenSeqNS
	out.WordDistSpeedup = out.BuilderWordDistNS / out.FrozenWordDistNS

	fmt.Printf("  corpus: alphabet %d, depth %d, %d words of length %d (%d trie nodes)\n",
		alpha, depth, nWords, wordLen, frozen.Nodes())
	fmt.Printf("  LogProbSeq  builder: %8.0f ns/op  %6.1f allocs/op  %7.0f B/op\n",
		out.BuilderSeqNS, out.BuilderSeqAllocs, out.BuilderSeqBytes)
	fmt.Printf("  LogProbSeq  frozen:  %8.0f ns/op  %6.1f allocs/op  %7.0f B/op  (%.2fx)\n",
		out.FrozenSeqNS, out.FrozenSeqAllocs, out.FrozenSeqBytes, out.SeqSpeedup)
	fmt.Printf("  wordDist    builder: %8.0f ns/op\n", out.BuilderWordDistNS)
	fmt.Printf("  wordDist    frozen:  %8.0f ns/op  (%.2fx)\n", out.FrozenWordDistNS, out.WordDistSpeedup)
	writeJSON(jsonPath, out)
}
