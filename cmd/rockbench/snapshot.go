package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// snapshotResult is the JSON record emitted by -snapshot (the CI artifact
// BENCH_snapshot.json): end-to-end analysis wall-clock over the whole
// Table 2 suite, cold (empty cache, so every run computes everything and
// writes its snapshot) against warm (every run restores the hierarchy
// stage from its snapshot).
type snapshotResult struct {
	Benchmarks int     `json:"benchmarks"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	WarmRuns   int     `json:"warm_runs"`
	ColdNS     int64   `json:"cold_ns"`
	WarmNS     int64   `json:"warm_ns"`
	Speedup    float64 `json:"speedup"`
	Identical  bool    `json:"identical"`
	CacheBytes int64   `json:"cache_bytes"`
}

// runSnapshotBench measures the content-addressed snapshot cache on the
// full Table 2 suite: a cold pass over an empty cache directory (computing
// and persisting every snapshot) against warm passes that restore the
// hierarchy stage, with every warm result verified deep-equal to its cold
// counterpart. Image compilation is excluded from both timings; the timed
// passes carry no observer, and a final untimed observed warm run prints
// the per-stage table with its cache attribution.
func runSnapshotBench(jsonPath string) {
	fmt.Println("== snapshot cache: cold vs warm analysis (Table 2 suite) ==")
	benches := bench.All()
	imgs := make([]*image.Image, len(benches))
	for i, b := range benches {
		img, _, err := b.Build()
		if err != nil {
			fatal(err)
		}
		imgs[i] = img
	}
	cacheDir, err := os.MkdirTemp("", "rockbench-snap-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	cfg := benchConfig()
	cfg.CacheDir = cacheDir

	coldRes := make([]*core.Result, len(imgs))
	coldStart := time.Now()
	for i, img := range imgs {
		r, err := core.Analyze(img, cfg)
		if err != nil {
			fatal(err)
		}
		coldRes[i] = r
	}
	coldD := time.Since(coldStart)
	for i, r := range coldRes {
		if r.SnapshotReuse != snapshot.LevelNone {
			fatal(fmt.Errorf("%s: cold run reused a snapshot (level %d)", benches[i].Name, r.SnapshotReuse))
		}
	}

	const warmRuns = 3
	warmRes := make([]*core.Result, len(imgs))
	warmD := time.Duration(0)
	for run := 0; run < warmRuns; run++ {
		start := time.Now()
		for i, img := range imgs {
			r, err := core.Analyze(img, cfg)
			if err != nil {
				fatal(err)
			}
			warmRes[i] = r
		}
		if d := time.Since(start); warmD == 0 || d < warmD {
			warmD = d
		}
	}
	identical := true
	for i := range imgs {
		if warmRes[i].SnapshotReuse != snapshot.LevelHierarchy {
			fatal(fmt.Errorf("%s: warm run reused only level %d", benches[i].Name, warmRes[i].SnapshotReuse))
		}
		if !snapshotResultsEqual(coldRes[i], warmRes[i]) {
			identical = false
			fmt.Printf("  MISMATCH: %s warm result differs from cold\n", benches[i].Name)
		}
	}

	var cacheBytes int64
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			cacheBytes += info.Size()
		}
	}

	out := snapshotResult{
		Benchmarks: len(benches),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    shared.Workers,
		WarmRuns:   warmRuns,
		ColdNS:     coldD.Nanoseconds(),
		WarmNS:     warmD.Nanoseconds(),
		Speedup:    float64(coldD) / float64(warmD),
		Identical:  identical,
		CacheBytes: cacheBytes,
	}
	fmt.Printf("  suite: %d benchmarks, %d snapshot files, %d bytes cached\n",
		out.Benchmarks, len(entries), out.CacheBytes)
	fmt.Printf("  cold (compute + persist): %12s\n", coldD.Round(time.Microsecond))
	fmt.Printf("  warm (restore hierarchy): %12s  (best of %d)\n", warmD.Round(time.Microsecond), warmRuns)
	fmt.Printf("  speedup %.2fx, results identical: %v\n", out.Speedup, identical)
	if !identical {
		fatal(fmt.Errorf("warm snapshot results diverged from cold results"))
	}

	// Untimed observed warm run on the first benchmark: the per-stage
	// table shows every pipeline stage attributed to the cache.
	obsCfg := cfg
	obsCfg.Obs = obs.NewBus()
	if _, err := core.Analyze(imgs[0], obsCfg); err != nil {
		fatal(err)
	}
	fmt.Printf("  per-stage attribution of a warm %s run (observed, untimed):\n", benches[0].Name)
	fmt.Print(obsCfg.Obs.Report().Table())

	writeJSON(jsonPath, out)
}
