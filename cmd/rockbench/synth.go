package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/eval"
)

// runSynth sweeps the adversarial accuracy grid (internal/bench.SynthGrid:
// generator shapes x compiler hard-case modes), scores every
// reconstruction per edge, prints the table, and optionally writes the
// ACC_synth.json report. When floorsPath is non-empty the report is
// compared against the checked-in accuracy floors and any regression
// exits non-zero — the CI accuracy gate.
func runSynth(jsonPath, floorsPath string) {
	fmt.Println("== Adversarial synth grid: per-edge reconstruction accuracy ==")
	rep, err := eval.RunSynthGrid(context.Background(), benchConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Print(eval.AccTable(rep))
	fmt.Printf("  %d configurations\n", len(rep.Configs))
	writeJSON(jsonPath, rep)
	if floorsPath == "" {
		return
	}
	floors, err := eval.LoadFloors(floorsPath)
	if err != nil {
		fatal(err)
	}
	if err := eval.CheckFloors(rep, floors); err != nil {
		fmt.Fprintf(os.Stderr, "rockbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  accuracy floors OK (%s)\n", floorsPath)
}
