// Command rockd serves the analysis pipeline as a long-running HTTP
// daemon for fleet-scale workloads, where the same binaries are
// submitted over and over.
//
// Usage:
//
//	rockd [-listen ADDR] [-metric kl|js-divergence|js-distance]
//	      [-depth D] [-window W] [-workers N] [-cache DIR]
//	      [-invalidate LEVEL] [-evidence slm,subtype]
//	      [-fuse-weights slm=1,subtype=5]
//	      [-hot-cache-mb MB] [-max-body-mb MB]
//	      [-interactive-slots N] [-interactive-queue N]
//	      [-batch-slots N] [-batch-queue N] [-drain SECONDS]
//
// Endpoints:
//
//	POST /v1/analyze?class=interactive|batch   image body -> report (waits)
//	POST /v1/submit?class=batch                image body -> 202 (async)
//	GET  /v1/result/{digest}                   poll an async submission
//	GET  /metrics                              counters, queues, stage rollup
//	GET  /healthz                              liveness (503 while draining)
//
// Identical concurrent submissions (same content digest) are collapsed
// into one analysis; finished results serve from a bounded in-memory hot
// cache with no snapshot decode or disk I/O. With -cache DIR the on-disk
// snapshot store backs the hot cache — evicted or post-restart
// submissions restore warm, and new versions of known binaries ride the
// incremental lane automatically. SIGINT/SIGTERM drains gracefully:
// intake stops, in-flight analyses finish (bounded by -drain), then the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/rockd"
	"repro/rock"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7661", "address to serve on")
	metric := flag.String("metric", "kl", "pairwise distance: kl, js-divergence, js-distance")
	depth := flag.Int("depth", 2, "SLM maximum order D")
	window := flag.Int("window", 7, "object tracelet window length")
	shared := cliutil.Register(flag.CommandLine)
	hotMB := flag.Int("hot-cache-mb", 256, "in-memory hot result cache budget in MiB")
	maxBodyMB := flag.Int("max-body-mb", 64, "largest accepted image in MiB")
	iSlots := flag.Int("interactive-slots", 0, "concurrent interactive analyses (0 = worker count)")
	iQueue := flag.Int("interactive-queue", 0, "queued interactive submissions before 429 (0 = 256)")
	bSlots := flag.Int("batch-slots", 0, "concurrent batch analyses (0 = half the workers)")
	bQueue := flag.Int("batch-queue", 0, "queued batch submissions before 429 (0 = 4096)")
	drain := flag.Int("drain", 30, "seconds to let in-flight work finish on shutdown")
	flag.Parse()
	if flag.NArg() != 0 {
		cliutil.Usage("rockd", "usage: rockd [flags] (no positional arguments)")
	}
	if _, err := shared.Resolve(); err != nil {
		cliutil.Usage("rockd", err.Error())
	}

	srv, err := rockd.New(rockd.Config{
		Analysis: rock.Options{
			Metric:      *metric,
			SLMDepth:    *depth,
			Window:      *window,
			Workers:     shared.Workers,
			CacheDir:    shared.CacheDir,
			Invalidate:  shared.Invalidate,
			Evidence:    shared.Evidence,
			FuseWeights: shared.FuseWeights,
			// IncrementalFrom stays empty: the daemon analyzes many
			// different binaries, so priors are auto-discovered per image
			// from the cache directory's NameHash index.
		},
		HotCacheBytes:    int64(*hotMB) << 20,
		MaxBodyBytes:     int64(*maxBodyMB) << 20,
		InteractiveSlots: *iSlots,
		InteractiveQueue: *iQueue,
		BatchSlots:       *bSlots,
		BatchQueue:       *bQueue,
		DrainTimeout:     time.Duration(*drain) * time.Second,
	})
	if err != nil {
		cliutil.Fatal("rockd", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cliutil.Fatal("rockd", err)
	}
	ctx, stop := cliutil.WithSignals(context.Background())
	defer stop()
	fmt.Fprintf(os.Stderr, "rockd: serving on http://%s (workers=%d, hot cache %d MiB, cache dir %q)\n",
		ln.Addr(), srv.Workers(), *hotMB, shared.CacheDir)
	if err := srv.Serve(ctx, ln); err != nil {
		cliutil.Fatal("rockd", err)
	}
	fmt.Fprintln(os.Stderr, "rockd: drained, bye")
}
