// Datasources: the paper's §1 security scenario (Fig. 1/2). A DataSource
// hierarchy has trusted internal and untrusted external branches. A type
// *grouping* (the "without SLMs" baseline) would let a CFI policy accept
// external sources where internal ones are expected; the reconstructed
// *hierarchy* separates the branches.
//
//	go run ./examples/datasources
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/compiler"

	"repro/rock"
)

func main() {
	img, err := compiler.Compile(bench.DataSources(), compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		log.Fatal(err)
	}

	// The grouping view: one family, no parent ranking.
	grouping, err := rock.Analyze(data, rock.Options{StructuralOnly: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("type grouping (existing techniques, §1):")
	for i, fam := range grouping.Families {
		fmt.Printf("  group %d:", i)
		for _, t := range fam {
			fmt.Printf(" %s", grouping.Name(t))
		}
		fmt.Println()
	}
	fmt.Println("  -> readInternal's CFI target set under grouping includes the external sources!")

	// The hierarchy view.
	rep, err := rock.Analyze(data, rock.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreconstructed hierarchy (Rock):")
	fmt.Print(rep.HierarchyString())

	// Compute the CFI target set for readInternal: the internal branch.
	var internal uint64
	for _, t := range rep.Types {
		if rep.Name(t.VTable) == "InternalDataSource" {
			internal = t.VTable
		}
	}
	children := map[uint64][]uint64{}
	for _, e := range rep.Edges {
		children[e.Parent] = append(children[e.Parent], e.Child)
	}
	var targets []string
	var collect func(t uint64)
	collect = func(t uint64) {
		targets = append(targets, rep.Name(t))
		for _, c := range children[t] {
			collect(c)
		}
	}
	collect(internal)
	fmt.Printf("\nCFI target set for readInternal (InternalDataSource subtree): %v\n", targets)
	fmt.Println("external sources are excluded — the precision §1 argues for.")
}
