// Largebinary: the Skype-style scalability demonstration (§3.2, §6.1). A
// seeded generator produces a program with hundreds of types across many
// independent hierarchies; the whole pipeline — disassembly, vtable
// discovery, tracelet extraction, SLM training, per-family arborescences —
// runs in seconds because every analysis is intra-procedural.
//
//	go run ./examples/largebinary [-families N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/compiler"
	"repro/internal/synth"

	"repro/rock"
)

func main() {
	families := flag.Int("families", 60, "number of independent class hierarchies")
	flag.Parse()

	params := synth.DefaultParams(2018)
	params.Families = *families
	prog, parents := synth.Generate(params)
	img, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	stripped := img.Strip()
	data, err := stripped.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated program: %d classes (%d hierarchy edges), image %d KB\n",
		len(prog.Classes), len(parents), len(data)/1024)

	start := time.Now()
	rep, err := rock.Analyze(data, rock.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	edges := len(rep.Edges)
	fmt.Printf("analysis: %d binary types, %d families, %d parent edges in %s\n",
		len(rep.Types), len(rep.Families), edges, elapsed.Round(time.Millisecond))
	fmt.Printf("(the paper reports at most 2 hours per benchmark on its framework; the\n")
	fmt.Printf(" analysis here is the same per-procedure work on a synthetic substrate)\n")
}
