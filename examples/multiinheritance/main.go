// Multiinheritance: §5.3. FaxMachine derives from both Modem and Printer;
// its instances receive two vtable-pointer installs (primary subobject at
// offset 0, secondary Printer subobject after it). Rock observes the
// install count and assigns the type as many parents.
//
//	go run ./examples/multiinheritance
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/compiler"

	"repro/rock"
)

func main() {
	img, err := compiler.Compile(bench.MultipleInheritance(), compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rock.Analyze(data, rock.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d binary types (including the secondary subobject vtable)\n", len(rep.Types))
	for _, t := range rep.Types {
		kind := ""
		if t.Secondary {
			kind = "  [secondary subobject table]"
		}
		fmt.Printf("  %-24s %d slots%s\n", rep.Name(t.VTable), t.Slots, kind)
	}

	fmt.Println("\nreconstructed primary hierarchy:")
	fmt.Print(rep.HierarchyString())

	fmt.Println("multiple-inheritance parent sets (§5.3):")
	if len(rep.MultiParents) == 0 {
		fmt.Println("  (none detected)")
	}
	for t, ps := range rep.MultiParents {
		fmt.Printf("  %s:", rep.Name(t))
		for _, p := range ps {
			fmt.Printf(" %s", rep.Name(p))
		}
		fmt.Println()
	}
}
