// Patchedbinary: incremental re-analysis of a new version of a known
// binary. A base binary is analyzed once with a snapshot cache; then one
// function is patched — the kind of small diff a vendor update ships —
// and the patched binary is analyzed again. The exact-match snapshot
// misses (the image digest changed), but the version-diff warm lane
// auto-discovers the prior version's snapshot in the cache, diffs the
// per-function content digests, re-extracts only the changed function,
// retrains only the types it touches, and re-solves only their families.
// The report is identical to a from-scratch analysis of the patched
// binary; only the time differs.
//
//	go run ./examples/patchedbinary
package main

import (
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/synth"

	"repro/rock"
)

func main() {
	params := synth.DefaultParams(2018)
	params.Families = 6
	params.MaxDepth = 6
	params.MaxBranch = 4
	params.UseReps = 4
	prog, _ := synth.Generate(params)
	img, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	base := img.Strip()

	cacheDir, err := os.MkdirTemp("", "patchedbinary-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	// Version 1: a cold analysis that persists its snapshot in the cache.
	baseData, err := base.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	baseRep, err := rock.Analyze(baseData, rock.Options{CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("version 1: %d functions, %d types analyzed cold in %s (snapshot cached)\n",
		len(base.Entries), len(baseRep.Types), time.Since(start).Round(time.Millisecond))

	// Version 2: patch one function. The patch overwrites a field write,
	// so the function's content digest — and the image digest — change.
	cands := bench.PatchableFunctions(base)
	patched := base.Strip()
	if err := bench.PatchFunction(patched, cands[len(cands)/2]); err != nil {
		log.Fatal(err)
	}
	patchedData, err := patched.Marshal()
	if err != nil {
		log.Fatal(err)
	}

	// From-scratch analysis of version 2, for reference.
	start = time.Now()
	coldRep, err := rock.Analyze(patchedData, rock.Options{})
	if err != nil {
		log.Fatal(err)
	}
	coldD := time.Since(start)

	// Incremental analysis: CacheDir auto-discovers the version 1
	// snapshot as the nearest prior; the observer's counters show the
	// function-digest diff and what was actually recomputed.
	obs := rock.NewObserver()
	start = time.Now()
	incrRep, err := rock.Analyze(patchedData, rock.Options{CacheDir: cacheDir, Observer: obs})
	if err != nil {
		log.Fatal(err)
	}
	incrD := time.Since(start)

	fmt.Printf("version 2 (1 function patched):\n")
	fmt.Printf("  from scratch: %s\n", coldD.Round(time.Millisecond))
	fmt.Printf("  incremental:  %s (%.1fx faster)\n",
		incrD.Round(time.Millisecond), float64(coldD)/float64(incrD))
	fmt.Printf("  identical hierarchies: %v\n", reflect.DeepEqual(coldRep.Edges, incrRep.Edges))
	fmt.Printf("\nper-stage attribution of the incremental run (see the\n")
	fmt.Printf("fn_digest_hit/fn_digest_miss, types_retrained, families_resolved counters):\n")
	fmt.Print(incrRep.Stats.Table())
}
