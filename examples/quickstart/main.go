// Quickstart: compile the paper's motivating example (§2) to a stripped
// binary image, analyze it with the public rock API, and print the
// reconstructed class hierarchy next to the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/compiler"

	"repro/rock"
)

func main() {
	// Build the input: a fully optimized, stripped binary. In a real
	// deployment this is the unknown binary under reverse engineering;
	// here the bundled compiler produces it from the §2 source program.
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	data, err := img.Marshal() // metadata kept: rock uses it for names only
	if err != nil {
		log.Fatal(err)
	}

	// Analyze with the paper's defaults (SLM depth 2, window 7, DKL).
	rep, err := rock.Analyze(data, rock.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("discovered %d binary types in %d families\n", len(rep.Types), len(rep.Families))
	fmt.Printf("structurally resolvable: %v\n\n", rep.StructurallyResolved)

	fmt.Println("candidate parents after the structural analysis (§5):")
	for _, t := range rep.Types {
		fmt.Printf("  %-22s:", rep.Name(t.VTable))
		for _, p := range rep.PossibleParents[t.VTable] {
			fmt.Printf(" %s", rep.Name(p))
		}
		fmt.Println()
	}

	fmt.Println("\nreconstructed hierarchy (behavioral analysis, §4):")
	fmt.Print(rep.HierarchyString())

	fmt.Println("ground truth:")
	for _, e := range rep.GroundTruthEdges {
		fmt.Printf("  %s -> %s\n", rep.Name(e.Parent), rep.Name(e.Child))
	}
}
