// Package arborescence solves the minimum-weight spanning arborescence
// problem of §4.2.2: given a directed weighted graph and a root, find the
// subset of edges forming a tree rooted at the root that reaches every node
// with minimum total weight (Chu–Liu/Edmonds' algorithm [15]).
//
// The package also enumerates co-optimal arborescences and implements the
// paper's majority-vote heuristic for reducing them ("Handling Multiple
// Arborescences").
//
// The solver is agnostic to where the edge weights come from: by default
// they are the SLM KL divergences, but under a fused evidence
// configuration (internal/evidence) each weight is a weighted sum of
// several providers' scores. Root edges must still dominate — every
// provider's Root score bounds its edge scores, so any positive-weighted
// combination preserves Heuristic 4.1.
package arborescence

import (
	"fmt"
	"math"
	"sort"
)

// Edge is a directed weighted edge From -> To. Weights must be
// non-negative.
type Edge struct {
	From, To int
	W        float64
}

// MinArborescence computes a minimum-weight spanning arborescence of the
// graph with n nodes (0..n-1) rooted at root. It returns parent[v] for
// every node (parent[root] = -1) and the total weight. It fails if some
// node is unreachable from the root.
func MinArborescence(n, root int, edges []Edge) (parents []int, weight float64, err error) {
	if root < 0 || root >= n {
		return nil, 0, fmt.Errorf("arborescence: root %d out of range [0,%d)", root, n)
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, 0, fmt.Errorf("arborescence: edge (%d,%d) out of range", e.From, e.To)
		}
		if e.W < 0 {
			return nil, 0, fmt.Errorf("arborescence: negative weight on (%d,%d)", e.From, e.To)
		}
	}
	chosen, err := solve(n, root, edges)
	if err != nil {
		return nil, 0, err
	}
	parents = make([]int, n)
	for i := range parents {
		parents[i] = -1
	}
	for _, ei := range chosen {
		e := edges[ei]
		parents[e.To] = e.From
		weight += e.W
	}
	return parents, weight, nil
}

// solve returns the indices (into edges) of the chosen arborescence edges.
// This is the classic recursive contraction algorithm.
func solve(n, root int, edges []Edge) ([]int, error) {
	// Minimum incoming edge per node.
	minIn := make([]int, n)
	for v := range minIn {
		minIn[v] = -1
	}
	for i, e := range edges {
		if e.To == root || e.From == e.To {
			continue
		}
		if minIn[e.To] == -1 || e.W < edges[minIn[e.To]].W {
			minIn[e.To] = i
		}
	}
	for v := 0; v < n; v++ {
		if v != root && minIn[v] == -1 {
			return nil, fmt.Errorf("arborescence: node %d unreachable", v)
		}
	}

	// Detect cycles among the chosen minimum in-edges.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	comp := make([]int, n)
	for v := range comp {
		comp[v] = -1
	}
	numComp := 0
	hasCycle := false
	for v := 0; v < n; v++ {
		if color[v] != white {
			continue
		}
		// Walk the parent chain.
		path := []int{}
		u := v
		for u != root && color[u] == white {
			color[u] = gray
			path = append(path, u)
			u = edges[minIn[u]].From
		}
		if u != root && color[u] == gray {
			// Found a new cycle; nodes from u onward in path are on it.
			onCycle := false
			for _, w := range path {
				if w == u {
					onCycle = true
				}
				if onCycle {
					comp[w] = numComp
				}
			}
			numComp++
			hasCycle = true
		}
		for _, w := range path {
			color[w] = black
		}
	}
	if !hasCycle {
		out := make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != root {
				out = append(out, minIn[v])
			}
		}
		return out, nil
	}

	// Assign components to non-cycle nodes.
	for v := 0; v < n; v++ {
		if comp[v] == -1 {
			comp[v] = numComp
			numComp++
		}
	}
	newRoot := comp[root]

	// Build the contracted graph with adjusted weights.
	type mapped struct {
		orig     int // original edge index
		replaces int // the min in-edge of e.To that this edge would displace (-1 if To not on a cycle)
	}
	var newEdges []Edge
	var back []mapped
	cycleNode := make([]bool, n)
	for v := 0; v < n; v++ {
		// v is on a contracted cycle iff another node shares its component.
		// Cheaper: cycle components are those numbered before the loop above
		// assigned singles; recompute directly:
		cycleNode[v] = false
	}
	// Recompute cycle membership: a node is on a cycle iff it shares its
	// component with at least one other node.
	compSize := make([]int, numComp)
	for v := 0; v < n; v++ {
		compSize[comp[v]]++
	}
	for v := 0; v < n; v++ {
		cycleNode[v] = compSize[comp[v]] > 1
	}
	for i, e := range edges {
		cu, cv := comp[e.From], comp[e.To]
		if cu == cv {
			continue
		}
		w := e.W
		rep := -1
		if cycleNode[e.To] {
			w -= edges[minIn[e.To]].W
			rep = minIn[e.To]
		}
		newEdges = append(newEdges, Edge{From: cu, To: cv, W: w})
		back = append(back, mapped{orig: i, replaces: rep})
	}

	sub, err := solve(numComp, newRoot, newEdges)
	if err != nil {
		return nil, err
	}

	// Expand: start with all cycle edges, then for every chosen contracted
	// edge add its original and remove the cycle edge it displaces. The
	// membership set is a slice indexed by edge position — collecting the
	// chosen indices with one ordered scan replaces the old map[int]bool
	// plus sort.Ints (hash insertions, iteration allocation, and a sort,
	// all per contraction level).
	inResult := make([]bool, len(edges))
	for v := 0; v < n; v++ {
		if cycleNode[v] {
			inResult[minIn[v]] = true
		}
	}
	for _, nei := range sub {
		m := back[nei]
		inResult[m.orig] = true
		if m.replaces >= 0 {
			inResult[m.replaces] = false
		}
	}
	out := make([]int, 0, n-1)
	for ei, in := range inResult {
		if in {
			out = append(out, ei)
		}
	}
	return out, nil
}

// EnumerateMin returns up to limit arborescences (as parent vectors) whose
// total weight is within eps of the minimum, the minimum weight, whether
// the enumeration was truncated, and an error if no arborescence exists.
// With limit 1 it degenerates to MinArborescence. Enumeration is exact
// branch-and-bound and intended for the small per-family graphs of the
// pipeline.
//
// truncated reports that the returned set may be missing co-optimal
// arborescences for a reason the caller did not ask for: either the graph
// exceeded maxEnumNodes (only the single optimum is returned) or the
// branch-and-bound hit its internal step budget on a combinatorial
// plateau of exact ties. Hitting the caller-chosen limit is not flagged —
// that cap is explicit. Callers surface truncated instead of presenting a
// capped enumeration as exhaustive.
func EnumerateMin(n, root int, edges []Edge, eps float64, limit int) (arbs [][]int, weight float64, truncated bool, err error) {
	best, w0, err := MinArborescence(n, root, edges)
	if err != nil {
		return nil, 0, false, err
	}
	const maxEnumNodes = 32
	if limit <= 1 {
		return [][]int{best}, w0, false, nil
	}
	if n > maxEnumNodes {
		return [][]int{best}, w0, true, nil
	}

	// Candidate in-edges per node, cheapest first.
	in := make([][]Edge, n)
	for _, e := range edges {
		if e.To == root || e.From == e.To {
			continue
		}
		in[e.To] = append(in[e.To], e)
	}
	nodes := []int{}
	minW := make([]float64, n)
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		sort.Slice(in[v], func(i, j int) bool { return in[v][i].W < in[v][j].W })
		nodes = append(nodes, v)
		if len(in[v]) > 0 {
			minW[v] = in[v][0].W
		}
	}
	// Remaining lower bound per position.
	lb := make([]float64, len(nodes)+1)
	for i := len(nodes) - 1; i >= 0; i-- {
		lb[i] = lb[i+1] + minW[nodes[i]]
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var out [][]int
	// steps bounds the explored search states: with many exact ties the
	// plateau below w0+eps can be combinatorial, and the lower bound (sum
	// of per-node minima) cannot prune assignments whose cheap edges form
	// cycles. The budget keeps enumeration worst-case cheap; whatever
	// co-optimal set was found by then is returned.
	steps := 0
	const maxSteps = 400000
	var rec func(pos int, acc float64)
	rec = func(pos int, acc float64) {
		steps++
		if steps > maxSteps {
			truncated = true
			return
		}
		if len(out) >= limit {
			return
		}
		if acc+lb[pos] > w0+eps {
			return
		}
		if pos == len(nodes) {
			out = append(out, append([]int(nil), parent...))
			return
		}
		v := nodes[pos]
		for _, e := range in[v] {
			if acc+e.W+lb[pos+1] > w0+eps {
				break // sorted: no cheaper option follows
			}
			// Reject if assigning e.From as parent of v closes a cycle among
			// already-assigned parents.
			cyc := false
			for u := e.From; u != -1 && u != root; u = parent[u] {
				if u == v {
					cyc = true
					break
				}
			}
			if cyc {
				continue
			}
			parent[v] = e.From
			rec(pos+1, acc+e.W)
			parent[v] = -1
		}
	}
	rec(0, 0)
	if len(out) == 0 {
		out = [][]int{best}
	}
	return out, w0, truncated, nil
}

// MajorityVote applies the paper's heuristic for reducing multiple
// co-optimal arborescences: while more than one remains, find the node
// whose most popular parent assignment has the strongest (strict) majority
// and eliminate the arborescences that disagree. The heuristic is not
// guaranteed to leave a single arborescence; the remainder is returned.
func MajorityVote(arbs [][]int) [][]int {
	for len(arbs) > 1 {
		n := len(arbs[0])
		bestNode, bestParent, bestCount := -1, -1, 0
		for v := 0; v < n; v++ {
			counts := map[int]int{}
			for _, a := range arbs {
				counts[a[v]]++
			}
			if len(counts) < 2 {
				continue // unanimous
			}
			// Most popular parent for v; require a strict majority leader.
			top, topC, second := -1, 0, 0
			ps := make([]int, 0, len(counts))
			for p := range counts {
				ps = append(ps, p)
			}
			sort.Ints(ps)
			for _, p := range ps {
				c := counts[p]
				if c > topC {
					second = topC
					top, topC = p, c
				} else if c > second {
					second = c
				}
			}
			if topC > second && topC > bestCount {
				bestNode, bestParent, bestCount = v, top, topC
			}
		}
		if bestNode == -1 {
			break // only ties remain; cannot reduce further
		}
		var keep [][]int
		for _, a := range arbs {
			if a[bestNode] == bestParent {
				keep = append(keep, a)
			}
		}
		if len(keep) == len(arbs) {
			break
		}
		arbs = keep
	}
	return arbs
}

// BruteForceMin exhaustively searches for the minimum arborescence weight.
// It exists to validate the Edmonds implementation in tests and panics for
// graphs with more than 9 nodes.
func BruteForceMin(n, root int, edges []Edge) (float64, bool) {
	if n > 9 {
		panic("arborescence: brute force limited to 9 nodes")
	}
	in := make([][]Edge, n)
	for _, e := range edges {
		if e.To == root || e.From == e.To {
			continue
		}
		in[e.To] = append(in[e.To], e)
	}
	nodes := []int{}
	for v := 0; v < n; v++ {
		if v != root {
			if len(in[v]) == 0 {
				return 0, false
			}
			nodes = append(nodes, v)
		}
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	best := math.Inf(1)
	var rec func(pos int, acc float64)
	rec = func(pos int, acc float64) {
		if pos == len(nodes) {
			if acc < best {
				best = acc
			}
			return
		}
		v := nodes[pos]
		for _, e := range in[v] {
			cyc := false
			for u := e.From; u != -1 && u != root; u = parent[u] {
				if u == v {
					cyc = true
					break
				}
			}
			if cyc {
				continue
			}
			parent[v] = e.From
			rec(pos+1, acc+e.W)
			parent[v] = -1
		}
	}
	rec(0, 0)
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
