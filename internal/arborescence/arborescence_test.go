package arborescence

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimpleChain(t *testing.T) {
	edges := []Edge{{0, 1, 5}, {1, 2, 3}, {0, 2, 10}}
	parents, w, err := MinArborescence(3, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if w != 8 || parents[1] != 0 || parents[2] != 1 {
		t.Fatalf("got parents=%v w=%v", parents, w)
	}
}

func TestCycleContraction(t *testing.T) {
	// Two nodes in a zero-weight cycle; entry via node 1.
	edges := []Edge{
		{0, 1, 100}, {0, 2, 100}, {0, 3, 100},
		{1, 2, 1},
		{2, 3, 0}, {3, 2, 0},
	}
	parents, w, err := MinArborescence(4, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	if w != 100+1+0 {
		t.Fatalf("weight=%v parents=%v", w, parents)
	}
	if parents[1] != 0 || parents[2] != 1 || parents[3] != 2 {
		t.Fatalf("parents=%v", parents)
	}
}

// TestZeroWeightClique mimics the identically-behaving-variants case: a
// clique of zero-weight edges among nodes 2..6, a cheap entry from node 1,
// and expensive virtual-root edges. The arborescence must enter the clique
// through node 1, never through the root.
func TestZeroWeightClique(t *testing.T) {
	var edges []Edge
	n := 7
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{0, v, 1000})
	}
	for i := 2; i < n; i++ {
		edges = append(edges, Edge{1, i, 3})
		for j := 2; j < n; j++ {
			if i != j {
				edges = append(edges, Edge{i, j, 0})
			}
		}
	}
	parents, w, err := MinArborescence(n, 0, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := 1000.0 + 3 // one root edge (node 1), one entry, zeros inside
	if w != want {
		t.Fatalf("weight=%v want %v (parents=%v)", w, want, parents)
	}
	rootKids := 0
	for v := 1; v < n; v++ {
		if parents[v] == 0 {
			rootKids++
		}
	}
	if rootKids != 1 {
		t.Fatalf("%d nodes attached to virtual root, want 1 (parents=%v)", rootKids, parents)
	}
}

func TestUnreachable(t *testing.T) {
	if _, _, err := MinArborescence(3, 0, []Edge{{0, 1, 1}}); err == nil {
		t.Fatal("expected unreachable error")
	}
}

// TestAgainstBruteForce cross-checks Edmonds against exhaustive search on
// random graphs, including graphs with many zero-weight edges (the
// identical-SLM tie case).
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 800; trial++ {
		n := 2 + rng.Intn(6)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v || rng.Float64() < 0.3 {
					continue
				}
				w := float64(rng.Intn(6)) // frequent ties and zeros
				edges = append(edges, Edge{u, v, w})
			}
		}
		want, ok := BruteForceMin(n, 0, edges)
		parents, got, err := MinArborescence(n, 0, edges)
		if !ok {
			if err == nil {
				t.Fatalf("trial %d: brute force says unreachable, edmonds found %v", trial, parents)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: edmonds error %v, brute force found %v", trial, err, want)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: edmonds weight %v != brute force %v (n=%d edges=%v)", trial, got, want, n, edges)
		}
		// The returned parent vector must itself be a valid arborescence of
		// the reported weight.
		sum := 0.0
		for v := 1; v < n; v++ {
			if parents[v] == -1 {
				t.Fatalf("trial %d: node %d unparented", trial, v)
			}
			found := false
			for _, e := range edges {
				if e.From == parents[v] && e.To == v {
					if !found || e.W < 0 {
						sum += bestEdgeWeight(edges, parents[v], v)
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: edge %d->%d not in graph", trial, parents[v], v)
			}
		}
		_ = sum
	}
}

func bestEdgeWeight(edges []Edge, from, to int) float64 {
	best := math.Inf(1)
	for _, e := range edges {
		if e.From == from && e.To == to && e.W < best {
			best = e.W
		}
	}
	return best
}
