package arborescence

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnumerateFindsAllCoOptimal(t *testing.T) {
	// Diamond with two equally-cheap parents for node 3.
	edges := []Edge{
		{0, 1, 1}, {0, 2, 1},
		{1, 3, 2}, {2, 3, 2},
	}
	arbs, w, truncated, err := EnumerateMin(4, 0, edges, 1e-9, 16)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("tiny exhaustive enumeration reported as truncated")
	}
	if w != 4 {
		t.Fatalf("weight %v, want 4", w)
	}
	if len(arbs) != 2 {
		t.Fatalf("found %d co-optimal arborescences, want 2: %v", len(arbs), arbs)
	}
	parents3 := map[int]bool{}
	for _, a := range arbs {
		parents3[a[3]] = true
	}
	if !parents3[1] || !parents3[2] {
		t.Errorf("both parents of node 3 must appear: %v", arbs)
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	// A 5-node zero-weight clique entered from the root: many co-optimal
	// spanning structures.
	var edges []Edge
	for v := 1; v <= 5; v++ {
		edges = append(edges, Edge{0, v, 1})
		for u := 1; u <= 5; u++ {
			if u != v {
				edges = append(edges, Edge{u, v, 0})
			}
		}
	}
	arbs, _, _, err := EnumerateMin(6, 0, edges, 1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(arbs) == 0 || len(arbs) > 8 {
		t.Fatalf("limit violated: %d", len(arbs))
	}
}

// TestEnumerateWeightsAreMinimal: property — every enumerated arborescence
// has exactly the minimum weight.
func TestEnumerateWeightsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(4)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := 1; v < n; v++ {
				if u != v && rng.Float64() < 0.8 {
					edges = append(edges, Edge{u, v, float64(rng.Intn(4))})
				}
			}
		}
		want, ok := BruteForceMin(n, 0, edges)
		arbs, got, _, err := EnumerateMin(n, 0, edges, 1e-9, 32)
		if !ok {
			if err == nil {
				t.Fatalf("trial %d: should be unreachable", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: min %v != brute %v", trial, got, want)
		}
		for _, a := range arbs {
			sum := 0.0
			for v := 1; v < n; v++ {
				if a[v] < 0 {
					t.Fatalf("trial %d: node %d unparented in %v", trial, v, a)
				}
				sum += bestEdgeWeight(edges, a[v], v)
			}
			if sum > want+1e-9 {
				t.Fatalf("trial %d: enumerated weight %v exceeds minimum %v (%v)", trial, sum, want, a)
			}
		}
	}
}

func TestMajorityVote(t *testing.T) {
	// Three hierarchies: two say parent(1)=2, one says parent(1)=3.
	arbs := [][]int{
		{-1, 2, 0, 0},
		{-1, 2, 0, 0},
		{-1, 3, 0, 0},
	}
	out := MajorityVote(arbs)
	if len(out) != 2 {
		t.Fatalf("vote kept %d, want the 2 majority hierarchies", len(out))
	}
	for _, a := range out {
		if a[1] != 2 {
			t.Errorf("minority hierarchy survived: %v", a)
		}
	}
	// Perfect tie: no reduction possible.
	tie := [][]int{
		{-1, 2, 0, 0},
		{-1, 3, 0, 0},
	}
	if out := MajorityVote(tie); len(out) != 2 {
		t.Errorf("tie should be returned unreduced, got %d", len(out))
	}
	// Single input is a fixpoint.
	if out := MajorityVote(arbs[:1]); len(out) != 1 {
		t.Errorf("single hierarchy changed: %v", out)
	}
}

// TestEnumerateReportsTruncation: every silent cap of the enumerator must
// surface as truncated=true — the over-size fallback to the single
// optimum and the internal step budget on a combinatorial tie plateau —
// while the caller-chosen limit stays unflagged.
func TestEnumerateReportsTruncation(t *testing.T) {
	// 40 nodes > maxEnumNodes: enumeration falls back to the optimum.
	var big []Edge
	for v := 1; v < 40; v++ {
		big = append(big, Edge{0, v, 1})
	}
	arbs, _, truncated, err := EnumerateMin(40, 0, big, 1e-9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("over-size graph enumeration must report truncation")
	}
	if len(arbs) != 1 {
		t.Errorf("over-size fallback returned %d arborescences, want 1", len(arbs))
	}
	// With limit 1 the caller asked for the optimum only: no flag.
	if _, _, truncated, err := EnumerateMin(40, 0, big, 1e-9, 1); err != nil || truncated {
		t.Errorf("limit=1 must not flag truncation (truncated=%v, err=%v)", truncated, err)
	}

	// A dense all-ties clique: the co-optimal plateau is combinatorial, so
	// a huge limit forces the branch-and-bound into its step budget.
	const n = 16
	var tie []Edge
	for v := 1; v < n; v++ {
		tie = append(tie, Edge{0, v, 1})
		for u := 1; u < n; u++ {
			if u != v {
				tie = append(tie, Edge{u, v, 0})
			}
		}
	}
	arbs, _, truncated, err = EnumerateMin(n, 0, tie, 1e-9, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Errorf("step-budget abort must report truncation (%d arbs found)", len(arbs))
	}

	// Hitting the explicit limit on the same plateau is not truncation.
	if _, _, truncated, err = EnumerateMin(n, 0, tie, 1e-9, 4); err != nil || truncated {
		t.Errorf("explicit limit hit must not flag truncation (truncated=%v, err=%v)", truncated, err)
	}
}

// TestMajorityVoteOrderInsensitive: the surviving set must not depend on
// the order the co-optimal arborescences were enumerated in — shuffling
// the input yields the same set (as a set; MajorityVote preserves input
// order within the survivors).
func TestMajorityVoteOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	key := func(a []int) string {
		s := ""
		for _, p := range a {
			s += string(rune(p + 2))
		}
		return s
	}
	asSet := func(arbs [][]int) map[string]bool {
		out := map[string]bool{}
		for _, a := range arbs {
			out[key(a)] = true
		}
		return out
	}
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(5)
		// Random parent vectors over nodes 0..n-1 with node 0 as root;
		// duplicates allowed (ties between identical hierarchies happen).
		arbs := make([][]int, 2+rng.Intn(6))
		for i := range arbs {
			a := make([]int, n)
			a[0] = -1
			for v := 1; v < n; v++ {
				a[v] = rng.Intn(v) // acyclic by construction
			}
			arbs[i] = a
		}
		want := asSet(MajorityVote(arbs))
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := rng.Perm(len(arbs))
			shuffled := make([][]int, len(arbs))
			for i, p := range perm {
				shuffled[i] = arbs[p]
			}
			if got := asSet(MajorityVote(shuffled)); !mapsEqual(got, want) {
				t.Fatalf("trial %d: surviving set depends on input order\n got: %v\nwant: %v",
					trial, got, want)
			}
		}
	}
}

func mapsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
