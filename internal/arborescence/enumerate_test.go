package arborescence

import (
	"math"
	"math/rand"
	"testing"
)

func TestEnumerateFindsAllCoOptimal(t *testing.T) {
	// Diamond with two equally-cheap parents for node 3.
	edges := []Edge{
		{0, 1, 1}, {0, 2, 1},
		{1, 3, 2}, {2, 3, 2},
	}
	arbs, w, err := EnumerateMin(4, 0, edges, 1e-9, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Fatalf("weight %v, want 4", w)
	}
	if len(arbs) != 2 {
		t.Fatalf("found %d co-optimal arborescences, want 2: %v", len(arbs), arbs)
	}
	parents3 := map[int]bool{}
	for _, a := range arbs {
		parents3[a[3]] = true
	}
	if !parents3[1] || !parents3[2] {
		t.Errorf("both parents of node 3 must appear: %v", arbs)
	}
}

func TestEnumerateRespectsLimit(t *testing.T) {
	// A 5-node zero-weight clique entered from the root: many co-optimal
	// spanning structures.
	var edges []Edge
	for v := 1; v <= 5; v++ {
		edges = append(edges, Edge{0, v, 1})
		for u := 1; u <= 5; u++ {
			if u != v {
				edges = append(edges, Edge{u, v, 0})
			}
		}
	}
	arbs, _, err := EnumerateMin(6, 0, edges, 1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(arbs) == 0 || len(arbs) > 8 {
		t.Fatalf("limit violated: %d", len(arbs))
	}
}

// TestEnumerateWeightsAreMinimal: property — every enumerated arborescence
// has exactly the minimum weight.
func TestEnumerateWeightsAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(4)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := 1; v < n; v++ {
				if u != v && rng.Float64() < 0.8 {
					edges = append(edges, Edge{u, v, float64(rng.Intn(4))})
				}
			}
		}
		want, ok := BruteForceMin(n, 0, edges)
		arbs, got, err := EnumerateMin(n, 0, edges, 1e-9, 32)
		if !ok {
			if err == nil {
				t.Fatalf("trial %d: should be unreachable", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: min %v != brute %v", trial, got, want)
		}
		for _, a := range arbs {
			sum := 0.0
			for v := 1; v < n; v++ {
				if a[v] < 0 {
					t.Fatalf("trial %d: node %d unparented in %v", trial, v, a)
				}
				sum += bestEdgeWeight(edges, a[v], v)
			}
			if sum > want+1e-9 {
				t.Fatalf("trial %d: enumerated weight %v exceeds minimum %v (%v)", trial, sum, want, a)
			}
		}
	}
}

func TestMajorityVote(t *testing.T) {
	// Three hierarchies: two say parent(1)=2, one says parent(1)=3.
	arbs := [][]int{
		{-1, 2, 0, 0},
		{-1, 2, 0, 0},
		{-1, 3, 0, 0},
	}
	out := MajorityVote(arbs)
	if len(out) != 2 {
		t.Fatalf("vote kept %d, want the 2 majority hierarchies", len(out))
	}
	for _, a := range out {
		if a[1] != 2 {
			t.Errorf("minority hierarchy survived: %v", a)
		}
	}
	// Perfect tie: no reduction possible.
	tie := [][]int{
		{-1, 2, 0, 0},
		{-1, 3, 0, 0},
	}
	if out := MajorityVote(tie); len(out) != 2 {
		t.Errorf("tie should be returned unreduced, got %d", len(out))
	}
	// Single input is a fixpoint.
	if out := MajorityVote(arbs[:1]); len(out) != 1 {
		t.Errorf("single hierarchy changed: %v", out)
	}
}
