package arborescence

import (
	"math"
	"math/rand"
	"testing"
)

// randomDigraph generates a random weighted digraph on n nodes with at
// most one edge per ordered pair (so a parent vector identifies a unique
// edge set and its weight is well-defined).
func randomDigraph(rng *rand.Rand, n int) []Edge {
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || rng.Float64() < 0.35 {
				continue
			}
			// Coarse weights provoke ties, exercising the co-optimal
			// machinery; fine weights exercise strict optima.
			w := float64(rng.Intn(8))
			if rng.Intn(2) == 0 {
				w += rng.Float64()
			}
			edges = append(edges, Edge{From: u, To: v, W: w})
		}
	}
	return edges
}

// TestMinArborescenceRandomProperties drives the Edmonds solver over
// random digraphs (n ≤ 6) and asserts, for every instance where a spanning
// arborescence exists:
//   - the returned parent vector is spanning (every non-root has a parent,
//     the root has none) and uses only existing edges;
//   - it is acyclic and rooted: every node's parent chain reaches the root;
//   - the returned weight equals the sum of the chosen edges;
//   - the weight is never heavier than brute-force enumeration's optimum
//     (and never lighter — it must be exactly optimal).
//
// Solver and brute force must also agree on *whether* an arborescence
// exists at all.
func TestMinArborescenceRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	instances := 0
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(5) // 2..6
		root := rng.Intn(n)
		edges := randomDigraph(rng, n)

		parents, w, err := MinArborescence(n, root, edges)
		bruteW, bruteOK := BruteForceMin(n, root, edges)
		if err != nil {
			if bruteOK {
				t.Fatalf("iter %d: solver failed (%v) but brute force found weight %v\nedges: %v", iter, err, bruteW, edges)
			}
			continue
		}
		if !bruteOK {
			t.Fatalf("iter %d: solver returned weight %v but brute force found no arborescence\nedges: %v", iter, w, edges)
		}
		instances++

		// Index the (unique) edge per ordered pair.
		weightOf := map[[2]int]float64{}
		for _, e := range edges {
			weightOf[[2]int{e.From, e.To}] = e.W
		}

		// Spanning over existing edges.
		if parents[root] != -1 {
			t.Fatalf("iter %d: root %d has parent %d", iter, root, parents[root])
		}
		sum := 0.0
		for v := 0; v < n; v++ {
			if v == root {
				continue
			}
			p := parents[v]
			if p < 0 {
				t.Fatalf("iter %d: node %d has no parent (not spanning)", iter, v)
			}
			ew, ok := weightOf[[2]int{p, v}]
			if !ok {
				t.Fatalf("iter %d: chosen edge %d->%d does not exist", iter, p, v)
			}
			sum += ew
		}

		// Acyclic and rooted: every parent chain reaches root within n hops.
		for v := 0; v < n; v++ {
			u, hops := v, 0
			for u != root {
				u = parents[u]
				hops++
				if u < 0 || hops > n {
					t.Fatalf("iter %d: parent chain of %d does not reach root %d (parents=%v)", iter, v, root, parents)
				}
			}
		}

		const eps = 1e-9
		if math.Abs(sum-w) > eps {
			t.Fatalf("iter %d: reported weight %v != sum of chosen edges %v", iter, w, sum)
		}
		if w > bruteW+eps {
			t.Fatalf("iter %d: solver weight %v heavier than brute-force optimum %v\nedges: %v", iter, w, bruteW, edges)
		}
		if w < bruteW-eps {
			t.Fatalf("iter %d: solver weight %v impossibly lighter than brute-force optimum %v", iter, w, bruteW)
		}
	}
	if instances < 100 {
		t.Fatalf("only %d solvable instances generated; generator too sparse to be meaningful", instances)
	}
}

// TestEnumerateMinRandomProperties extends the property check to the
// co-optimal enumerator: every enumerated arborescence must satisfy the
// same structural invariants and weigh within eps of the optimum.
func TestEnumerateMinRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(5)
		root := rng.Intn(n)
		edges := randomDigraph(rng, n)
		arbs, w0, _, err := EnumerateMin(n, root, edges, 1e-9, 16)
		if err != nil {
			continue
		}
		weightOf := map[[2]int]float64{}
		for _, e := range edges {
			weightOf[[2]int{e.From, e.To}] = e.W
		}
		seen := map[string]bool{}
		for ai, parents := range arbs {
			key := ""
			sum := 0.0
			for v := 0; v < n; v++ {
				key += string(rune(parents[v] + 2))
				if v == root {
					if parents[v] != -1 {
						t.Fatalf("iter %d arb %d: root has a parent", iter, ai)
					}
					continue
				}
				ew, ok := weightOf[[2]int{parents[v], v}]
				if !ok {
					t.Fatalf("iter %d arb %d: edge %d->%d does not exist", iter, ai, parents[v], v)
				}
				sum += ew
				u, hops := v, 0
				for u != root {
					u = parents[u]
					hops++
					if u < 0 || hops > n {
						t.Fatalf("iter %d arb %d: cycle or dangling chain at %d", iter, ai, v)
					}
				}
			}
			if sum > w0+1e-9 {
				t.Fatalf("iter %d arb %d: weight %v exceeds optimum %v", iter, ai, sum, w0)
			}
			if seen[key] {
				t.Fatalf("iter %d: duplicate arborescence enumerated", iter)
			}
			seen[key] = true
		}
	}
}
