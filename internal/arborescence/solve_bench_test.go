package arborescence

import (
	"fmt"
	"testing"
)

// contractedGraph builds a graph that forces Edmonds' algorithm through
// repeated cycle contractions: k rings whose internal edges are cheap (so
// each ring's minimum in-edges form a cycle) joined to the root by
// expensive entry edges, plus cross edges to keep the contracted levels
// non-trivial.
func contractedGraph(k, ringLen int) (n int, edges []Edge) {
	n = 1 + k*ringLen
	for r := 0; r < k; r++ {
		base := 1 + r*ringLen
		for i := 0; i < ringLen; i++ {
			from := base + i
			to := base + (i+1)%ringLen
			edges = append(edges, Edge{From: from, To: to, W: 1})
		}
		// Expensive entry from the root into one ring node.
		edges = append(edges, Edge{From: 0, To: base, W: 10})
		// A cross edge from the previous ring, slightly cheaper than the
		// root entry, so contraction decisions interact across rings.
		if r > 0 {
			edges = append(edges, Edge{From: base - 1, To: base, W: 5})
		}
	}
	return n, edges
}

// BenchmarkSolveContracted measures the contraction/expansion path of the
// Edmonds solver on cycle-heavy graphs — the workload the slice-backed
// edge set replaced the old map[int]bool + sort.Ints expansion for.
func BenchmarkSolveContracted(b *testing.B) {
	for _, shape := range []struct{ rings, ringLen int }{
		{2, 4}, {8, 8}, {16, 16},
	} {
		n, edges := contractedGraph(shape.rings, shape.ringLen)
		b.Run(fmt.Sprintf("rings=%d,len=%d", shape.rings, shape.ringLen), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := MinArborescence(n, 0, edges); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
