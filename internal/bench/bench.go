// Package bench defines the 19 evaluation benchmarks of Table 2. The paper
// evaluates Rock on 19 stripped 32-bit MSVC binaries built from open-source
// projects; those binaries are not available here, so each benchmark is a
// synthetic program (internal/cpp) with the same name, type count, and —
// crucially — the same *structural phenomena* that produced the paper's
// per-benchmark error pattern: retained or inlined constructor cues,
// optimized-out abstract parents, subtrees whose roots override everything
// (family splits), identical-code folding that merges unrelated families,
// and structurally equivalent types that only behavioral analysis can
// order. Each benchmark records the paper's Table 2 numbers for
// side-by-side reporting; EXPERIMENTS.md discusses paper-vs-measured.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/cpp"
	"repro/internal/image"
)

// PaperRow holds a benchmark's Table 2 reference values.
type PaperRow struct {
	SizeKB         float64
	Types          int
	WithoutMissing float64
	WithoutAdded   float64
	WithMissing    float64
	WithAdded      float64
}

// Benchmark couples a synthetic program with its compile options and the
// paper's reference numbers.
type Benchmark struct {
	// Name matches the Table 2 row.
	Name string
	// Resolvable places the benchmark above the line in Table 2 (the
	// structural analysis alone pins down a single hierarchy).
	Resolvable bool
	// Paper holds the reference numbers from Table 2.
	Paper PaperRow
	// Program builds the source model.
	Program func() *cpp.Program
	// Options are the compile options (which optimizations the original
	// binary exhibited).
	Options compiler.Options
	// Counted optionally restricts the evaluated type universe to these
	// class names; types outside it model the paper's filtered
	// compiler-generated / single-type-hierarchy classes. Empty means all
	// emitted primary types.
	Counted []string
	// Notes summarizes the engineered phenomenon.
	Notes string
}

// Build compiles the benchmark, returning the stripped image (the analysis
// input) and the ground-truth metadata.
func (b *Benchmark) Build() (*image.Image, *image.Metadata, error) {
	img, err := compiler.Compile(b.Program(), b.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return img.Strip(), img.Meta, nil
}

var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns the benchmarks in Table 2 order (structurally resolvable
// first, then the unresolvable nine).
func All() []*Benchmark {
	out := append([]*Benchmark(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Resolvable != out[j].Resolvable {
			return out[i].Resolvable
		}
		return tableOrder(out[i].Name) < tableOrder(out[j].Name)
	})
	return out
}

// tableOrder gives the row position within each half of Table 2.
func tableOrder(name string) int {
	order := []string{
		"AntispyComplete", "bafprp", "cppcheck", "MidiLib", "patl",
		"pop3", "smtp", "tinyxml", "tinyxmlSTL", "yafe",
		"Analyzer", "CGridListCtrlEx", "echoparams", "gperf", "libctemplate",
		"ShowTraf", "Smoothing", "td_unittest", "tinyserver",
	}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Builder DSL ------------------------------------------------------------------

// builder assembles a cpp.Program with per-class usage idioms. A class's
// idiom is the sequence of virtual calls to the methods it introduces plus
// its field writes and a call to a per-class helper function; a usage
// function for class C performs the idioms of C's whole ancestor chain
// (root first) and repeats C's own idiom, giving the graded behavioral
// containment the paper's Hypothesis 4.1 relies on.
type builder struct {
	p *cpp.Program
	// newMethods records the virtual methods introduced (not overridden) by
	// each class, in declaration order.
	newMethods map[string][]string
	// newFields records fields declared by each class.
	newFields map[string][]string
	// helpers tracks created helper functions.
	helpers map[string]bool
	useN    int
}

func newBuilder(name string) *builder {
	return &builder{
		p:          &cpp.Program{Name: name},
		newMethods: map[string][]string{},
		newFields:  map[string][]string{},
		helpers:    map[string]bool{},
	}
}

// seed returns a stable distinctive value for a symbol name, used to keep
// auto-generated method and helper bodies from folding under ICF.
func seed(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// class declares a class. methods are NEW virtual methods introduced here;
// each gets a distinctive (non-foldable) body.
func (b *builder) class(name, parent string, methods ...string) *cpp.Class {
	c := &cpp.Class{Name: name}
	if parent != "" {
		c.Bases = []string{parent}
	}
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{
			Name: m, Virtual: true,
			Body: []cpp.Stmt{cpp.Opaque{Seed: seed(name + "::" + m)}},
		})
		b.newMethods[name] = append(b.newMethods[name], m)
	}
	b.p.Classes = append(b.p.Classes, c)
	return c
}

// pureClass declares a class whose listed new methods are pure virtual.
func (b *builder) pureClass(name, parent string, methods ...string) *cpp.Class {
	c := &cpp.Class{Name: name}
	if parent != "" {
		c.Bases = []string{parent}
	}
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{Name: m, Virtual: true, Pure: true})
		b.newMethods[name] = append(b.newMethods[name], m)
	}
	b.p.Classes = append(b.p.Classes, c)
	return c
}

// override adds overriding implementations of inherited methods to class
// name, each with a distinctive body.
func (b *builder) override(name string, methods ...string) {
	c := b.p.Class(name)
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{
			Name: m, Virtual: true,
			Body: []cpp.Stmt{cpp.Opaque{Seed: seed(name + "::" + m)}},
		})
	}
}

// reabstract overrides an inherited concrete method with a pure-virtual
// redeclaration (legal, if rare, C++: the derived class withdraws the
// implementation), giving the class a purecall slot where ancestors have a
// concrete pointer.
func (b *builder) reabstract(name string, methods ...string) {
	c := b.p.Class(name)
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{Name: m, Virtual: true, Pure: true})
	}
}

// addMethods appends NEW virtual methods (recorded as introduced by name,
// with distinctive bodies) — unlike override, which replaces inherited
// slots.
func (b *builder) addMethods(name string, methods ...string) {
	c := b.p.Class(name)
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{
			Name: m, Virtual: true,
			Body: []cpp.Stmt{cpp.Opaque{Seed: seed(name + "::" + m)}},
		})
		b.newMethods[name] = append(b.newMethods[name], m)
	}
}

// pureMethods adds NEW pure virtual methods to class name (recorded as
// introduced there: usage idioms still dispatch through their slots).
func (b *builder) pureMethods(name string, methods ...string) {
	c := b.p.Class(name)
	for _, m := range methods {
		c.Methods = append(c.Methods, &cpp.Method{Name: m, Virtual: true, Pure: true})
		b.newMethods[name] = append(b.newMethods[name], m)
	}
}

// field declares a data member on class name.
func (b *builder) field(name string, fields ...string) {
	c := b.p.Class(name)
	for _, f := range fields {
		c.Fields = append(c.Fields, cpp.Field{Name: f})
		b.newFields[name] = append(b.newFields[name], f)
	}
}

// getter adds a virtual method to class name whose body reads the given
// field — the identical-code-folding bait: two getters reading the same
// offset compile to byte-identical functions.
func (b *builder) getter(name, method, fld string) {
	c := b.p.Class(name)
	c.Methods = append(c.Methods, &cpp.Method{
		Name:    method,
		Virtual: true,
		Body:    []cpp.Stmt{cpp.ReadField{Obj: "this", Field: fld}},
	})
	b.newMethods[name] = append(b.newMethods[name], method)
}

// helper ensures a per-class helper free function exists and returns its
// name. Calls to it give each class a distinctive call(f) event.
func (b *builder) helper(class string) string {
	hname := "process_" + class
	if !b.helpers[hname] {
		b.helpers[hname] = true
		b.p.Funcs = append(b.p.Funcs, &cpp.Func{
			Name:   hname,
			Params: []cpp.Param{{Name: "o", Class: class}},
			Body:   []cpp.Stmt{cpp.Opaque{Seed: seed(hname)}, cpp.Return{}},
		})
	}
	return hname
}

// chain returns the primary ancestor chain of class name, root first,
// ending with name itself.
func (b *builder) chain(name string) []string {
	var rev []string
	for n := name; n != ""; {
		rev = append(rev, n)
		c := b.p.Class(n)
		if c == nil {
			break
		}
		n = c.PrimaryBase()
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// idiomOf returns the statements of one level's idiom applied to object
// obj: virtual calls to the level's introduced methods, writes to its
// fields, and a helper call.
func (b *builder) idiomOf(level, obj string) []cpp.Stmt {
	var out []cpp.Stmt
	for _, m := range b.newMethods[level] {
		out = append(out, cpp.VCall{Obj: obj, Method: m})
	}
	for _, f := range b.newFields[level] {
		out = append(out, cpp.WriteField{Obj: obj, Field: f})
	}
	out = append(out, cpp.CallFunc{Name: b.helper(level), Args: []cpp.Arg{cpp.ObjArg(obj)}})
	return out
}

// use adds a usage function for class name: it allocates an instance and
// performs the idiom of every ancestor (root first), each repeated reps
// times consecutively, ending with the class's own idiom. Consecutive
// repetition matters: it makes every windowed tracelet of an ancestor's
// usage (including its repetition patterns) appear in the descendant's
// training set, which is the containment that Hypothesis 4.1 relies on.
func (b *builder) use(name string, reps int) {
	body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
	for _, level := range b.chain(name) {
		for r := 0; r < reps; r++ {
			body = append(body, b.idiomOf(level, "o")...)
		}
	}
	b.useN++
	b.p.Funcs = append(b.p.Funcs, &cpp.Func{
		Name: fmt.Sprintf("use_%s_%d", name, b.useN),
		Body: body,
	})
}

// useAs adds a usage function for class name that performs the idioms of
// the listed classes (in order) on a fresh instance — used to make one
// type's behavior deliberately resemble another's.
func (b *builder) useAs(name string, reps int, idiomClasses ...string) {
	body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
	for _, level := range idiomClasses {
		for r := 0; r < reps; r++ {
			for _, m := range b.newMethods[level] {
				// Only call methods actually visible on name.
				if b.p.Class(name) != nil && b.resolvable(name, m) {
					body = append(body, cpp.VCall{Obj: "o", Method: m})
				}
			}
			for _, f := range b.newFields[level] {
				if b.hasField(name, f) {
					body = append(body, cpp.WriteField{Obj: "o", Field: f})
				}
			}
			body = append(body, cpp.CallFunc{Name: b.helper(level), Args: []cpp.Arg{cpp.ObjArg("o")}})
		}
	}
	b.useN++
	b.p.Funcs = append(b.p.Funcs, &cpp.Func{
		Name: fmt.Sprintf("use_%s_%d", name, b.useN),
		Body: body,
	})
}

// useVariant adds a usage function for class name consisting of base's
// idiom plus a call to one helper SHARED by every variant of the group:
// the variants' behaviors are mutually indistinguishable (their SLMs tie)
// while still being distinguishable from base's own behavior.
func (b *builder) useVariant(name string, reps int, base, group string) {
	hname := "process_" + group
	if !b.helpers[hname] {
		b.helpers[hname] = true
		b.p.Funcs = append(b.p.Funcs, &cpp.Func{
			Name:   hname,
			Params: []cpp.Param{{Name: "o", Class: base}},
			Body:   []cpp.Stmt{cpp.Opaque{Seed: seed(hname)}, cpp.Return{}},
		})
	}
	body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
	for r := 0; r < reps; r++ {
		body = append(body, b.idiomOf(base, "o")...)
		body = append(body, cpp.CallFunc{Name: hname, Args: []cpp.Arg{cpp.ObjArg("o")}})
	}
	b.useN++
	b.p.Funcs = append(b.p.Funcs, &cpp.Func{
		Name: fmt.Sprintf("use_%s_%d", name, b.useN),
		Body: body,
	})
}

// slotOf returns the vtable slot index of a method introduced along cls's
// primary chain (slot 0 is the implicit destructor). It assumes the
// benchmark's classes only append new virtuals (overrides replace in
// place), which holds for every builder-made program.
func (b *builder) slotOf(cls, method string) int {
	i := 1
	for _, level := range b.chain(cls) {
		for _, m := range b.newMethods[level] {
			if m == method {
				return i
			}
			i++
		}
	}
	return -1
}

// methodAtSlot returns cls's method occupying the given slot index, or "".
func (b *builder) methodAtSlot(cls string, slot int) string {
	i := 1
	for _, level := range b.chain(cls) {
		for _, m := range b.newMethods[level] {
			if i == slot {
				return m
			}
			i++
		}
	}
	return ""
}

// offsetOf returns the byte offset of a field introduced along cls's chain.
func (b *builder) offsetOf(cls, field string) int {
	off := 8
	for _, level := range b.chain(cls) {
		for _, f := range b.newFields[level] {
			if f == field {
				return off
			}
			off += 8
		}
	}
	return -1
}

// fieldAtOffset returns cls's field at the given byte offset, or "".
func (b *builder) fieldAtOffset(cls string, off int) string {
	cur := 8
	for _, level := range b.chain(cls) {
		for _, f := range b.newFields[level] {
			if cur == off {
				return f
			}
			cur += 8
		}
	}
	return ""
}

// useMirror adds a usage function for class name that reproduces, on name's
// OWN slots and fields, the word shapes of the given ancestry chain of some
// other hierarchy: for each chain level (repeated reps times) it performs
// virtual calls through the slots matching the level's new methods, writes
// to name's field at the level's field offsets, and calls the level's
// helper. A single call to name's own helper closes the function, keeping
// name distinguishable. This makes D(chainBottom || name) minimal among
// name's candidates — the "behaves exactly like X" situation behind merged
// hierarchies being spliced at depth.
func (b *builder) useMirror(name string, reps int, chain ...string) {
	body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
	for _, level := range chain {
		for r := 0; r < reps; r++ {
			for _, m := range b.newMethods[level] {
				slot := b.slotOf(level, m)
				if own := b.methodAtSlot(name, slot); own != "" {
					body = append(body, cpp.VCall{Obj: "o", Method: own})
				}
			}
			for _, f := range b.newFields[level] {
				off := b.offsetOf(level, f)
				if own := b.fieldAtOffset(name, off); own != "" {
					body = append(body, cpp.WriteField{Obj: "o", Field: own})
				}
			}
			body = append(body, cpp.CallFunc{Name: b.helper(level), Args: []cpp.Arg{cpp.ObjArg("o")}})
		}
	}
	body = append(body, cpp.CallFunc{Name: b.helper(name), Args: []cpp.Arg{cpp.ObjArg("o")}})
	b.useN++
	b.p.Funcs = append(b.p.Funcs, &cpp.Func{
		Name: fmt.Sprintf("use_%s_%d", name, b.useN),
		Body: body,
	})
}

func (b *builder) resolvable(cls, method string) bool {
	ch := b.chain(cls)
	for _, l := range ch {
		for _, m := range b.newMethods[l] {
			if m == method {
				return true
			}
		}
	}
	return false
}

func (b *builder) hasField(cls, fld string) bool {
	ch := b.chain(cls)
	for _, l := range ch {
		for _, f := range b.newFields[l] {
			if f == fld {
				return true
			}
		}
	}
	return false
}

// useAll adds a default usage function for every concrete class (reps
// repetitions each).
func (b *builder) useAll(reps int) { b.useAllExcept(reps) }

// useAllExcept is useAll with exclusions (classes whose usage is
// hand-crafted elsewhere).
func (b *builder) useAllExcept(reps int, except ...string) {
	skip := map[string]bool{}
	for _, e := range except {
		skip[e] = true
	}
	for _, c := range b.p.Classes {
		if !b.p.IsAbstract(c.Name) && !skip[c.Name] {
			b.use(c.Name, reps)
		}
	}
}

// names returns all class names in declaration order.
func (b *builder) names() []string {
	out := make([]string, 0, len(b.p.Classes))
	for _, c := range b.p.Classes {
		out = append(out, c.Name)
	}
	return out
}

// cueOptions are the above-the-line compile options: constructor calls to
// parents are preserved, so structural rule 3 resolves hierarchies.
func cueOptions() compiler.Options {
	return compiler.Options{
		InlineCtorAtNew: true,
		EmitDtors:       true,
	}
}

// optOptions are the below-the-line compile options: the fully optimized
// build with every structural parent cue removed.
func optOptions() compiler.Options {
	return compiler.DefaultOptions()
}

func without(names []string, drop ...string) []string {
	d := map[string]bool{}
	for _, n := range drop {
		d[n] = true
	}
	var out []string
	for _, n := range names {
		if !d[n] {
			out = append(out, n)
		}
	}
	return out
}
