package bench

import (
	"testing"
)

func TestRegistryMatchesTable2(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d benchmarks, Table 2 has 19", len(all))
	}
	resolvable := 0
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if b.Resolvable {
			resolvable++
		}
		if b.Paper.Types <= 0 {
			t.Errorf("%s: missing paper type count", b.Name)
		}
	}
	if resolvable != 10 {
		t.Errorf("%d resolvable benchmarks, want 10", resolvable)
	}
	// Resolvable rows come first, matching the table layout.
	for i := 1; i < len(all); i++ {
		if all[i].Resolvable && !all[i-1].Resolvable {
			t.Error("resolvable benchmark after the line")
		}
	}
}

func TestEveryBenchmarkBuilds(t *testing.T) {
	for _, b := range All() {
		img, meta, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if img.Meta != nil {
			t.Fatalf("%s: Build returned a non-stripped image", b.Name)
		}
		// Primary emitted types match the paper's count for benchmarks
		// without a Counted filter.
		primary := 0
		for _, tm := range meta.Types {
			if !tm.Secondary {
				primary++
			}
		}
		want := b.Paper.Types
		if len(b.Counted) > 0 {
			want = len(b.Counted)
			if want != b.Paper.Types {
				t.Errorf("%s: counted list has %d entries, paper says %d", b.Name, want, b.Paper.Types)
			}
			if primary < want {
				t.Errorf("%s: %d emitted types < %d counted", b.Name, primary, want)
			}
		} else if primary != want {
			t.Errorf("%s: emitted %d types, paper says %d", b.Name, primary, want)
		}
	}
}

func TestProgramsValidate(t *testing.T) {
	for _, b := range All() {
		if err := b.Program().Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	for name, p := range map[string]interface{ Validate() error }{
		"Motivating":          Motivating(),
		"DataSources":         DataSources(),
		"MultipleInheritance": MultipleInheritance(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBuilderHelpers(t *testing.T) {
	b := newBuilder("t")
	b.class("A", "", "m1", "m2")
	b.field("A", "f1")
	b.class("B", "A", "m3")
	b.field("B", "f2")
	if got := b.chain("B"); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("chain(B) = %v", got)
	}
	if b.slotOf("B", "m3") != 3 { // dtor, m1, m2, m3
		t.Errorf("slotOf(m3) = %d", b.slotOf("B", "m3"))
	}
	if b.methodAtSlot("B", 1) != "m1" || b.methodAtSlot("B", 3) != "m3" {
		t.Error("methodAtSlot wrong")
	}
	if b.offsetOf("B", "f2") != 16 {
		t.Errorf("offsetOf(f2) = %d", b.offsetOf("B", "f2"))
	}
	if b.fieldAtOffset("B", 8) != "f1" {
		t.Errorf("fieldAtOffset(8) = %q", b.fieldAtOffset("B", 8))
	}
}
