package bench

import "repro/internal/cpp"

// Motivating returns the §2 motivating example: Stream with
// ConfirmableStream and FlushableStream children and the Fig. 3 useX
// drivers. Compiled with full optimization it exercises the paper's entire
// argument: the structural analysis cannot decide FlushableStream's parent,
// the SLM distances can.
func Motivating() *cpp.Program {
	send := cpp.VCall{Obj: "s", Method: "send", Args: []cpp.Arg{cpp.Scalar()}}
	confirm := cpp.VCall{Obj: "s", Method: "confirm"}
	flush := cpp.VCall{Obj: "s", Method: "flush"}
	closeC := cpp.VCall{Obj: "s", Method: "close"}
	return &cpp.Program{
		Name: "motivating",
		Classes: []*cpp.Class{
			{Name: "Stream", Methods: []*cpp.Method{{Name: "send", Virtual: true}}},
			{Name: "ConfirmableStream", Bases: []string{"Stream"}, Methods: []*cpp.Method{
				{Name: "confirm", Virtual: true},
			}},
			{Name: "FlushableStream", Bases: []string{"Stream"}, Methods: []*cpp.Method{
				{Name: "flush", Virtual: true},
				{Name: "close", Virtual: true},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "useStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "Stream"}, send, send, send,
			}},
			{Name: "useConfirmableStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "ConfirmableStream"},
				send, confirm, send, confirm, send, confirm,
			}},
			{Name: "useFlushableStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "FlushableStream"},
				send, send, send, flush, closeC,
			}},
		},
	}
}

// DataSources returns the §1 data-source example (Fig. 1/2): a DataSource
// hierarchy whose internal and external branches must not be conflated,
// since applying CFI from a merged grouping would let unvalidated external
// data flow into readInternal.
func DataSources() *cpp.Program {
	b := newBuilder("datasources")
	b.class("DataSource", "", "connect", "read")
	b.field("DataSource", "conn")
	b.class("InternalDataSource", "DataSource", "attachLocal")
	b.override("InternalDataSource", "connect")
	b.class("ConfigStore", "InternalDataSource", "loadDefaults")
	b.class("AuditLog", "InternalDataSource", "appendEntry")
	b.class("ExternalDataSource", "DataSource", "verifyCredentials")
	b.override("ExternalDataSource", "connect")
	b.class("WebFeed", "ExternalDataSource", "fetchUrl")
	b.class("UserUpload", "ExternalDataSource", "scanUpload")
	b.useAll(3)

	// readInternal / readExternal of Fig. 1.
	b.p.Funcs = append(b.p.Funcs,
		&cpp.Func{Name: "readInternal", Params: []cpp.Param{{Name: "ds", Class: "InternalDataSource"}}, Body: []cpp.Stmt{
			cpp.VCall{Obj: "ds", Method: "connect"},
			cpp.VCall{Obj: "ds", Method: "read"},
			cpp.Return{Obj: "ds"},
		}},
		&cpp.Func{Name: "readExternal", Params: []cpp.Param{{Name: "ds", Class: "ExternalDataSource"}}, Body: []cpp.Stmt{
			cpp.VCall{Obj: "ds", Method: "connect"},
			cpp.VCall{Obj: "ds", Method: "verifyCredentials"},
			cpp.VCall{Obj: "ds", Method: "read"},
			cpp.Return{Obj: "ds"},
		}},
	)
	return b.p
}

// MultipleInheritance returns a program exercising §5.3: Modem and Printer
// bases, FaxMachine deriving from both. Its instances receive two vtable
// installs (primary and secondary subobject), so Rock assigns it two
// parents.
func MultipleInheritance() *cpp.Program {
	b := newBuilder("multiinheritance")
	b.class("Modem", "", "dial", "hangup")
	b.field("Modem", "line")
	b.class("Printer", "", "print", "feed")
	b.field("Printer", "tray")
	fax := b.class("FaxMachine", "Modem", "sendFax")
	fax.Bases = append(fax.Bases, "Printer")
	b.override("FaxMachine", "dial")
	b.use("Modem", 3)
	b.use("Printer", 3)
	b.use("FaxMachine", 3)
	return b.p
}
