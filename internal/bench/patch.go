// Binary patching for the incremental-reanalysis harness: simulate a
// "v2 of the binary" by mutating individual functions of an image in
// place. The patch is chosen so the image stays valid and the change is
// contained — it removes one field-write event from the patched
// function's object traces and nothing else — which is exactly the
// workload the version-diff warm lane is built for: k functions change,
// the types they trace into retrain, everything else is reused.
package bench

import (
	"fmt"

	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
)

// patchSite returns the instruction index of the patch point in fn, or
// -1 when the function has none. The site is a field-write idiom — an
// OpMovImm immediately followed by an OpStore of the defined register at
// a nonzero offset — and the patch overwrites the store with a copy of
// the movi, deleting the W(off) event:
//
//   - the image stays valid (same length, decodable instructions);
//   - machine state after the pair is bit-identical to the unpatched
//     run (the duplicated movi redefines the same register to the same
//     scalar, and a store never writes a register), so no downstream
//     instruction can diverge — the only behavioral delta is the one
//     missing write event;
//   - the deleted event's symbol almost always recurs elsewhere in the
//     binary (field offsets are shared across classes), so the interned
//     alphabet keeps its first-occurrence order and only the types the
//     patched function traces into retrain. In the rare case the site
//     was the symbol's global first occurrence the alphabet reorders and
//     every type retrains — strictly less reuse, never a wrong result.
func patchSite(fn *ir.Function) int {
	for i := 0; i+1 < len(fn.Insts); i++ {
		movi, st := fn.Insts[i], fn.Insts[i+1]
		if movi.Op == ir.OpMovImm && st.Op == ir.OpStore && st.Rs == movi.Rd && st.Off != 0 {
			return i
		}
	}
	return -1
}

// PatchableFunctions returns the entry addresses of the functions of img
// that PatchFunction can mutate, in entry-table order.
func PatchableFunctions(img *image.Image) []uint64 {
	var out []uint64
	for _, e := range img.Entries {
		fn, err := disasm.Function(img, e)
		if err != nil {
			continue
		}
		if patchSite(fn) >= 0 {
			out = append(out, e)
		}
	}
	return out
}

// PatchFunction mutates the function at entry in place (see patchSite
// for what the patch does and why it is safe). The entry must have been
// returned by PatchableFunctions.
func PatchFunction(img *image.Image, entry uint64) error {
	fn, err := disasm.Function(img, entry)
	if err != nil {
		return fmt.Errorf("bench: patching %#x: %w", entry, err)
	}
	i := patchSite(fn)
	if i < 0 {
		return fmt.Errorf("bench: function %#x is not patchable", entry)
	}
	// Overwrite the store (instruction i+1) with the movi (instruction i).
	off := fn.AddrOf(i) - image.CodeBase
	copy(img.Code[off+ir.InstSize:off+2*ir.InstSize], img.Code[off:off+ir.InstSize])
	return nil
}
