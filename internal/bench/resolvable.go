package bench

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpp"
)

// The structurally-resolvable benchmarks with engineered errors. Each
// reproduces the mechanism the paper reports for its Table 2 row:
//
//   - AntispyComplete: identical-code folding merges an unrelated utility
//     class into the scanner family; it is forced under the family root
//     (added 1/3 = 0.33).
//   - bafprp: a subtree root overrides every inherited method and its
//     parent-ctor call is inlined, splitting the family; the root loses 7
//     of its 23 descendants (missing 7/23 = 0.3).
//   - tinyxml: the abstract root shares nothing with its children (pure
//     slots are excluded from family evidence) and both direct children
//     have inlined parent ctors, so the root sits alone in its family and
//     loses all 8 descendants (missing 8/9 = 0.89).
//   - tinyxmlSTL: combines a tinyxml-style root split (missing 9/15 = 0.6)
//     with an ICF-merged utility forced under a depth-4 chain (added
//     4/15 = 0.27).
//   - yafe: an ICF-merged cache type is forced under a depth-3 visitor
//     chain (added 3/15 = 0.2).

func init() {
	register(&Benchmark{
		Name:       "AntispyComplete",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 247, Types: 3, WithoutMissing: 0, WithoutAdded: 0.33, WithMissing: 0, WithAdded: 0.33},
		Options:    antispyOptions(),
		Program:    antispyProgram,
		Counted:    []string{"ScannerBase", "RegistryScanner", "DeepRegistryScanner"},
		Notes:      "ICF folds LogSink's getter with RegistryScanner's; LogSink lands under ScannerBase",
	})
	register(&Benchmark{
		Name:       "bafprp",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 529, Types: 23, WithoutMissing: 0.3, WithoutAdded: 0, WithMissing: 0.3, WithAdded: 0},
		Options:    bafprpOptions(),
		Program:    bafprpProgram,
		Notes:      "FieldModule overrides everything and its parent ctor is inlined: family split, root loses 7",
	})
	register(&Benchmark{
		Name:       "tinyxml",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 60, Types: 9, WithoutMissing: 0.89, WithoutAdded: 0, WithMissing: 0.89, WithAdded: 0},
		Options:    tinyxmlOptions(),
		Program:    tinyxmlProgram,
		Notes:      "abstract root isolated in its own family; loses all 8 descendants",
	})
	register(&Benchmark{
		Name:       "tinyxmlSTL",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 88, Types: 15, WithoutMissing: 0.6, WithoutAdded: 0.27, WithMissing: 0.6, WithAdded: 0.27},
		Options:    tinyxmlSTLOptions(),
		Program:    tinyxmlSTLProgram,
		Counted: []string{
			"XmlBase", "XmlNodeSTL", "XmlElementSTL", "XmlCommentSTL", "XmlTextSTL", "XmlDocumentSTL",
			"XmlAttributeSet", "XmlAttrIterator", "XmlAttrHandle", "XmlAttrView",
			"XmlVisitor", "XmlStreamVisitor", "XmlPrecisionVisitor", "XmlPrinter", "XmlQueryVisitor",
		},
		Notes: "root split (missing 9) plus ICF-merged XmlUtilCache under a depth-4 visitor chain (added 4)",
	})
	register(&Benchmark{
		Name:       "yafe",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 68, Types: 15, WithoutMissing: 0, WithoutAdded: 0.2, WithMissing: 0, WithAdded: 0.2},
		Options:    yafeOptions(),
		Program:    yafeProgram,
		Counted: []string{
			"Expr", "BinaryExpr", "UnaryExpr", "LiteralExpr", "AddExpr", "SubExpr", "MulExpr",
			"DivExpr", "NegExpr", "NotExpr", "IntLiteral", "FloatLiteral",
			"ExprVisitor", "TypedExprVisitor", "ConstFolder",
		},
		Notes: "ICF-merged EvalCache forced under the depth-3 visitor chain (added 3)",
	})
}

func antispyOptions() compiler.Options {
	o := cueOptions()
	o.FoldIdenticalBodies = true
	return o
}

func antispyProgram() *cpp.Program {
	b := newBuilder("AntispyComplete")
	// Root: abstract scanner. Slots: [dtor, scan(pure), status(pure)].
	b.pureClass("ScannerBase", "", "scan", "status")
	b.field("ScannerBase", "state")
	// RegistryScanner overrides both pures; status becomes a foldable getter.
	b.class("RegistryScanner", "ScannerBase", "report")
	b.override("RegistryScanner", "scan")
	b.getter("RegistryScanner", "status", "state") // override via matching name
	b.class("DeepRegistryScanner", "RegistryScanner", "descend")
	b.override("DeepRegistryScanner", "scan")
	// LogSink: an unrelated 3-slot type whose getter folds with
	// RegistryScanner::status (same field offset, identical body).
	b.class("LogSink", "", "log")
	b.field("LogSink", "level")
	b.getter("LogSink", "getLevel", "level")
	b.use("RegistryScanner", 3)
	b.use("DeepRegistryScanner", 3)
	b.use("LogSink", 3)
	return b.p
}

func bafprpOptions() compiler.Options {
	o := cueOptions()
	o.ForceInlineParentCtorOf = []string{"FieldModule"}
	return o
}

func bafprpProgram() *cpp.Program {
	b := newBuilder("bafprp")
	b.class("BafRecord", "", "decode", "validate", "describe")
	b.field("BafRecord", "raw")
	// 15 descendants that keep their constructor cues.
	kids := map[string][]string{
		"StructureField": {"TimestampField", "DurationField", "RatedField", "FlagField"},
		"TableField":     {"CallTypeField", "ServiceField", "ClassField"},
		"ModuleField":    {"AmaField", "CarrierField"},
		"ChargeField":    {"SensorField"},
		"ErrorField":     nil,
	}
	order := []string{"StructureField", "TableField", "ModuleField", "ChargeField", "ErrorField"}
	for _, parent := range order {
		b.class(parent, "BafRecord", "parse"+parent)
		b.override(parent, "decode")
		for _, k := range kids[parent] {
			b.class(k, parent, "value"+k)
			b.override(k, "decode")
		}
	}
	// FieldModule: overrides every inherited virtual (nothing shared) and
	// has its parent-ctor inlined — a family split. Its own subtree keeps
	// cues.
	b.class("FieldModule", "BafRecord", "registerField")
	b.override("FieldModule", "decode", "validate", "describe")
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("FieldModule%d", i)
		b.class(name, "FieldModule", fmt.Sprintf("module%d", i))
		b.override(name, "registerField")
	}
	b.useAll(2)
	return b.p
}

func tinyxmlOptions() compiler.Options {
	o := cueOptions()
	o.ForceInlineParentCtorOf = []string{"TiXmlAttribute", "TiXmlNode"}
	return o
}

func tinyxmlProgram() *cpp.Program {
	b := newBuilder("tinyxml")
	// Abstract root: only pure slots besides the destructor, so it shares
	// no function pointers with anyone.
	b.pureClass("TiXmlBase", "", "print", "parse")
	b.field("TiXmlBase", "location")
	b.class("TiXmlAttribute", "TiXmlBase", "nameAttr", "valueAttr")
	b.override("TiXmlAttribute", "print", "parse")
	b.class("TiXmlNode", "TiXmlBase", "insertChild", "removeChild", "value")
	b.override("TiXmlNode", "print", "parse")
	for _, k := range []string{"TiXmlElement", "TiXmlComment", "TiXmlText", "TiXmlDeclaration", "TiXmlUnknown", "TiXmlDocument"} {
		b.class(k, "TiXmlNode", "accept"+k)
		b.override(k, "print", "parse")
	}
	b.useAll(2)
	return b.p
}

func tinyxmlSTLOptions() compiler.Options {
	o := cueOptions()
	o.ForceInlineParentCtorOf = []string{"XmlNodeSTL", "XmlAttributeSet"}
	o.FoldIdenticalBodies = true
	return o
}

func tinyxmlSTLProgram() *cpp.Program {
	b := newBuilder("tinyxmlSTL")
	// Root split: abstract XmlBase, two force-inlined children that
	// override everything, subtrees with retained cues (9 lost descendants).
	b.pureClass("XmlBase", "", "printSTL", "parseSTL")
	b.field("XmlBase", "row")
	b.class("XmlNodeSTL", "XmlBase", "firstChild", "nextSibling")
	b.override("XmlNodeSTL", "printSTL", "parseSTL")
	for _, k := range []string{"XmlElementSTL", "XmlCommentSTL", "XmlTextSTL", "XmlDocumentSTL"} {
		b.class(k, "XmlNodeSTL", "accept"+k)
		b.override(k, "printSTL")
	}
	b.class("XmlAttributeSet", "XmlBase", "findAttr")
	b.override("XmlAttributeSet", "printSTL", "parseSTL")
	for _, k := range []string{"XmlAttrIterator", "XmlAttrHandle", "XmlAttrView"} {
		b.class(k, "XmlAttributeSet", "deref"+k)
		b.override(k, "findAttr")
	}

	// Visitor chain with retained cues: XmlVisitor -> XmlStreamVisitor ->
	// XmlPrecisionVisitor -> XmlPrinter; XmlPrinter withdraws `emitRaw`
	// (redeclares it pure) and owns a foldable getter.
	b.class("XmlVisitor", "", "visitEnter", "emitRaw")
	b.field("XmlVisitor", "out")
	b.class("XmlStreamVisitor", "XmlVisitor", "streamTo")
	b.class("XmlPrecisionVisitor", "XmlStreamVisitor", "setPrecision")
	b.class("XmlPrinter", "XmlPrecisionVisitor", "printDoc")
	b.reabstract("XmlPrinter", "emitRaw")
	b.getter("XmlPrinter", "outBuffer", "out")
	// A concrete sibling branch keeps emitRaw concrete.
	b.class("XmlQueryVisitor", "XmlVisitor", "query")

	// XmlUtilCache: unrelated, filtered from the paper's count. Its getter
	// folds with XmlPrinter::outBuffer (same body, same field offset); it
	// is pure at slot 2 exactly like XmlPrinter's withdrawn emitRaw, so
	// every concrete ancestor in the visitor chain is eliminated by §5.2
	// rule 2 and XmlPrinter is its only possible parent.
	b.class("XmlUtilCache", "", "storeU")
	b.field("XmlUtilCache", "cacheBuf")
	b.pureMethods("XmlUtilCache", "flushU") // slot 2, like the withdrawn emitRaw
	b.getter("XmlUtilCache", "cacheBuffer", "cacheBuf")
	b.override("XmlUtilCache", "evictU", "tickU", "scanU") // new slots 4..6
	b.useAll(2)
	return b.p
}

func yafeOptions() compiler.Options {
	o := cueOptions()
	o.FoldIdenticalBodies = true
	return o
}

func yafeProgram() *cpp.Program {
	b := newBuilder("yafe")
	// Expression tree (12 types) with retained cues.
	b.class("Expr", "", "eval", "typeOf")
	b.field("Expr", "loc")
	b.class("BinaryExpr", "Expr", "lhs", "rhs")
	b.override("BinaryExpr", "eval")
	for _, k := range []string{"AddExpr", "SubExpr", "MulExpr", "DivExpr"} {
		b.class(k, "BinaryExpr", "fold"+k)
		b.override(k, "eval")
	}
	b.class("UnaryExpr", "Expr", "operand")
	b.override("UnaryExpr", "eval")
	for _, k := range []string{"NegExpr", "NotExpr"} {
		b.class(k, "UnaryExpr", "apply"+k)
	}
	b.class("LiteralExpr", "Expr", "constValue")
	for _, k := range []string{"IntLiteral", "FloatLiteral"} {
		b.class(k, "LiteralExpr", "widen"+k)
	}

	// Visitor chain: ExprVisitor -> TypedExprVisitor -> ConstFolder, which
	// withdraws dumpState and owns a foldable getter.
	b.class("ExprVisitor", "", "visitExpr", "dumpState")
	b.field("ExprVisitor", "depth")
	b.class("TypedExprVisitor", "ExprVisitor", "visitTyped")
	b.class("ConstFolder", "TypedExprVisitor", "foldAll")
	b.reabstract("ConstFolder", "dumpState")
	b.getter("ConstFolder", "foldDepth", "depth")

	// EvalCache (filtered): folds with ConstFolder's getter, pure at the
	// dumpState slot, so ConstFolder is its only candidate parent.
	b.class("EvalCache", "", "storeE")
	b.field("EvalCache", "entries")
	b.pureMethods("EvalCache", "flushE") // slot 2, like the withdrawn dumpState
	b.getter("EvalCache", "cacheDepth", "entries")
	b.override("EvalCache", "evictE", "tickE") // new slots 4..5
	b.useAll(2)
	return b.p
}
