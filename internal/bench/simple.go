package bench

import "repro/internal/cpp"

// The clean structurally-resolvable benchmarks: parent-constructor calls
// survive in the binary, so §5.2 rule 3 pins down every parent and both
// evaluation modes reconstruct the exact hierarchy (Table 2 reports 0/0
// for them).

func init() {
	register(&Benchmark{
		Name:       "pop3",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 24, Types: 2, WithoutMissing: 0, WithoutAdded: 0, WithMissing: 0, WithAdded: 0},
		Options:    cueOptions(),
		Program:    pop3Program,
		Notes:      "two-type chain; ctor cues retained",
	})
	register(&Benchmark{
		Name:       "smtp",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 26, Types: 2, WithoutMissing: 0, WithoutAdded: 0, WithMissing: 0, WithAdded: 0},
		Options:    cueOptions(),
		Program:    smtpProgram,
		Notes:      "two-type chain; ctor cues retained",
	})
	register(&Benchmark{
		Name:       "cppcheck",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 97, Types: 6, WithoutMissing: 0, WithoutAdded: 0, WithMissing: 0, WithAdded: 0},
		Options:    cueOptions(),
		Program:    cppcheckProgram,
		Notes:      "one root, five checkers; ctor cues retained",
	})
	register(&Benchmark{
		Name:       "patl",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 36.5, Types: 4, WithoutMissing: 0, WithoutAdded: 0, WithMissing: 0, WithAdded: 0},
		Options:    cueOptions(),
		Program:    patlProgram,
		Notes:      "depth-3 trie hierarchy; ctor cues retained",
	})
	register(&Benchmark{
		Name:       "MidiLib",
		Resolvable: true,
		Paper:      PaperRow{SizeKB: 400, Types: 20, WithoutMissing: 0, WithoutAdded: 0, WithMissing: 0, WithAdded: 0},
		Options:    cueOptions(),
		Program:    midilibProgram,
		Notes:      "20-type event hierarchy; ctor cues retained",
	})
}

func pop3Program() *cpp.Program {
	b := newBuilder("pop3")
	b.class("Pop3Session", "", "connect", "retrieve", "quit")
	b.field("Pop3Session", "sock")
	b.class("Pop3SecureSession", "Pop3Session", "startTLS")
	b.override("Pop3SecureSession", "connect")
	b.field("Pop3SecureSession", "tlsCtx")
	b.useAll(3)
	return b.p
}

func smtpProgram() *cpp.Program {
	b := newBuilder("smtp")
	b.class("SmtpSession", "", "helo", "mailFrom", "rcptTo", "data")
	b.field("SmtpSession", "sock")
	b.class("SmtpAuthSession", "SmtpSession", "auth")
	b.override("SmtpAuthSession", "helo")
	b.useAll(3)
	return b.p
}

func cppcheckProgram() *cpp.Program {
	b := newBuilder("cppcheck")
	b.class("Check", "", "runChecks", "reportError")
	b.field("Check", "tokenizer")
	b.class("CheckBufferOverrun", "Check", "checkBuffer")
	b.override("CheckBufferOverrun", "runChecks")
	b.class("CheckClass", "Check", "checkConstructors", "checkMemset")
	b.override("CheckClass", "runChecks")
	b.class("CheckMemoryLeak", "Check", "checkLeaks")
	b.override("CheckMemoryLeak", "runChecks")
	b.field("CheckMemoryLeak", "allocSites")
	b.class("CheckNullPointer", "Check", "checkDeref")
	b.override("CheckNullPointer", "runChecks")
	b.class("CheckStl", "Check", "checkIterators", "checkBounds")
	b.override("CheckStl", "runChecks")
	b.useAll(3)
	return b.p
}

func patlProgram() *cpp.Program {
	b := newBuilder("patl")
	b.class("Trie", "", "insert", "lookup", "erase")
	b.field("Trie", "root")
	b.class("SuffixTrie", "Trie", "matchSuffix")
	b.override("SuffixTrie", "insert")
	b.class("PrefixTrie", "Trie", "matchPrefix")
	b.override("PrefixTrie", "lookup")
	b.class("CompressedSuffixTrie", "SuffixTrie", "compact")
	b.override("CompressedSuffixTrie", "matchSuffix")
	b.field("CompressedSuffixTrie", "arena")
	b.useAll(3)
	return b.p
}

func midilibProgram() *cpp.Program {
	b := newBuilder("MidiLib")
	b.class("MidiEvent", "", "deltaTime", "write")
	b.field("MidiEvent", "tick")

	b.class("ChannelEvent", "MidiEvent", "channel")
	b.override("ChannelEvent", "write")
	for _, ev := range []string{"NoteOn", "NoteOff", "Aftertouch", "ControlChange", "ProgramChange", "PitchBend", "ChannelModeEvent"} {
		b.class(ev, "ChannelEvent", "value"+ev)
		b.override(ev, "write")
	}

	b.class("MetaEvent", "MidiEvent", "metaType")
	b.override("MetaEvent", "write")
	for _, ev := range []string{"TempoEvent", "TimeSignatureEvent", "KeySignatureEvent", "TrackNameEvent", "LyricEvent", "MarkerEvent", "EndOfTrackEvent"} {
		b.class(ev, "MetaEvent", "payload"+ev)
		b.override(ev, "write")
	}

	b.class("SysexEvent", "MidiEvent", "vendor")
	b.override("SysexEvent", "write")
	b.class("SysexStartEvent", "SysexEvent", "openStream")
	b.class("SysexContinueEvent", "SysexEvent", "continueStream")

	b.useAll(2)
	return b.p
}
