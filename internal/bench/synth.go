package bench

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/image"
	"repro/internal/synth"
)

// SynthConfig is one cell of the adversarial accuracy grid: a generator
// shape crossed with a compiler hard-case mode. Unlike the hand-written
// Table 2 benchmarks, the program is produced procedurally from
// synth.Params, so the grid scales to scenario classes no curated
// benchmark covers.
type SynthConfig struct {
	// Name is "<shape>/<mode>", e.g. "deep/devirt".
	Name string
	// Shape names the generator configuration ("deep", "diamond", ...).
	Shape string
	// Mode names the compiler configuration ("friendly", "opt", ...).
	Mode string
	// Params seeds the generator.
	Params synth.Params
	// Options are the compile options for this cell.
	Options compiler.Options
	// Friendly marks debug-friendly compilation: the structural cues are
	// all retained, so reconstruction is expected to be exact (the
	// resolvable half of Table 2). CI holds these cells to F1 == 1.
	Friendly bool
}

// Build generates and compiles the config's program, returning the
// stripped image and ground-truth metadata (same contract as
// Benchmark.Build).
func (c *SynthConfig) Build() (*image.Image, *image.Metadata, error) {
	prog, _ := synth.Generate(c.Params)
	img, err := compiler.Compile(prog, c.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("synth config %s: %w", c.Name, err)
	}
	return img.Strip(), img.Meta, nil
}

// synthShape is a named generator configuration.
type synthShape struct {
	name   string
	params synth.Params
}

// synthShapes returns the generator side of the grid. Every shape gets its
// own fixed seed so adding a shape never perturbs the programs of the
// others.
func synthShapes() []synthShape {
	deep := synth.DefaultParams(23)
	deep.Families = 4
	deep.MaxDepth = 8
	deep.MaxBranch = 1
	deep.Shape = synth.ShapeDeep

	wide := synth.DefaultParams(37)
	wide.Families = 4
	wide.MaxDepth = 3
	wide.MaxBranch = 5
	wide.Shape = synth.ShapeWide

	diamond := synth.DefaultParams(41)
	diamond.Families = 5
	diamond.MaxDepth = 5
	diamond.MaxBranch = 2
	diamond.Diamonds = true

	split := synth.DefaultParams(53)
	split.Families = 5
	split.MaxDepth = 4
	split.MaxBranch = 2
	split.AbstractRoots = true

	interleaved := synth.DefaultParams(67)
	interleaved.Families = 6
	interleaved.MaxDepth = 4
	interleaved.MaxBranch = 3
	interleaved.Interleave = true

	random := synth.DefaultParams(11)
	random.Families = 6
	// Force the shaped generator so the grid exercises it uniformly; the
	// legacy path keeps its own coverage in internal/synth's tests.
	random.Getters = true

	return []synthShape{
		{"random", random},
		{"deep", deep},
		{"wide", wide},
		{"diamond", diamond},
		{"split", split},
		{"interleaved", interleaved},
	}
}

// synthMode is a named compiler configuration.
type synthMode struct {
	name     string
	opts     compiler.Options
	friendly bool
	// getters forces Params.Getters so the generated program contains
	// COMDAT-foldable accessor bodies for the folding mode to bite on.
	getters bool
}

// synthModes returns the compiler side of the grid.
func synthModes() []synthMode {
	devirt := compiler.DefaultOptions()
	devirt.DevirtualizeMono = true

	comdat := compiler.DefaultOptions()
	comdat.ComdatFoldMethods = true

	partial := compiler.Options{
		InlineCtorAtNew:          true,
		EmitDtors:                true,
		ElideDeadVtableStores:    true,
		RemoveAbstractClasses:    true,
		PartialInlineParentCtors: true,
	}

	return []synthMode{
		{name: "friendly", opts: compiler.DebugFriendlyOptions(), friendly: true},
		{name: "opt", opts: compiler.DefaultOptions()},
		{name: "devirt", opts: devirt},
		{name: "comdat", opts: comdat, getters: true},
		{name: "partial", opts: partial},
	}
}

// SynthGrid returns the full seeded accuracy grid: every generator shape
// crossed with every compiler mode, in a fixed order.
func SynthGrid() []*SynthConfig {
	var out []*SynthConfig
	for _, s := range synthShapes() {
		for _, m := range synthModes() {
			p := s.params
			if m.getters {
				p.Getters = true
			}
			out = append(out, &SynthConfig{
				Name:     s.name + "/" + m.name,
				Shape:    s.name,
				Mode:     m.name,
				Params:   p,
				Options:  m.opts,
				Friendly: m.friendly,
			})
		}
	}
	return out
}

// SynthByName returns the named grid config, or nil.
func SynthByName(name string) *SynthConfig {
	for _, c := range SynthGrid() {
		if c.Name == name {
			return c
		}
	}
	return nil
}
