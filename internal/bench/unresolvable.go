package bench

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpp"
)

// The nine structurally-unresolvable benchmarks (below the line in
// Table 2). All are compiled with aggressive optimization: parent
// constructors inlined and their vtable stores elided, so §5.2 rule 3
// yields nothing and multiple candidate parents survive. The behavioral
// analysis must rank them.

func init() {
	register(&Benchmark{
		Name:       "echoparams",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 58, Types: 4, WithoutMissing: 0, WithoutAdded: 2.25, WithMissing: 0, WithAdded: 0},
		Options:    optOptions(),
		Program:    echoparamsProgram,
		Notes:      "four structurally equivalent types; 64 possible hierarchies without SLMs, exact recovery with",
	})
	register(&Benchmark{
		Name:       "tinyserver",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 46, Types: 4, WithoutMissing: 0, WithoutAdded: 2.25, WithMissing: 0, WithAdded: 0.25},
		Options:    optOptions(),
		Program:    tinyserverProgram,
		Notes:      "TimerTask behaves like ConnHandler and lands under it (still inside the root's subtree)",
	})
	register(&Benchmark{
		Name:       "td_unittest",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 101, Types: 2, WithoutMissing: 0, WithoutAdded: 1.0, WithMissing: 0, WithAdded: 0.5},
		Options:    tdUnittestOptions(),
		Program:    tdUnittestProgram,
		Notes:      "two unrelated types ICF-merged; Heuristic 4.1 forces one under the other",
	})
	register(&Benchmark{
		Name:       "gperf",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 84, Types: 10, WithoutMissing: 0, WithoutAdded: 3.8, WithMissing: 0, WithAdded: 0.5},
		Options:    gperfOptions(),
		Program:    gperfProgram,
		Notes:      "two trees ICF-merged; the option tree's root is forced under the keyword tree's root",
	})
	register(&Benchmark{
		Name:       "CGridListCtrlEx",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 151, Types: 28, WithoutMissing: 0, WithoutAdded: 0.46, WithMissing: 0.07, WithAdded: 0.07},
		Options:    cgridOptions(),
		Program:    cgridProgram,
		Counted:    cgridCounted(),
		Notes:      "optimized-out CDialog/CEdit leave two orphan pairs that get spliced (Fig. 9)",
	})
	register(&Benchmark{
		Name:       "ShowTraf",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 137, Types: 25, WithoutMissing: 0.04, WithoutAdded: 0.4, WithMissing: 0.04, WithAdded: 0.08},
		Options:    showtrafOptions(),
		Program:    showtrafProgram,
		Counted:    showtrafCounted(),
		Notes:      "one family split (missing 1) plus two spliced orphan pairs",
	})
	register(&Benchmark{
		Name:       "Analyzer",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 419, Types: 24, WithoutMissing: 0.21, WithoutAdded: 6.79, WithMissing: 0.25, WithAdded: 1.38},
		Options:    analyzerOptions(),
		Program:    analyzerProgram,
		Notes:      "large equivalence clique; identically-used variants keep co-optimal hierarchies (worst case reported)",
	})
	register(&Benchmark{
		Name:       "Smoothing",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 453, Types: 31, WithoutMissing: 0.19, WithoutAdded: 7.9, WithMissing: 0.23, WithAdded: 1.1},
		Options:    smoothingOptions(),
		Program:    smoothingProgram,
		Notes:      "Analyzer-like at larger scale",
	})
	register(&Benchmark{
		Name:       "libctemplate",
		Resolvable: false,
		Paper:      PaperRow{SizeKB: 1233, Types: 36, WithoutMissing: 0.25, WithoutAdded: 0.33, WithMissing: 0.25, WithAdded: 0.11},
		Options:    libctemplateOptions(),
		Program:    libctemplateProgram,
		Notes:      "dictionary subtree split (missing 9); one section subtree placed a level too deep (added 4)",
	})
}

func echoparamsProgram() *cpp.Program {
	b := newBuilder("echoparams")
	// Four types, all with 4 slots and no purecall slots: structurally
	// equivalent. Each level overrides one inherited method and adds a
	// field, so behavior (field offsets, helper calls) is the only signal.
	b.class("EchoParam", "", "parse", "expand", "emit")
	b.field("EchoParam", "raw")
	b.class("EscapedEchoParam", "EchoParam")
	b.override("EscapedEchoParam", "parse")
	b.field("EscapedEchoParam", "escaped")
	b.class("QuotedEchoParam", "EscapedEchoParam")
	b.override("QuotedEchoParam", "expand")
	b.field("QuotedEchoParam", "quote")
	b.class("LocalizedEchoParam", "QuotedEchoParam")
	b.override("LocalizedEchoParam", "emit")
	b.field("LocalizedEchoParam", "locale")
	b.useAll(3)
	return b.p
}

func tinyserverProgram() *cpp.Program {
	b := newBuilder("tinyserver")
	b.class("TcpServer", "", "startSrv", "stopSrv")
	b.field("TcpServer", "sock")
	b.class("ConnHandler", "TcpServer", "handleConn")
	b.override("ConnHandler", "startSrv")
	b.field("ConnHandler", "conn")
	b.class("HttpConnHandler", "ConnHandler", "parseHttp")
	b.override("HttpConnHandler", "handleConn")
	b.field("HttpConnHandler", "parser")
	// TimerTask is a sibling of ConnHandler in the ground truth but is used
	// exactly like one: same slot for its new method, a field at the same
	// offset, and it is passed to ConnHandler's helper. Rock places it
	// under ConnHandler — still within TcpServer's successor set.
	b.class("TimerTask", "TcpServer", "tickTimer")
	b.override("TimerTask", "startSrv")
	b.field("TimerTask", "deadline")
	b.use("TcpServer", 3)
	b.use("ConnHandler", 3)
	b.use("HttpConnHandler", 3)
	// Hand-written TimerTask driver shaped exactly like ConnHandler's word
	// pattern: C(3) W(16) call(process_ConnHandler), plus a single
	// distinctive tail event.
	body := []cpp.Stmt{cpp.New{Dst: "o", Class: "TimerTask"}}
	for r := 0; r < 3; r++ {
		for _, m := range []string{"startSrv", "stopSrv"} {
			body = append(body, cpp.VCall{Obj: "o", Method: m})
		}
		body = append(body, cpp.WriteField{Obj: "o", Field: "sock"})
		body = append(body, cpp.CallFunc{Name: b.helper("TcpServer"), Args: []cpp.Arg{cpp.ObjArg("o")}})
	}
	for r := 0; r < 3; r++ {
		body = append(body,
			cpp.VCall{Obj: "o", Method: "tickTimer"}, // slot 3, like handleConn
			cpp.WriteField{Obj: "o", Field: "deadline"},
			cpp.CallFunc{Name: b.helper("ConnHandler"), Args: []cpp.Arg{cpp.ObjArg("o")}},
		)
	}
	body = append(body, cpp.CallFunc{Name: b.helper("TimerTask"), Args: []cpp.Arg{cpp.ObjArg("o")}})
	b.p.Funcs = append(b.p.Funcs, &cpp.Func{Name: "use_TimerTask_main", Body: body})
	return b.p
}

func tdUnittestOptions() compiler.Options {
	o := optOptions()
	o.FoldIdenticalBodies = true
	return o
}

func tdUnittestProgram() *cpp.Program {
	b := newBuilder("td_unittest")
	// Two unrelated 3-slot types whose trivial getters fold, merging their
	// families. With no possible structural resolution and Heuristic 4.1
	// demanding a parent, one ends up under the other.
	b.class("TestSuite", "", "runAll")
	b.field("TestSuite", "cases")
	b.getter("TestSuite", "caseCount", "cases")
	b.class("TestReporter", "", "reportAll")
	b.field("TestReporter", "sink")
	b.getter("TestReporter", "sinkHandle", "sink")
	b.use("TestSuite", 3)
	b.use("TestReporter", 3)
	return b.p
}

func gperfOptions() compiler.Options {
	o := optOptions()
	o.FoldIdenticalBodies = true
	return o
}

func gperfProgram() *cpp.Program {
	b := newBuilder("gperf")
	// Keyword tree (5 types).
	b.class("KeywordSet", "", "addKeyword", "lookupSlot")
	b.field("KeywordSet", "words")
	b.getter("KeywordSet", "wordList", "words")
	b.class("InputParser", "KeywordSet", "parseLine")
	b.override("InputParser", "addKeyword")
	b.class("SearchAlgo", "KeywordSet", "selectPositions")
	b.override("SearchAlgo", "lookupSlot")
	b.class("PositionSet", "SearchAlgo", "optimizePos")
	b.field("PositionSet", "positions")
	b.class("OutputEmitter", "PositionSet", "emitTables")
	b.field("OutputEmitter", "out")

	// Option tree (5 types), ICF-merged via the root getters. OptionSet is
	// used like KeywordSet (same slot shapes, same field offset, and it is
	// passed to KeywordSet's helper), so it lands under KeywordSet.
	b.class("OptionSet", "", "parseOpt", "lookupOpt")
	b.field("OptionSet", "opts")
	b.getter("OptionSet", "optList", "opts")
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("Option%d", i)
		b.class(name, "OptionSet", fmt.Sprintf("apply%d", i))
		b.override(name, "parseOpt")
		b.field(name, fmt.Sprintf("val%d", i))
	}
	b.use("KeywordSet", 3)
	b.use("InputParser", 3)
	b.use("SearchAlgo", 3)
	b.use("PositionSet", 3)
	b.use("OutputEmitter", 3)
	b.useAs("OptionSet", 3, "KeywordSet", "OptionSet")
	for i := 1; i <= 4; i++ {
		b.use(fmt.Sprintf("Option%d", i), 3)
	}
	return b.p
}

func cgridOptions() compiler.Options {
	o := cueOptions()
	o.RemoveAbstractClasses = true
	o.ForceInlineParentCtorOf = []string{"CGridColumnTraitsCombo", "CGridColumnTraitsDate", "CGridColumnTraitsText"}
	return o
}

func cgridCounted() []string {
	names := []string{
		"CGridListCtrlEx", "CGridColumnManager", "CGridRowTraits", "CGridColumnTraits",
		"CGridColumnTraitsImage", "CGridColumnTraitsCombo", "CGridColumnTraitsDate", "CGridColumnTraitsText",
		"CGridEditorBase", "CGridEditorComboBox", "CGridEditorDateTime", "CGridEditorCheckBox",
		"CGridRowTraitsText", "CGridRowTraitsXP", "CGridColumnConfig", "CGridColumnConfigProfiles",
		"CGridColumnConfigDefault", "CViewConfigSection", "CViewConfigSectionWinApp", "CViewConfigSectionLocal",
		"CSortClass", "CSortClassNumeric", "CSortClassDate", "CSortClassText",
		"CAboutDlg", "CGridListCtrlExDlg", "CGridEditorComboBoxEdit", "CGridEditorText",
	}
	return names
}

func cgridProgram() *cpp.Program {
	b := newBuilder("CGridListCtrlEx")
	// Core MFC-ish tree with retained constructor cues (24 types).
	b.class("CGridListCtrlEx", "", "onPaint", "insertColumn")
	b.field("CGridListCtrlEx", "hwnd")
	b.class("CGridColumnManager", "CGridListCtrlEx", "manageColumns", "persistColumns", "resetColumns")
	b.class("CGridRowTraits", "CGridListCtrlEx", "drawRow", "hitTestRow", "activateRow")
	b.class("CGridRowTraitsText", "CGridRowTraits", "textColor")
	b.class("CGridRowTraitsXP", "CGridRowTraits", "themeDraw")

	b.class("CGridColumnTraits", "CGridListCtrlEx", "drawCell", "editCell")
	b.field("CGridColumnTraits", "colState")
	b.class("CGridColumnTraitsImage", "CGridColumnTraits", "drawImage")
	// The three-way ambiguous group: equal sizes, inlined parent ctors.
	b.class("CGridColumnTraitsCombo", "CGridColumnTraits")
	b.override("CGridColumnTraitsCombo", "drawCell")
	b.field("CGridColumnTraitsCombo", "comboItems")
	b.class("CGridColumnTraitsDate", "CGridColumnTraits")
	b.override("CGridColumnTraitsDate", "editCell")
	b.field("CGridColumnTraitsDate", "dateFmt")
	b.class("CGridColumnTraitsText", "CGridColumnTraits")
	b.override("CGridColumnTraitsText", "drawCell", "editCell")
	b.field("CGridColumnTraitsText", "textFmt")

	b.class("CGridEditorBase", "CGridListCtrlEx", "openEditor", "closeEditor", "commitEditor")
	b.class("CGridEditorComboBox", "CGridEditorBase", "dropDown")
	b.class("CGridEditorDateTime", "CGridEditorBase", "pickDate")
	b.class("CGridEditorCheckBox", "CGridEditorBase", "toggle")

	b.class("CGridColumnConfig", "CGridListCtrlEx", "loadConfig", "saveConfig", "hasConfig")
	b.class("CGridColumnConfigProfiles", "CGridColumnConfig", "switchProfile")
	b.class("CGridColumnConfigDefault", "CGridColumnConfig", "resetConfig")

	b.class("CViewConfigSection", "CGridListCtrlEx", "readSection", "writeSection", "listSections")
	b.class("CViewConfigSectionWinApp", "CViewConfigSection", "appProfile")
	b.class("CViewConfigSectionLocal", "CViewConfigSection", "localProfile")

	b.class("CSortClass", "CGridListCtrlEx", "compareRows", "sortAscending", "sortDescending")
	b.class("CSortClassNumeric", "CSortClass", "compareNum")
	b.class("CSortClassDate", "CSortClass", "compareDate")
	b.class("CSortClassText", "CSortClass", "compareText")

	// Optimized-out parents: abstract CDialog and CEdit vanish from the
	// binary, leaving their children sharing un-overridden implementations
	// (doModal / onChar) — one orphan family per pair.
	b.class("CDialog", "", "doModal", "onInitDialog")
	b.pureMethods("CDialog", "dlgProc")
	b.class("CAboutDlg", "CDialog", "showVersion")
	b.override("CAboutDlg", "dlgProc")
	b.class("CGridListCtrlExDlg", "CDialog", "populateGrid", "onResize")
	b.override("CGridListCtrlExDlg", "dlgProc")

	b.class("CEdit", "", "onChar", "setSel")
	b.pureMethods("CEdit", "editProc")
	b.class("CGridEditorComboBoxEdit", "CEdit", "forwardKeys")
	b.override("CGridEditorComboBoxEdit", "editProc")
	b.class("CGridEditorText", "CEdit", "validateText", "spellCheck")
	b.override("CGridEditorText", "editProc")

	b.useAll(2)
	return b.p
}

func showtrafOptions() compiler.Options {
	o := cueOptions()
	o.RemoveAbstractClasses = true
	o.ForceInlineParentCtorOf = []string{"CPacketFilter", "CFilterHttp", "CFilterDns", "CFilterArp"}
	return o
}

func showtrafCounted() []string {
	return []string{
		"CTrafficEngine", "CCaptureDevice", "CCaptureFile", "CCaptureLive",
		"CPacketParser", "CParserEthernet", "CParserIp", "CParserTcp", "CParserUdp",
		"CStatCollector", "CStatPerHost", "CStatPerPort", "CStatTotals",
		"CChartRenderer", "CChartBar", "CChartLine",
		"CFilterHttp", "CFilterDns", "CFilterArp", "CPacketFilter",
		"CSessionTable",
		"CTrafficView", "CStatsView", "CToolbarWnd", "CStatusWnd",
	}
}

func showtrafProgram() *cpp.Program {
	b := newBuilder("ShowTraf")
	// Core tree with cues (20 types incl. the filter group).
	b.class("CTrafficEngine", "", "startCapture", "stopCapture")
	b.field("CTrafficEngine", "device")
	b.class("CCaptureDevice", "CTrafficEngine", "openDevice", "closeDevice")
	b.class("CCaptureFile", "CCaptureDevice", "readPcap")
	b.class("CCaptureLive", "CCaptureDevice", "bindNic")
	b.class("CPacketParser", "CTrafficEngine", "parsePacket", "resetParser")
	b.class("CParserEthernet", "CPacketParser", "parseEth")
	b.class("CParserIp", "CPacketParser", "parseIp")
	b.class("CParserTcp", "CParserIp", "parseTcp")
	b.class("CParserUdp", "CParserIp", "parseUdp")
	b.class("CStatCollector", "CTrafficEngine", "collect", "flushStats")
	b.class("CStatPerHost", "CStatCollector", "perHost")
	b.class("CStatPerPort", "CStatCollector", "perPort")
	b.class("CStatTotals", "CStatCollector", "totals")
	b.class("CChartRenderer", "CTrafficEngine", "render", "resizeChart")
	b.class("CChartBar", "CChartRenderer", "renderBars")
	b.class("CChartLine", "CChartRenderer", "renderLines")
	b.class("CSessionTable", "CTrafficEngine", "trackSession")

	// Ambiguous filter trio: equal sizes under CSessionTable, inlined
	// parent ctors.
	b.class("CFilterHttp", "CSessionTable")
	b.override("CFilterHttp", "trackSession")
	b.field("CFilterHttp", "httpState")
	b.class("CFilterDns", "CSessionTable")
	b.override("CFilterDns", "trackSession")
	b.field("CFilterDns", "dnsState")
	b.class("CFilterArp", "CSessionTable")
	b.override("CFilterArp", "trackSession")
	b.field("CFilterArp", "arpState")

	// Family split: CPacketFilter overrides every inherited virtual and its
	// parent ctor is inlined — the engine root loses it (missing 1).
	b.class("CPacketFilter", "CTrafficEngine", "applyFilter")
	b.override("CPacketFilter", "startCapture", "stopCapture")

	// Two optimized-out parents leave two orphan pairs.
	b.class("CView", "", "onDraw", "onUpdate")
	b.pureMethods("CView", "viewProc")
	b.class("CTrafficView", "CView", "drawTraffic")
	b.override("CTrafficView", "viewProc")
	b.class("CStatsView", "CView", "drawStats", "exportStats")
	b.override("CStatsView", "viewProc")

	b.class("CWnd", "", "onCreate", "onDestroy")
	b.pureMethods("CWnd", "wndProc")
	b.class("CToolbarWnd", "CWnd", "addButton")
	b.override("CToolbarWnd", "wndProc")
	b.class("CStatusWnd", "CWnd", "setStatusText", "setPaneCount")
	b.override("CStatusWnd", "wndProc")

	b.useAll(2)
	return b.p
}

func analyzerOptions() compiler.Options {
	o := optOptions()
	o.FoldIdenticalBodies = true
	return o
}

func analyzerProgram() *cpp.Program {
	b := newBuilder("Analyzer")
	// Root plus protocol clique (root + 6 protocols + 6 variants, all the
	// same vtable size): without SLMs everyone in the clique is everyone's
	// possible parent.
	b.class("ProtocolModule", "", "analyze", "report")
	b.field("ProtocolModule", "stream")
	b.getter("ProtocolModule", "streamHandle", "stream")
	protos := []string{"Http", "Dns", "Ftp", "Smtp", "Ssh", "Tls"}
	for _, p := range protos {
		name := "Module" + p
		b.class(name, "ProtocolModule")
		b.override(name, "analyze")
		b.field(name, "state"+p)
		b.use(name, 3)
	}
	// Six variants used identically (same shared helper, same slots): their
	// SLMs tie, leaving co-optimal hierarchies whose worst case the
	// evaluation reports (§4.2.2). The fifth is a child of ModuleHttp in
	// the ground truth; the ties also cost a missing type.
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("ModuleVariant%d", i)
		parent := "ProtocolModule"
		if i == 5 {
			parent = "ModuleHttp"
		}
		b.class(name, parent)
		b.override(name, "report")
		b.useVariant(name, 3, "ProtocolModule", "ModuleVariants")
	}
	b.use("ProtocolModule", 3)

	// A dissector chain under the root (growing sizes).
	b.class("FlowDissector", "ProtocolModule", "dissect")
	b.field("FlowDissector", "flowTable")
	b.class("DeepDissector", "FlowDissector", "inspectPayload")
	b.class("HeuristicDissector", "DeepDissector", "guessProto")
	b.class("StatefulDissector", "HeuristicDissector", "trackState")
	b.field("StatefulDissector", "stateBuf")
	b.use("FlowDissector", 3)
	b.use("DeepDissector", 3)
	b.use("HeuristicDissector", 3)
	b.use("StatefulDissector", 3)

	// Family split: the decoder subtree's root overrides everything
	// (missing 5 = root loses PacketDecoder + 4 children).
	b.class("PacketDecoder", "ProtocolModule", "decode")
	b.override("PacketDecoder", "analyze", "report", "streamHandle")
	for _, d := range []string{"DecoderLE", "DecoderBE", "DecoderV2", "DecoderRaw"} {
		b.class(d, "PacketDecoder")
		b.override(d, "decode")
		b.field(d, "buf"+d)
		b.use(d, 3)
	}
	b.use("PacketDecoder", 3)

	// Two unrelated utility singletons, ICF-merged into the family via
	// foldable getters; each behaves exactly like the bottom of the
	// dissector chain (useMirror), so each is spliced deep under it and
	// counts as an added type for every chain ancestor.
	for _, u := range []string{"SessionCache", "MetricsRegistry"} {
		b.class(u, "", "op1"+u, "op2"+u)
		b.field(u, "buf"+u)
		b.getter(u, "handle"+u, "buf"+u)
		b.addMethods(u, "op4"+u, "op5"+u, "op6"+u, "op7"+u) // pad to 8 slots
		b.field(u, "aux"+u, "aux2"+u)
		b.useMirror(u, 3, "ProtocolModule", "FlowDissector", "DeepDissector", "HeuristicDissector", "StatefulDissector")
	}
	return b.p
}

func smoothingOptions() compiler.Options {
	o := optOptions()
	o.FoldIdenticalBodies = true
	return o
}

func smoothingProgram() *cpp.Program {
	b := newBuilder("Smoothing")
	// Kernel clique: root + 11 kernels + 6 variants, all the same size.
	b.class("SmoothingKernel", "", "applyKernel", "weight")
	b.field("SmoothingKernel", "radius")
	b.getter("SmoothingKernel", "radiusHandle", "radius")
	kernels := []string{"Gauss", "Box", "Median", "Bilateral", "Laplace",
		"Sobel", "Sharpen", "Emboss", "Motion", "Radial", "Zoom"}
	for _, k := range kernels {
		name := "Kernel" + k
		b.class(name, "SmoothingKernel")
		b.override(name, "applyKernel")
		b.field(name, "coef"+k)
		b.use(name, 3)
	}
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("KernelVariant%d", i)
		parent := "SmoothingKernel"
		if i == 5 {
			parent = "KernelGauss"
		}
		b.class(name, parent)
		b.override(name, "weight")
		b.useVariant(name, 3, "SmoothingKernel", "KernelVariants")
	}
	b.use("SmoothingKernel", 3)

	// Resampler chain (growing sizes).
	b.class("Resampler", "SmoothingKernel", "resampleR")
	b.field("Resampler", "grid")
	b.class("BicubicResampler", "Resampler", "cubicWeights")
	b.class("LanczosResampler", "BicubicResampler", "sincWindow")
	b.class("AdaptiveResampler", "LanczosResampler", "chooseKernel")
	b.field("AdaptiveResampler", "budget")
	b.class("PyramidResampler", "AdaptiveResampler", "buildPyramid")
	b.field("PyramidResampler", "levels")
	b.use("Resampler", 3)
	b.use("BicubicResampler", 3)
	b.use("LanczosResampler", 3)
	b.use("AdaptiveResampler", 3)
	b.use("PyramidResampler", 3)

	// Split subtree: missing 6 (SampleGrid + 5 children).
	b.class("SampleGrid", "SmoothingKernel", "resample")
	b.override("SampleGrid", "applyKernel", "weight", "radiusHandle")
	for _, g := range []string{"GridUniform", "GridAdaptive", "GridSparse", "GridTiled", "GridMip"} {
		b.class(g, "SampleGrid")
		b.override(g, "resample")
		b.field(g, "dim"+g)
		b.use(g, 3)
	}
	b.use("SampleGrid", 3)

	// Two merged utility singletons spliced deep under the resampler chain.
	for _, u := range []string{"HistogramStore", "TileCache"} {
		b.class(u, "", "op1"+u, "op2"+u)
		b.field(u, "buf"+u)
		b.getter(u, "handle"+u, "buf"+u)
		b.addMethods(u, "op4"+u, "op5"+u, "op6"+u, "op7"+u, "op8"+u) // pad to 9 slots
		b.field(u, "aux"+u, "aux2"+u, "aux3"+u)
		b.useMirror(u, 3, "SmoothingKernel", "Resampler", "BicubicResampler", "LanczosResampler", "AdaptiveResampler", "PyramidResampler")
	}
	return b.p
}

func libctemplateOptions() compiler.Options {
	o := cueOptions()
	o.ForceInlineParentCtorOf = []string{
		"TemplateDictionary",
		"ModifierUpper", "ModifierLower", "ModifierTrim",
		"SectionIterNode",
	}
	return o
}

func libctemplateProgram() *cpp.Program {
	b := newBuilder("libctemplate")
	// Main template-node tree (24 types). Every class here except the
	// section group keeps its constructor cue, so its possible-parent set
	// is a singleton; the "distractor" classes carry enough methods that
	// they are never size-eligible candidates for the cue-less section
	// types.
	b.class("TemplateNode", "", "expandNode", "dumpNode")
	b.field("TemplateNode", "span")
	big := func(name, parent string, ms ...string) {
		b.class(name, parent, ms...)
	}
	big("TextNode", "TemplateNode", "appendText", "collapseWs", "measureText", "flushText")
	big("VariableNode", "TemplateNode", "substitute", "lookupVar", "cacheVar", "markDirty")
	big("EscapedVariableNode", "VariableNode", "escapeHtml")
	big("JsVariableNode", "VariableNode", "escapeJs")
	big("UrlVariableNode", "VariableNode", "escapeUrl")
	big("JsonVariableNode", "VariableNode", "escapeJson")
	big("CommentNode", "TemplateNode", "skipComment", "stripComment", "countLines", "foldComment")
	big("PragmaNode", "TemplateNode", "applyPragma", "parsePragma", "checkPragma", "listPragmas")
	big("IncludeNode", "TemplateNode", "resolveInclude", "openInclude", "checkDepth", "expandInclude")
	big("IncludeCachedNode", "IncludeNode", "cacheLookup")
	big("TemplateString", "TemplateNode", "internString", "hashString", "compareString", "releaseString")
	big("TemplateContext", "TemplateNode", "pushFrame", "popFrame", "frameDepth", "resetFrames")
	big("PerExpandData", "TemplateContext", "annotate")
	big("TemplateAnnotator", "TemplateContext", "emitAnnotation")
	big("TemplateNamelist", "TemplateNode", "registerName", "checkNames", "dumpNames", "clearNames")
	big("TemplateFromString", "TemplateNode", "parseInline", "scanInline", "reparseInline", "validateInline")
	big("TemplateCache", "TemplateNode", "fetchTpl", "storeTpl", "expireTpl", "reloadTpl")
	big("TemplateState", "TemplateNode", "freezeState", "thawState", "diffState", "mergeState")
	big("TemplateModifierData", "TemplateNode", "bindData", "freeData", "growData", "shrinkData")
	big("TemplateExpander", "TemplateNode", "expandAll", "expandOnce", "expandLazy", "expandStrict")

	// Section group: SectionIterNode is used like its sibling
	// SectionCondNode and lands under it, one level too deep; its three
	// children (with cues) follow. All added types stay inside
	// SectionNode's ground-truth successor set, so this costs added types
	// only.
	b.class("SectionNode", "TemplateNode", "expandSection", "hideSection")
	b.field("SectionNode", "sectionState")
	b.class("SectionCondNode", "SectionNode", "evalCond")
	b.field("SectionCondNode", "condExpr")
	b.class("SectionIterNode", "SectionNode", "iterate")
	b.field("SectionIterNode", "iterState")
	b.class("SectionIterRange", "SectionIterNode", "rangeBounds")
	b.class("SectionIterKeys", "SectionIterNode", "keyOrder")
	b.class("SectionIterValues", "SectionIterNode", "valueOrder")

	// Dictionary family: TemplateDictionary overrides every inherited
	// virtual and its parent ctor is inlined, splitting the family — the
	// root loses all 9 (missing 0.25). The modifier trio inside it is the
	// cue-less multi-candidate group.
	b.class("TemplateDictionary", "TemplateNode", "setValue", "showSection")
	b.override("TemplateDictionary", "expandNode", "dumpNode")
	for _, d := range []string{"DictGlobal", "DictLocal", "DictPeer", "DictFileCache"} {
		b.class(d, "TemplateDictionary", "slot"+d, "scan"+d)
		b.override(d, "setValue")
		b.use(d, 3)
	}
	b.class("ModifierBase", "TemplateDictionary", "applyModifier")
	b.field("ModifierBase", "modState")
	for _, m := range []string{"ModifierUpper", "ModifierLower", "ModifierTrim"} {
		b.class(m, "ModifierBase")
		b.override(m, "applyModifier")
		b.field(m, "arg"+m)
		b.use(m, 3)
	}
	b.use("TemplateDictionary", 3)
	b.use("ModifierBase", 3)

	b.useAllExcept(2, "SectionIterNode")
	// SectionIterNode's deliberate resemblance to SectionCondNode: it
	// mirrors SectionCondNode's full word shapes through its own slots.
	b.useMirror("SectionIterNode", 3, "TemplateNode", "SectionNode", "SectionCondNode")
	return b.p
}
