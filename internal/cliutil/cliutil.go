// Package cliutil holds the command-line plumbing the rock and rockbench
// CLIs share: the analysis flags every mode accepts (-workers, -cache,
// -invalidate), their validation, and the error-reporting conventions —
// diagnostics go to stderr, usage mistakes exit with code 2, runtime
// failures with code 1.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/evidence"
)

// Exit codes. Usage problems (bad flags, wrong arity) and runtime
// failures (analysis errors, I/O) are distinguishable to scripts.
const (
	ExitRuntime = 1
	ExitUsage   = 2
)

// Flags is the shared analysis flag set.
type Flags struct {
	// Workers bounds the analysis worker pool (0 = all CPUs, 1 = serial).
	Workers int
	// CacheDir enables the content-addressed snapshot cache under this
	// directory ("" = no caching). Created by Resolve if missing.
	CacheDir string
	// Invalidate is the snapshot reuse cap spelling: none, hierarchy,
	// models, or all.
	Invalidate string
	// IncrFrom names a prior version's snapshot to diff the analysis
	// against ("" = auto-discover in the cache directory).
	IncrFrom string
	// Evidence is the comma-separated evidence-provider list ("" = the
	// default SLM-only configuration), e.g. "slm,subtype".
	Evidence string
	// FuseWeights is the comma-separated per-provider fusion weight
	// override list, e.g. "slm=1,subtype=5" ("" = defaults).
	FuseWeights string
}

// Register installs the shared flags on fs and returns their destination.
// Both CLIs pass flag.CommandLine.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Workers, "workers", 0, "analysis worker pool size (0 = all CPUs, 1 = serial)")
	fs.StringVar(&f.CacheDir, "cache", "", "snapshot cache directory (created if missing); repeat analyses of the same binary reuse cached stages")
	fs.StringVar(&f.Invalidate, "invalidate", "none", "snapshot reuse cap: none, hierarchy, models, or all")
	fs.StringVar(&f.IncrFrom, "incr-from", "", "prior version's snapshot (.rsnap) to diff against for incremental re-analysis; with -cache, priors are auto-discovered")
	fs.StringVar(&f.Evidence, "evidence", "", "comma-separated edge-evidence providers to fuse: slm, subtype (default: slm alone)")
	fs.StringVar(&f.FuseWeights, "fuse-weights", "", "per-provider fusion weight overrides, e.g. slm=1,subtype=5")
	return f
}

// Resolve validates the parsed flags: the invalidation, evidence, and
// fusion-weight spellings must parse, and a requested cache directory is
// created. It returns the parsed invalidation level.
func (f *Flags) Resolve() (core.Invalidate, error) {
	inv, err := core.ParseInvalidate(f.Invalidate)
	if err != nil {
		return 0, err
	}
	if _, err := evidence.ParseNames(f.Evidence); err != nil {
		return 0, err
	}
	if _, err := evidence.ParseWeights(f.FuseWeights); err != nil {
		return 0, err
	}
	if f.CacheDir != "" {
		if err := os.MkdirAll(f.CacheDir, 0o755); err != nil {
			return 0, fmt.Errorf("creating cache directory: %w", err)
		}
	}
	return inv, nil
}

// Apply resolves the flags and threads them into a pipeline config.
func (f *Flags) Apply(cfg *core.Config) error {
	inv, err := f.Resolve()
	if err != nil {
		return err
	}
	cfg.Workers = f.Workers
	cfg.CacheDir = f.CacheDir
	cfg.Invalidate = inv
	cfg.IncrementalFrom = f.IncrFrom
	cfg.Evidence, _ = evidence.ParseNames(f.Evidence)
	cfg.FuseWeights, _ = evidence.ParseWeights(f.FuseWeights)
	return nil
}

// WithSignals derives a context canceled on SIGINT or SIGTERM, so every
// CLI and the daemon share one interruption convention: first signal
// cancels the context (analyses drain through their cancellation paths),
// a second signal kills the process via the default handler. The
// returned stop restores default signal behavior.
func WithSignals(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Fatal reports a runtime failure as "prog: err" on stderr and exits
// with ExitRuntime.
func Fatal(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(ExitRuntime)
}

// Usage reports a usage mistake on stderr and exits with ExitUsage.
func Usage(prog, msg string) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, msg)
	os.Exit(ExitUsage)
}
