package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestRegisterAndApply(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	dir := filepath.Join(t.TempDir(), "cache")
	if err := fs.Parse([]string{"-workers", "3", "-cache", dir, "-invalidate", "models"}); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	if err := f.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 3 || cfg.CacheDir != dir || cfg.Invalidate != core.InvalidateModels {
		t.Fatalf("applied config wrong: workers=%d cache=%q invalidate=%v", cfg.Workers, cfg.CacheDir, cfg.Invalidate)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		t.Fatalf("cache dir not created: %v", err)
	}
}

func TestResolveDefaultsAndErrors(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	inv, err := f.Resolve()
	if err != nil || inv != core.InvalidateNone {
		t.Fatalf("defaults: inv=%v err=%v", inv, err)
	}

	f.Invalidate = "bogus"
	if _, err := f.Resolve(); err == nil {
		t.Fatal("bogus invalidation level accepted")
	}
}
