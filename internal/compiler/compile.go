package compiler

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpp"
	"repro/internal/image"
	"repro/internal/ir"
)

// Scratch registers reserved for statement-local temporaries.
const (
	scrA ir.Reg = 63
	scrB ir.Reg = 62
	scrC ir.Reg = 61
	// maxLocal is the first register NOT available for locals.
	maxLocal ir.Reg = 60
)

// symInst is an instruction whose address-bearing operands are still
// symbolic.
type symInst struct {
	inst ir.Inst
	call string // callee function key for OpCall
	imp  string // import name for OpCall (exclusive with call)
	lea  string // "vt:Class", "vt2:Class:Base" or function key for OpLea
	br   int    // target instruction index for OpJmp/OpBr; -1 otherwise
}

// symFunc is a compiled function awaiting layout.
type symFunc struct {
	key   string
	name  string
	insts []symInst
}

// Compile lowers the program to a binary image with ground-truth metadata
// attached. Call Strip on the result to obtain the binary handed to the
// analyses.
func Compile(p *cpp.Program, opts Options) (*image.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	infos, err := layouts(p, opts)
	if err != nil {
		return nil, err
	}
	cg := &codegen{p: p, opts: opts, infos: infos, funcs: map[string]*symFunc{}}

	// Roots: free functions, vtable slot implementations, and constructors
	// that must exist as standalone functions.
	var roots []string
	for _, f := range p.Funcs {
		roots = append(roots, "free:"+f.Name)
	}
	for _, cname := range emittedClasses(p, infos) {
		ci := infos[cname]
		for _, s := range ci.slots {
			roots = append(roots, s.impl)
		}
		for _, b := range ci.secBases {
			for _, s := range ci.secSlots[b] {
				roots = append(roots, s.impl)
			}
		}
		if !ci.instantiated || !opts.InlineCtorAtNew {
			roots = append(roots, "ctor:"+cname)
		}
	}
	for _, r := range roots {
		if err := cg.need(r); err != nil {
			return nil, err
		}
	}
	if err := cg.drain(); err != nil {
		return nil, err
	}

	if opts.FoldIdenticalBodies || opts.ComdatFoldMethods {
		cg.fold()
	}
	return cg.link()
}

type codegen struct {
	p     *cpp.Program
	opts  Options
	infos map[string]*classInfo
	funcs map[string]*symFunc
	queue []string
	// folded maps a folded-away function key to the canonical key that
	// replaced it (identical-code folding).
	folded map[string]string
	// mono memoizes DevirtualizeMono target lookups per (class, method).
	mono map[string]string
}

// resolveKey follows the fold map to the canonical function key.
func (cg *codegen) resolveKey(k string) string {
	for {
		c, ok := cg.folded[k]
		if !ok {
			return k
		}
		k = c
	}
}

// need schedules function key for compilation.
func (cg *codegen) need(key string) error {
	if _, ok := cg.funcs[key]; ok {
		return nil
	}
	cg.funcs[key] = nil // reserve
	cg.queue = append(cg.queue, key)
	return nil
}

// drain compiles queued functions until none remain.
func (cg *codegen) drain() error {
	for len(cg.queue) > 0 {
		key := cg.queue[0]
		cg.queue = cg.queue[1:]
		f, err := cg.compileKey(key)
		if err != nil {
			return err
		}
		cg.funcs[key] = f
	}
	return nil
}

// compileKey compiles one function identified by its key.
func (cg *codegen) compileKey(key string) (*symFunc, error) {
	switch {
	case key == "stub:purecall":
		f := &symFunc{key: key, name: "_purecall"}
		f.insts = append(f.insts,
			symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.RegThis}, br: -1},
			symInst{inst: ir.Inst{Op: ir.OpCall}, imp: image.ImportAbort, br: -1},
		)
		f.insts = append(f.insts, symInst{inst: ir.Inst{Op: ir.OpJmp}, br: len(f.insts)})
		return f, nil
	case len(key) > 5 && key[:5] == "free:":
		name := key[5:]
		fn := cg.p.Func(name)
		if fn == nil {
			return nil, fmt.Errorf("compiler: missing free function %q", name)
		}
		e := cg.newEmitter(key, name)
		for i, prm := range fn.Params {
			if i >= ir.NumArgRegs {
				return nil, fmt.Errorf("compiler: %s: too many parameters", name)
			}
			r, err := e.local(prm.Name)
			if err != nil {
				return nil, err
			}
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: r, Rs: ir.ArgReg(i)}, br: -1})
			e.varClass[prm.Name] = prm.Class
		}
		if err := e.stmts(fn.Body); err != nil {
			return nil, fmt.Errorf("compiler: %s: %w", name, err)
		}
		e.finish()
		return e.f, nil
	case len(key) > 2 && key[:2] == "m:":
		rest := key[2:]
		sep := -1
		for i := 0; i+1 < len(rest); i++ {
			if rest[i] == ':' && rest[i+1] == ':' {
				sep = i
				break
			}
		}
		if sep < 0 {
			return nil, fmt.Errorf("compiler: malformed method key %q", key)
		}
		cls, mname := rest[:sep], rest[sep+2:]
		c := cg.p.Class(cls)
		if c == nil || c.Method(mname) == nil {
			return nil, fmt.Errorf("compiler: missing method %s::%s", cls, mname)
		}
		m := c.Method(mname)
		e := cg.newEmitter(key, cls+"::"+mname)
		r, err := e.local("this")
		if err != nil {
			return nil, err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: r, Rs: ir.RegThis}, br: -1})
		e.varClass["this"] = cls
		if err := e.stmts(m.Body); err != nil {
			return nil, fmt.Errorf("compiler: %s::%s: %w", cls, mname, err)
		}
		e.finish()
		return e.f, nil
	case len(key) > 5 && key[:5] == "ctor:":
		cls := key[5:]
		e := cg.newEmitter(key, cls+"::"+cls)
		r, err := e.local("this")
		if err != nil {
			return nil, err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: r, Rs: ir.RegThis}, br: -1})
		e.varClass["this"] = cls
		if err := e.ctorChain(cls, r, true); err != nil {
			return nil, err
		}
		e.finish()
		return e.f, nil
	case len(key) > 5 && key[:5] == "dtor:":
		cls := key[5:]
		e := cg.newEmitter(key, cls+"::~"+cls)
		r, err := e.local("this")
		if err != nil {
			return nil, err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: r, Rs: ir.RegThis}, br: -1})
		e.varClass["this"] = cls
		if err := e.dtorChain(cls, r, true); err != nil {
			return nil, err
		}
		e.finish()
		return e.f, nil
	}
	return nil, fmt.Errorf("compiler: unknown function key %q", key)
}

// fnEmitter holds per-function codegen state.
type fnEmitter struct {
	cg       *codegen
	f        *symFunc
	vars     map[string]ir.Reg
	varClass map[string]string
	next     ir.Reg
}

func (cg *codegen) newEmitter(key, name string) *fnEmitter {
	return &fnEmitter{
		cg:       cg,
		f:        &symFunc{key: key, name: name},
		vars:     map[string]ir.Reg{},
		varClass: map[string]string{},
		next:     ir.RegTmp0,
	}
}

func (e *fnEmitter) emit(si symInst) int {
	e.f.insts = append(e.f.insts, si)
	return len(e.f.insts) - 1
}

// local returns (allocating if needed) the register of a local variable.
func (e *fnEmitter) local(name string) (ir.Reg, error) {
	if r, ok := e.vars[name]; ok {
		return r, nil
	}
	if e.next >= maxLocal {
		return 0, fmt.Errorf("out of registers (too many locals)")
	}
	r := e.next
	e.next++
	e.vars[name] = r
	return r, nil
}

// objReg resolves variable name to its register, requiring it to be an
// object.
func (e *fnEmitter) objReg(name string) (ir.Reg, string, error) {
	r, ok := e.vars[name]
	if !ok {
		return 0, "", fmt.Errorf("undeclared variable %q", name)
	}
	cls := e.varClass[name]
	if cls == "" {
		return 0, "", fmt.Errorf("variable %q is not an object", name)
	}
	return r, cls, nil
}

// finish appends the function epilogue.
func (e *fnEmitter) finish() {
	e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.RegRet}, br: -1})
	e.emit(symInst{inst: ir.Inst{Op: ir.OpRet}, br: -1})
}

// args moves call arguments into the argument registers.
func (e *fnEmitter) args(as []cpp.Arg) error {
	if len(as) > ir.NumArgRegs {
		return fmt.Errorf("too many arguments (%d)", len(as))
	}
	for i, a := range as {
		if a.Obj == "" {
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.ArgReg(i), Imm: 7}, br: -1})
			continue
		}
		r, _, err := e.objReg(a.Obj)
		if err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.ArgReg(i), Rs: r}, br: -1})
	}
	return nil
}

// stmts lowers a statement list.
func (e *fnEmitter) stmts(body []cpp.Stmt) error {
	for _, s := range body {
		if err := e.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (e *fnEmitter) stmt(s cpp.Stmt) error {
	cg := e.cg
	switch st := s.(type) {
	case cpp.New:
		dst, err := e.local(st.Dst)
		if err != nil {
			return err
		}
		e.varClass[st.Dst] = st.Class
		// Clear stale receiver, allocate, bind.
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.RegThis}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, imp: image.ImportAlloc, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: dst, Rs: ir.RegRet}, br: -1})
		if cg.opts.InlineCtorAtNew {
			return e.ctorChain(st.Class, dst, true)
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: dst}, br: -1})
		key := "ctor:" + st.Class
		if err := cg.need(key); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
		return nil

	case cpp.VCall:
		r, cls, err := e.objReg(st.Obj)
		if err != nil {
			return err
		}
		if cg.opts.DevirtualizeMono {
			if impl := cg.monoImpl(cls, st.Method); impl != "" {
				// Monomorphic site: direct call, no vtable loads.
				if err := e.args(st.Args); err != nil {
					return err
				}
				e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: r}, br: -1})
				if err := cg.need(impl); err != nil {
					return err
				}
				e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: impl, br: -1})
				return nil
			}
		}
		vptrOff, slotIdx, err := methodSlot(cg.infos, cls, st.Method)
		if err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpLoad, Rd: scrA, Rs: r, Off: int32(vptrOff)}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpLoad, Rd: scrB, Rs: scrA, Off: int32(8 * slotIdx)}, br: -1})
		if err := e.args(st.Args); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: r}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpCallInd, Rs: scrB}, br: -1})
		return nil

	case cpp.NVCall:
		r, cls, err := e.objReg(st.Obj)
		if err != nil {
			return err
		}
		target := cls
		if st.Class != "" {
			target = st.Class
		}
		def := e.definerOf(target, st.Method)
		if def == "" {
			return fmt.Errorf("class %q has no method %q", target, st.Method)
		}
		if err := e.args(st.Args); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: r}, br: -1})
		key := "m:" + def + "::" + st.Method
		if err := cg.need(key); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
		return nil

	case cpp.CallFunc:
		if err := e.args(st.Args); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.RegThis}, br: -1})
		key := "free:" + st.Name
		if err := cg.need(key); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
		return nil

	case cpp.ReadField:
		r, cls, err := e.objReg(st.Obj)
		if err != nil {
			return err
		}
		off, ok := cg.infos[cls].fieldOff[st.Field]
		if !ok {
			return fmt.Errorf("class %q has no field %q", cls, st.Field)
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpLoad, Rd: scrA, Rs: r, Off: int32(off)}, br: -1})
		return nil

	case cpp.WriteField:
		r, cls, err := e.objReg(st.Obj)
		if err != nil {
			return err
		}
		off, ok := cg.infos[cls].fieldOff[st.Field]
		if !ok {
			return fmt.Errorf("class %q has no field %q", cls, st.Field)
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: scrA, Imm: 7}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: r, Off: int32(off), Rs: scrA}, br: -1})
		return nil

	case cpp.Assign:
		src, cls, err := e.objReg(st.Src)
		if err != nil {
			return err
		}
		dst, err := e.local(st.Dst)
		if err != nil {
			return err
		}
		e.varClass[st.Dst] = cls
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: dst, Rs: src}, br: -1})
		return nil

	case cpp.Return:
		if st.Obj != "" {
			r, _, err := e.objReg(st.Obj)
			if err != nil {
				return err
			}
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegRet, Rs: r}, br: -1})
		} else {
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: ir.RegRet}, br: -1})
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpRet}, br: -1})
		return nil

	case cpp.If:
		// Opaque condition; branch taken -> then, fallthrough -> else.
		e.emit(symInst{inst: ir.Inst{Op: ir.OpArith, Rd: scrC, Rs: scrC, Imm: 1}, br: -1})
		brIdx := e.emit(symInst{inst: ir.Inst{Op: ir.OpBr, Rs: scrC}, br: -1})
		if err := e.stmts(st.Else); err != nil {
			return err
		}
		jmpIdx := e.emit(symInst{inst: ir.Inst{Op: ir.OpJmp}, br: -1})
		e.f.insts[brIdx].br = len(e.f.insts)
		if err := e.stmts(st.Then); err != nil {
			return err
		}
		e.f.insts[jmpIdx].br = len(e.f.insts)
		return nil

	case cpp.Opaque:
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: scrA, Imm: st.Seed}, br: -1})
		return nil

	case cpp.Loop:
		head := len(e.f.insts)
		if err := e.stmts(st.Body); err != nil {
			return err
		}
		e.emit(symInst{inst: ir.Inst{Op: ir.OpArith, Rd: scrC, Rs: scrC, Imm: 2}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpBr, Rs: scrC}, br: head})
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

// definerOf returns the nearest class along the chain of cls that declares
// method name, or "".
func (e *fnEmitter) definerOf(cls, name string) string {
	p := e.cg.p
	for c := p.Class(cls); c != nil; {
		if c.Method(name) != nil {
			return c.Name
		}
		for _, b := range c.Bases[min(1, len(c.Bases)):] {
			if d := e.definerOf(b, name); d != "" {
				return d
			}
		}
		c = p.Class(c.PrimaryBase())
	}
	return ""
}

// ctorChain emits the constructor body of cls, operating on the object in
// thisReg. storeVt reports whether this level's vtable-pointer store
// survives: in a fully inlined chain with dead-store elision only the
// most-derived store remains.
func (e *fnEmitter) ctorChain(cls string, thisReg ir.Reg, storeVt bool) error {
	return e.ctorChainForced(cls, thisReg, storeVt, false)
}

// ctorChainForced carries the forced-inline state down the ancestor chain:
// when a class's parent ctor is inlined by a per-class decision, the whole
// chain above it is inlined too, exactly as a real inliner would (exposing
// a grandparent call would be a partial inline).
func (e *fnEmitter) ctorChainForced(cls string, thisReg ir.Reg, storeVt, forced bool) error {
	cg := e.cg
	ci := cg.infos[cls]
	if ci == nil {
		return fmt.Errorf("unknown class %q", cls)
	}
	forceHere := forced || cg.opts.forcesInline(cls)
	if pb := ci.cls.PrimaryBase(); pb != "" {
		switch {
		case cg.opts.InlineParentCtors || forceHere:
			parentStore := storeVt && !cg.opts.ElideDeadVtableStores && !forceHere
			if err := e.ctorChainForced(pb, thisReg, parentStore, forceHere); err != nil {
				return err
			}
		case cg.opts.PartialInlineParentCtors:
			// Partial inline: splice the parent's own initialization here
			// but leave its parent as an out-of-line call — the surviving
			// ctor-call cue names the grandparent.
			pi := cg.infos[pb]
			if pi == nil {
				return fmt.Errorf("unknown class %q", pb)
			}
			if gp := pi.cls.PrimaryBase(); gp != "" {
				e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: thisReg}, br: -1})
				key := "ctor:" + gp
				if err := cg.need(key); err != nil {
					return err
				}
				e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
			}
			parentStore := storeVt && !cg.opts.ElideDeadVtableStores
			e.ctorOwnInit(pi, pb, thisReg, parentStore)
		default:
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: thisReg}, br: -1})
			key := "ctor:" + pb
			if err := cg.need(key); err != nil {
				return err
			}
			e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
		}
	}
	e.ctorOwnInit(ci, cls, thisReg, storeVt)
	return nil
}

// ctorOwnInit emits the class's own constructor level: its vtable store,
// its secondary subobject initialization, and its field stores.
func (e *fnEmitter) ctorOwnInit(ci *classInfo, cls string, thisReg ir.Reg, storeVt bool) {
	cg := e.cg
	if ci.emitted && storeVt {
		e.emit(symInst{inst: ir.Inst{Op: ir.OpLea, Rd: scrA}, lea: "vt:" + cls, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: 0, Rs: scrA}, br: -1})
	}
	// Secondary subobjects: initialize the base's fields, then install the
	// secondary vtable.
	for _, b := range ci.secBases {
		bi := cg.infos[b]
		fields := sortedFieldOffsets(bi.fieldOff)
		for _, fo := range fields {
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: scrA}, br: -1})
			e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: int32(ci.secOff[b] + fo), Rs: scrA}, br: -1})
		}
		if ci.emitted && storeVt {
			e.emit(symInst{inst: ir.Inst{Op: ir.OpLea, Rd: scrA}, lea: "vt2:" + cls + ":" + b, br: -1})
			e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: int32(ci.secOff[b]), Rs: scrA}, br: -1})
		}
	}
	for _, f := range ci.cls.Fields {
		off := ci.fieldOff[f.Name]
		e.emit(symInst{inst: ir.Inst{Op: ir.OpMovImm, Rd: scrA}, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: int32(off), Rs: scrA}, br: -1})
	}
}

// dtorChain mirrors ctorChain for destructors: the class reinstalls its own
// vtable, then destroys the parent part.
func (e *fnEmitter) dtorChain(cls string, thisReg ir.Reg, storeVt bool) error {
	return e.dtorChainForced(cls, thisReg, storeVt, false)
}

func (e *fnEmitter) dtorChainForced(cls string, thisReg ir.Reg, storeVt, forced bool) error {
	cg := e.cg
	ci := cg.infos[cls]
	if ci == nil {
		return fmt.Errorf("unknown class %q", cls)
	}
	forceHere := forced || cg.opts.forcesInline(cls)
	if ci.emitted && storeVt {
		e.emit(symInst{inst: ir.Inst{Op: ir.OpLea, Rd: scrA}, lea: "vt:" + cls, br: -1})
		e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: 0, Rs: scrA}, br: -1})
	}
	if pb := ci.cls.PrimaryBase(); pb != "" {
		switch {
		case cg.opts.InlineParentCtors || forceHere:
			parentStore := storeVt && !cg.opts.ElideDeadVtableStores && !forceHere
			if err := e.dtorChainForced(pb, thisReg, parentStore, forceHere); err != nil {
				return err
			}
		case cg.opts.PartialInlineParentCtors:
			// Partial inline, mirroring ctorChainForced: the parent's own
			// destructor level is spliced here and the grandparent stays an
			// out-of-line call.
			pi := cg.infos[pb]
			if pi == nil {
				return fmt.Errorf("unknown class %q", pb)
			}
			parentStore := storeVt && !cg.opts.ElideDeadVtableStores
			if pi.emitted && parentStore {
				e.emit(symInst{inst: ir.Inst{Op: ir.OpLea, Rd: scrA}, lea: "vt:" + pb, br: -1})
				e.emit(symInst{inst: ir.Inst{Op: ir.OpStore, Rd: thisReg, Off: 0, Rs: scrA}, br: -1})
			}
			if gp := pi.cls.PrimaryBase(); gp != "" {
				e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: thisReg}, br: -1})
				key := "dtor:" + gp
				if err := cg.need(key); err != nil {
					return err
				}
				e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
			}
		default:
			e.emit(symInst{inst: ir.Inst{Op: ir.OpMovReg, Rd: ir.RegThis, Rs: thisReg}, br: -1})
			key := "dtor:" + pb
			if err := cg.need(key); err != nil {
				return err
			}
			e.emit(symInst{inst: ir.Inst{Op: ir.OpCall}, call: key, br: -1})
		}
	}
	return nil
}

func sortedFieldOffsets(m map[string]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// fold performs identical-code folding: functions with structurally
// identical bodies are merged and references rewritten, iterating to a
// fixpoint (folding two leaves can make their callers identical).
func (cg *codegen) fold() {
	// With only ComdatFoldMethods set, restrict folding to linkonce method
	// bodies (vtable slot implementations and destructors) — the COMDAT
	// sections a linker deduplicates across translation units. Free
	// functions and constructors keep their identity.
	methodsOnly := !cg.opts.FoldIdenticalBodies && cg.opts.ComdatFoldMethods
	foldable := func(k string) bool {
		if !methodsOnly {
			return true
		}
		return strings.HasPrefix(k, "m:") || strings.HasPrefix(k, "dtor:")
	}
	canon := map[string]string{} // key -> canonical key
	resolve := func(k string) string {
		for {
			c, ok := canon[k]
			if !ok {
				return k
			}
			k = c
		}
	}
	for iter := 0; iter < 10; iter++ {
		sig := map[string]string{} // body signature -> canonical key
		changed := false
		keys := make([]string, 0, len(cg.funcs))
		for k := range cg.funcs {
			if foldable(k) && resolve(k) == k {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			f := cg.funcs[k]
			s := bodySignature(f, resolve)
			if prev, ok := sig[s]; ok && prev != k {
				canon[k] = prev
				changed = true
				continue
			}
			sig[s] = k
		}
		if !changed {
			break
		}
	}
	if len(canon) == 0 {
		return
	}
	// Rewrite references and drop folded bodies.
	for k, f := range cg.funcs {
		if resolve(k) != k {
			delete(cg.funcs, k)
			continue
		}
		for i := range f.insts {
			if f.insts[i].call != "" {
				f.insts[i].call = resolve(f.insts[i].call)
			}
			if l := f.insts[i].lea; l != "" && (len(l) < 3 || (l[:3] != "vt:" && l[:4] != "vt2:")) {
				f.insts[i].lea = resolve(l)
			}
		}
	}
	cg.folded = canon
}

// monoImpl reports the unique implementation a virtual call through static
// class cls to method can reach, or "" when the site is polymorphic (or the
// sole target is the pure-virtual stub). Class-hierarchy analysis over the
// program's instantiated classes, memoized per (class, method).
func (cg *codegen) monoImpl(cls, method string) string {
	if cg.mono == nil {
		cg.mono = map[string]string{}
	}
	memo := cls + "\x00" + method
	if impl, ok := cg.mono[memo]; ok {
		return impl
	}
	impl := cg.computeMono(cls, method)
	cg.mono[memo] = impl
	return impl
}

func (cg *codegen) computeMono(cls, method string) string {
	vptrOff, slotIdx, err := methodSlot(cg.infos, cls, method)
	if err != nil || vptrOff != 0 {
		// Secondary dispatch keeps the this-adjusted indirect call.
		return ""
	}
	impls := map[string]bool{}
	for c, ci := range cg.infos {
		if !ci.instantiated {
			continue
		}
		// Primary subobject: cls on c's primary chain means a *c may flow
		// into the call site and dispatch through c's primary table.
		for _, a := range cg.p.PrimaryChain(c) {
			if a == cls {
				if slotIdx < len(ci.slots) {
					impls[ci.slots[slotIdx].impl] = true
				}
				break
			}
		}
		// Secondary subobjects: cls on a secondary base's primary chain
		// means the adjusted pointer dispatches through that table.
		for b, ss := range ci.secSlots {
			for _, a := range cg.p.PrimaryChain(b) {
				if a == cls {
					if slotIdx < len(ss) {
						impls[ss[slotIdx].impl] = true
					}
					break
				}
			}
		}
	}
	if len(impls) != 1 {
		return ""
	}
	var impl string
	for k := range impls {
		impl = k
	}
	if impl == "stub:purecall" {
		return ""
	}
	return impl
}

// bodySignature renders a function body as a comparable string, resolving
// callee keys through the current fold map.
func bodySignature(f *symFunc, resolve func(string) string) string {
	s := ""
	for _, si := range f.insts {
		call := si.call
		if call != "" {
			call = resolve(call)
		}
		s += fmt.Sprintf("%d/%d/%d/%d/%d|%s|%s|%s|%d;",
			si.inst.Op, si.inst.Rd, si.inst.Rs, si.inst.Off, si.inst.Imm,
			call, si.imp, si.lea, si.br)
	}
	return s
}
