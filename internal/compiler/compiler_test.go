package compiler

import (
	"testing"

	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/vtable"
)

func twoClassProgram() *cpp.Program {
	return &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "m", Virtual: true},
			}},
			{Name: "B", Bases: []string{"A"}, Methods: []*cpp.Method{
				{Name: "n", Virtual: true},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "useA", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}, cpp.VCall{Obj: "o", Method: "m"}}},
			{Name: "useB", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}, cpp.VCall{Obj: "o", Method: "n"}}},
		},
	}
}

func TestCompileEmitsVTablesWithSharedSlots(t *testing.T) {
	img, err := Compile(twoClassProgram(), DebugFriendlyOptions())
	if err != nil {
		t.Fatal(err)
	}
	fns, err := disasm.All(img)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(img, fns)
	if len(vts) != 2 {
		t.Fatalf("discovered %d vtables, want 2", len(vts))
	}
	// Layout: [dtor, m] for A; [dtor, m, n] for B sharing A's m.
	byAddr := vtable.ByAddr(vts)
	a := byAddr[img.Meta.TypeByName("A").VTable]
	b := byAddr[img.Meta.TypeByName("B").VTable]
	if a.NumSlots() != 2 || b.NumSlots() != 3 {
		t.Fatalf("slot counts %d/%d, want 2/3", a.NumSlots(), b.NumSlots())
	}
	if a.Slots[1] != b.Slots[1] {
		t.Error("un-overridden method should share one implementation")
	}
	if a.Slots[0] == b.Slots[0] {
		t.Error("destructors must be per-class")
	}
}

func TestInducedHierarchySkipsRemovedAbstract(t *testing.T) {
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "Root", Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
			{Name: "Mid", Bases: []string{"Root"}, Methods: []*cpp.Method{{Name: "pm", Virtual: true, Pure: true}}},
			{Name: "Leaf", Bases: []string{"Mid"}, Methods: []*cpp.Method{{Name: "pm", Virtual: true}}},
		},
		Funcs: []*cpp.Func{
			{Name: "u1", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "Root"}}},
			{Name: "u2", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "Leaf"}}},
		},
	}
	opts := DefaultOptions() // removes abstract Mid
	img, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if img.Meta.TypeByName("Mid") != nil {
		t.Fatal("abstract class still emitted")
	}
	leaf := img.Meta.TypeByName("Leaf")
	root := img.Meta.TypeByName("Root")
	if leaf == nil || root == nil {
		t.Fatal("missing emitted types")
	}
	if leaf.Parent != root.VTable {
		t.Errorf("induced parent of Leaf should skip removed Mid")
	}
}

func TestCtorInliningRemovesCalls(t *testing.T) {
	countCalls := func(opts Options) int {
		img, err := Compile(twoClassProgram(), opts)
		if err != nil {
			t.Fatal(err)
		}
		fns, _ := disasm.All(img)
		n := 0
		for _, f := range fns {
			if img.Meta.FuncNames[f.Entry] != "useB" {
				continue
			}
			for _, in := range f.Insts {
				if in.Op == ir.OpCall && !img.IsImport(in.Imm) {
					n++
				}
			}
		}
		return n
	}
	// Debug-friendly: useB's inlined B-ctor calls ctor:A.
	if n := countCalls(DebugFriendlyOptions()); n == 0 {
		t.Error("expected a parent-ctor call in the cue-preserving build")
	}
	// Fully optimized: no ctor calls remain.
	if n := countCalls(DefaultOptions()); n != 0 {
		t.Errorf("optimized build still has %d direct calls in useB", n)
	}
}

func TestFoldIdenticalBodies(t *testing.T) {
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "ga", Virtual: true, Body: []cpp.Stmt{cpp.ReadField{Obj: "this", Field: "x"}}},
			}},
			{Name: "B", Fields: []cpp.Field{{Name: "y"}}, Methods: []*cpp.Method{
				{Name: "gb", Virtual: true, Body: []cpp.Stmt{cpp.ReadField{Obj: "this", Field: "y"}}},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "u1", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}, cpp.VCall{Obj: "o", Method: "ga"}}},
			{Name: "u2", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}, cpp.VCall{Obj: "o", Method: "gb"}}},
		},
	}
	build := func(fold bool) (*image.Image, []*vtable.VTable) {
		opts := DefaultOptions()
		opts.FoldIdenticalBodies = fold
		img, err := Compile(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		fns, _ := disasm.All(img)
		return img, vtable.Discover(img, fns)
	}
	_, vts := build(false)
	if len(vts) != 2 || vts[0].Slots[1] == vts[1].Slots[1] {
		t.Fatal("without folding the getters must be distinct")
	}
	_, vts = build(true)
	if vts[0].Slots[1] != vts[1].Slots[1] {
		t.Error("identical getters did not fold")
	}
}

func TestPurecallStubEmitted(t *testing.T) {
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "I", Methods: []*cpp.Method{{Name: "m", Virtual: true, Pure: true}}},
			{Name: "C", Bases: []string{"I"}, Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
		},
		Funcs: []*cpp.Func{{Name: "u", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "C"}}}},
	}
	opts := DebugFriendlyOptions() // keep the abstract class
	img, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	fns, _ := disasm.All(img)
	vts := vtable.Discover(img, fns)
	if len(vts) != 2 {
		t.Fatalf("want both vtables, got %d", len(vts))
	}
	// I's pure slot points at a self-looping abort stub.
	i := vtable.ByAddr(vts)[img.Meta.TypeByName("I").VTable]
	stub := i.Slots[1]
	for _, f := range fns {
		if f.Entry != stub {
			continue
		}
		self := false
		for idx, in := range f.Insts {
			if in.Op == ir.OpJmp && in.Imm == f.AddrOf(idx) {
				self = true
			}
		}
		if !self {
			t.Error("purecall stub lacks the self-loop signature")
		}
		return
	}
	t.Error("purecall stub not found among functions")
}
