package compiler

import (
	"testing"

	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/vtable"
)

// countIndirect counts OpCallInd instructions in the named function.
func countIndirect(t *testing.T, img *image.Image, fn string) int {
	t.Helper()
	fns, err := disasm.All(img)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range fns {
		if img.Meta.FuncNames[f.Entry] != fn {
			continue
		}
		for _, in := range f.Insts {
			if in.Op == ir.OpCallInd {
				n++
			}
		}
	}
	return n
}

// TestDevirtualizeMonomorphicSites: a virtual call whose class-hierarchy
// analysis finds exactly one reachable implementation becomes a direct
// call; a site with two instantiated overriders keeps its indirect
// dispatch. Ground-truth metadata is identical either way.
func TestDevirtualizeMonomorphicSites(t *testing.T) {
	prog := func() *cpp.Program {
		return &cpp.Program{
			Name: "t",
			Classes: []*cpp.Class{
				{Name: "A", Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
				{Name: "B", Bases: []string{"A"}, Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
			},
			Funcs: []*cpp.Func{
				// Static class A: both A and B instances flow through A's
				// table, two overriders, polymorphic.
				{Name: "useA", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}, cpp.VCall{Obj: "o", Method: "m"}}},
				// Static class B: only B reaches the site, monomorphic.
				{Name: "useB", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}, cpp.VCall{Obj: "o", Method: "m"}}},
			},
		}
	}
	opts := DefaultOptions()
	plain, err := Compile(prog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DevirtualizeMono = true
	devirt, err := Compile(prog(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := countIndirect(t, plain, "useB"); n != 1 {
		t.Fatalf("baseline useB has %d indirect calls, want 1", n)
	}
	if n := countIndirect(t, devirt, "useB"); n != 0 {
		t.Errorf("monomorphic site not devirtualized: useB has %d indirect calls", n)
	}
	if n := countIndirect(t, devirt, "useA"); n != 1 {
		t.Errorf("polymorphic site wrongly devirtualized: useA has %d indirect calls, want 1", n)
	}
	// Ground truth is a compile-option invariant.
	for _, name := range []string{"A", "B"} {
		p, d := plain.Meta.TypeByName(name), devirt.Meta.TypeByName(name)
		if p == nil || d == nil {
			t.Fatalf("type %s missing", name)
		}
		if (p.Parent == 0) != (d.Parent == 0) {
			t.Errorf("type %s: parent presence differs across devirtualization", name)
		}
	}
}

// TestComdatFoldMethodsOnly: with only ComdatFoldMethods set, identical
// *method* bodies (the linkonce COMDAT sections) fold, but identical free
// functions keep their identity; FoldIdenticalBodies folds both.
func TestComdatFoldMethodsOnly(t *testing.T) {
	prog := func() *cpp.Program {
		return &cpp.Program{
			Name: "t",
			Classes: []*cpp.Class{
				{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
					{Name: "ga", Virtual: true, Body: []cpp.Stmt{cpp.ReadField{Obj: "this", Field: "x"}}},
				}},
				{Name: "B", Fields: []cpp.Field{{Name: "y"}}, Methods: []*cpp.Method{
					{Name: "gb", Virtual: true, Body: []cpp.Stmt{cpp.ReadField{Obj: "this", Field: "y"}}},
				}},
			},
			Funcs: []*cpp.Func{
				{Name: "g", Body: nil},
				// f1 and f2 compile to identical bodies.
				{Name: "f1", Body: []cpp.Stmt{cpp.CallFunc{Name: "g"}}},
				{Name: "f2", Body: []cpp.Stmt{cpp.CallFunc{Name: "g"}}},
				{Name: "u1", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}, cpp.VCall{Obj: "o", Method: "ga"}}},
				{Name: "u2", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}, cpp.VCall{Obj: "o", Method: "gb"}}},
			},
		}
	}
	build := func(mutate func(*Options)) *image.Image {
		opts := DefaultOptions()
		mutate(&opts)
		img, err := Compile(prog(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	hasFunc := func(img *image.Image, name string) bool {
		for _, n := range img.Meta.FuncNames {
			if n == name {
				return true
			}
		}
		return false
	}
	getterSlotsShared := func(img *image.Image) bool {
		fns, err := disasm.All(img)
		if err != nil {
			t.Fatal(err)
		}
		byAddr := vtable.ByAddr(vtable.Discover(img, fns))
		a := byAddr[img.Meta.TypeByName("A").VTable]
		b := byAddr[img.Meta.TypeByName("B").VTable]
		return a.Slots[1] == b.Slots[1]
	}

	base := build(func(o *Options) {})
	if getterSlotsShared(base) {
		t.Fatal("baseline: identical getters must stay distinct")
	}
	comdat := build(func(o *Options) { o.ComdatFoldMethods = true })
	if !getterSlotsShared(comdat) {
		t.Error("ComdatFoldMethods: identical method bodies did not fold")
	}
	if !hasFunc(comdat, "f1") || !hasFunc(comdat, "f2") {
		t.Error("ComdatFoldMethods must not fold free functions")
	}
	full := build(func(o *Options) { o.FoldIdenticalBodies = true })
	if hasFunc(full, "f1") && hasFunc(full, "f2") {
		t.Error("FoldIdenticalBodies: identical free functions did not fold")
	}
}

// TestPartialCtorInlining: with PartialInlineParentCtors the parent's own
// initialization is spliced into the child's constructor and the
// out-of-line call that survives targets the *grandparent* — the
// structural rule-3 cue now names the wrong class while the induced
// ground truth is unchanged.
func TestPartialCtorInlining(t *testing.T) {
	prog := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "a"}}, Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
			{Name: "B", Bases: []string{"A"}, Fields: []cpp.Field{{Name: "b"}}},
			{Name: "C", Bases: []string{"B"}, Fields: []cpp.Field{{Name: "c"}}},
		},
		Funcs: []*cpp.Func{
			{Name: "useA", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}}},
			{Name: "useB", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}}},
			{Name: "useC", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "C"}}},
		},
	}
	opts := Options{
		InlineCtorAtNew:          true,
		EmitDtors:                true,
		PartialInlineParentCtors: true,
	}
	img, err := Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, n := range img.Meta.FuncNames {
		names[n] = true
	}
	if !names["A::A"] {
		t.Error("grandparent ctor A::A must survive as the out-of-line call target")
	}
	if names["B::B"] {
		t.Error("parent ctor B::B should be fully absorbed by partial inlining")
	}
	// The induced hierarchy is untouched: C's parent is still B.
	c, b, a := img.Meta.TypeByName("C"), img.Meta.TypeByName("B"), img.Meta.TypeByName("A")
	if c == nil || b == nil || a == nil {
		t.Fatal("missing emitted types")
	}
	if c.Parent != b.VTable {
		t.Errorf("induced parent of C changed: got %#x, want B %#x", c.Parent, b.VTable)
	}
	if b.Parent != a.VTable {
		t.Errorf("induced parent of B changed: got %#x, want A %#x", b.Parent, a.VTable)
	}
}
