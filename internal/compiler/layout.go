// Package compiler lowers a cpp.Program to a stripped binary image
// (internal/image). It models the MSVC behaviours the paper identifies as
// the source of the reconstruction problem's difficulty:
//
//   - vtable layout with slot inheritance and override-in-place (§5.1);
//   - an implicit virtual destructor in slot 0 of every polymorphic class;
//   - constructors that install the vtable pointer, with optional inlining
//     of parent constructors and elision of the then-dead parent vtable
//     stores (removing the structural cues of §5.2);
//   - elimination of abstract (pure-virtual) classes, which splits source
//     inheritance trees into several binary trees (§4.1);
//   - identical-code folding (/OPT:ICF), which makes unrelated vtables share
//     function pointers (error source 1 of §6.4);
//   - stripping: names and hierarchy survive only in the metadata
//     side-channel used for ground truth, never in the image bytes.
package compiler

import (
	"fmt"
	"sort"

	"repro/internal/cpp"
)

// Options control the optimization behaviours relevant to the paper.
type Options struct {
	// InlineCtorAtNew splices constructor bodies at allocation sites, so the
	// vtable-install appears in the using function (how objects become
	// typeable intra-procedurally). MSVC does this for trivial ctors at /O2.
	InlineCtorAtNew bool
	// InlineParentCtors splices parent constructor/destructor bodies into
	// child ctors/dtors instead of emitting a call (removes the §5.2 rule-3
	// structural cue).
	InlineParentCtors bool
	// ElideDeadVtableStores removes parent vtable-pointer stores that are
	// overwritten by the most-derived store in a fully inlined ctor chain
	// (removes the "observed instance" double-install cue).
	ElideDeadVtableStores bool
	// RemoveAbstractClasses drops vtables/ctors of pure-virtual classes
	// (they cannot be instantiated), splitting hierarchies (§4.1, Fig. 9).
	RemoveAbstractClasses bool
	// RemoveUninstantiated additionally drops classes that are concrete but
	// never instantiated anywhere in the program.
	RemoveUninstantiated bool
	// FoldIdenticalBodies enables identical-code folding: functions with
	// byte-identical bodies are merged, so vtables of unrelated classes can
	// point to the same implementation (error source 1 of §6.4).
	FoldIdenticalBodies bool
	// EmitDtors synthesizes a virtual destructor in slot 0 of every
	// polymorphic class, as MSVC-compiled MFC-style code has.
	EmitDtors bool
	// ForceInlineParentCtorOf lists classes whose parent constructor/
	// destructor is inlined (and its vtable store elided) even when the
	// global InlineParentCtors/ElideDeadVtableStores flags are off —
	// modelling the compiler's per-call-site inlining decisions for
	// trivial parent constructors.
	ForceInlineParentCtorOf []string
	// DevirtualizeMono turns virtual call sites with exactly one possible
	// target into direct calls (class-hierarchy analysis over the
	// instantiated classes, as /O2 whole-program devirtualization does for
	// effectively-final methods). The vtable-pointer loads disappear with
	// the indirect call, thinning the C(i) tracelet events the behavioral
	// analysis learns from. Ground truth is unaffected: only the call
	// encoding changes, never the hierarchy.
	DevirtualizeMono bool
	// ComdatFoldMethods folds byte-identical *method* bodies (vtable slot
	// implementations and destructors) the way a linker merges identical
	// COMDAT sections contributed by multiple TUs — unrelated vtables come
	// to share function pointers (the §5.1 family-evidence hazard) while
	// free functions and constructors are left alone. A strict subset of
	// FoldIdenticalBodies, usable independently.
	ComdatFoldMethods bool
	// PartialInlineParentCtors inlines exactly ONE level of the parent
	// constructor/destructor chain: the parent's own field and vtable
	// initialization is spliced into the child, but the grandparent stays
	// an out-of-line call. The surviving §5.2 rule-3 cue now names the
	// grandparent instead of the parent — a misleading definitive parent,
	// exactly what per-call-site inliners produce for trivial middle
	// constructors. Ignored when InlineParentCtors already inlines the
	// whole chain. Ground truth (the induced hierarchy) is unchanged.
	PartialInlineParentCtors bool
}

// forcesInline reports whether cls's parent ctor/dtor is force-inlined.
func (o Options) forcesInline(cls string) bool {
	for _, c := range o.ForceInlineParentCtorOf {
		if c == cls {
			return true
		}
	}
	return false
}

// DefaultOptions is the fully optimized, stripped configuration used for the
// hard benchmarks: all structural parent cues are optimized away.
func DefaultOptions() Options {
	return Options{
		InlineCtorAtNew:       true,
		InlineParentCtors:     true,
		ElideDeadVtableStores: true,
		RemoveAbstractClasses: true,
		EmitDtors:             true,
	}
}

// DebugFriendlyOptions is the least aggressive configuration: parent ctors
// are real calls, so the structural analysis alone can resolve hierarchies.
func DebugFriendlyOptions() Options {
	return Options{
		InlineCtorAtNew: true,
		EmitDtors:       true,
	}
}

// slot describes one vtable slot.
type slot struct {
	// method is the source-level method name ("~" for the implicit dtor).
	method string
	// impl is the function key implementing the slot ("m:Class::name",
	// "dtor:Class", or "stub:purecall").
	impl string
}

// classInfo is the computed layout of one class.
type classInfo struct {
	cls *cpp.Class
	// emitted reports whether the class gets a vtable in the binary.
	emitted bool
	// abstract per cpp.IsAbstract.
	abstract bool
	// instantiated anywhere in the program.
	instantiated bool
	// size of an instance in bytes.
	size int
	// fieldOff maps every visible field name to its byte offset.
	fieldOff map[string]int
	// slots is the primary vtable layout.
	slots []slot
	// secBases lists secondary bases in declaration order.
	secBases []string
	// secOff maps secondary base name to the byte offset of its subobject
	// (where its vtable pointer lives).
	secOff map[string]int
	// secSlots maps secondary base name to that subobject's vtable layout.
	secSlots map[string][]slot
	// inducedParent is the nearest emitted ancestor along the primary
	// chain ("" if none) — the post-optimization parent recorded as ground
	// truth.
	inducedParent string
	// inducedSecondary is the list of nearest emitted ancestors of each
	// secondary base.
	inducedSecondary []string
}

// layouts computes classInfo for every class, in declaration order.
func layouts(p *cpp.Program, opts Options) (map[string]*classInfo, error) {
	infos := map[string]*classInfo{}
	for _, c := range p.Classes {
		ci := &classInfo{
			cls:          c,
			abstract:     p.IsAbstract(c.Name),
			instantiated: p.Instantiated(c.Name),
			fieldOff:     map[string]int{},
			secOff:       map[string]int{},
			secSlots:     map[string][]slot{},
		}
		if ci.abstract && ci.instantiated {
			return nil, fmt.Errorf("compiler: abstract class %q is instantiated", c.Name)
		}

		// Object layout: primary base subobject first (vptr at 0), then
		// secondary base subobjects, then own fields.
		off := 0
		if pb := c.PrimaryBase(); pb != "" {
			base := infos[pb]
			off = base.size
			for k, v := range base.fieldOff {
				ci.fieldOff[k] = v
			}
			ci.slots = append([]slot(nil), base.slots...)
			// Secondary bases of ancestors keep their offsets.
			for k, v := range base.secOff {
				ci.secOff[k] = v
			}
			for k, v := range base.secSlots {
				ci.secSlots[k] = append([]slot(nil), v...)
			}
		} else {
			off = 8 // vtable pointer
			if opts.EmitDtors {
				ci.slots = []slot{{method: "~", impl: ""}}
			}
		}
		for _, b := range c.Bases[min(1, len(c.Bases)):] {
			base := infos[b]
			ci.secBases = append(ci.secBases, b)
			ci.secOff[b] = off
			ci.secSlots[b] = append([]slot(nil), base.slots...)
			for fname, foff := range base.fieldOff {
				if _, dup := ci.fieldOff[fname]; !dup {
					ci.fieldOff[fname] = off + foff - 8 + 8 // base-relative, past its vptr
				}
			}
			off += base.size
		}
		for _, f := range c.Fields {
			ci.fieldOff[f.Name] = off
			off += 8
		}
		ci.size = off

		// Primary vtable: apply overrides, append new virtuals.
		if opts.EmitDtors {
			// Every class gets its own destructor implementation.
			if len(ci.slots) > 0 && ci.slots[0].method == "~" {
				ci.slots[0].impl = "dtor:" + c.Name
			}
		}
		for _, m := range c.Methods {
			if !m.Virtual {
				continue
			}
			implKey := "m:" + c.Name + "::" + m.Name
			if m.Pure {
				implKey = "stub:purecall"
			}
			replaced := false
			for i := range ci.slots {
				if ci.slots[i].method == m.Name {
					ci.slots[i].impl = implKey
					replaced = true
					break
				}
			}
			// Overrides of secondary-base methods land in the secondary
			// vtable only (the ABI dispatches them through the subobject's
			// vptr); a genuinely new virtual gets a fresh primary slot.
			for b := range ci.secSlots {
				for i := range ci.secSlots[b] {
					if ci.secSlots[b][i].method == m.Name {
						ci.secSlots[b][i].impl = implKey
						replaced = true
					}
				}
			}
			if !replaced {
				ci.slots = append(ci.slots, slot{method: m.Name, impl: implKey})
			}
		}
		if opts.EmitDtors {
			for b := range ci.secSlots {
				if len(ci.secSlots[b]) > 0 && ci.secSlots[b][0].method == "~" {
					ci.secSlots[b][0].impl = "dtor:" + c.Name
				}
			}
		}
		infos[c.Name] = ci
	}

	// Emission decisions.
	for _, c := range p.Classes {
		ci := infos[c.Name]
		polymorphic := len(ci.slots) > 0
		ci.emitted = polymorphic
		if opts.RemoveAbstractClasses && ci.abstract {
			ci.emitted = false
		}
		if opts.RemoveUninstantiated && !ci.instantiated && !ci.abstract {
			ci.emitted = false
		}
	}

	// Induced hierarchy: nearest emitted ancestor along the primary chain.
	for _, c := range p.Classes {
		ci := infos[c.Name]
		ci.inducedParent = nearestEmitted(p, infos, c.PrimaryBase())
		for _, b := range c.Bases[min(1, len(c.Bases)):] {
			if ip := nearestEmittedOrSelf(p, infos, b); ip != "" {
				ci.inducedSecondary = append(ci.inducedSecondary, ip)
			}
		}
	}
	return infos, nil
}

// nearestEmitted walks the primary chain starting at name (inclusive) and
// returns the first emitted class, or "".
func nearestEmitted(p *cpp.Program, infos map[string]*classInfo, name string) string {
	for name != "" {
		if ci := infos[name]; ci != nil && ci.emitted {
			return name
		}
		c := p.Class(name)
		if c == nil {
			return ""
		}
		name = c.PrimaryBase()
	}
	return ""
}

func nearestEmittedOrSelf(p *cpp.Program, infos map[string]*classInfo, name string) string {
	return nearestEmitted(p, infos, name)
}

// sortedClassNames returns emitted class names in declaration order.
func emittedClasses(p *cpp.Program, infos map[string]*classInfo) []string {
	var out []string
	for _, c := range p.Classes {
		if infos[c.Name].emitted {
			out = append(out, c.Name)
		}
	}
	return out
}

// methodSlot locates method name in the dispatch tables of static class
// cls: it returns the vtable-pointer offset within the object (0 for the
// primary vtable) and the slot index.
func methodSlot(infos map[string]*classInfo, cls, method string) (vptrOff, slotIdx int, err error) {
	ci := infos[cls]
	if ci == nil {
		return 0, 0, fmt.Errorf("compiler: unknown class %q", cls)
	}
	for i, s := range ci.slots {
		if s.method == method {
			return 0, i, nil
		}
	}
	// Secondary dispatch: search secondary bases in a deterministic order.
	bases := make([]string, 0, len(ci.secSlots))
	for b := range ci.secSlots {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, b := range bases {
		for i, s := range ci.secSlots[b] {
			if s.method == method {
				return ci.secOff[b], i, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("compiler: class %q has no virtual slot for %q", cls, method)
}
