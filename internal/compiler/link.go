package compiler

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/image"
	"repro/internal/ir"
)

// link lays out the compiled functions and vtables, resolves symbolic
// operands, and produces the final image with ground-truth metadata.
func (cg *codegen) link() (*image.Image, error) {
	// Function layout: deterministic order by key.
	keys := make([]string, 0, len(cg.funcs))
	for k := range cg.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fnAddr := map[string]uint64{}
	addr := image.CodeBase
	for _, k := range keys {
		fnAddr[k] = addr
		addr += uint64(len(cg.funcs[k].insts)) * ir.InstSize
	}

	// Import thunks.
	imports := map[uint64]string{
		image.ImportBase + 0:  image.ImportAlloc,
		image.ImportBase + 16: image.ImportFree,
		image.ImportBase + 32: image.ImportAbort,
	}
	importAddr := map[string]uint64{}
	for a, n := range imports {
		importAddr[n] = a
	}

	// Vtable layout: declaration order; one zero-word separator between
	// tables (the slot where RTTI/offset-to-top would live in real ABIs).
	vtAddr := map[string]uint64{}
	type vtPlan struct {
		key   string
		slots []slot
	}
	var plans []vtPlan
	for _, cname := range emittedClasses(cg.p, cg.infos) {
		ci := cg.infos[cname]
		plans = append(plans, vtPlan{key: "vt:" + cname, slots: ci.slots})
		for _, b := range ci.secBases {
			plans = append(plans, vtPlan{key: "vt2:" + cname + ":" + b, slots: ci.secSlots[b]})
		}
	}
	raddr := image.RodataBase
	for _, pl := range plans {
		raddr += 8 // separator word
		vtAddr[pl.key] = raddr
		raddr += uint64(len(pl.slots)) * 8
	}
	rodata := make([]byte, raddr-image.RodataBase)
	for _, pl := range plans {
		base := vtAddr[pl.key] - image.RodataBase
		for i, s := range pl.slots {
			implKey := cg.resolveKey(s.impl)
			a, ok := fnAddr[implKey]
			if !ok {
				return nil, fmt.Errorf("compiler: vtable %s slot %d references unemitted %q", pl.key, i, s.impl)
			}
			binary.LittleEndian.PutUint64(rodata[base+uint64(i)*8:], a)
		}
	}

	// Resolve and encode function bodies.
	var code []byte
	entries := make([]uint64, 0, len(keys))
	funcNames := map[uint64]string{}
	for _, k := range keys {
		f := cg.funcs[k]
		entry := fnAddr[k]
		entries = append(entries, entry)
		funcNames[entry] = f.name
		for i, si := range f.insts {
			in := si.inst
			switch {
			case si.call != "":
				a, ok := fnAddr[cg.resolveKey(si.call)]
				if !ok {
					return nil, fmt.Errorf("compiler: %s calls unemitted %q", k, si.call)
				}
				in.Imm = a
			case si.imp != "":
				a, ok := importAddr[si.imp]
				if !ok {
					return nil, fmt.Errorf("compiler: %s calls unknown import %q", k, si.imp)
				}
				in.Imm = a
			case si.lea != "":
				if a, ok := vtAddr[si.lea]; ok {
					in.Imm = a
				} else if a, ok := fnAddr[cg.resolveKey(si.lea)]; ok {
					in.Imm = a
				} else {
					return nil, fmt.Errorf("compiler: %s takes address of unknown %q", k, si.lea)
				}
			case si.br >= 0:
				if si.br > len(f.insts) {
					return nil, fmt.Errorf("compiler: %s branch to %d out of range", k, si.br)
				}
				in.Imm = entry + uint64(si.br)*ir.InstSize
			}
			var buf [ir.InstSize]byte
			in.Encode(buf[:])
			code = append(code, buf[:]...)
			_ = i
		}
	}

	// Ground truth metadata: the induced (post-optimization) hierarchy.
	meta := &image.Metadata{FuncNames: funcNames, SourceParents: map[string]string{}}
	prim, _ := cg.p.SourceHierarchy()
	for c, b := range prim {
		meta.SourceParents[c] = b
	}
	for _, cname := range emittedClasses(cg.p, cg.infos) {
		ci := cg.infos[cname]
		tm := image.TypeMeta{Name: cname, VTable: vtAddr["vt:"+cname]}
		if ip := ci.inducedParent; ip != "" {
			tm.Parent = vtAddr["vt:"+ip]
		}
		for _, sp := range ci.inducedSecondary {
			if a, ok := vtAddr["vt:"+sp]; ok {
				tm.SecondaryParents = append(tm.SecondaryParents, a)
			}
		}
		meta.Types = append(meta.Types, tm)
		for _, b := range ci.secBases {
			stm := image.TypeMeta{
				Name:      cname,
				VTable:    vtAddr["vt2:"+cname+":"+b],
				Secondary: true,
			}
			if ip := nearestEmitted(cg.p, cg.infos, b); ip != "" {
				stm.Parent = vtAddr["vt:"+ip]
			}
			meta.Types = append(meta.Types, stm)
		}
	}

	img := &image.Image{
		Name:    cg.p.Name,
		Code:    code,
		Rodata:  rodata,
		Entries: entries,
		Imports: imports,
		Meta:    meta,
	}
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: produced invalid image: %w", err)
	}
	return img, nil
}
