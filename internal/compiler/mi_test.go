package compiler

import (
	"testing"

	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/ir"
	"repro/internal/vtable"
)

func miProgram() *cpp.Program {
	return &cpp.Program{
		Name: "mi",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "ax"}}, Methods: []*cpp.Method{{Name: "am", Virtual: true}}},
			{Name: "B", Fields: []cpp.Field{{Name: "bx"}}, Methods: []*cpp.Method{{Name: "bm", Virtual: true}}},
			{Name: "C", Bases: []string{"A", "B"}, Methods: []*cpp.Method{
				{Name: "cm", Virtual: true},
				{Name: "bm", Virtual: true}, // override through the secondary base
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "uc", Body: []cpp.Stmt{
				cpp.New{Dst: "o", Class: "C"},
				cpp.VCall{Obj: "o", Method: "am"},
				cpp.VCall{Obj: "o", Method: "bm"}, // dispatched via the secondary vptr
				cpp.ReadField{Obj: "o", Field: "bx"},
			}},
			{Name: "ua", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}}},
			{Name: "ub", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}}},
		},
	}
}

func TestMultipleInheritanceLayout(t *testing.T) {
	img, err := Compile(miProgram(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Four vtables: A, B, C-primary, C-secondary.
	count := 0
	var secVT uint64
	for _, tm := range img.Meta.Types {
		count++
		if tm.Secondary {
			secVT = tm.VTable
			if tm.Name != "C" {
				t.Errorf("secondary table belongs to %q, want C", tm.Name)
			}
		}
	}
	if count != 4 {
		t.Fatalf("emitted %d types, want 4 (A, B, C, C-secondary)", count)
	}
	fns, err := disasm.All(img.Strip())
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.ByAddr(vtable.Discover(img.Strip(), fns))
	b := vts[img.Meta.TypeByName("B").VTable]
	sec := vts[secVT]
	if b == nil || sec == nil {
		t.Fatal("tables not discovered")
	}
	if sec.NumSlots() != b.NumSlots() {
		t.Fatalf("secondary table has %d slots, B has %d", sec.NumSlots(), b.NumSlots())
	}
	// C overrides bm: the secondary table's bm slot differs from B's.
	if sec.Slots[1] == b.Slots[1] {
		t.Error("override through the secondary base not applied")
	}
	// The secondary parent is recorded in metadata.
	cm := img.Meta.TypeByName("C")
	if len(cm.SecondaryParents) != 1 || cm.SecondaryParents[0] != img.Meta.TypeByName("B").VTable {
		t.Errorf("secondary parents = %v", cm.SecondaryParents)
	}
}

func TestSecondaryDispatchUsesSubobjectVptr(t *testing.T) {
	img, err := Compile(miProgram(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fns, err := disasm.All(img.Strip())
	if err != nil {
		t.Fatal(err)
	}
	// In uc, the bm call must load the vtable pointer from a nonzero
	// offset (the secondary subobject), unlike the am call.
	var uc *ir.Function
	for _, f := range fns {
		if img.Meta.FuncNames[f.Entry] == "uc" {
			uc = f
		}
	}
	if uc == nil {
		t.Fatal("uc not found")
	}
	offsets := map[int32]bool{}
	for i, in := range uc.Insts {
		// vptr loads: OpLoad whose result feeds a slot load; approximate by
		// collecting loads followed (eventually) by OpCallInd.
		if in.Op == ir.OpLoad && i+1 < len(uc.Insts) && uc.Insts[i+1].Op == ir.OpLoad {
			offsets[in.Off] = true
		}
	}
	if !offsets[0] {
		t.Error("no primary vptr load found")
	}
	nonzero := false
	for off := range offsets {
		if off > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("no secondary vptr load found (bm should dispatch via the subobject)")
	}
}
