// Package core implements Rock's end-to-end pipeline (§4): given a
// stripped binary image it discovers the binary types (vtables), runs the
// structural analysis to partition them into families and prune impossible
// parents, extracts object tracelets, trains one statistical language model
// per type, weighs every surviving candidate child→parent edge with the
// Kullback–Leibler divergence between the types' SLMs, and finds the most
// likely hierarchy per family as a minimum-weight spanning arborescence,
// handling co-optimal solutions with the paper's majority-vote heuristic.
//
// The pipeline itself is declared as a stage graph (internal/pipeline):
// graph.go builds the stages and AnalyzeContext is a thin driver that
// consults the snapshot cache, skips restored stages, and executes the
// rest, optionally recorded on an observer bus (internal/obs). This file
// holds the configuration, the Result type, and the per-stage algorithm
// bodies the graph binds.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/arborescence"
	"repro/internal/evidence"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/objtrace"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
	"repro/internal/structural"
	"repro/internal/vtable"
)

// Config parameterizes the pipeline.
type Config struct {
	// UseSLM enables the behavioral analysis. When false only the
	// structural possibleParent relation is produced (the paper's
	// "without SLMs" baseline).
	UseSLM bool
	// SLMDepth is the maximum SLM order D (the paper's example uses 2).
	SLMDepth int
	// Metric selects the pairwise distance (DKL by default; the JS variants
	// exist for the §6.4 ablation).
	Metric slm.Metric
	// Trace bounds the tracelet extraction.
	Trace objtrace.Config
	// Structural toggles individual structural heuristics.
	Structural structural.Config
	// RootWeightFactor scales the virtual-root edge weight relative to the
	// largest pairwise distance in a family; it must exceed 1 so that being
	// a derived type is always preferred (Heuristic 4.1).
	RootWeightFactor float64
	// Evidence selects the edge-evidence providers whose scores the
	// hierarchy solve fuses, in fusion order (see internal/evidence). Nil
	// or empty selects the paper's configuration: the SLM/KL behavioral
	// sweep alone. Every name must be evidence.Known and appear once;
	// "slm" requires UseSLM. Non-default provider sets change the
	// hierarchy-section snapshot fingerprint (and only that section).
	Evidence []string
	// FuseWeights overrides the per-provider fusion weights by name.
	// Providers absent from the map keep their defaults (slm: 1, subtype:
	// subtype.DefaultWeight). Weights must be finite and non-negative,
	// may only name enabled providers, and at least one must be nonzero.
	// With exactly one nonzero weight equal to 1 the fusion is an exact
	// passthrough of that provider — {slm: 1, subtype: 0} is bit-identical
	// to the pure-SLM pipeline.
	FuseWeights map[string]float64
	// DenseDist restores the full n×n per-family distance sweep: every
	// family-internal ordered pair is reduced into Result.Dist and the
	// virtual-root weight derives from the exact dense maximum. By default
	// the sweep is sparse — only the structurally-admissible (parent,
	// child) pairs the arborescence can consume are reduced, Result.Dist
	// holds just those entries, and the root weight uses a cheap upper
	// bound on the dense maximum (slm.DistanceCalculator.PairBound) — so a
	// family costs Θ(n + |admissible|) reductions instead of Θ(n²). Dist
	// entries present in both modes are bit-identical; enable dense only
	// for reporting that needs the full matrix (e.g. rockbench
	// -motivating prints every pairwise DKL). Dense mode is an SLM
	// reporting format, so it requires the default evidence configuration.
	DenseDist bool
	// EnumLimit caps the number of co-optimal arborescences enumerated per
	// family.
	EnumLimit int
	// EnumEps is the weight tolerance within which two arborescences count
	// as equally minimal.
	EnumEps float64
	// Workers bounds the pipeline's concurrency: per-function tracelet
	// extraction, SLM training, per-family pairwise distance matrices, and
	// per-family arborescence solving all run on a worker pool of this
	// size. 0 (the default) selects runtime.GOMAXPROCS(0); 1 runs the
	// pipeline fully serially. The result is identical for every value —
	// all parallel stages write to index-owned slots and are merged in a
	// fixed order.
	Workers int
	// Pool, when non-nil, draws every fan-out's helper goroutines from a
	// corpus-wide shared worker pool instead of the private Workers budget,
	// so concurrent analyses compete for one global parallelism bound (see
	// internal/pool and internal/corpus). Results are unaffected.
	Pool *pool.Shared
	// Scratch, when non-nil, supplies the reusable per-goroutine query
	// scratch for the distance sweep, letting concurrent analyses share one
	// recycled buffer set instead of warming private ones. Results are
	// unaffected. Nil uses the process-wide default pool.
	Scratch *slm.ScratchPool
	// CacheDir, when non-empty, enables the content-addressed snapshot
	// cache (internal/snapshot): after a cold analysis the derived
	// artifacts are persisted under this directory keyed by the image's
	// content digest and per-stage config fingerprints, and later runs
	// reuse every section whose fingerprint still matches. The directory
	// must exist. Caching applies only to full (UseSLM) analyses.
	CacheDir string
	// Invalidate caps how much of a matching snapshot may be reused,
	// forcing recomputation of the later stages (and a rewrite of the
	// snapshot). The zero value reuses everything valid. The cap also
	// bounds the incremental lane: bundles need extraction-level reuse,
	// frozen models model-level, verbatim family restores hierarchy-level.
	Invalidate Invalidate
	// IncrementalFrom, when non-empty, names a snapshot file of a prior
	// version of this image to diff against when the exact snapshot
	// misses: unchanged functions (by image.FunctionDigest) reuse their
	// extraction bundles, types whose training input is unchanged reuse
	// their frozen models, and families untouched by any retrained type
	// restore verbatim. The file must load (an unreadable path is an
	// error), but a snapshot without a function-granular section — e.g. a
	// v2 file — silently degrades to a cold run. When empty but CacheDir
	// is set, the lane auto-discovers the nearest prior snapshot of the
	// same image family (matched by hashed module name) in the cache
	// directory.
	IncrementalFrom string
	// Obs, when non-nil, records the run on an observer bus: per-stage
	// wall time, allocation estimates, cache-hit attribution, and domain
	// counters, plus trace spans when the bus carries a Trace. Results are
	// unaffected, and a nil Obs costs nothing on the hot path.
	Obs *obs.Bus
}

// Invalidate selects the snapshot-reuse granularity of a cached run.
type Invalidate int

// Invalidation levels, coarsest reuse first.
const (
	// InvalidateNone reuses every snapshot section whose fingerprint
	// matches (the default).
	InvalidateNone Invalidate = iota
	// InvalidateHierarchy reuses extraction and frozen models but
	// recomputes distances, arborescences, and parent choices.
	InvalidateHierarchy
	// InvalidateModels reuses only the extraction (tracelets + structural
	// results) and retrains the SLMs.
	InvalidateModels
	// InvalidateAll ignores any existing snapshot entirely (a forced cold
	// run that rewrites the cache).
	InvalidateAll
)

// maxLevel translates the invalidation granularity into the highest
// snapshot reuse level it permits.
func (iv Invalidate) maxLevel() int {
	switch iv {
	case InvalidateHierarchy:
		return snapshot.LevelModels
	case InvalidateModels:
		return snapshot.LevelExtraction
	case InvalidateAll:
		return snapshot.LevelNone
	default:
		return snapshot.LevelHierarchy
	}
}

// ParseInvalidate maps the CLI spelling of an invalidation level to its
// value: "none", "hierarchy", "models", or "all" ("" means none).
func ParseInvalidate(s string) (Invalidate, error) {
	switch s {
	case "", "none":
		return InvalidateNone, nil
	case "hierarchy":
		return InvalidateHierarchy, nil
	case "models":
		return InvalidateModels, nil
	case "all":
		return InvalidateAll, nil
	}
	return 0, fmt.Errorf("core: unknown invalidation level %q (want none, hierarchy, models, or all)", s)
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		UseSLM:           true,
		SLMDepth:         2,
		Metric:           slm.MetricKL,
		Trace:            objtrace.DefaultConfig(),
		RootWeightFactor: 8,
		EnumLimit:        64,
		EnumEps:          1e-9,
	}
}

// FamilyResult is the per-family outcome.
type FamilyResult struct {
	// Types lists the family members (vtable addresses), ascending.
	Types []uint64
	// Arbs holds the hierarchies that survive majority voting, as
	// child→parent maps; types absent from a map are roots. At least one
	// entry when the behavioral analysis ran.
	Arbs []map[uint64]uint64
	// Weight is the minimum arborescence weight.
	Weight float64
	// Truncated reports that the co-optimal enumeration for this family was
	// cut short by an internal cap of arborescence.EnumerateMin (over-size
	// graph fallback or step budget), so Arbs may under-represent the true
	// co-optimal set. Hitting the caller-chosen EnumLimit is not flagged.
	Truncated bool
}

// Result is the pipeline output.
type Result struct {
	Image *image.Image
	// Funcs holds the disassembled functions. It is nil on a warm run that
	// restored the extraction from a snapshot (disassembly was skipped).
	Funcs      []*ir.Function
	VTables    []*vtable.VTable
	Structural *structural.Result
	Tracelets  *objtrace.Result
	// Models maps each type to its trained SLM (UseSLM only). It is nil on
	// a warm run that restored the frozen models from a snapshot: the
	// mutable builders are never persisted, and Frozen answers every query
	// identically.
	Models map[uint64]*slm.Model
	// Frozen maps each type to the frozen flat-trie form of its SLM
	// (UseSLM only). Every model is frozen immediately after training and
	// the distance sweep queries only the frozen forms; Models is kept as
	// the mutable training representation (and for Dump-style reporting).
	// The two answer identically — frozen queries are bit-identical.
	Frozen map[uint64]*slm.Frozen
	// Dist holds the pairwise distances computed for family-internal
	// ordered pairs [parent, child] (UseSLM only).
	Dist map[[2]uint64]float64
	// Families holds the per-family arborescence outcomes (UseSLM only).
	Families []FamilyResult
	// Hierarchy is the reconstructed forest using the first surviving
	// arborescence of each family (UseSLM only).
	Hierarchy *hierarchy.Forest
	// MultiParents maps multiple-inheritance types to their chosen parent
	// sets (§5.3): as many parents as vtable installs were observed on
	// their instances, ranked by distance.
	MultiParents map[uint64][]uint64
	// Alphabet is the interned event alphabet (symbol -> event).
	Alphabet []objtrace.Event
	// SnapshotReuse reports how much of a cached snapshot this run reused:
	// snapshot.LevelNone (cold), LevelExtraction, LevelModels, or
	// LevelHierarchy (fully warm). Always LevelNone without a CacheDir.
	SnapshotReuse int
	// Incremental reports the version-diff warm lane's reuse when it
	// engaged (a prior sibling snapshot was diffed against); nil otherwise.
	// The lane never changes the Result — every reused artifact is
	// deep-equal to what recomputation would produce.
	Incremental *IncrementalStats

	// words memoizes each type's distinct encoded tracelets (the word sets
	// the distance sweep measures over), built once per analysis instead of
	// once per family a type belongs to.
	words map[uint64][][]int
	// incr carries the prior snapshot the incremental lane diffs against.
	incr *incrState
	// fnDigests memoizes image.FunctionDigests for this run.
	fnDigests [][32]byte
	// fnExts holds the per-function extraction bundles when the tracelets
	// stage ran (fresh or reused); they become the snapshot's v3 function
	// section.
	fnExts []*objtrace.FnExtraction
	// fnCtxDigest is objtrace.ContextDigest for this run's extraction.
	fnCtxDigest [32]byte
	// fnSection is a function section carried forward verbatim from a
	// whole-image warm restore (the extraction never reran, so the prior
	// section is still exact).
	fnSection *snapshot.FnSection
	// typeKeys memoizes each type's training-input digest (TypeKey).
	typeKeys map[uint64][32]byte
	// affected, when non-nil, is the set of types whose tracelet lists may
	// differ from the diffed-against prior run (computed by the delta
	// merge). Types outside it provably have byte-identical lists, which
	// licenses copying their prior TypeKeys without re-hashing. Nil means
	// no delta information: every type must be treated as affected.
	affected map[uint64]bool
	// providers are the constructed evidence backends, in fusion order,
	// with provWeights their parallel fusion weights (built by the
	// evidence stage; see evidence.go).
	providers   []evidence.Provider
	provWeights []float64
	// provStats accumulates per-provider wall/alloc attribution across
	// the concurrent family fan-out (observed runs only), folded into one
	// stage row per provider after the hierarchy stage.
	provMu    sync.Mutex
	provStats []provStat
}

// provStat is one provider's accumulated score-sweep attribution.
type provStat struct {
	wall               time.Duration
	allocBytes, allocs uint64
	families           int64
}

// IncrementalStats attributes the incremental lane's reuse.
type IncrementalStats struct {
	// PriorPath is the snapshot file the lane diffed against.
	PriorPath string
	// FnHits/FnMisses count functions whose extraction bundle was reused
	// vs re-executed.
	FnHits, FnMisses int
	// TypesReused/TypesRetrained count frozen models adopted vs retrained.
	TypesReused, TypesRetrained int
	// FamiliesRestored/FamiliesResolved count families restored verbatim
	// vs re-solved.
	FamiliesRestored, FamiliesResolved int
}

// TypeNamer returns a display-name function backed by metadata when
// available (names are never used by the analysis itself).
func TypeNamer(meta *image.Metadata) func(uint64) string {
	return func(vt uint64) string {
		if meta != nil {
			if tm := meta.TypeByVTable(vt); tm != nil {
				if tm.Secondary {
					return tm.Name + "(secondary)"
				}
				return tm.Name
			}
		}
		return fmt.Sprintf("vt_0x%x", vt)
	}
}

// Analyze runs the full pipeline on a stripped image. With a CacheDir it
// first consults the content-addressed snapshot cache and reruns only the
// stages whose configuration fingerprints no longer match (see
// internal/snapshot); a fully warm run restores every derived artifact
// and recomputes nothing.
func Analyze(img *image.Image, cfg Config) (*Result, error) {
	return AnalyzeContext(context.Background(), img, cfg)
}

// withDefaults resolves the zero-value Config fields exactly as Analyze
// does, so probes (ProbeSnapshot) and the analysis itself derive the same
// snapshot key.
func (c Config) withDefaults() Config {
	if c.SLMDepth <= 0 {
		c.SLMDepth = 2
	}
	if c.RootWeightFactor <= 1 {
		c.RootWeightFactor = 8
	}
	if c.EnumLimit <= 0 {
		c.EnumLimit = 64
	}
	if c.EnumEps <= 0 {
		c.EnumEps = 1e-9
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	c.Trace.Workers = c.Workers
	c.Trace.Pool = c.Pool
	return c
}

// restoreHierarchy rebuilds the hierarchy-stage outputs from a snapshot.
func (r *Result) restoreHierarchy(snap *snapshot.Snapshot) {
	r.Dist = snap.Dist
	r.Families = make([]FamilyResult, len(snap.Families))
	for i, fr := range snap.Families {
		r.Families[i] = FamilyResult{Types: fr.Types, Weight: fr.Weight, Truncated: fr.Truncated, Arbs: fr.Arbs}
	}
	var all []uint64
	for _, v := range r.VTables {
		all = append(all, v.Addr)
	}
	r.Hierarchy = hierarchy.NewForest(all)
	children := make([]uint64, 0, len(snap.Parents))
	for c := range snap.Parents {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool { return children[i] < children[j] })
	for _, c := range children {
		// The edges come from a validated arborescence; re-adding them to a
		// fresh forest cannot fail, and a corrupted-beyond-validation edge
		// set would only drop edges, never crash.
		_ = r.Hierarchy.SetParent(c, snap.Parents[c])
	}
	r.MultiParents = snap.MultiParents
}

// writeSnapshot persists the run's derived artifacts under the key.
func (r *Result) writeSnapshot(path string, key snapshot.Key) error {
	snap := &snapshot.Snapshot{
		Key:          key,
		NameHash:     snapshot.HashName(r.Image.Name),
		Funcs:        r.buildFnSection(),
		Alphabet:     r.Alphabet,
		VTables:      r.VTables,
		Tracelets:    r.Tracelets,
		Structural:   r.Structural,
		Frozen:       r.Frozen,
		Dist:         r.Dist,
		Families:     make([]snapshot.Family, len(r.Families)),
		Parents:      map[uint64]uint64{},
		MultiParents: r.MultiParents,
	}
	for i, fr := range r.Families {
		snap.Families[i] = snapshot.Family{Types: fr.Types, Weight: fr.Weight, Truncated: fr.Truncated, Arbs: fr.Arbs}
	}
	for _, t := range r.Hierarchy.Nodes() {
		if p, ok := r.Hierarchy.Parent(t); ok {
			snap.Parents[t] = p
		}
	}
	if err := snap.WriteFile(path); err != nil {
		return fmt.Errorf("core: writing snapshot: %w", err)
	}
	return nil
}

// internAlphabet assigns integer symbols to every distinct event observed
// anywhere in the binary, so that all SLMs share one alphabet, and then
// memoizes each type's encoded word set (buildWords).
func (r *Result) internAlphabet() {
	seen := map[objtrace.Event]bool{}
	var events []objtrace.Event
	types := make([]uint64, 0, len(r.Tracelets.PerType))
	for t := range r.Tracelets.PerType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		for _, tl := range r.Tracelets.PerType[t] {
			for _, e := range tl {
				if !seen[e] {
					seen[e] = true
					events = append(events, e)
				}
			}
		}
	}
	r.Alphabet = events
	// On the incremental lane word sets are built lazily: restored
	// families never read theirs, so encoding every type here would undo
	// most of the lane's savings (buildHierarchy encodes exactly the types
	// the re-solved families need).
	if r.incr == nil {
		r.buildWords()
	}
}

// buildWords memoizes the distinct encoded tracelets of every type — each
// type's words are encoded exactly once per analysis and reused by every
// family word-set union, instead of being re-encoded for each family (and
// on warm snapshot runs, rebuilt only when the hierarchy stage actually
// runs). Idempotent.
func (r *Result) buildWords() {
	addrs := make([]uint64, len(r.VTables))
	for i, v := range r.VTables {
		addrs[i] = v.Addr
	}
	r.buildWordsFor(addrs)
}

// buildWordsFor fills the word-set memo for the given types, skipping any
// already built. Not safe to call concurrently with itself or with
// readers — callers encode on the serial path before fanning out.
func (r *Result) buildWordsFor(types []uint64) {
	if r.words == nil {
		r.words = make(map[uint64][][]int, len(types))
	}
	var idx map[objtrace.Event]int
	for _, t := range types {
		if _, ok := r.words[t]; ok {
			continue
		}
		if idx == nil {
			idx = r.symIndex()
		}
		seen := map[string]bool{}
		var out [][]int
		for _, tl := range r.Tracelets.PerType[t] {
			k := tl.String()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, encode(idx, tl))
		}
		r.words[t] = out
	}
}

// symIndex builds the event -> symbol map.
func (r *Result) symIndex() map[objtrace.Event]int {
	idx := make(map[objtrace.Event]int, len(r.Alphabet))
	for i, e := range r.Alphabet {
		idx[e] = i
	}
	return idx
}

// SymbolName renders symbol s in the paper's event notation.
func (r *Result) SymbolName(s int) string {
	if s >= 0 && s < len(r.Alphabet) {
		return r.Alphabet[s].String()
	}
	return fmt.Sprintf("sym%d", s)
}

// encode converts a tracelet to interned symbols.
func encode(idx map[objtrace.Event]int, tl objtrace.Tracelet) []int {
	out := make([]int, len(tl))
	for i, e := range tl {
		out[i] = idx[e]
	}
	return out
}

// trainModels trains one SLM per discovered type on TT(t) and freezes it
// into its flat-trie query form. Types are independent (each model sees
// only its own tracelets), so training and freezing fan out over the
// worker pool; models land in index-owned slots and the maps are
// assembled serially. On the incremental lane, types whose training input
// is provably unchanged (TypeKey match) adopt the prior frozen model and
// skip training — those types then have no builder in Models, mirroring
// how warm snapshot runs never carry builders.
func (r *Result) trainModels(ctx context.Context, cfg Config) error {
	ctx = obs.WithRegion(ctx, cfg.Obs, "train")
	idx := r.symIndex()
	alpha := len(r.Alphabet)
	if alpha == 0 {
		alpha = 1
	}
	reuse := r.reusableModels()
	models := make([]*slm.Model, len(r.VTables))
	frozen := make([]*slm.Frozen, len(r.VTables))
	if err := pool.ForEach(ctx, cfg.Pool, cfg.Workers, len(r.VTables), func(i int) {
		if f := reuse[r.VTables[i].Addr]; f != nil {
			frozen[i] = f
			return
		}
		m := slm.New(cfg.SLMDepth, alpha)
		for _, tl := range r.Tracelets.PerType[r.VTables[i].Addr] {
			m.Train(encode(idx, tl))
		}
		models[i] = m
		frozen[i] = m.Freeze()
	}); err != nil {
		return err
	}
	r.Models = make(map[uint64]*slm.Model, len(r.VTables))
	r.Frozen = make(map[uint64]*slm.Frozen, len(r.VTables))
	for i, v := range r.VTables {
		if models[i] != nil {
			r.Models[v.Addr] = models[i]
		}
		r.Frozen[v.Addr] = frozen[i]
	}
	if r.Incremental != nil {
		r.Incremental.TypesReused = len(reuse)
		r.Incremental.TypesRetrained = len(r.VTables) - len(reuse)
		cfg.Obs.Add(obs.CntTypesRetrained, int64(r.Incremental.TypesRetrained))
	}
	return nil
}

// familyWords returns the union of distinct tracelets across all family
// members, drawn from the per-type memo (buildWords) so no tracelet is
// encoded more than once per analysis. Every pairwise distance within the
// family is measured over this one word set: the algorithm only needs a
// ranking over candidate parents (Remark 4.1), and ranking distances
// measured over differing word sets would not be comparable.
func (r *Result) familyWords(fam []uint64) [][]int {
	seen := map[string]bool{}
	var words [][]int
	for _, t := range fam {
		for _, w := range r.words[t] {
			k := fmt.Sprint(w)
			if !seen[k] {
				seen[k] = true
				words = append(words, w)
			}
		}
	}
	return words
}

// familyOutcome is the result of analyzing one family in isolation.
type familyOutcome struct {
	fr   FamilyResult
	dist map[[2]uint64]float64
	err  error
}

// buildHierarchy runs the per-family arborescence step. Families are
// mutually independent (each one's word set, distance matrix, and
// arborescence depend only on its own members), so they are analyzed
// concurrently into index-owned slots; the outcomes are merged in family
// order, making the merged Result identical to a serial run.
func (r *Result) buildHierarchy(ctx context.Context, cfg Config) error {
	ctx = obs.WithRegion(ctx, cfg.Obs, "hierarchy")
	r.Dist = map[[2]uint64]float64{}

	var all []uint64
	for _, v := range r.VTables {
		all = append(all, v.Addr)
	}
	r.Hierarchy = hierarchy.NewForest(all)

	// Incremental lane: restore provably-unchanged families verbatim
	// before the fan-out (cheap map lookups, done serially so the counters
	// need no atomics); only the rest are re-solved. Word sets are then
	// encoded serially for exactly the types the re-solved families read
	// (restored families never touch theirs).
	outs := make([]*familyOutcome, len(r.Structural.Families))
	restored := r.restoreFamilies(cfg, outs)
	if r.Incremental != nil {
		r.Incremental.FamiliesRestored = restored
		r.Incremental.FamiliesResolved = len(outs) - restored
		cfg.Obs.Add(obs.CntFamiliesResolved, int64(len(outs)-restored))
	}
	var solving []uint64
	for i, fam := range r.Structural.Families {
		if outs[i] == nil {
			solving = append(solving, fam...)
		}
	}
	if cfg.hasSLM() {
		r.buildWordsFor(solving)
	}
	if err := pool.ForEach(ctx, cfg.Pool, cfg.Workers, len(r.Structural.Families), func(i int) {
		if outs[i] == nil {
			outs[i] = r.analyzeFamily(ctx, cfg, r.Structural.Families[i])
		}
	}); err != nil {
		return err
	}
	r.recordProviderStages(cfg)
	// The providers are stage-local scaffolding; drop them so the Result
	// does not retain the subtype index or the observation configuration
	// captured inside the providers (observed and unobserved runs of the
	// same analysis must stay deep-equal — observation may measure, never
	// steer).
	r.providers, r.provWeights, r.provStats = nil, nil, nil

	for i, out := range outs {
		if out.err != nil {
			return fmt.Errorf("core: family %v: %w", r.Structural.Families[i], out.err)
		}
		for pc, d := range out.dist {
			r.Dist[pc] = d
		}
		r.Families = append(r.Families, out.fr)
		for c, p := range out.fr.Arbs[0] {
			if err := r.Hierarchy.SetParent(c, p); err != nil {
				return fmt.Errorf("core: building forest: %w", err)
			}
		}
	}
	return nil
}

// analyzeFamily scores one family's candidate edges through the enabled
// evidence providers, fuses the scores, and solves the arborescence. The
// admissible (parent, child) pairs are laid out once in the deterministic
// (family order, candidate order) order; each provider scores that one
// layout (the SLM provider runs the chunked divergence sweep over the
// frozen flat tries, the subtype provider reads its constraint index),
// and evidence.Fuse reduces the score vectors to the edge weights the
// solve consumes. Under the default configuration the fusion is an exact
// passthrough of the SLM scores, so the solve input is bit-identical to
// the pre-provider pipeline.
func (r *Result) analyzeFamily(ctx context.Context, cfg Config, fam []uint64) *familyOutcome {
	out := &familyOutcome{fr: FamilyResult{Types: append([]uint64(nil), fam...)}}
	if len(fam) == 1 {
		out.fr.Arbs = []map[uint64]uint64{{}}
		return out
	}
	n := len(fam)
	admissible := 0
	for _, c := range fam {
		admissible += len(r.Structural.PossibleParents[c])
	}
	pairs := make([][2]uint64, 0, admissible)
	for _, c := range fam {
		for _, p := range r.Structural.PossibleParents[c] {
			pairs = append(pairs, [2]uint64{p, c})
		}
	}
	in := &evidence.FamilyInput{Types: out.fr.Types, Pairs: pairs}
	if cfg.hasSLM() {
		in.Words = r.familyWords(fam)
		scorers := make([]slm.WordScorer, n)
		for i, t := range fam {
			scorers[i] = r.Frozen[t]
		}
		in.Scorers = scorers
		in.Scorer = func(t uint64) slm.WordScorer { return r.Frozen[t] }
	}
	all := make([]*evidence.Scores, len(r.providers))
	for i, p := range r.providers {
		var t0 time.Time
		var bytes0, objs0 uint64
		if cfg.Obs != nil {
			bytes0, objs0 = obs.AllocSample()
			t0 = time.Now()
		}
		s, err := p.Score(ctx, in)
		if err != nil {
			out.err = err
			return out
		}
		if cfg.Obs != nil {
			r.recordProvider(i, time.Since(t0), bytes0, objs0)
		}
		all[i] = s
	}
	cfg.Obs.Add(obs.CntEvidenceEdges, int64(len(pairs)*len(r.providers)))
	fused := evidence.Fuse(all, r.provWeights)
	if fused.Dense != nil {
		out.dist = fused.Dense
	} else {
		out.dist = make(map[[2]uint64]float64, len(pairs))
		for k, pc := range pairs {
			out.dist[pc] = fused.Edge[k]
		}
	}
	// Graph: node 0 is the virtual root; types follow in family order.
	nodeOf := map[uint64]int{}
	for i, t := range fam {
		nodeOf[t] = i + 1
	}
	edges := make([]arborescence.Edge, 0, n+admissible)
	for i := range fam {
		edges = append(edges, arborescence.Edge{From: 0, To: i + 1, W: fused.Root})
	}
	for k, pc := range pairs {
		edges = append(edges, arborescence.Edge{
			From: nodeOf[pc[0]], To: nodeOf[pc[1]], W: fused.Edge[k],
		})
	}
	arbs, w, truncated, err := arborescence.EnumerateMin(len(fam)+1, 0, edges, cfg.EnumEps, cfg.EnumLimit)
	if err != nil {
		out.err = err
		return out
	}
	cfg.Obs.Add(obs.CntCoOptimal, int64(len(arbs)))
	arbs = arborescence.MajorityVote(arbs)
	cfg.Obs.Add(obs.CntArbsKept, int64(len(arbs)))
	out.fr.Weight = w
	out.fr.Truncated = truncated
	for _, a := range arbs {
		pm := map[uint64]uint64{}
		for i, t := range fam {
			if p := a[i+1]; p > 0 {
				pm[t] = fam[p-1]
			}
		}
		out.fr.Arbs = append(out.fr.Arbs, pm)
	}
	return out
}

// recordProvider folds one provider invocation's wall/alloc deltas into
// the per-provider aggregate. Families score concurrently, so under
// parallelism the process-wide allocation gauges attribute estimates,
// not exact per-provider measurements — the same caveat as the stage
// records themselves.
func (r *Result) recordProvider(i int, wall time.Duration, bytes0, objs0 uint64) {
	bytes1, objs1 := obs.AllocSample()
	r.provMu.Lock()
	st := &r.provStats[i]
	st.wall += wall
	if bytes1 > bytes0 {
		st.allocBytes += bytes1 - bytes0
	}
	if objs1 > objs0 {
		st.allocs += objs1 - objs0
	}
	st.families++
	r.provMu.Unlock()
}

// recordProviderStages emits one aggregate stage row per evidence
// provider after the family fan-out: Name "evidence:<provider>" in the
// hierarchy section, with Count carrying how many families the provider
// scored. The rows flow through obs.Report.Merge like any stage, so
// rockd's /metrics rollup attributes fleet-level per-provider cost.
func (r *Result) recordProviderStages(cfg Config) {
	if cfg.Obs == nil {
		return
	}
	for i, p := range r.providers {
		st := r.provStats[i]
		cfg.Obs.StageRecord(obs.StageStats{
			Name:       "evidence:" + p.Name(),
			Section:    pipeline.SecHierarchy.Tag(),
			Status:     obs.StageRan,
			Wall:       st.wall,
			AllocBytes: st.allocBytes,
			Allocs:     st.allocs,
			Count:      st.families,
		})
	}
}

// chooseMultiParents implements §5.3: a type whose instances received X
// vtable installs has X parents; the primary parent comes from the
// arborescence and the remaining slots are filled with the next most likely
// candidates by distance.
func (r *Result) chooseMultiParents() {
	r.MultiParents = map[uint64][]uint64{}
	// Secondary subobject vtables are synthetic types: they carry evidence
	// (their neighbors in the forest are the type's additional ancestors)
	// but are never themselves reported as parents.
	isSecondary := map[uint64]bool{}
	for _, secs := range r.Structural.SecondaryInstalls {
		for _, s := range secs {
			isSecondary[s] = true
		}
	}
	// resolve walks up from t to the nearest non-secondary proper ancestor.
	resolve := func(t uint64) (uint64, bool) {
		for {
			p, ok := r.Hierarchy.Parent(t)
			if !ok {
				return 0, false
			}
			if !isSecondary[p] {
				return p, true
			}
			t = p
		}
	}
	for t, secs := range r.Structural.SecondaryInstalls {
		want := 1 + len(secs)
		var parents []uint64
		add := func(p uint64) {
			if p == t || isSecondary[p] {
				return
			}
			for _, q := range parents {
				if q == p {
					return
				}
			}
			parents = append(parents, p)
		}
		if p, ok := resolve(t); ok {
			add(p)
		}
		// Each secondary subobject table sits next to the base it was
		// copied from; its resolved ancestor is one of t's parents.
		for _, s := range secs {
			if sp, ok := resolve(s); ok {
				add(sp)
			}
		}
		// Fill any remaining slots with the most likely candidates by
		// distance (§5.3: "we will choose the X most likely parents").
		type cand struct {
			p uint64
			d float64
		}
		var cands []cand
		for _, p := range r.Structural.PossibleParents[t] {
			cands = append(cands, cand{p, r.Dist[[2]uint64{p, t}]})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d != cands[j].d {
				return cands[i].d < cands[j].d
			}
			return cands[i].p < cands[j].p
		})
		for _, c := range cands {
			if len(parents) >= want {
				break
			}
			add(c.p)
		}
		if len(parents) > 1 {
			r.MultiParents[t] = parents
		}
	}
}

// WithoutSLMSuccessors returns the successor sets implied by the structural
// possibleParent relation alone (the §6.4 "Without SLMs" column).
func (r *Result) WithoutSLMSuccessors() map[uint64]map[uint64]bool {
	var types []uint64
	for _, v := range r.VTables {
		types = append(types, v.Addr)
	}
	return hierarchy.PossibleParentSuccessors(r.Structural.PossibleParents, types)
}
