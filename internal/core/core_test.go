package core

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpp"
	"repro/internal/image"
	"repro/internal/slm"
)

// motivating builds the §2 example: Stream with ConfirmableStream and
// FlushableStream children, plus the useX driver functions of Fig. 3.
func motivating() *cpp.Program {
	send := cpp.VCall{Obj: "s", Method: "send", Args: []cpp.Arg{cpp.Scalar()}}
	confirm := cpp.VCall{Obj: "s", Method: "confirm"}
	flush := cpp.VCall{Obj: "s", Method: "flush"}
	closeC := cpp.VCall{Obj: "s", Method: "close"}
	return &cpp.Program{
		Name: "motivating",
		Classes: []*cpp.Class{
			{Name: "Stream", Methods: []*cpp.Method{
				{Name: "send", Virtual: true},
			}},
			{Name: "ConfirmableStream", Bases: []string{"Stream"}, Methods: []*cpp.Method{
				{Name: "confirm", Virtual: true},
			}},
			{Name: "FlushableStream", Bases: []string{"Stream"}, Methods: []*cpp.Method{
				{Name: "flush", Virtual: true},
				{Name: "close", Virtual: true},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "useStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "Stream"},
				send, send, send,
			}},
			{Name: "useConfirmableStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "ConfirmableStream"},
				send, confirm, send, confirm, send, confirm,
			}},
			{Name: "useFlushableStream", Body: []cpp.Stmt{
				cpp.New{Dst: "s", Class: "FlushableStream"},
				send, send, send, flush, closeC,
			}},
		},
	}
}

// buildStripped compiles and returns the stripped image plus metadata.
func buildStripped(t *testing.T, p *cpp.Program, opts compiler.Options) (*image.Image, *image.Metadata) {
	t.Helper()
	img, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return img.Strip(), img.Meta
}

func vtOf(t *testing.T, meta *image.Metadata, name string) uint64 {
	t.Helper()
	tm := meta.TypeByName(name)
	if tm == nil {
		t.Fatalf("no emitted type %q", name)
	}
	return tm.VTable
}

func TestMotivatingExamplePipeline(t *testing.T) {
	img, meta := buildStripped(t, motivating(), compiler.DefaultOptions())
	res, err := Analyze(img, DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if got := len(res.VTables); got != 3 {
		t.Fatalf("discovered %d vtables, want 3", got)
	}
	if got := len(res.Structural.Families); got != 1 {
		t.Fatalf("got %d families, want 1: %v", got, res.Structural.Families)
	}

	stream := vtOf(t, meta, "Stream")
	conf := vtOf(t, meta, "ConfirmableStream")
	flu := vtOf(t, meta, "FlushableStream")

	// Structural phase II: Stream has no candidates (everything is larger),
	// ConfirmableStream's only candidate is Stream, FlushableStream keeps
	// both.
	if got := res.Structural.PossibleParents[stream]; len(got) != 0 {
		t.Errorf("Stream candidates = %v, want none", got)
	}
	if got := res.Structural.PossibleParents[conf]; len(got) != 1 || got[0] != stream {
		t.Errorf("ConfirmableStream candidates = %v, want [Stream]", got)
	}
	if got := res.Structural.PossibleParents[flu]; len(got) != 2 {
		t.Errorf("FlushableStream candidates = %v, want two", got)
	}

	// §2: D(SLM(Stream)||SLM(Flushable)) < D(SLM(Confirmable)||SLM(Flushable)),
	// so Stream is the more likely parent of FlushableStream.
	dSF := res.Dist[[2]uint64{stream, flu}]
	dCF := res.Dist[[2]uint64{conf, flu}]
	if !(dSF < dCF) {
		t.Errorf("DKL(Stream||Flushable)=%v not < DKL(Confirmable||Flushable)=%v", dSF, dCF)
	}

	// Reconstructed hierarchy matches Fig. 4 / Fig. 6a.
	if p, ok := res.Hierarchy.Parent(conf); !ok || p != stream {
		t.Errorf("parent(ConfirmableStream) = %v,%v; want Stream", p, ok)
	}
	if p, ok := res.Hierarchy.Parent(flu); !ok || p != stream {
		t.Errorf("parent(FlushableStream) = %v,%v; want Stream", p, ok)
	}
	if _, ok := res.Hierarchy.Parent(stream); ok {
		t.Errorf("Stream should be a root")
	}
}

// TestFrozenModelsMatchBuilders: the pipeline freezes every trained SLM
// and the distance sweep runs over the frozen forms; the two
// representations must agree bit for bit on the tracelets the pipeline
// actually scores, and every discovered type must carry both.
func TestFrozenModelsMatchBuilders(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	res, err := Analyze(img, DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	idx := res.symIndex()
	for _, v := range res.VTables {
		m, f := res.Models[v.Addr], res.Frozen[v.Addr]
		if m == nil || f == nil {
			t.Fatalf("type 0x%x: missing model (%v) or frozen form (%v)", v.Addr, m, f)
		}
		q := f.NewQuerier()
		for _, other := range res.VTables {
			for _, tl := range res.Tracelets.PerType[other.Addr] {
				w := encode(idx, tl)
				got, want := q.LogProbSeq(w), m.LogProbSeq(w)
				if got != want {
					t.Fatalf("type 0x%x, word %v: frozen %v != builder %v", v.Addr, w, got, want)
				}
			}
		}
	}
}

func TestMotivatingStructuralCuesPreserved(t *testing.T) {
	// With parent-constructor calls preserved (debug-friendly build), the
	// structural analysis alone resolves the hierarchy via rule 3.
	img, meta := buildStripped(t, motivating(), compiler.DebugFriendlyOptions())
	res, err := Analyze(img, DefaultConfig())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	stream := vtOf(t, meta, "Stream")
	conf := vtOf(t, meta, "ConfirmableStream")
	flu := vtOf(t, meta, "FlushableStream")
	if got := res.Structural.DefinitiveParent[conf]; got != stream {
		t.Errorf("definitive parent of Confirmable = 0x%x, want Stream 0x%x", got, stream)
	}
	if got := res.Structural.DefinitiveParent[flu]; got != stream {
		t.Errorf("definitive parent of Flushable = 0x%x, want Stream 0x%x", got, stream)
	}
	if !res.Structural.Resolvable() {
		t.Errorf("expected structurally resolvable benchmark")
	}
	if p, ok := res.Hierarchy.Parent(flu); !ok || p != stream {
		t.Errorf("parent(FlushableStream) = %v,%v; want Stream", p, ok)
	}
}

func TestWithoutSLMSuccessors(t *testing.T) {
	img, meta := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.UseSLM = false
	res, err := Analyze(img, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	stream := vtOf(t, meta, "Stream")
	conf := vtOf(t, meta, "ConfirmableStream")
	flu := vtOf(t, meta, "FlushableStream")
	succ := res.WithoutSLMSuccessors()
	// Without SLMs, Flushable counts as successor of both Stream and
	// Confirmable (its two possible parents).
	if !succ[stream][flu] || !succ[stream][conf] {
		t.Errorf("Stream successors = %v, want both children", succ[stream])
	}
	if !succ[conf][flu] {
		t.Errorf("Confirmable successors = %v, want Flushable included", succ[conf])
	}
	if res.Hierarchy != nil {
		t.Errorf("without SLMs no hierarchy should be constructed")
	}
}

func TestMultipleInheritanceParents(t *testing.T) {
	prog := &cpp.Program{
		Name: "mi",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "ax"}}, Methods: []*cpp.Method{{Name: "am", Virtual: true}}},
			{Name: "B", Fields: []cpp.Field{{Name: "bx"}}, Methods: []*cpp.Method{{Name: "bm", Virtual: true}}},
			{Name: "C", Bases: []string{"A", "B"}, Methods: []*cpp.Method{{Name: "cm", Virtual: true}}},
		},
		Funcs: []*cpp.Func{
			{Name: "ua", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}, cpp.VCall{Obj: "o", Method: "am"}}},
			{Name: "ub", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}, cpp.VCall{Obj: "o", Method: "bm"}}},
			{Name: "uc", Body: []cpp.Stmt{
				cpp.New{Dst: "o", Class: "C"},
				cpp.VCall{Obj: "o", Method: "am"},
				cpp.VCall{Obj: "o", Method: "cm"},
			}},
		},
	}
	img, meta := buildStripped(t, prog, compiler.DefaultOptions())
	res, err := Analyze(img, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := meta.TypeByName("C").VTable
	parents := res.MultiParents[c]
	if len(parents) != 2 {
		t.Fatalf("C has %d parents (%v), want 2 (§5.3: one per observed vtable install)", len(parents), parents)
	}
	a := meta.TypeByName("A").VTable
	b := meta.TypeByName("B").VTable
	got := map[uint64]bool{parents[0]: true, parents[1]: true}
	if !got[a] || !got[b] {
		t.Errorf("C parents = %v, want {A,B} = {%#x,%#x}", parents, a, b)
	}
}

func TestAnalyzeRefusesMetadata(t *testing.T) {
	img, err := compiler.Compile(motivating(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(img, DefaultConfig()); err == nil {
		t.Fatal("non-stripped image accepted: ground truth could leak into the analysis")
	}
}

func TestDistanceMetricAlternatives(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	for _, m := range []slm.Metric{slm.MetricJSDivergence, slm.MetricJSDistance} {
		cfg := DefaultConfig()
		cfg.Metric = m
		if _, err := Analyze(img, cfg); err != nil {
			t.Errorf("metric %v: %v", m, err)
		}
	}
}
