package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/evidence"
	"repro/internal/evidence/slmkl"
	"repro/internal/evidence/subtype"
	"repro/internal/obs"
)

// evidenceNames resolves the enabled provider set: cfg.Evidence, or the
// paper's SLM-only default when unset.
func (c Config) evidenceNames() []string {
	if len(c.Evidence) == 0 {
		return []string{evidence.NameSLM}
	}
	return c.Evidence
}

// hasSLM reports whether the SLM provider is enabled — the gate for
// building family word sets and scorer tables.
func (c Config) hasSLM() bool {
	for _, n := range c.evidenceNames() {
		if n == evidence.NameSLM {
			return true
		}
	}
	return false
}

// fuseWeight resolves one provider's fusion weight: the explicit
// FuseWeights entry, or the provider's default (slm: 1, subtype:
// subtype.DefaultWeight).
func (c Config) fuseWeight(name string) float64 {
	if w, ok := c.FuseWeights[name]; ok {
		return w
	}
	switch name {
	case evidence.NameSubtype:
		return subtype.DefaultWeight
	default:
		return 1
	}
}

// evidenceDefault reports whether the evidence configuration is the
// paper's default — the SLM provider alone at weight 1. Only non-default
// configurations mark the hierarchy fingerprint, so the default keeps
// the legacy canon bytes and pre-refactor snapshots stay valid.
func (c Config) evidenceDefault() bool {
	names := c.evidenceNames()
	return len(names) == 1 && names[0] == evidence.NameSLM && c.fuseWeight(evidence.NameSLM) == 1
}

// evidenceCanon renders the non-default evidence configuration for the
// hierarchy-section fingerprint: each provider with its resolved fusion
// weight, plus the behavioral term weights of config-bearing providers.
func (c Config) evidenceCanon() string {
	parts := make([]string, 0, len(c.evidenceNames()))
	for _, name := range c.evidenceNames() {
		p := fmt.Sprintf("%s:%.17g", name, c.fuseWeight(name))
		if name == evidence.NameSubtype {
			p += subtype.DefaultConfig().Canon()
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

// validateEvidence rejects inconsistent evidence configurations up
// front, before any stage runs or a snapshot key is derived.
func (c Config) validateEvidence() error {
	names := c.evidenceNames()
	seen := map[string]bool{}
	for _, n := range names {
		if !evidence.Known(n) {
			return fmt.Errorf("core: unknown evidence provider %q (want %s)",
				n, strings.Join(evidence.KnownNames(), ", "))
		}
		if seen[n] {
			return fmt.Errorf("core: evidence provider %q enabled twice", n)
		}
		seen[n] = true
	}
	weightNames := make([]string, 0, len(c.FuseWeights))
	for n := range c.FuseWeights {
		weightNames = append(weightNames, n)
	}
	sort.Strings(weightNames)
	for _, n := range weightNames {
		if !seen[n] {
			return fmt.Errorf("core: fusion weight names provider %q, which is not enabled (enabled: %s)",
				n, strings.Join(names, ", "))
		}
		w := c.FuseWeights[n]
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return fmt.Errorf("core: fusion weight for %q must be finite and non-negative, got %v", n, w)
		}
	}
	nonzero := false
	for _, n := range names {
		if c.fuseWeight(n) != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		return fmt.Errorf("core: every fusion weight is zero — no evidence would reach the solve")
	}
	if c.DenseDist && !c.evidenceDefault() {
		return fmt.Errorf("core: dense reporting mode supports the default slm evidence configuration only")
	}
	return nil
}

// buildEvidence is the evidence stage body: construct the enabled
// providers and their fusion weights, in configuration order. The SLM
// provider is a stateless adapter around the divergence sweep; the
// subtype provider indexes the structural observations here, once per
// analysis, on the shared pool.
func (r *Result) buildEvidence(ctx context.Context, cfg Config) error {
	names := cfg.evidenceNames()
	r.providers = make([]evidence.Provider, 0, len(names))
	r.provWeights = make([]float64, 0, len(names))
	for _, name := range names {
		switch name {
		case evidence.NameSLM:
			r.providers = append(r.providers, slmkl.New(slmkl.Config{
				Metric:           cfg.Metric,
				RootWeightFactor: cfg.RootWeightFactor,
				Dense:            cfg.DenseDist,
				Workers:          cfg.Workers,
				Pool:             cfg.Pool,
				Scratch:          cfg.Scratch,
				Obs:              cfg.Obs,
			}))
		case evidence.NameSubtype:
			p, err := subtype.New(ctx, subtype.DefaultConfig(), subtype.Image{
				VTables:     r.VTables,
				Purecall:    r.Structural.Purecall,
				Structs:     r.Tracelets.Structs,
				InstallerOf: r.Structural.InstallerOf,
				FnVTables:   r.Tracelets.FnVTables,
			}, cfg.Workers, cfg.Pool)
			if err != nil {
				return fmt.Errorf("core: building subtype evidence index: %w", err)
			}
			r.providers = append(r.providers, p)
		}
		r.provWeights = append(r.provWeights, cfg.fuseWeight(name))
	}
	r.provStats = make([]provStat, len(r.providers))
	cfg.Obs.Add(obs.CntEvidenceProviders, int64(len(r.providers)))
	return nil
}
