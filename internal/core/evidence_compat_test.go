package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compiler"
	"repro/internal/snapshot"
)

// cacheFile returns the single snapshot path under dir.
func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %d entries, err %v", len(entries), err)
	}
	return filepath.Join(dir, entries[0].Name())
}

// TestEvidenceSnapshotCompat proves that snapshots written before the
// evidence-provider refactor stay valid: a default SLM-only run today
// writes the same key bytes the pre-refactor core did (pinned by
// TestFingerprintCompat), so re-encoding today's snapshot under both
// surviving format versions stands in for a pre-refactor cache file.
// Both must still validate and warm-restore the whole pipeline under the
// default configuration, while enabling the subtype provider must NOT
// claim the cached hierarchy section — its canon is different — yet
// still salvage the extraction and model sections.
func TestEvidenceSnapshotCompat(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := analyzeCached(t, img, cfg)
	path := cacheFile(t, cfg.CacheDir)

	for _, version := range []uint32{2, 3} {
		snap, err := snapshot.Load(path)
		if err != nil {
			t.Fatalf("loading written snapshot: %v", err)
		}
		data, err := snap.EncodeVersion(version)
		if err != nil {
			t.Fatalf("re-encoding at version %d: %v", version, err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		warm := analyzeCached(t, img, cfg)
		if warm.SnapshotReuse != snapshot.LevelHierarchy {
			t.Fatalf("version-%d snapshot reused level %d, want full hierarchy restore",
				version, warm.SnapshotReuse)
		}
		assertResultsEqual(t, "pre-refactor snapshot warm restore", cold, warm)
	}

	// A fused configuration must key its hierarchy section apart from the
	// cached SLM-only one (different Dist/edge payload) but still reuse
	// the evidence-independent extraction and model sections.
	fusedCfg := cfg
	fusedCfg.Evidence = []string{"slm", "subtype"}
	fused := analyzeCached(t, img, fusedCfg)
	if fused.SnapshotReuse != snapshot.LevelModels {
		t.Fatalf("fused config reused level %d, want exactly the model sections", fused.SnapshotReuse)
	}
	// The fused run overwrote the per-image slot under its own key; it
	// must warm-restore fully on the next fused run, while the default
	// configuration now sees a foreign hierarchy section and falls back
	// to the shared model sections — the two canons never cross-restore.
	if rewarm := analyzeCached(t, img, fusedCfg); rewarm.SnapshotReuse != snapshot.LevelHierarchy {
		t.Errorf("fused config did not warm-restore from its own snapshot: level %d", rewarm.SnapshotReuse)
	}
	if back := analyzeCached(t, img, cfg); back.SnapshotReuse != snapshot.LevelModels {
		t.Errorf("default config reused level %d from a fused snapshot, want exactly the model sections", back.SnapshotReuse)
	}
}
