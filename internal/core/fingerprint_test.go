package core

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/snapshot"
)

// TestFingerprintCompat pins the graph-derived snapshot fingerprints to
// the legacy hand-maintained scheme (one fingerprint per section, hashing
// "tag|canon" with the canon laid out exactly as the pre-pipeline core
// formatted it). Existing .rsnap caches were written under those bytes;
// any divergence silently invalidates every user's cache, so this test
// recomputes the legacy bytes from scratch and compares.
func TestFingerprintCompat(t *testing.T) {
	legacy := func(stage, canon string) [32]byte {
		return sha256.Sum256([]byte(stage + "|" + canon))
	}
	check := func(name string, cfg Config) {
		t.Helper()
		cfg = cfg.withDefaults()
		fps := cfg.graph(nil).Fingerprints()
		tr := cfg.Trace.WithDefaults()
		want := [pipeline.NumSections][32]byte{
			pipeline.SecExtraction: legacy("extract", fmt.Sprintf(
				"paths=%d steps=%d unroll=%d window=%d tracelen=%d structural=%v,%v,%v,%v,%v",
				tr.MaxPaths, tr.MaxSteps, tr.MaxUnroll, tr.Window, tr.MaxTraceLen,
				cfg.Structural.DisableSharedSlots, cfg.Structural.DisableInstanceInstalls,
				cfg.Structural.DisableCtorCalls, cfg.Structural.DisableSizeRule,
				cfg.Structural.DisablePurecallRule)),
			pipeline.SecModels: legacy("model", fmt.Sprintf("depth=%d", cfg.SLMDepth)),
			pipeline.SecHierarchy: legacy("hier", fmt.Sprintf(
				"metric=%d rootw=%.17g enumlimit=%d enumeps=%.17g",
				cfg.Metric, cfg.RootWeightFactor, cfg.EnumLimit, cfg.EnumEps)),
		}
		for sec := pipeline.Section(0); sec < pipeline.NumSections; sec++ {
			if fps[sec] != want[sec] {
				t.Errorf("%s: %s fingerprint diverged from the legacy scheme", name, sec.Tag())
			}
		}
	}

	// The legacy bytes belong to the dense sweep — every pre-sparse
	// snapshot was written by it, and DenseDist must keep reusing them.
	dense := DefaultConfig()
	dense.DenseDist = true
	check("default+dense", dense)

	ablated := DefaultConfig()
	ablated.DenseDist = true
	ablated.SLMDepth = 3
	ablated.Structural.DisableCtorCalls = true
	ablated.Trace.MaxPaths = 7
	ablated.EnumLimit = 5
	ablated.RootWeightFactor = 2.5
	check("ablated+dense", ablated)

	// The default sparse sweep persists a different Dist payload, so its
	// hierarchy section is fingerprinted apart from the legacy bytes —
	// with a pinned marker — while extraction and models stay shared with
	// dense-mode (and pre-sparse) snapshots.
	sparse := DefaultConfig().withDefaults()
	sfps := sparse.graph(nil).Fingerprints()
	dfps := dense.withDefaults().graph(nil).Fingerprints()
	if sfps[pipeline.SecExtraction] != dfps[pipeline.SecExtraction] || sfps[pipeline.SecModels] != dfps[pipeline.SecModels] {
		t.Error("sparse sweep changed the extraction/models fingerprints; pre-sparse snapshots lost staged reuse")
	}
	wantSparse := legacy("hier", fmt.Sprintf(
		"metric=%d rootw=%.17g enumlimit=%d enumeps=%.17g sweep=sparse",
		sparse.Metric, sparse.RootWeightFactor, sparse.EnumLimit, sparse.EnumEps))
	if sfps[pipeline.SecHierarchy] != wantSparse {
		t.Error("sparse hierarchy fingerprint diverged from the pinned sweep=sparse canon")
	}
	if sfps[pipeline.SecHierarchy] == dfps[pipeline.SecHierarchy] {
		t.Error("sparse and dense sweeps share a hierarchy fingerprint; stale Dist payloads would cross modes")
	}

	// Workers, Pool, and the observer must not influence the key.
	a := DefaultConfig().withDefaults()
	b := a
	b.Workers = 17
	b.Obs = obs.NewBus()
	if a.graph(nil).Fingerprints() != b.graph(nil).Fingerprints() {
		t.Error("workers/observer leaked into the snapshot fingerprints")
	}
}

// TestEvidenceFingerprints pins the fingerprint model of the evidence
// layer: spelling out the default provider set must not change any
// bytes, enabling the subtype provider must re-key the hierarchy section
// alone (the model and extraction sections are evidence-independent),
// and the fusion weights must be part of that key.
func TestEvidenceFingerprints(t *testing.T) {
	def := DefaultConfig().withDefaults().graph(nil).Fingerprints()

	explicit := DefaultConfig()
	explicit.Evidence = []string{"slm"}
	explicit.FuseWeights = map[string]float64{"slm": 1}
	if explicit.withDefaults().graph(nil).Fingerprints() != def {
		t.Error("spelling out the default evidence configuration changed the snapshot fingerprints")
	}

	fused := DefaultConfig()
	fused.Evidence = []string{"slm", "subtype"}
	ffps := fused.withDefaults().graph(nil).Fingerprints()
	if ffps[pipeline.SecExtraction] != def[pipeline.SecExtraction] || ffps[pipeline.SecModels] != def[pipeline.SecModels] {
		t.Error("enabling the subtype provider re-keyed the extraction/models sections; staged reuse lost")
	}
	if ffps[pipeline.SecHierarchy] == def[pipeline.SecHierarchy] {
		t.Error("fused and SLM-only configs share a hierarchy fingerprint; stale edge payloads would cross modes")
	}

	reweighted := fused
	reweighted.FuseWeights = map[string]float64{"subtype": 2}
	rfps := reweighted.withDefaults().graph(nil).Fingerprints()
	if rfps[pipeline.SecHierarchy] == ffps[pipeline.SecHierarchy] {
		t.Error("changing a fusion weight did not change the hierarchy fingerprint")
	}
	if rfps[pipeline.SecExtraction] != def[pipeline.SecExtraction] || rfps[pipeline.SecModels] != def[pipeline.SecModels] {
		t.Error("fusion weights leaked into the extraction/models fingerprints")
	}
}

// TestGraphLevels pins the section→reuse-level correspondence the driver
// relies on when skipping restored stages.
func TestGraphLevels(t *testing.T) {
	g := DefaultConfig().withDefaults().graph(nil)
	for _, st := range g.Stages() {
		if st.Section.Level() < snapshot.LevelExtraction || st.Section.Level() > snapshot.LevelHierarchy {
			t.Errorf("stage %s: section level %d outside the snapshot reuse range", st.Name, st.Section.Level())
		}
	}
}
