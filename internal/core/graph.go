package core

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/snapshot"
	"repro/internal/structural"
	"repro/internal/vtable"
)

// behavioral marks the stages that exist only for the full (UseSLM)
// analysis; under StructuralOnly they are reported as disabled.
var behavioral = map[string]bool{
	"alphabet": true, "train": true, "evidence": true, "hierarchy": true, "multiparents": true,
}

// graph builds the pipeline stage graph for this configuration — the §4
// chain as typed stages with declared artifacts, snapshot sections, and
// canonical config renderings. The graph is the single source of truth
// for the snapshot fingerprints: spec-only graphs (res == nil) carry no
// Run hooks and exist just to derive keys (snapshotKey, ProbeSnapshot);
// with a Result the stages are bound to that one analysis.
//
// The canon strings are load-bearing: section fingerprints hash them, so
// any change invalidates every existing snapshot. cfg must already have
// defaults resolved (withDefaults).
func (c Config) graph(res *Result) *pipeline.Graph {
	tr := c.Trace.WithDefaults()
	bus := c.Obs
	bind := func(f func(ctx context.Context) error) func(ctx context.Context) error {
		if res == nil {
			return nil
		}
		return f
	}
	g, err := pipeline.New(
		[]pipeline.Artifact{pipeline.ArtImage},
		pipeline.Stage{
			Name:    "disasm",
			Section: pipeline.SecExtraction,
			Inputs:  []pipeline.Artifact{pipeline.ArtImage},
			Outputs: []pipeline.Artifact{pipeline.ArtFuncs},
			Run: bind(func(ctx context.Context) error {
				fns, err := disasm.All(res.Image)
				if err != nil {
					return fmt.Errorf("core: disassembly failed: %w", err)
				}
				res.Funcs = fns
				return nil
			}),
		},
		pipeline.Stage{
			Name:    "vtables",
			Section: pipeline.SecExtraction,
			Inputs:  []pipeline.Artifact{pipeline.ArtImage, pipeline.ArtFuncs},
			Outputs: []pipeline.Artifact{pipeline.ArtVTables},
			Run: bind(func(ctx context.Context) error {
				res.VTables = vtable.Discover(res.Image, res.Funcs)
				bus.Add(obs.CntVTables, int64(len(res.VTables)))
				return nil
			}),
		},
		pipeline.Stage{
			Name:    "tracelets",
			Section: pipeline.SecExtraction,
			Inputs:  []pipeline.Artifact{pipeline.ArtImage, pipeline.ArtFuncs, pipeline.ArtVTables},
			Outputs: []pipeline.Artifact{pipeline.ArtTracelets},
			Canon: fmt.Sprintf("paths=%d steps=%d unroll=%d window=%d tracelen=%d",
				tr.MaxPaths, tr.MaxSteps, tr.MaxUnroll, tr.Window, tr.MaxTraceLen),
			Run: bind(func(ctx context.Context) error {
				if err := res.extractTracelets(ctx, c); err != nil {
					return err
				}
				for _, seqs := range res.Tracelets.PerType {
					bus.Add(obs.CntTracelets, int64(len(seqs)))
				}
				for _, seqs := range res.Tracelets.RawPerType {
					bus.Add(obs.CntRawTracelets, int64(len(seqs)))
				}
				return nil
			}),
		},
		pipeline.Stage{
			Name:    "structural",
			Section: pipeline.SecExtraction,
			Inputs:  []pipeline.Artifact{pipeline.ArtImage, pipeline.ArtFuncs, pipeline.ArtVTables, pipeline.ArtTracelets},
			Outputs: []pipeline.Artifact{pipeline.ArtStructural},
			Canon: fmt.Sprintf("structural=%v,%v,%v,%v,%v",
				c.Structural.DisableSharedSlots, c.Structural.DisableInstanceInstalls,
				c.Structural.DisableCtorCalls, c.Structural.DisableSizeRule,
				c.Structural.DisablePurecallRule),
			Run: bind(func(ctx context.Context) error {
				res.Structural = structural.Analyze(res.Image, res.Funcs, res.VTables, res.Tracelets, c.Structural)
				countStructural(bus, res.Structural)
				return nil
			}),
		},
		pipeline.Stage{
			Name:    "alphabet",
			Section: pipeline.SecExtraction,
			Inputs:  []pipeline.Artifact{pipeline.ArtVTables, pipeline.ArtTracelets},
			Outputs: []pipeline.Artifact{pipeline.ArtAlphabet},
			Run: bind(func(ctx context.Context) error {
				res.internAlphabet()
				bus.Add(obs.CntAlphabet, int64(len(res.Alphabet)))
				return nil
			}),
		},
		pipeline.Stage{
			Name:    "train",
			Section: pipeline.SecModels,
			Inputs:  []pipeline.Artifact{pipeline.ArtVTables, pipeline.ArtTracelets, pipeline.ArtAlphabet},
			Outputs: []pipeline.Artifact{pipeline.ArtModels, pipeline.ArtFrozen},
			Canon:   fmt.Sprintf("depth=%d", c.SLMDepth),
			Run: bind(func(ctx context.Context) error {
				if err := res.trainModels(ctx, c); err != nil {
					return err
				}
				bus.Add(obs.CntModels, int64(len(res.Frozen)))
				return nil
			}),
		},
		pipeline.Stage{
			// The evidence stage constructs the scoring backends the
			// hierarchy stage fuses (internal/evidence): provider choice is
			// part of the hierarchy section's behavior, so the stage sits in
			// SecHierarchy, but it carries no canon of its own — the
			// configuration is fingerprinted by hierarchyCanon, which keeps
			// the default (SLM-only) configuration's bytes identical to the
			// pre-provider pipeline and existing snapshots valid.
			Name:    "evidence",
			Section: pipeline.SecHierarchy,
			Inputs:  []pipeline.Artifact{pipeline.ArtVTables, pipeline.ArtTracelets, pipeline.ArtStructural, pipeline.ArtFrozen},
			Outputs: []pipeline.Artifact{pipeline.ArtEvidence},
			Run: bind(func(ctx context.Context) error {
				return res.buildEvidence(ctx, c)
			}),
		},
		pipeline.Stage{
			Name:    "hierarchy",
			Section: pipeline.SecHierarchy,
			Inputs:  []pipeline.Artifact{pipeline.ArtVTables, pipeline.ArtStructural, pipeline.ArtAlphabet, pipeline.ArtFrozen, pipeline.ArtEvidence},
			Outputs: []pipeline.Artifact{pipeline.ArtDist, pipeline.ArtFamilies, pipeline.ArtHierarchy},
			Canon:   c.hierarchyCanon(),
			Run: bind(func(ctx context.Context) error {
				return res.buildHierarchy(ctx, c)
			}),
		},
		pipeline.Stage{
			Name:    "multiparents",
			Section: pipeline.SecHierarchy,
			Inputs:  []pipeline.Artifact{pipeline.ArtStructural, pipeline.ArtDist, pipeline.ArtHierarchy},
			Outputs: []pipeline.Artifact{pipeline.ArtMultiParents},
			Run: bind(func(ctx context.Context) error {
				res.chooseMultiParents()
				bus.Add(obs.CntMultiParents, int64(len(res.MultiParents)))
				return nil
			}),
		},
	)
	if err != nil {
		// The graph is a fixed chain; a dataflow error here is a
		// programming bug, not an input condition.
		panic(fmt.Sprintf("core: invalid pipeline graph: %v", err))
	}
	return g
}

// hierarchyCanon renders the hierarchy stage's fingerprinted
// configuration. Dense mode keeps the exact legacy bytes, so snapshots
// written before the sparse sweep existed stay fully reusable under
// DenseDist; the default sparse mode appends a marker because it changes
// the persisted payload (Result.Dist holds only admissible pairs) and the
// root-weight bound. A non-default evidence configuration (providers
// beyond the SLM sweep, or a non-unit SLM weight) appends a second
// marker; the default appends nothing, so pre-provider snapshots keep
// validating and warm-restoring under SLM-only configurations.
// Extraction and model sections are unaffected either way — evidence and
// sweep changes invalidate only the hierarchy section.
func (c Config) hierarchyCanon() string {
	canon := fmt.Sprintf("metric=%d rootw=%.17g enumlimit=%d enumeps=%.17g",
		c.Metric, c.RootWeightFactor, c.EnumLimit, c.EnumEps)
	if !c.DenseDist {
		canon += " sweep=sparse"
	}
	if !c.evidenceDefault() {
		canon += " evidence=" + c.evidenceCanon()
	}
	return canon
}

// countStructural records the structural stage's domain counters: the
// family partition, the surviving candidate edges, and how many ordered
// family-internal pairs the heuristics pruned.
func countStructural(bus *obs.Bus, sr *structural.Result) {
	if bus == nil {
		return
	}
	candidates := int64(0)
	for _, ps := range sr.PossibleParents {
		candidates += int64(len(ps))
	}
	pairs := int64(0)
	for _, fam := range sr.Families {
		n := int64(len(fam))
		pairs += n * (n - 1)
	}
	bus.Add(obs.CntFamilies, int64(len(sr.Families)))
	bus.Add(obs.CntCandidateEdges, candidates)
	bus.Add(obs.CntEdgesPruned, pairs-candidates)
}

// snapshotKey derives the cache key from the stage graph: the image
// content digest plus one fingerprint per pipeline section, each hashing
// exactly the configuration the section's stages depend on. Workers
// appears in no fingerprint — the pipeline's results are identical for
// every worker count.
func (c Config) snapshotKey(img *image.Image) snapshot.Key {
	return snapshot.Key{Digest: img.ContentDigest(), FPs: c.graph(nil).Fingerprints()}
}

// ProbeSnapshot predicts, without running anything, how much of a cached
// snapshot an AnalyzeContext(img, cfg) call could reuse, by reading only
// the snapshot file's header. It returns one of the snapshot reuse levels
// (snapshot.LevelNone .. LevelHierarchy). The probe is advisory — the
// analysis re-validates the full checksummed snapshot on load — but cheap
// enough for an admission scheduler to classify images as warm or cold
// before committing a worker slot.
func ProbeSnapshot(img *image.Image, cfg Config) int {
	if cfg.CacheDir == "" || !cfg.UseSLM {
		return snapshot.LevelNone
	}
	cfg = cfg.withDefaults()
	key := cfg.snapshotKey(img)
	onDisk, err := snapshot.ReadKey(filepath.Join(cfg.CacheDir, key.FileName()))
	if err != nil {
		return snapshot.LevelNone
	}
	return min(key.Usable(&snapshot.Snapshot{Key: onDisk}), cfg.Invalidate.maxLevel())
}

// AnalyzeContext is Analyze with cancellation: when ctx is canceled,
// every fan-out stops issuing new work, the in-flight units drain, and the
// analysis returns ctx.Err() promptly without writing a snapshot.
//
// It is the pipeline driver: consult the snapshot cache, restore every
// section the staged-validity chain covers, then execute the stage graph
// with the restored (and disabled) stages skipped, each remaining stage
// recorded on the observer bus.
func AnalyzeContext(ctx context.Context, img *image.Image, cfg Config) (*Result, error) {
	if img.Meta != nil {
		// The analysis must never see ground truth; insist on a stripped
		// image rather than silently ignoring the metadata.
		return nil, fmt.Errorf("core: refusing to analyze a non-stripped image (call Strip first)")
	}
	cfg = cfg.withDefaults()
	if cfg.UseSLM {
		if err := cfg.validateEvidence(); err != nil {
			return nil, err
		}
	}
	bus := cfg.Obs
	if bus != nil {
		// Only an observed run pays for the context plumbing; the nil-bus
		// path leaves ctx untouched.
		ctx = obs.WithBus(ctx, bus)
	}

	// Snapshot lookup: usable level = sections whose fingerprints match,
	// capped by the requested invalidation granularity. Any read or decode
	// failure is a cache miss.
	var snap *snapshot.Snapshot
	level := snapshot.LevelNone
	cachePath := ""
	var key snapshot.Key
	if cfg.CacheDir != "" && cfg.UseSLM {
		h := bus.StageStart("snapshot-load", "cache")
		key = cfg.snapshotKey(img)
		cachePath = filepath.Join(cfg.CacheDir, key.FileName())
		if s, err := snapshot.Load(cachePath); err == nil {
			snap = s
			level = min(key.Usable(s), cfg.Invalidate.maxLevel())
		}
		h.End(nil)
	}
	bus.SetSnapshotReuse(level)

	res := &Result{Image: img, SnapshotReuse: level}

	// Version-diff warm lane: on an exact miss, diff against the nearest
	// prior snapshot of the same image family so unchanged functions,
	// models, and families skip recomputation (see incremental.go). The
	// lane needs at least extraction-level reuse to be allowed.
	if cfg.UseSLM && level == snapshot.LevelNone &&
		cfg.Invalidate.maxLevel() >= snapshot.LevelExtraction &&
		(cfg.IncrementalFrom != "" || cfg.CacheDir != "") {
		h := bus.StageStart("snapshot-diff", "cache")
		if cachePath == "" {
			// No cache directory: the key wasn't derived above, but the
			// lane still needs it to grade the prior's fingerprints.
			key = cfg.snapshotKey(img)
		}
		prior, priorPath, err := res.findPrior(cfg, key)
		h.End(err)
		if err != nil {
			return nil, err
		}
		if prior != nil {
			res.incr = &incrState{prior: prior, key: key, maxLevel: cfg.Invalidate.maxLevel()}
			res.Incremental = &IncrementalStats{PriorPath: priorPath}
		}
	}

	// Restore every section the chain covers; the corresponding stages
	// are then skipped as cached. Funcs and Models stay nil on restored
	// sections (documented Result behavior): disassembly is skipped
	// entirely and the mutable builders are never persisted.
	if level >= snapshot.LevelExtraction {
		res.VTables = snap.VTables
		res.Tracelets = snap.Tracelets
		res.Structural = snap.Structural
		res.Alphabet = snap.Alphabet
		// The extraction never reran, so the prior function section (when
		// the file was v3) is still exact; carry it into any rewrite.
		res.fnSection = snap.Funcs
	}
	if level >= snapshot.LevelModels {
		res.Frozen = snap.Frozen
	}
	if level >= snapshot.LevelHierarchy {
		res.restoreHierarchy(snap)
	}

	status := func(st pipeline.Stage) obs.StageStatus {
		if !cfg.UseSLM && behavioral[st.Name] {
			return obs.StageOff
		}
		if level >= st.Section.Level() {
			return obs.StageCached
		}
		return obs.StageRan
	}
	if err := cfg.graph(res).Execute(ctx, bus, status); err != nil {
		return nil, err
	}

	if cachePath != "" && level < snapshot.LevelHierarchy {
		h := bus.StageStart("snapshot-write", "cache")
		err := res.writeSnapshot(cachePath, key)
		h.End(err)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}
