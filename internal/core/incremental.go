// Incremental re-analysis: the version-diff warm lane. When the exact
// snapshot misses (the image changed), the lane diffs the run against a
// prior version's snapshot — explicitly named (Config.IncrementalFrom) or
// auto-discovered in the cache directory by hashed module name — and
// reuses every artifact whose inputs provably did not change:
//
//	function bundles   reused when the function's content digest
//	                   (image.FunctionDigest) and the extraction context
//	                   digest (objtrace.ContextDigest) both match, under a
//	                   matching extraction fingerprint
//	frozen models      reused when the type's training-input digest
//	                   (TypeKey: alphabet size + the encoded tracelet
//	                   sequence) matches, additionally under a matching
//	                   models fingerprint
//	family solutions   restored verbatim when every member's TypeKey and
//	                   candidate-parent set match and the prior snapshot
//	                   holds every distance entry the current sweep mode
//	                   needs, additionally under a matching hierarchy
//	                   fingerprint
//
// Each gate certifies bit-equality of the reused artifact's inputs, so
// the lane never changes the Result — only how much of it is recomputed.
// The reuse cap from Config.Invalidate applies level by level, exactly as
// it does for whole-image snapshot reuse.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/objtrace"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// incrState carries the prior snapshot the lane diffs against, plus what
// the current run needs to grade its validity.
type incrState struct {
	prior    *snapshot.Snapshot
	key      snapshot.Key
	maxLevel int
}

// modelsOK reports whether prior frozen models may be adopted: the models
// fingerprint must match and the invalidation cap must allow model reuse.
// (The extraction fingerprint already matched at discovery.)
func (st *incrState) modelsOK() bool {
	return st.maxLevel >= snapshot.LevelModels &&
		st.prior.Key.FPs[pipeline.SecModels] == st.key.FPs[pipeline.SecModels]
}

// hierarchyOK reports whether prior family solutions may be restored.
func (st *incrState) hierarchyOK() bool {
	return st.modelsOK() && st.maxLevel >= snapshot.LevelHierarchy &&
		st.prior.Key.FPs[pipeline.SecHierarchy] == st.key.FPs[pipeline.SecHierarchy]
}

// priorUsable is the lane's engagement gate: the prior must carry a
// function-granular section (v2 files never do — they silently degrade to
// a cold run) and its extraction fingerprint must match the current
// configuration.
func priorUsable(s *snapshot.Snapshot, key snapshot.Key) bool {
	return s.Funcs != nil && s.Key.FPs[pipeline.SecExtraction] == key.FPs[pipeline.SecExtraction]
}

// findPrior locates the snapshot to diff against. An explicit
// IncrementalFrom that cannot be loaded is an error (the caller asked for
// a specific file); one that loads but is unusable degrades to nil (cold).
// Auto-discovery scans the cache directory's headers for prior versions
// of the same image family — same hashed name, same extraction
// fingerprint, different content digest — and picks the candidate whose
// function-digest table overlaps the current image most (ties go to the
// lexicographically first file; os.ReadDir returns sorted names).
func (r *Result) findPrior(cfg Config, key snapshot.Key) (*snapshot.Snapshot, string, error) {
	if cfg.IncrementalFrom != "" {
		s, err := snapshot.Load(cfg.IncrementalFrom)
		if err != nil {
			return nil, "", fmt.Errorf("core: incremental-from %s: %w", cfg.IncrementalFrom, err)
		}
		if !priorUsable(s, key) {
			return nil, "", nil
		}
		return s, cfg.IncrementalFrom, nil
	}
	if cfg.CacheDir == "" {
		return nil, "", nil
	}
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil {
		return nil, "", nil
	}
	nameHash := snapshot.HashName(r.Image.Name)
	cur := make(map[[32]byte]bool, len(r.Image.Entries))
	for _, d := range r.functionDigests() {
		cur[d] = true
	}
	var best *snapshot.Snapshot
	bestPath, bestOverlap := "", -1
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rsnap") {
			continue
		}
		p := filepath.Join(cfg.CacheDir, e.Name())
		h, err := snapshot.ReadHeader(p)
		if err != nil || h.NameHash != nameHash || h.Key.Digest == key.Digest ||
			h.Key.FPs[pipeline.SecExtraction] != key.FPs[pipeline.SecExtraction] {
			continue
		}
		s, err := snapshot.Load(p)
		if err != nil || !priorUsable(s, key) {
			continue
		}
		overlap := 0
		for i := range s.Funcs.Funcs {
			if cur[s.Funcs.Funcs[i].Digest] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			best, bestPath, bestOverlap = s, p, overlap
		}
	}
	return best, bestPath, nil
}

// functionDigests memoizes the image's per-function digest table.
func (r *Result) functionDigests() [][32]byte {
	if r.fnDigests == nil {
		r.fnDigests = r.Image.FunctionDigests()
	}
	return r.fnDigests
}

// extractTracelets runs the tracelets stage: fan out the per-function
// symbolic executions — short-circuiting functions whose bundle the prior
// snapshot already holds — then merge serially in function order. The
// merge consumes reused and fresh bundles identically, so the Tracelets
// result is byte-for-byte what a cold run produces.
func (r *Result) extractTracelets(ctx context.Context, cfg Config) error {
	r.fnCtxDigest = objtrace.ContextDigest(r.Image, r.VTables)
	var reuse func(int) *objtrace.FnExtraction
	var plan []*objtrace.FnExtraction
	if r.incr != nil {
		hits := 0
		if r.incr.prior.Funcs.ContextDigest == r.fnCtxDigest {
			prior := r.incr.prior.Funcs
			byDigest := make(map[[32]byte]*objtrace.FnExtraction, len(prior.Funcs))
			for i := range prior.Funcs {
				byDigest[prior.Funcs[i].Digest] = &prior.Funcs[i].Ext
			}
			digests := r.functionDigests()
			plan = make([]*objtrace.FnExtraction, len(r.Funcs))
			for i, fn := range r.Funcs {
				// The digest covers the entry address, so a match implies
				// the same function at the same place; the Entry check is a
				// pure collision guard.
				if b := byDigest[digests[i]]; b != nil && b.Entry == fn.Entry {
					plan[i] = b
					hits++
				}
			}
			if hits > 0 {
				reuse = func(i int) *objtrace.FnExtraction { return plan[i] }
			}
		}
		r.Incremental.FnHits = hits
		r.Incremental.FnMisses = len(r.Funcs) - hits
		cfg.Obs.Add(obs.CntFnDigestHits, int64(hits))
		cfg.Obs.Add(obs.CntFnDigestMisses, int64(len(r.Funcs)-hits))
	}
	exts, err := objtrace.ExtractFunctions(ctx, r.Image, r.Funcs, r.VTables, cfg.Trace, reuse)
	if err != nil {
		return err
	}
	r.fnExts = exts
	// With a matching extraction context (same entries, imports, and
	// vtables), the merge is separable by type: only types touched by a
	// changed function rebuild, everything else adopts the prior lists.
	if reuse != nil && r.incr.prior.Tracelets != nil {
		changed := make([]bool, len(exts))
		for i := range exts {
			changed[i] = plan[i] == nil
		}
		priorFns := make(map[uint64]*objtrace.FnExtraction, len(r.incr.prior.Funcs.Funcs))
		for i := range r.incr.prior.Funcs.Funcs {
			b := &r.incr.prior.Funcs.Funcs[i]
			priorFns[b.Ext.Entry] = &b.Ext
		}
		r.Tracelets, r.affected = objtrace.MergeFunctionsDelta(
			exts, changed, priorFns, r.incr.prior.Tracelets, r.VTables, cfg.Trace)
		return nil
	}
	r.Tracelets = objtrace.MergeFunctions(exts, r.VTables, cfg.Trace)
	return nil
}

// computeTypeKeys digests each type's exact training input: the shared
// alphabet size plus the type's tracelets as encoded symbol sequences, in
// extraction order. Two runs agreeing on a type's key would train
// bit-identical models (training consumes nothing else under a fixed
// models fingerprint), which is what licenses adopting the prior frozen
// model. Note this is deliberately not the digest set of contributing
// functions: the encoding depends on the global symbol numbering, so a
// patch anywhere in the binary that disturbs the alphabet must — and
// does — change every type's key.
func (r *Result) computeTypeKeys() map[uint64][32]byte {
	if r.typeKeys != nil {
		return r.typeKeys
	}
	// Delta shortcut: a type outside the affected set has byte-identical
	// tracelet lists, so under an unchanged alphabet its key is the prior
	// key — no re-encoding or hashing. An affected type (or any type when
	// the alphabet moved or no delta ran) hashes from scratch.
	var priorKeys map[uint64][32]byte
	if r.incr != nil && r.affected != nil &&
		eventsEqual(r.Alphabet, r.incr.prior.Alphabet) {
		priorKeys = r.incr.prior.Funcs.TypeKeys
	}
	idx := r.symIndex()
	out := make(map[uint64][32]byte, len(r.VTables))
	var b [8]byte
	for _, v := range r.VTables {
		if !r.affected[v.Addr] {
			if pk, ok := priorKeys[v.Addr]; ok {
				out[v.Addr] = pk
				continue
			}
		}
		h := sha256.New()
		h.Write([]byte("rocktk\x00"))
		binary.LittleEndian.PutUint64(b[:], uint64(len(r.Alphabet)))
		h.Write(b[:])
		for _, tl := range r.Tracelets.PerType[v.Addr] {
			binary.LittleEndian.PutUint64(b[:], uint64(len(tl)))
			h.Write(b[:])
			for _, e := range tl {
				binary.LittleEndian.PutUint64(b[:], uint64(idx[e]))
				h.Write(b[:])
			}
		}
		var k [32]byte
		h.Sum(k[:0])
		out[v.Addr] = k
	}
	r.typeKeys = out
	return out
}

// reusableModels returns the prior frozen models the lane may adopt: one
// per type whose TypeKey is unchanged, when the models fingerprint and
// the invalidation cap allow it. Nil when the lane is off.
func (r *Result) reusableModels() map[uint64]*slm.Frozen {
	if r.incr == nil || !r.incr.modelsOK() {
		return nil
	}
	prior := r.incr.prior
	keys := r.computeTypeKeys()
	out := map[uint64]*slm.Frozen{}
	for _, v := range r.VTables {
		if pk, ok := prior.Funcs.TypeKeys[v.Addr]; ok && pk == keys[v.Addr] {
			if f := prior.Frozen[v.Addr]; f != nil {
				out[v.Addr] = f
			}
		}
	}
	return out
}

// restoreFamilies fills outs[i] for every family whose prior solution is
// provably identical to what re-solving would produce, returning how many
// it restored. A family restores when the prior run had a family with the
// same members (in order), every member's TypeKey and candidate-parent
// set is unchanged, and the prior Dist table holds every entry the
// current sweep mode would emit for it. Single-member families are left
// to analyzeFamily — their solve is O(1).
func (r *Result) restoreFamilies(cfg Config, outs []*familyOutcome) int {
	if r.incr == nil || !r.incr.hierarchyOK() {
		return 0
	}
	prior := r.incr.prior
	keys := r.computeTypeKeys()
	byTypes := make(map[string]*snapshot.Family, len(prior.Families))
	for i := range prior.Families {
		byTypes[fmt.Sprint(prior.Families[i].Types)] = &prior.Families[i]
	}
	restored := 0
	for i, fam := range r.Structural.Families {
		if len(fam) == 1 {
			continue
		}
		pf := byTypes[fmt.Sprint(fam)]
		if pf == nil {
			continue
		}
		ok := true
		for _, t := range fam {
			pk, has := prior.Funcs.TypeKeys[t]
			if !has || pk != keys[t] ||
				!addrsEqual(prior.Structural.PossibleParents[t], r.Structural.PossibleParents[t]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		dist, ok := r.priorFamilyDist(cfg, fam, prior)
		if !ok {
			continue
		}
		outs[i] = &familyOutcome{
			fr:   FamilyResult{Types: pf.Types, Weight: pf.Weight, Truncated: pf.Truncated, Arbs: pf.Arbs},
			dist: dist,
		}
		restored++
	}
	return restored
}

// priorFamilyDist collects from the prior snapshot exactly the distance
// entries the current sweep mode would emit for this family — admissible
// (parent, child) pairs under the sparse default, all ordered pairs under
// DenseDist. Any missing entry vetoes the restore. (The sweep mode is
// part of the hierarchy fingerprint, so a usable prior was produced in
// the same mode.)
func (r *Result) priorFamilyDist(cfg Config, fam []uint64, prior *snapshot.Snapshot) (map[[2]uint64]float64, bool) {
	var pairs [][2]uint64
	if cfg.DenseDist {
		for _, p := range fam {
			for _, c := range fam {
				if p != c {
					pairs = append(pairs, [2]uint64{p, c})
				}
			}
		}
	} else {
		for _, c := range fam {
			for _, p := range r.Structural.PossibleParents[c] {
				pairs = append(pairs, [2]uint64{p, c})
			}
		}
	}
	out := make(map[[2]uint64]float64, len(pairs))
	for _, pc := range pairs {
		d, ok := prior.Dist[pc]
		if !ok {
			return nil, false
		}
		out[pc] = d
	}
	return out, true
}

// buildFnSection assembles the snapshot's function-granular section. A
// run that executed (or reused) bundles persists them with fresh digests;
// a whole-image warm run carries the prior section forward verbatim
// (extraction never reran, so it is still exact). A run whose extraction
// was restored from a v2 file has no bundles to persist, but still
// records the context digest and TypeKeys so a later sibling can at least
// reuse models.
func (r *Result) buildFnSection() *snapshot.FnSection {
	if r.fnExts != nil {
		digests := r.functionDigests()
		fs := &snapshot.FnSection{
			ContextDigest: r.fnCtxDigest,
			Funcs:         make([]snapshot.FnBundle, len(r.fnExts)),
			TypeKeys:      r.computeTypeKeys(),
		}
		for i, ext := range r.fnExts {
			fs.Funcs[i] = snapshot.FnBundle{Digest: digests[i], Ext: *ext}
		}
		return fs
	}
	if r.fnSection != nil {
		return r.fnSection
	}
	if r.Tracelets != nil && r.VTables != nil {
		return &snapshot.FnSection{
			ContextDigest: objtrace.ContextDigest(r.Image, r.VTables),
			TypeKeys:      r.computeTypeKeys(),
		}
	}
	return nil
}

// eventsEqual compares two interned alphabets element-wise.
func eventsEqual(a, b []objtrace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addrsEqual compares two address slices element-wise.
func addrsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
