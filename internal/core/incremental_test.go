package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/image"
	"repro/internal/snapshot"
)

// synthPatchable builds a synth-grid image with plenty of safely
// patchable functions. The hand-written motivating program is useless
// here — its field-write idioms sit in ctor bodies whose traces the
// patch cannot reach cleanly — while the generated use_* driver
// functions have exactly the movi+store shape the patch needs. The
// deep/opt cell is picked because a mid-table patch there provably
// forces both lanes of the diff: some types retrain and some families
// re-solve, while most of both are reused.
func synthPatchable(t *testing.T) (*image.Image, []uint64) {
	t.Helper()
	c := bench.SynthByName("deep/opt")
	if c == nil {
		t.Fatal("synth grid lost the deep/opt cell")
	}
	img, _, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	cands := bench.PatchableFunctions(img)
	if len(cands) < 5 {
		t.Fatalf("deep/opt has only %d patchable functions", len(cands))
	}
	return img, cands
}

// patchedCopy clones img and patches k patchable functions starting
// from the middle of the candidate table (mid-table use functions trace
// into typed objects, so the patch perturbs the analysis rather than
// deleting an unattributed event).
func patchedCopy(t *testing.T, img *image.Image, cands []uint64, k int) *image.Image {
	t.Helper()
	out := img.Strip()
	for _, e := range cands[len(cands)/2 : len(cands)/2+k] {
		if err := bench.PatchFunction(out, e); err != nil {
			t.Fatalf("PatchFunction(%#x): %v", e, err)
		}
	}
	return out
}

// TestIncrementalMatchesCold is the tentpole acceptance at the core
// level: after a 1-function patch, the warm lane — via cache-dir
// auto-discovery and via an explicit prior path — re-extracts exactly
// the patched function, reuses unchanged models and families, and
// produces a Result deep-equal to a cold analysis of the patched image.
func TestIncrementalMatchesCold(t *testing.T) {
	img, cands := synthPatchable(t)

	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	analyzeCached(t, img, cfg) // cold base run writes the prior snapshot

	patched := patchedCopy(t, img, cands, 1)
	cold := analyzeCached(t, patched, DefaultConfig())
	if cold.Incremental != nil {
		t.Fatal("cold run must not engage the incremental lane")
	}

	// Auto-discovery: same cache dir, new content digest.
	incr := analyzeCached(t, patched, cfg)
	st := incr.Incremental
	if st == nil {
		t.Fatal("incremental lane did not engage via auto-discovery")
	}
	t.Logf("stats: %+v", *st)
	if st.FnMisses != 1 || st.FnHits != len(patched.Entries)-1 {
		t.Errorf("fn reuse = %d hits / %d misses, want %d / 1",
			st.FnHits, st.FnMisses, len(patched.Entries)-1)
	}
	if st.TypesReused == 0 || st.TypesRetrained == 0 {
		t.Errorf("a 1-function patch must split the types (%d reused, %d retrained)",
			st.TypesReused, st.TypesRetrained)
	}
	if st.TypesReused+st.TypesRetrained != len(incr.VTables) {
		t.Errorf("type accounting %d+%d != %d types",
			st.TypesReused, st.TypesRetrained, len(incr.VTables))
	}
	if st.FamiliesRestored == 0 || st.FamiliesResolved == 0 {
		t.Errorf("a 1-function patch must split the families (%d restored, %d re-solved)",
			st.FamiliesRestored, st.FamiliesResolved)
	}
	assertResultsEqual(t, "incr vs cold", cold, incr)

	// Explicit prior, no cache directory at all.
	fromCfg := DefaultConfig()
	fromCfg.IncrementalFrom = filepath.Join(cfg.CacheDir,
		cfg.withDefaults().snapshotKey(img).FileName())
	incr2 := analyzeCached(t, patched, fromCfg)
	if incr2.Incremental == nil || incr2.Incremental.FnMisses != 1 {
		t.Fatalf("explicit prior lane: %+v", incr2.Incremental)
	}
	assertResultsEqual(t, "incr-from vs cold", cold, incr2)
}

// TestIncrementalDeterminism checks the lane is schedule-independent:
// the same patched image analyzed incrementally under serial and highly
// parallel pipelines yields deep-equal results (satellite acceptance).
func TestIncrementalDeterminism(t *testing.T) {
	img, cands := synthPatchable(t)

	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	analyzeCached(t, img, cfg)
	prior := filepath.Join(cfg.CacheDir, cfg.withDefaults().snapshotKey(img).FileName())

	patched := patchedCopy(t, img, cands, 3)
	cold := analyzeCached(t, patched, DefaultConfig())

	for _, workers := range []int{1, 8} {
		wcfg := DefaultConfig()
		wcfg.Workers = workers
		wcfg.IncrementalFrom = prior
		res := analyzeCached(t, patched, wcfg)
		if res.Incremental == nil || res.Incremental.FnMisses != 3 {
			t.Fatalf("workers=%d: %+v", workers, res.Incremental)
		}
		assertResultsEqual(t, "incr vs cold", cold, res)
	}
}

// TestIncrementalV2PriorColdFallback: a v2 prior snapshot has no
// function-granular section, so the lane must silently decline — never
// error — and the analysis must still be correct (satellite: v2 files
// stay readable as whole-image-valid, at worst cold for the lane).
func TestIncrementalV2PriorColdFallback(t *testing.T) {
	img, cands := synthPatchable(t)

	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	analyzeCached(t, img, cfg)
	path := filepath.Join(cfg.CacheDir, cfg.withDefaults().snapshotKey(img).FileName())

	// Rewrite the cached prior in the v2 layout.
	snap, err := snapshot.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := snap.EncodeVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, v2, 0o644); err != nil {
		t.Fatal(err)
	}

	// The rewritten v2 slot still warm-restores the unchanged image whole.
	warm := analyzeCached(t, img, cfg)
	if warm.SnapshotReuse != snapshot.LevelHierarchy {
		t.Fatalf("v2 cache slot restored level %d, want %d", warm.SnapshotReuse, snapshot.LevelHierarchy)
	}

	patched := patchedCopy(t, img, cands, 1)
	cold := analyzeCached(t, patched, DefaultConfig())

	// Auto-discovery skips the v2 file (no name hash in its header).
	auto := analyzeCached(t, patched, cfg)
	if auto.Incremental != nil {
		t.Fatalf("lane engaged on a v2 prior: %+v", auto.Incremental)
	}
	assertResultsEqual(t, "v2-auto vs cold", cold, auto)

	// An explicit v2 prior loads fine but is unusable: cold, no error.
	fromCfg := DefaultConfig()
	fromCfg.IncrementalFrom = path
	expl := analyzeCached(t, patched, fromCfg)
	if expl.Incremental != nil {
		t.Fatalf("lane engaged on an explicit v2 prior: %+v", expl.Incremental)
	}
	assertResultsEqual(t, "v2-explicit vs cold", cold, expl)
}

// TestIncrementalPriorErrors: an explicit prior that cannot be loaded is
// a hard error (the caller named a specific file); a corrupt snapshot
// sitting in the cache directory is silently ignored by auto-discovery.
func TestIncrementalPriorErrors(t *testing.T) {
	img, cands := synthPatchable(t)
	patched := patchedCopy(t, img, cands, 1)

	cfg := DefaultConfig()
	cfg.IncrementalFrom = filepath.Join(t.TempDir(), "missing.rsnap")
	if _, err := Analyze(patched, cfg); err == nil {
		t.Fatal("missing explicit prior must be an error")
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.rsnap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	autoCfg := DefaultConfig()
	autoCfg.CacheDir = dir
	res := analyzeCached(t, patched, autoCfg)
	if res.Incremental != nil {
		t.Fatalf("lane engaged on a corrupt cache entry: %+v", res.Incremental)
	}
}
