package core

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
)

// TestAnalyzeWorkerCountInvariance asserts the tentpole guarantee at the
// core.Result level (deeper than the rock.Report view): the full pairwise
// distance matrix, family outcomes including co-optimal arborescence sets
// and weights, hierarchy, and multi-parent choices are identical for
// serial and parallel runs.
func TestAnalyzeWorkerCountInvariance(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.Workers = 1
	serial, err := Analyze(img, cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := Analyze(img, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial.Dist, par.Dist) {
			t.Errorf("workers=%d: Dist diverged", workers)
		}
		if !reflect.DeepEqual(serial.Families, par.Families) {
			t.Errorf("workers=%d: Families diverged", workers)
		}
		if !reflect.DeepEqual(serial.MultiParents, par.MultiParents) {
			t.Errorf("workers=%d: MultiParents diverged", workers)
		}
		for _, ty := range serial.VTables {
			sp, sok := serial.Hierarchy.Parent(ty.Addr)
			pp, pok := par.Hierarchy.Parent(ty.Addr)
			if sok != pok || sp != pp {
				t.Errorf("workers=%d: parent of 0x%x diverged", workers, ty.Addr)
			}
		}
	}
}
