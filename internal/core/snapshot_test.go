package core

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/image"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// assertResultsEqual compares two analysis results field by field,
// excluding Funcs and Models (documented nil on warm runs) and the reuse
// level itself.
func assertResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	check := func(name string, x, y any) {
		if !reflect.DeepEqual(x, y) {
			t.Errorf("%s: %s diverged", label, name)
		}
	}
	check("VTables", a.VTables, b.VTables)
	check("Structural", a.Structural, b.Structural)
	check("Tracelets", a.Tracelets, b.Tracelets)
	check("Alphabet", a.Alphabet, b.Alphabet)
	check("Frozen", a.Frozen, b.Frozen)
	check("Dist", a.Dist, b.Dist)
	check("Families", a.Families, b.Families)
	check("Hierarchy", a.Hierarchy, b.Hierarchy)
	check("MultiParents", a.MultiParents, b.MultiParents)
}

func analyzeCached(t *testing.T, img *image.Image, cfg Config) *Result {
	t.Helper()
	res, err := Analyze(img, cfg)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return res
}

// TestSnapshotWarmRunMatchesCold is the satellite acceptance at the core
// level: a warm run restores the whole pipeline from the snapshot
// (SnapshotReuse == LevelHierarchy) and every derived artifact is
// deep-equal to the cold run that wrote it.
func TestSnapshotWarmRunMatchesCold(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()

	cold := analyzeCached(t, img, cfg)
	if cold.SnapshotReuse != snapshot.LevelNone {
		t.Fatalf("cold run reused level %d", cold.SnapshotReuse)
	}
	if cold.Funcs == nil || cold.Models == nil {
		t.Fatal("cold run must lift functions and keep builder models")
	}
	warm := analyzeCached(t, img, cfg)
	if warm.SnapshotReuse != snapshot.LevelHierarchy {
		t.Fatalf("warm run reused level %d, want %d", warm.SnapshotReuse, snapshot.LevelHierarchy)
	}
	if warm.Funcs != nil || warm.Models != nil {
		t.Error("warm run must not lift functions or rebuild builder models")
	}
	assertResultsEqual(t, "warm vs cold", cold, warm)
}

// TestSnapshotInvalidateLevels checks the -invalidate granularity: each
// level caps reuse exactly as documented, and every capped rerun still
// reproduces the cold result.
func TestSnapshotInvalidateLevels(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := analyzeCached(t, img, cfg)

	cases := []struct {
		inv   Invalidate
		level int
	}{
		{InvalidateNone, snapshot.LevelHierarchy},
		{InvalidateHierarchy, snapshot.LevelModels},
		{InvalidateModels, snapshot.LevelExtraction},
		{InvalidateAll, snapshot.LevelNone},
	}
	for _, c := range cases {
		cfg.Invalidate = c.inv
		res := analyzeCached(t, img, cfg)
		if res.SnapshotReuse != c.level {
			t.Errorf("invalidate %d: reused level %d, want %d", c.inv, res.SnapshotReuse, c.level)
		}
		assertResultsEqual(t, "invalidate run vs cold", cold, res)
	}
}

// TestSnapshotPartialReuseOnConfigChange checks the staged-validity chain
// end to end: changing only the distance metric salvages the extraction
// and model sections (LevelModels) and still reproduces a from-scratch run
// under the new metric; changing the tracelet window invalidates
// everything.
func TestSnapshotPartialReuseOnConfigChange(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	analyzeCached(t, img, cfg) // populate the cache under MetricKL

	jsCfg := cfg
	jsCfg.Metric = slm.MetricJSDivergence
	partial := analyzeCached(t, img, jsCfg)
	if partial.SnapshotReuse != snapshot.LevelModels {
		t.Fatalf("metric change reused level %d, want %d", partial.SnapshotReuse, snapshot.LevelModels)
	}
	jsCold := jsCfg
	jsCold.CacheDir = ""
	fresh := analyzeCached(t, img, jsCold)
	assertResultsEqual(t, "salvaged models vs fresh js run", fresh, partial)

	// The metric-change run overwrote the slot; warm again under JS.
	if again := analyzeCached(t, img, jsCfg); again.SnapshotReuse != snapshot.LevelHierarchy {
		t.Errorf("rewarm after metric change reused level %d", again.SnapshotReuse)
	}

	winCfg := jsCfg
	winCfg.Trace.Window = 5
	if res := analyzeCached(t, img, winCfg); res.SnapshotReuse != snapshot.LevelNone {
		t.Errorf("window change reused level %d, want cold", res.SnapshotReuse)
	}
}

// TestSnapshotCorruptCacheIsMiss corrupts the cached file in place: the
// next run must silently fall back to a cold analysis and repair the slot.
func TestSnapshotCorruptCacheIsMiss(t *testing.T) {
	img, _ := buildStripped(t, motivating(), compiler.DefaultOptions())
	cfg := DefaultConfig()
	cfg.CacheDir = t.TempDir()
	cold := analyzeCached(t, img, cfg)

	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir: %v entries, err %v", len(entries), err)
	}
	path := cfg.CacheDir + "/" + entries[0].Name()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res := analyzeCached(t, img, cfg)
	if res.SnapshotReuse != snapshot.LevelNone {
		t.Fatalf("corrupted snapshot reused level %d", res.SnapshotReuse)
	}
	assertResultsEqual(t, "post-corruption cold vs original", cold, res)
	if warm := analyzeCached(t, img, cfg); warm.SnapshotReuse != snapshot.LevelHierarchy {
		t.Errorf("slot not repaired: level %d", warm.SnapshotReuse)
	}
}

// TestParseInvalidate pins the CLI spellings.
func TestParseInvalidate(t *testing.T) {
	for s, want := range map[string]Invalidate{
		"": InvalidateNone, "none": InvalidateNone,
		"hierarchy": InvalidateHierarchy, "models": InvalidateModels, "all": InvalidateAll,
	} {
		got, err := ParseInvalidate(s)
		if err != nil || got != want {
			t.Errorf("ParseInvalidate(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseInvalidate("everything"); err == nil {
		t.Error("bad level accepted")
	}
}
