// Package corpus is the batch engine: it schedules many independent image
// analyses over ONE shared bounded worker pool, replacing the sequential
// per-image loops of suite evaluation and benchmarking.
//
// The scheduler is two-level. At the corpus level, admission bounds how
// many images are in flight at once: a cold image must win an admission
// slot, pass the soft memory gate, and acquire one token from the shared
// pool before its analysis starts. Inside an admitted analysis, the
// existing per-stage fan-outs (tracelet extraction, SLM training, distance
// matrices) borrow additional helpers from the same pool via non-blocking
// TryAcquire (see internal/pool), so total parallelism across all
// concurrent analyses never exceeds the pool capacity, and a capacity-1
// pool degrades to a fully serial run.
//
// Cache-aware bypass: images the caller classifies as warm (their
// snapshot restores the whole analysis, see core.ProbeSnapshot) skip the
// admission queue and the pool token entirely — restoring a snapshot is a
// decode, not an analysis, so it must not occupy an analysis slot or wait
// behind cold images. Warm launches run on their own bounded lane.
//
// Results stream on a channel in completion order for progress reporting,
// while the final slice is index-owned: worker i writes only items[i], and
// the aggregate is returned in input order — deep-equal to a sequential
// per-image loop for every worker count.
package corpus

import (
	"context"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pool"
)

// heapMetric is the live-heap gauge the scheduler samples. Reading it via
// runtime/metrics costs microseconds (no stop-the-world), cheap enough to
// sample at every admission and completion without hurting the Workers=1
// serial-degradation overhead budget.
const heapMetric = "/memory/classes/heap/objects:bytes"

// Options bounds a corpus run. The zero value uses all CPUs, admits up to
// Workers images, and sets no memory ceiling.
type Options struct {
	// Workers is the shared pool capacity — the corpus-wide bound on
	// concurrently running analysis goroutines (admitted images plus all
	// their fan-out helpers). 0 selects runtime.GOMAXPROCS(0); 1 runs the
	// whole corpus serially. Results are identical for every value.
	Workers int
	// MaxInFlight bounds how many cold images may be admitted at once,
	// independently of how many helpers each borrows. 0 defaults to
	// Workers.
	MaxInFlight int
	// WarmInFlight bounds the warm bypass lane (snapshot decodes). 0
	// defaults to Workers.
	WarmInFlight int
	// SoftMemBytes, when non-zero, is the corpus-wide soft heap ceiling:
	// cold admission stalls while the live heap is at or above it and at
	// least one image is in flight (one GC is attempted first so garbage
	// does not throttle admission). At least one image is always admitted,
	// so the ceiling can slow the corpus but never wedge it; it is soft —
	// a single huge image may still exceed it.
	SoftMemBytes uint64
}

// Item is one per-image outcome.
type Item[T any] struct {
	// Index is the image's position in the input order.
	Index int
	// Value is the run callback's result; meaningful only when Err is nil.
	Value T
	// Err is the per-image failure, or the context error for images whose
	// launch was aborted by cancellation. One image failing does not abort
	// the others.
	Err error
	// Warm reports the image went through the bypass lane.
	Warm bool
	// HeapGrowth is the live-heap delta observed across this image's run
	// (clamped at zero). With concurrent images it is an attribution
	// estimate, not an exact per-image peak.
	HeapGrowth uint64
	// Wait is how long the image queued before its work started: admission
	// slot, memory gate, and pool token for cold images; the bypass-lane
	// slot for warm ones. Scheduling pressure made visible per image.
	Wait time.Duration
}

// Stats summarizes a finished corpus run.
type Stats struct {
	// PeakHeap is the highest live-heap sample observed during the run.
	PeakHeap uint64
	// Warm and Cold count the images per admission path.
	Warm, Cold int
}

// Run schedules n images and blocks until all finish, returning the
// index-ordered outcomes. warm (optional) classifies an image for the
// bypass lane; run performs one image's work and receives the shared pool
// to thread into its analysis config. The returned error is non-nil only
// when ctx was canceled; per-image failures live in the items.
func Run[T any](ctx context.Context, n int, opts Options,
	warm func(i int) bool,
	run func(ctx context.Context, i int, sh *pool.Shared) (T, error),
) ([]Item[T], Stats, error) {
	ch, wait := Stream(ctx, n, opts, warm, run)
	for range ch {
	}
	return wait()
}

// Stream launches the corpus run and returns a channel yielding each
// outcome as it completes (completion order — for progress display only)
// plus a wait function returning the final index-ordered slice. The
// channel is buffered to n, so a receiver that stops reading never blocks
// the workers; wait drains nothing and may be called without consuming
// the channel.
func Stream[T any](ctx context.Context, n int, opts Options,
	warm func(i int) bool,
	run func(ctx context.Context, i int, sh *pool.Shared) (T, error),
) (<-chan Item[T], func() ([]Item[T], Stats, error)) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = workers
	}
	warmInFlight := opts.WarmInFlight
	if warmInFlight <= 0 {
		warmInFlight = workers
	}

	sh := pool.NewShared(workers)
	items := make([]Item[T], n)
	for i := range items {
		items[i] = Item[T]{Index: i}
	}
	out := make(chan Item[T], n)
	admit := make(chan struct{}, maxInFlight)
	warmLane := make(chan struct{}, warmInFlight)
	// completions carries at most one pending wakeup for the memory gate;
	// the gate re-checks its condition after every receive, so a collapsed
	// burst of signals cannot strand it.
	completions := make(chan struct{}, 1)
	var inFlight atomic.Int64
	var peakHeap atomic.Uint64
	var nWarm, nCold atomic.Int64

	sampleHeap := func() uint64 {
		s := [1]metrics.Sample{{Name: heapMetric}}
		metrics.Read(s[:])
		h := s[0].Value.Uint64()
		for {
			prev := peakHeap.Load()
			if h <= prev || peakHeap.CompareAndSwap(prev, h) {
				break
			}
		}
		return h
	}

	// memGate stalls cold admission while the heap sits at or above the
	// soft ceiling. Progress guarantee: with nothing in flight the gate
	// always opens — a corpus whose single images exceed the ceiling runs
	// serially instead of deadlocking.
	memGate := func() error {
		if opts.SoftMemBytes == 0 {
			return ctx.Err()
		}
		gced := false
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			if inFlight.Load() == 0 || sampleHeap() < opts.SoftMemBytes {
				return nil
			}
			if !gced {
				// The sample counts garbage as pressure; collect once
				// before concluding the live set is what's over the line.
				runtime.GC()
				gced = true
				continue
			}
			select {
			case <-completions:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}

	var wg sync.WaitGroup
	launch := func(i int, isWarm bool, wait time.Duration) {
		inFlight.Add(1)
		if isWarm {
			nWarm.Add(1)
		} else {
			nCold.Add(1)
		}
		before := sampleHeap()
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := run(ctx, i, sh)
			after := sampleHeap()
			it := Item[T]{Index: i, Value: v, Err: err, Warm: isWarm, Wait: wait}
			if after > before {
				it.HeapGrowth = after - before
			}
			items[i] = it
			if isWarm {
				<-warmLane
			} else {
				sh.Release()
				<-admit
			}
			inFlight.Add(-1)
			select {
			case completions <- struct{}{}:
			default:
			}
			out <- it // buffered to n: never blocks
		}()
	}

	abort := func(i int) {
		items[i].Err = ctx.Err()
		out <- items[i]
	}

	// Two launchers so a cold image waiting for admission never
	// head-of-line-blocks a warm decode behind it (and vice versa).
	isWarm := make([]bool, n)
	for i := 0; i < n; i++ {
		isWarm[i] = warm != nil && warm(i)
	}
	var launchers sync.WaitGroup
	launchers.Add(2)
	go func() { // warm lane
		defer launchers.Done()
		for i := 0; i < n; i++ {
			if !isWarm[i] {
				continue
			}
			t0 := time.Now()
			select {
			case warmLane <- struct{}{}:
				launch(i, true, time.Since(t0))
			case <-ctx.Done():
				abort(i)
			}
		}
	}()
	go func() { // cold lane: admission slot, then memory gate, then pool token
		defer launchers.Done()
		for i := 0; i < n; i++ {
			if isWarm[i] {
				continue
			}
			t0 := time.Now()
			select {
			case admit <- struct{}{}:
			case <-ctx.Done():
				abort(i)
				continue
			}
			if memGate() != nil {
				<-admit
				abort(i)
				continue
			}
			if sh.Acquire(ctx) != nil {
				<-admit
				abort(i)
				continue
			}
			launch(i, false, time.Since(t0))
		}
	}()

	done := make(chan struct{})
	var runErr error
	go func() {
		launchers.Wait()
		wg.Wait()
		runErr = ctx.Err()
		close(out)
		close(done)
	}()
	return out, func() ([]Item[T], Stats, error) {
		<-done
		return items, Stats{
			PeakHeap: peakHeap.Load(),
			Warm:     int(nWarm.Load()),
			Cold:     int(nCold.Load()),
		}, runErr
	}
}
