package corpus

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pool"
)

// TestRunIndexOrdered: the final slice is index-owned regardless of
// completion order or worker count, and values match a sequential loop.
func TestRunIndexOrdered(t *testing.T) {
	const n = 37
	for _, workers := range []int{1, 2, 8} {
		items, stats, err := Run(context.Background(), n, Options{Workers: workers}, nil,
			func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(items) != n {
			t.Fatalf("workers=%d: %d items, want %d", workers, len(items), n)
		}
		for i, it := range items {
			if it.Index != i || it.Value != i*i || it.Err != nil {
				t.Fatalf("workers=%d: items[%d] = %+v", workers, i, it)
			}
		}
		if stats.Cold != n || stats.Warm != 0 {
			t.Fatalf("workers=%d: stats %+v", workers, stats)
		}
	}
}

// TestRunBoundsConcurrency: at most Workers run callbacks execute at once
// (the callbacks here do no nested fan-out, so the pool token per admitted
// image is the whole bound).
func TestRunBoundsConcurrency(t *testing.T) {
	const n, workers = 40, 3
	var cur, peak atomic.Int64
	_, _, err := Run(context.Background(), n, Options{Workers: workers}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("%d concurrent analyses, pool capacity %d", p, workers)
	}
}

// TestWarmBypass: warm items skip the analysis pool entirely — with a
// capacity-1 pool wedged by a slow cold image, every warm item still
// completes before that image finishes.
func TestWarmBypass(t *testing.T) {
	const n = 6 // item 0 cold & slow, 1..5 warm
	release := make(chan struct{})
	warmDone := make(chan int, n)
	items, stats, err := Run(context.Background(), n, Options{Workers: 1},
		func(i int) bool { return i != 0 },
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			if i == 0 {
				<-release
				return 0, nil
			}
			warmDone <- i
			if len(warmDone) == n-1 {
				close(release)
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm != n-1 || stats.Cold != 1 {
		t.Fatalf("stats %+v", stats)
	}
	for i := 1; i < n; i++ {
		if items[i].Value != i || !items[i].Warm {
			t.Fatalf("items[%d] = %+v", i, items[i])
		}
	}
}

// TestPerItemErrorsDoNotAbort: one failing image is recorded in its slot;
// the others complete.
func TestPerItemErrorsDoNotAbort(t *testing.T) {
	boom := errors.New("boom")
	items, _, err := Run(context.Background(), 9, Options{Workers: 2}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			if i == 4 {
				return 0, boom
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if i == 4 {
			if !errors.Is(it.Err, boom) {
				t.Fatalf("items[4].Err = %v", it.Err)
			}
		} else if it.Err != nil || it.Value != i {
			t.Fatalf("items[%d] = %+v", i, it)
		}
	}
}

// TestCancellation: canceling mid-corpus returns promptly with ctx.Err(),
// marks unlaunched items, and leaks no goroutines.
func TestCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 64
	var started atomic.Int64
	items, _, err := Run(ctx, n, Options{Workers: 2}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			if started.Add(1) == 2 { // both Workers slots are busy: cancel now
				cancel()
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	launched := int(started.Load())
	if launched >= n {
		t.Fatalf("cancellation did not stop admission (%d launched)", launched)
	}
	var aborted int
	for _, it := range items {
		if !errors.Is(it.Err, context.Canceled) {
			t.Fatalf("items[%d] = %+v, want Canceled", it.Index, it)
		}
		if it.Value == 0 && !it.Warm {
			aborted++
		}
	}
	_ = aborted
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutines leaked: %d > baseline %d", g, base)
	}
}

// TestMemGateProgress: a ceiling far below any real heap still lets the
// corpus finish — the gate admits whenever nothing is in flight.
func TestMemGateProgress(t *testing.T) {
	items, _, err := Run(context.Background(), 8, Options{Workers: 4, SoftMemBytes: 1}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil || it.Value != i {
			t.Fatalf("items[%d] = %+v", i, it)
		}
	}
}

// TestStreamDelivery: the streaming channel yields exactly one item per
// image (completion order), and wait returns the same outcomes in index
// order even if the channel was only partially consumed.
func TestStreamDelivery(t *testing.T) {
	const n = 20
	ch, wait := Stream(context.Background(), n, Options{Workers: 4}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (string, error) {
			return fmt.Sprint(i), nil
		})
	seen := 0
	for range ch {
		seen++
		if seen == n/2 {
			break // abandon: must not block the workers
		}
	}
	items, _, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	if seen != n/2 {
		t.Fatalf("consumed %d", seen)
	}
	for i, it := range items {
		if it.Value != fmt.Sprint(i) {
			t.Fatalf("items[%d] = %+v", i, it)
		}
	}
}

// TestNestedFanOutSharesPool: run callbacks that themselves fan out over
// the shared pool stay within the corpus-wide bound and complete (no
// token deadlock between admission and helpers).
func TestNestedFanOutSharesPool(t *testing.T) {
	const n, workers = 10, 4
	var cur, peak atomic.Int64
	items, _, err := Run(context.Background(), n, Options{Workers: workers}, nil,
		func(ctx context.Context, i int, sh *pool.Shared) (int, error) {
			sum := int64(0)
			err := pool.ForEach(ctx, sh, 1, 32, func(j int) {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				atomic.AddInt64(&sum, int64(j))
				time.Sleep(100 * time.Microsecond)
				cur.Add(-1)
			})
			return int(sum), err
		})
	if err != nil {
		t.Fatal(err)
	}
	want := 32 * 31 / 2
	for i, it := range items {
		if it.Err != nil || it.Value != want {
			t.Fatalf("items[%d] = %+v, want value %d", i, it, want)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("%d concurrent units, pool capacity %d", p, workers)
	}
}
