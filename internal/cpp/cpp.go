// Package cpp defines a small C++-like source model: classes with
// (possibly multiple) inheritance, virtual and non-virtual methods, fields,
// and free functions whose bodies are built from a handful of statement
// forms. The model is the input language of internal/compiler, which lowers
// it to a stripped binary image; it also carries the source class hierarchy
// that the evaluation uses to derive ground truth.
//
// The model is deliberately minimal: it contains exactly the constructs the
// paper's analysis can observe in a binary (virtual dispatch, field access,
// argument passing, returns, concrete calls) plus control flow (branches and
// loops) that exercises the path enumeration of the tracelet extractor.
package cpp

import (
	"fmt"
	"sort"
)

// Program is a complete source program: a set of classes and free functions.
type Program struct {
	// Name identifies the program (benchmark name, example name, ...).
	Name string
	// Classes in declaration order. Base classes must be declared before
	// derived classes.
	Classes []*Class
	// Funcs are free functions (the "useX" drivers of the paper's examples).
	Funcs []*Func
}

// Class declares a class with optional base classes.
type Class struct {
	// Name of the class. Unique within a Program.
	Name string
	// Bases lists base class names. Empty for a root class. The first entry
	// is the primary base (its subobject is laid out at offset 0, and its
	// vtable is extended in place); any further entries are secondary bases
	// (multiple inheritance) laid out after the primary part, each with its
	// own vtable pointer.
	Bases []string
	// Fields declared by this class itself (inherited fields are implicit).
	Fields []Field
	// Methods declared or overridden by this class itself.
	Methods []*Method
}

// Field is a data member. All fields occupy one 8-byte slot.
type Field struct {
	Name string
}

// Method is a member function. A method with Virtual set occupies a vtable
// slot; an override is detected by name against the base classes.
type Method struct {
	Name    string
	Virtual bool
	// Pure marks a pure virtual method (no body). A class with a pure
	// method that is never overridden along a branch cannot be instantiated.
	Pure bool
	// Body is the method body. The receiver is available as variable "this".
	Body []Stmt
}

// Func is a free function.
type Func struct {
	Name string
	// Params are the function parameters. Object parameters carry the static
	// class name; scalar parameters carry "".
	Params []Param
	Body   []Stmt
}

// Param is a function parameter.
type Param struct {
	Name string
	// Class is the static type for object (pointer) parameters, "" otherwise.
	Class string
}

// Stmt is a statement in a method or function body.
type Stmt interface {
	isStmt()
}

// New allocates an object of class Class and binds it to local variable Dst.
// Lowered to a call to the allocator import followed by the (usually
// inlined) constructor.
type New struct {
	Dst   string
	Class string
}

// VCall performs a virtual call Obj->Method(Args...). The vtable slot is
// resolved from Obj's static type.
type VCall struct {
	Obj    string
	Method string
	Args   []Arg
}

// NVCall performs a direct (non-virtual) method call Obj->Method(Args...).
type NVCall struct {
	Obj    string
	Method string
	// Class optionally qualifies the method (Class::Method); when empty, the
	// method is resolved against Obj's static type.
	Class string
	Args  []Arg
}

// CallFunc calls a free function.
type CallFunc struct {
	Name string
	Args []Arg
}

// ReadField reads Obj->Field into an anonymous temporary.
type ReadField struct {
	Obj   string
	Field string
}

// WriteField writes an opaque scalar into Obj->Field.
type WriteField struct {
	Obj   string
	Field string
}

// Assign aliases Dst = Src (both locals holding objects).
type Assign struct {
	Dst string
	Src string
}

// Return returns from the enclosing function; when Obj is non-empty the
// named object is returned.
type Return struct {
	Obj string
}

// If branches on an opaque condition.
type If struct {
	Then []Stmt
	Else []Stmt
}

// Loop repeats Body under an opaque condition.
type Loop struct {
	Body []Stmt
}

// Opaque is a distinctive no-op: it compiles to a scalar-constant load of
// Seed. Two otherwise-identical function bodies with different seeds do not
// fold under identical-code folding; conversely, omitting it from trivial
// accessors leaves them foldable.
type Opaque struct {
	Seed uint64
}

// Arg is an actual argument: an object variable or an opaque scalar.
type Arg struct {
	// Obj names a local variable holding an object; empty for a scalar.
	Obj string
}

func (New) isStmt()        {}
func (VCall) isStmt()      {}
func (NVCall) isStmt()     {}
func (CallFunc) isStmt()   {}
func (ReadField) isStmt()  {}
func (WriteField) isStmt() {}
func (Assign) isStmt()     {}
func (Return) isStmt()     {}
func (If) isStmt()         {}
func (Loop) isStmt()       {}
func (Opaque) isStmt()     {}

// Scalar returns an opaque scalar argument.
func Scalar() Arg { return Arg{} }

// ObjArg returns an object argument referring to local variable name.
func ObjArg(name string) Arg { return Arg{Obj: name} }

// Class lookup helpers -------------------------------------------------------

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Func returns the free function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// PrimaryBase returns the primary base class name, or "".
func (c *Class) PrimaryBase() string {
	if len(c.Bases) == 0 {
		return ""
	}
	return c.Bases[0]
}

// Method returns the method declared by c itself with the given name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Ancestors returns all transitive base class names of class name, nearest
// first along the primary chain, including secondary bases.
func (p *Program) Ancestors(name string) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		c := p.Class(n)
		if c == nil {
			return
		}
		for _, b := range c.Bases {
			if !seen[b] {
				seen[b] = true
				out = append(out, b)
				walk(b)
			}
		}
	}
	walk(name)
	return out
}

// PrimaryChain returns class name followed by its transitive primary bases,
// nearest first. Secondary (multiple-inheritance) bases are excluded: the
// chain lists exactly the classes whose vtable pointer occupies offset 0 of
// an instance of name. Returns nil for an unknown class.
func (p *Program) PrimaryChain(name string) []string {
	var out []string
	for n := name; n != ""; {
		c := p.Class(n)
		if c == nil {
			break
		}
		out = append(out, n)
		n = c.PrimaryBase()
	}
	return out
}

// Subclasses returns the direct subclasses of class name, in declaration
// order.
func (p *Program) Subclasses(name string) []string {
	var out []string
	for _, c := range p.Classes {
		for _, b := range c.Bases {
			if b == name {
				out = append(out, c.Name)
				break
			}
		}
	}
	return out
}

// Instantiated reports whether class name is instantiated anywhere in the
// program (by a New statement in any method or free function).
func (p *Program) Instantiated(name string) bool {
	hit := false
	visit := func(s Stmt) {
		if n, ok := s.(New); ok && n.Class == name {
			hit = true
		}
	}
	for _, f := range p.Funcs {
		walkStmts(f.Body, visit)
	}
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			walkStmts(m.Body, visit)
		}
	}
	return hit
}

// walkStmts applies fn to every statement, recursing into If and Loop.
func walkStmts(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch st := s.(type) {
		case If:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case Loop:
			walkStmts(st.Body, fn)
		}
	}
}

// WalkStmts applies fn to every statement in body, recursing into control
// flow. Exposed for tooling and tests.
func WalkStmts(body []Stmt, fn func(Stmt)) { walkStmts(body, fn) }

// Validate checks the structural well-formedness of the program: unique
// class and function names, declared-before-use bases, acyclic inheritance,
// resolvable methods and fields in all bodies, and pure methods without
// bodies. It returns the first problem found.
func (p *Program) Validate() error {
	classIdx := map[string]int{}
	for i, c := range p.Classes {
		if _, dup := classIdx[c.Name]; dup {
			return fmt.Errorf("cpp: duplicate class %q", c.Name)
		}
		classIdx[c.Name] = i
	}
	funcNames := map[string]bool{}
	for _, f := range p.Funcs {
		if funcNames[f.Name] {
			return fmt.Errorf("cpp: duplicate function %q", f.Name)
		}
		funcNames[f.Name] = true
	}
	for i, c := range p.Classes {
		seenBase := map[string]bool{}
		for _, b := range c.Bases {
			bi, ok := classIdx[b]
			if !ok {
				return fmt.Errorf("cpp: class %q inherits from undeclared class %q", c.Name, b)
			}
			if bi >= i {
				return fmt.Errorf("cpp: class %q must be declared after its base %q", c.Name, b)
			}
			if seenBase[b] {
				return fmt.Errorf("cpp: class %q lists base %q twice", c.Name, b)
			}
			seenBase[b] = true
		}
		seenM := map[string]bool{}
		for _, m := range c.Methods {
			if seenM[m.Name] {
				return fmt.Errorf("cpp: class %q declares method %q twice", c.Name, m.Name)
			}
			seenM[m.Name] = true
			if m.Pure && !m.Virtual {
				return fmt.Errorf("cpp: %s::%s is pure but not virtual", c.Name, m.Name)
			}
			if m.Pure && len(m.Body) > 0 {
				return fmt.Errorf("cpp: %s::%s is pure but has a body", c.Name, m.Name)
			}
			if err := p.validateBody(c, m.Body, methodScope(c, m)); err != nil {
				return fmt.Errorf("cpp: %s::%s: %w", c.Name, m.Name, err)
			}
		}
		seenF := map[string]bool{}
		for _, f := range c.Fields {
			if seenF[f.Name] {
				return fmt.Errorf("cpp: class %q declares field %q twice", c.Name, f.Name)
			}
			seenF[f.Name] = true
		}
	}
	for _, f := range p.Funcs {
		scope := map[string]string{}
		for _, prm := range f.Params {
			scope[prm.Name] = prm.Class
		}
		if err := p.validateBody(nil, f.Body, scope); err != nil {
			return fmt.Errorf("cpp: func %s: %w", f.Name, err)
		}
	}
	return nil
}

// methodScope builds the initial variable scope of a method body.
func methodScope(c *Class, _ *Method) map[string]string {
	return map[string]string{"this": c.Name}
}

// validateBody checks that every statement in body refers to declared
// variables, classes, methods, and fields. scope maps variable name to the
// static class name ("" for scalars). It mutates a copy of scope.
func (p *Program) validateBody(owner *Class, body []Stmt, scope map[string]string) error {
	local := make(map[string]string, len(scope))
	for k, v := range scope {
		local[k] = v
	}
	return p.validateStmts(owner, body, local)
}

func (p *Program) validateStmts(owner *Class, body []Stmt, scope map[string]string) error {
	objOf := func(name string) (string, error) {
		cls, ok := scope[name]
		if !ok {
			return "", fmt.Errorf("undeclared variable %q", name)
		}
		if cls == "" {
			return "", fmt.Errorf("variable %q is not an object", name)
		}
		return cls, nil
	}
	checkArgs := func(args []Arg) error {
		for _, a := range args {
			if a.Obj == "" {
				continue
			}
			if _, err := objOf(a.Obj); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range body {
		switch st := s.(type) {
		case New:
			if p.Class(st.Class) == nil {
				return fmt.Errorf("new of undeclared class %q", st.Class)
			}
			scope[st.Dst] = st.Class
		case Assign:
			cls, err := objOf(st.Src)
			if err != nil {
				return err
			}
			scope[st.Dst] = cls
		case VCall:
			cls, err := objOf(st.Obj)
			if err != nil {
				return err
			}
			m := p.resolveMethod(cls, st.Method)
			if m == nil {
				return fmt.Errorf("class %q has no method %q", cls, st.Method)
			}
			if !m.Virtual {
				return fmt.Errorf("virtual call to non-virtual %s::%s", cls, st.Method)
			}
			if err := checkArgs(st.Args); err != nil {
				return err
			}
		case NVCall:
			cls, err := objOf(st.Obj)
			if err != nil {
				return err
			}
			target := cls
			if st.Class != "" {
				target = st.Class
			}
			if p.resolveMethod(target, st.Method) == nil {
				return fmt.Errorf("class %q has no method %q", target, st.Method)
			}
			if err := checkArgs(st.Args); err != nil {
				return err
			}
		case CallFunc:
			if p.Func(st.Name) == nil {
				return fmt.Errorf("call to undeclared function %q", st.Name)
			}
			if err := checkArgs(st.Args); err != nil {
				return err
			}
		case ReadField:
			cls, err := objOf(st.Obj)
			if err != nil {
				return err
			}
			if !p.hasField(cls, st.Field) {
				return fmt.Errorf("class %q has no field %q", cls, st.Field)
			}
		case WriteField:
			cls, err := objOf(st.Obj)
			if err != nil {
				return err
			}
			if !p.hasField(cls, st.Field) {
				return fmt.Errorf("class %q has no field %q", cls, st.Field)
			}
		case Return:
			if st.Obj != "" {
				if _, err := objOf(st.Obj); err != nil {
					return err
				}
			}
		case If:
			if err := p.validateBody(owner, st.Then, scope); err != nil {
				return err
			}
			if err := p.validateBody(owner, st.Else, scope); err != nil {
				return err
			}
		case Loop:
			if err := p.validateBody(owner, st.Body, scope); err != nil {
				return err
			}
		case Opaque:
			// Always valid.
		default:
			return fmt.Errorf("unknown statement %T", s)
		}
	}
	return nil
}

// resolveMethod resolves method name against class cls, walking primary and
// secondary bases. Returns the nearest declaration.
func (p *Program) resolveMethod(cls, name string) *Method {
	for c := p.Class(cls); c != nil; {
		if m := c.Method(name); m != nil {
			return m
		}
		// Search secondary bases breadth-first after the primary chain.
		for _, b := range c.Bases[min(1, len(c.Bases)):] {
			if m := p.resolveMethod(b, name); m != nil {
				return m
			}
		}
		c = p.Class(c.PrimaryBase())
	}
	return nil
}

// hasField reports whether cls (or an ancestor) declares field name.
func (p *Program) hasField(cls, name string) bool {
	for c := p.Class(cls); c != nil; {
		for _, f := range c.Fields {
			if f.Name == name {
				return true
			}
		}
		for _, b := range c.Bases[min(1, len(c.Bases)):] {
			if p.hasField(b, name) {
				return true
			}
		}
		c = p.Class(c.PrimaryBase())
	}
	return false
}

// IsAbstract reports whether class name has a pure virtual method that is
// not overridden by name itself or an ancestor along the primary chain.
func (p *Program) IsAbstract(name string) bool {
	c := p.Class(name)
	if c == nil {
		return false
	}
	// Collect every virtual method visible on the class and check whether
	// the nearest declaration is pure.
	for _, mname := range p.visibleVirtuals(name) {
		if m := p.resolveMethod(name, mname); m != nil && m.Pure {
			return true
		}
	}
	return false
}

// visibleVirtuals returns the names of all virtual methods visible on class
// name (declared or inherited), sorted for determinism.
func (p *Program) visibleVirtuals(name string) []string {
	set := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		c := p.Class(n)
		if c == nil {
			return
		}
		for _, b := range c.Bases {
			walk(b)
		}
		for _, m := range c.Methods {
			if m.Virtual {
				set[m.Name] = true
			}
		}
	}
	walk(name)
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SourceHierarchy returns the source-level parent map: child class name to
// primary base name, for every class with a base. Secondary bases are
// returned in the second map (child -> secondary bases).
func (p *Program) SourceHierarchy() (primary map[string]string, secondary map[string][]string) {
	primary = map[string]string{}
	secondary = map[string][]string{}
	for _, c := range p.Classes {
		if len(c.Bases) > 0 {
			primary[c.Name] = c.Bases[0]
		}
		if len(c.Bases) > 1 {
			secondary[c.Name] = append([]string(nil), c.Bases[1:]...)
		}
	}
	return primary, secondary
}
