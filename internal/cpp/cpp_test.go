package cpp

import "testing"

func valid() *Program {
	return &Program{
		Name: "t",
		Classes: []*Class{
			{Name: "A", Fields: []Field{{Name: "x"}}, Methods: []*Method{
				{Name: "m", Virtual: true},
				{Name: "p", Virtual: true, Pure: true},
			}},
			{Name: "B", Bases: []string{"A"}, Methods: []*Method{
				{Name: "p", Virtual: true},
				{Name: "n", Virtual: true},
			}},
		},
		Funcs: []*Func{
			{Name: "use", Body: []Stmt{
				New{Dst: "o", Class: "B"},
				VCall{Obj: "o", Method: "m"},
				ReadField{Obj: "o", Field: "x"},
				WriteField{Obj: "o", Field: "x"},
				Assign{Dst: "p", Src: "o"},
				If{Then: []Stmt{VCall{Obj: "p", Method: "n"}}},
				Loop{Body: []Stmt{Opaque{Seed: 1}}},
				Return{Obj: "o"},
			}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
	}{
		{"duplicate class", func(p *Program) { p.Classes = append(p.Classes, &Class{Name: "A"}) }},
		{"unknown base", func(p *Program) { p.Classes[1].Bases = []string{"Z"} }},
		{"base after derived", func(p *Program) { p.Classes[0], p.Classes[1] = p.Classes[1], p.Classes[0] }},
		{"pure with body", func(p *Program) { p.Classes[0].Methods[1].Body = []Stmt{Opaque{}} }},
		{"pure non-virtual", func(p *Program) { p.Classes[0].Methods[1].Virtual = false }},
		{"new of unknown class", func(p *Program) { p.Funcs[0].Body[0] = New{Dst: "o", Class: "Z"} }},
		{"call of unknown method", func(p *Program) { p.Funcs[0].Body[1] = VCall{Obj: "o", Method: "zz"} }},
		{"unknown field", func(p *Program) { p.Funcs[0].Body[2] = ReadField{Obj: "o", Field: "zz"} }},
		{"undeclared variable", func(p *Program) { p.Funcs[0].Body[1] = VCall{Obj: "q", Method: "m"} }},
		{"duplicate function", func(p *Program) { p.Funcs = append(p.Funcs, &Func{Name: "use"}) }},
	}
	for _, tc := range cases {
		p := valid()
		tc.mut(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestHierarchyQueries(t *testing.T) {
	p := valid()
	if got := p.Ancestors("B"); len(got) != 1 || got[0] != "A" {
		t.Errorf("Ancestors(B) = %v", got)
	}
	if got := p.Subclasses("A"); len(got) != 1 || got[0] != "B" {
		t.Errorf("Subclasses(A) = %v", got)
	}
	if !p.Instantiated("B") || p.Instantiated("A") {
		t.Error("Instantiated wrong")
	}
	if !p.IsAbstract("A") || p.IsAbstract("B") {
		t.Error("IsAbstract wrong (A has un-overridden pure p, B overrides it)")
	}
	prim, sec := p.SourceHierarchy()
	if prim["B"] != "A" || len(sec) != 0 {
		t.Errorf("SourceHierarchy = %v %v", prim, sec)
	}
}

func TestPrimaryChain(t *testing.T) {
	p := valid()
	// Add a secondary base to B's subclass to check MI bases are skipped.
	p.Classes = append(p.Classes,
		&Class{Name: "S", Methods: []*Method{{Name: "s", Virtual: true}}},
		&Class{Name: "C", Bases: []string{"B", "S"}})
	if got := p.PrimaryChain("C"); len(got) != 3 || got[0] != "C" || got[1] != "B" || got[2] != "A" {
		t.Errorf("PrimaryChain(C) = %v, want [C B A]", got)
	}
	if got := p.PrimaryChain("A"); len(got) != 1 || got[0] != "A" {
		t.Errorf("PrimaryChain(A) = %v, want [A]", got)
	}
	if got := p.PrimaryChain("Z"); got != nil {
		t.Errorf("PrimaryChain(Z) = %v, want nil", got)
	}
}

func TestResolveThroughChain(t *testing.T) {
	p := valid()
	if m := p.resolveMethod("B", "m"); m == nil || m.Pure {
		t.Error("inherited method not resolved")
	}
	if m := p.resolveMethod("B", "p"); m == nil || m.Pure {
		t.Error("override should shadow the pure declaration")
	}
	if !p.hasField("B", "x") {
		t.Error("inherited field not found")
	}
}
