// Package disasm decodes the code section of a binary image back into IR
// functions. Function boundaries come from the image's entry table; the
// paper treats boundary identification as an orthogonal solved problem
// (ByteWeight et al.), so the loader provides it.
package disasm

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/ir"
)

// Function decodes the function entered at entry.
func Function(img *image.Image, entry uint64) (*ir.Function, error) {
	start, end, err := img.FuncBounds(entry)
	if err != nil {
		return nil, err
	}
	if (end-start)%ir.InstSize != 0 {
		return nil, fmt.Errorf("disasm: function at 0x%x has ragged size %d", entry, end-start)
	}
	f := &ir.Function{Entry: entry}
	for a := start; a < end; a += ir.InstSize {
		off := a - image.CodeBase
		in, err := ir.Decode(img.Code[off : off+ir.InstSize])
		if err != nil {
			return nil, fmt.Errorf("disasm: at 0x%x: %w", a, err)
		}
		f.Insts = append(f.Insts, in)
	}
	return f, nil
}

// All decodes every function in the image, in entry order.
func All(img *image.Image) ([]*ir.Function, error) {
	out := make([]*ir.Function, 0, len(img.Entries))
	for _, e := range img.Entries {
		f, err := Function(img, e)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// CodeRefs scans decoded functions for absolute references into the rodata
// section (address-formation instructions), returning the referenced
// addresses in ascending order without duplicates. This is how candidate
// vtable locations are found, mirroring how real tools follow relocations.
func CodeRefs(img *image.Image, fns []*ir.Function) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, f := range fns {
		for _, in := range f.Insts {
			if in.Op != ir.OpLea && in.Op != ir.OpMovImm {
				continue
			}
			if img.InRodata(in.Imm) && !seen[in.Imm] {
				seen[in.Imm] = true
				out = append(out, in.Imm)
			}
		}
	}
	sortU64(out)
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
