package disasm

import (
	"testing"

	"repro/internal/image"
	"repro/internal/ir"
)

func codeOf(insts ...ir.Inst) []byte {
	var out []byte
	for _, in := range insts {
		var b [ir.InstSize]byte
		in.Encode(b[:])
		out = append(out, b[:]...)
	}
	return out
}

func TestFunctionDecoding(t *testing.T) {
	img := &image.Image{
		Name: "t",
		Code: codeOf(
			ir.Inst{Op: ir.OpMovImm, Rd: 8, Imm: 1},
			ir.Inst{Op: ir.OpRet},
			ir.Inst{Op: ir.OpNop},
			ir.Inst{Op: ir.OpRet},
		),
		Entries: []uint64{image.CodeBase, image.CodeBase + 2*ir.InstSize},
		Imports: map[uint64]string{},
	}
	fns, err := All(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 || len(fns[0].Insts) != 2 || len(fns[1].Insts) != 2 {
		t.Fatalf("decoded %v", fns)
	}
	if fns[0].Insts[0].Op != ir.OpMovImm || fns[1].Insts[0].Op != ir.OpNop {
		t.Error("instruction content wrong")
	}
	if _, err := Function(img, image.CodeBase+ir.InstSize); err == nil {
		t.Error("non-entry address accepted")
	}
}

func TestCodeRefsFindsRodataReferences(t *testing.T) {
	target := image.RodataBase + 16
	img := &image.Image{
		Name: "t",
		Code: codeOf(
			ir.Inst{Op: ir.OpLea, Rd: 8, Imm: target},
			ir.Inst{Op: ir.OpLea, Rd: 9, Imm: target}, // duplicate
			ir.Inst{Op: ir.OpMovImm, Rd: 10, Imm: 12345},
			ir.Inst{Op: ir.OpRet},
		),
		Rodata:  make([]byte, 64),
		Entries: []uint64{image.CodeBase},
		Imports: map[uint64]string{},
	}
	fns, err := All(img)
	if err != nil {
		t.Fatal(err)
	}
	refs := CodeRefs(img, fns)
	if len(refs) != 1 || refs[0] != target {
		t.Fatalf("refs = %v, want [%#x]", refs, target)
	}
}
