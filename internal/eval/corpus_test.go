package eval

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestCorpusDeterministicAcrossWorkers is the batch engine's acceptance
// property: analyzing all 19 Table 2 benchmarks through the corpus
// scheduler yields per-image results deep-equal to a serial run, for a
// fully serial shared pool (Workers=1) and a contended one (Workers=8).
func TestCorpusDeterministicAcrossWorkers(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	serial, err := RunBenchmarksWithConfig(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		c := core.DefaultConfig()
		c.Workers = workers
		outs, err := RunBenchmarksWithConfig(context.Background(), c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(outs) != len(serial) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(outs), len(serial))
		}
		for i, o := range outs {
			want := serial[i].Res
			got := o.Res
			if !reflect.DeepEqual(got.Dist, want.Dist) ||
				!reflect.DeepEqual(got.Families, want.Families) ||
				!reflect.DeepEqual(got.Hierarchy, want.Hierarchy) ||
				!reflect.DeepEqual(got.MultiParents, want.MultiParents) ||
				!reflect.DeepEqual(got.Structural, want.Structural) {
				t.Errorf("workers=%d: benchmark %s diverged from the serial run",
					workers, o.Bench.Name)
			}
		}
	}
}

// TestCorpusCancellation: canceling the suite context aborts the corpus
// run with the context error instead of returning partial outcomes.
func TestCorpusCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBenchmarksWithConfig(ctx, core.DefaultConfig()); err == nil {
		t.Fatal("canceled corpus run returned nil error")
	}
}
