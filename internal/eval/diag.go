package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

// Diagnose renders a detailed per-benchmark report: families, surviving
// candidates, reconstructed vs ground-truth parents, and pairwise
// distances, all with metadata names. Used by tests and cmd/rockbench to
// understand where a benchmark's errors come from.
func Diagnose(b *bench.Benchmark) (string, error) {
	img, meta, err := b.Build()
	if err != nil {
		return "", err
	}
	res, err := core.Analyze(img, core.DefaultConfig())
	if err != nil {
		return "", err
	}
	name := core.TypeNamer(meta)
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", b.Name)
	gt, err := GroundTruthForest(meta)
	if err != nil {
		return "", err
	}
	for i, fam := range res.Structural.Families {
		fmt.Fprintf(&sb, "family %d:\n", i)
		for _, t := range fam {
			var cands []string
			for _, p := range res.Structural.PossibleParents[t] {
				cands = append(cands, name(p))
			}
			gp := "-"
			if p, ok := gt.Parent(t); ok {
				gp = name(p)
			}
			hp := "-"
			if res.Hierarchy != nil {
				if p, ok := res.Hierarchy.Parent(t); ok {
					hp = name(p)
				}
			}
			mark := " "
			if gp != hp {
				mark = "*"
			}
			fmt.Fprintf(&sb, "  %s %-28s gt=%-24s got=%-24s cands=[%s]\n",
				mark, name(t), gp, hp, strings.Join(cands, " "))
		}
	}
	// Distances for multi-candidate types.
	var pairs [][2]uint64
	for pc := range res.Dist {
		pairs = append(pairs, pc)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][1] != pairs[j][1] {
			return pairs[i][1] < pairs[j][1]
		}
		return pairs[i][0] < pairs[j][0]
	})
	for _, pc := range pairs {
		if len(res.Structural.PossibleParents[pc[1]]) > 1 {
			fmt.Fprintf(&sb, "  D(%s || %s) = %.4f\n", name(pc[0]), name(pc[1]), res.Dist[pc])
		}
	}
	return sb.String(), nil
}
