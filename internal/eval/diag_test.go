package eval

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/slm"
)

func TestDiagnoseRendersFamiliesAndMistakes(t *testing.T) {
	s, err := Diagnose(bench.ByName("tinyserver"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"family 0:", "TcpServer", "TimerTask", "D("} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, s)
		}
	}
	// The engineered mistake must be flagged with a '*'.
	if !strings.Contains(s, "* TimerTask") {
		t.Errorf("TimerTask misplacement not flagged:\n%s", s)
	}
}

func TestRunWithConfigMetricSwap(t *testing.T) {
	b := bench.ByName("echoparams")
	cfg := core.DefaultConfig()
	cfg.Metric = slm.MetricJSDivergence
	row, err := RunWithConfig(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The JS variants lose the asymmetry; on the chain benchmark they must
	// not beat DKL's exact recovery.
	klRow, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if klRow.WithMissing+klRow.WithAdded > row.WithMissing+row.WithAdded {
		t.Errorf("DKL (%v/%v) should be at least as good as JS (%v/%v)",
			klRow.WithMissing, klRow.WithAdded, row.WithMissing, row.WithAdded)
	}
}

func TestGroundTruthForestExcludesSecondaryTables(t *testing.T) {
	img, err := buildMI()
	if err != nil {
		t.Fatal(err)
	}
	gt, err := GroundTruthForest(img.Meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range img.Meta.Types {
		if tm.Secondary && gt.Has(tm.VTable) {
			t.Errorf("secondary table %#x in ground-truth forest", tm.VTable)
		}
		if !tm.Secondary && !gt.Has(tm.VTable) {
			t.Errorf("primary table %#x missing from ground-truth forest", tm.VTable)
		}
	}
}

func TestScoreUsesWorstCoOptimal(t *testing.T) {
	// td_unittest: the two-way splice direction is ambiguous in principle;
	// Score must report a single consistent worst case (added exactly 1).
	b := bench.ByName("td_unittest")
	row, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if row.WithAdded != 0.5 {
		t.Errorf("worst-case added = %v, want 0.5 (one spurious successor over two types)", row.WithAdded)
	}
}

// buildMI compiles the multiple-inheritance example with metadata.
func buildMI() (*image.Image, error) {
	return compiler.Compile(bench.MultipleInheritance(), compiler.DefaultOptions())
}
