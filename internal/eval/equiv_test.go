package eval

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/image"
)

// analyzeWith runs one image under the given evidence configuration.
func analyzeWith(t *testing.T, label string, img *image.Image, workers int, providers []string, weights map[string]float64) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.UseSLM = true
	cfg.Workers = workers
	cfg.Evidence = providers
	cfg.FuseWeights = weights
	res, err := core.Analyze(img, cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return res
}

// assertProviderEquivalence pins the evidence-provider refactor on one
// image: the default (SLM-only) run must be deep-equal across a serial
// and a contended worker count, fusing the subtype provider at weight 0
// must reproduce the pure-SLM result exactly (the fusion layer passes
// the sole live provider's scores through untouched), and the default
// fused configuration must itself be deterministic across worker counts.
func assertProviderEquivalence(t *testing.T, label string, img *image.Image) {
	t.Helper()
	slm1 := analyzeWith(t, label+"/slm/w1", img, 1, nil, nil)
	slm8 := analyzeWith(t, label+"/slm/w8", img, 8, nil, nil)
	if !reflect.DeepEqual(slm1, slm8) {
		t.Errorf("%s: SLM-only result differs between workers 1 and 8", label)
	}
	zero := analyzeWith(t, label+"/zero", img, 8,
		[]string{"slm", "subtype"}, map[string]float64{"slm": 1, "subtype": 0})
	if !reflect.DeepEqual(zero, slm8) {
		t.Errorf("%s: fusion with weights {slm:1, subtype:0} diverged from pure SLM", label)
	}
	fused1 := analyzeWith(t, label+"/fused/w1", img, 1, []string{"slm", "subtype"}, nil)
	fused8 := analyzeWith(t, label+"/fused/w8", img, 8, []string{"slm", "subtype"}, nil)
	if !reflect.DeepEqual(fused1, fused8) {
		t.Errorf("%s: fused result differs between workers 1 and 8", label)
	}
}

// TestProviderEquivalenceTable2 pins the refactor across the whole
// Table 2 suite.
func TestProviderEquivalenceTable2(t *testing.T) {
	for _, b := range bench.All() {
		img, _, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		assertProviderEquivalence(t, b.Name, img)
	}
}

// TestProviderEquivalenceSynth extends the pin to the adversarial corner
// of the input space: every hostile configuration of the synth grid,
// where candidate sets are noisiest and the subtype scorer sees the most
// degenerate vtable structure.
func TestProviderEquivalenceSynth(t *testing.T) {
	ran := 0
	for _, c := range bench.SynthGrid() {
		if c.Friendly {
			continue
		}
		img, _, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		assertProviderEquivalence(t, c.Name, img)
		ran++
	}
	if ran < 5 {
		t.Fatalf("only %d adversarial configs exercised, want >= 5", ran)
	}
}
