// Package eval runs the Table 2 evaluation: for every benchmark it builds
// the stripped binary, runs Rock with and without SLMs, and measures the
// application distance (§6.3) against the ground-truth induced hierarchy
// recorded by the compiler (the RTTI/debug-symbol analogue of §6.2).
//
// Following §4.2.2 ("we report the worst-case results: those obtained by
// choosing the least precise hierarchy"), when majority voting leaves
// several co-optimal hierarchies in a family the per-family choice that
// maximizes the benchmark's error is used.
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hierarchy"
	"repro/internal/image"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// Row is one Table 2 line: measured values plus the paper's reference.
type Row struct {
	Name       string
	SizeKB     float64
	Types      int
	Resolvable bool

	WithoutMissing float64
	WithoutAdded   float64
	WithMissing    float64
	WithAdded      float64

	Paper bench.PaperRow
}

// Run evaluates one benchmark.
func Run(b *bench.Benchmark) (*Row, error) {
	return RunWithConfig(b, core.DefaultConfig())
}

// RunWithConfig evaluates one benchmark under a custom pipeline
// configuration (used by the ablation benches). cfg.UseSLM is forced on;
// the "without SLMs" column always comes from the structural relation.
func RunWithConfig(b *bench.Benchmark, cfg core.Config) (*Row, error) {
	img, meta, err := b.Build()
	if err != nil {
		return nil, err
	}
	cfg.UseSLM = true
	res, err := core.Analyze(img, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return Score(b, img, meta, res)
}

// Score computes the row from an analysis result.
func Score(b *bench.Benchmark, img *image.Image, meta *image.Metadata, res *core.Result) (*Row, error) {
	gt, err := GroundTruthForest(meta)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	counted, err := countedTypes(b, meta)
	if err != nil {
		return nil, err
	}
	gtSucc := gt.AllSuccessors()

	row := &Row{
		Name:       b.Name,
		SizeKB:     float64(len(img.Code)+len(img.Rodata)) / 1024,
		Types:      len(counted),
		Resolvable: res.Structural.Resolvable(),
		Paper:      b.Paper,
	}

	// Without SLMs: a type is a successor of each of its possible parents.
	var allTypes []uint64
	for _, v := range res.VTables {
		allTypes = append(allTypes, v.Addr)
	}
	woSucc := hierarchy.PossibleParentSuccessors(res.Structural.PossibleParents, allTypes)
	wo := hierarchy.ApplicationDistance(gtSucc, woSucc, counted)
	row.WithoutMissing, row.WithoutAdded = wo.AvgMissing, wo.AvgAdded

	// With SLMs: per family, the worst-case surviving arborescence.
	countedSet := map[uint64]bool{}
	for _, t := range counted {
		countedSet[t] = true
	}
	totalMissing, totalAdded := 0, 0
	for _, fr := range res.Families {
		worst, bm, ba := -1, 0, 0
		for _, arb := range fr.Arbs {
			m, a := familyError(fr.Types, arb, gtSucc, countedSet)
			if m+a > worst {
				worst, bm, ba = m+a, m, a
			}
		}
		totalMissing += bm
		totalAdded += ba
	}
	if len(counted) > 0 {
		row.WithMissing = float64(totalMissing) / float64(len(counted))
		row.WithAdded = float64(totalAdded) / float64(len(counted))
	}
	return row, nil
}

// familyError computes the missing/added totals contributed by one family
// under one arborescence choice.
func familyError(types []uint64, arb map[uint64]uint64, gtSucc map[uint64]map[uint64]bool, counted map[uint64]bool) (missing, added int) {
	// Successor sets within the family under this arborescence.
	children := map[uint64][]uint64{}
	for c, p := range arb {
		children[p] = append(children[p], c)
	}
	var succOf func(t uint64, out map[uint64]bool)
	succOf = func(t uint64, out map[uint64]bool) {
		for _, c := range children[t] {
			if !out[c] {
				out[c] = true
				succOf(c, out)
			}
		}
	}
	for _, t := range types {
		if !counted[t] {
			continue
		}
		h := map[uint64]bool{}
		succOf(t, h)
		g := gtSucc[t]
		for s := range g {
			if !h[s] {
				missing++
			}
		}
		for s := range h {
			if !g[s] {
				added++
			}
		}
	}
	return missing, added
}

// GroundTruthForest builds the induced binary type hierarchy from metadata
// (primary vtables only; secondary MI subobject tables are the synthetic
// classes the paper filters).
func GroundTruthForest(meta *image.Metadata) (*hierarchy.Forest, error) {
	var nodes []uint64
	for _, tm := range meta.Types {
		if !tm.Secondary {
			nodes = append(nodes, tm.VTable)
		}
	}
	f := hierarchy.NewForest(nodes)
	for _, tm := range meta.Types {
		if tm.Secondary || tm.Parent == 0 {
			continue
		}
		if err := f.SetParent(tm.VTable, tm.Parent); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// countedTypes resolves the benchmark's evaluated type universe to vtable
// addresses.
func countedTypes(b *bench.Benchmark, meta *image.Metadata) ([]uint64, error) {
	var out []uint64
	if len(b.Counted) == 0 {
		for _, tm := range meta.Types {
			if !tm.Secondary {
				out = append(out, tm.VTable)
			}
		}
		return out, nil
	}
	for _, name := range b.Counted {
		tm := meta.TypeByName(name)
		if tm == nil {
			return nil, fmt.Errorf("bench %s: counted type %q not emitted", b.Name, name)
		}
		out = append(out, tm.VTable)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// RunAll evaluates every registered benchmark in Table 2 order.
func RunAll() ([]*Row, error) {
	return RunAllWithConfig(core.DefaultConfig())
}

// BenchOutcome bundles one benchmark's built image and analysis result,
// for callers that score or compare the raw pipeline output (rockbench).
type BenchOutcome struct {
	Bench *bench.Benchmark
	Image *image.Image
	Meta  *image.Metadata
	Res   *core.Result
}

// RunBenchmarksWithConfig builds every registered benchmark and analyzes
// the whole suite through the corpus batch engine (internal/corpus): all
// images share ONE bounded worker pool of cfg.Workers, images whose
// snapshots probe fully warm bypass the analysis queue, and the outcomes
// come back in Table 2 order, deep-equal to a sequential per-image loop
// for every worker count.
func RunBenchmarksWithConfig(ctx context.Context, cfg core.Config) ([]*BenchOutcome, error) {
	benches := bench.All()
	outs := make([]*BenchOutcome, len(benches))
	for i, b := range benches {
		img, meta, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", b.Name, err)
		}
		outs[i] = &BenchOutcome{Bench: b, Image: img, Meta: meta}
	}
	cfg.UseSLM = true
	scratch := slm.NewScratchPool()
	items, _, err := corpus.Run(ctx, len(outs), corpus.Options{Workers: cfg.Workers},
		func(i int) bool {
			return core.ProbeSnapshot(outs[i].Image, cfg) == snapshot.LevelHierarchy
		},
		func(ctx context.Context, i int, sh *pool.Shared) (*core.Result, error) {
			c := cfg
			c.Pool = sh
			c.Scratch = scratch
			return core.AnalyzeContext(ctx, outs[i].Image, c)
		})
	if err != nil {
		return nil, err
	}
	for i, it := range items {
		if it.Err != nil {
			return nil, fmt.Errorf("bench %s: %w", benches[i].Name, it.Err)
		}
		outs[i].Res = it.Value
	}
	return outs, nil
}

// RunAllWithConfig evaluates every registered benchmark in Table 2 order
// under a custom pipeline configuration (e.g. a fixed worker-pool size).
// The suite is scheduled by the corpus engine — cross-image concurrency on
// one shared pool — and the rows are identical to evaluating each
// benchmark alone.
func RunAllWithConfig(cfg core.Config) ([]*Row, error) {
	outs, err := RunBenchmarksWithConfig(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]*Row, len(outs))
	for i, o := range outs {
		r, err := Score(o.Bench, o.Image, o.Meta, o.Res)
		if err != nil {
			return nil, err
		}
		rows[i] = r
	}
	return rows, nil
}

// Table2 renders rows in the paper's layout: resolvable benchmarks above
// the line, unresolvable below, with the paper's reference values in
// parentheses.
func Table2(rows []*Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %6s | %18s %18s | %18s %18s\n",
		"Benchmark", "size(Kb)", "types",
		"w/o missing", "w/o added", "with missing", "with added")
	line := strings.Repeat("-", 120)
	fmt.Fprintln(&b, line)
	printed := false
	for i, r := range rows {
		if i > 0 && printed && !r.Resolvable && rows[i-1].Resolvable {
			fmt.Fprintln(&b, line)
		}
		printed = true
		cell := func(measured, paper float64) string {
			return fmt.Sprintf("%6.2f (paper %4.2f)", measured, paper)
		}
		fmt.Fprintf(&b, "%-18s %8.1f %6d | %s %s | %s %s\n",
			r.Name, r.SizeKB, r.Types,
			cell(r.WithoutMissing, r.Paper.WithoutMissing),
			cell(r.WithoutAdded, r.Paper.WithoutAdded),
			cell(r.WithMissing, r.Paper.WithMissing),
			cell(r.WithAdded, r.Paper.WithAdded))
	}
	return b.String()
}
