package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
)

// near reports |a-b| <= tol.
func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// expectRow runs a benchmark and checks measured averages against expected
// values with the given tolerance.
func expectRow(t *testing.T, name string, woM, woA, wM, wA, tol float64, wantResolvable bool) *Row {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	row, err := Run(b)
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	if row.Types != b.Paper.Types {
		t.Errorf("%s: evaluated %d types, paper has %d", name, row.Types, b.Paper.Types)
	}
	if row.Resolvable != wantResolvable {
		t.Errorf("%s: resolvable=%v, want %v", name, row.Resolvable, wantResolvable)
	}
	if !near(row.WithoutMissing, woM, tol) || !near(row.WithoutAdded, woA, tol) {
		t.Errorf("%s without SLMs: missing=%.3f added=%.3f, want %.3f/%.3f",
			name, row.WithoutMissing, row.WithoutAdded, woM, woA)
	}
	if !near(row.WithMissing, wM, tol) || !near(row.WithAdded, wA, tol) {
		t.Errorf("%s with SLMs: missing=%.3f added=%.3f, want %.3f/%.3f",
			name, row.WithMissing, row.WithAdded, wM, wA)
	}
	return row
}

func TestSimpleResolvableBenchmarks(t *testing.T) {
	for _, name := range []string{"pop3", "smtp", "cppcheck", "patl", "MidiLib"} {
		t.Run(name, func(t *testing.T) {
			expectRow(t, name, 0, 0, 0, 0, 0.001, true)
		})
	}
}

// TestUnresolvableBenchmarks locks in the below-the-line rows. For rows the
// synthetic programs reproduce exactly, tolerances are tight; the two
// clique-heavy rows (Analyzer, Smoothing) assert the paper's *shape*: a
// drastic added-types reduction with a small missing-types cost.
func TestUnresolvableBenchmarks(t *testing.T) {
	t.Run("echoparams", func(t *testing.T) {
		r := expectRow(t, "echoparams", 0, 1.5, 0, 0, 0.001, false)
		if r.WithoutAdded <= r.WithAdded {
			t.Errorf("SLMs should reduce added types")
		}
	})
	t.Run("tinyserver", func(t *testing.T) {
		expectRow(t, "tinyserver", 0, 0.75, 0, 0.25, 0.001, false)
	})
	t.Run("td_unittest", func(t *testing.T) {
		expectRow(t, "td_unittest", 0, 1.0, 0, 0.5, 0.001, false)
	})
	t.Run("gperf", func(t *testing.T) {
		expectRow(t, "gperf", 0, 5.0, 0, 0.5, 0.001, false)
	})
	t.Run("libctemplate", func(t *testing.T) {
		expectRow(t, "libctemplate", 0.25, 10.0/36, 0.25, 4.0/36, 0.001, false)
	})
	t.Run("CGridListCtrlEx", func(t *testing.T) {
		expectRow(t, "CGridListCtrlEx", 0, 8.0/28, 0, 2.0/28, 0.001, false)
	})
	t.Run("ShowTraf", func(t *testing.T) {
		expectRow(t, "ShowTraf", 1.0/25, 8.0/25, 1.0/25, 2.0/25, 0.001, false)
	})
	t.Run("Analyzer", func(t *testing.T) {
		b := bench.ByName("Analyzer")
		r, err := Run(b)
		if err != nil {
			t.Fatal(err)
		}
		if !near(r.WithMissing, 0.25, 0.001) || !near(r.WithoutMissing, 5.0/24, 0.001) {
			t.Errorf("missing: without=%.3f with=%.3f, want 0.208/0.25", r.WithoutMissing, r.WithMissing)
		}
		if r.WithoutAdded < 5 || r.WithAdded > 2 || r.WithoutAdded < 5*r.WithAdded {
			t.Errorf("added shape broken: without=%.3f with=%.3f", r.WithoutAdded, r.WithAdded)
		}
	})
	t.Run("Smoothing", func(t *testing.T) {
		b := bench.ByName("Smoothing")
		r, err := Run(b)
		if err != nil {
			t.Fatal(err)
		}
		if !near(r.WithMissing, 7.0/31, 0.001) || !near(r.WithoutMissing, 6.0/31, 0.001) {
			t.Errorf("missing: without=%.3f with=%.3f", r.WithoutMissing, r.WithMissing)
		}
		if r.WithoutAdded < 5 || r.WithAdded > 2 || r.WithoutAdded < 5*r.WithAdded {
			t.Errorf("added shape broken: without=%.3f with=%.3f", r.WithoutAdded, r.WithAdded)
		}
	})
}

// TestRunAllTable2 exercises the complete harness end to end and checks the
// Table 2 layout invariants.
func TestRunAllTable2(t *testing.T) {
	rows, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("got %d rows, want 19", len(rows))
	}
	resolvable := 0
	for _, r := range rows {
		if r.Resolvable {
			resolvable++
		}
	}
	if resolvable != 10 {
		t.Errorf("%d structurally resolvable benchmarks, paper has 10", resolvable)
	}
	s := Table2(rows)
	for _, b := range bench.All() {
		if !strings.Contains(s, b.Name) {
			t.Errorf("table output missing benchmark %s", b.Name)
		}
	}
}

func TestEngineeredResolvableBenchmarks(t *testing.T) {
	// These match the paper's Table 2 values exactly by construction.
	t.Run("AntispyComplete", func(t *testing.T) {
		expectRow(t, "AntispyComplete", 0, 1.0/3, 0, 1.0/3, 0.001, true)
	})
	t.Run("bafprp", func(t *testing.T) {
		expectRow(t, "bafprp", 7.0/23, 0, 7.0/23, 0, 0.001, true)
	})
	t.Run("tinyxml", func(t *testing.T) {
		expectRow(t, "tinyxml", 8.0/9, 0, 8.0/9, 0, 0.001, true)
	})
	t.Run("tinyxmlSTL", func(t *testing.T) {
		expectRow(t, "tinyxmlSTL", 9.0/15, 4.0/15, 9.0/15, 4.0/15, 0.001, true)
	})
	t.Run("yafe", func(t *testing.T) {
		expectRow(t, "yafe", 0, 3.0/15, 0, 3.0/15, 0.001, true)
	})
}
