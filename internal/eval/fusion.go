package eval

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/evidence/subtype"
)

// FusionSchema identifies the ACC_fusion.json report format.
const FusionSchema = "rock-acc-fusion/v1"

// hardModes are the grid's compiler configurations that erase behavioral
// evidence — the cases fusion exists to improve (devirtualized
// monomorphic sites, COMDAT-folded methods, partially inlined ctors).
var hardModes = map[string]bool{"devirt": true, "comdat": true, "partial": true}

// FusionRow compares one grid configuration's SLM-only reconstruction
// against the fused slm+subtype one.
type FusionRow struct {
	Name     string `json:"name"`
	Shape    string `json:"shape"`
	Mode     string `json:"mode"`
	Friendly bool   `json:"friendly"`
	// Hard marks the behavioral-evidence-erasing modes.
	Hard  bool `json:"hard"`
	Types int  `json:"types"`
	// SLM is the per-edge score of the SLM-only (paper default) run.
	SLM EdgeScore `json:"slm"`
	// Fused is the per-edge score with the subtype provider fused in.
	Fused EdgeScore `json:"fused"`
	// Improved marks a strictly higher fused F1.
	Improved bool `json:"improved"`
}

// FusionReport is the rockbench -fusion accuracy output.
type FusionReport struct {
	Schema string `json:"schema"`
	// Weights records the fusion weights the fused half used.
	Weights map[string]float64 `json:"weights"`
	Configs []*FusionRow       `json:"configs"`
	// Improved counts configurations whose fused F1 is strictly higher;
	// HardImproved restricts the count to the hard modes.
	Improved     int `json:"improved"`
	HardImproved int `json:"hard_improved"`
}

// RunFusionGrid runs the adversarial grid twice — once under the paper's
// SLM-only configuration and once with the subtype provider fused in —
// and pairs the per-config scores. Both halves run through the corpus
// batch engine with cfg's worker budget.
func RunFusionGrid(ctx context.Context, cfg core.Config) (*FusionReport, error) {
	base := cfg
	base.Evidence = nil
	base.FuseWeights = nil
	slmRep, err := RunSynthGrid(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("slm-only grid: %w", err)
	}
	fusedCfg := cfg
	if len(fusedCfg.Evidence) == 0 {
		fusedCfg.Evidence = []string{evidence.NameSLM, evidence.NameSubtype}
	}
	fusedRep, err := RunSynthGrid(ctx, fusedCfg)
	if err != nil {
		return nil, fmt.Errorf("fused grid: %w", err)
	}
	if len(slmRep.Configs) != len(fusedRep.Configs) {
		return nil, fmt.Errorf("grid halves disagree: %d vs %d configs", len(slmRep.Configs), len(fusedRep.Configs))
	}
	rep := &FusionReport{Schema: FusionSchema, Weights: map[string]float64{}}
	for _, name := range fusedCfg.Evidence {
		w := 1.0
		if name == evidence.NameSubtype {
			w = subtype.DefaultWeight
		}
		if ow, ok := fusedCfg.FuseWeights[name]; ok {
			w = ow
		}
		rep.Weights[name] = w
	}
	for i, s := range slmRep.Configs {
		f := fusedRep.Configs[i]
		if s.Name != f.Name {
			return nil, fmt.Errorf("grid halves disagree at %d: %s vs %s", i, s.Name, f.Name)
		}
		row := &FusionRow{
			Name:     s.Name,
			Shape:    s.Shape,
			Mode:     s.Mode,
			Friendly: s.Friendly,
			Hard:     hardModes[s.Mode],
			Types:    s.Types,
			SLM:      s.Edge,
			Fused:    f.Edge,
			Improved: f.Edge.F1 > s.Edge.F1,
		}
		if row.Improved {
			rep.Improved++
			if row.Hard {
				rep.HardImproved++
			}
		}
		rep.Configs = append(rep.Configs, row)
	}
	return rep, nil
}

// CheckFusion enforces the fusion acceptance contract: the fused F1 must
// not fall below the SLM-only F1 on any configuration, and must be
// strictly higher on at least minHardImproved hard-mode configurations.
func CheckFusion(rep *FusionReport, minHardImproved int) error {
	var problems []string
	for _, row := range rep.Configs {
		if row.Fused.F1 < row.SLM.F1 {
			problems = append(problems,
				fmt.Sprintf("config %s: fused F1 %.4f below slm-only %.4f",
					row.Name, row.Fused.F1, row.SLM.F1))
		}
	}
	if rep.HardImproved < minHardImproved {
		problems = append(problems,
			fmt.Sprintf("only %d hard-mode configs improved, want >= %d", rep.HardImproved, minHardImproved))
	}
	if len(problems) == 0 {
		return nil
	}
	return fmt.Errorf("fusion check failed:\n  %s", strings.Join(problems, "\n  "))
}

// FusedAccuracyReport reshapes the fused half of a FusionReport into an
// AccuracyReport so the fused scores gate against the floors file like
// the SLM-only ones.
func FusedAccuracyReport(rep *FusionReport) *AccuracyReport {
	out := &AccuracyReport{Schema: AccSchema}
	for _, row := range rep.Configs {
		out.Configs = append(out.Configs, &SynthRow{
			Name:     row.Name,
			Shape:    row.Shape,
			Mode:     row.Mode,
			Friendly: row.Friendly,
			Types:    row.Types,
			Edge:     row.Fused,
			Tier:     TierOf(row.Fused.F1),
		})
	}
	return out
}

// FusionTable renders the report as an aligned text table.
func FusionTable(rep *FusionReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s | %8s %8s | %s\n", "config", "types", "slm-f1", "fused-f1", "delta")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	for _, r := range rep.Configs {
		mark := ""
		if r.Hard {
			mark = " (hard)"
		}
		fmt.Fprintf(&b, "%-24s %6d | %8.3f %8.3f | %+.3f%s\n",
			r.Name, r.Types, r.SLM.F1, r.Fused.F1, r.Fused.F1-r.SLM.F1, mark)
	}
	fmt.Fprintf(&b, "improved %d/%d configs (%d hard)\n", rep.Improved, len(rep.Configs), rep.HardImproved)
	return b.String()
}
