package eval

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestFusionGrid pins the fusion acceptance contract on the adversarial
// grid: fusing the subtype provider with the SLM sweep at default
// weights must never score below the SLM-only run on any configuration,
// must strictly improve at least 3 hard-mode configurations
// (devirt/comdat/partial — the modes that erase behavioral evidence),
// must keep every friendly configuration at exact F1 1.0, and must clear
// the checked-in v2 floors for both halves.
func TestFusionGrid(t *testing.T) {
	rep, err := RunFusionGrid(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatalf("fusion grid: %v", err)
	}
	t.Logf("\n%s", FusionTable(rep))
	if err := CheckFusion(rep, 3); err != nil {
		t.Error(err)
	}
	for _, row := range rep.Configs {
		if row.Friendly && row.Fused.F1 != 1.0 {
			t.Errorf("friendly config %s: fused F1 %.4f, want exactly 1.0 (fusion must not disturb solved configs)",
				row.Name, row.Fused.F1)
		}
	}
	floors, err := LoadFloors("testdata/acc_floors.json")
	if err != nil {
		t.Fatalf("loading floors: %v", err)
	}
	if err := CheckFusionFloors(rep, floors); err != nil {
		t.Error(err)
	}
}
