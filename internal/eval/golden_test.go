package eval

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files with the current measurements")

// goldenRows renders the Table 2 measurements in a stable, diffable form.
// Only measured values appear (the paper's reference numbers are static
// data); four decimals is far below the determinism guarantee but far
// above the noise floor of any legitimate accuracy change.
func goldenRows(rows []*Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s types=%-3d resolvable=%-5v without=%.4f/%.4f with=%.4f/%.4f\n",
			r.Name, r.Types, r.Resolvable,
			r.WithoutMissing, r.WithoutAdded, r.WithMissing, r.WithAdded)
	}
	return b.String()
}

// TestTable2Golden snapshots the full Table 2 evaluation. Performance PRs
// (parallelism, caching, algorithmic changes) must not silently change
// accuracy: any drift fails here and has to be acknowledged by rerunning
// with -update and justifying the new numbers in EXPERIMENTS.md.
func TestTable2Golden(t *testing.T) {
	rows, err := RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	got := goldenRows(rows)

	golden := filepath.Join("testdata", "table2.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/eval -run TestTable2Golden -update`): %v", err)
	}
	if got == string(want) {
		return
	}
	// Report per-line differences: naming the drifted benchmark beats a
	// full-file dump.
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimRight(string(want), "\n"), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("benchmark count changed: got %d rows, golden has %d\n--- got ---\n%s--- want ---\n%s",
			len(gotLines), len(wantLines), got, want)
	}
	for i := range gotLines {
		if gotLines[i] != wantLines[i] {
			t.Errorf("accuracy drift:\n  got:  %s\n  want: %s", gotLines[i], wantLines[i])
		}
	}
}

// TestTable2GoldenWarmCache reruns the full Table 2 evaluation through the
// snapshot cache: a first pass populates a fresh cache directory, a second
// fully-warm pass restores every stage from disk — and must reproduce the
// golden file byte for byte. This is the accuracy half of the snapshot
// acceptance criterion (the speed half lives in rockbench -snapshot).
func TestTable2GoldenWarmCache(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.CacheDir = t.TempDir()
	if _, err := RunAllWithConfig(cfg); err != nil {
		t.Fatalf("cold pass: %v", err)
	}
	rows, err := RunAllWithConfig(cfg)
	if err != nil {
		t.Fatalf("warm pass: %v", err)
	}
	got := goldenRows(rows)
	want, err := os.ReadFile(filepath.Join("testdata", "table2.golden"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if got != string(want) {
		t.Errorf("warm-cache evaluation drifted from the golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
