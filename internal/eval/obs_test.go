package eval

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

// TestObserverEquivalence pins the observability bus's core contract on
// the full Table 2 suite: an analysis recorded on a bus (with a trace
// sink attached, the most invasive configuration) produces a Result
// deep-equal to the unobserved run — observation may measure, never
// steer. It also sanity-checks that the record is actually populated:
// every pipeline stage reported, and the headline counters non-zero.
func TestObserverEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, b := range bench.All() {
		img, _, err := b.Build()
		if err != nil {
			t.Fatalf("bench %s: build: %v", b.Name, err)
		}
		cfg := core.DefaultConfig()
		plain, err := core.AnalyzeContext(ctx, img, cfg)
		if err != nil {
			t.Fatalf("bench %s: unobserved analysis: %v", b.Name, err)
		}

		observed := cfg
		observed.Obs = obs.NewBus()
		observed.Obs.Trace = obs.NewTrace()
		got, err := core.AnalyzeContext(ctx, img, observed)
		if err != nil {
			t.Fatalf("bench %s: observed analysis: %v", b.Name, err)
		}
		if !reflect.DeepEqual(plain, got) {
			t.Errorf("bench %s: observed Result diverged from the unobserved one", b.Name)
		}

		// 9 pipeline stages plus the aggregate per-provider attribution row
		// ("evidence:slm") the hierarchy fan-out emits.
		rep := observed.Obs.Report()
		if len(rep.Stages) != 10 {
			t.Errorf("bench %s: %d stage records, want 10 (the full pipeline + provider rows)", b.Name, len(rep.Stages))
		}
		for _, st := range rep.Stages {
			if st.Status != obs.StageRan || st.Failed {
				t.Errorf("bench %s: stage %s recorded %s/failed=%v, want ran", b.Name, st.Name, st.Status, st.Failed)
			}
		}
		if rep.Counters["vtables"] == 0 || rep.Counters["models"] == 0 {
			t.Errorf("bench %s: headline counters empty: %v", b.Name, rep.Counters)
		}
	}
}
