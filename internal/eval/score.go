package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/hierarchy"
)

// EdgeScore is the per-edge confusion summary of one reconstruction: each
// counted type contributes its (ground-truth parent, predicted parent)
// pair. A matching pair is a true positive; a predicted edge that is
// absent or different in the ground truth is a false positive; a
// ground-truth edge that is absent or different in the prediction is a
// false negative (a wrong edge therefore counts once as each).
type EdgeScore struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`

	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

// finish derives the ratio metrics from the counts. An empty denominator
// scores 1.0: predicting no edges where none exist is exact.
func (s *EdgeScore) finish() {
	ratio := func(num, den int) float64 {
		if den == 0 {
			return 1.0
		}
		return float64(num) / float64(den)
	}
	s.Precision = ratio(s.TP, s.TP+s.FP)
	s.Recall = ratio(s.TP, s.TP+s.FN)
	if s.Precision+s.Recall == 0 {
		s.F1 = 0
	} else {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
}

// Accuracy tiers bucket an F1 score for at-a-glance reports.
const (
	TierExcellent = "excellent" // F1 >= 0.95
	TierGood      = "good"      // F1 >= 0.85
	TierFair      = "fair"      // F1 >= 0.70
	TierPoor      = "poor"      // below
)

// TierOf maps an F1 score to its accuracy tier.
func TierOf(f1 float64) string {
	switch {
	case f1 >= 0.95:
		return TierExcellent
	case f1 >= 0.85:
		return TierGood
	case f1 >= 0.70:
		return TierFair
	default:
		return TierPoor
	}
}

// ScoreEdges compares a predicted parent forest against the ground truth
// over the counted types.
func ScoreEdges(gt, pred *hierarchy.Forest, counted []uint64) EdgeScore {
	var s EdgeScore
	for _, t := range counted {
		gtP, gtOK := gt.Parent(t)
		var predP uint64
		predOK := false
		if pred != nil && pred.Has(t) {
			predP, predOK = pred.Parent(t)
		}
		switch {
		case gtOK && predOK && gtP == predP:
			s.TP++
		default:
			if predOK {
				s.FP++
			}
			if gtOK {
				s.FN++
			}
		}
	}
	s.finish()
	return s
}

// Floors is the checked-in accuracy baseline the CI gate compares a fresh
// AccuracyReport against.
type Floors struct {
	Schema string `json:"schema"`
	// MinF1 maps a grid config name to the minimum acceptable per-edge F1
	// of the SLM-only (paper default) configuration.
	MinF1 map[string]float64 `json:"min_f1"`
	// MinF1Fused maps a grid config name to the minimum acceptable
	// per-edge F1 of the fused slm+subtype configuration (schema v2; nil
	// in a v1 file, which then gates only the SLM-only half).
	MinF1Fused map[string]float64 `json:"min_f1_fused,omitempty"`
}

// Floors file schemas: v1 carries SLM-only floors, v2 adds the fused
// configuration's floors. LoadFloors accepts both.
const (
	FloorsSchema   = "rock-acc-floors/v1"
	FloorsSchemaV2 = "rock-acc-floors/v2"
)

// LoadFloors reads a floors file from disk.
func LoadFloors(path string) (*Floors, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Floors
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("floors %s: %w", path, err)
	}
	if f.Schema != FloorsSchema && f.Schema != FloorsSchemaV2 {
		return nil, fmt.Errorf("floors %s: schema %q, want %q or %q", path, f.Schema, FloorsSchema, FloorsSchemaV2)
	}
	return &f, nil
}

// CheckFloors compares a report against the floors. It returns an error
// naming every regressed configuration (and every configuration missing a
// floor, so new grid cells cannot land ungated).
func CheckFloors(rep *AccuracyReport, floors *Floors) error {
	var problems []string
	for _, row := range rep.Configs {
		floor, ok := floors.MinF1[row.Name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("config %s (shape %s, mode %s) has no checked-in accuracy floor",
					row.Name, row.Shape, row.Mode))
			continue
		}
		if row.Edge.F1 < floor {
			problems = append(problems,
				fmt.Sprintf("config %s (shape %s, mode %s) regressed: per-edge F1 %.4f below floor %.4f",
					row.Name, row.Shape, row.Mode, row.Edge.F1, floor))
		}
	}
	// Stale floor entries are not errors (a removed config), but surface
	// them deterministically in the message when real problems exist.
	if len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	return fmt.Errorf("accuracy floor check failed:\n  %s", strings.Join(problems, "\n  "))
}

// CheckFusionFloors gates both halves of a fusion report against a v2
// floors file: the SLM-only scores against MinF1 and the fused scores
// against MinF1Fused. A regression in either half — or a fused config
// with no fused floor — is an error.
func CheckFusionFloors(rep *FusionReport, floors *Floors) error {
	slmHalf := &AccuracyReport{Schema: AccSchema}
	for _, row := range rep.Configs {
		slmHalf.Configs = append(slmHalf.Configs, &SynthRow{
			Name: row.Name, Shape: row.Shape, Mode: row.Mode,
			Friendly: row.Friendly, Types: row.Types, Edge: row.SLM,
		})
	}
	slmErr := CheckFloors(slmHalf, floors)

	var problems []string
	for _, row := range rep.Configs {
		floor, ok := floors.MinF1Fused[row.Name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("config %s (shape %s, mode %s) has no checked-in fused accuracy floor",
					row.Name, row.Shape, row.Mode))
			continue
		}
		if row.Fused.F1 < floor {
			problems = append(problems,
				fmt.Sprintf("config %s (shape %s, mode %s) regressed: fused per-edge F1 %.4f below floor %.4f",
					row.Name, row.Shape, row.Mode, row.Fused.F1, floor))
		}
	}
	if slmErr == nil && len(problems) == 0 {
		return nil
	}
	sort.Strings(problems)
	msg := strings.Join(problems, "\n  ")
	if slmErr != nil {
		if msg != "" {
			return fmt.Errorf("%w\n  %s", slmErr, msg)
		}
		return slmErr
	}
	return fmt.Errorf("fused accuracy floor check failed:\n  %s", msg)
}
