package eval

import (
	"strings"
	"testing"

	"repro/internal/hierarchy"
)

func forest(t *testing.T, nodes []uint64, edges map[uint64]uint64) *hierarchy.Forest {
	t.Helper()
	f := hierarchy.NewForest(nodes)
	for c, p := range edges {
		if err := f.SetParent(c, p); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestScoreEdges(t *testing.T) {
	nodes := []uint64{1, 2, 3, 4}
	gt := forest(t, nodes, map[uint64]uint64{2: 1, 3: 1, 4: 3})

	t.Run("exact", func(t *testing.T) {
		pred := forest(t, nodes, map[uint64]uint64{2: 1, 3: 1, 4: 3})
		s := ScoreEdges(gt, pred, nodes)
		if s.TP != 3 || s.FP != 0 || s.FN != 0 || s.F1 != 1 {
			t.Errorf("exact reconstruction scored %+v", s)
		}
	})
	t.Run("wrong-parent", func(t *testing.T) {
		// 4 hangs off 2 instead of 3: one FP and one FN.
		pred := forest(t, nodes, map[uint64]uint64{2: 1, 3: 1, 4: 2})
		s := ScoreEdges(gt, pred, nodes)
		if s.TP != 2 || s.FP != 1 || s.FN != 1 {
			t.Errorf("wrong parent scored %+v", s)
		}
	})
	t.Run("missing-edge", func(t *testing.T) {
		pred := forest(t, nodes, map[uint64]uint64{2: 1, 3: 1})
		s := ScoreEdges(gt, pred, nodes)
		if s.TP != 2 || s.FP != 0 || s.FN != 1 {
			t.Errorf("missing edge scored %+v", s)
		}
		if s.Precision != 1 || s.Recall <= 0.66 || s.Recall >= 0.67 {
			t.Errorf("metrics %+v", s)
		}
	})
	t.Run("extra-edge", func(t *testing.T) {
		gtFlat := forest(t, nodes, map[uint64]uint64{2: 1})
		pred := forest(t, nodes, map[uint64]uint64{2: 1, 3: 1})
		s := ScoreEdges(gtFlat, pred, nodes)
		if s.TP != 1 || s.FP != 1 || s.FN != 0 {
			t.Errorf("extra edge scored %+v", s)
		}
	})
	t.Run("type-missing-from-prediction", func(t *testing.T) {
		pred := forest(t, []uint64{1, 2, 3}, map[uint64]uint64{2: 1, 3: 1})
		s := ScoreEdges(gt, pred, nodes)
		if s.TP != 2 || s.FN != 1 {
			t.Errorf("undiscovered type scored %+v", s)
		}
	})
	t.Run("empty", func(t *testing.T) {
		e := forest(t, []uint64{1}, nil)
		s := ScoreEdges(e, e, []uint64{1})
		if s.F1 != 1 {
			t.Errorf("trivially exact forest scored %+v", s)
		}
	})
}

func TestTierOf(t *testing.T) {
	cases := []struct {
		f1   float64
		want string
	}{
		{1.0, TierExcellent}, {0.95, TierExcellent},
		{0.94, TierGood}, {0.85, TierGood},
		{0.84, TierFair}, {0.70, TierFair},
		{0.69, TierPoor}, {0, TierPoor},
	}
	for _, c := range cases {
		if got := TierOf(c.f1); got != c.want {
			t.Errorf("TierOf(%v) = %s, want %s", c.f1, got, c.want)
		}
	}
}

func TestCheckFloors(t *testing.T) {
	rep := &AccuracyReport{Schema: AccSchema, Configs: []*SynthRow{
		{Name: "a/x", Shape: "a", Mode: "x", Edge: EdgeScore{F1: 0.9}},
		{Name: "a/y", Shape: "a", Mode: "y", Edge: EdgeScore{F1: 0.5}},
	}}
	ok := &Floors{Schema: FloorsSchema, MinF1: map[string]float64{"a/x": 0.9, "a/y": 0.5}}
	if err := CheckFloors(rep, ok); err != nil {
		t.Errorf("passing report rejected: %v", err)
	}
	regressed := &Floors{Schema: FloorsSchema, MinF1: map[string]float64{"a/x": 0.95, "a/y": 0.5}}
	err := CheckFloors(rep, regressed)
	if err == nil {
		t.Fatal("regression not detected")
	}
	if !strings.Contains(err.Error(), "a/x") || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("failure message does not name the regressed config: %v", err)
	}
	missing := &Floors{Schema: FloorsSchema, MinF1: map[string]float64{"a/x": 0.9}}
	err = CheckFloors(rep, missing)
	if err == nil || !strings.Contains(err.Error(), "a/y") || !strings.Contains(err.Error(), "no checked-in accuracy floor") {
		t.Errorf("missing floor not reported: %v", err)
	}
}

func TestLoadFloors(t *testing.T) {
	f, err := LoadFloors("testdata/acc_floors.json")
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != FloorsSchemaV2 || len(f.MinF1) == 0 || len(f.MinF1Fused) == 0 {
		t.Fatalf("bad floors: %+v", f)
	}
}
