package eval

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/image"
)

// assertSparseDenseEquivalent enforces the sparse sweep's contract
// against a dense reference run on the same image: identical hierarchy,
// identical arborescence sets and multi-parent choices (family Weight is
// excluded — the sparse root weight comes from PairBound, a bound on the
// dense maximum, not the maximum itself), and a Dist map whose keys are
// exactly the structurally-admissible pairs with every value bit-identical
// to the dense matrix entry.
func assertSparseDenseEquivalent(t *testing.T, label string, sparse, dense *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(sparse.Hierarchy, dense.Hierarchy) {
		t.Errorf("%s: sparse and dense hierarchies differ", label)
	}
	if !reflect.DeepEqual(sparse.MultiParents, dense.MultiParents) {
		t.Errorf("%s: sparse and dense multi-parent choices differ", label)
	}
	if len(sparse.Families) != len(dense.Families) {
		t.Fatalf("%s: %d sparse families, %d dense", label, len(sparse.Families), len(dense.Families))
	}
	for i := range sparse.Families {
		s, d := sparse.Families[i], dense.Families[i]
		if !reflect.DeepEqual(s.Types, d.Types) ||
			!reflect.DeepEqual(s.Arbs, d.Arbs) ||
			s.Truncated != d.Truncated {
			t.Errorf("%s: family %d arborescences differ", label, i)
		}
	}
	admissible := 0
	for c, ps := range sparse.Structural.PossibleParents {
		for _, p := range ps {
			admissible++
			sd, ok := sparse.Dist[[2]uint64{p, c}]
			if !ok {
				t.Errorf("%s: sparse Dist missing admissible pair (%#x, %#x)", label, p, c)
				continue
			}
			dd, ok := dense.Dist[[2]uint64{p, c}]
			if !ok || dd != sd {
				t.Errorf("%s: Dist[%#x,%#x] sparse %v, dense %v", label, p, c, sd, dd)
			}
		}
	}
	if len(sparse.Dist) != admissible {
		t.Errorf("%s: sparse Dist has %d entries, want exactly the %d admissible pairs",
			label, len(sparse.Dist), admissible)
	}
}

// sparseVsDense analyzes one image under both sweeps at the given worker
// count and checks equivalence.
func sparseVsDense(t *testing.T, label string, img *image.Image, workers int) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.UseSLM = true
	cfg.Workers = workers
	sparse, err := core.Analyze(img, cfg)
	if err != nil {
		t.Fatalf("%s: sparse analysis: %v", label, err)
	}
	cfg.DenseDist = true
	dense, err := core.Analyze(img, cfg)
	if err != nil {
		t.Fatalf("%s: dense analysis: %v", label, err)
	}
	assertSparseDenseEquivalent(t, label, sparse, dense)
}

// TestSparseSweepMatchesDense is the sparse sweep's acceptance property
// over the whole Table 2 suite: for every benchmark, at a serial and a
// contended worker count, the default sparse candidate-pair sweep
// reconstructs exactly what the dense n×n matrix does.
func TestSparseSweepMatchesDense(t *testing.T) {
	for _, b := range bench.All() {
		img, _, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, workers := range []int{1, 8} {
			sparseVsDense(t, b.Name, img, workers)
		}
	}
}

// TestSparseSweepMatchesDenseSynth extends the equivalence check to the
// adversarial corner of the input space: every hostile (non-friendly)
// configuration of the synth grid — merged families, devirtualized call
// sites, folded vtables, partial RTTI — where the structural relation is
// noisiest and the admissible pair set least like a clean tree.
func TestSparseSweepMatchesDenseSynth(t *testing.T) {
	ran := 0
	for _, c := range bench.SynthGrid() {
		if c.Friendly {
			continue
		}
		img, _, err := c.Build()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for _, workers := range []int{1, 8} {
			sparseVsDense(t, c.Name, img, workers)
		}
		ran++
	}
	if ran < 5 {
		t.Fatalf("only %d adversarial configs exercised, want >= 5", ran)
	}
}
