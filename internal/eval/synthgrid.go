package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/image"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// AccSchema identifies the ACC_synth.json report format.
const AccSchema = "rock-acc/v1"

// FamilyScore is the per-edge score restricted to one generated source
// family (classes sharing an "F<n>" name prefix).
type FamilyScore struct {
	Family string    `json:"family"`
	Types  int       `json:"types"`
	Edge   EdgeScore `json:"edge"`
}

// SynthRow is the scored outcome of one grid configuration.
type SynthRow struct {
	Name     string `json:"name"`
	Shape    string `json:"shape"`
	Mode     string `json:"mode"`
	Friendly bool   `json:"friendly"`
	// Types is the number of counted (primary, emitted) types.
	Types int `json:"types"`
	// Edge is the per-edge score over all counted types.
	Edge EdgeScore `json:"edge"`
	// Tier buckets Edge.F1 (excellent/good/fair/poor).
	Tier string `json:"tier"`
	// Families breaks the score down per generated source family.
	Families []FamilyScore `json:"families"`
}

// AccuracyReport is the rockbench -synth output (ACC_synth.json).
type AccuracyReport struct {
	Schema  string      `json:"schema"`
	Configs []*SynthRow `json:"configs"`
}

// RunSynthGrid builds every config of the adversarial grid, analyzes the
// images through the corpus batch engine (one shared worker pool, same
// scheduling contract as the Table 2 suite), and scores each
// reconstruction per edge.
func RunSynthGrid(ctx context.Context, cfg core.Config) (*AccuracyReport, error) {
	grid := bench.SynthGrid()
	type built struct {
		img  *image.Image
		meta *image.Metadata
	}
	outs := make([]built, len(grid))
	for i, c := range grid {
		img, meta, err := c.Build()
		if err != nil {
			return nil, err
		}
		outs[i] = built{img: img, meta: meta}
	}
	cfg.UseSLM = true
	scratch := slm.NewScratchPool()
	items, _, err := corpus.Run(ctx, len(outs), corpus.Options{Workers: cfg.Workers},
		func(i int) bool {
			return core.ProbeSnapshot(outs[i].img, cfg) == snapshot.LevelHierarchy
		},
		func(ctx context.Context, i int, sh *pool.Shared) (*core.Result, error) {
			c := cfg
			c.Pool = sh
			c.Scratch = scratch
			return core.AnalyzeContext(ctx, outs[i].img, c)
		})
	if err != nil {
		return nil, err
	}
	rep := &AccuracyReport{Schema: AccSchema}
	for i, it := range items {
		if it.Err != nil {
			return nil, fmt.Errorf("synth config %s: %w", grid[i].Name, it.Err)
		}
		row, err := ScoreSynth(grid[i], outs[i].meta, it.Value)
		if err != nil {
			return nil, err
		}
		rep.Configs = append(rep.Configs, row)
	}
	return rep, nil
}

// ScoreSynth scores one grid configuration's analysis result against its
// compiler-recorded ground truth.
func ScoreSynth(c *bench.SynthConfig, meta *image.Metadata, res *core.Result) (*SynthRow, error) {
	gt, err := GroundTruthForest(meta)
	if err != nil {
		return nil, fmt.Errorf("synth config %s: %w", c.Name, err)
	}
	var counted []uint64
	for _, tm := range meta.Types {
		if !tm.Secondary {
			counted = append(counted, tm.VTable)
		}
	}
	row := &SynthRow{
		Name:     c.Name,
		Shape:    c.Shape,
		Mode:     c.Mode,
		Friendly: c.Friendly,
		Types:    len(counted),
		Edge:     ScoreEdges(gt, res.Hierarchy, counted),
	}
	row.Tier = TierOf(row.Edge.F1)

	// Per-family breakdown, keyed by the generator's "F<n>" name prefix.
	byFam := map[string][]uint64{}
	for _, t := range counted {
		tm := meta.TypeByVTable(t)
		fam := familyOf(tm.Name)
		byFam[fam] = append(byFam[fam], t)
	}
	fams := make([]string, 0, len(byFam))
	for f := range byFam {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		ts := byFam[f]
		row.Families = append(row.Families, FamilyScore{
			Family: f,
			Types:  len(ts),
			Edge:   ScoreEdges(gt, res.Hierarchy, ts),
		})
	}
	return row, nil
}

// familyOf extracts the family label from a generated class name
// ("F3C17" -> "F3"); names outside the pattern form their own family.
func familyOf(name string) string {
	if strings.HasPrefix(name, "F") {
		if i := strings.IndexByte(name, 'C'); i > 1 {
			return name[:i]
		}
	}
	return name
}

// AccTable renders the report as an aligned text table.
func AccTable(rep *AccuracyReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s | %5s %5s %5s | %6s %6s %6s | %s\n",
		"config", "types", "tp", "fp", "fn", "prec", "rec", "f1", "tier")
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	for _, r := range rep.Configs {
		fmt.Fprintf(&b, "%-24s %6d | %5d %5d %5d | %6.3f %6.3f %6.3f | %s\n",
			r.Name, r.Types, r.Edge.TP, r.Edge.FP, r.Edge.FN,
			r.Edge.Precision, r.Edge.Recall, r.Edge.F1, r.Tier)
	}
	return b.String()
}
