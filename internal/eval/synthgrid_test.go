package eval

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestSynthGridAccuracy runs the full adversarial grid and enforces the
// harness's contract: the grid is large enough to mean something, every
// friendly (cue-preserving) configuration reconstructs exactly — at least
// as accurate as the Table 2 golden file's resolvable rows — and every
// configuration clears its checked-in accuracy floor.
func TestSynthGridAccuracy(t *testing.T) {
	grid := bench.SynthGrid()
	if len(grid) < 20 {
		t.Fatalf("grid has %d configurations, want >= 20", len(grid))
	}
	seen := map[string]bool{}
	for _, c := range grid {
		if seen[c.Name] {
			t.Fatalf("duplicate config name %s", c.Name)
		}
		seen[c.Name] = true
	}

	rep, err := RunSynthGrid(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != AccSchema {
		t.Errorf("report schema %q, want %q", rep.Schema, AccSchema)
	}
	if len(rep.Configs) != len(grid) {
		t.Fatalf("report has %d rows for %d configs", len(rep.Configs), len(grid))
	}
	for _, row := range rep.Configs {
		if row.Types == 0 {
			t.Errorf("%s: no counted types", row.Name)
		}
		if len(row.Families) == 0 {
			t.Errorf("%s: no per-family breakdown", row.Name)
		}
		if row.Tier != TierOf(row.Edge.F1) {
			t.Errorf("%s: tier %q does not match F1 %.3f", row.Name, row.Tier, row.Edge.F1)
		}
		if row.Friendly && row.Edge.F1 != 1 {
			t.Errorf("%s: friendly config F1 %.3f, want exact reconstruction", row.Name, row.Edge.F1)
		}
	}

	floors, err := LoadFloors("testdata/acc_floors.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFloors(rep, floors); err != nil {
		t.Errorf("checked-in floors violated: %v", err)
	}
}
