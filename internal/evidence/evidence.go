// Package evidence defines the pluggable edge-evidence abstraction
// behind the hierarchy solve: a Provider scores one family's
// structurally-admissible (parent, child) pairs, and Fuse combines the
// enabled providers' scores into the single weighted edge score the
// Edmonds arborescence consumes.
//
// The paper's pipeline has exactly one evidence source — the SLM/KL
// behavioral sweep (internal/evidence/slmkl) — but its structural
// analysis only prunes candidate pairs, so hard cases that erase
// behavioral evidence (devirtualized call sites, COMDAT-folded methods,
// partially inlined constructors) leave the solve weighing ties. The
// constraint-based subtyping scorer (internal/evidence/subtype) is a
// second source in the style of Noonan et al.'s machine-code type
// inference and BinSub: vtable-slot overlap, vtable-install flow, and
// caller/callee structure.
//
// Contract, shared by every provider:
//
//   - Scores.Edge is element-wise parallel to FamilyInput.Pairs, lower
//     is a more likely child→parent edge.
//   - Scores.Root must be >= every Edge entry the provider can emit, so
//     the weighted sum preserves Heuristic 4.1 ("root edges are always
//     the worst choice") — each fused root weight dominates each fused
//     pair weight term by term.
//   - Score must be deterministic at any worker count: parallel sweeps
//     write index-owned slots and merge in a fixed order.
//
// Fusion is a plain weighted sum, fused(e) = Σᵖ wₚ·scoreₚ(e), with one
// load-bearing special case: when exactly one provider has a nonzero
// weight and that weight is 1, Fuse returns that provider's Scores
// unchanged. This makes the default configuration (SLM at weight 1) and
// the {slm:1, subtype:0} ablation bit-identical to the pre-provider
// sweep — not merely numerically close.
package evidence

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/slm"
)

// Provider names. The spellings appear in CLI flags, fusion-weight maps,
// observability stage rows, and (for non-default configurations) the
// hierarchy-section snapshot canon — they must not change.
const (
	// NameSLM is the behavioral SLM/KL divergence sweep.
	NameSLM = "slm"
	// NameSubtype is the constraint-based structural subtyping scorer.
	NameSubtype = "subtype"
)

// KnownNames lists every provider the analysis can construct, in
// canonical order.
func KnownNames() []string { return []string{NameSLM, NameSubtype} }

// Known reports whether name is a constructible provider.
func Known(name string) bool {
	return name == NameSLM || name == NameSubtype
}

// FamilyInput is everything one provider invocation may read about a
// family. One FamilyInput is shared by every enabled provider, so the
// scores they return are element-wise comparable.
type FamilyInput struct {
	// Types lists the family members (vtable addresses), ascending — the
	// family order.
	Types []uint64
	// Pairs lists the structurally-admissible (parent, child) pairs in
	// the canonical layout: family order outer, candidate-parent order
	// inner. Scores.Edge is parallel to it.
	Pairs [][2]uint64
	// Words is the family's deduplicated word-set union, the SLM
	// provider's measurement domain (Remark 4.1: distances must be
	// measured over one word set to rank). Nil when no SLM provider is
	// enabled.
	Words [][]int
	// Scorers holds each member's frozen SLM, parallel to Types. Nil
	// when no SLM provider is enabled.
	Scorers []slm.WordScorer
	// Scorer resolves a member address to its frozen SLM (the map-free
	// per-pair accessor). Nil when no SLM provider is enabled.
	Scorer func(uint64) slm.WordScorer
}

// Scores is one provider's output for one family.
type Scores struct {
	// Edge scores FamilyInput.Pairs element-wise; lower is a more likely
	// child→parent edge.
	Edge []float64
	// Root is the provider's virtual-root edge weight; see the package
	// contract (Root >= max Edge).
	Root float64
	// Dense, non-nil only in the SLM provider's dense reporting mode,
	// carries the full ordered-pair matrix keyed [parent, child] for
	// Result.Dist. Entries shared with Edge are bit-identical.
	Dense map[[2]uint64]float64
}

// Provider is one edge-evidence backend.
type Provider interface {
	// Name returns the provider's stable identifier (NameSLM, ...).
	Name() string
	// Score computes one family's scores. It must be deterministic at
	// any worker count and safe for concurrent calls on distinct
	// families.
	Score(ctx context.Context, in *FamilyInput) (*Scores, error)
}

// Fuse combines the providers' scores into the single edge score the
// arborescence solve consumes: fused.Edge[k] = Σᵢ weights[i]·scores[i].Edge[k]
// and fused.Root = Σᵢ weights[i]·scores[i].Root. When exactly one
// provider has a nonzero weight and that weight is 1, the provider's
// Scores is returned unchanged (including its Dense matrix), making the
// single-provider path bit-identical to running that provider alone.
// scores and weights are parallel; callers guarantee at least one
// nonzero weight.
func Fuse(scores []*Scores, weights []float64) *Scores {
	live := -1
	for i, w := range weights {
		if w == 0 {
			continue
		}
		if live >= 0 {
			live = -2
			break
		}
		live = i
	}
	if live >= 0 && weights[live] == 1 {
		return scores[live]
	}
	out := &Scores{}
	for i, s := range scores {
		w := weights[i]
		if w == 0 {
			continue
		}
		if out.Edge == nil {
			out.Edge = make([]float64, len(s.Edge))
		}
		for k, e := range s.Edge {
			out.Edge[k] += w * e
		}
		out.Root += w * s.Root
	}
	return out
}

// ParseNames parses the CLI provider-list spelling ("slm,subtype").
// Empty input returns nil — the caller's default. Unknown and duplicate
// names are errors.
func ParseNames(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var names []string
	seen := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if !Known(n) {
			return nil, fmt.Errorf("unknown evidence provider %q (want a comma list of %s)",
				n, strings.Join(KnownNames(), ", "))
		}
		if seen[n] {
			return nil, fmt.Errorf("evidence provider %q named twice", n)
		}
		seen[n] = true
		names = append(names, n)
	}
	return names, nil
}

// ParseWeights parses the CLI fusion-weight spelling
// ("slm=1,subtype=5"). Empty input returns nil — per-provider
// defaults. Name validity against the enabled provider set is the
// analysis's job (the weights may be parsed before the provider list).
func ParseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fusion weight %q is not name=weight", kv)
		}
		name = strings.TrimSpace(name)
		if !Known(name) {
			return nil, fmt.Errorf("fusion weight names unknown provider %q (want %s)",
				name, strings.Join(KnownNames(), ", "))
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("fusion weight for %q given twice", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fusion weight for %q: %v", name, err)
		}
		out[name] = w
	}
	return out, nil
}
