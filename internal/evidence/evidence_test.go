package evidence

import (
	"reflect"
	"testing"
)

func TestFusePassthrough(t *testing.T) {
	a := &Scores{Edge: []float64{1, 2}, Root: 9, Dense: map[[2]uint64]float64{{1, 2}: 1}}
	b := &Scores{Edge: []float64{5, 5}, Root: 50}

	// A single provider at weight 1 passes through untouched — pointer
	// identity, so even the Dense matrix survives bit-identical.
	if got := Fuse([]*Scores{a}, []float64{1}); got != a {
		t.Error("single provider at weight 1 was not passed through")
	}
	// Zero-weighted companions must not break the passthrough: this is
	// what makes {slm:1, subtype:0} bit-identical to pure SLM.
	if got := Fuse([]*Scores{a, b}, []float64{1, 0}); got != a {
		t.Error("zero-weighted companion broke the weight-1 passthrough")
	}
	// A single provider at a non-1 weight is a real weighted sum.
	got := Fuse([]*Scores{a}, []float64{2})
	if got == a || !reflect.DeepEqual(got.Edge, []float64{2, 4}) || got.Root != 18 {
		t.Errorf("single provider at weight 2: got %+v", got)
	}
	if got.Dense != nil {
		t.Error("weighted sum must not carry a Dense matrix through")
	}
}

func TestFuseWeightedSum(t *testing.T) {
	a := &Scores{Edge: []float64{1, 2}, Root: 10}
	b := &Scores{Edge: []float64{0.5, 0.25}, Root: 4}
	got := Fuse([]*Scores{a, b}, []float64{1, 2})
	want := []float64{1 + 2*0.5, 2 + 2*0.25}
	if !reflect.DeepEqual(got.Edge, want) {
		t.Errorf("Edge = %v, want %v", got.Edge, want)
	}
	if got.Root != 10+2*4 {
		t.Errorf("Root = %v, want 18", got.Root)
	}
	// The fused root keeps dominating every fused edge (Heuristic 4.1)
	// whenever each provider honors Root >= max Edge.
	for _, e := range got.Edge {
		if got.Root < e {
			t.Errorf("fused root %v below fused edge %v", got.Root, e)
		}
	}
}

func TestParseNames(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"slm", []string{"slm"}},
		{"slm,subtype", []string{"slm", "subtype"}},
		{" subtype , slm ", []string{"subtype", "slm"}},
	} {
		got, err := ParseNames(tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseNames(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"slm,slm", "magic", "slm,,subtype"} {
		if _, err := ParseNames(bad); err == nil {
			t.Errorf("ParseNames(%q) accepted", bad)
		}
	}
}

func TestParseWeights(t *testing.T) {
	got, err := ParseWeights(" slm = 1 , subtype = 0.25 ")
	if err != nil || !reflect.DeepEqual(got, map[string]float64{"slm": 1, "subtype": 0.25}) {
		t.Fatalf("ParseWeights = %v, %v", got, err)
	}
	if got, err := ParseWeights(""); got != nil || err != nil {
		t.Errorf("empty input: %v, %v", got, err)
	}
	for _, bad := range []string{"slm", "slm=x", "magic=1", "slm=1,slm=2"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) accepted", bad)
		}
	}
}

func TestKnownNames(t *testing.T) {
	for _, n := range KnownNames() {
		if !Known(n) {
			t.Errorf("KnownNames lists %q but Known rejects it", n)
		}
	}
	if Known("") || Known("slmkl") {
		t.Error("Known accepted a non-provider name")
	}
}
