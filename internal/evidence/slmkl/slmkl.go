// Package slmkl rehosts the paper's behavioral evidence source — the
// per-family SLM divergence sweep (§4.3) — behind the evidence.Provider
// interface. It is a verbatim transplant of the original in-line sweep:
// the same chunk grains, the same pair layout, the same frozen flat-trie
// kernels, the same counters — so its output is bit-identical to the
// pre-provider pipeline and the equivalence pins in internal/eval hold
// by construction, not by tolerance.
package slmkl

import (
	"context"

	"repro/internal/evidence"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/slm"
)

// Fan-out grains for the chunked sweeps (pool.ForEachChunk): each claimed
// range must amortize the shared index counter over enough work without
// starving workers on small families. The values predate the provider
// split; grain choice never affects scores (every slot is index-owned).
const (
	// modelGrain groups word-distribution derivations; a claimed range is
	// also the batch the multi-model scoring kernel blocks over
	// (slm.DistanceCalculator.PrecomputeBatch).
	modelGrain = 8
	// pairGrain groups admissible-pair divergence reductions.
	pairGrain = 32
	// cellGrain groups dense-matrix cells (the Dense reporting mode;
	// diagonal cells are nearly free, so ranges are larger).
	cellGrain = 256
)

// Config parameterizes the sweep. Metric and RootWeightFactor are
// behavioral (they appear in the hierarchy canon); the rest only shape
// execution.
type Config struct {
	// Metric selects the pairwise distance (DKL by default; JS variants
	// for the §6.4 ablation).
	Metric slm.Metric
	// RootWeightFactor scales the virtual-root weight relative to the
	// family's largest pairwise distance (Heuristic 4.1); must exceed 1.
	RootWeightFactor float64
	// Dense computes the full n×n ordered-pair matrix (Scores.Dense) with
	// the root weight from the exact dense maximum, instead of the sparse
	// admissible-pair sweep with the PairBound upper bound. Entries
	// present in both modes are bit-identical.
	Dense bool
	// Workers/Pool bound and share the fan-out (see core.Config).
	Workers int
	Pool    *pool.Shared
	// Scratch supplies reusable per-goroutine query scratch; nil uses the
	// process-wide default pool.
	Scratch *slm.ScratchPool
	// Obs, when non-nil, receives the sweep's pair counters and batch
	// spans. Results are unaffected.
	Obs *obs.Bus
}

// Provider is the SLM/KL evidence provider.
type Provider struct {
	cfg Config
}

// New returns the provider.
func New(cfg Config) *Provider { return &Provider{cfg: cfg} }

// Name implements evidence.Provider.
func (p *Provider) Name() string { return evidence.NameSLM }

// Score runs the divergence sweep for one family. Each member's word
// distribution over the family's shared word set is derived exactly once
// (the DistanceCalculator memoizes per model, each chunk scored by the
// blocked multi-model batch kernel); then the sweep reduces the cached
// distributions over in.Pairs — or over all n² ordered cells under
// cfg.Dense — in deterministically-owned chunks.
func (p *Provider) Score(ctx context.Context, in *evidence.FamilyInput) (*evidence.Scores, error) {
	cfg := p.cfg
	calc := slm.NewDistanceCalculator(cfg.Metric, in.Words)
	calc.SetScratchPool(cfg.Scratch)
	calc.SetObserver(cfg.Obs)
	n := len(in.Types)
	calc.Reserve(n)
	if err := pool.ForEachChunk(ctx, cfg.Pool, cfg.Workers, n, modelGrain, func(lo, hi int) {
		calc.PrecomputeBatch(in.Scorers[lo:hi])
	}); err != nil {
		return nil, err
	}
	out := &evidence.Scores{}
	if cfg.Dense {
		fam := in.Types
		dists := make([]float64, n*n)
		if err := pool.ForEachChunk(ctx, cfg.Pool, cfg.Workers, n*n, cellGrain, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				a, b := fam[k/n], fam[k%n]
				if a == b {
					continue
				}
				dists[k] = calc.Distance(in.Scorer(a), in.Scorer(b))
			}
		}); err != nil {
			return nil, err
		}
		cfg.Obs.Add(obs.CntDistPairs, int64(n*(n-1)))
		out.Dense = make(map[[2]uint64]float64, n*(n-1))
		maxD := 0.0
		for k, d := range dists {
			a, b := fam[k/n], fam[k%n]
			if a == b {
				continue
			}
			out.Dense[[2]uint64{a, b}] = d
			if d > maxD {
				maxD = d
			}
		}
		out.Edge = make([]float64, len(in.Pairs))
		for k, pc := range in.Pairs {
			out.Edge[k] = out.Dense[pc]
		}
		out.Root = maxD*cfg.RootWeightFactor + 1
		return out, nil
	}
	out.Edge = make([]float64, len(in.Pairs))
	if err := pool.ForEachChunk(ctx, cfg.Pool, cfg.Workers, len(in.Pairs), pairGrain, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			out.Edge[k] = calc.Distance(in.Scorer(in.Pairs[k][0]), in.Scorer(in.Pairs[k][1]))
		}
	}); err != nil {
		return nil, err
	}
	cfg.Obs.Add(obs.CntDistPairs, int64(len(in.Pairs)))
	cfg.Obs.Add(obs.CntDistPairsPruned, int64(n*(n-1)-len(in.Pairs)))
	// PairBound ≥ the true dense maximum, so Heuristic 4.1's "root edges
	// are always the worst choice" ordering survives the sparse sweep.
	out.Root = calc.PairBound(in.Scorers)*cfg.RootWeightFactor + 1
	return out, nil
}
