// Package subtype is the constraint-based structural subtyping evidence
// provider: it scores child→parent edges from machine-code facts alone,
// with no statistical language models — in the spirit of Noonan et
// al.'s polymorphic type inference for machine code and BinSub's
// algebraic subtyping (see PAPERS.md).
//
// Four constraint families contribute, each normalized to [0, 1] where
// lower means "more consistent with c <: p":
//
//   - Slot overlap: a derived class's vtable starts as a copy of its
//     base's, with overridden slots rewritten. The fraction of
//     position-wise shared slot targets (pure-virtual stubs excluded —
//     they match everything) measures how much of p's interface c
//     inherits unchanged.
//   - Size proximity: |slots(c) − slots(p)| relative to c. A parent and
//     a grandparent may both overlap c, but the nearest ancestor is the
//     closest in interface size — this term breaks ancestor-chain ties
//     toward the direct parent.
//   - Install flow: during construction the base ctor installs p's
//     vtable into the same object that later holds c's (and
//     destruction replays it in reverse). Adjacent primary installs on
//     one abstract object, and calls from c's methods into functions
//     known to install p, are direct this-pointer flow from c to p.
//   - Parent-method calls: c's code calling a function that appears in
//     p's vtable (e.g. Base::method(this) after devirtualization).
//
// Unlike the SLM provider, every signal here survives the hard cases
// that erase behavioral evidence — devirtualized monomorphic sites,
// COMDAT-folded methods, partially inlined constructors — because
// vtable layout and install order are what the compiler cannot remove.
//
// The provider is built once per analysis: an index over the objtrace
// structural observations is assembled on the shared worker pool
// (deterministically — per-chunk partial counts merged in chunk order,
// and counts are order-independent sums), then each family's Score is a
// read-only sweep over that index.
package subtype

import (
	"context"
	"fmt"

	"repro/internal/evidence"
	"repro/internal/objtrace"
	"repro/internal/pool"
	"repro/internal/vtable"
)

// DefaultWeight is the default fusion weight of this provider when it is
// enabled without an explicit -fuse-weights entry (the SLM provider
// defaults to 1). It is calibrated on the adversarial grid
// (internal/eval): the grid improves strictly on three devirtualized
// configurations with no regression anywhere for weights in roughly
// [3, 6], while above ~8 the slot-sharing term starts to overrule the
// divergence ranking on COMDAT-folded binaries (folded methods make
// unrelated vtables share entries). 5 sits in the middle of the safe
// window.
const DefaultWeight = 5

// structGrain groups objtrace observation sequences per claimed range of
// the index-building fan-out.
const structGrain = 64

// Config parameterizes the scorer. All fields are behavioral — they
// appear in the hierarchy-section snapshot canon via Canon.
type Config struct {
	// SlotWeight scales the vtable slot-overlap term.
	SlotWeight float64
	// ProxWeight scales the vtable size-proximity term.
	ProxWeight float64
	// FlowWeight scales the construction install-flow term.
	FlowWeight float64
	// CallWeight scales the parent-method call term.
	CallWeight float64
	// RootFactor scales the virtual-root weight relative to the largest
	// score the terms can produce; must be >= 1 so Heuristic 4.1 holds.
	RootFactor float64
}

// DefaultConfig returns the grid-calibrated term weights.
func DefaultConfig() Config {
	return Config{
		SlotWeight: 1,
		ProxWeight: 0.25,
		FlowWeight: 0.5,
		CallWeight: 0.5,
		RootFactor: 8,
	}
}

// Canon renders the behavioral configuration canonically for snapshot
// fingerprinting; equal configurations produce equal strings.
func (c Config) Canon() string {
	return fmt.Sprintf("{slot=%.17g prox=%.17g flow=%.17g call=%.17g root=%.17g}",
		c.SlotWeight, c.ProxWeight, c.FlowWeight, c.CallWeight, c.RootFactor)
}

// Image is the slice of the analysis the provider reads — the discovered
// vtables plus the objtrace/structural artifacts the constraints mine.
type Image struct {
	// VTables are the discovered vtables.
	VTables []*vtable.VTable
	// Purecall is the pure-virtual stub address (0 if none); slots
	// holding it carry no overlap evidence.
	Purecall uint64
	// Structs are the per-object structural observation sequences.
	Structs []objtrace.ObjStruct
	// InstallerOf maps a function entry to the primary vtables it
	// installs on its receiver (constructor/destructor summaries).
	InstallerOf map[uint64][]uint64
	// FnVTables maps a function entry to the vtables containing it.
	FnVTables map[uint64][]uint64
}

// counts are the per-ordered-pair [parent, child] constraint tallies.
type counts struct {
	flow map[[2]uint64]int // install adjacency + ctor calls
	call map[[2]uint64]int // calls into parent-vtable methods
}

func newCounts() *counts {
	return &counts{flow: map[[2]uint64]int{}, call: map[[2]uint64]int{}}
}

// Provider scores one image's families; build it once with New.
type Provider struct {
	cfg      Config
	byAddr   map[uint64]*vtable.VTable
	purecall uint64
	idx      *counts
}

// New indexes the image's structural observations and returns the
// provider. The fan-out runs on the worker pool; per-chunk partial
// tallies land in chunk-owned slots and merge in chunk order, and the
// merged sums are order-independent, so the index is identical at any
// worker count.
func New(ctx context.Context, cfg Config, img Image, workers int, shared *pool.Shared) (*Provider, error) {
	p := &Provider{
		cfg:      cfg,
		byAddr:   make(map[uint64]*vtable.VTable, len(img.VTables)),
		purecall: img.Purecall,
	}
	for _, v := range img.VTables {
		p.byAddr[v.Addr] = v
	}
	n := len(img.Structs)
	parts := make([]*counts, (n+structGrain-1)/structGrain)
	if err := pool.ForEachChunk(ctx, shared, workers, n, structGrain, func(lo, hi int) {
		part := newCounts()
		for _, os := range img.Structs[lo:hi] {
			p.tally(part, os, img)
		}
		parts[lo/structGrain] = part
	}); err != nil {
		return nil, err
	}
	p.idx = newCounts()
	for _, part := range parts {
		for pc, c := range part.flow {
			p.idx.flow[pc] += c
		}
		for pc, c := range part.call {
			p.idx.call[pc] += c
		}
	}
	return p, nil
}

// tally mines one object's observation sequence into part.
func (p *Provider) tally(part *counts, os objtrace.ObjStruct, img Image) {
	// The object's own types: every primary (offset-0) install observed
	// on it, with the last one — the most-derived type of a construction
	// sequence — as the principal self. A receiver object with no install
	// is typed by the vtables containing the observing function.
	var primaries []uint64
	for _, e := range os.Events {
		if e.Install && e.Off == 0 {
			if _, known := p.byAddr[e.VT]; known {
				primaries = append(primaries, e.VT)
			}
		}
	}
	var selves []uint64
	if len(primaries) > 0 {
		selves = primaries[len(primaries)-1:]
	} else if os.EntryThis {
		selves = img.FnVTables[os.Fn]
	}
	// Install flow, source 1: adjacent primary installs on one object are
	// ctor/dtor chain steps. Construction runs base→derived and
	// destruction derived→base, so both orientations are tallied and the
	// admissibility pruning (only structurally-possible parents are ever
	// scored) keeps the wrong direction inert.
	for i := 0; i+1 < len(primaries); i++ {
		a, b := primaries[i], primaries[i+1]
		if a != b {
			part.flow[[2]uint64{a, b}]++
			part.flow[[2]uint64{b, a}]++
		}
	}
	for _, e := range os.Events {
		if e.Install || e.Callee == 0 {
			continue
		}
		// Install flow, source 2: a call on this object into a function
		// summarized as installing base vtables (a delegated base-ctor
		// call, surviving partial ctor inlining of the derived side).
		if installed := img.InstallerOf[e.Callee]; len(installed) > 0 {
			base := installed[len(installed)-1]
			for _, self := range selves {
				if base != self {
					part.flow[[2]uint64{base, self}]++
				}
			}
		}
		// Parent-method calls: this object calling a function that sits
		// in another type's vtable (Base::method after devirtualization).
		for _, vt := range img.FnVTables[e.Callee] {
			for _, self := range selves {
				if vt != self {
					part.call[[2]uint64{vt, self}]++
				}
			}
		}
	}
}

// Name implements evidence.Provider.
func (p *Provider) Name() string { return evidence.NameSubtype }

// Score implements evidence.Provider: a read-only sweep of the index
// over the family's admissible pairs. Each pair is a few map lookups and
// one slot walk — no fan-out is worth it (the caller already runs
// families concurrently).
func (p *Provider) Score(_ context.Context, in *evidence.FamilyInput) (*evidence.Scores, error) {
	out := &evidence.Scores{Edge: make([]float64, len(in.Pairs))}
	for k, pc := range in.Pairs {
		out.Edge[k] = p.pairScore(pc[0], pc[1])
	}
	maxScore := p.cfg.SlotWeight + p.cfg.ProxWeight + p.cfg.FlowWeight + p.cfg.CallWeight
	out.Root = maxScore*p.cfg.RootFactor + 1
	return out, nil
}

// pairScore scores candidate parent pv for child cv; lower is better.
func (p *Provider) pairScore(pa, ca uint64) float64 {
	pv, cv := p.byAddr[pa], p.byAddr[ca]
	slot, prox := 0.5, 0.5
	if pv != nil && cv != nil {
		slot = p.slotTerm(pv, cv)
		prox = proxTerm(pv, cv)
	}
	flow := 1 / float64(1+p.idx.flow[[2]uint64{pa, ca}])
	call := 1 / float64(1+p.idx.call[[2]uint64{pa, ca}])
	return p.cfg.SlotWeight*slot + p.cfg.ProxWeight*prox +
		p.cfg.FlowWeight*flow + p.cfg.CallWeight*call
}

// slotTerm is 1 minus the fraction of position-wise shared slot targets
// over the overlapping prefix. Slots holding the pure-virtual stub are
// excluded from both numerator and denominator: a pure slot in the
// parent is satisfied by any override, so it neither confirms nor
// refutes inheritance.
func (p *Provider) slotTerm(pv, cv *vtable.VTable) float64 {
	n := min(len(pv.Slots), len(cv.Slots))
	shared, denom := 0, 0
	for i := 0; i < n; i++ {
		if pv.Slots[i] == p.purecall || cv.Slots[i] == p.purecall {
			continue
		}
		denom++
		if pv.Slots[i] == cv.Slots[i] {
			shared++
		}
	}
	if denom == 0 {
		return 0.5
	}
	return 1 - float64(shared)/float64(denom)
}

// proxTerm is the interface-size gap |slots(c)−slots(p)| relative to the
// child, clamped to 1. Among admissible ancestors with similar overlap,
// the direct parent is the closest in size.
func proxTerm(pv, cv *vtable.VTable) float64 {
	if len(cv.Slots) == 0 {
		return 0.5
	}
	gap := len(cv.Slots) - len(pv.Slots)
	if gap < 0 {
		gap = -gap
	}
	t := float64(gap) / float64(len(cv.Slots))
	if t > 1 {
		return 1
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
