package subtype

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/evidence"
	"repro/internal/objtrace"
	"repro/internal/vtable"
)

// vt builds a vtable at addr with the given slot targets.
func vt(addr uint64, slots ...uint64) *vtable.VTable {
	return &vtable.VTable{Addr: addr, Slots: slots}
}

func mustNew(t *testing.T, img Image, workers int) *Provider {
	t.Helper()
	p, err := New(context.Background(), DefaultConfig(), img, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func score(t *testing.T, p *Provider, pairs ...[2]uint64) *evidence.Scores {
	t.Helper()
	s, err := p.Score(context.Background(), &evidence.FamilyInput{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSlotOverlapOrdering pins the core constraint: a candidate parent
// sharing inherited slot targets with the child outscores (scores lower
// than) an unrelated candidate of the same size, and slots holding the
// pure-virtual stub carry no overlap evidence in either direction.
func TestSlotOverlapOrdering(t *testing.T) {
	const purecall = 0x999
	parent := vt(0x100, 10, 11, 12)
	stranger := vt(0x200, 20, 21, 22)
	child := vt(0x300, 10, 11, 33, 34) // inherits two of parent's slots
	img := Image{VTables: []*vtable.VTable{parent, stranger, child}, Purecall: purecall}
	p := mustNew(t, img, 1)

	s := score(t, p, [2]uint64{0x100, 0x300}, [2]uint64{0x200, 0x300})
	if s.Edge[0] >= s.Edge[1] {
		t.Errorf("slot-sharing parent scored %v, stranger %v; want parent strictly lower", s.Edge[0], s.Edge[1])
	}
	if s.Root < s.Edge[0] || s.Root < s.Edge[1] {
		t.Errorf("Root %v below an edge score %v", s.Root, s.Edge)
	}

	// An all-pure parent prefix neither confirms nor refutes: it falls
	// back to the neutral 0.5 slot term, scoring between the perfect
	// match and the total mismatch.
	abstract := vt(0x400, purecall, purecall, purecall)
	img2 := Image{VTables: []*vtable.VTable{abstract, stranger, child}, Purecall: purecall}
	p2 := mustNew(t, img2, 1)
	s2 := score(t, p2, [2]uint64{0x400, 0x300}, [2]uint64{0x200, 0x300})
	if s2.Edge[0] >= s2.Edge[1] {
		t.Errorf("pure-slot parent scored %v, mismatching stranger %v; want neutral < mismatch", s2.Edge[0], s2.Edge[1])
	}
}

// TestProximityTieBreak pins the grandparent tie-break: when a child
// shares its inherited prefix with both its parent and its grandparent,
// the interface-size proximity term prefers the direct parent.
func TestProximityTieBreak(t *testing.T) {
	grand := vt(0x100, 10, 11)
	parent := vt(0x200, 10, 11, 20, 21)
	child := vt(0x300, 10, 11, 20, 21, 30)
	img := Image{VTables: []*vtable.VTable{grand, parent, child}}
	p := mustNew(t, img, 1)
	s := score(t, p, [2]uint64{0x200, 0x300}, [2]uint64{0x100, 0x300})
	if s.Edge[0] >= s.Edge[1] {
		t.Errorf("direct parent scored %v, grandparent %v; want direct parent strictly lower", s.Edge[0], s.Edge[1])
	}
}

// TestInstallFlowEvidence pins the construction-order constraint:
// adjacent primary installs on one object mark a ctor chain step and
// lower the involved pair's score relative to an identical pair with no
// observed flow.
func TestInstallFlowEvidence(t *testing.T) {
	parent := vt(0x100, 10, 11)
	childA := vt(0x300, 20, 21)
	childB := vt(0x400, 30, 31)
	img := Image{
		VTables: []*vtable.VTable{parent, childA, childB},
		Structs: []objtrace.ObjStruct{{
			Fn: 0x1000,
			Events: []objtrace.StructEvent{
				{Install: true, Off: 0, VT: 0x100},
				{Install: true, Off: 0, VT: 0x300},
			},
		}},
	}
	p := mustNew(t, img, 1)
	s := score(t, p, [2]uint64{0x100, 0x300}, [2]uint64{0x100, 0x400})
	if s.Edge[0] >= s.Edge[1] {
		t.Errorf("flow-observed child scored %v, flow-free child %v; want observed strictly lower", s.Edge[0], s.Edge[1])
	}
}

// TestParentCallEvidence pins the delegated-call constraint: an object
// whose principal type calls into a function sitting in another type's
// vtable lowers that (parent, child) pair.
func TestParentCallEvidence(t *testing.T) {
	parent := vt(0x100, 0x5000, 0x5008)
	childA := vt(0x300, 20, 21)
	childB := vt(0x400, 30, 31)
	img := Image{
		VTables:   []*vtable.VTable{parent, childA, childB},
		FnVTables: map[uint64][]uint64{0x5000: {0x100}},
		Structs: []objtrace.ObjStruct{{
			Fn: 0x1000,
			Events: []objtrace.StructEvent{
				{Install: true, Off: 0, VT: 0x300},
				{Callee: 0x5000},
			},
		}},
	}
	p := mustNew(t, img, 1)
	s := score(t, p, [2]uint64{0x100, 0x300}, [2]uint64{0x100, 0x400})
	if s.Edge[0] >= s.Edge[1] {
		t.Errorf("parent-calling child scored %v, silent child %v; want caller strictly lower", s.Edge[0], s.Edge[1])
	}
}

// TestBuildDeterministic pins the index-build contract: a corpus of
// observation sequences large enough to span many fan-out chunks
// produces bit-identical scores at every worker count.
func TestBuildDeterministic(t *testing.T) {
	var vts []*vtable.VTable
	var structs []objtrace.ObjStruct
	var pairs [][2]uint64
	for i := 0; i < 40; i++ {
		pa := uint64(0x1000 + 0x100*i)
		ca := uint64(0x8000 + 0x100*i)
		vts = append(vts, vt(pa, uint64(i), uint64(i+1)), vt(ca, uint64(i), uint64(i+1), uint64(i+2)))
		pairs = append(pairs, [2]uint64{pa, ca})
		for j := 0; j < 10; j++ {
			structs = append(structs, objtrace.ObjStruct{
				Fn: uint64(0x100000 + i*10 + j),
				Events: []objtrace.StructEvent{
					{Install: true, Off: 0, VT: pa},
					{Install: true, Off: 0, VT: ca},
				},
			})
		}
	}
	img := Image{VTables: vts, Structs: structs}
	want := score(t, mustNew(t, img, 1), pairs...)
	for _, workers := range []int{2, 8, 32} {
		got := score(t, mustNew(t, img, workers), pairs...)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: scores diverged from the serial build", workers)
		}
	}
}

// TestCanonDistinguishesConfigs pins the snapshot-canon contract: equal
// configurations render equal strings, different ones differ.
func TestCanonDistinguishesConfigs(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Canon() != b.Canon() {
		t.Error("equal configs rendered different canons")
	}
	b.FlowWeight = 0.75
	if a.Canon() == b.Canon() {
		t.Error("different configs rendered the same canon")
	}
}
