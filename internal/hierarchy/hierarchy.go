// Package hierarchy represents reconstructed class hierarchies as
// node-labeled directed forests (NLD-forests, §4.1) over binary types
// (vtable addresses), and implements the application distance of §6.3: for
// each type, how many ground-truth derived types the reconstruction misses
// and how many spurious ones it adds, averaged over all types.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// Forest is an NLD-forest: each node has at most one parent.
type Forest struct {
	nodes   []uint64
	nodeSet map[uint64]bool
	parent  map[uint64]uint64
}

// NewForest creates a forest over the given nodes with no edges.
func NewForest(nodes []uint64) *Forest {
	f := &Forest{
		nodeSet: make(map[uint64]bool, len(nodes)),
		parent:  map[uint64]uint64{},
	}
	for _, n := range nodes {
		if !f.nodeSet[n] {
			f.nodeSet[n] = true
			f.nodes = append(f.nodes, n)
		}
	}
	sort.Slice(f.nodes, func(i, j int) bool { return f.nodes[i] < f.nodes[j] })
	return f
}

// Nodes returns the node set in ascending order.
func (f *Forest) Nodes() []uint64 { return append([]uint64(nil), f.nodes...) }

// Len returns the number of nodes.
func (f *Forest) Len() int { return len(f.nodes) }

// Has reports whether t is a node.
func (f *Forest) Has(t uint64) bool { return f.nodeSet[t] }

// SetParent makes parent the parent of child. Both must be nodes; the edge
// must not close a cycle.
func (f *Forest) SetParent(child, parent uint64) error {
	if !f.nodeSet[child] || !f.nodeSet[parent] {
		return fmt.Errorf("hierarchy: unknown node in edge 0x%x -> 0x%x", parent, child)
	}
	if child == parent {
		return fmt.Errorf("hierarchy: self edge on 0x%x", child)
	}
	for a := parent; ; {
		if a == child {
			return fmt.Errorf("hierarchy: edge 0x%x -> 0x%x closes a cycle", parent, child)
		}
		p, ok := f.parent[a]
		if !ok {
			break
		}
		a = p
	}
	f.parent[child] = parent
	return nil
}

// Parent returns the parent of t, if any.
func (f *Forest) Parent(t uint64) (uint64, bool) {
	p, ok := f.parent[t]
	return p, ok
}

// Roots returns all nodes without parents, ascending.
func (f *Forest) Roots() []uint64 {
	var out []uint64
	for _, n := range f.nodes {
		if _, ok := f.parent[n]; !ok {
			out = append(out, n)
		}
	}
	return out
}

// Children returns the direct children of t, ascending.
func (f *Forest) Children(t uint64) []uint64 {
	var out []uint64
	for _, n := range f.nodes {
		if p, ok := f.parent[n]; ok && p == t {
			out = append(out, n)
		}
	}
	return out
}

// Ancestors returns the proper ancestors of t, nearest first.
func (f *Forest) Ancestors(t uint64) []uint64 {
	var out []uint64
	for {
		p, ok := f.parent[t]
		if !ok {
			return out
		}
		out = append(out, p)
		t = p
	}
}

// Successors returns the set of types derived from t (its proper
// descendants) — the successors_h(t) of §6.3.
func (f *Forest) Successors(t uint64) map[uint64]bool {
	out := map[uint64]bool{}
	var rec func(u uint64)
	rec = func(u uint64) {
		for _, c := range f.Children(u) {
			if !out[c] {
				out[c] = true
				rec(c)
			}
		}
	}
	rec(t)
	return out
}

// AllSuccessors returns the successor sets of every node.
func (f *Forest) AllSuccessors() map[uint64]map[uint64]bool {
	out := make(map[uint64]map[uint64]bool, len(f.nodes))
	for _, n := range f.nodes {
		out[n] = map[uint64]bool{}
	}
	// One upward walk per node marks it as a successor of all ancestors.
	for _, n := range f.nodes {
		for _, a := range f.Ancestors(n) {
			out[a][n] = true
		}
	}
	return out
}

// String renders the forest with a naming function.
func (f *Forest) String(name func(uint64) string) string {
	if name == nil {
		name = func(t uint64) string { return fmt.Sprintf("0x%x", t) }
	}
	var b strings.Builder
	var rec func(t uint64, depth int)
	rec = func(t uint64, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), name(t))
		for _, c := range f.Children(t) {
			rec(c, depth+1)
		}
	}
	for _, r := range f.Roots() {
		rec(r, 0)
	}
	return b.String()
}

// Clone returns a deep copy.
func (f *Forest) Clone() *Forest {
	c := NewForest(f.nodes)
	for ch, p := range f.parent {
		c.parent[ch] = p
	}
	return c
}

// Equal reports whether two forests have the same nodes and edges.
func (f *Forest) Equal(g *Forest) bool {
	if len(f.nodes) != len(g.nodes) || len(f.parent) != len(g.parent) {
		return false
	}
	for _, n := range f.nodes {
		if !g.nodeSet[n] {
			return false
		}
	}
	for ch, p := range f.parent {
		if gp, ok := g.parent[ch]; !ok || gp != p {
			return false
		}
	}
	return true
}

// PossibleParentSuccessors computes successor sets from a possibleParent
// relation rather than a single hierarchy — the "without SLMs" setting of
// §6.4, where, with no way to prioritize possible parents, a type must be
// considered a successor of each of its possible parents (transitively).
func PossibleParentSuccessors(possible map[uint64][]uint64, types []uint64) map[uint64]map[uint64]bool {
	out := make(map[uint64]map[uint64]bool, len(types))
	for _, t := range types {
		out[t] = map[uint64]bool{}
	}
	// t' is a successor of t if t is reachable from t' along possible-parent
	// edges.
	for _, start := range types {
		seen := map[uint64]bool{start: true}
		stack := []uint64{start}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range possible[u] {
				if !seen[p] {
					seen[p] = true
					if m, ok := out[p]; ok {
						m[start] = true
					}
					stack = append(stack, p)
				}
			}
		}
	}
	return out
}

// TypeDistance is the per-type application distance.
type TypeDistance struct {
	Missing int // ground-truth successors absent from the reconstruction
	Added   int // reconstructed successors absent from the ground truth
}

// AppDistance aggregates §6.3's measures over a benchmark.
type AppDistance struct {
	PerType    map[uint64]TypeDistance
	AvgMissing float64
	AvgAdded   float64
}

// ApplicationDistance compares reconstructed successor sets against
// ground-truth successor sets over the given type universe.
func ApplicationDistance(gtSucc, hSucc map[uint64]map[uint64]bool, types []uint64) *AppDistance {
	res := &AppDistance{PerType: map[uint64]TypeDistance{}}
	if len(types) == 0 {
		return res
	}
	var tm, ta int
	for _, t := range types {
		g := gtSucc[t]
		h := hSucc[t]
		var d TypeDistance
		for s := range g {
			if !h[s] {
				d.Missing++
			}
		}
		for s := range h {
			if !g[s] {
				d.Added++
			}
		}
		res.PerType[t] = d
		tm += d.Missing
		ta += d.Added
	}
	res.AvgMissing = float64(tm) / float64(len(types))
	res.AvgAdded = float64(ta) / float64(len(types))
	return res
}

// ParentAccuracy returns the fraction of types whose parent assignment
// (including rootness) matches the ground truth.
func ParentAccuracy(gt, h *Forest) float64 {
	n := gt.Len()
	if n == 0 {
		return 1
	}
	ok := 0
	for _, t := range gt.Nodes() {
		gp, gok := gt.Parent(t)
		hp, hok := h.Parent(t)
		if gok == hok && (!gok || gp == hp) {
			ok++
		}
	}
	return float64(ok) / float64(n)
}
