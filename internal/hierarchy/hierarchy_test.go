package hierarchy

import (
	"testing"
	"testing/quick"
)

func chainForest(n int) *Forest {
	nodes := make([]uint64, n)
	for i := range nodes {
		nodes[i] = uint64(i + 1)
	}
	f := NewForest(nodes)
	for i := 1; i < n; i++ {
		if err := f.SetParent(uint64(i+1), uint64(i)); err != nil {
			panic(err)
		}
	}
	return f
}

func TestForestBasics(t *testing.T) {
	f := chainForest(4)
	if got := f.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("roots = %v", got)
	}
	if got := f.Children(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("children(1) = %v", got)
	}
	if got := f.Ancestors(4); len(got) != 3 || got[0] != 3 || got[2] != 1 {
		t.Fatalf("ancestors(4) = %v", got)
	}
	succ := f.Successors(2)
	if !succ[3] || !succ[4] || succ[1] || succ[2] {
		t.Fatalf("successors(2) = %v", succ)
	}
}

func TestCycleAndSelfEdgeRejected(t *testing.T) {
	f := chainForest(3)
	if err := f.SetParent(1, 3); err == nil {
		t.Error("cycle accepted")
	}
	if err := f.SetParent(2, 2); err == nil {
		t.Error("self edge accepted")
	}
	if err := f.SetParent(99, 1); err == nil {
		t.Error("unknown node accepted")
	}
}

// TestAllSuccessorsMatchesPerNode: property — the batch computation agrees
// with per-node Successors on random forests.
func TestAllSuccessorsMatchesPerNode(t *testing.T) {
	f := func(parentsRaw []uint8) bool {
		n := len(parentsRaw)
		if n == 0 || n > 30 {
			return true
		}
		nodes := make([]uint64, n)
		for i := range nodes {
			nodes[i] = uint64(i + 1)
		}
		fo := NewForest(nodes)
		for i := 1; i < n; i++ {
			// Parent from earlier nodes only: guaranteed acyclic.
			p := uint64(int(parentsRaw[i])%i + 1)
			if err := fo.SetParent(uint64(i+1), p); err != nil {
				return false
			}
		}
		all := fo.AllSuccessors()
		for _, u := range nodes {
			per := fo.Successors(u)
			if len(per) != len(all[u]) {
				return false
			}
			for s := range per {
				if !all[u][s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestApplicationDistance(t *testing.T) {
	gt := chainForest(4) // 1 -> 2 -> 3 -> 4
	h := chainForest(4)  // identical
	types := []uint64{1, 2, 3, 4}
	d := ApplicationDistance(gt.AllSuccessors(), h.AllSuccessors(), types)
	if d.AvgMissing != 0 || d.AvgAdded != 0 {
		t.Fatalf("identical forests: %v/%v", d.AvgMissing, d.AvgAdded)
	}
	// Flat reconstruction: everything a root.
	flat := NewForest(types)
	d = ApplicationDistance(gt.AllSuccessors(), flat.AllSuccessors(), types)
	// GT successor pairs: 1:{2,3,4}, 2:{3,4}, 3:{4} = 6 missing total.
	if d.AvgMissing != 6.0/4 || d.AvgAdded != 0 {
		t.Fatalf("flat: %v/%v", d.AvgMissing, d.AvgAdded)
	}
	if d.PerType[1].Missing != 3 {
		t.Fatalf("per-type missing = %v", d.PerType[1])
	}
}

func TestPossibleParentSuccessors(t *testing.T) {
	// 1 and 2 are both possible parents of 3; 3 possible parent of 4.
	poss := map[uint64][]uint64{3: {1, 2}, 4: {3}}
	types := []uint64{1, 2, 3, 4}
	succ := PossibleParentSuccessors(poss, types)
	if !succ[1][3] || !succ[2][3] {
		t.Error("3 must be a successor of both possible parents")
	}
	if !succ[1][4] || !succ[2][4] || !succ[3][4] {
		t.Error("4 must be reachable transitively")
	}
	if succ[4][3] || succ[3][1] {
		t.Error("reverse directions must be empty")
	}
}

func TestParentAccuracy(t *testing.T) {
	gt := chainForest(4)
	h := chainForest(4)
	if acc := ParentAccuracy(gt, h); acc != 1 {
		t.Fatalf("identical accuracy = %v", acc)
	}
	flat := NewForest([]uint64{1, 2, 3, 4})
	if acc := ParentAccuracy(gt, flat); acc != 0.25 { // only the root agrees
		t.Fatalf("flat accuracy = %v", acc)
	}
}

func TestCloneAndEqual(t *testing.T) {
	f := chainForest(3)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal")
	}
	_ = g.SetParent(3, 1) // reparent in the clone only
	if f.Equal(g) {
		t.Fatal("clone shares state with original")
	}
}
