package image

import (
	"bytes"
	"testing"
)

// seedImage builds a small well-formed image for the fuzz corpus.
func seedImage(withMeta bool) *Image {
	img := &Image{
		Name:    "seed",
		Code:    make([]byte, 64),
		Rodata:  make([]byte, 32),
		Entries: []uint64{CodeBase, CodeBase + 16, CodeBase + 48},
		Imports: map[uint64]string{
			ImportBase:     ImportAlloc,
			ImportBase + 8: ImportFree,
		},
	}
	if withMeta {
		img.Meta = &Metadata{
			Types: []TypeMeta{
				{Name: "A", VTable: RodataBase},
				{Name: "B", VTable: RodataBase + 16, Parent: RodataBase},
			},
			FuncNames:     map[uint64]string{CodeBase: "use_A"},
			SourceParents: map[string]string{"B": "A"},
		}
	}
	return img
}

// FuzzLoad feeds arbitrary bytes to the image loader. Malformed inputs
// must be rejected with an error — never a panic or runaway allocation —
// and any input the loader accepts must survive a Marshal/Load round trip
// unchanged (the loader's validation must be at least as strict as the
// writer's output).
func FuzzLoad(f *testing.F) {
	for _, withMeta := range []bool{false, true} {
		data, err := seedImage(withMeta).Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations and bit flips of a valid image reach deep parser states.
		f.Add(data[:len(data)/2])
		mutated := append([]byte(nil), data...)
		mutated[len(mutated)/3] ^= 0xff
		f.Add(mutated)
	}
	f.Add([]byte{})
	f.Add([]byte("RBIN"))
	f.Add([]byte("RBIN\x01\x00\x00\x00\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Load(data)
		if err != nil {
			return
		}
		if img == nil {
			t.Fatal("Load returned nil image without error")
		}
		re, err := img.Marshal()
		if err != nil {
			t.Fatalf("loaded image failed to marshal: %v", err)
		}
		img2, err := Load(re)
		if err != nil {
			t.Fatalf("round trip failed to load: %v", err)
		}
		re2, err := img2.Marshal()
		if err != nil {
			t.Fatalf("round trip failed to marshal: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("Marshal/Load round trip is not a fixed point")
		}
	})
}
