// Package image defines the synthetic binary image format produced by
// internal/compiler and consumed by the analyses. An image is the analogue
// of a stripped PE/ELF executable: a code section of encoded instructions,
// a read-only data section holding vtables, a function entry table (the
// paper treats function-boundary identification as an orthogonal, solved
// problem, citing ByteWeight), and an import table (stripped binaries retain
// imports; the allocator import is how object allocation sites are
// recognized, exactly as `operator new` is recognized in real binaries).
//
// Ground truth travels in a separate Metadata value — the analogue of RTTI
// records and debug symbols in a non-stripped build (§6.2 of the paper).
// Strip removes it; the analysis pipeline only ever receives stripped
// images, which the evaluation harness enforces.
package image

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
)

// Section base addresses. Chosen disjoint so that address classification
// (code vs rodata vs import) is a range check, as it is in a real loader.
const (
	CodeBase   uint64 = 0x00401000
	RodataBase uint64 = 0x00600000
	ImportBase uint64 = 0x00700000
)

// Well-known import names.
const (
	// ImportAlloc is the allocator ("operator new"). A direct call to it
	// yields a fresh object pointer in RegRet.
	ImportAlloc = "operator_new"
	// ImportFree is the deallocator ("operator delete").
	ImportFree = "operator_delete"
	// ImportAbort terminates the program (referenced by the purecall stub).
	ImportAbort = "abort"
)

// Image is a loaded (or freshly compiled) binary image.
type Image struct {
	// Name labels the image (benchmark name); informational only.
	Name string
	// Code holds the encoded instructions, based at CodeBase.
	Code []byte
	// Rodata holds read-only data (vtables), based at RodataBase.
	Rodata []byte
	// Entries lists function entry addresses in ascending order. Function i
	// extends from Entries[i] to Entries[i+1] (or the end of Code).
	Entries []uint64
	// Imports maps import thunk addresses (in the ImportBase range) to
	// import names.
	Imports map[uint64]string
	// Meta carries ground truth (RTTI/debug analogue). nil in a stripped
	// image.
	Meta *Metadata
}

// Metadata is the ground-truth side channel of a non-stripped build. The
// induced binary type hierarchy recorded here is the post-optimization
// hierarchy (after abstract-class elimination), matching §6.2: the ground
// truth is what RTTI records describe in the binary, not the source tree.
type Metadata struct {
	// Types describes every emitted vtable.
	Types []TypeMeta
	// FuncNames maps function entry addresses to source-level names.
	FuncNames map[uint64]string
	// SourceParents maps source class name to source primary base name for
	// every class with a base, including classes optimized out of the
	// binary. Used only for reporting (e.g. the Fig. 9 discussion).
	SourceParents map[string]string
}

// TypeMeta describes one emitted vtable (binary type).
type TypeMeta struct {
	// Name is the source class name.
	Name string
	// VTable is the address of the vtable in rodata.
	VTable uint64
	// Parent is the vtable address of the induced (post-optimization)
	// primary parent, or 0 for a root.
	Parent uint64
	// SecondaryParents are vtable addresses of induced secondary parents
	// (multiple inheritance).
	SecondaryParents []uint64
	// Secondary marks a secondary-subobject vtable of a multiple-inheritance
	// class (it shares Name with the primary vtable).
	Secondary bool
}

// TypeByVTable returns the TypeMeta for a vtable address, or nil.
func (m *Metadata) TypeByVTable(vt uint64) *TypeMeta {
	for i := range m.Types {
		if m.Types[i].VTable == vt {
			return &m.Types[i]
		}
	}
	return nil
}

// TypeByName returns the primary TypeMeta for a class name, or nil.
func (m *Metadata) TypeByName(name string) *TypeMeta {
	for i := range m.Types {
		if m.Types[i].Name == name && !m.Types[i].Secondary {
			return &m.Types[i]
		}
	}
	return nil
}

// Strip returns a copy of the image with all ground truth removed — the
// stripped binary the paper's tool receives.
func (img *Image) Strip() *Image {
	out := &Image{
		Name:    img.Name,
		Code:    append([]byte(nil), img.Code...),
		Rodata:  append([]byte(nil), img.Rodata...),
		Entries: append([]uint64(nil), img.Entries...),
		Imports: make(map[uint64]string, len(img.Imports)),
	}
	for k, v := range img.Imports {
		out.Imports[k] = v
	}
	return out
}

// ContentDigest returns a SHA-256 digest of the image's analysis-relevant
// content: code, rodata, entries, and imports. The display name and any
// ground-truth metadata are excluded — two images that differ only in
// those produce identical analyses, so they share a digest. The digest is
// the image half of the snapshot cache key (internal/snapshot).
func (img *Image) ContentDigest() [32]byte {
	h := sha256.New()
	var b [8]byte
	writeLen := func(n int) {
		binary.LittleEndian.PutUint64(b[:], uint64(n))
		h.Write(b[:])
	}
	writeU64h := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	writeLen(len(img.Code))
	h.Write(img.Code)
	writeLen(len(img.Rodata))
	h.Write(img.Rodata)
	writeLen(len(img.Entries))
	for _, e := range img.Entries {
		writeU64h(e)
	}
	keys := make([]uint64, 0, len(img.Imports))
	for k := range img.Imports {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	writeLen(len(keys))
	for _, k := range keys {
		writeU64h(k)
		name := img.Imports[k]
		writeLen(len(name))
		h.Write([]byte(name))
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FunctionDigest returns a stable SHA-256 digest of function i's
// analysis-relevant content: its entry address and its raw body bytes.
// The entry address is included deliberately — extraction artifacts embed
// absolute addresses (call(f) events, structural observations), so a
// byte-identical body relocated to a different address must not share a
// digest with the original. The consequence is that only in-place edits
// (same-length patches) preserve the digests of the untouched functions;
// a layout-shifting edit re-keys every function after it, which costs
// reuse but never correctness.
func (img *Image) FunctionDigest(i int) [32]byte {
	start, end, err := img.FuncBounds(img.Entries[i])
	if err != nil {
		// Entries[i] is by definition a function entry; FuncBounds on it
		// cannot fail for a validated image.
		panic(err)
	}
	h := sha256.New()
	h.Write([]byte("rockfn\x00"))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], start)
	h.Write(b[:])
	h.Write(img.Code[start-CodeBase : end-CodeBase])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// FunctionDigests returns one FunctionDigest per function, in entry-table
// order. It is the image-level function-digest table the incremental
// snapshot lane diffs against a prior version of the binary.
func (img *Image) FunctionDigests() [][32]byte {
	out := make([][32]byte, len(img.Entries))
	for i := range img.Entries {
		out[i] = img.FunctionDigest(i)
	}
	return out
}

// InCode reports whether addr lies within the code section.
func (img *Image) InCode(addr uint64) bool {
	return addr >= CodeBase && addr < CodeBase+uint64(len(img.Code))
}

// InRodata reports whether addr lies within the rodata section.
func (img *Image) InRodata(addr uint64) bool {
	return addr >= RodataBase && addr < RodataBase+uint64(len(img.Rodata))
}

// IsImport reports whether addr is an import thunk.
func (img *Image) IsImport(addr uint64) bool {
	_, ok := img.Imports[addr]
	return ok
}

// IsEntry reports whether addr is a function entry.
func (img *Image) IsEntry(addr uint64) bool {
	i := sort.Search(len(img.Entries), func(i int) bool { return img.Entries[i] >= addr })
	return i < len(img.Entries) && img.Entries[i] == addr
}

// FuncBounds returns the [start,end) byte range of the function entered at
// entry, or an error if entry is not a function entry.
func (img *Image) FuncBounds(entry uint64) (start, end uint64, err error) {
	i := sort.Search(len(img.Entries), func(i int) bool { return img.Entries[i] >= entry })
	if i >= len(img.Entries) || img.Entries[i] != entry {
		return 0, 0, fmt.Errorf("image: 0x%x is not a function entry", entry)
	}
	start = entry
	if i+1 < len(img.Entries) {
		end = img.Entries[i+1]
	} else {
		end = CodeBase + uint64(len(img.Code))
	}
	return start, end, nil
}

// ReadRodataWord reads an 8-byte little-endian word from rodata at addr.
func (img *Image) ReadRodataWord(addr uint64) (uint64, bool) {
	if addr < RodataBase || addr+8 > RodataBase+uint64(len(img.Rodata)) {
		return 0, false
	}
	off := addr - RodataBase
	return binary.LittleEndian.Uint64(img.Rodata[off : off+8]), true
}

// Serialization ---------------------------------------------------------------
//
// The on-disk format is:
//
//	magic "RBIN" | version u32 | name len u32 | name |
//	code len u32 | code | rodata len u32 | rodata |
//	entry count u32 | entries u64... |
//	import count u32 | (addr u64, name len u32, name)... |
//	meta flag u8 | [meta JSON len u32 | meta JSON]

const (
	magic   = "RBIN"
	version = 1
)

// Marshal serializes the image (including metadata, if present).
func (img *Image) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	writeU32(&buf, version)
	writeBytes(&buf, []byte(img.Name))
	writeBytes(&buf, img.Code)
	writeBytes(&buf, img.Rodata)
	writeU32(&buf, uint32(len(img.Entries)))
	for _, e := range img.Entries {
		writeU64(&buf, e)
	}
	keys := make([]uint64, 0, len(img.Imports))
	for k := range img.Imports {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	writeU32(&buf, uint32(len(keys)))
	for _, k := range keys {
		writeU64(&buf, k)
		writeBytes(&buf, []byte(img.Imports[k]))
	}
	if img.Meta == nil {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		mj, err := json.Marshal(img.Meta)
		if err != nil {
			return nil, fmt.Errorf("image: marshal metadata: %w", err)
		}
		writeBytes(&buf, mj)
	}
	return buf.Bytes(), nil
}

// Load parses a serialized image.
func Load(data []byte) (*Image, error) {
	r := &reader{data: data}
	if string(r.bytes(4)) != magic {
		return nil, fmt.Errorf("image: bad magic")
	}
	if v := r.u32(); v != version {
		return nil, fmt.Errorf("image: unsupported version %d", v)
	}
	img := &Image{Imports: map[uint64]string{}}
	img.Name = string(r.lenBytes())
	img.Code = append([]byte(nil), r.lenBytes()...)
	img.Rodata = append([]byte(nil), r.lenBytes()...)
	// Element counts are validated against the bytes actually remaining
	// before looping: a corrupted count must fail fast, not drive a
	// multi-gigabyte allocation loop on a truncated reader.
	n := int(r.u32())
	if r.err == nil && n > r.remaining()/8 {
		return nil, fmt.Errorf("image: entry count %d exceeds input size", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		img.Entries = append(img.Entries, r.u64())
	}
	n = int(r.u32())
	if r.err == nil && n > r.remaining()/12 { // addr u64 + name length u32
		return nil, fmt.Errorf("image: import count %d exceeds input size", n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		addr := r.u64()
		img.Imports[addr] = string(r.lenBytes())
	}
	if r.err != nil {
		return nil, r.err
	}
	hasMeta := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	if hasMeta[0] == 1 {
		mj := r.lenBytes()
		if r.err != nil {
			return nil, r.err
		}
		img.Meta = &Metadata{}
		if err := json.Unmarshal(mj, img.Meta); err != nil {
			return nil, fmt.Errorf("image: unmarshal metadata: %w", err)
		}
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Validate performs basic consistency checks on the image.
func (img *Image) Validate() error {
	if len(img.Code)%16 != 0 {
		return fmt.Errorf("image: code length %d not a multiple of the instruction size", len(img.Code))
	}
	prev := uint64(0)
	for _, e := range img.Entries {
		if !img.InCode(e) {
			return fmt.Errorf("image: entry 0x%x outside code section", e)
		}
		if e <= prev {
			return fmt.Errorf("image: entries not strictly ascending at 0x%x", e)
		}
		if (e-CodeBase)%16 != 0 {
			return fmt.Errorf("image: entry 0x%x not instruction-aligned", e)
		}
		prev = e
	}
	for a := range img.Imports {
		if a < ImportBase {
			return fmt.Errorf("image: import thunk 0x%x below import base", a)
		}
	}
	return nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

// remaining returns how many unread bytes are left.
func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return make([]byte, n)
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("image: truncated input at offset %d", r.pos)
		return make([]byte, n)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }

func (r *reader) lenBytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.err = fmt.Errorf("image: bad length %d at offset %d", n, r.pos)
		return nil
	}
	return r.bytes(n)
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeU64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func writeBytes(buf *bytes.Buffer, b []byte) {
	writeU32(buf, uint32(len(b)))
	buf.Write(b)
}
