package image

import (
	"testing"
)

func sampleImage() *Image {
	return &Image{
		Name:    "sample",
		Code:    make([]byte, 64),
		Rodata:  []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		Entries: []uint64{CodeBase, CodeBase + 32},
		Imports: map[uint64]string{ImportBase: ImportAlloc, ImportBase + 16: ImportAbort},
		Meta: &Metadata{
			Types: []TypeMeta{
				{Name: "A", VTable: RodataBase},
				{Name: "B", VTable: RodataBase + 8, Parent: RodataBase},
			},
			FuncNames:     map[uint64]string{CodeBase: "f"},
			SourceParents: map[string]string{"B": "A"},
		},
	}
}

func TestMarshalLoadRoundTrip(t *testing.T) {
	img := sampleImage()
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != img.Name || len(got.Code) != len(img.Code) || len(got.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Meta == nil || len(got.Meta.Types) != 2 || got.Meta.Types[1].Parent != RodataBase {
		t.Fatalf("metadata lost: %+v", got.Meta)
	}
	if got.Imports[ImportBase] != ImportAlloc {
		t.Fatal("imports lost")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	img := sampleImage()
	data, _ := img.Marshal()
	if _, err := Load(data[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Load(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestStripRemovesGroundTruth(t *testing.T) {
	img := sampleImage()
	s := img.Strip()
	if s.Meta != nil {
		t.Fatal("Strip left metadata")
	}
	if img.Meta == nil {
		t.Fatal("Strip mutated the original")
	}
	// Mutating the stripped copy must not touch the original.
	s.Code[0] = 0xff
	if img.Code[0] == 0xff {
		t.Fatal("Strip shares code storage")
	}
}

func TestFuncBoundsAndRanges(t *testing.T) {
	img := sampleImage()
	start, end, err := img.FuncBounds(CodeBase)
	if err != nil || start != CodeBase || end != CodeBase+32 {
		t.Fatalf("bounds of first function: %x..%x err=%v", start, end, err)
	}
	_, end, err = img.FuncBounds(CodeBase + 32)
	if err != nil || end != CodeBase+64 {
		t.Fatalf("last function must end at code end, got %x err=%v", end, err)
	}
	if _, _, err := img.FuncBounds(CodeBase + 16); err == nil {
		t.Error("non-entry accepted")
	}
	if !img.InCode(CodeBase) || img.InCode(CodeBase+64) {
		t.Error("InCode range wrong")
	}
	if w, ok := img.ReadRodataWord(RodataBase); !ok || w == 0 {
		t.Error("ReadRodataWord failed")
	}
	if _, ok := img.ReadRodataWord(RodataBase + 8); !ok {
		t.Error("read of last full word failed")
	}
	if _, ok := img.ReadRodataWord(RodataBase + 16); ok {
		t.Error("out-of-range read succeeded")
	}
}

func TestValidateCatchesBadEntries(t *testing.T) {
	img := sampleImage()
	img.Entries = []uint64{CodeBase + 8} // unaligned
	if err := img.Validate(); err == nil {
		t.Error("unaligned entry accepted")
	}
	img = sampleImage()
	img.Entries = []uint64{CodeBase + 9999}
	if err := img.Validate(); err == nil {
		t.Error("out-of-code entry accepted")
	}
	img = sampleImage()
	img.Code = img.Code[:63]
	if err := img.Validate(); err == nil {
		t.Error("ragged code section accepted")
	}
}

// TestContentDigest pins the snapshot cache's image half: the digest is
// stable across calls and copies, ignores the display name and the
// ground-truth metadata (analysis-identical images share a cache slot),
// and moves whenever any analysis-relevant content moves.
func TestContentDigest(t *testing.T) {
	img := sampleImage()
	base := img.ContentDigest()
	if base != img.ContentDigest() {
		t.Fatal("digest not stable across calls")
	}
	if got := img.Strip().ContentDigest(); got != base {
		t.Error("stripping metadata changed the digest")
	}
	renamed := sampleImage()
	renamed.Name = "elsewhere"
	renamed.Meta = nil
	if got := renamed.ContentDigest(); got != base {
		t.Error("name/metadata changes changed the digest")
	}

	mutate := func(name string, f func(*Image)) {
		m := sampleImage().Strip()
		f(m)
		if m.ContentDigest() == base {
			t.Errorf("%s change kept the digest", name)
		}
	}
	mutate("code", func(m *Image) { m.Code[10] ^= 1 })
	mutate("rodata", func(m *Image) { m.Rodata[0] ^= 1 })
	mutate("entries", func(m *Image) { m.Entries[1]++ })
	mutate("import name", func(m *Image) { m.Imports[ImportBase] = "other" })
	mutate("import addr", func(m *Image) {
		m.Imports[ImportBase+32] = m.Imports[ImportBase]
		delete(m.Imports, ImportBase)
	})
	// Length-prefixed hashing: moving a byte across the code/rodata
	// boundary must not collide.
	mutate("section boundary", func(m *Image) {
		m.Code = m.Code[:len(m.Code)-1]
		m.Rodata = append([]byte{0}, m.Rodata...)
	})
}

// TestFunctionDigests pins the incremental lane's function half: digests
// are stable, an in-place patch moves exactly the patched function's
// digest, and a body relocated to a different entry address never keeps
// its digest (extraction artifacts embed absolute addresses).
func TestFunctionDigests(t *testing.T) {
	img := sampleImage().Strip()
	base := img.FunctionDigests()
	if len(base) != len(img.Entries) {
		t.Fatalf("digest table has %d entries for %d functions", len(base), len(img.Entries))
	}
	if base[0] == base[1] {
		t.Error("distinct functions share a digest")
	}
	again := img.FunctionDigests()
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("function %d digest not stable", i)
		}
		if base[i] != img.FunctionDigest(i) {
			t.Fatalf("FunctionDigest(%d) disagrees with the table", i)
		}
	}

	// In-place patch inside function 1 (bytes 32..64): only digest 1 moves.
	patched := sampleImage().Strip()
	patched.Code[40] ^= 0xff
	got := patched.FunctionDigests()
	if got[0] != base[0] {
		t.Error("patch in function 1 moved function 0's digest")
	}
	if got[1] == base[1] {
		t.Error("patch in function 1 kept its digest")
	}

	// Same body at a different entry address: digest must move.
	moved := sampleImage().Strip()
	moved.Entries = []uint64{CodeBase, CodeBase + 16}
	movedDigests := moved.FunctionDigests()
	// moved function 1 is bytes 16..64 (all zero) vs base function 0's
	// bytes 0..32 (all zero): same leading content class, different entry.
	if movedDigests[1] == base[1] {
		t.Error("relocated entry kept its digest")
	}
}
