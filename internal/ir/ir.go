// Package ir defines the instruction set of the synthetic target machine
// shared by the compiler (internal/compiler), the disassembler
// (internal/disasm), and the symbolic tracelet extractor (internal/objtrace).
//
// The machine is a small register machine with an MSVC-flavoured calling
// convention: the receiver of a method call travels in a dedicated register
// (RegThis, the analogue of ECX under thiscall), up to six arguments travel
// in RegArg0..RegArg5, and results return in RegRet. Code addresses are
// absolute; every instruction occupies exactly InstSize bytes, so the
// address of instruction i of a function with entry e is e + i*InstSize.
package ir

import (
	"encoding/binary"
	"fmt"
)

// Reg is a machine register.
type Reg uint8

// Register conventions.
const (
	// RegThis carries the receiver ("this") into calls, like ECX under the
	// MSVC thiscall convention.
	RegThis Reg = 0
	// RegRet carries function results (and the fresh pointer returned by
	// the allocator import).
	RegRet Reg = 1
	// RegArg0 is the first of six argument registers RegArg0..RegArg0+5.
	RegArg0 Reg = 2
	// NumArgRegs is the number of argument registers.
	NumArgRegs = 6
	// RegTmp0 is the first caller-local scratch register; the compiler
	// allocates locals upward from here.
	RegTmp0 Reg = 8
	// NumRegs is the size of the register file.
	NumRegs = 64
)

// ArgReg returns the i-th argument register.
func ArgReg(i int) Reg { return RegArg0 + Reg(i) }

// Op is an opcode.
type Op uint8

// Opcodes. The immediate (Imm) and offset (Off) interpretation is noted per
// opcode.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpMovImm: rd = Imm (an opaque scalar constant).
	OpMovImm
	// OpMovReg: rd = rs.
	OpMovReg
	// OpLea: rd = Imm, where Imm is an absolute address (of a vtable, a
	// function, or a global). Distinguished from OpMovImm so that address
	// formation is recognizable, as it is in real code via relocations.
	OpLea
	// OpLoad: rd = [rs + Off].
	OpLoad
	// OpStore: [rd + Off] = rs.
	OpStore
	// OpCall: direct call to absolute address Imm. Arguments are in the
	// argument registers, the receiver (if any) in RegThis; the result
	// appears in RegRet.
	OpCall
	// OpCallInd: indirect call through register rs.
	OpCallInd
	// OpRet: return; the result (if any) is in RegRet.
	OpRet
	// OpJmp: unconditional jump to absolute address Imm.
	OpJmp
	// OpBr: conditional branch on rs to absolute address Imm; the condition
	// value is opaque to the analyses, which explore both outcomes.
	OpBr
	// OpArith: rd = op(rs, Imm) for an opaque arithmetic operation. The
	// result is a scalar.
	OpArith
	numOps
)

var opNames = [...]string{
	OpNop:     "nop",
	OpMovImm:  "movi",
	OpMovReg:  "mov",
	OpLea:     "lea",
	OpLoad:    "load",
	OpStore:   "store",
	OpCall:    "call",
	OpCallInd: "calli",
	OpRet:     "ret",
	OpJmp:     "jmp",
	OpBr:      "br",
	OpArith:   "arith",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// Inst is a single machine instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs  Reg
	Off int32
	Imm uint64
}

// InstSize is the fixed encoded size of an instruction in bytes.
const InstSize = 16

// Encode writes the instruction into b, which must be at least InstSize
// bytes long.
func (in Inst) Encode(b []byte) {
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd)
	b[2] = byte(in.Rs)
	b[3] = 0
	binary.LittleEndian.PutUint32(b[4:8], uint32(in.Off))
	binary.LittleEndian.PutUint64(b[8:16], in.Imm)
}

// Decode parses one instruction from b, which must be at least InstSize
// bytes long. It returns an error for undefined opcodes or malformed
// padding, so that scanning non-code bytes fails loudly.
func Decode(b []byte) (Inst, error) {
	var in Inst
	if len(b) < InstSize {
		return in, fmt.Errorf("ir: truncated instruction (%d bytes)", len(b))
	}
	in.Op = Op(b[0])
	if !in.Op.Valid() {
		return in, fmt.Errorf("ir: invalid opcode %d", b[0])
	}
	if b[3] != 0 {
		return in, fmt.Errorf("ir: nonzero padding byte")
	}
	in.Rd = Reg(b[1])
	in.Rs = Reg(b[2])
	if in.Rd >= NumRegs || in.Rs >= NumRegs {
		return in, fmt.Errorf("ir: register out of range (rd=%d rs=%d)", in.Rd, in.Rs)
	}
	in.Off = int32(binary.LittleEndian.Uint32(b[4:8]))
	in.Imm = binary.LittleEndian.Uint64(b[8:16])
	return in, nil
}

// String renders the instruction in a readable assembly-like form.
func (in Inst) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMovImm:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case OpMovReg:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs)
	case OpLea:
		return fmt.Sprintf("lea r%d, 0x%x", in.Rd, in.Imm)
	case OpLoad:
		return fmt.Sprintf("load r%d, [r%d+%d]", in.Rd, in.Rs, in.Off)
	case OpStore:
		return fmt.Sprintf("store [r%d+%d], r%d", in.Rd, in.Off, in.Rs)
	case OpCall:
		return fmt.Sprintf("call 0x%x", in.Imm)
	case OpCallInd:
		return fmt.Sprintf("calli r%d", in.Rs)
	case OpRet:
		return "ret"
	case OpJmp:
		return fmt.Sprintf("jmp 0x%x", in.Imm)
	case OpBr:
		return fmt.Sprintf("br r%d, 0x%x", in.Rs, in.Imm)
	case OpArith:
		return fmt.Sprintf("arith r%d, r%d, %d", in.Rd, in.Rs, in.Imm)
	}
	return fmt.Sprintf("?%d", in.Op)
}

// Function is a decoded function: a contiguous run of instructions starting
// at Entry.
type Function struct {
	Entry uint64
	Insts []Inst
}

// AddrOf returns the address of instruction index i.
func (f *Function) AddrOf(i int) uint64 { return f.Entry + uint64(i)*InstSize }

// IndexOf returns the instruction index for address a, or -1 if a is not an
// instruction boundary within f.
func (f *Function) IndexOf(a uint64) int {
	if a < f.Entry {
		return -1
	}
	d := a - f.Entry
	if d%InstSize != 0 {
		return -1
	}
	i := int(d / InstSize)
	if i >= len(f.Insts) {
		return -1
	}
	return i
}

// End returns the address one past the last instruction.
func (f *Function) End() uint64 { return f.Entry + uint64(len(f.Insts))*InstSize }

// EncodeAll appends the encoding of all instructions to dst and returns it.
func (f *Function) EncodeAll(dst []byte) []byte {
	var buf [InstSize]byte
	for _, in := range f.Insts {
		in.Encode(buf[:])
		dst = append(dst, buf[:]...)
	}
	return dst
}

// String renders the function with addresses.
func (f *Function) String() string {
	s := fmt.Sprintf("func@0x%x:\n", f.Entry)
	for i, in := range f.Insts {
		s += fmt.Sprintf("  0x%x: %s\n", f.AddrOf(i), in.String())
	}
	return s
}
