package ir

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs uint8, off int32, imm uint64) bool {
		in := Inst{Op: Op(op % uint8(numOps)), Rd: Reg(rd % NumRegs), Rs: Reg(rs % NumRegs), Off: off, Imm: imm}
		var b [InstSize]byte
		in.Encode(b[:])
		out, err := Decode(b[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var b [InstSize]byte
	b[0] = byte(numOps) + 3 // invalid opcode
	if _, err := Decode(b[:]); err == nil {
		t.Error("invalid opcode accepted")
	}
	b[0] = byte(OpNop)
	b[3] = 1 // nonzero padding
	if _, err := Decode(b[:]); err == nil {
		t.Error("nonzero padding accepted")
	}
	if _, err := Decode(b[:4]); err == nil {
		t.Error("truncated instruction accepted")
	}
	var c [InstSize]byte
	c[1] = NumRegs // register out of range
	if _, err := Decode(c[:]); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestFunctionAddressing(t *testing.T) {
	f := &Function{Entry: 0x1000, Insts: make([]Inst, 4)}
	if f.AddrOf(2) != 0x1000+2*InstSize {
		t.Error("AddrOf wrong")
	}
	if f.IndexOf(0x1000+3*InstSize) != 3 {
		t.Error("IndexOf wrong")
	}
	if f.IndexOf(0x1000+1) != -1 {
		t.Error("unaligned address accepted")
	}
	if f.IndexOf(f.End()) != -1 {
		t.Error("past-the-end address accepted")
	}
	if f.IndexOf(0xfff) != -1 {
		t.Error("address before entry accepted")
	}
}

func TestStringsAreStable(t *testing.T) {
	ins := []Inst{
		{Op: OpMovImm, Rd: 3, Imm: 7},
		{Op: OpLoad, Rd: 1, Rs: 2, Off: 8},
		{Op: OpStore, Rd: 2, Rs: 1, Off: 16},
		{Op: OpCall, Imm: 0x401000},
		{Op: OpCallInd, Rs: 5},
		{Op: OpRet},
	}
	want := []string{
		"movi r3, 7", "load r1, [r2+8]", "store [r2+16], r1",
		"call 0x401000", "calli r5", "ret",
	}
	for i, in := range ins {
		if in.String() != want[i] {
			t.Errorf("String() = %q, want %q", in.String(), want[i])
		}
	}
}
