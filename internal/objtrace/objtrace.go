// Package objtrace statically extracts object tracelets from a stripped
// binary image (§3.2 of the paper). An intra-procedural symbolic execution
// runs each function separately, tracking symbolic object values; objects
// are identified by vtable-pointer installs (object initialization or
// destruction) and by the `this` pointer of virtual functions. The events
// recorded per object are exactly those of Table 1:
//
//	C(i)    call to a virtual function at slot i of the object's vtable
//	R(i)    read from a field at offset i of the object
//	W(i)    write to a field at offset i of the object
//	this    object passed as the receiver to a function
//	Arg(i)  object passed as i-th argument to a function
//	ret     object returned from the function
//	call(f) a call to a concrete function f the object participates in
//
// Event sequences are split into tracelets of bounded length (up to 7 in
// the paper's experiments); TT(t) is the union of tracelets of all objects
// of type t. The extractor also records the structural observations the
// §5 analysis needs: ordered vtable installs per object and direct calls
// made with an object as receiver (constructor-chain evidence).
package objtrace

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/vtable"
)

// EventKind enumerates the Table 1 event alphabet.
type EventKind uint8

// Event kinds.
const (
	EvCall  EventKind = iota // C(i)
	EvRead                   // R(i)
	EvWrite                  // W(i)
	EvThis                   // this
	EvArg                    // Arg(i)
	EvRet                    // ret
	EvCallF                  // call(f)
)

// Event is a single tracked event. N holds the slot index (EvCall), field
// offset (EvRead/EvWrite), argument index (EvArg), or callee address
// (EvCallF); it is zero for EvThis and EvRet.
type Event struct {
	Kind EventKind
	N    uint64
}

// String renders the event in the paper's notation.
func (e Event) String() string {
	switch e.Kind {
	case EvCall:
		return fmt.Sprintf("C(%d)", e.N)
	case EvRead:
		return fmt.Sprintf("R(%d)", e.N)
	case EvWrite:
		return fmt.Sprintf("W(%d)", e.N)
	case EvThis:
		return "this"
	case EvArg:
		return fmt.Sprintf("Arg(%d)", e.N)
	case EvRet:
		return "ret"
	case EvCallF:
		return fmt.Sprintf("call(0x%x)", e.N)
	}
	return "?"
}

// Tracelet is a bounded-length event sequence.
type Tracelet []Event

// String renders the tracelet as "e1; e2; ...".
func (t Tracelet) String() string {
	s := ""
	for i, e := range t {
		if i > 0 {
			s += "; "
		}
		s += e.String()
	}
	return s
}

// StructEvent is a structural observation on one object: a vtable install
// (Install=true: VT stored at object offset Off) or a direct call with the
// object as receiver (Callee).
type StructEvent struct {
	Install bool
	Off     int32
	VT      uint64
	Callee  uint64
}

// ObjStruct is the ordered structural observation sequence of one abstract
// object within one function.
type ObjStruct struct {
	// Fn is the entry address of the observing function.
	Fn uint64
	// EntryThis marks the object that arrived as the function's receiver.
	EntryThis bool
	// Events in program order along one execution path.
	Events []StructEvent
}

// Config bounds the symbolic execution.
type Config struct {
	// MaxPaths caps explored paths per function.
	MaxPaths int
	// MaxSteps caps instructions per path.
	MaxSteps int
	// MaxUnroll caps how many times each conditional back-edge may be taken
	// on one path.
	MaxUnroll int
	// Window is the tracelet length bound (the paper uses 7).
	Window int
	// MaxTraceLen caps the raw per-object event sequence length.
	MaxTraceLen int
	// Workers bounds how many per-function symbolic executions run
	// concurrently. 0 or 1 runs the extraction serially. Functions are
	// mutually independent (each executor sees only its own function), the
	// per-function results land in index-owned slots, and the merge walks
	// them in function order, so the Result is byte-identical for every
	// worker count.
	Workers int
	// Pool, when non-nil, draws the extraction's helper goroutines from a
	// corpus-wide shared worker pool instead of the private Workers budget
	// (see internal/pool). Neither Pool nor Workers affects the Result.
	Pool *pool.Shared
}

// DefaultConfig returns the paper-calibrated bounds.
func DefaultConfig() Config {
	return Config{MaxPaths: 64, MaxSteps: 512, MaxUnroll: 2, Window: 7, MaxTraceLen: 128}
}

// WithDefaults returns the config with unset (zero) bounds replaced by the
// paper defaults, exactly as Extract resolves them. Snapshot fingerprints
// hash the resolved values, so an explicit default and an unset field
// produce the same cache key. Workers is not a bound and stays as-is.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxPaths <= 0 {
		c.MaxPaths = d.MaxPaths
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = d.MaxSteps
	}
	if c.MaxUnroll <= 0 {
		c.MaxUnroll = d.MaxUnroll
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MaxTraceLen <= 0 {
		c.MaxTraceLen = d.MaxTraceLen
	}
	return c
}

// Result is the extractor output.
type Result struct {
	// PerType maps vtable address to the tracelet multiset TT(t).
	PerType map[uint64][]Tracelet
	// RawPerType maps vtable address to the deduplicated pre-windowing
	// event sequences (Fig. 7 material).
	RawPerType map[uint64][][]Event
	// Structs are the structural observations for §5.
	Structs []ObjStruct
	// FnVTables maps function entry to the vtables containing it.
	FnVTables map[uint64][]uint64
}

// EntryThisVT is the sentinel "vtable" of segments observed on a
// function's receiver object before any install: the merge attributes
// them to every vtable containing the function.
const EntryThisVT = ^uint64(0)

// Segment is one typed event run of an abstract object within a function:
// the behavioral events observed while the object's primary vtable was
// VT. VT is a discovered vtable address or EntryThisVT.
type Segment struct {
	VT     uint64
	Events []Event
}

// FnExtraction is one function's complete extractor output — the unit of
// function-granular snapshot reuse. It depends only on the function's own
// body plus the cross-function inputs ContextDigest hashes, so two
// extractions of a byte-identical function under an identical context are
// deep-equal, and a restored bundle merges exactly like a fresh one.
type FnExtraction struct {
	// Entry is the function's entry address.
	Entry uint64
	// Segments holds the function's typed event runs, deduplicated per
	// (VT, content) in first-observation order — the order the serial
	// merge consumes.
	Segments []Segment
	// Structs are the structural observations recorded by this function
	// (ObjStruct.Fn == Entry on every element), deduplicated.
	Structs []ObjStruct
}

// ContextDigest hashes the symbolic executor's only cross-function
// inputs: the function entry table, the import table, and the discovered
// vtable set (addresses and slot contents). A per-function extraction is
// reusable across binary versions exactly when the function's own content
// digest (image.FunctionDigest) and this context digest both match —
// everything else an executor reads is local to the function body. Rodata
// is deliberately absent: the executor never reads it directly, and the
// part that matters (vtables) is hashed post-discovery.
func ContextDigest(img *image.Image, vts []*vtable.VTable) [32]byte {
	h := sha256.New()
	var b [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	writeU64(uint64(len(img.Entries)))
	for _, e := range img.Entries {
		writeU64(e)
	}
	addrs := make([]uint64, 0, len(img.Imports))
	for a := range img.Imports {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	writeU64(uint64(len(addrs)))
	for _, a := range addrs {
		writeU64(a)
		name := img.Imports[a]
		writeU64(uint64(len(name)))
		h.Write([]byte(name))
	}
	writeU64(uint64(len(vts)))
	for _, v := range vts {
		writeU64(v.Addr)
		writeU64(uint64(len(v.Slots)))
		for _, f := range v.Slots {
			writeU64(f)
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Extract runs the symbolic execution over every function of the image.
func Extract(img *image.Image, fns []*ir.Function, vts []*vtable.VTable, cfg Config) *Result {
	res, _ := ExtractContext(context.Background(), img, fns, vts, cfg)
	return res
}

// ExtractContext is Extract with cancellation: when ctx is canceled the
// fan-out stops starting new per-function executions, drains the running
// ones, and returns ctx.Err() with a nil Result.
func ExtractContext(ctx context.Context, img *image.Image, fns []*ir.Function, vts []*vtable.VTable, cfg Config) (*Result, error) {
	exts, err := ExtractFunctions(ctx, img, fns, vts, cfg, nil)
	if err != nil {
		return nil, err
	}
	return MergeFunctions(exts, vts, cfg), nil
}

// ExtractFunctions produces one FnExtraction per function. Functions are
// mutually independent, so the symbolic executions fan out over the
// worker pool into index-owned slots. When reuse is non-nil it is
// consulted first for every index; a non-nil bundle (typically restored
// from a prior version's snapshot) is adopted verbatim and the function's
// execution is skipped — the incremental lane's whole saving. reuse must
// be safe for concurrent calls with distinct indices.
func ExtractFunctions(ctx context.Context, img *image.Image, fns []*ir.Function, vts []*vtable.VTable, cfg Config, reuse func(i int) *FnExtraction) ([]*FnExtraction, error) {
	cfg = cfg.withDefaults()
	// Name the fan-out for trace spans; free unless the context carries a
	// tracing bus.
	ctx = obs.WithRegion(ctx, obs.BusFrom(ctx), "tracelets")
	vtSet := map[uint64]bool{}
	fnVTables := map[uint64][]uint64{}
	for _, v := range vts {
		vtSet[v.Addr] = true
		for _, f := range v.Slots {
			fnVTables[f] = append(fnVTables[f], v.Addr)
		}
	}
	exts := make([]*FnExtraction, len(fns))
	if err := pool.ForEach(ctx, cfg.Pool, cfg.Workers, len(fns), func(i int) {
		if reuse != nil {
			if b := reuse(i); b != nil {
				exts[i] = b
				return
			}
		}
		ex := &executor{
			img: img, fn: fns[i], cfg: cfg, vtSet: vtSet,
			thisTypes: fnVTables[fns[i].Entry],
		}
		ex.run()
		exts[i] = ex.extraction()
	}); err != nil {
		return nil, err
	}
	return exts, nil
}

// MergeFunctions assembles per-function extractions into the extractor
// Result: a serial walk in function order, so the (order-sensitive)
// per-function deduplication and per-type attribution see the segments
// exactly as a serial extraction would. The Result is byte-identical
// whether each bundle was freshly executed or restored.
func MergeFunctions(exts []*FnExtraction, vts []*vtable.VTable, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		PerType:    map[uint64][]Tracelet{},
		RawPerType: map[uint64][][]Event{},
		FnVTables:  map[uint64][]uint64{},
	}
	for _, v := range vts {
		for _, f := range v.Slots {
			res.FnVTables[f] = append(res.FnVTables[f], v.Addr)
		}
	}
	structSeen := map[string]bool{}
	for _, ext := range exts {
		// Deduplicate raw sequences per (object segment type, content);
		// bundles arrive pre-deduplicated, but restored data is re-checked
		// so a hand-edited snapshot can only lose segments, never multiply
		// them.
		seqSeen := map[string]bool{}
		for _, seg := range ext.Segments {
			key := fmt.Sprintf("%d|%s", seg.VT, eventsKey(seg.Events))
			if seqSeen[key] || len(seg.Events) == 0 {
				continue
			}
			seqSeen[key] = true
			types := []uint64{seg.VT}
			if seg.VT == EntryThisVT {
				types = res.FnVTables[ext.Entry]
			}
			for _, t := range types {
				res.RawPerType[t] = append(res.RawPerType[t], seg.Events)
				for _, tl := range windows(seg.Events, cfg.Window) {
					res.PerType[t] = append(res.PerType[t], tl)
				}
			}
		}
		for _, os := range ext.Structs {
			key := structKey(os)
			if !structSeen[key] {
				structSeen[key] = true
				res.Structs = append(res.Structs, os)
			}
		}
	}
	return res
}

// MergeFunctionsDelta produces the same Result MergeFunctions would,
// reusing a prior merge of the same function set in which only the
// functions marked changed differ. The caller must guarantee alignment:
// exts and priorFns describe the same entries and vts is unchanged (the
// incremental lane certifies both with the extraction-context digest).
//
// The merge is separable by type: every dedup key carries the segment's
// type (or the struct's function), so a type's tracelet lists depend only
// on the segments attributed to it, in function order. A type is affected
// when any changed function attributes a segment to it in either version;
// every other type's lists are adopted from the prior merge verbatim, and
// only affected types are rebuilt. The affected set is returned so
// downstream consumers can scope their own invalidation to it.
func MergeFunctionsDelta(exts []*FnExtraction, changed []bool, priorFns map[uint64]*FnExtraction, prior *Result, vts []*vtable.VTable, cfg Config) (*Result, map[uint64]bool) {
	cfg = cfg.withDefaults()
	res := &Result{
		PerType:    map[uint64][]Tracelet{},
		RawPerType: map[uint64][][]Event{},
		FnVTables:  map[uint64][]uint64{},
	}
	for _, v := range vts {
		for _, f := range v.Slots {
			res.FnVTables[f] = append(res.FnVTables[f], v.Addr)
		}
	}
	affected := map[uint64]bool{}
	mark := func(ext *FnExtraction) {
		if ext == nil {
			return
		}
		for _, seg := range ext.Segments {
			if seg.VT == EntryThisVT {
				for _, t := range res.FnVTables[ext.Entry] {
					affected[t] = true
				}
			} else {
				affected[seg.VT] = true
			}
		}
	}
	for i, ext := range exts {
		if changed[i] {
			mark(ext)
			mark(priorFns[ext.Entry])
		}
	}
	for t, tls := range prior.PerType {
		if !affected[t] {
			res.PerType[t] = tls
		}
	}
	for t, seqs := range prior.RawPerType {
		if !affected[t] {
			res.RawPerType[t] = seqs
		}
	}
	priorStructs := map[uint64][]ObjStruct{}
	for _, os := range prior.Structs {
		priorStructs[os.Fn] = append(priorStructs[os.Fn], os)
	}
	for i, ext := range exts {
		// Rebuild the affected types' lists. Restricting the scan to
		// affected-type segments cannot change dedup outcomes: the keys
		// include the type, so skipped segments never collide with kept
		// ones.
		var seqSeen map[string]bool
		for _, seg := range ext.Segments {
			types := []uint64{seg.VT}
			if seg.VT == EntryThisVT {
				types = res.FnVTables[ext.Entry]
			}
			hit := false
			for _, t := range types {
				if affected[t] {
					hit = true
					break
				}
			}
			if !hit || len(seg.Events) == 0 {
				continue
			}
			key := fmt.Sprintf("%d|%s", seg.VT, eventsKey(seg.Events))
			if seqSeen[key] {
				continue
			}
			if seqSeen == nil {
				seqSeen = map[string]bool{}
			}
			seqSeen[key] = true
			for _, t := range types {
				if !affected[t] {
					continue
				}
				res.RawPerType[t] = append(res.RawPerType[t], seg.Events)
				for _, tl := range windows(seg.Events, cfg.Window) {
					res.PerType[t] = append(res.PerType[t], tl)
				}
			}
		}
		// Structs dedup by (function, content), so an unchanged function's
		// structs are exactly its slice of the prior merge.
		if !changed[i] {
			res.Structs = append(res.Structs, priorStructs[ext.Entry]...)
			continue
		}
		structSeen := map[string]bool{}
		for _, os := range ext.Structs {
			key := structKey(os)
			if !structSeen[key] {
				structSeen[key] = true
				res.Structs = append(res.Structs, os)
			}
		}
	}
	return res, affected
}

// extraction converts a finished executor into its portable bundle,
// applying the same per-function deduplication the merge performs (the
// keys include the segment type, so deduplicating here then re-checking
// at merge time changes nothing).
func (ex *executor) extraction() *FnExtraction {
	out := &FnExtraction{Entry: ex.fn.Entry}
	seqSeen := map[string]bool{}
	for _, seg := range ex.segments {
		if len(seg.events) == 0 {
			continue
		}
		key := fmt.Sprintf("%d|%s", seg.vt, eventsKey(seg.events))
		if seqSeen[key] {
			continue
		}
		seqSeen[key] = true
		out.Segments = append(out.Segments, Segment{VT: seg.vt, Events: seg.events})
	}
	structSeen := map[string]bool{}
	for _, os := range ex.structs {
		key := structKey(os)
		if structSeen[key] {
			continue
		}
		structSeen[key] = true
		out.Structs = append(out.Structs, os)
	}
	return out
}

// windows splits a sequence into tracelets of length at most w (sliding
// window, stride 1; shorter sequences stay whole).
func windows(seq []Event, w int) []Tracelet {
	if len(seq) <= w {
		return []Tracelet{Tracelet(seq)}
	}
	out := make([]Tracelet, 0, len(seq)-w+1)
	for i := 0; i+w <= len(seq); i++ {
		out = append(out, Tracelet(seq[i:i+w]))
	}
	return out
}

func eventsKey(evs []Event) string {
	s := ""
	for _, e := range evs {
		s += fmt.Sprintf("%d:%d;", e.Kind, e.N)
	}
	return s
}

func structKey(os ObjStruct) string {
	s := fmt.Sprintf("%x|%v|", os.Fn, os.EntryThis)
	for _, e := range os.Events {
		s += fmt.Sprintf("%v:%d:%x:%x;", e.Install, e.Off, e.VT, e.Callee)
	}
	return s
}

// Symbolic values -------------------------------------------------------------

type vkind uint8

const (
	vUnknown vkind = iota
	vObj           // an abstract object; obj = id
	vVt            // address of a discovered vtable; n = address
	vFn            // address of a function; n = address
	vVptr          // value loaded from an object's vtable-pointer slot; obj, n = object offset of the slot
	vSlotFn        // value loaded from a vtable pointer at slot index; obj, n = slot index
	vNum           // opaque scalar
)

type val struct {
	kind vkind
	obj  int
	n    uint64
}

// entryThisType marks segments of the function's receiver object before any
// install: they are attributed to every vtable containing the function.
const entryThisType = EntryThisVT

// untyped marks segments of an object not yet associated with a vtable.
const untypedType = uint64(0)

// segment is a run of events on one object while it has one type.
type segment struct {
	obj    int
	vt     uint64 // vtable address, entryThisType, or untypedType
	events []Event
}

// objState is the per-path mutable state of one object.
type objState struct {
	// primary is the currently installed primary vtable (offset 0), or
	// entryThisType/untypedType.
	primary uint64
	// seg indexes the object's current segment in executor order.
	seg int
}

type state struct {
	pc    int
	steps int
	regs  [ir.NumRegs]val
	objs  map[int]objState
	// brTaken counts taken-edge traversals per branch instruction index.
	brTaken map[int]int
	// segments owned by this path (index into path-local slice).
	segments []segment
	// structs: per-object structural event logs (keyed by object id).
	structs map[int][]StructEvent
	// entryThisObj is the id of the receiver object, or -1.
	entryThisObj int
	nextObj      int
}

func (s *state) clone() *state {
	c := &state{
		pc: s.pc, steps: s.steps, regs: s.regs,
		objs:         make(map[int]objState, len(s.objs)),
		brTaken:      make(map[int]int, len(s.brTaken)),
		segments:     make([]segment, len(s.segments)),
		structs:      make(map[int][]StructEvent, len(s.structs)),
		entryThisObj: s.entryThisObj,
		nextObj:      s.nextObj,
	}
	for k, v := range s.objs {
		c.objs[k] = v
	}
	for k, v := range s.brTaken {
		c.brTaken[k] = v
	}
	for i, seg := range s.segments {
		c.segments[i] = segment{obj: seg.obj, vt: seg.vt, events: append([]Event(nil), seg.events...)}
	}
	for k, v := range s.structs {
		c.structs[k] = append([]StructEvent(nil), v...)
	}
	return c
}

type executor struct {
	img       *image.Image
	fn        *ir.Function
	cfg       Config
	vtSet     map[uint64]bool
	thisTypes []uint64

	paths    int
	segments []segment
	structs  []ObjStruct
}

func (ex *executor) run() {
	init := &state{pc: 0, objs: map[int]objState{}, brTaken: map[int]int{},
		structs: map[int][]StructEvent{}, entryThisObj: -1}
	if len(ex.thisTypes) > 0 {
		// The receiver of a virtual function is a typed object (§3.2).
		id := init.newObj()
		init.entryThisObj = id
		init.objs[id] = objState{primary: entryThisType, seg: -1}
		init.regs[ir.RegThis] = val{kind: vObj, obj: id}
	}
	stack := []*state{init}
	for len(stack) > 0 && ex.paths < ex.cfg.MaxPaths {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ex.step(st, &stack)
	}
}

func (s *state) newObj() int {
	id := s.nextObj
	s.nextObj++
	return id
}

// emit appends a behavioral event to the object's current segment.
func (s *state) emit(cfg Config, objID int, e Event) {
	os, ok := s.objs[objID]
	if !ok || os.primary == untypedType {
		return
	}
	if os.seg < 0 {
		s.segments = append(s.segments, segment{obj: objID, vt: os.primary})
		os.seg = len(s.segments) - 1
		s.objs[objID] = os
	}
	seg := &s.segments[os.seg]
	if len(seg.events) < cfg.MaxTraceLen {
		seg.events = append(seg.events, e)
	}
}

// install records a vtable install at off on the object, retyping it when
// off is 0 (primary vtable pointer).
func (s *state) install(objID int, off int32, vt uint64) {
	s.structs[objID] = append(s.structs[objID], StructEvent{Install: true, Off: off, VT: vt})
	if off != 0 {
		return
	}
	os := s.objs[objID]
	os.primary = vt
	os.seg = -1 // next event opens a fresh segment under the new type
	s.objs[objID] = os
}

// clobberCallRegs models the calling convention: volatile registers do not
// survive a call.
func (s *state) clobberCallRegs() {
	s.regs[ir.RegThis] = val{}
	s.regs[ir.RegRet] = val{}
	for i := 0; i < ir.NumArgRegs; i++ {
		s.regs[ir.ArgReg(i)] = val{}
	}
	for r := ir.Reg(60); r < ir.NumRegs; r++ {
		s.regs[r] = val{}
	}
}

// finish flushes a completed path into the executor's results.
func (ex *executor) finish(s *state) {
	ex.paths++
	ex.segments = append(ex.segments, s.segments...)
	ids := make([]int, 0, len(s.structs))
	for id := range s.structs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ex.structs = append(ex.structs, ObjStruct{
			Fn:        ex.fn.Entry,
			EntryThis: id == s.entryThisObj,
			Events:    s.structs[id],
		})
	}
}

// step executes from s.pc until the path ends, pushing forked states.
func (ex *executor) step(s *state, stack *[]*state) {
	cfg := ex.cfg
	for {
		if s.pc < 0 || s.pc >= len(ex.fn.Insts) || s.steps >= cfg.MaxSteps {
			ex.finish(s)
			return
		}
		in := ex.fn.Insts[s.pc]
		s.steps++
		next := s.pc + 1
		switch in.Op {
		case ir.OpNop:
		case ir.OpMovImm:
			s.regs[in.Rd] = val{kind: vNum, n: in.Imm}
		case ir.OpMovReg:
			s.regs[in.Rd] = s.regs[in.Rs]
		case ir.OpArith:
			s.regs[in.Rd] = val{kind: vNum}
		case ir.OpLea:
			switch {
			case ex.vtSet[in.Imm]:
				s.regs[in.Rd] = val{kind: vVt, n: in.Imm}
			case ex.img.IsEntry(in.Imm):
				s.regs[in.Rd] = val{kind: vFn, n: in.Imm}
			default:
				s.regs[in.Rd] = val{kind: vNum, n: in.Imm}
			}
		case ir.OpLoad:
			base := s.regs[in.Rs]
			switch base.kind {
			case vObj:
				os := s.objs[base.obj]
				if in.Off == 0 || hasInstallAt(s.structs[base.obj], in.Off) {
					s.regs[in.Rd] = val{kind: vVptr, obj: base.obj, n: uint64(in.Off)}
				} else {
					if os.primary != untypedType {
						s.emit(cfg, base.obj, Event{Kind: EvRead, N: uint64(in.Off)})
					}
					s.regs[in.Rd] = val{}
				}
			case vVptr:
				s.regs[in.Rd] = val{kind: vSlotFn, obj: base.obj, n: uint64(in.Off) / 8}
			default:
				s.regs[in.Rd] = val{}
			}
		case ir.OpStore:
			base := s.regs[in.Rd]
			if base.kind == vObj {
				sv := s.regs[in.Rs]
				if sv.kind == vVt {
					s.install(base.obj, in.Off, sv.n)
				} else if in.Off != 0 {
					s.emit(cfg, base.obj, Event{Kind: EvWrite, N: uint64(in.Off)})
				}
			}
		case ir.OpCall:
			isAlloc := ex.img.Imports[in.Imm] == image.ImportAlloc
			if !isAlloc {
				// Receiver and argument events.
				if rv := s.regs[ir.RegThis]; rv.kind == vObj {
					s.structs[rv.obj] = append(s.structs[rv.obj], StructEvent{Callee: in.Imm})
					s.emit(cfg, rv.obj, Event{Kind: EvThis})
					s.emit(cfg, rv.obj, Event{Kind: EvCallF, N: in.Imm})
				}
				for i := 0; i < ir.NumArgRegs; i++ {
					if av := s.regs[ir.ArgReg(i)]; av.kind == vObj {
						s.emit(cfg, av.obj, Event{Kind: EvArg, N: uint64(i)})
						s.emit(cfg, av.obj, Event{Kind: EvCallF, N: in.Imm})
					}
				}
			}
			s.clobberCallRegs()
			if isAlloc {
				id := s.newObj()
				s.objs[id] = objState{primary: untypedType, seg: -1}
				s.regs[ir.RegRet] = val{kind: vObj, obj: id}
			}
		case ir.OpCallInd:
			t := s.regs[in.Rs]
			if t.kind == vSlotFn {
				s.emit(cfg, t.obj, Event{Kind: EvCall, N: t.n})
			}
			for i := 0; i < ir.NumArgRegs; i++ {
				if av := s.regs[ir.ArgReg(i)]; av.kind == vObj {
					if t.kind != vSlotFn || av.obj != t.obj {
						s.emit(cfg, av.obj, Event{Kind: EvArg, N: uint64(i)})
					}
				}
			}
			s.clobberCallRegs()
		case ir.OpRet:
			if rv := s.regs[ir.RegRet]; rv.kind == vObj {
				s.emit(cfg, rv.obj, Event{Kind: EvRet})
			}
			ex.finish(s)
			return
		case ir.OpJmp:
			idx := ex.fn.IndexOf(in.Imm)
			if idx < 0 || idx == s.pc {
				// Self-loop (noreturn stub) or invalid target: end path.
				ex.finish(s)
				return
			}
			next = idx
		case ir.OpBr:
			idx := ex.fn.IndexOf(in.Imm)
			if idx >= 0 {
				taken := s.brTaken[s.pc]
				backEdge := idx <= s.pc
				if !backEdge || taken < cfg.MaxUnroll {
					if ex.paths+len(*stack) < cfg.MaxPaths {
						forked := s.clone()
						forked.brTaken[s.pc] = taken + 1
						forked.pc = idx
						*stack = append(*stack, forked)
					}
				}
			}
			// Fallthrough continues on this state.
		}
		s.pc = next
	}
}

func hasInstallAt(evs []StructEvent, off int32) bool {
	for _, e := range evs {
		if e.Install && e.Off == off && off != 0 {
			return true
		}
	}
	return false
}
