package objtrace

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/vtable"
)

// buildAndExtract compiles a program with the given options and runs the
// extractor on the stripped image.
func buildAndExtract(t *testing.T, p *cpp.Program, opts compiler.Options) (*image.Image, *Result) {
	t.Helper()
	img, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	return img, Extract(stripped, fns, vts, DefaultConfig())
}

func prog() *cpp.Program {
	return &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "m", Virtual: true},
				{Name: "g", Virtual: true},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "helper", Params: []cpp.Param{{Name: "o", Class: "A"}}, Body: []cpp.Stmt{cpp.Return{}}},
			{Name: "use", Body: []cpp.Stmt{
				cpp.New{Dst: "o", Class: "A"},
				cpp.VCall{Obj: "o", Method: "m"},
				cpp.VCall{Obj: "o", Method: "g"},
				cpp.WriteField{Obj: "o", Field: "x"},
				cpp.ReadField{Obj: "o", Field: "x"},
				cpp.CallFunc{Name: "helper", Args: []cpp.Arg{cpp.ObjArg("o")}},
				cpp.Return{Obj: "o"},
			}},
		},
	}
}

func TestTable1Events(t *testing.T) {
	img, res := buildAndExtract(t, prog(), compiler.DefaultOptions())
	vt := img.Meta.TypeByName("A").VTable
	seqs := res.RawPerType[vt]
	if len(seqs) == 0 {
		t.Fatal("no sequences extracted for A")
	}
	// The use function produces, after the ctor field init:
	// W(8) C(1) C(2) W(8) R(8) Arg(0) call(helper) ret.
	found := map[string]bool{}
	for _, seq := range seqs {
		for _, e := range seq {
			found[e.String()] = true
		}
	}
	for _, want := range []string{"C(1)", "C(2)", "W(8)", "R(8)", "Arg(0)", "ret"} {
		if !found[want] {
			t.Errorf("event %s not observed; got %v", want, found)
		}
	}
	callSeen := false
	for k := range found {
		if len(k) > 5 && k[:5] == "call(" {
			callSeen = true
		}
	}
	if !callSeen {
		t.Errorf("no call(f) event observed; got %v", found)
	}
}

func TestWindowing(t *testing.T) {
	seq := make([]Event, 10)
	for i := range seq {
		seq[i] = Event{Kind: EvCall, N: uint64(i)}
	}
	ws := windows(seq, 7)
	if len(ws) != 4 { // 10-7+1 sliding windows
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	for _, w := range ws {
		if len(w) != 7 {
			t.Fatalf("window length %d", len(w))
		}
	}
	short := windows(seq[:3], 7)
	if len(short) != 1 || len(short[0]) != 3 {
		t.Fatalf("short sequence should stay whole: %v", short)
	}
}

func TestStructuralObservations(t *testing.T) {
	// With cues preserved, the ctor-call pattern must be visible: the use
	// site installs the vtable and the object is typed from the install.
	_, res := buildAndExtract(t, prog(), compiler.DebugFriendlyOptions())
	sawInstall := false
	for _, os := range res.Structs {
		for _, e := range os.Events {
			if e.Install && e.Off == 0 {
				sawInstall = true
			}
		}
	}
	if !sawInstall {
		t.Fatal("no vtable install observed")
	}
}

func TestThisTypedMethodTraces(t *testing.T) {
	// A method body operating on `this` must contribute tracelets to every
	// type whose vtable contains the method.
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "m", Virtual: true, Body: []cpp.Stmt{
					cpp.WriteField{Obj: "this", Field: "x"},
					cpp.ReadField{Obj: "this", Field: "x"},
				}},
			}},
			{Name: "B", Bases: []string{"A"}, Methods: []*cpp.Method{{Name: "n", Virtual: true}}},
		},
		Funcs: []*cpp.Func{
			{Name: "ua", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}}},
			{Name: "ub", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}}},
		},
	}
	img, res := buildAndExtract(t, p, compiler.DefaultOptions())
	for _, cls := range []string{"A", "B"} {
		vt := img.Meta.TypeByName(cls).VTable
		sawW := false
		for _, seq := range res.RawPerType[vt] {
			for _, e := range seq {
				if e.Kind == EvWrite {
					sawW = true
				}
			}
		}
		if !sawW {
			t.Errorf("method trace missing for %s (shared impl should type `this` for both)", cls)
		}
	}
}

func TestPathExplosionBounded(t *testing.T) {
	// Deeply nested branches must be cut off by MaxPaths, not hang.
	var body []cpp.Stmt
	body = append(body, cpp.New{Dst: "o", Class: "A"})
	inner := []cpp.Stmt{cpp.VCall{Obj: "o", Method: "m"}}
	for i := 0; i < 20; i++ {
		inner = []cpp.Stmt{cpp.If{Then: inner, Else: []cpp.Stmt{cpp.VCall{Obj: "o", Method: "g"}}}}
	}
	p := prog()
	p.Funcs = append(p.Funcs, &cpp.Func{Name: "deep", Body: append(body, inner...)})
	_, res := buildAndExtract(t, p, compiler.DefaultOptions())
	if len(res.PerType) == 0 {
		t.Fatal("no tracelets extracted")
	}
}

func TestLoopUnrollBounded(t *testing.T) {
	p := prog()
	p.Funcs = append(p.Funcs, &cpp.Func{Name: "loopy", Body: []cpp.Stmt{
		cpp.New{Dst: "o", Class: "A"},
		cpp.Loop{Body: []cpp.Stmt{cpp.VCall{Obj: "o", Method: "m"}}},
	}})
	img, res := buildAndExtract(t, p, compiler.DefaultOptions())
	vt := img.Meta.TypeByName("A").VTable
	maxCalls := 0
	for _, seq := range res.RawPerType[vt] {
		n := 0
		for _, e := range seq {
			if e.Kind == EvCall && e.N == 1 {
				n++
			}
		}
		if n > maxCalls {
			maxCalls = n
		}
	}
	if maxCalls == 0 {
		t.Fatal("loop body produced no events")
	}
	if maxCalls > DefaultConfig().MaxUnroll+1 {
		t.Errorf("loop unrolled %d times, bound is %d", maxCalls, DefaultConfig().MaxUnroll)
	}
}

var _ = ir.InstSize // keep the import for the helper's type references
