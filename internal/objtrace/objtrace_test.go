package objtrace

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/vtable"
)

// buildAndExtract compiles a program with the given options and runs the
// extractor on the stripped image.
func buildAndExtract(t *testing.T, p *cpp.Program, opts compiler.Options) (*image.Image, *Result) {
	t.Helper()
	img, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	return img, Extract(stripped, fns, vts, DefaultConfig())
}

func prog() *cpp.Program {
	return &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "m", Virtual: true},
				{Name: "g", Virtual: true},
			}},
		},
		Funcs: []*cpp.Func{
			{Name: "helper", Params: []cpp.Param{{Name: "o", Class: "A"}}, Body: []cpp.Stmt{cpp.Return{}}},
			{Name: "use", Body: []cpp.Stmt{
				cpp.New{Dst: "o", Class: "A"},
				cpp.VCall{Obj: "o", Method: "m"},
				cpp.VCall{Obj: "o", Method: "g"},
				cpp.WriteField{Obj: "o", Field: "x"},
				cpp.ReadField{Obj: "o", Field: "x"},
				cpp.CallFunc{Name: "helper", Args: []cpp.Arg{cpp.ObjArg("o")}},
				cpp.Return{Obj: "o"},
			}},
		},
	}
}

func TestTable1Events(t *testing.T) {
	img, res := buildAndExtract(t, prog(), compiler.DefaultOptions())
	vt := img.Meta.TypeByName("A").VTable
	seqs := res.RawPerType[vt]
	if len(seqs) == 0 {
		t.Fatal("no sequences extracted for A")
	}
	// The use function produces, after the ctor field init:
	// W(8) C(1) C(2) W(8) R(8) Arg(0) call(helper) ret.
	found := map[string]bool{}
	for _, seq := range seqs {
		for _, e := range seq {
			found[e.String()] = true
		}
	}
	for _, want := range []string{"C(1)", "C(2)", "W(8)", "R(8)", "Arg(0)", "ret"} {
		if !found[want] {
			t.Errorf("event %s not observed; got %v", want, found)
		}
	}
	callSeen := false
	for k := range found {
		if len(k) > 5 && k[:5] == "call(" {
			callSeen = true
		}
	}
	if !callSeen {
		t.Errorf("no call(f) event observed; got %v", found)
	}
}

func TestWindowing(t *testing.T) {
	seq := make([]Event, 10)
	for i := range seq {
		seq[i] = Event{Kind: EvCall, N: uint64(i)}
	}
	ws := windows(seq, 7)
	if len(ws) != 4 { // 10-7+1 sliding windows
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	for _, w := range ws {
		if len(w) != 7 {
			t.Fatalf("window length %d", len(w))
		}
	}
	short := windows(seq[:3], 7)
	if len(short) != 1 || len(short[0]) != 3 {
		t.Fatalf("short sequence should stay whole: %v", short)
	}
}

func TestStructuralObservations(t *testing.T) {
	// With cues preserved, the ctor-call pattern must be visible: the use
	// site installs the vtable and the object is typed from the install.
	_, res := buildAndExtract(t, prog(), compiler.DebugFriendlyOptions())
	sawInstall := false
	for _, os := range res.Structs {
		for _, e := range os.Events {
			if e.Install && e.Off == 0 {
				sawInstall = true
			}
		}
	}
	if !sawInstall {
		t.Fatal("no vtable install observed")
	}
}

func TestThisTypedMethodTraces(t *testing.T) {
	// A method body operating on `this` must contribute tracelets to every
	// type whose vtable contains the method.
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			{Name: "A", Fields: []cpp.Field{{Name: "x"}}, Methods: []*cpp.Method{
				{Name: "m", Virtual: true, Body: []cpp.Stmt{
					cpp.WriteField{Obj: "this", Field: "x"},
					cpp.ReadField{Obj: "this", Field: "x"},
				}},
			}},
			{Name: "B", Bases: []string{"A"}, Methods: []*cpp.Method{{Name: "n", Virtual: true}}},
		},
		Funcs: []*cpp.Func{
			{Name: "ua", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "A"}}},
			{Name: "ub", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}}},
		},
	}
	img, res := buildAndExtract(t, p, compiler.DefaultOptions())
	for _, cls := range []string{"A", "B"} {
		vt := img.Meta.TypeByName(cls).VTable
		sawW := false
		for _, seq := range res.RawPerType[vt] {
			for _, e := range seq {
				if e.Kind == EvWrite {
					sawW = true
				}
			}
		}
		if !sawW {
			t.Errorf("method trace missing for %s (shared impl should type `this` for both)", cls)
		}
	}
}

func TestPathExplosionBounded(t *testing.T) {
	// Deeply nested branches must be cut off by MaxPaths, not hang.
	var body []cpp.Stmt
	body = append(body, cpp.New{Dst: "o", Class: "A"})
	inner := []cpp.Stmt{cpp.VCall{Obj: "o", Method: "m"}}
	for i := 0; i < 20; i++ {
		inner = []cpp.Stmt{cpp.If{Then: inner, Else: []cpp.Stmt{cpp.VCall{Obj: "o", Method: "g"}}}}
	}
	p := prog()
	p.Funcs = append(p.Funcs, &cpp.Func{Name: "deep", Body: append(body, inner...)})
	_, res := buildAndExtract(t, p, compiler.DefaultOptions())
	if len(res.PerType) == 0 {
		t.Fatal("no tracelets extracted")
	}
}

func TestLoopUnrollBounded(t *testing.T) {
	p := prog()
	p.Funcs = append(p.Funcs, &cpp.Func{Name: "loopy", Body: []cpp.Stmt{
		cpp.New{Dst: "o", Class: "A"},
		cpp.Loop{Body: []cpp.Stmt{cpp.VCall{Obj: "o", Method: "m"}}},
	}})
	img, res := buildAndExtract(t, p, compiler.DefaultOptions())
	vt := img.Meta.TypeByName("A").VTable
	maxCalls := 0
	for _, seq := range res.RawPerType[vt] {
		n := 0
		for _, e := range seq {
			if e.Kind == EvCall && e.N == 1 {
				n++
			}
		}
		if n > maxCalls {
			maxCalls = n
		}
	}
	if maxCalls == 0 {
		t.Fatal("loop body produced no events")
	}
	if maxCalls > DefaultConfig().MaxUnroll+1 {
		t.Errorf("loop unrolled %d times, bound is %d", maxCalls, DefaultConfig().MaxUnroll)
	}
}

var _ = ir.InstSize // keep the import for the helper's type references

// TestSplitExtractionEquivalence pins the incremental lane's core
// contract: splitting extraction into per-function bundles and merging
// them reproduces ExtractContext exactly, and bundles fed back through
// the reuse hook (as a version-diff restore would) change nothing.
func TestSplitExtractionEquivalence(t *testing.T) {
	img, err := compiler.Compile(prog(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	cfg := DefaultConfig()

	want := Extract(stripped, fns, vts, cfg)
	exts, err := ExtractFunctions(context.Background(), stripped, fns, vts, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != len(fns) {
		t.Fatalf("got %d bundles for %d functions", len(exts), len(fns))
	}
	for i, ext := range exts {
		if ext.Entry != fns[i].Entry {
			t.Fatalf("bundle %d entry %#x, want %#x", i, ext.Entry, fns[i].Entry)
		}
		for _, os := range ext.Structs {
			if os.Fn != ext.Entry {
				t.Fatalf("bundle %#x carries struct of fn %#x", ext.Entry, os.Fn)
			}
		}
	}
	got := MergeFunctions(exts, vts, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("MergeFunctions(ExtractFunctions(...)) differs from Extract")
	}

	// Re-run with every bundle supplied via the reuse hook: no executor
	// runs, and the merged result is still identical.
	reused, err := ExtractFunctions(context.Background(), stripped, fns, vts, cfg,
		func(i int) *FnExtraction { return exts[i] })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, exts) {
		t.Fatal("reuse hook altered the bundles")
	}
	if !reflect.DeepEqual(MergeFunctions(reused, vts, cfg), want) {
		t.Fatal("merge of reused bundles differs from Extract")
	}
}

// TestContextDigest pins what the cross-function digest covers: stable
// across calls, insensitive to code bytes (those are the per-function
// digests' job), sensitive to entries, imports, and vtable contents.
func TestContextDigest(t *testing.T) {
	img, err := compiler.Compile(prog(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	base := ContextDigest(stripped, vts)
	if base != ContextDigest(stripped, vts) {
		t.Fatal("context digest not stable")
	}

	patched := stripped.Strip()
	patched.Code[0] ^= 0xff
	if ContextDigest(patched, vts) != base {
		t.Error("code byte changed the context digest")
	}

	moved := stripped.Strip()
	moved.Entries = append([]uint64(nil), moved.Entries...)
	moved.Entries[0] += 16
	if ContextDigest(moved, vts) == base {
		t.Error("entry change kept the context digest")
	}

	renamed := stripped.Strip()
	renamed.Imports = map[uint64]string{}
	for a, n := range stripped.Imports {
		renamed.Imports[a] = n
	}
	for a := range renamed.Imports {
		renamed.Imports[a] = "other"
		break
	}
	if ContextDigest(renamed, vts) == base {
		t.Error("import rename kept the context digest")
	}

	if len(vts) > 0 && len(vts[0].Slots) > 0 {
		vcopy := make([]*vtable.VTable, len(vts))
		copy(vcopy, vts)
		alt := *vts[0]
		alt.Slots = append([]uint64(nil), alt.Slots...)
		alt.Slots[0]++
		vcopy[0] = &alt
		if ContextDigest(stripped, vcopy) == base {
			t.Error("vtable slot change kept the context digest")
		}
	}
}

// TestMergeFunctionsDelta pins the delta merge's contract: for any
// changed mask, merging the current bundles against a prior full merge of
// entry-aligned bundles reproduces MergeFunctions exactly — including
// when the prior bundles genuinely differ from the current ones — and the
// affected set is empty exactly when nothing changed.
func TestMergeFunctionsDelta(t *testing.T) {
	img, err := compiler.Compile(prog(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	cfg := DefaultConfig()
	exts, err := ExtractFunctions(context.Background(), stripped, fns, vts, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := MergeFunctions(exts, vts, cfg)
	priorFns := map[uint64]*FnExtraction{}
	for _, e := range exts {
		priorFns[e.Entry] = e
	}

	// Identical prior: any changed mask must reproduce the full merge.
	for name, mark := range map[string]func(int) bool{
		"none":      func(int) bool { return false },
		"every-3rd": func(i int) bool { return i%3 == 0 },
		"all":       func(int) bool { return true },
	} {
		changed := make([]bool, len(exts))
		n := 0
		for i := range changed {
			if mark(i) {
				changed[i] = true
				n++
			}
		}
		got, affected := MergeFunctionsDelta(exts, changed, priorFns, want, vts, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mask %s: delta merge differs from full merge", name)
		}
		if n == 0 && len(affected) != 0 {
			t.Fatalf("mask %s: %d affected types with nothing changed", name, len(affected))
		}
	}

	// Real difference: the prior version of one bundle is missing a
	// segment (as if the old code never emitted it). The delta merge must
	// repair the type's lists to the current full merge, and report the
	// segment's type as affected.
	victim := -1
	for i, e := range exts {
		if len(e.Segments) > 0 && len(e.Segments[len(e.Segments)-1].Events) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no bundle with a non-empty segment")
	}
	old := *exts[victim]
	old.Segments = old.Segments[:len(old.Segments)-1]
	priorExts := append([]*FnExtraction(nil), exts...)
	priorExts[victim] = &old
	prior := MergeFunctions(priorExts, vts, cfg)
	oldFns := map[uint64]*FnExtraction{}
	for _, e := range priorExts {
		oldFns[e.Entry] = e
	}
	changed := make([]bool, len(exts))
	changed[victim] = true
	got, affected := MergeFunctionsDelta(exts, changed, oldFns, prior, vts, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("delta merge over a differing prior did not repair the full merge")
	}
	vt := exts[victim].Segments[len(exts[victim].Segments)-1].VT
	if !affected[vt] {
		t.Fatalf("type %#x lost a segment but is not marked affected", vt)
	}
}
