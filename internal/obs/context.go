package obs

import "context"

type busKey struct{}
type regionKey struct{}

// WithBus attaches the bus to the context so layers that only see a
// context (the pool's fan-outs) can reach it. A nil bus returns ctx
// unchanged, keeping the disabled path allocation-free.
func WithBus(ctx context.Context, b *Bus) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, busKey{}, b)
}

// BusFrom returns the attached bus, or nil.
func BusFrom(ctx context.Context) *Bus {
	b, _ := ctx.Value(busKey{}).(*Bus)
	return b
}

// WithRegion names the work a context is about to fan out (the current
// stage), so pool helper spans carry a meaningful label. A no-op unless
// the bus is tracing.
func WithRegion(ctx context.Context, b *Bus, name string) context.Context {
	if b == nil || b.Trace == nil {
		return ctx
	}
	return context.WithValue(ctx, regionKey{}, name)
}

// RegionFrom returns the context's region name, or "".
func RegionFrom(ctx context.Context) string {
	s, _ := ctx.Value(regionKey{}).(string)
	return s
}
