package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBusConcurrentReadWhileInFlight is the /metrics contract: a bus may
// be Report()ed from other goroutines while an analysis is still
// recording stages and counters on it. Run under -race (CI does), the
// test proves the snapshot path is properly synchronized; the assertions
// check the mid-flight reads are consistent prefixes (stage count only
// grows, counters only grow).
func TestBusConcurrentReadWhileInFlight(t *testing.T) {
	bus := NewBus()
	const (
		writers  = 4
		readers  = 4
		perGorou = 200
	)
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perGorou; i++ {
				h := bus.StageStart("stage", "sec")
				bus.Add(CntVTables, 1)
				bus.Add(CntModels, 2)
				h.End(nil)
				bus.StageSkipped("skipped", "sec", StageCached)
				bus.SetSnapshotReuse(i % 4)
			}
		}()
	}
	stop := make(chan struct{})
	errs := make(chan string, readers)
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			prevStages := 0
			var prevVT int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				rep := bus.Report()
				if len(rep.Stages) < prevStages {
					errs <- "stage list shrank between mid-flight reads"
					return
				}
				prevStages = len(rep.Stages)
				if vt := rep.Counters["vtables"]; vt < prevVT {
					errs <- "counter went backwards between mid-flight reads"
					return
				} else {
					prevVT = vt
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	rep := bus.Report()
	wantStages := writers * perGorou * 2 // one ran + one skipped per iteration
	if len(rep.Stages) != wantStages {
		t.Fatalf("got %d stage records, want %d", len(rep.Stages), wantStages)
	}
	if got, want := rep.Counters["vtables"], int64(writers*perGorou); got != want {
		t.Fatalf("vtables counter = %d, want %d", got, want)
	}
	if got, want := rep.Counters["models"], int64(2*writers*perGorou); got != want {
		t.Fatalf("models counter = %d, want %d", got, want)
	}
}

func TestReportMerge(t *testing.T) {
	a := &Report{
		Total:         10 * time.Millisecond,
		SnapshotReuse: 1,
		Stages: []StageStats{
			{Name: "train", Section: "models", Status: StageRan, Wall: 5 * time.Millisecond, AllocBytes: 100, Allocs: 10},
			{Name: "hierarchy", Section: "hierarchy", Status: StageCached},
		},
		Counters: map[string]int64{"vtables": 3},
	}
	b := &Report{
		Total:         20 * time.Millisecond,
		SnapshotReuse: 3,
		Stages: []StageStats{
			{Name: "train", Section: "models", Status: StageRan, Wall: 7 * time.Millisecond, AllocBytes: 50, Allocs: 5},
			{Name: "train", Section: "models", Status: StageCached},
			{Name: "disasm", Section: "extraction", Status: StageRan, Wall: time.Millisecond},
		},
		Counters: map[string]int64{"vtables": 2, "models": 4},
	}
	agg := &Report{}
	agg.Merge(a)
	agg.Merge(b)
	agg.Merge(nil) // no-op

	if agg.Total != 30*time.Millisecond {
		t.Fatalf("Total = %v, want 30ms", agg.Total)
	}
	if agg.SnapshotReuse != 3 {
		t.Fatalf("SnapshotReuse = %d, want max 3", agg.SnapshotReuse)
	}
	find := func(name string, status StageStatus) *StageStats {
		for i := range agg.Stages {
			if agg.Stages[i].Name == name && agg.Stages[i].Status == status {
				return &agg.Stages[i]
			}
		}
		t.Fatalf("stage %q status %v missing from aggregate", name, status)
		return nil
	}
	trainRan := find("train", StageRan)
	if trainRan.Count != 2 || trainRan.Wall != 12*time.Millisecond ||
		trainRan.AllocBytes != 150 || trainRan.Allocs != 15 {
		t.Fatalf("train(ran) aggregate wrong: %+v", *trainRan)
	}
	if find("train", StageCached).Count != 1 {
		t.Fatalf("train(cached) should count 1")
	}
	if find("hierarchy", StageCached).Count != 1 {
		t.Fatalf("hierarchy(cached) should count 1")
	}
	if agg.Counters["vtables"] != 5 || agg.Counters["models"] != 4 {
		t.Fatalf("counters aggregate wrong: %v", agg.Counters)
	}
}

// TestReportMergeProviderStages pins the multi-provider attribution rows:
// caller-built evidence:NAME records (StageRecord) from several analyses
// merge per provider — Count accumulates the per-run family totals, wall
// and allocation columns sum — and never collapse into each other or
// into the pipeline's own stage rows.
func TestReportMergeProviderStages(t *testing.T) {
	runA := &Report{Stages: []StageStats{
		{Name: "hierarchy", Section: "hierarchy", Status: StageRan, Wall: time.Millisecond},
		{Name: "evidence:slm", Section: "hierarchy", Status: StageRan, Wall: 2 * time.Millisecond, AllocBytes: 10, Count: 3},
		{Name: "evidence:subtype", Section: "hierarchy", Status: StageRan, Wall: time.Millisecond, AllocBytes: 4, Count: 3},
	}}
	runB := &Report{Stages: []StageStats{
		{Name: "hierarchy", Section: "hierarchy", Status: StageRan, Wall: time.Millisecond},
		{Name: "evidence:slm", Section: "hierarchy", Status: StageRan, Wall: 3 * time.Millisecond, AllocBytes: 20, Count: 5},
		{Name: "evidence:subtype", Section: "hierarchy", Status: StageRan, Wall: time.Millisecond, AllocBytes: 6, Count: 5},
	}}
	agg := &Report{}
	agg.Merge(runA)
	agg.Merge(runB)

	if len(agg.Stages) != 3 {
		t.Fatalf("got %d aggregate rows, want hierarchy + one per provider: %+v", len(agg.Stages), agg.Stages)
	}
	find := func(name string) *StageStats {
		for i := range agg.Stages {
			if agg.Stages[i].Name == name {
				return &agg.Stages[i]
			}
		}
		t.Fatalf("row %q missing from aggregate", name)
		return nil
	}
	slm := find("evidence:slm")
	if slm.Count != 8 || slm.Wall != 5*time.Millisecond || slm.AllocBytes != 30 {
		t.Fatalf("evidence:slm aggregate wrong: %+v", *slm)
	}
	st := find("evidence:subtype")
	if st.Count != 8 || st.Wall != 2*time.Millisecond || st.AllocBytes != 10 {
		t.Fatalf("evidence:subtype aggregate wrong: %+v", *st)
	}
	if hier := find("hierarchy"); hier.Count != 2 {
		t.Fatalf("hierarchy row should count both runs: %+v", *hier)
	}
}
