// Package obs is the pipeline's observability bus. A *Bus collects, for
// one analysis, the per-stage execution record (wall time, heap-allocation
// deltas, whether the stage ran, was restored from a snapshot, or was
// disabled), a fixed set of domain counters (vtables found, tracelets
// extracted, candidate edges pruned, distance-memo hits, co-optimal
// arborescence counts, ...), and — when a Trace sink is attached —
// chrome-tracing spans covering the stages and every pool fan-out helper,
// so corpus scheduling is visible in Perfetto.
//
// A nil *Bus is a valid, disabled bus: every method no-ops without
// allocating (guarded by TestNilBusZeroAllocs), so the analysis hot path
// pays nothing when observability is off. Counter updates are atomic and
// stage records are mutex-appended, so one bus may be fed by all of an
// analysis's worker goroutines; one Bus observes one analysis.
//
// Allocation deltas are process-wide runtime/metrics samples: with
// concurrent analyses (the corpus engine) they are an attribution
// estimate, not an exact per-stage measurement — the same caveat as the
// corpus scheduler's per-image HeapGrowth.
package obs

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one domain counter.
type Counter int

// Domain counters recorded by the pipeline stages.
const (
	// CntVTables counts the binary types (vtables) discovered.
	CntVTables Counter = iota
	// CntTracelets counts the bounded tracelets extracted (TT unions).
	CntTracelets
	// CntRawTracelets counts the unsplit per-object event sequences.
	CntRawTracelets
	// CntAlphabet counts the interned event alphabet symbols.
	CntAlphabet
	// CntFamilies counts the type families partitioned structurally.
	CntFamilies
	// CntCandidateEdges counts the possible-parent edges that survived the
	// structural pruning.
	CntCandidateEdges
	// CntEdgesPruned counts the family-internal ordered pairs the
	// structural analysis ruled out as parent candidates.
	CntEdgesPruned
	// CntModels counts the SLMs trained (and frozen).
	CntModels
	// CntDistPairs counts the pairwise divergences computed.
	CntDistPairs
	// CntDistPairsPruned counts the family-internal ordered pairs the
	// sparse sweep skipped because the structural analysis had already
	// ruled them out as parent candidates (always zero in the dense
	// reporting mode, which reduces every pair).
	CntDistPairsPruned
	// CntDistMemoHits counts distance-sweep word-distribution memo hits.
	CntDistMemoHits
	// CntDistMemoMisses counts word-distribution derivations actually run.
	CntDistMemoMisses
	// CntCoOptimal counts the co-optimal arborescences enumerated across
	// all families (before majority voting).
	CntCoOptimal
	// CntArbsKept counts the arborescences surviving majority voting.
	CntArbsKept
	// CntMultiParents counts the types assigned multiple parents (§5.3).
	CntMultiParents
	// CntPoolHelpers counts the fan-out helper goroutines the pool spawned
	// for this analysis (a measure of the parallelism actually won).
	CntPoolHelpers
	// CntFnDigestHits counts functions whose extraction bundle was reused
	// from a prior version's snapshot on the incremental lane.
	CntFnDigestHits
	// CntFnDigestMisses counts functions re-executed because their content
	// digest changed (or the prior snapshot had no bundle for them).
	CntFnDigestMisses
	// CntTypesRetrained counts SLMs retrained on the incremental lane
	// because the type's training input changed.
	CntTypesRetrained
	// CntFamiliesResolved counts families re-solved on the incremental
	// lane (the rest restored verbatim from the prior snapshot).
	CntFamiliesResolved
	// CntEvidenceProviders counts the evidence providers constructed for
	// the run (1 for the default SLM-only configuration).
	CntEvidenceProviders
	// CntEvidenceEdges counts candidate-edge scores produced across all
	// evidence providers (provider count × admissible pairs).
	CntEvidenceEdges

	numCounters
)

// counterNames indexes the JSON/report spelling of each counter.
var counterNames = [numCounters]string{
	"vtables", "tracelets", "raw_tracelets", "alphabet", "families",
	"candidate_edges", "edges_pruned", "models", "dist_pairs",
	"dist_pairs_pruned", "dist_memo_hits", "dist_memo_misses", "co_optimal", "arbs_kept",
	"multi_parents", "pool_helpers",
	"fn_digest_hit", "fn_digest_miss", "types_retrained", "families_resolved",
	"evidence_providers", "evidence_edges_scored",
}

// String returns the counter's report name.
func (c Counter) String() string {
	if c >= 0 && int(c) < len(counterNames) {
		return counterNames[c]
	}
	return fmt.Sprintf("counter%d", int(c))
}

// StageStatus records how a stage was satisfied.
type StageStatus uint8

// Stage statuses.
const (
	// StageRan: the stage executed.
	StageRan StageStatus = iota
	// StageCached: the stage's outputs were restored from a snapshot.
	StageCached
	// StageOff: the stage was disabled by configuration (e.g. the
	// behavioral stages under StructuralOnly).
	StageOff
)

// String renders the status for the -stats table.
func (s StageStatus) String() string {
	switch s {
	case StageCached:
		return "cached"
	case StageOff:
		return "off"
	default:
		return "ran"
	}
}

// StageStats is one stage's execution record.
type StageStats struct {
	// Name is the stage name (pipeline.Stage.Name).
	Name string `json:"name"`
	// Section is the snapshot-section tag the stage persists under.
	Section string `json:"section"`
	// Status reports ran / cached / off.
	Status StageStatus `json:"status"`
	// Wall is the stage's wall-clock time (zero unless it ran).
	Wall time.Duration `json:"wall_ns"`
	// AllocBytes and Allocs are the process-wide heap-allocation deltas
	// observed across the stage (attribution estimates under concurrency).
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
	// Failed reports the stage returned an error.
	Failed bool `json:"failed,omitempty"`
	// Count is the number of per-analysis records folded into this one.
	// Zero on a single analysis's report; Merge sets it on aggregates
	// (treating a zero source record as one occurrence).
	Count int64 `json:"count,omitempty"`
}

// Report is the machine-readable outcome of one observed analysis.
type Report struct {
	// Total is the wall-clock span from bus creation to the Report call.
	Total time.Duration `json:"total_ns"`
	// SnapshotReuse is the snapshot reuse level of the run
	// (snapshot.LevelNone .. LevelHierarchy).
	SnapshotReuse int `json:"snapshot_reuse"`
	// Stages lists the per-stage records in execution order.
	Stages []StageStats `json:"stages"`
	// Counters holds the non-zero domain counters by name.
	Counters map[string]int64 `json:"counters"`
}

// Bus collects one analysis's observability record. The zero value is
// ready to use; NewBus stamps the epoch for Total. A nil *Bus is valid
// and free.
//
// A Bus is safe to READ while the analysis it observes is still in
// flight: counters are atomics, the stage list is mutex-guarded, and
// Report snapshots both under the lock — so a metrics endpoint may call
// Report concurrently with the recording goroutines (guarded by
// TestBusConcurrentReadWhileInFlight under -race). The mid-flight Report
// is a consistent prefix: stages that finished before the call, counter
// values at the instant of the call. Trace and Lane are configuration,
// set before the first recording call and never mutated afterwards.
type Bus struct {
	// Trace, when non-nil, receives chrome-tracing spans for the stages
	// and pool fan-out helpers. Many buses may share one Trace (the corpus
	// case); each should then use a distinct Lane.
	Trace *Trace
	// Lane is the trace lane ("thread") stage spans are drawn on.
	Lane int

	epoch    time.Time
	reuse    atomic.Int64
	counters [numCounters]atomic.Int64

	mu     sync.Mutex
	stages []StageStats
}

// NewBus returns an empty enabled bus.
func NewBus() *Bus {
	return &Bus{epoch: time.Now()}
}

// Add increments a domain counter. Safe from any goroutine; nil-safe.
func (b *Bus) Add(c Counter, n int64) {
	if b == nil || c < 0 || c >= numCounters {
		return
	}
	b.counters[c].Add(n)
}

// SetSnapshotReuse records the run's snapshot reuse level.
func (b *Bus) SetSnapshotReuse(level int) {
	if b == nil {
		return
	}
	b.reuse.Store(int64(level))
}

// AllocSample reads the cumulative heap allocation gauges — the same
// process-wide estimate StageStart/End bracket a stage with. Callers
// that account sub-stage work (e.g. per-provider attribution inside the
// hierarchy fan-out) sample around their region and feed the deltas to
// StageRecord.
func AllocSample() (bytes, objects uint64) {
	return allocSample()
}

// allocSample reads the cumulative heap allocation gauges.
func allocSample() (bytes, objects uint64) {
	s := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}

// StageHandle is an in-flight stage measurement returned by StageStart.
// The zero value (from a nil bus) is valid and End on it is free.
type StageHandle struct {
	b             *Bus
	name, section string
	start         time.Time
	bytes0, objs0 uint64
	span          SpanHandle
}

// StageStart opens a stage record: it samples the clock and the heap
// gauges and, with a Trace attached, opens a span on the bus's lane.
func (b *Bus) StageStart(name, section string) StageHandle {
	if b == nil {
		return StageHandle{}
	}
	h := StageHandle{b: b, name: name, section: section}
	h.bytes0, h.objs0 = allocSample()
	h.span = b.Span(name)
	h.start = time.Now()
	return h
}

// End closes the stage record opened by StageStart.
func (h StageHandle) End(err error) {
	if h.b == nil {
		return
	}
	wall := time.Since(h.start)
	h.span.End()
	bytes1, objs1 := allocSample()
	st := StageStats{
		Name:    h.name,
		Section: h.section,
		Status:  StageRan,
		Wall:    wall,
		Failed:  err != nil,
	}
	if bytes1 > h.bytes0 {
		st.AllocBytes = bytes1 - h.bytes0
	}
	if objs1 > h.objs0 {
		st.Allocs = objs1 - h.objs0
	}
	h.b.mu.Lock()
	h.b.stages = append(h.b.stages, st)
	h.b.mu.Unlock()
}

// StageRecord appends a caller-built stage record verbatim. It is the
// escape hatch for sub-stage attribution that StageStart/End cannot
// bracket — e.g. one aggregate row per evidence provider, accumulated
// across the concurrent per-family hierarchy fan-out — where the caller
// owns the wall/alloc accounting (and may pre-set Count, which Merge
// then treats as an aggregate of that many occurrences). Nil-safe.
func (b *Bus) StageRecord(st StageStats) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.stages = append(b.stages, st)
	b.mu.Unlock()
}

// StageSkipped records a stage that did not execute, attributing why:
// StageCached (restored from a snapshot) or StageOff (disabled).
func (b *Bus) StageSkipped(name, section string, status StageStatus) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.stages = append(b.stages, StageStats{Name: name, Section: section, Status: status})
	b.mu.Unlock()
}

// Span opens a trace span on the bus's lane; a no-op handle without a
// Trace. Spans on one lane must strictly nest (stages are sequential).
func (b *Bus) Span(name string) SpanHandle {
	if b == nil || b.Trace == nil {
		return SpanHandle{}
	}
	return b.Trace.begin(b.Lane, name, "stage")
}

// HelperSpan opens a span for a transient fan-out helper on its own
// acquired lane; End releases the lane. A no-op without a Trace.
func (b *Bus) HelperSpan(name string) HelperSpan {
	if b == nil || b.Trace == nil {
		return HelperSpan{}
	}
	lane := b.Trace.AcquireLane()
	return HelperSpan{span: b.Trace.begin(lane, name, "fanout"), lane: lane}
}

// Report snapshots the collected record. A nil bus reports nil.
func (b *Bus) Report() *Report {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	stages := append([]StageStats(nil), b.stages...)
	b.mu.Unlock()
	rep := &Report{
		Total:         time.Since(b.epoch),
		SnapshotReuse: int(b.reuse.Load()),
		Stages:        stages,
		Counters:      map[string]int64{},
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := b.counters[c].Load(); v != 0 {
			rep.Counters[c.String()] = v
		}
	}
	return rep
}

// Merge folds another report into r, aggregating many analyses into one
// server-level rollup (the rockd /metrics endpoint merges every finished
// request plus the mid-flight snapshots of the live ones). Stage records
// with the same (Name, Section, Status, Failed) coordinates are combined
// by summing wall time and allocation deltas and counting occurrences in
// Count; distinct coordinates append in first-seen order. Counters sum by
// name, Total accumulates, and SnapshotReuse keeps the maximum observed.
// Merging nil is a no-op. r must not be a live bus's only copy — merge
// into a fresh &Report{} accumulator.
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.Total += o.Total
	if o.SnapshotReuse > r.SnapshotReuse {
		r.SnapshotReuse = o.SnapshotReuse
	}
	type coord struct {
		name, section string
		status        StageStatus
		failed        bool
	}
	idx := make(map[coord]int, len(r.Stages))
	for i, st := range r.Stages {
		idx[coord{st.Name, st.Section, st.Status, st.Failed}] = i
	}
	for _, st := range o.Stages {
		c := coord{st.Name, st.Section, st.Status, st.Failed}
		i, ok := idx[c]
		if !ok {
			if st.Count == 0 {
				st.Count = 1
			}
			idx[c] = len(r.Stages)
			r.Stages = append(r.Stages, st)
			continue
		}
		dst := &r.Stages[i]
		if dst.Count == 0 {
			dst.Count = 1
		}
		n := st.Count
		if n == 0 {
			n = 1
		}
		dst.Count += n
		dst.Wall += st.Wall
		dst.AllocBytes += st.AllocBytes
		dst.Allocs += st.Allocs
	}
	if len(o.Counters) > 0 && r.Counters == nil {
		r.Counters = map[string]int64{}
	}
	for n, v := range o.Counters {
		r.Counters[n] += v
	}
}

// Table renders the report as the -stats text table: one row per stage
// with wall time, allocation deltas, and cache attribution, followed by
// the non-zero domain counters.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-10s %12s %14s %10s\n", "stage", "status", "wall", "alloc", "allocs")
	for _, st := range r.Stages {
		status := st.Status.String()
		if st.Failed {
			status = "FAILED"
		}
		if st.Status != StageRan {
			fmt.Fprintf(&sb, "%-16s %-10s %12s %14s %10s\n", st.Name, status, "-", "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%-16s %-10s %12s %14s %10d\n",
			st.Name, status, st.Wall.Round(time.Microsecond),
			fmtBytes(st.AllocBytes), st.Allocs)
	}
	fmt.Fprintf(&sb, "total %s, snapshot reuse level %d\n",
		r.Total.Round(time.Microsecond), r.SnapshotReuse)
	if len(r.Counters) > 0 {
		names := make([]string, 0, len(r.Counters))
		for n := range r.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		sb.WriteString("counters:")
		for _, n := range names {
			fmt.Fprintf(&sb, " %s=%d", n, r.Counters[n])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
