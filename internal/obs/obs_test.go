package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilBusZeroAllocs is the zero-cost-when-nil guarantee: every call a
// disabled analysis makes on the bus must be allocation-free.
func TestNilBusZeroAllocs(t *testing.T) {
	var b *Bus
	ctx := context.Background()
	ctx = WithBus(ctx, b) // nil bus: must return ctx unchanged
	allocs := testing.AllocsPerRun(200, func() {
		h := b.StageStart("stage", "extract")
		h.End(nil)
		b.StageSkipped("stage", "extract", StageCached)
		b.Add(CntVTables, 1)
		b.SetSnapshotReuse(3)
		sp := b.Span("span")
		sp.End()
		hs := b.HelperSpan("helper")
		hs.End()
		if b.Report() != nil {
			t.Fatal("nil bus reported non-nil")
		}
		if got := BusFrom(ctx); got != nil {
			t.Fatal("nil bus came back from context")
		}
		if RegionFrom(ctx) != "" {
			t.Fatal("unexpected region")
		}
		if WithRegion(ctx, b, "x") != ctx {
			t.Fatal("WithRegion on nil bus must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-bus hot path allocated %v times per run, want 0", allocs)
	}
}

func TestBusRecordsStagesAndCounters(t *testing.T) {
	b := NewBus()
	h := b.StageStart("disasm", "extract")
	time.Sleep(time.Millisecond)
	h.End(nil)
	b.StageSkipped("train", "model", StageCached)
	b.StageSkipped("hierarchy", "hier", StageOff)
	b.Add(CntVTables, 7)
	b.Add(CntVTables, 3)
	b.SetSnapshotReuse(2)

	rep := b.Report()
	if len(rep.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(rep.Stages))
	}
	if rep.Stages[0].Status != StageRan || rep.Stages[0].Wall <= 0 {
		t.Fatalf("ran stage not recorded: %+v", rep.Stages[0])
	}
	if rep.Stages[1].Status != StageCached || rep.Stages[2].Status != StageOff {
		t.Fatalf("skip statuses wrong: %+v", rep.Stages[1:])
	}
	if rep.Counters["vtables"] != 10 {
		t.Fatalf("vtables counter = %d, want 10", rep.Counters["vtables"])
	}
	if rep.SnapshotReuse != 2 {
		t.Fatalf("reuse = %d, want 2", rep.SnapshotReuse)
	}
	tbl := rep.Table()
	for _, want := range []string{"disasm", "cached", "off", "vtables=10"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
}

// TestTraceJSON checks the emitted trace is valid JSON in the Trace Event
// Format shape Perfetto ingests: an array of complete "X" events with
// name/ph/pid/tid/ts/dur.
func TestTraceJSON(t *testing.T) {
	tr := NewTrace()
	b := NewBus()
	b.Trace = tr
	sp := b.Span("analyze")
	inner := b.Span("disasm")
	inner.End()
	h := b.HelperSpan("train")
	h.End()
	sp.End()
	open := b.Span("left-open") // must be closed at write time
	_ = open

	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	for _, e := range events {
		for _, k := range []string{"name", "cat", "ph", "pid", "tid", "ts", "dur"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
		if e["ph"] != "X" {
			t.Fatalf("ph = %v, want X", e["ph"])
		}
		if d, ok := e["dur"].(float64); !ok || d < 0 {
			t.Fatalf("bad dur: %v", e["dur"])
		}
	}
}

// TestLaneReuse checks helper lanes are recycled: sequential helpers
// share one lane, concurrent ones get distinct lanes.
func TestLaneReuse(t *testing.T) {
	tr := NewTrace()
	a := tr.AcquireLane()
	bLane := tr.AcquireLane()
	if a == bLane {
		t.Fatalf("concurrent lanes collided: %d", a)
	}
	if a == 0 || bLane == 0 {
		t.Fatal("lane 0 must stay reserved for the primary timeline")
	}
	tr.ReleaseLane(a)
	if c := tr.AcquireLane(); c != a {
		t.Fatalf("released lane not reused: got %d, want %d", c, a)
	}
	tr.ReleaseLane(0) // must be a no-op
	if c := tr.AcquireLane(); c == 0 {
		t.Fatal("lane 0 leaked into the free-list")
	}
}

func TestContextPlumbing(t *testing.T) {
	b := NewBus()
	b.Trace = NewTrace()
	ctx := WithBus(context.Background(), b)
	if BusFrom(ctx) != b {
		t.Fatal("bus lost in context")
	}
	ctx = WithRegion(ctx, b, "train")
	if RegionFrom(ctx) != "train" {
		t.Fatalf("region = %q", RegionFrom(ctx))
	}
}
