// Trace is the chrome-tracing span sink shared by every bus of a run:
// spans land in one timeline and are written as a Trace Event Format JSON
// array (one complete "X" event per line) that loads directly in Perfetto
// or chrome://tracing. Lanes are the trace's "threads": sequential spans
// (an analysis's stages) share one lane and nest; concurrent work (fan-out
// helpers, corpus images) draws lanes from a free-list so the trace stays
// as narrow as the real concurrency.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Trace accumulates spans. The zero value is unusable; call NewTrace.
type Trace struct {
	epoch time.Time

	mu        sync.Mutex
	events    []traceEvent
	freeLanes []int
	nextLane  int
}

// traceEvent is one complete span; End < 0 marks it still open.
type traceEvent struct {
	name, cat  string
	lane       int
	start, end time.Duration
}

// SpanHandle identifies an open span. The zero value is a no-op.
type SpanHandle struct {
	tr *Trace
	id int
}

// HelperSpan is a span on a temporarily-acquired lane (pool fan-out
// helpers). The zero value is a no-op.
type HelperSpan struct {
	span SpanHandle
	lane int
}

// NewTrace returns an empty trace whose epoch is now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// begin opens a span on the lane.
func (t *Trace) begin(lane int, name, cat string) SpanHandle {
	start := time.Since(t.epoch)
	t.mu.Lock()
	id := len(t.events)
	t.events = append(t.events, traceEvent{name: name, cat: cat, lane: lane, start: start, end: -1})
	t.mu.Unlock()
	return SpanHandle{tr: t, id: id}
}

// End closes the span; safe on the zero handle.
func (h SpanHandle) End() {
	if h.tr == nil {
		return
	}
	end := time.Since(h.tr.epoch)
	h.tr.mu.Lock()
	h.tr.events[h.id].end = end
	h.tr.mu.Unlock()
}

// End closes the helper span and returns its lane to the free-list.
func (h HelperSpan) End() {
	if h.span.tr == nil {
		return
	}
	h.span.End()
	h.span.tr.ReleaseLane(h.lane)
}

// AcquireLane returns a lane not currently in use, reusing released lanes
// so the trace's thread count tracks peak concurrency, not total spans.
// Lane 0 is reserved for the caller's primary timeline.
func (t *Trace) AcquireLane() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.freeLanes); n > 0 {
		l := t.freeLanes[n-1]
		t.freeLanes = t.freeLanes[:n-1]
		return l
	}
	t.nextLane++
	return t.nextLane
}

// ReleaseLane makes the lane reusable. Lane 0 is never pooled.
func (t *Trace) ReleaseLane(l int) {
	if l == 0 {
		return
	}
	t.mu.Lock()
	t.freeLanes = append(t.freeLanes, l)
	t.mu.Unlock()
}

// WriteTo emits the trace as a Trace Event Format JSON array, one event
// per line. Spans still open are closed at the current time so a trace
// written mid-run is still valid. Implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	now := time.Since(t.epoch)
	t.mu.Lock()
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.WriteString("[\n")
	for i, e := range events {
		end := e.end
		if end < 0 {
			end = now
		}
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		fmt.Fprintf(bw, `{"name":%q,"cat":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}%s`+"\n",
			e.name, e.cat, e.lane,
			float64(e.start.Nanoseconds())/1e3, float64((end-e.start).Nanoseconds())/1e3, sep)
	}
	bw.WriteString("]\n")
	err := bw.Flush()
	return cw.n, err
}

// WriteFile writes the trace JSON to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
