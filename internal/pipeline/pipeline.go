// Package pipeline makes Rock's stage graph (§4 of the paper) a
// first-class architecture: each analysis phase is a typed Stage with
// declared input/output artifacts, a snapshot section, and a canonical
// configuration rendering, and the graph is the single source of truth
// for the per-section configuration fingerprints that key the snapshot
// cache's staged-validity chain (internal/snapshot) and the corpus
// scheduler's warm-bypass probe.
//
// The graph is a straight dependency chain validated at construction:
// every stage's inputs must be root artifacts (present before the
// pipeline runs) or outputs of an earlier stage, and every stage belongs
// to one of the persistable sections
//
//	extraction   disasm → vtables → tracelets → structural → alphabet
//	models       train (SLM training + freezing)
//	hierarchy    hierarchy (distances + arborescences) → multiparents
//
// A section's fingerprint hashes the concatenated canonical configuration
// of its stages under the section tag — byte-identical to the fingerprint
// scheme earlier releases hand-maintained in internal/core, so existing
// .rsnap caches keep validating.
//
// Execution (Execute) is a thin loop: stages run in declared order, each
// wrapped in the observer bus's stage record, with a per-stage status
// callback deciding whether a stage runs, was restored from a snapshot
// (cached), or is disabled by configuration (off).
package pipeline

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Artifact names one value flowing between stages.
type Artifact string

// The pipeline's artifacts.
const (
	// ArtImage is the loaded stripped binary image (a root artifact).
	ArtImage Artifact = "image"
	// ArtFuncs is the disassembled function list.
	ArtFuncs Artifact = "funcs"
	// ArtVTables is the discovered binary types.
	ArtVTables Artifact = "vtables"
	// ArtTracelets is the extracted object tracelets plus structural
	// observations.
	ArtTracelets Artifact = "tracelets"
	// ArtStructural is the family partition and pruned parent relation.
	ArtStructural Artifact = "structural"
	// ArtAlphabet is the interned event alphabet and per-type word memo.
	ArtAlphabet Artifact = "alphabet"
	// ArtModels is the mutable trained SLMs.
	ArtModels Artifact = "models"
	// ArtFrozen is the frozen flat-trie SLM forms.
	ArtFrozen Artifact = "frozen"
	// ArtEvidence is the constructed evidence-provider set (the scoring
	// backends the hierarchy stage fuses).
	ArtEvidence Artifact = "evidence"
	// ArtDist is the pairwise divergence map.
	ArtDist Artifact = "dist"
	// ArtFamilies is the per-family arborescence outcomes.
	ArtFamilies Artifact = "families"
	// ArtHierarchy is the reconstructed forest.
	ArtHierarchy Artifact = "hierarchy"
	// ArtMultiParents is the multiple-inheritance parent choice.
	ArtMultiParents Artifact = "multiparents"
)

// Section is a persistable group of consecutive stages — the unit of the
// snapshot cache's staged validity.
type Section int

// The snapshot sections, in dependency order.
const (
	// SecExtraction covers everything derived directly from the image:
	// disassembly, vtables, tracelets, structural results, alphabet.
	SecExtraction Section = iota
	// SecModels covers SLM training and freezing.
	SecModels
	// SecHierarchy covers distances, arborescences, and parent choices.
	SecHierarchy
	// NumSections is the section count (and the length of a fingerprint
	// chain).
	NumSections
)

// Tag returns the section's fingerprint domain tag. The spellings are
// load-bearing: they feed the fingerprint hashes and must not change, or
// every existing snapshot becomes invalid.
func (s Section) Tag() string {
	switch s {
	case SecExtraction:
		return "extract"
	case SecModels:
		return "model"
	case SecHierarchy:
		return "hier"
	}
	return fmt.Sprintf("section%d", int(s))
}

// Level returns the snapshot reuse level a valid section chain up to and
// including s supports (snapshot.LevelExtraction..LevelHierarchy).
func (s Section) Level() int { return int(s) + 1 }

// Stage is one pipeline phase.
type Stage struct {
	// Name identifies the stage in reports and traces.
	Name string
	// Inputs and Outputs declare the artifact dataflow; New validates
	// that every input is a root artifact or produced earlier.
	Inputs  []Artifact
	Outputs []Artifact
	// Section is the snapshot section the stage's outputs persist under.
	Section Section
	// Canon is the canonical rendering of exactly the configuration this
	// stage's output depends on ("" for config-free stages). Worker
	// counts and observers never appear — they cannot change results.
	Canon string
	// Run executes the stage. Nil in spec-only graphs (fingerprint
	// derivation, probes).
	Run func(ctx context.Context) error
}

// Graph is a validated stage chain.
type Graph struct {
	stages []Stage
}

// New validates the stage list and returns the graph: artifact dataflow
// must be satisfied in declared order (roots lets callers declare
// artifacts that exist before the pipeline runs), outputs must be
// produced exactly once, and sections must be contiguous and
// non-decreasing so the staged-validity chain is meaningful.
func New(roots []Artifact, stages ...Stage) (*Graph, error) {
	have := map[Artifact]bool{}
	for _, a := range roots {
		have[a] = true
	}
	prev := Section(0)
	for i, st := range stages {
		if st.Name == "" {
			return nil, fmt.Errorf("pipeline: stage %d has no name", i)
		}
		if st.Section < 0 || st.Section >= NumSections {
			return nil, fmt.Errorf("pipeline: stage %s: invalid section %d", st.Name, st.Section)
		}
		if st.Section < prev {
			return nil, fmt.Errorf("pipeline: stage %s: section %s after %s breaks the validity chain",
				st.Name, st.Section.Tag(), prev.Tag())
		}
		prev = st.Section
		for _, in := range st.Inputs {
			if !have[in] {
				return nil, fmt.Errorf("pipeline: stage %s: input %q is neither a root nor produced by an earlier stage", st.Name, in)
			}
		}
		for _, out := range st.Outputs {
			if have[out] {
				return nil, fmt.Errorf("pipeline: stage %s: artifact %q produced twice", st.Name, out)
			}
			have[out] = true
		}
	}
	return &Graph{stages: stages}, nil
}

// Stages returns the stages in execution order.
func (g *Graph) Stages() []Stage { return g.stages }

// SectionFingerprint hashes one section's configuration: the section tag
// and the space-joined non-empty canonical renderings of its stages, in
// stage order. The construction reproduces the legacy hand-maintained
// fingerprints byte for byte (see TestFingerprintCompat in core).
func (g *Graph) SectionFingerprint(sec Section) [32]byte {
	var canons []string
	for _, st := range g.stages {
		if st.Section == sec && st.Canon != "" {
			canons = append(canons, st.Canon)
		}
	}
	return sha256.Sum256([]byte(sec.Tag() + "|" + strings.Join(canons, " ")))
}

// Fingerprints returns the full per-section fingerprint chain, indexed by
// Section — the snapshot key's configuration half.
func (g *Graph) Fingerprints() [NumSections][32]byte {
	var fps [NumSections][32]byte
	for s := Section(0); s < NumSections; s++ {
		fps[s] = g.SectionFingerprint(s)
	}
	return fps
}

// Execute runs the graph: stages execute in declared order, each recorded
// on the bus (nil bus: free). status, when non-nil, classifies each stage
// before it runs — StageRan executes it, StageCached / StageOff skip it
// and attribute why in the report. The first stage error aborts the run.
func (g *Graph) Execute(ctx context.Context, bus *obs.Bus, status func(Stage) obs.StageStatus) error {
	for i := range g.stages {
		st := &g.stages[i]
		s := obs.StageRan
		if status != nil {
			s = status(*st)
		}
		if s != obs.StageRan {
			bus.StageSkipped(st.Name, st.Section.Tag(), s)
			continue
		}
		h := bus.StageStart(st.Name, st.Section.Tag())
		err := st.Run(ctx)
		h.End(err)
		if err != nil {
			return err
		}
	}
	return nil
}
