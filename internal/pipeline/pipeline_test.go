package pipeline

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
)

func chain(t *testing.T) *Graph {
	t.Helper()
	g, err := New([]Artifact{ArtImage},
		Stage{Name: "a", Section: SecExtraction, Inputs: []Artifact{ArtImage}, Outputs: []Artifact{ArtFuncs}},
		Stage{Name: "b", Section: SecExtraction, Inputs: []Artifact{ArtFuncs}, Outputs: []Artifact{ArtVTables}, Canon: "x=1"},
		Stage{Name: "c", Section: SecModels, Inputs: []Artifact{ArtVTables}, Outputs: []Artifact{ArtModels}, Canon: "y=2"},
		Stage{Name: "d", Section: SecHierarchy, Inputs: []Artifact{ArtModels}, Outputs: []Artifact{ArtHierarchy}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	chain(t) // the happy path must validate

	cases := []struct {
		name   string
		roots  []Artifact
		stages []Stage
	}{
		{"missing input", nil, []Stage{
			{Name: "a", Inputs: []Artifact{ArtFuncs}, Outputs: []Artifact{ArtVTables}},
		}},
		{"duplicate output", []Artifact{ArtImage}, []Stage{
			{Name: "a", Inputs: []Artifact{ArtImage}, Outputs: []Artifact{ArtFuncs}},
			{Name: "b", Inputs: []Artifact{ArtImage}, Outputs: []Artifact{ArtFuncs}},
		}},
		{"section regression", []Artifact{ArtImage}, []Stage{
			{Name: "a", Section: SecModels, Inputs: []Artifact{ArtImage}, Outputs: []Artifact{ArtModels}},
			{Name: "b", Section: SecExtraction, Inputs: []Artifact{ArtModels}, Outputs: []Artifact{ArtFuncs}},
		}},
		{"unnamed stage", []Artifact{ArtImage}, []Stage{
			{Inputs: []Artifact{ArtImage}},
		}},
		{"bad section", []Artifact{ArtImage}, []Stage{
			{Name: "a", Section: NumSections, Inputs: []Artifact{ArtImage}},
		}},
	}
	for _, tc := range cases {
		if _, err := New(tc.roots, tc.stages...); err == nil {
			t.Errorf("%s: validated, want error", tc.name)
		}
	}
}

// TestSectionFingerprint pins the fingerprint construction: the section
// tag and the space-joined stage canons, hashed as tag|canons — the exact
// byte layout the legacy core scheme used, which existing .rsnap files
// were keyed with.
func TestSectionFingerprint(t *testing.T) {
	g := chain(t)
	want := sha256.Sum256([]byte("extract|x=1"))
	if got := g.SectionFingerprint(SecExtraction); got != want {
		t.Errorf("extraction fingerprint diverged from the legacy scheme")
	}
	want = sha256.Sum256([]byte("model|y=2"))
	if got := g.SectionFingerprint(SecModels); got != want {
		t.Errorf("models fingerprint diverged from the legacy scheme")
	}
	// A config-free section hashes the empty canon.
	want = sha256.Sum256([]byte("hier|"))
	if got := g.SectionFingerprint(SecHierarchy); got != want {
		t.Errorf("hierarchy fingerprint diverged from the legacy scheme")
	}
	fps := g.Fingerprints()
	for s := Section(0); s < NumSections; s++ {
		if fps[s] != g.SectionFingerprint(s) {
			t.Errorf("Fingerprints()[%s] mismatch", s.Tag())
		}
	}
	// Multiple canons in one section join with a single space.
	g2, err := New([]Artifact{ArtImage},
		Stage{Name: "a", Section: SecExtraction, Inputs: []Artifact{ArtImage}, Outputs: []Artifact{ArtFuncs}, Canon: "x=1"},
		Stage{Name: "b", Section: SecExtraction, Inputs: []Artifact{ArtFuncs}, Outputs: []Artifact{ArtVTables}, Canon: "y=2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	want = sha256.Sum256([]byte("extract|x=1 y=2"))
	if got := g2.SectionFingerprint(SecExtraction); got != want {
		t.Errorf("joined canon fingerprint wrong")
	}
}

func TestSectionTagsAndLevels(t *testing.T) {
	// The tags are load-bearing snapshot-compat constants.
	for sec, tag := range map[Section]string{SecExtraction: "extract", SecModels: "model", SecHierarchy: "hier"} {
		if sec.Tag() != tag {
			t.Errorf("Section(%d).Tag() = %q, want %q", sec, sec.Tag(), tag)
		}
	}
	if SecExtraction.Level() != 1 || SecModels.Level() != 2 || SecHierarchy.Level() != 3 {
		t.Error("section levels diverged from the snapshot reuse levels")
	}
}

func TestExecute(t *testing.T) {
	var order []string
	mk := func(name string, sec Section, in, out Artifact, fail bool) Stage {
		return Stage{
			Name: name, Section: sec,
			Inputs: []Artifact{in}, Outputs: []Artifact{out},
			Run: func(context.Context) error {
				order = append(order, name)
				if fail {
					return fmt.Errorf("%s exploded", name)
				}
				return nil
			},
		}
	}
	g, err := New([]Artifact{ArtImage},
		mk("a", SecExtraction, ArtImage, ArtFuncs, false),
		mk("b", SecModels, ArtFuncs, ArtModels, false),
		mk("c", SecHierarchy, ArtModels, ArtHierarchy, false),
	)
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	status := func(st Stage) obs.StageStatus {
		if st.Name == "a" {
			return obs.StageCached
		}
		return obs.StageRan
	}
	if err := g.Execute(context.Background(), bus, status); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[b c]" {
		t.Fatalf("order = %v, want [b c]", order)
	}
	rep := bus.Report()
	if len(rep.Stages) != 3 || rep.Stages[0].Status != obs.StageCached ||
		rep.Stages[1].Status != obs.StageRan {
		t.Fatalf("stage records wrong: %+v", rep.Stages)
	}

	// A failing stage aborts and later stages never run.
	order = nil
	g2, err := New([]Artifact{ArtImage},
		mk("a", SecExtraction, ArtImage, ArtFuncs, false),
		mk("boom", SecModels, ArtFuncs, ArtModels, true),
		mk("c", SecHierarchy, ArtModels, ArtHierarchy, false),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = g2.Execute(context.Background(), nil, nil)
	if err == nil || !errors.Is(err, err) || err.Error() != "boom exploded" {
		t.Fatalf("err = %v", err)
	}
	if fmt.Sprint(order) != "[a boom]" {
		t.Fatalf("order = %v, want [a boom]", order)
	}
}
