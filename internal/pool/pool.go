// Package pool provides the bounded fan-out primitives shared by the
// pipeline's parallel stages (SLM training, per-family distance matrices,
// arborescence solving, and the objtrace front-end) and by the corpus
// batch engine (internal/corpus). Every stage follows the same
// discipline: workers write only to state owned by their index, and the
// caller merges the slots in a fixed order afterwards, so results are
// identical for any worker count.
//
// Two execution regimes share one code path:
//
//   - Private fan-out (ForEachIndex, or ForEach with a nil Shared): the
//     stage brings its own concurrency budget — the calling goroutine
//     participates and up to workers-1 helpers are spawned for the
//     duration of the stage.
//
//   - Shared fan-out (ForEach with a Shared): the stage draws helpers
//     from a corpus-wide token pool instead of owning them. The calling
//     goroutine always participates without holding a token, so a stage
//     makes progress even when the pool is exhausted — nested fan-outs
//     can never deadlock, and with a single-token pool the whole corpus
//     degrades to today's serial behavior. Helpers are acquired with a
//     non-blocking TryAcquire at stage start and released when the index
//     space drains, so idle cores flow to whichever image has runnable
//     work.
package pool

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Shared is a corpus-wide bounded worker pool: a fixed budget of tokens,
// each representing the right to run one goroutine of analysis work.
// Corpus admission holds one token per in-flight image (the image's
// calling goroutine), and intra-analysis fan-outs borrow further tokens
// for transient helpers. The zero value is unusable; call NewShared.
type Shared struct {
	tokens chan struct{}
}

// NewShared returns a pool with capacity n (minimum 1).
func NewShared(n int) *Shared {
	if n < 1 {
		n = 1
	}
	return &Shared{tokens: make(chan struct{}, n)}
}

// Cap returns the pool capacity.
func (s *Shared) Cap() int { return cap(s.tokens) }

// Acquire blocks until a token is available or ctx is done, returning
// ctx.Err() in the latter case.
func (s *Shared) Acquire(ctx context.Context) error {
	select {
	case s.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a token without blocking; it reports whether one was
// available.
func (s *Shared) TryAcquire() bool {
	select {
	case s.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token to the pool.
func (s *Shared) Release() { <-s.tokens }

// ForEachIndex invokes fn(i) for every i in [0,n), spread over at most
// workers goroutines (the caller plus workers-1 helpers) pulling indices
// from a shared atomic counter. With workers <= 1 (or a single item) it
// degenerates to a plain loop on the calling goroutine — the serial path.
// fn must only write to state owned by index i; ordering across indices
// is not guaranteed.
func ForEachIndex(workers, n int, fn func(i int)) {
	// A background context can never cancel, so the error is always nil.
	_ = ForEach(context.Background(), nil, workers, n, fn)
}

// ForEachChunk invokes fn(lo, hi) over contiguous half-open ranges
// covering [0,n) in steps of grain (the last range may be short), under
// the same regimes and guarantees as ForEach. Workers claim whole ranges
// from the shared counter instead of single indices, so sweeps whose
// per-index work is trivial (one distance-matrix cell) amortize the claim
// over grain items instead of drowning in scheduling overhead. The range
// decomposition is fixed by grain — independent of worker count and claim
// order — so index ownership stays deterministic; fn must only write to
// state owned by indices in [lo, hi). Cancellation is checked per range:
// a non-nil error means some ranges never ran.
func ForEachChunk(ctx context.Context, sh *Shared, workers, n, grain int, fn func(lo, hi int)) error {
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	return ForEach(ctx, sh, workers, chunks, func(ci int) {
		lo := ci * grain
		fn(lo, min(lo+grain, n))
	})
}

// ForEach invokes fn(i) for every i in [0,n) and returns nil, unless ctx
// is canceled first, in which case it stops handing out new indices,
// waits for the in-flight fn calls to return, and reports ctx.Err().
// Callers must treat a non-nil error as "index slots are incomplete" and
// discard the stage's output.
//
// With sh == nil the stage runs on the caller plus up to workers-1
// spawned helpers (the private regime). With a Shared pool, workers caps
// nothing: the caller always participates token-free and helpers are
// limited to the tokens TryAcquire can win, up to n-1 — the shared
// regime described in the package comment.
func ForEach(ctx context.Context, sh *Shared, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	helpers := workers - 1
	if sh != nil {
		helpers = sh.Cap()
	}
	if helpers > n-1 {
		helpers = n - 1
	}

	done := ctx.Done()
	var next atomic.Int64
	// run pulls indices until the space is exhausted or ctx is canceled.
	// The cancellation check runs once per index: fn is never started
	// after ctx is done, but an fn already running is not interrupted.
	run := func() {
		for {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}

	if helpers <= 0 {
		run()
		return ctx.Err()
	}
	// Observability: an observed context carries its bus; each spawned
	// helper is counted and, when tracing, drawn as a span on its own lane
	// named after the fan-out region. BusFrom on an unobserved context is a
	// value lookup with no allocation, keeping the disabled path free.
	bus := obs.BusFrom(ctx)
	region := ""
	if bus != nil {
		if region = obs.RegionFrom(ctx); region == "" {
			region = "fanout"
		}
	}
	var wg sync.WaitGroup
	spawned := 0
	for w := 0; w < helpers; w++ {
		if sh != nil && !sh.TryAcquire() {
			break // pool exhausted: whatever helpers we won suffice
		}
		spawned++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if sh != nil {
				defer sh.Release()
			}
			hs := bus.HelperSpan(region)
			run()
			hs.End()
		}()
	}
	bus.Add(obs.CntPoolHelpers, int64(spawned))
	run()
	wg.Wait()
	return ctx.Err()
}
