// Package pool provides the bounded index-fanout primitive shared by the
// pipeline's parallel stages (SLM training, per-family distance matrices,
// arborescence solving, and the objtrace front-end). Every stage follows
// the same discipline: workers write only to state owned by their index,
// and the caller merges the slots in a fixed order afterwards, so results
// are identical for any worker count.
package pool

import (
	"sync"
	"sync/atomic"
)

// ForEachIndex invokes fn(i) for every i in [0,n), spread over at most
// workers goroutines pulling indices from a shared atomic counter. With
// workers <= 1 (or a single item) it degenerates to a plain loop on the
// calling goroutine — the serial path. fn must only write to state owned
// by index i; ordering across indices is not guaranteed.
func ForEachIndex(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
