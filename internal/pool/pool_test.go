package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachIndex checks the worker-pool primitive: every index is
// visited exactly once for serial and parallel pool sizes, including the
// degenerate shapes (empty range, more workers than items).
func TestForEachIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 13} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			ForEachIndex(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForEachShared runs fan-outs against a shared token pool: every
// index is still visited exactly once, and the concurrently running fn
// count never exceeds the pool capacity plus the one token-free caller.
func TestForEachShared(t *testing.T) {
	for _, capacity := range []int{1, 2, 4} {
		sh := NewShared(capacity)
		var running, peak atomic.Int32
		hits := make([]int32, 64)
		err := ForEach(context.Background(), sh, 0, len(hits), func(i int) {
			r := running.Add(1)
			for {
				p := peak.Load()
				if r <= p || peak.CompareAndSwap(p, r) {
					break
				}
			}
			atomic.AddInt32(&hits[i], 1)
			time.Sleep(100 * time.Microsecond)
			running.Add(-1)
		})
		if err != nil {
			t.Fatalf("cap=%d: unexpected error %v", capacity, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("cap=%d: index %d visited %d times", capacity, i, h)
			}
		}
		if p := int(peak.Load()); p > capacity+1 {
			t.Errorf("cap=%d: %d fns ran concurrently, want <= %d", capacity, p, capacity+1)
		}
		if len(sh.tokens) != 0 {
			t.Errorf("cap=%d: %d tokens leaked", capacity, len(sh.tokens))
		}
	}
}

// TestForEachSharedNestedProgress: a fan-out nested inside another
// fan-out's fn must complete even when the pool is fully exhausted — the
// caller always participates token-free, so nesting cannot deadlock.
func TestForEachSharedNestedProgress(t *testing.T) {
	sh := NewShared(1)
	sh.tokens <- struct{}{} // exhaust the pool
	defer func() { <-sh.tokens }()
	var count atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ForEach(context.Background(), sh, 0, 8, func(i int) {
			_ = ForEach(context.Background(), sh, 0, 4, func(j int) {
				count.Add(1)
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("nested fan-out deadlocked on an exhausted pool")
	}
	if got := count.Load(); got != 32 {
		t.Fatalf("nested fan-out ran %d inner calls, want 32", got)
	}
}

// TestForEachCancellation is the pool half of the corpus cancellation
// guarantee: canceling the context mid-fan-out stops new indices promptly,
// drains the in-flight workers without deadlock, reports ctx.Err(), and
// leaks no goroutines.
func TestForEachCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, sh := range []*Shared{nil, NewShared(4)} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		release := make(chan struct{})
		var once sync.Once
		const n = 10000
		err := ForEach(ctx, sh, 8, n, func(i int) {
			started.Add(1)
			once.Do(func() {
				cancel()
				close(release)
			})
			<-release
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("sh=%v: err = %v, want context.Canceled", sh != nil, err)
		}
		// Cancellation raced with index pulls already past the check, so a
		// handful of extra fns may have started — but nowhere near all n.
		if s := started.Load(); s == 0 || s >= n {
			t.Fatalf("sh=%v: %d of %d fns started under cancellation", sh != nil, s, n)
		}
		if sh != nil && len(sh.tokens) != 0 {
			t.Fatalf("canceled fan-out leaked %d tokens", len(sh.tokens))
		}
	}
	// All helper goroutines must have drained (the fan-out waits for them
	// before returning, so only scheduler lag can delay the count).
	for deadline := time.Now().Add(5 * time.Second); ; {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSharedAcquire covers the token pool's blocking and non-blocking
// acquisition paths, including cancellation while blocked.
func TestSharedAcquire(t *testing.T) {
	sh := NewShared(2)
	if sh.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", sh.Cap())
	}
	if err := sh.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sh.TryAcquire() {
		t.Fatal("TryAcquire failed with a free token")
	}
	if sh.TryAcquire() {
		t.Fatal("TryAcquire succeeded on an exhausted pool")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := sh.Acquire(ctx); err != context.Canceled {
		t.Fatalf("Acquire on exhausted pool = %v, want context.Canceled", err)
	}
	sh.Release()
	sh.Release()
	if NewShared(0).Cap() != 1 {
		t.Fatal("NewShared(0) must clamp to capacity 1")
	}
}

// TestForEachChunk checks the chunked variant: the ranges returned for
// every (n, grain, workers) shape tile [0,n) exactly — contiguous,
// non-overlapping, each boundary a multiple of grain — so chunked sweeps
// keep the index-ownership determinism of ForEach.
func TestForEachChunk(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 5, 64, 100, 257} {
			for _, grain := range []int{-1, 0, 1, 3, 64, 1000} {
				hits := make([]int32, n)
				err := ForEachChunk(context.Background(), nil, workers, n, grain, func(lo, hi int) {
					if lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: empty range [%d,%d)", workers, n, grain, lo, hi)
					}
					g := grain
					if g < 1 {
						g = 1
					}
					if lo%g != 0 || (hi != n && hi-lo != g) {
						t.Errorf("workers=%d n=%d grain=%d: misaligned range [%d,%d)", workers, n, grain, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestForEachChunkShared exercises the shared-pool regime and
// cancellation: a canceled context must surface as an error with no
// double-visited index.
func TestForEachChunkShared(t *testing.T) {
	sh := NewShared(3)
	hits := make([]int32, 1000)
	if err := ForEachChunk(context.Background(), sh, 0, len(hits), 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int32
	done := make(chan error, 1)
	go func() {
		done <- ForEachChunk(ctx, sh, 0, 1<<30, 8, func(lo, hi int) {
			visited.Add(1)
			cancel()
		})
	}()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled chunked fan-out did not drain")
	}
	if visited.Load() == 0 {
		t.Fatal("no chunk ran before cancellation")
	}
}
