package pool

import (
	"sync/atomic"
	"testing"
)

// TestForEachIndex checks the worker-pool primitive: every index is
// visited exactly once for serial and parallel pool sizes, including the
// degenerate shapes (empty range, more workers than items).
func TestForEachIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 13} {
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			ForEachIndex(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}
