package rockd

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Class is a submission's admission class. Interactive traffic gets its
// own slots and queue so a deep batch backlog can never starve it; batch
// traffic gets fewer concurrent slots and a deeper queue — throughput
// over latency.
type Class string

// Admission classes.
const (
	ClassInteractive Class = "interactive"
	ClassBatch       Class = "batch"
)

// ParseClass maps the wire spelling to a Class ("" defaults to
// interactive).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	}
	return "", errors.New("unknown class (want interactive or batch)")
}

// errQueueFull rejects a submission whose class queue is at depth — the
// backpressure signal (HTTP 429). Rejecting at admission keeps the
// daemon's memory bounded under overload instead of queueing without
// limit.
var errQueueFull = errors.New("rockd: class queue full")

// classQueue is one admission class: a slot semaphore bounding how many
// of the class's analyses run concurrently, and a depth bound on how many
// may wait for a slot.
type classQueue struct {
	class Class
	slots chan struct{}
	depth int64

	queued   atomic.Int64
	running  atomic.Int64
	admitted atomic.Int64
	rejected atomic.Int64
	// waitNS accumulates queue wait for the class (admitted requests).
	waitNS atomic.Int64
}

func newClassQueue(class Class, slots int, depth int) *classQueue {
	return &classQueue{
		class: class,
		slots: make(chan struct{}, slots),
		depth: int64(depth),
	}
}

// admit blocks until the class grants a slot, the queue is full (an
// immediate errQueueFull), or ctx is canceled. On success the returned
// release func must be called when the analysis finishes.
func (q *classQueue) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	// Fast path: a free slot skips the queue-depth accounting entirely.
	select {
	case q.slots <- struct{}{}:
		q.admitted.Add(1)
		q.running.Add(1)
		return q.release, 0, nil
	default:
	}
	if q.queued.Add(1) > q.depth {
		q.queued.Add(-1)
		q.rejected.Add(1)
		return nil, 0, errQueueFull
	}
	t0 := time.Now()
	defer q.queued.Add(-1)
	select {
	case q.slots <- struct{}{}:
		wait = time.Since(t0)
		q.waitNS.Add(wait.Nanoseconds())
		q.admitted.Add(1)
		q.running.Add(1)
		return q.release, wait, nil
	case <-ctx.Done():
		return nil, time.Since(t0), ctx.Err()
	}
}

func (q *classQueue) release() {
	q.running.Add(-1)
	<-q.slots
}
