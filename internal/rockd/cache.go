package rockd

import (
	"container/list"
	"encoding/json"
	"sync"
)

// hotEntry is one finished analysis held in memory: the response payload
// pre-marshaled to JSON, so a hot hit is a map lookup plus a buffer write
// — no snapshot decode, no disk, no re-encoding. Entries also back the
// async poll endpoint (a submitted job's result is read from here).
type hotEntry struct {
	digest [32]byte
	// report and stats are the marshaled rock.Report and obs.Report of
	// the producing run (stats may be nil).
	report json.RawMessage
	stats  json.RawMessage
	// source records how the producing analysis ran: "cold", "warm"
	// (snapshot restore), or "incremental" (version-diff lane).
	source string
	// analysisNS is the producing run's server-side analysis wall time —
	// what a hot hit saves.
	analysisNS int64

	size int64
	elem *list.Element
}

// hotEntryOverhead approximates the bookkeeping bytes an entry costs
// beyond its payload (map slot, list element, struct).
const hotEntryOverhead = 256

// hotCache is the bounded in-memory result cache: LRU by payload bytes.
// It sits above the on-disk snapshot store — an eviction only costs the
// next submission a snapshot decode (the warm lane), never a re-analysis.
type hotCache struct {
	mu        sync.Mutex
	capacity  int64
	bytes     int64
	entries   map[[32]byte]*hotEntry
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

func newHotCache(capacity int64) *hotCache {
	return &hotCache{
		capacity: capacity,
		entries:  map[[32]byte]*hotEntry{},
		lru:      list.New(),
	}
}

// get returns the cached entry for a digest, bumping its recency, or nil.
func (c *hotCache) get(digest [32]byte) *hotEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[digest]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(e.elem)
	return e
}

// put inserts (or replaces) an entry and evicts from the LRU tail until
// the cache fits its capacity. An entry larger than the whole capacity is
// admitted alone and evicted by the next insert — the cache never rejects
// a fresh result outright.
func (c *hotCache) put(e *hotEntry) {
	e.size = int64(len(e.report)) + int64(len(e.stats)) + hotEntryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[e.digest]; ok {
		c.bytes -= old.size
		c.lru.Remove(old.elem)
		delete(c.entries, e.digest)
	}
	e.elem = c.lru.PushFront(e)
	c.entries[e.digest] = e
	c.bytes += e.size
	for c.bytes > c.capacity && c.lru.Len() > 1 {
		tail := c.lru.Back()
		victim := tail.Value.(*hotEntry)
		c.lru.Remove(tail)
		delete(c.entries, victim.digest)
		c.bytes -= victim.size
		c.evictions++
	}
}

// stats snapshots the cache gauges for /metrics.
func (c *hotCache) stats() (entries int, bytes, capacity, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes, c.capacity, c.hits, c.misses, c.evictions
}
