package rockd

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/image"
)

// Response is the envelope for a completed submission. Report and Stats
// are raw pre-marshaled JSON from the producing analysis — a hot hit
// writes them straight out of the cache without re-encoding.
type Response struct {
	// Digest is the image's content digest (hex) — the dedupe key.
	Digest string `json:"digest"`
	// Source records how this result was produced: "hot" (in-memory
	// cache), "warm" (snapshot restore), "incremental" (version-diff
	// lane), or "cold" (full analysis).
	Source string `json:"source"`
	// Coalesced reports this submission joined an analysis another
	// submission had already started (singleflight).
	Coalesced bool `json:"coalesced,omitempty"`
	// Class is the admission class the request ran under.
	Class string `json:"class"`
	// QueueWaitNS is time the producing flight spent waiting for
	// admission; zero for hot hits and warm-bypass submissions.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// AnalysisNS is the producing analysis's server-side wall time (the
	// original run's, for hot hits). TotalNS is this request's wall time.
	AnalysisNS int64 `json:"analysis_ns"`
	TotalNS    int64 `json:"total_ns"`

	Report json.RawMessage `json:"report"`
	Stats  json.RawMessage `json:"stats,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/analyze            submit an image body, wait for the result
//	POST /v1/submit             submit without waiting (batch ingest)
//	GET  /v1/result/{digest}    poll a previously submitted digest
//	GET  /metrics               server metrics (also /v1/metrics)
//	GET  /healthz               liveness (503 while draining)
//
// Submission endpoints take the raw image bytes as the request body and
// an optional ?class=interactive|batch query parameter.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("GET /v1/result/{digest}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// readImage decodes the submission body. Enforces MaxBodyBytes before
// parsing so an oversized upload fails fast.
func (s *Server) readImage(w http.ResponseWriter, r *http.Request) (*image.Image, Class, bool) {
	class, err := ParseClass(r.URL.Query().Get("class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, "", false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("image exceeds %d bytes", s.cfg.MaxBodyBytes))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		}
		return nil, "", false
	}
	img, err := image.Load(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("parsing image: %w", err))
		return nil, "", false
	}
	return img, class, true
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	img, class, ok := s.readImage(w, r)
	if !ok {
		return
	}
	// r.Context() is canceled when the client disconnects; do propagates
	// that into the flight's refcount.
	out, err := s.do(r.Context(), img, class)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	total := time.Since(t0)
	s.latency[class].observe(total)
	writeJSON(w, http.StatusOK, &Response{
		Digest:      hex.EncodeToString(out.entry.digest[:]),
		Source:      out.source,
		Coalesced:   out.coalesced,
		Class:       string(class),
		QueueWaitNS: out.queueWaitNS,
		AnalysisNS:  out.entry.analysisNS,
		TotalNS:     total.Nanoseconds(),
		Report:      out.entry.report,
		Stats:       out.entry.stats,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	img, class, ok := s.readImage(w, r)
	if !ok {
		return
	}
	digest, status, err := s.submitAsync(img, class)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	code := http.StatusAccepted
	if status == "hot" {
		code = http.StatusOK
	}
	writeJSON(w, code, map[string]string{
		"digest": hex.EncodeToString(digest[:]),
		"status": status,
		"class":  string(class),
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	raw, err := hex.DecodeString(r.PathValue("digest"))
	if err != nil || len(raw) != 32 {
		writeError(w, http.StatusBadRequest, errors.New("digest must be 64 hex characters"))
		return
	}
	var digest [32]byte
	copy(digest[:], raw)
	if e := s.cache.get(digest); e != nil {
		s.hotHits.Add(1)
		writeJSON(w, http.StatusOK, &Response{
			Digest:     hex.EncodeToString(digest[:]),
			Source:     "hot",
			AnalysisNS: e.analysisNS,
			Report:     e.report,
			Stats:      e.stats,
		})
		return
	}
	s.mu.Lock()
	_, inflight := s.flights[digest]
	failure, failed := s.failed[digest]
	s.mu.Unlock()
	switch {
	case inflight:
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "inflight"})
	case failed:
		writeJSON(w, http.StatusOK, map[string]string{"status": "failed", "error": failure})
	default:
		// Unknown, evicted, or never submitted — the poller resubmits;
		// the snapshot store makes the retry warm.
		writeError(w, http.StatusNotFound, errors.New("no result for digest (submit it)"))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errDraining)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeSubmitError maps submission failures onto status codes: queue
// overflow is backpressure (429), drain is 503, a canceled client gets
// the nonstandard-but-conventional 499, anything else is a 500.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
