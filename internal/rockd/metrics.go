package rockd

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// latencyRing keeps a bounded reservoir of recent response latencies per
// class so /metrics can report live quantiles without unbounded memory.
type latencyRing struct {
	mu      sync.Mutex
	samples [1024]int64
	n       int // filled length
	next    int
	count   int64
	sumNS   int64
	maxNS   int64
}

func (l *latencyRing) observe(d time.Duration) {
	ns := d.Nanoseconds()
	l.mu.Lock()
	l.samples[l.next] = ns
	l.next = (l.next + 1) % len(l.samples)
	if l.n < len(l.samples) {
		l.n++
	}
	l.count++
	l.sumNS += ns
	if ns > l.maxNS {
		l.maxNS = ns
	}
	l.mu.Unlock()
}

// summary computes count/mean/max plus p50/p90/p99 over the retained
// window.
func (l *latencyRing) summary() LatencySummary {
	l.mu.Lock()
	s := LatencySummary{Count: l.count, MaxNS: l.maxNS}
	if l.count > 0 {
		s.MeanNS = l.sumNS / l.count
	}
	window := append([]int64(nil), l.samples[:l.n]...)
	l.mu.Unlock()
	if len(window) == 0 {
		return s
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(window)-1))
		return window[i]
	}
	s.P50NS, s.P90NS, s.P99NS = q(0.50), q(0.90), q(0.99)
	return s
}

// LatencySummary is one class's response-latency digest (quantiles over
// the most recent window, count/mean/max over the daemon's lifetime).
type LatencySummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
}

// ClassMetrics is one admission class's live state.
type ClassMetrics struct {
	// Slots and QueueDepth are the configured bounds.
	Slots      int `json:"slots"`
	QueueDepth int `json:"queue_depth"`
	// Queued and Running are instantaneous gauges.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	// Admitted and Rejected count admission outcomes.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// QueueWaitNS is the cumulative time admitted requests spent queued.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	// Latency digests the class's end-to-end response times.
	Latency LatencySummary `json:"latency"`
}

// Metrics is the /metrics JSON document.
type Metrics struct {
	// UptimeNS is time since the server was created.
	UptimeNS int64 `json:"uptime_ns"`
	// Draining reports the server has stopped accepting submissions.
	Draining bool `json:"draining"`

	// Submissions counts every analyze/submit request accepted for
	// processing (hot hits included).
	Submissions int64 `json:"submissions"`
	// HotHits served straight from the in-memory result cache: no
	// admission, no snapshot decode, no disk.
	HotHits int64 `json:"hot_hits"`
	// Coalesced counts submissions that joined an analysis already in
	// flight for the same digest (the singleflight dedupe) instead of
	// starting their own.
	Coalesced int64 `json:"coalesced"`
	// Analyses counts analyses actually executed, by how they ran. The
	// singleflight invariant: Submissions == HotHits + Coalesced +
	// AnalysesCold + AnalysesWarm + AnalysesIncremental + failures.
	AnalysesCold        int64 `json:"analyses_cold"`
	AnalysesWarm        int64 `json:"analyses_warm"`
	AnalysesIncremental int64 `json:"analyses_incremental"`
	// AnalysisErrors counts flights that ended in an error (bad images,
	// canceled clients, queue rejections).
	AnalysisErrors int64 `json:"analysis_errors"`
	// CanceledFlights counts flights aborted because every waiter
	// disconnected before the result was ready.
	CanceledFlights int64 `json:"canceled_flights"`
	// InFlight is the instantaneous number of live flights.
	InFlight int64 `json:"in_flight"`

	// Cache is the hot result cache's state.
	Cache struct {
		Entries   int   `json:"entries"`
		Bytes     int64 `json:"bytes"`
		Capacity  int64 `json:"capacity"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
	} `json:"cache"`

	// Classes holds the per-admission-class state.
	Classes map[string]*ClassMetrics `json:"classes"`

	// Stages is the server-level observability rollup: every finished
	// request's per-stage record merged (obs.Report.Merge), plus a
	// mid-flight snapshot of every live analysis — so a scrape during a
	// long analysis sees its completed stages already.
	Stages *obs.Report `json:"stages"`
}
