// Package rockd is the analysis daemon: a long-running HTTP/JSON service
// wrapping the Rock pipeline for fleet-scale traffic, where the dominant
// workload is the SAME binaries submitted over and over. Its job is to
// make the Nth identical or near-identical submission cost ~zero:
//
//   - Submissions are keyed by image.ContentDigest. A singleflight layer
//     collapses concurrent identical submissions into one in-flight
//     analysis whose result fans out to every waiter — a million users
//     uploading the same binary cost one analysis.
//   - A bounded in-memory hot cache (LRU by bytes) holds finished results
//     as pre-marshaled JSON: a hot hit performs no snapshot decode and no
//     disk I/O. It layers above the on-disk content-addressed snapshot
//     store, so an eviction degrades to a snapshot decode (the warm
//     lane), and a cold start with a populated cache directory serves
//     warm from the first request.
//   - A patched re-upload of a known binary misses both layers but rides
//     the incremental version-diff lane automatically: the snapshot
//     store's v3 NameHash index finds the nearest prior version and
//     unchanged functions/models/families are reused (see
//     core.Config.IncrementalFrom auto-discovery).
//   - Two admission classes — interactive and batch — with separate
//     concurrency slots and queue depths keep bulk jobs from starving
//     interactive latency; over-depth submissions are rejected (429)
//     instead of queueing unboundedly. Fully-warm submissions bypass
//     admission entirely, like the corpus engine's warm lane.
//   - Client disconnects propagate: each waiter holds a reference on its
//     flight, and when the last waiter disconnects the flight's context
//     is canceled, draining the analysis through the pool's cancellation
//     paths. Async submissions hold a server-side reference and always
//     complete.
//   - SIGTERM drains gracefully: in-flight work finishes (bounded by
//     DrainTimeout), new submissions get 503.
//
// All analyses run on one rock.Engine — a single shared worker pool and
// query-scratch pool — so concurrent requests compete for a fixed
// parallelism budget. /metrics exposes the server counters, per-class
// queue state and latency quantiles, and a server-level per-stage
// observability rollup fed by each request's obs bus (merged mid-flight
// for live analyses — the bus is documented concurrent-read-safe).
package rockd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/rock"
)

// Config parameterizes the daemon. The zero value serves with all-CPU
// workers, a 256 MiB hot cache, and no snapshot store (set CacheDir to
// enable the warm and incremental lanes).
type Config struct {
	// Analysis is the base analysis configuration every submission runs
	// under (metric, depth, window, CacheDir, Workers...). The Observer
	// field is ignored — the daemon observes per request.
	Analysis rock.Options
	// HotCacheBytes bounds the in-memory result cache (LRU by payload
	// bytes). 0 selects 256 MiB.
	HotCacheBytes int64
	// InteractiveSlots bounds concurrently running interactive analyses.
	// 0 selects the worker count.
	InteractiveSlots int
	// InteractiveQueue bounds queued interactive submissions (waiting for
	// a slot); beyond it submissions are rejected with 429. 0 selects 256.
	InteractiveQueue int
	// BatchSlots bounds concurrently running batch analyses. 0 selects
	// half the workers (at least 1) so batch work can never occupy every
	// slot.
	BatchSlots int
	// BatchQueue bounds queued batch submissions. 0 selects 4096.
	BatchQueue int
	// MaxBodyBytes bounds a submitted image. 0 selects 64 MiB.
	MaxBodyBytes int64
	// DrainTimeout bounds the graceful drain: how long Serve waits for
	// in-flight work after its context is canceled before hard-canceling.
	// 0 selects 30s.
	DrainTimeout time.Duration
}

// Server is the daemon. Create with New, serve with Serve (or mount
// Handler on an existing server).
type Server struct {
	cfg    Config
	eng    *rock.Engine
	cache  *hotCache
	queues map[Class]*classQueue
	epoch  time.Time

	// base is the lifecycle context every flight derives from; canceling
	// it (hard drain) aborts all in-flight analyses.
	base       context.Context
	cancelBase context.CancelFunc
	draining   atomic.Bool

	mu      sync.Mutex
	flights map[[32]byte]*flight
	// failed remembers recent async flight errors for the poll endpoint,
	// bounded (see rememberFailure).
	failed map[[32]byte]string

	// flightWG tracks runFlight goroutines for drain.
	flightWG sync.WaitGroup

	// Counters (see Metrics for semantics).
	submissions, hotHits, coalesced          atomic.Int64
	analysesCold, analysesWarm, analysesIncr atomic.Int64
	analysisErrors, canceledFlights          atomic.Int64

	latency map[Class]*latencyRing

	// obsMu guards the finished-request observability rollup and the set
	// of live buses merged into /metrics scrapes.
	obsMu  sync.Mutex
	obsAgg *obs.Report
	live   map[*obs.Bus]struct{}
}

// New validates cfg and builds a server. The analysis options are
// resolved once; an invalid metric or invalidation spelling fails here,
// not per request.
func New(cfg Config) (*Server, error) {
	eng, err := rock.NewEngine(cfg.Analysis)
	if err != nil {
		return nil, err
	}
	workers := eng.Workers()
	if cfg.HotCacheBytes <= 0 {
		cfg.HotCacheBytes = 256 << 20
	}
	if cfg.InteractiveSlots <= 0 {
		cfg.InteractiveSlots = workers
	}
	if cfg.InteractiveQueue <= 0 {
		cfg.InteractiveQueue = 256
	}
	if cfg.BatchSlots <= 0 {
		cfg.BatchSlots = max(1, workers/2)
	}
	if cfg.BatchQueue <= 0 {
		cfg.BatchQueue = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	base, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:   cfg,
		eng:   eng,
		cache: newHotCache(cfg.HotCacheBytes),
		queues: map[Class]*classQueue{
			ClassInteractive: newClassQueue(ClassInteractive, cfg.InteractiveSlots, cfg.InteractiveQueue),
			ClassBatch:       newClassQueue(ClassBatch, cfg.BatchSlots, cfg.BatchQueue),
		},
		epoch:      time.Now(),
		base:       base,
		cancelBase: cancel,
		flights:    map[[32]byte]*flight{},
		failed:     map[[32]byte]string{},
		latency: map[Class]*latencyRing{
			ClassInteractive: {},
			ClassBatch:       {},
		},
		obsAgg: &obs.Report{},
		live:   map[*obs.Bus]struct{}{},
	}, nil
}

// flight is one in-flight analysis all identical submissions share.
type flight struct {
	digest [32]byte
	done   chan struct{}
	cancel context.CancelFunc

	// refs counts waiters (guarded by Server.mu). An async submission
	// holds one server-side ref that is never released, so async flights
	// always run to completion; when a sync flight's refs hit zero the
	// flight is abandoned: removed from the table and canceled.
	refs      int
	abandoned bool

	// Result, readable after done closes.
	entry *hotEntry
	err   error
	// queueWaitNS is how long the flight waited for admission.
	queueWaitNS int64
	// coalescedInto marks responses for waiters that joined rather than
	// created the flight (set per waiter, not here).
}

// result of a submission, pre-marshaled.
type submitOutcome struct {
	entry       *hotEntry
	source      string // "hot" or the flight's source
	coalesced   bool
	queueWaitNS int64
}

// errDraining rejects submissions during graceful drain (HTTP 503).
var errDraining = errors.New("rockd: draining")

// do runs one submission to completion: hot-cache lookup, then
// singleflight join-or-create, then wait. img must be loaded (its digest
// is the dedupe key). ctx is the CLIENT's context: canceling it abandons
// only this waiter's interest.
func (s *Server) do(ctx context.Context, img *image.Image, class Class) (*submitOutcome, error) {
	digest := contentDigest(img)
	s.submissions.Add(1)
	if e := s.cache.get(digest); e != nil {
		s.hotHits.Add(1)
		return &submitOutcome{entry: e, source: "hot"}, nil
	}
	f, created, err := s.joinFlight(digest, img, class)
	if err != nil {
		return nil, err
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		s.leaveFlight(f)
		return nil, ctx.Err()
	}
	if f.err != nil {
		return nil, f.err
	}
	return &submitOutcome{
		entry:       f.entry,
		source:      f.entry.source,
		coalesced:   !created,
		queueWaitNS: f.queueWaitNS,
	}, nil
}

// submitAsync starts (or joins) a flight without waiting. The server
// itself holds the waiter reference, so the flight is never canceled by
// client disconnects. Returns the job status: "hot" (already cached),
// "inflight" (joined an existing flight), or "accepted" (new flight).
func (s *Server) submitAsync(img *image.Image, class Class) (digest [32]byte, status string, err error) {
	digest = contentDigest(img)
	s.submissions.Add(1)
	if e := s.cache.get(digest); e != nil {
		s.hotHits.Add(1)
		return digest, "hot", nil
	}
	_, created, err := s.joinFlight(digest, img, class)
	if err != nil {
		return digest, "", err
	}
	if created {
		return digest, "accepted", nil
	}
	return digest, "inflight", nil
}

// joinFlight implements the singleflight layer: attach to the digest's
// in-flight analysis or start one. The caller owns one reference on the
// returned flight (release via leaveFlight or flight completion).
func (s *Server) joinFlight(digest [32]byte, img *image.Image, class Class) (f *flight, created bool, err error) {
	if s.draining.Load() {
		return nil, false, errDraining
	}
	s.mu.Lock()
	if f, ok := s.flights[digest]; ok {
		f.refs++
		s.mu.Unlock()
		s.coalesced.Add(1)
		return f, false, nil
	}
	fctx, cancel := context.WithCancel(s.base)
	f = &flight{digest: digest, done: make(chan struct{}), cancel: cancel, refs: 1}
	s.flights[digest] = f
	s.flightWG.Add(1)
	s.mu.Unlock()
	go s.runFlight(fctx, f, img, class)
	return f, true, nil
}

// leaveFlight drops one waiter reference. When the last sync waiter
// disconnects the flight is abandoned: unpublished (so a later identical
// submission starts fresh) and its context canceled, which drains the
// analysis through the pool's cancellation paths.
func (s *Server) leaveFlight(f *flight) {
	s.mu.Lock()
	f.refs--
	abandon := f.refs == 0 && !f.abandoned
	if abandon {
		f.abandoned = true
		if s.flights[f.digest] == f {
			delete(s.flights, f.digest)
		}
	}
	s.mu.Unlock()
	if abandon {
		s.canceledFlights.Add(1)
		f.cancel()
	}
}

// runFlight executes one analysis and fans its result out: the hot cache
// is populated BEFORE the flight is unpublished, so there is no window in
// which a new identical submission restarts the analysis.
func (s *Server) runFlight(ctx context.Context, f *flight, img *image.Image, class Class) {
	defer s.flightWG.Done()
	entry, waitNS, err := s.execute(ctx, img, class)
	if err == nil {
		s.cache.put(entry)
	} else {
		s.analysisErrors.Add(1)
		s.rememberFailure(f.digest, err)
	}
	s.mu.Lock()
	if s.flights[f.digest] == f {
		delete(s.flights, f.digest)
	}
	f.entry, f.err, f.queueWaitNS = entry, err, waitNS
	s.mu.Unlock()
	close(f.done)
	f.cancel()
}

// execute runs the analysis body of a flight: admission (bypassed for
// fully-warm images — a decode is not an analysis), then the engine,
// observed on a per-request bus that feeds the /metrics rollup.
func (s *Server) execute(ctx context.Context, img *image.Image, class Class) (*hotEntry, int64, error) {
	var waitNS int64
	if !s.eng.ProbeWarm(img) {
		release, wait, err := s.queues[class].admit(ctx)
		if err != nil {
			return nil, wait.Nanoseconds(), err
		}
		defer release()
		waitNS = wait.Nanoseconds()
	}

	bus := rock.NewObserver()
	s.obsMu.Lock()
	s.live[bus] = struct{}{}
	s.obsMu.Unlock()
	t0 := time.Now()
	rep, err := s.eng.AnalyzeImage(ctx, img, bus)
	analysisNS := time.Since(t0).Nanoseconds()
	s.obsMu.Lock()
	delete(s.live, bus)
	s.obsAgg.Merge(bus.Report())
	s.obsMu.Unlock()
	if err != nil {
		return nil, waitNS, err
	}

	source := "cold"
	switch {
	case rep.SnapshotReuse >= snapshot.LevelHierarchy:
		source = "warm"
		s.analysesWarm.Add(1)
	case rep.Incremental:
		source = "incremental"
		s.analysesIncr.Add(1)
	default:
		s.analysesCold.Add(1)
	}

	repJSON, err := json.Marshal(rep)
	if err != nil {
		return nil, waitNS, fmt.Errorf("rockd: marshaling report: %w", err)
	}
	statsJSON, err := json.Marshal(rep.Stats)
	if err != nil {
		return nil, waitNS, fmt.Errorf("rockd: marshaling stats: %w", err)
	}
	return &hotEntry{
		digest:     contentDigest(img),
		report:     repJSON,
		stats:      statsJSON,
		source:     source,
		analysisNS: analysisNS,
	}, waitNS, nil
}

// rememberFailure records an async flight error for the poll endpoint.
// The map is bounded crudely: at 1024 entries it is reset wholesale — a
// forgotten failure just means the poller resubmits.
func (s *Server) rememberFailure(digest [32]byte, err error) {
	s.mu.Lock()
	if len(s.failed) >= 1024 {
		s.failed = map[[32]byte]string{}
	}
	s.failed[digest] = err.Error()
	s.mu.Unlock()
}

// contentDigest keys a submission: metadata never affects the digest
// (ContentDigest already excludes it), so stripped and decorated uploads
// of the same binary dedupe together.
func contentDigest(img *image.Image) [32]byte {
	return img.ContentDigest()
}

// Metrics snapshots the server state.
func (s *Server) Metrics() *Metrics {
	m := &Metrics{
		UptimeNS:            time.Since(s.epoch).Nanoseconds(),
		Draining:            s.draining.Load(),
		Submissions:         s.submissions.Load(),
		HotHits:             s.hotHits.Load(),
		Coalesced:           s.coalesced.Load(),
		AnalysesCold:        s.analysesCold.Load(),
		AnalysesWarm:        s.analysesWarm.Load(),
		AnalysesIncremental: s.analysesIncr.Load(),
		AnalysisErrors:      s.analysisErrors.Load(),
		CanceledFlights:     s.canceledFlights.Load(),
		Classes:             map[string]*ClassMetrics{},
	}
	s.mu.Lock()
	m.InFlight = int64(len(s.flights))
	s.mu.Unlock()
	m.Cache.Entries, m.Cache.Bytes, m.Cache.Capacity, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions = s.cache.stats()
	for class, q := range s.queues {
		m.Classes[string(class)] = &ClassMetrics{
			Slots:       cap(q.slots),
			QueueDepth:  int(q.depth),
			Queued:      q.queued.Load(),
			Running:     q.running.Load(),
			Admitted:    q.admitted.Load(),
			Rejected:    q.rejected.Load(),
			QueueWaitNS: q.waitNS.Load(),
			Latency:     s.latency[class].summary(),
		}
	}
	// Server-level stage rollup: finished requests plus a mid-flight
	// snapshot of every live analysis (obs.Bus is concurrent-read-safe).
	agg := &obs.Report{}
	s.obsMu.Lock()
	agg.Merge(s.obsAgg)
	buses := make([]*obs.Bus, 0, len(s.live))
	for b := range s.live {
		buses = append(buses, b)
	}
	s.obsMu.Unlock()
	for _, b := range buses {
		agg.Merge(b.Report())
	}
	m.Stages = agg
	return m
}

// Serve accepts connections on ln until ctx is canceled, then drains
// gracefully: new submissions are rejected with 503, in-flight HTTP
// requests and async flights get up to DrainTimeout to finish, and
// whatever remains is hard-canceled. Returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	// Shutdown stops accepting and waits for in-flight HTTP handlers
	// (whose flights it thereby waits on) up to the drain budget.
	shutdownErr := srv.Shutdown(dctx)
	// Async flights have no HTTP request holding them; wait separately.
	flightsDone := make(chan struct{})
	go func() { s.flightWG.Wait(); close(flightsDone) }()
	select {
	case <-flightsDone:
	case <-dctx.Done():
		s.cancelBase() // hard drain: abort the stragglers
		<-flightsDone
	}
	<-errc // Serve has returned http.ErrServerClosed
	if shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded) {
		return shutdownErr
	}
	return nil
}

// Close hard-stops the server (tests): cancels every flight and waits.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancelBase()
	s.flightWG.Wait()
}

// Workers returns the engine's shared pool capacity.
func (s *Server) Workers() int { return s.eng.Workers() }
