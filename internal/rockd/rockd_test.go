package rockd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/image"
	"repro/internal/synth"
	"repro/rock"
)

// motivatingBinary marshals the paper's motivating example.
func motivatingBinary(t *testing.T) []byte {
	t.Helper()
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// synthBinary marshals a distinct mid-sized random program per seed.
func synthBinary(t *testing.T, seed int64) []byte {
	t.Helper()
	prog, _ := synth.Generate(synth.DefaultParams(seed))
	img, err := compiler.Compile(prog, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Analysis.Workers == 0 {
		cfg.Analysis.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postAnalyze(t *testing.T, ts *httptest.Server, body []byte, query string) (*Response, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/analyze"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out Response
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return &out, resp.StatusCode
}

// TestSingleflightCollapsesConcurrentSubmissions is the dedupe contract:
// N concurrent identical submissions cost exactly ONE analysis; every
// caller gets the same report.
func TestSingleflightCollapsesConcurrentSubmissions(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bin := motivatingBinary(t)

	const n = 24
	var wg sync.WaitGroup
	reports := make([]json.RawMessage, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, code := postAnalyze(t, ts, bin, "")
			codes[i] = code
			if out != nil {
				reports[i] = out.Report
			}
		}(i)
	}
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		if !bytes.Equal(reports[i], reports[0]) {
			t.Fatalf("request %d returned a different report", i)
		}
	}
	m := s.Metrics()
	analyses := m.AnalysesCold + m.AnalysesWarm + m.AnalysesIncremental
	if analyses != 1 {
		t.Fatalf("%d analyses for %d identical submissions, want exactly 1 (coalesced=%d hot=%d)",
			analyses, n, m.Coalesced, m.HotHits)
	}
	if m.Submissions != n {
		t.Fatalf("submissions = %d, want %d", m.Submissions, n)
	}
	if m.Coalesced+m.HotHits != n-1 {
		t.Fatalf("coalesced(%d)+hot(%d) should cover the other %d submissions",
			m.Coalesced, m.HotHits, n-1)
	}
}

// TestHotCacheHit: the second identical submission is served from memory
// — source "hot", no second analysis — and byte-identical to the first.
func TestHotCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bin := motivatingBinary(t)

	first, _ := postAnalyze(t, ts, bin, "")
	if first.Source == "hot" {
		t.Fatalf("first submission cannot be hot")
	}
	second, _ := postAnalyze(t, ts, bin, "")
	if second.Source != "hot" {
		t.Fatalf("second submission source = %q, want hot", second.Source)
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Fatal("hot hit returned a different report")
	}
	m := s.Metrics()
	if m.HotHits != 1 {
		t.Fatalf("hot hits = %d, want 1", m.HotHits)
	}
	if total := m.AnalysesCold + m.AnalysesWarm + m.AnalysesIncremental; total != 1 {
		t.Fatalf("analyses = %d, want 1", total)
	}
}

// TestHotResponseMatchesDirectAnalysis: the daemon's report is the
// library's report — same JSON for the same binary and options.
func TestHotResponseMatchesDirectAnalysis(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bin := motivatingBinary(t)

	out, _ := postAnalyze(t, ts, bin, "")
	direct, err := rock.Analyze(bin, rock.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Normalize the daemon-only fields before comparing: the daemon
	// always observes (its Stats feed /metrics), the direct run did not.
	var got rock.Report
	if err := json.Unmarshal(out.Report, &got); err != nil {
		t.Fatal(err)
	}
	got.Stats = nil
	direct.Stats = nil
	gotJSON, _ := json.Marshal(&got)
	directJSON, _ := json.Marshal(direct)
	if !bytes.Equal(gotJSON, directJSON) {
		t.Fatalf("daemon report differs from direct analysis:\n%s\n---\n%s", gotJSON, directJSON)
	}
}

// TestHotCacheEviction: a byte-bounded cache evicts LRU entries instead
// of growing; evicted digests re-serve without error.
func TestHotCacheEviction(t *testing.T) {
	c := newHotCache(3 * 1024)
	mk := func(b byte, n int) *hotEntry {
		var d [32]byte
		d[0] = b
		return &hotEntry{digest: d, report: make(json.RawMessage, n)}
	}
	c.put(mk(1, 1024))
	c.put(mk(2, 1024))
	if c.get([32]byte{1}) == nil { // bump 1 so 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.put(mk(3, 1024)) // over capacity with overheads: evicts 2
	if c.get([32]byte{2}) != nil {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if c.get([32]byte{1}) == nil || c.get([32]byte{3}) == nil {
		t.Fatal("recently used entries evicted")
	}
	entries, bytes_, capacity, _, _, evictions := c.stats()
	if evictions == 0 || entries != 2 || bytes_ > capacity {
		t.Fatalf("entries=%d bytes=%d cap=%d evictions=%d", entries, bytes_, capacity, evictions)
	}
	// An oversized entry is admitted alone (never rejected outright).
	c.put(mk(9, 64*1024))
	if c.get([32]byte{9}) == nil {
		t.Fatal("oversized entry rejected")
	}
}

// TestAdmissionQueueFull: at queue depth the class rejects immediately
// with errQueueFull instead of queueing unboundedly.
func TestAdmissionQueueFull(t *testing.T) {
	q := newClassQueue(ClassBatch, 1, 1)
	release, _, err := q.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One waiter may queue...
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := q.admit(ctx)
		waiterErr <- err
	}()
	// ...wait until it is queued, then the next admit must bounce.
	for i := 0; q.queued.Load() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := q.admit(context.Background()); err != errQueueFull {
		t.Fatalf("over-depth admit: err = %v, want errQueueFull", err)
	}
	if q.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", q.rejected.Load())
	}
	// Releasing the slot admits the queued waiter.
	release()
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	// Canceled waiters return the context error (the admitted waiter
	// still holds the only slot, so this admit must queue, then observe
	// the cancellation).
	cancel()
	if _, _, err := q.admit(ctx); err != context.Canceled {
		t.Fatalf("canceled admit: err = %v, want context.Canceled", err)
	}
}

// TestClientDisconnectCancelsFlight: when every waiter abandons a flight
// the analysis context is canceled and the flight errors out — the pool
// is not left running work nobody wants.
func TestClientDisconnectCancelsFlight(t *testing.T) {
	s := newTestServer(t, Config{})
	img, err := image.Load(synthBinary(t, 4242))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.do(ctx, img, ClassInteractive)
		done <- err
	}()
	// Wait until the flight exists, then disconnect.
	for i := 0; i < 1000; i++ {
		s.mu.Lock()
		n := len(s.flights)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("do: err = %v, want context.Canceled", err)
	}
	s.flightWG.Wait()
	if got := s.canceledFlights.Load(); got != 1 {
		t.Fatalf("canceled flights = %d, want 1", got)
	}
	s.mu.Lock()
	remaining := len(s.flights)
	s.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d flights leaked after abandonment", remaining)
	}
}

// TestAsyncSubmitAndPoll: POST /v1/submit returns immediately; the
// result becomes pollable at /v1/result/{digest} once the flight lands.
func TestAsyncSubmitAndPoll(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bin := motivatingBinary(t)

	resp, err := http.Post(ts.URL+"/v1/submit?class=batch", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct{ Digest, Status string }
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Status != "accepted" {
		t.Fatalf("submit: status=%d body status=%q", resp.StatusCode, sub.Status)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/result/" + sub.Digest)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			var out Response
			if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if out.Source != "hot" || len(out.Report) == 0 {
				t.Fatalf("poll result: source=%q reportLen=%d", out.Source, len(out.Report))
			}
			break
		}
		r.Body.Close()
		if r.StatusCode != http.StatusAccepted {
			t.Fatalf("poll: unexpected status %d", r.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("result never became available")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Unknown digests 404; malformed digests 400.
	if r, _ := http.Get(ts.URL + "/v1/result/" + strings.Repeat("ab", 32)); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest: status %d", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/result/zzz"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed digest: status %d", r.StatusCode)
	}
}

// TestWarmLaneAcrossRestart: a daemon started over a populated snapshot
// directory serves its first submission warm (and admission-free).
func TestWarmLaneAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	bin := motivatingBinary(t)

	s1 := newTestServer(t, Config{Analysis: rock.Options{CacheDir: dir}})
	ts1 := httptest.NewServer(s1.Handler())
	if out, _ := postAnalyze(t, ts1, bin, ""); out.Source != "cold" {
		t.Fatalf("first-ever analysis source = %q, want cold", out.Source)
	}
	ts1.Close()
	s1.Close()

	s2 := newTestServer(t, Config{Analysis: rock.Options{CacheDir: dir}})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	out, _ := postAnalyze(t, ts2, bin, "")
	if out.Source != "warm" {
		t.Fatalf("restarted daemon first submission source = %q, want warm", out.Source)
	}
	m := s2.Metrics()
	if m.AnalysesWarm != 1 || m.AnalysesCold != 0 {
		t.Fatalf("warm=%d cold=%d after restart", m.AnalysesWarm, m.AnalysesCold)
	}
	// Warm submissions bypass admission: no admitted count on any class.
	for class, cm := range m.Classes {
		if cm.Admitted != 0 {
			t.Fatalf("class %s admitted %d — warm lane must bypass admission", class, cm.Admitted)
		}
	}
}

// TestServeGracefulDrain: canceling Serve's context stops intake (503),
// lets in-flight work finish, and returns nil on a clean drain.
func TestServeGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{DrainTimeout: 20 * time.Second})
	ts := httptest.NewServer(s.Handler())
	bin := motivatingBinary(t)
	if _, code := postAnalyze(t, ts, bin, ""); code != http.StatusOK {
		t.Fatalf("pre-drain analyze: %d", code)
	}
	ts.Close()

	// Run the real Serve loop on its own listener and drain it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()
	waitHealthy(t, url)

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	// Post-drain submissions are rejected at the singleflight gate.
	if _, _, err := s.joinFlight([32]byte{1}, nil, ClassInteractive); err != errDraining {
		t.Fatalf("post-drain join: err = %v, want errDraining", err)
	}
}

// TestMetricsEndpoint: the document parses, carries the per-class
// latency digests, and the stage rollup reflects executed analyses.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bin := motivatingBinary(t)
	postAnalyze(t, ts, bin, "")
	postAnalyze(t, ts, bin, "")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Submissions != 2 || m.HotHits != 1 {
		t.Fatalf("submissions=%d hot=%d", m.Submissions, m.HotHits)
	}
	ic := m.Classes["interactive"]
	if ic == nil || ic.Latency.Count != 2 || ic.Latency.P50NS <= 0 {
		t.Fatalf("interactive latency digest missing/empty: %+v", ic)
	}
	if m.Stages == nil || len(m.Stages.Stages) == 0 {
		t.Fatal("stage rollup empty after an analysis")
	}
	if m.Cache.Entries != 1 || m.Cache.Bytes <= 0 {
		t.Fatalf("cache gauges: %+v", m.Cache)
	}
}

// TestRejectsOversizedAndGarbage: protocol errors map to 4xx.
func TestRejectsOversizedAndGarbage(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, code := postAnalyze(t, ts, bytes.Repeat([]byte{0xCC}, 4096), ""); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", code)
	}
	if _, code := postAnalyze(t, ts, []byte("not an image"), ""); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", code)
	}
	if _, code := postAnalyze(t, ts, motivatingBinary(t), "?class=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad class: status %d", code)
	}
	if m := s.Metrics(); m.AnalysesCold+m.AnalysesWarm+m.AnalysesIncremental != 0 {
		t.Fatal("rejected submissions must not reach the engine")
	}
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}
