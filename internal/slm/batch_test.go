package slm

import (
	"math/rand"
	"testing"
)

// batchFleet trains k frozen models over a shared alphabet plus a word
// set sampled from all of them.
func batchFleet(t *testing.T, k int) ([]*Frozen, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	fleet := make([]*Frozen, k)
	for i := range fleet {
		m := New(2, 16)
		for n := 0; n < 24; n++ {
			m.Train(randomSeq(rng, 16, 7))
		}
		fleet[i] = m.Freeze()
	}
	words := make([][]int, 100)
	for i := range words {
		words[i] = randomSeq(rng, 16, 7)
	}
	return fleet, words
}

// TestBatchKernelBitIdentical pins the batch kernel's contract: row i of
// logProbWordsBatch equals ms[i].LogProbWords exactly — the blocked loop
// reorders model×word visits but never the per-pair arithmetic — for a
// cold scratch, a warm rebound scratch, and a shrunken batch.
func TestBatchKernelBitIdentical(t *testing.T) {
	fleet, words := batchFleet(t, 9)
	s := &Scratch{}
	check := func(label string, ms []*Frozen) {
		t.Helper()
		rows := s.logProbWordsBatch(ms, words)
		if len(rows) != len(ms) {
			t.Fatalf("%s: got %d rows, want %d", label, len(rows), len(ms))
		}
		for i, f := range ms {
			want := f.LogProbWords(words, nil)
			for w := range want {
				if rows[i][w] != want[w] {
					t.Fatalf("%s: model %d word %d: batch %v, direct %v", label, i, w, rows[i][w], want[w])
				}
			}
		}
	}
	check("cold", fleet)
	check("warm", fleet)
	// A smaller follow-up batch must rebind the retained queriers, not
	// reuse stale bindings.
	check("shrunk", fleet[3:6])
}

// TestPrecomputeBatchMatchesPrecompute pins batch precompute against the
// single-model path: distances over batch-derived distributions are
// bit-identical, including with a non-frozen scorer mixed into the batch
// and with models already cached.
func TestPrecomputeBatchMatchesPrecompute(t *testing.T) {
	fleet, words := batchFleet(t, 6)
	builder := New(2, 16)
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 24; n++ {
		builder.Train(randomSeq(rng, 16, 7))
	}
	for _, metric := range []Metric{MetricKL, MetricJSDivergence, MetricJSDistance} {
		single := NewDistanceCalculator(metric, words)
		batch := NewDistanceCalculator(metric, words)
		batch.Reserve(len(fleet) + 1)
		ms := make([]WordScorer, 0, len(fleet)+1)
		for _, f := range fleet {
			ms = append(ms, f)
		}
		ms = append(ms, builder)
		for _, m := range ms {
			single.Precompute(m)
		}
		batch.PrecomputeBatch(ms[:3])
		batch.PrecomputeBatch(ms) // second call: first three are cache hits
		for _, a := range ms {
			for _, b := range ms {
				if a == b {
					continue
				}
				if got, want := batch.Distance(a, b), single.Distance(a, b); got != want {
					t.Fatalf("%v: batch distance %v, single %v", metric, got, want)
				}
			}
		}
	}
}

// TestBatchKernelZeroAlloc guards the memoized hot path: a warm scratch
// scores a whole batch without allocating, and a fully-cached
// PrecomputeBatch costs nothing.
func TestBatchKernelZeroAlloc(t *testing.T) {
	fleet, words := batchFleet(t, 8)
	s := &Scratch{}
	s.logProbWordsBatch(fleet, words) // warm the queriers and rows
	if n := testing.AllocsPerRun(100, func() { s.logProbWordsBatch(fleet, words) }); n != 0 {
		t.Errorf("warm logProbWordsBatch allocates %v per pass, want 0", n)
	}
	calc := NewDistanceCalculator(MetricKL, words)
	ms := make([]WordScorer, len(fleet))
	for i, f := range fleet {
		ms[i] = f
	}
	calc.PrecomputeBatch(ms)
	if n := testing.AllocsPerRun(100, func() { calc.PrecomputeBatch(ms) }); n != 0 {
		t.Errorf("cached PrecomputeBatch allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { calc.PairBound(ms) }); n != 0 {
		t.Errorf("warm PairBound allocates %v per call, want 0", n)
	}
}

// TestPairBoundDominatesMax is the property the sparse sweep's root
// weight rests on: for every metric, PairBound is at least the largest
// pairwise distance among the models — so a root edge scaled from the
// bound stays costlier than any admissible edge, exactly as one scaled
// from the dense maximum (Heuristic 4.1).
func TestPairBoundDominatesMax(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(5)
		fleet := make([]WordScorer, k)
		for i := range fleet {
			m := New(1+rng.Intn(3), 12)
			for n := 0; n < 4+rng.Intn(40); n++ {
				m.Train(randomSeq(rng, 12, 9))
			}
			fleet[i] = m.Freeze()
		}
		words := make([][]int, 1+rng.Intn(60))
		for i := range words {
			words[i] = randomSeq(rng, 12, 9)
		}
		for _, metric := range []Metric{MetricKL, MetricJSDivergence, MetricJSDistance} {
			calc := NewDistanceCalculator(metric, words)
			maxD := 0.0
			for _, a := range fleet {
				for _, b := range fleet {
					if a == b {
						continue
					}
					if d := calc.Distance(a, b); d > maxD {
						maxD = d
					}
				}
			}
			bound := calc.PairBound(fleet)
			if bound < maxD {
				t.Errorf("seed %d %v: PairBound %v < max pairwise distance %v", seed, metric, bound, maxD)
			}
			if again := calc.PairBound(fleet); again != bound {
				t.Errorf("seed %d %v: PairBound not deterministic: %v then %v", seed, metric, bound, again)
			}
		}
	}
}

// TestPairBoundDegenerate pins the empty cases.
func TestPairBoundDegenerate(t *testing.T) {
	fleet, words := batchFleet(t, 2)
	ms := []WordScorer{fleet[0], fleet[1]}
	if got := NewDistanceCalculator(MetricKL, nil).PairBound(ms); got != 0 {
		t.Errorf("empty word set: PairBound %v, want 0", got)
	}
	if got := NewDistanceCalculator(MetricKL, words).PairBound(ms[:1]); got != 0 {
		t.Errorf("single model: PairBound %v, want 0", got)
	}
}
