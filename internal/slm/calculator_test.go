package slm

import (
	"sync"
	"testing"
)

// trainedPair returns two small models over a shared alphabet plus a word
// set drawn from both behaviors.
func trainedPair() (*Model, *Model, [][]int) {
	a := New(2, 6)
	b := New(2, 6)
	for i := 0; i < 8; i++ {
		a.Train([]int{0, 1, 2, 0, 1, 2})
		a.Train([]int{0, 1, 0, 1})
		b.Train([]int{0, 1, 2, 3, 4, 5})
		b.Train([]int{3, 4, 5})
	}
	words := [][]int{
		{0, 1, 2},
		{0, 1},
		{3, 4, 5},
		{0, 1, 2, 3},
		{5},
	}
	return a, b, words
}

// TestCalculatorMatchesDistance pins the calculator's contract: for every
// metric and both argument orders it returns exactly the value of the
// package-level Distance function (bit-identical — the pipeline's
// serial/parallel determinism guarantee depends on it).
func TestCalculatorMatchesDistance(t *testing.T) {
	a, b, words := trainedPair()
	for _, metric := range []Metric{MetricKL, MetricJSDivergence, MetricJSDistance} {
		c := NewDistanceCalculator(metric, words)
		for i := 0; i < 3; i++ { // repeated calls must hit the cache, same value
			if got, want := c.Distance(a, b), Distance(metric, a, b, words); got != want {
				t.Errorf("%v: calculator a→b = %v, Distance = %v", metric, got, want)
			}
			if got, want := c.Distance(b, a), Distance(metric, b, a, words); got != want {
				t.Errorf("%v: calculator b→a = %v, Distance = %v", metric, got, want)
			}
		}
	}
}

// TestCalculatorEmptyWords mirrors Distance's empty-word-set behavior.
func TestCalculatorEmptyWords(t *testing.T) {
	a, b, _ := trainedPair()
	c := NewDistanceCalculator(MetricKL, nil)
	if got := c.Distance(a, b); got != 0 {
		t.Errorf("empty word set: got %v, want 0", got)
	}
}

// TestCalculatorConcurrent hammers one calculator from many goroutines
// (precompute races included); every observed value must equal the serial
// reference. Run under -race this also proves the cache is data-race free.
func TestCalculatorConcurrent(t *testing.T) {
	a, b, words := trainedPair()
	want := Distance(MetricKL, a, b, words)
	wantRev := Distance(MetricKL, b, a, words)
	c := NewDistanceCalculator(MetricKL, words)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					c.Precompute(a)
					if got := c.Distance(a, b); got != want {
						errs <- "a→b diverged"
						return
					}
				} else {
					c.Precompute(b)
					if got := c.Distance(b, a); got != wantRev {
						errs <- "b→a diverged"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
