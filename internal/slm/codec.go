package slm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file serializes frozen models for the content-addressed snapshot
// layer (internal/snapshot). The on-disk form mirrors the in-memory layout
// one-to-one — header, node records, then the four shared arenas — so
// encoding is a flat copy and decoding is a bounds-checked parse followed
// by structural validation. A decoded trie is reflect.DeepEqual to the
// encoded one, and therefore answers every query bit-identically.
//
// Layout (all little-endian):
//
//	magic "FZT1" |
//	depth u32 | alphabet u32 | trained u32 |
//	nodes u32 | syms u32 | kids u32 |
//	node records: (symOff i32, symN i32, childOff i32, childN i32, total i32)... |
//	syms i32... | counts i32... | childSyms i32... | childNodes i32...
//
// Decode validates every count against the bytes actually present before
// allocating (a corrupted header must fail fast, not drive a
// multi-gigabyte allocation), and then checks the structural invariants
// the query kernel relies on: spans in-bounds, child indices in-range,
// symbols within the alphabet, and spans sorted strictly ascending (the
// binary search contract).

const frozenMagic = "FZT1"

// frozenHeaderSize is the fixed-size prefix: magic + six u32 fields.
const frozenHeaderSize = 4 + 6*4

// EncodedSize returns the exact serialized size of the frozen trie.
func (f *Frozen) EncodedSize() int {
	return frozenHeaderSize + 20*len(f.nodes) + 4*(len(f.syms)+len(f.counts)+len(f.childSyms)+len(f.childNodes))
}

// AppendBinary appends the frozen trie's serialized form to dst and
// returns the extended slice.
func (f *Frozen) AppendBinary(dst []byte) []byte {
	dst = append(dst, frozenMagic...)
	dst = appendU32(dst, uint32(f.depth))
	dst = appendU32(dst, uint32(f.alphabet))
	dst = appendU32(dst, uint32(f.trained))
	dst = appendU32(dst, uint32(len(f.nodes)))
	dst = appendU32(dst, uint32(len(f.syms)))
	dst = appendU32(dst, uint32(len(f.childSyms)))
	for i := range f.nodes {
		n := &f.nodes[i]
		dst = appendI32(dst, n.symOff)
		dst = appendI32(dst, n.symN)
		dst = appendI32(dst, n.childOff)
		dst = appendI32(dst, n.childN)
		dst = appendI32(dst, n.total)
	}
	for _, arena := range [][]int32{f.syms, f.counts, f.childSyms, f.childNodes} {
		for _, v := range arena {
			dst = appendI32(dst, v)
		}
	}
	return dst
}

// DecodeFrozen parses one serialized frozen trie from the front of data,
// returning the decoded model and the unconsumed remainder. Corrupted or
// truncated input returns an error; the decoder never panics and never
// allocates more than the input size warrants.
func DecodeFrozen(data []byte) (*Frozen, []byte, error) {
	if len(data) < frozenHeaderSize {
		return nil, nil, fmt.Errorf("slm: frozen trie truncated at header (%d bytes)", len(data))
	}
	if string(data[:4]) != frozenMagic {
		return nil, nil, fmt.Errorf("slm: bad frozen trie magic")
	}
	depth := int(binary.LittleEndian.Uint32(data[4:]))
	alphabet := int(binary.LittleEndian.Uint32(data[8:]))
	trained := int(binary.LittleEndian.Uint32(data[12:]))
	nNodes := int(binary.LittleEndian.Uint32(data[16:]))
	nSyms := int(binary.LittleEndian.Uint32(data[20:]))
	nKids := int(binary.LittleEndian.Uint32(data[24:]))
	rest := data[frozenHeaderSize:]

	if depth < 0 || depth > math.MaxInt32 {
		return nil, nil, fmt.Errorf("slm: frozen trie depth %d out of range", depth)
	}
	if alphabet < 1 || alphabet > math.MaxInt32 {
		return nil, nil, fmt.Errorf("slm: frozen trie alphabet %d out of range", alphabet)
	}
	if nNodes < 1 {
		return nil, nil, fmt.Errorf("slm: frozen trie has no nodes")
	}
	// Size check before any allocation: node records are 20 bytes, arena
	// elements 4 bytes each (two arenas per count).
	need := 20*nNodes + 8*nSyms + 8*nKids
	if nNodes > len(rest)/20 || nSyms > len(rest)/8 || nKids > len(rest)/8 || need > len(rest) {
		return nil, nil, fmt.Errorf("slm: frozen trie counts (%d nodes, %d syms, %d kids) exceed input size %d",
			nNodes, nSyms, nKids, len(rest))
	}

	f := &Frozen{
		depth:    depth,
		alphabet: alphabet,
		trained:  trained,
		nodes:    make([]frozenNode, nNodes),
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		n.symOff = int32(binary.LittleEndian.Uint32(rest[0:]))
		n.symN = int32(binary.LittleEndian.Uint32(rest[4:]))
		n.childOff = int32(binary.LittleEndian.Uint32(rest[8:]))
		n.childN = int32(binary.LittleEndian.Uint32(rest[12:]))
		n.total = int32(binary.LittleEndian.Uint32(rest[16:]))
		rest = rest[20:]
	}
	readArena := func(n int) []int32 {
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(binary.LittleEndian.Uint32(rest))
			rest = rest[4:]
		}
		return a
	}
	f.syms = readArena(nSyms)
	f.counts = readArena(nSyms)
	f.childSyms = readArena(nKids)
	f.childNodes = readArena(nKids)

	if err := f.validate(); err != nil {
		return nil, nil, err
	}
	return f, rest, nil
}

// validate checks the invariants the query kernel indexes by: every span
// lies within its arena, child indices name real nodes, symbols lie within
// the alphabet (they index the querier's exclusion array), and spans are
// strictly ascending (the binary-search contract).
func (f *Frozen) validate() error {
	nSyms, nKids, nNodes := int32(len(f.syms)), int32(len(f.childSyms)), int32(len(f.nodes))
	for i := range f.nodes {
		n := &f.nodes[i]
		if n.symN < 0 || n.symOff < 0 || n.symOff > nSyms || n.symN > nSyms-n.symOff {
			return fmt.Errorf("slm: frozen node %d symbol span [%d,+%d) outside arena of %d", i, n.symOff, n.symN, nSyms)
		}
		if n.childN < 0 || n.childOff < 0 || n.childOff > nKids || n.childN > nKids-n.childOff {
			return fmt.Errorf("slm: frozen node %d child span [%d,+%d) outside arena of %d", i, n.childOff, n.childN, nKids)
		}
		for j := n.symOff; j < n.symOff+n.symN; j++ {
			s := f.syms[j]
			if s < 0 || int(s) >= f.alphabet {
				return fmt.Errorf("slm: frozen node %d symbol %d outside alphabet %d", i, s, f.alphabet)
			}
			if j > n.symOff && f.syms[j-1] >= s {
				return fmt.Errorf("slm: frozen node %d symbol span not strictly ascending", i)
			}
			if f.counts[j] < 0 {
				return fmt.Errorf("slm: frozen node %d negative count", i)
			}
		}
		for j := n.childOff; j < n.childOff+n.childN; j++ {
			if c := f.childNodes[j]; c < 0 || c >= nNodes {
				return fmt.Errorf("slm: frozen node %d child index %d outside %d nodes", i, c, nNodes)
			}
			s := f.childSyms[j]
			if s < 0 || int(s) >= f.alphabet {
				return fmt.Errorf("slm: frozen node %d child symbol %d outside alphabet %d", i, s, f.alphabet)
			}
			if j > n.childOff && f.childSyms[j-1] >= s {
				return fmt.Errorf("slm: frozen node %d child span not strictly ascending", i)
			}
		}
	}
	return nil
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendI32(dst []byte, v int32) []byte { return appendU32(dst, uint32(v)) }
