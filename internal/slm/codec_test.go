package slm

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomFrozen trains a builder on a pseudorandom corpus and freezes it.
// The corpus is seeded, so failures reproduce.
func randomFrozen(rng *rand.Rand, depth, alphabet, words, wordLen int) (*Frozen, [][]int) {
	m := New(depth, alphabet)
	corpus := make([][]int, words)
	for i := range corpus {
		w := make([]int, wordLen)
		for j := range w {
			w[j] = rng.Intn(alphabet)
		}
		corpus[i] = w
		m.Train(w)
	}
	return m.Freeze(), corpus
}

// TestFrozenCodecRoundTrip is the satellite property test: for a spread of
// model shapes, encode→decode must reproduce the frozen trie bit-identically
// (reflect.DeepEqual over the full arena representation), consume exactly
// EncodedSize bytes, and answer queries identically to the original.
func TestFrozenCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct{ depth, alphabet, words, wordLen int }{
		{0, 1, 1, 1},
		{1, 2, 4, 3},
		{2, 5, 16, 7},
		{2, 24, 128, 7},
		{3, 13, 64, 9},
		{4, 40, 256, 11},
	}
	for _, sh := range shapes {
		f, corpus := randomFrozen(rng, sh.depth, sh.alphabet, sh.words, sh.wordLen)
		enc := f.AppendBinary(nil)
		if len(enc) != f.EncodedSize() {
			t.Errorf("depth=%d alpha=%d: encoded %d bytes, EncodedSize says %d",
				sh.depth, sh.alphabet, len(enc), f.EncodedSize())
		}
		// A non-empty tail must be handed back untouched.
		tail := []byte{0xde, 0xad, 0xbe, 0xef}
		dec, rest, err := DecodeFrozen(append(append([]byte(nil), enc...), tail...))
		if err != nil {
			t.Fatalf("depth=%d alpha=%d: decode: %v", sh.depth, sh.alphabet, err)
		}
		if !reflect.DeepEqual(rest, tail) {
			t.Fatalf("depth=%d alpha=%d: remainder %v, want %v", sh.depth, sh.alphabet, rest, tail)
		}
		if !reflect.DeepEqual(f, dec) {
			t.Fatalf("depth=%d alpha=%d: decoded trie is not bit-identical", sh.depth, sh.alphabet)
		}
		// DeepEqual already implies this, but the query path is the property
		// that matters downstream: spot-check it directly.
		q, dq := f.NewQuerier(), dec.NewQuerier()
		for _, w := range corpus[:min(len(corpus), 16)] {
			if a, b := q.LogProbSeq(w), dq.LogProbSeq(w); a != b {
				t.Fatalf("depth=%d alpha=%d: LogProbSeq diverged: %v vs %v", sh.depth, sh.alphabet, a, b)
			}
		}
	}
}

// TestDecodeFrozenRejectsTruncation feeds every proper prefix of a valid
// encoding to the decoder: all must error, none may panic.
func TestDecodeFrozenRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f, _ := randomFrozen(rng, 2, 10, 32, 7)
	enc := f.AppendBinary(nil)
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeFrozen(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(enc))
		}
	}
}

// TestDecodeFrozenRejectsCorruption flips each byte of a valid encoding in
// turn. The decoder must never panic; structural corruption must be caught
// by validation (a flip inside a count or arena may still decode — but then
// it decoded into a trie whose invariants all hold, which is safe).
func TestDecodeFrozenRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f, _ := randomFrozen(rng, 2, 10, 32, 7)
	enc := f.AppendBinary(nil)
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		dec, _, err := DecodeFrozen(mut)
		if err != nil {
			continue
		}
		// Accepted: the decoded trie must still satisfy every invariant the
		// query kernel relies on, so querying it cannot fault.
		if verr := dec.validate(); verr != nil {
			t.Fatalf("byte %d: decoder accepted a trie that fails validation: %v", i, verr)
		}
	}
	// Header-level corruption that must be rejected outright.
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if _, _, err := DecodeFrozen(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// A huge node count must fail the size check, not allocate.
	huge := append([]byte(nil), enc...)
	huge[16], huge[17], huge[18], huge[19] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeFrozen(huge); err == nil {
		t.Error("oversized node count accepted")
	}
}
