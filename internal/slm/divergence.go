package slm

import (
	"fmt"
	"math"
)

// Metric selects the pairwise type-distance criterion (§4.2.1 and the
// "Other Metrics" discussion of §6.4). The paper's algorithm only needs a
// ranking over candidate parents (Remark 4.1), so any of these can drive
// the arborescence; DKL is the one that works.
type Metric int

// Metrics.
const (
	// MetricKL is the Kullback–Leibler divergence D_KL(A || B), the paper's
	// choice: asymmetric, matching the inherently asymmetric parent/child
	// relation.
	MetricKL Metric = iota
	// MetricJSDivergence is the symmetric Jensen–Shannon divergence.
	MetricJSDivergence
	// MetricJSDistance is sqrt(JS-divergence), a true metric.
	MetricJSDistance
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricKL:
		return "DKL"
	case MetricJSDivergence:
		return "JS-divergence"
	case MetricJSDistance:
		return "JS-distance"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// wordDist evaluates the model on every word and normalizes to a proper
// distribution over the word set, so the divergences below are divergences
// between distributions (the relative-entropy reading of §4.2.1: popular
// behaviours weigh more than rare ones).
func wordDist(m *Model, words [][]int) []float64 {
	ps := make([]float64, len(words))
	// Work from log-probabilities with a max-shift for numerical stability.
	maxLp := math.Inf(-1)
	lps := make([]float64, len(words))
	for i, w := range words {
		lps[i] = m.LogProbSeq(w)
		if lps[i] > maxLp {
			maxLp = lps[i]
		}
	}
	sum := 0.0
	for i := range words {
		ps[i] = math.Exp(lps[i] - maxLp)
		sum += ps[i]
	}
	if sum == 0 {
		for i := range ps {
			ps[i] = 1 / float64(len(ps))
		}
		return ps
	}
	for i := range ps {
		ps[i] /= sum
	}
	return ps
}

// KL returns D_KL(A || B) measured over the word set W:
//
//	D_KL(A||B) = sum_{w in W} Pr(A_w) ln( Pr(A_w) / Pr(B_w) )
//
// Words are sequences over the shared alphabet. Both models must have the
// same alphabet.
func KL(a, b *Model, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	pa := wordDist(a, words)
	pb := wordDist(b, words)
	d := 0.0
	for i := range words {
		if pa[i] <= 0 {
			continue
		}
		q := pb[i]
		if q <= 0 {
			q = 1e-300
		}
		d += pa[i] * math.Log(pa[i]/q)
	}
	return d
}

// JSDivergence returns the Jensen–Shannon divergence between the two models
// over the word set.
func JSDivergence(a, b *Model, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	pa := wordDist(a, words)
	pb := wordDist(b, words)
	d := 0.0
	for i := range words {
		m := (pa[i] + pb[i]) / 2
		if m <= 0 {
			continue
		}
		if pa[i] > 0 {
			d += 0.5 * pa[i] * math.Log(pa[i]/m)
		}
		if pb[i] > 0 {
			d += 0.5 * pb[i] * math.Log(pb[i]/m)
		}
	}
	return d
}

// JSDistance returns sqrt(JSDivergence), which satisfies the triangle
// inequality.
func JSDistance(a, b *Model, words [][]int) float64 {
	return math.Sqrt(JSDivergence(a, b, words))
}

// Distance dispatches on the metric.
func Distance(metric Metric, a, b *Model, words [][]int) float64 {
	switch metric {
	case MetricJSDivergence:
		return JSDivergence(a, b, words)
	case MetricJSDistance:
		return JSDistance(a, b, words)
	default:
		return KL(a, b, words)
	}
}
