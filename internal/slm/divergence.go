package slm

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/obs"
)

// Metric selects the pairwise type-distance criterion (§4.2.1 and the
// "Other Metrics" discussion of §6.4). The paper's algorithm only needs a
// ranking over candidate parents (Remark 4.1), so any of these can drive
// the arborescence; DKL is the one that works.
type Metric int

// Metrics.
const (
	// MetricKL is the Kullback–Leibler divergence D_KL(A || B), the paper's
	// choice: asymmetric, matching the inherently asymmetric parent/child
	// relation.
	MetricKL Metric = iota
	// MetricJSDivergence is the symmetric Jensen–Shannon divergence.
	MetricJSDivergence
	// MetricJSDistance is sqrt(JS-divergence), a true metric.
	MetricJSDistance
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricKL:
		return "DKL"
	case MetricJSDivergence:
		return "JS-divergence"
	case MetricJSDistance:
		return "JS-distance"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// WordScorer is a trained PPM-C model viewed as a batch scorer: it fills
// out (reused when capacity allows, else reallocated) with ln Pr(w) for
// every word and returns it. Both the map-based training representation
// (*Model) and its frozen flat-trie form (*Frozen) implement it, and both
// produce bit-identical scores, so every divergence below accepts either.
type WordScorer interface {
	LogProbWords(words [][]int, out []float64) []float64
}

// wordDist evaluates the model on every word and normalizes to a proper
// distribution over the word set, so the divergences below are divergences
// between distributions (the relative-entropy reading of §4.2.1: popular
// behaviours weigh more than rare ones). The returned distribution is a
// fresh slice (callers retain it); the intermediate log-probability
// buffer and the frozen-query scratch come from s when non-nil, so
// repeated derivations allocate nothing beyond the retained result.
func wordDist(m WordScorer, words [][]int, s *Scratch) []float64 {
	// Work from log-probabilities with a max-shift for numerical stability.
	var lps []float64
	if s != nil {
		lps = s.logProbWords(m, words)
	} else {
		lps = m.LogProbWords(words, nil)
	}
	return distFromLogProbs(lps)
}

// distFromLogProbs normalizes a log-probability vector into a proper
// distribution (max-shift, exponentiate, normalize; uniform fallback when
// every probability underflows to zero).
func distFromLogProbs(lps []float64) []float64 {
	ps := make([]float64, len(lps))
	maxLp := math.Inf(-1)
	for _, lp := range lps {
		if lp > maxLp {
			maxLp = lp
		}
	}
	sum := 0.0
	for i := range lps {
		ps[i] = math.Exp(lps[i] - maxLp)
		sum += ps[i]
	}
	if sum == 0 {
		for i := range ps {
			ps[i] = 1 / float64(len(ps))
		}
		return ps
	}
	for i := range ps {
		ps[i] /= sum
	}
	return ps
}

// distEntry is one cached derivation: the normalized distribution plus two
// scalars the sparse sweep's root-weight bound consumes. selfEnt is
// Σ_{p>0} p·ln p (the negated entropy of P) and logMin is ln of the
// smallest probability klDist would divide by (actual minimum when
// positive, the kernel's 1e-300 floor where the distribution has zeros).
// For any two entries, D_KL(P‖Q) = Σ p·ln p − Σ p·ln q' ≤ selfEnt(P) −
// logMin(Q), since Σ_{p>0} p = 1 — a per-pair bound in O(1) once the
// distributions are derived.
type distEntry struct {
	ps      []float64
	selfEnt float64
	logMin  float64
}

// newDistEntry derives a cache entry from a log-probability vector.
func newDistEntry(lps []float64) *distEntry {
	e := &distEntry{ps: distFromLogProbs(lps)}
	minQ := math.Inf(1)
	for _, p := range e.ps {
		if p > 0 {
			e.selfEnt += p * math.Log(p)
			if p < minQ {
				minQ = p
			}
		} else if minQ > 1e-300 {
			minQ = 1e-300
		}
	}
	if len(e.ps) == 0 {
		e.logMin = 0
		return e
	}
	e.logMin = math.Log(minQ)
	return e
}

// WordDistribution returns the model's normalized distribution over the
// word set — the Pr(M_w) vector of §4.2.1 that the divergences reduce.
// Exported for benchmarks and diagnostics; builder and frozen scorers
// return bit-identical vectors.
func WordDistribution(m WordScorer, words [][]int) []float64 {
	return wordDist(m, words, nil)
}

// klDist is the divergence kernel over two already-derived distributions.
func klDist(pa, pb []float64) float64 {
	d := 0.0
	for i := range pa {
		if pa[i] <= 0 {
			continue
		}
		q := pb[i]
		if q <= 0 {
			q = 1e-300
		}
		d += pa[i] * math.Log(pa[i]/q)
	}
	return d
}

// jsDist is the Jensen–Shannon kernel over two distributions.
func jsDist(pa, pb []float64) float64 {
	d := 0.0
	for i := range pa {
		m := (pa[i] + pb[i]) / 2
		if m <= 0 {
			continue
		}
		if pa[i] > 0 {
			d += 0.5 * pa[i] * math.Log(pa[i]/m)
		}
		if pb[i] > 0 {
			d += 0.5 * pb[i] * math.Log(pb[i]/m)
		}
	}
	return d
}

// KL returns D_KL(A || B) measured over the word set W:
//
//	D_KL(A||B) = sum_{w in W} Pr(A_w) ln( Pr(A_w) / Pr(B_w) )
//
// Words are sequences over the shared alphabet. Both models must have the
// same alphabet.
func KL(a, b WordScorer, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	return klDist(wordDist(a, words, nil), wordDist(b, words, nil))
}

// JSDivergence returns the Jensen–Shannon divergence between the two models
// over the word set.
func JSDivergence(a, b WordScorer, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	return jsDist(wordDist(a, words, nil), wordDist(b, words, nil))
}

// JSDistance returns sqrt(JSDivergence), which satisfies the triangle
// inequality.
func JSDistance(a, b WordScorer, words [][]int) float64 {
	return math.Sqrt(JSDivergence(a, b, words))
}

// Distance dispatches on the metric.
func Distance(metric Metric, a, b WordScorer, words [][]int) float64 {
	switch metric {
	case MetricJSDivergence:
		return JSDivergence(a, b, words)
	case MetricJSDistance:
		return JSDistance(a, b, words)
	default:
		return KL(a, b, words)
	}
}

// DistanceCalculator computes pairwise model distances over one fixed word
// set, caching each model's word distribution so it is derived once per
// (model, word set) instead of once per pair. Deriving a distribution costs
// one model evaluation per word (the expensive part: PPM-C backoff per
// symbol); the divergence itself is a cheap reduction over the two cached
// vectors. A family of n types therefore pays n evaluations instead of the
// 2·n·(n-1) a naive pairwise sweep performs.
//
// A calculator is safe for concurrent use: distributions may be warmed from
// several goroutines (Precompute) and Distance may be called concurrently.
// Results are bit-identical to the package-level Distance function — the
// same kernels run over the same distributions in the same order. Scorers
// are cached by identity, so pass frozen models (the pipeline does) or
// builders consistently, not a mix of both forms of one model.
type DistanceCalculator struct {
	metric  Metric
	words   [][]int
	scratch *ScratchPool
	obs     *obs.Bus

	mu    sync.Mutex
	cache map[WordScorer]*distEntry
}

// NewDistanceCalculator returns a calculator for the given metric and word
// set. The word set must not be mutated afterwards. Derivations draw
// their query scratch from the process-wide shared pool; SetScratchPool
// substitutes an explicit one (the corpus engine shares one pool across
// every image of a run).
func NewDistanceCalculator(metric Metric, words [][]int) *DistanceCalculator {
	return &DistanceCalculator{
		metric:  metric,
		words:   words,
		scratch: sharedScratch,
		cache:   make(map[WordScorer]*distEntry),
	}
}

// Reserve sizes the distribution cache for n models, avoiding growth
// rehashes during the per-family precompute fan-out. A no-op once any
// distribution has been cached.
func (c *DistanceCalculator) Reserve(n int) {
	c.mu.Lock()
	if len(c.cache) == 0 && n > 0 {
		c.cache = make(map[WordScorer]*distEntry, n)
	}
	c.mu.Unlock()
}

// SetScratchPool replaces the pool the calculator's derivations borrow
// query scratch from. Call before the first Precompute/Distance; a nil
// pool restores the process-wide default.
func (c *DistanceCalculator) SetScratchPool(sp *ScratchPool) {
	if sp == nil {
		sp = sharedScratch
	}
	c.scratch = sp
}

// SetObserver attaches an observer bus: every distribution lookup is then
// attributed as a memo hit (cached vector reused) or miss (derivation
// actually ran). A nil bus (the default) costs nothing.
func (c *DistanceCalculator) SetObserver(b *obs.Bus) { c.obs = b }

// Words returns the word set the calculator measures over.
func (c *DistanceCalculator) Words() [][]int { return c.words }

// Precompute derives and caches the word distribution of m. Calling it
// ahead of the pairwise sweep (possibly from several goroutines, one model
// each) makes every subsequent Distance a pure cache hit.
func (c *DistanceCalculator) Precompute(m WordScorer) { c.distribution(m) }

// PrecomputeBatch derives and caches the distributions of every model in
// ms. Uncached frozen models are scored together by the blocked
// multi-model batch kernel (each word block visits every model of the
// batch while its symbol data is hot — see Scratch.logProbWordsBatch);
// other scorer kinds fall back to one single-model derivation each.
// Already-cached models cost one lookup. The cached entries are
// bit-identical to Precompute's: the batch kernel reorders only the
// (model, word) loop.
func (c *DistanceCalculator) PrecomputeBatch(ms []WordScorer) {
	var todo []*Frozen
	var other []WordScorer
	c.mu.Lock()
	for _, m := range ms {
		if _, ok := c.cache[m]; ok {
			c.obs.Add(obs.CntDistMemoHits, 1)
			continue
		}
		if f, isFrozen := m.(*Frozen); isFrozen {
			todo = append(todo, f)
		} else {
			other = append(other, m)
		}
	}
	c.mu.Unlock()
	for _, m := range other {
		c.distribution(m)
	}
	if len(todo) == 0 {
		return
	}
	c.obs.Add(obs.CntDistMemoMisses, int64(len(todo)))
	s := c.scratch.Get()
	rows := s.logProbWordsBatch(todo, c.words)
	entries := make([]*distEntry, len(todo))
	for i := range todo {
		entries[i] = newDistEntry(rows[i])
	}
	c.scratch.Put(s)
	c.mu.Lock()
	for i, f := range todo {
		// A concurrent derivation of the same model wins ties, matching
		// distribution's keep-first discipline.
		if _, ok := c.cache[f]; !ok {
			c.cache[f] = entries[i]
		}
	}
	c.mu.Unlock()
}

// PairBound returns an upper bound on the largest pairwise distance among
// distinct models of ms over the calculator's word set, at O(|ms|) cost
// given cached distributions (deriving any that are missing). The sparse
// sweep uses it to weight virtual-root edges without materializing the
// dense matrix: the Jensen–Shannon metrics are bounded by the constants
// ln 2 and √(ln 2), and D_KL(P‖Q) ≤ selfEnt(P) − logMin(Q) (see
// distEntry), maximized over ordered pairs by combining the two best
// per-model terms with an index guard. The scan order is ms order, so the
// bound is deterministic for a fixed ms.
func (c *DistanceCalculator) PairBound(ms []WordScorer) float64 {
	if len(c.words) == 0 || len(ms) < 2 {
		return 0
	}
	switch c.metric {
	case MetricJSDivergence:
		return math.Ln2
	case MetricJSDistance:
		return math.Sqrt(math.Ln2)
	}
	// KL: max over i≠j of selfEnt_i − logMin_j. The maximum is separable
	// except when one model holds both best terms, so tracking the top two
	// of each side suffices.
	bestA, secondA := math.Inf(-1), math.Inf(-1)
	bestB, secondB := math.Inf(1), math.Inf(1)
	bestAi, bestBi := -1, -1
	for i, m := range ms {
		e := c.distribution(m)
		if e.selfEnt > bestA {
			secondA = bestA
			bestA, bestAi = e.selfEnt, i
		} else if e.selfEnt > secondA {
			secondA = e.selfEnt
		}
		if e.logMin < bestB {
			secondB = bestB
			bestB, bestBi = e.logMin, i
		} else if e.logMin < secondB {
			secondB = e.logMin
		}
	}
	if bestAi != bestBi {
		return bestA - bestB
	}
	return max(bestA-secondB, secondA-bestB)
}

// distribution returns m's cached entry, deriving it on miss. The
// derivation runs outside the lock; if two goroutines race on the same
// model the loser discards its (identical) result.
func (c *DistanceCalculator) distribution(m WordScorer) *distEntry {
	c.mu.Lock()
	e, ok := c.cache[m]
	c.mu.Unlock()
	if ok {
		c.obs.Add(obs.CntDistMemoHits, 1)
		return e
	}
	c.obs.Add(obs.CntDistMemoMisses, 1)
	s := c.scratch.Get()
	e = newDistEntry(s.logProbWords(m, c.words))
	c.scratch.Put(s)
	c.mu.Lock()
	if prev, ok := c.cache[m]; ok {
		e = prev
	} else {
		c.cache[m] = e
	}
	c.mu.Unlock()
	return e
}

// Distance returns the metric distance from a to b over the calculator's
// word set; it equals Distance(metric, a, b, words).
func (c *DistanceCalculator) Distance(a, b WordScorer) float64 {
	if len(c.words) == 0 {
		return 0
	}
	pa, pb := c.distribution(a).ps, c.distribution(b).ps
	switch c.metric {
	case MetricJSDivergence:
		return jsDist(pa, pb)
	case MetricJSDistance:
		return math.Sqrt(jsDist(pa, pb))
	default:
		return klDist(pa, pb)
	}
}
