package slm

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/obs"
)

// Metric selects the pairwise type-distance criterion (§4.2.1 and the
// "Other Metrics" discussion of §6.4). The paper's algorithm only needs a
// ranking over candidate parents (Remark 4.1), so any of these can drive
// the arborescence; DKL is the one that works.
type Metric int

// Metrics.
const (
	// MetricKL is the Kullback–Leibler divergence D_KL(A || B), the paper's
	// choice: asymmetric, matching the inherently asymmetric parent/child
	// relation.
	MetricKL Metric = iota
	// MetricJSDivergence is the symmetric Jensen–Shannon divergence.
	MetricJSDivergence
	// MetricJSDistance is sqrt(JS-divergence), a true metric.
	MetricJSDistance
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricKL:
		return "DKL"
	case MetricJSDivergence:
		return "JS-divergence"
	case MetricJSDistance:
		return "JS-distance"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// WordScorer is a trained PPM-C model viewed as a batch scorer: it fills
// out (reused when capacity allows, else reallocated) with ln Pr(w) for
// every word and returns it. Both the map-based training representation
// (*Model) and its frozen flat-trie form (*Frozen) implement it, and both
// produce bit-identical scores, so every divergence below accepts either.
type WordScorer interface {
	LogProbWords(words [][]int, out []float64) []float64
}

// wordDist evaluates the model on every word and normalizes to a proper
// distribution over the word set, so the divergences below are divergences
// between distributions (the relative-entropy reading of §4.2.1: popular
// behaviours weigh more than rare ones). The returned distribution is a
// fresh slice (callers retain it); the intermediate log-probability
// buffer and the frozen-query scratch come from s when non-nil, so
// repeated derivations allocate nothing beyond the retained result.
func wordDist(m WordScorer, words [][]int, s *Scratch) []float64 {
	ps := make([]float64, len(words))
	// Work from log-probabilities with a max-shift for numerical stability.
	var lps []float64
	if s != nil {
		lps = s.logProbWords(m, words)
	} else {
		lps = m.LogProbWords(words, nil)
	}
	maxLp := math.Inf(-1)
	for _, lp := range lps {
		if lp > maxLp {
			maxLp = lp
		}
	}
	sum := 0.0
	for i := range words {
		ps[i] = math.Exp(lps[i] - maxLp)
		sum += ps[i]
	}
	if sum == 0 {
		for i := range ps {
			ps[i] = 1 / float64(len(ps))
		}
		return ps
	}
	for i := range ps {
		ps[i] /= sum
	}
	return ps
}

// WordDistribution returns the model's normalized distribution over the
// word set — the Pr(M_w) vector of §4.2.1 that the divergences reduce.
// Exported for benchmarks and diagnostics; builder and frozen scorers
// return bit-identical vectors.
func WordDistribution(m WordScorer, words [][]int) []float64 {
	return wordDist(m, words, nil)
}

// klDist is the divergence kernel over two already-derived distributions.
func klDist(pa, pb []float64) float64 {
	d := 0.0
	for i := range pa {
		if pa[i] <= 0 {
			continue
		}
		q := pb[i]
		if q <= 0 {
			q = 1e-300
		}
		d += pa[i] * math.Log(pa[i]/q)
	}
	return d
}

// jsDist is the Jensen–Shannon kernel over two distributions.
func jsDist(pa, pb []float64) float64 {
	d := 0.0
	for i := range pa {
		m := (pa[i] + pb[i]) / 2
		if m <= 0 {
			continue
		}
		if pa[i] > 0 {
			d += 0.5 * pa[i] * math.Log(pa[i]/m)
		}
		if pb[i] > 0 {
			d += 0.5 * pb[i] * math.Log(pb[i]/m)
		}
	}
	return d
}

// KL returns D_KL(A || B) measured over the word set W:
//
//	D_KL(A||B) = sum_{w in W} Pr(A_w) ln( Pr(A_w) / Pr(B_w) )
//
// Words are sequences over the shared alphabet. Both models must have the
// same alphabet.
func KL(a, b WordScorer, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	return klDist(wordDist(a, words, nil), wordDist(b, words, nil))
}

// JSDivergence returns the Jensen–Shannon divergence between the two models
// over the word set.
func JSDivergence(a, b WordScorer, words [][]int) float64 {
	if len(words) == 0 {
		return 0
	}
	return jsDist(wordDist(a, words, nil), wordDist(b, words, nil))
}

// JSDistance returns sqrt(JSDivergence), which satisfies the triangle
// inequality.
func JSDistance(a, b WordScorer, words [][]int) float64 {
	return math.Sqrt(JSDivergence(a, b, words))
}

// Distance dispatches on the metric.
func Distance(metric Metric, a, b WordScorer, words [][]int) float64 {
	switch metric {
	case MetricJSDivergence:
		return JSDivergence(a, b, words)
	case MetricJSDistance:
		return JSDistance(a, b, words)
	default:
		return KL(a, b, words)
	}
}

// DistanceCalculator computes pairwise model distances over one fixed word
// set, caching each model's word distribution so it is derived once per
// (model, word set) instead of once per pair. Deriving a distribution costs
// one model evaluation per word (the expensive part: PPM-C backoff per
// symbol); the divergence itself is a cheap reduction over the two cached
// vectors. A family of n types therefore pays n evaluations instead of the
// 2·n·(n-1) a naive pairwise sweep performs.
//
// A calculator is safe for concurrent use: distributions may be warmed from
// several goroutines (Precompute) and Distance may be called concurrently.
// Results are bit-identical to the package-level Distance function — the
// same kernels run over the same distributions in the same order. Scorers
// are cached by identity, so pass frozen models (the pipeline does) or
// builders consistently, not a mix of both forms of one model.
type DistanceCalculator struct {
	metric  Metric
	words   [][]int
	scratch *ScratchPool
	obs     *obs.Bus

	mu    sync.Mutex
	cache map[WordScorer][]float64
}

// NewDistanceCalculator returns a calculator for the given metric and word
// set. The word set must not be mutated afterwards. Derivations draw
// their query scratch from the process-wide shared pool; SetScratchPool
// substitutes an explicit one (the corpus engine shares one pool across
// every image of a run).
func NewDistanceCalculator(metric Metric, words [][]int) *DistanceCalculator {
	return &DistanceCalculator{
		metric:  metric,
		words:   words,
		scratch: sharedScratch,
		cache:   make(map[WordScorer][]float64),
	}
}

// SetScratchPool replaces the pool the calculator's derivations borrow
// query scratch from. Call before the first Precompute/Distance; a nil
// pool restores the process-wide default.
func (c *DistanceCalculator) SetScratchPool(sp *ScratchPool) {
	if sp == nil {
		sp = sharedScratch
	}
	c.scratch = sp
}

// SetObserver attaches an observer bus: every distribution lookup is then
// attributed as a memo hit (cached vector reused) or miss (derivation
// actually ran). A nil bus (the default) costs nothing.
func (c *DistanceCalculator) SetObserver(b *obs.Bus) { c.obs = b }

// Words returns the word set the calculator measures over.
func (c *DistanceCalculator) Words() [][]int { return c.words }

// Precompute derives and caches the word distribution of m. Calling it
// ahead of the pairwise sweep (possibly from several goroutines, one model
// each) makes every subsequent Distance a pure cache hit.
func (c *DistanceCalculator) Precompute(m WordScorer) { c.distribution(m) }

// distribution returns m's cached word distribution, deriving it on miss.
// The derivation runs outside the lock; if two goroutines race on the same
// model the loser discards its (identical) result.
func (c *DistanceCalculator) distribution(m WordScorer) []float64 {
	c.mu.Lock()
	d, ok := c.cache[m]
	c.mu.Unlock()
	if ok {
		c.obs.Add(obs.CntDistMemoHits, 1)
		return d
	}
	c.obs.Add(obs.CntDistMemoMisses, 1)
	s := c.scratch.Get()
	d = wordDist(m, c.words, s)
	c.scratch.Put(s)
	c.mu.Lock()
	if prev, ok := c.cache[m]; ok {
		d = prev
	} else {
		c.cache[m] = d
	}
	c.mu.Unlock()
	return d
}

// Distance returns the metric distance from a to b over the calculator's
// word set; it equals Distance(metric, a, b, words).
func (c *DistanceCalculator) Distance(a, b WordScorer) float64 {
	if len(c.words) == 0 {
		return 0
	}
	pa, pb := c.distribution(a), c.distribution(b)
	switch c.metric {
	case MetricJSDivergence:
		return jsDist(pa, pb)
	case MetricJSDistance:
		return math.Sqrt(jsDist(pa, pb))
	default:
		return klDist(pa, pb)
	}
}
