package slm

import (
	"fmt"
	"strings"
)

// dumper renders the Fig. 8 view of a context trie. Model.Dump and
// Frozen.Dump both drive it, so the two representations are guaranteed
// to print identically. path holds the descent symbols from the root
// (most-recent-first, the trie's storage order) as a shared stack —
// push on descend, pop on return — instead of the old per-node
// prepend-copy (append([]int{s}, ctx...)), which reallocated and copied
// the whole context at every node: O(n·depth) work and garbage on large
// tries.
type dumper struct {
	b      strings.Builder
	path   []int
	syms   []int
	counts []int
}

// line prints one context row from the current path and the sorted
// (syms, counts) of the node. The context displays oldest-first, i.e.
// the reverse of the descent path.
func (d *dumper) line(depth, total int, name func(int) string) {
	d.b.WriteString(strings.Repeat("  ", depth))
	d.b.WriteString("context [")
	if len(d.path) == 0 {
		d.b.WriteString("<root>")
	} else {
		for i := len(d.path) - 1; i >= 0; i-- {
			if i < len(d.path)-1 {
				d.b.WriteString(" ")
			}
			d.b.WriteString(name(d.path[i]))
		}
	}
	d.b.WriteString("]:")
	n := len(d.syms)
	denom := float64(total + n)
	for i, s := range d.syms {
		fmt.Fprintf(&d.b, " %s=%.3f", name(s), float64(d.counts[i])/denom)
	}
	if n > 0 {
		fmt.Fprintf(&d.b, " escape=%.3f", float64(n)/denom)
	}
	d.b.WriteString("\n")
}
