package slm

import (
	"math"
	"sort"
)

// Frozen is an immutable, flat representation of a trained Model, built
// once after training by Model.Freeze. Where the builder trie chases
// map[int]*node pointers, a frozen model is one contiguous node array
// whose per-node symbol counts and children live as sorted spans inside
// two shared backing arenas, so a query touches a handful of adjacent
// cache lines and performs binary searches instead of map lookups. A
// frozen model answers exactly the same queries as its builder —
// bit-identical log-probabilities (guarded by the property tests in
// frozen_test.go) — but never allocates on the query path when driven
// through a Querier.
type Frozen struct {
	depth    int
	alphabet int
	trained  int
	// nodes[0] is the root (the order-0 context).
	nodes []frozenNode
	// syms/counts hold every node's sorted (symbol, count) pairs,
	// concatenated; a node owns syms[symOff : symOff+symN].
	syms   []int32
	counts []int32
	// childSyms/childNodes hold every node's sorted (symbol, child index)
	// pairs, concatenated; a node owns childSyms[childOff : childOff+childN].
	childSyms  []int32
	childNodes []int32
}

// frozenNode is one context of the flat trie: two spans into the shared
// arenas plus the precomputed occurrence total. The distinct-symbol count
// of the context is symN.
type frozenNode struct {
	symOff, symN     int32
	childOff, childN int32
	total            int32
}

// Freeze converts the trained model into its frozen form. The builder is
// left untouched (it remains the mutable training representation); the
// frozen copy shares nothing with it. Nodes are laid out in preorder with
// children visited in ascending symbol order, so freezing is
// deterministic.
func (m *Model) Freeze() *Frozen {
	// Pre-pass: size the arenas exactly.
	var nNodes, nSyms, nKids int
	var count func(n *node)
	count = func(n *node) {
		nNodes++
		nSyms += len(n.counts)
		nKids += len(n.children)
		for _, c := range n.children {
			count(c)
		}
	}
	count(m.root)

	f := &Frozen{
		depth:      m.depth,
		alphabet:   m.alphabet,
		trained:    m.trained,
		nodes:      make([]frozenNode, 0, nNodes),
		syms:       make([]int32, 0, nSyms),
		counts:     make([]int32, 0, nSyms),
		childSyms:  make([]int32, 0, nKids),
		childNodes: make([]int32, 0, nKids),
	}
	var scratch []int
	var freeze func(n *node) int32
	freeze = func(n *node) int32 {
		idx := int32(len(f.nodes))
		fn := frozenNode{
			symOff:   int32(len(f.syms)),
			symN:     int32(len(n.counts)),
			childOff: int32(len(f.childSyms)),
			childN:   int32(len(n.children)),
			total:    int32(n.total),
		}
		f.nodes = append(f.nodes, fn)
		scratch = scratch[:0]
		for s := range n.counts {
			scratch = append(scratch, s)
		}
		sort.Ints(scratch)
		for _, s := range scratch {
			f.syms = append(f.syms, int32(s))
			f.counts = append(f.counts, int32(n.counts[s]))
		}
		scratch = scratch[:0]
		for s := range n.children {
			scratch = append(scratch, s)
		}
		sort.Ints(scratch)
		// Reserve the child span before recursing so it stays contiguous;
		// the recursion appends grandchildren's spans after it.
		kids := make([]int, len(scratch))
		copy(kids, scratch)
		for _, s := range kids {
			f.childSyms = append(f.childSyms, int32(s))
			f.childNodes = append(f.childNodes, 0)
		}
		for i, s := range kids {
			f.childNodes[fn.childOff+int32(i)] = freeze(n.children[s])
		}
		return idx
	}
	freeze(m.root)
	return f
}

// Depth returns the maximum context length D.
func (f *Frozen) Depth() int { return f.depth }

// Alphabet returns the alphabet size.
func (f *Frozen) Alphabet() int { return f.alphabet }

// Trained returns how many sequences the source model was trained on.
func (f *Frozen) Trained() int { return f.trained }

// Nodes returns the number of contexts in the trie (diagnostics).
func (f *Frozen) Nodes() int { return len(f.nodes) }

// child returns the index of node n's child for symbol s, or -1. Spans
// are sorted by symbol; small spans scan linearly (cheaper than binary
// search at trie fan-outs), large ones binary-search.
func (f *Frozen) child(n int32, s int32) int32 {
	fn := &f.nodes[n]
	lo, hi := fn.childOff, fn.childOff+fn.childN
	if fn.childN <= 8 {
		for i := lo; i < hi; i++ {
			if f.childSyms[i] == s {
				return f.childNodes[i]
			}
		}
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := f.childSyms[mid]; {
		case c < s:
			lo = mid + 1
		case c > s:
			hi = mid
		default:
			return f.childNodes[mid]
		}
	}
	return -1
}

// LogProb returns ln Pr(sym | hist); it equals Model.LogProb bit for bit.
// It allocates a one-shot Querier — hot paths should hold a Querier (or
// use LogProbWords) and query through it instead.
func (f *Frozen) LogProb(sym int, hist []int) float64 {
	return f.NewQuerier().LogProb(sym, hist)
}

// Prob returns Pr(sym | hist).
func (f *Frozen) Prob(sym int, hist []int) float64 {
	return math.Exp(f.LogProb(sym, hist))
}

// LogProbSeq returns ln Pr(seq); it equals Model.LogProbSeq bit for bit.
// Like LogProb it allocates a one-shot Querier.
func (f *Frozen) LogProbSeq(seq []int) float64 {
	return f.NewQuerier().LogProbSeq(seq)
}

// LogProbWords scores every word with one scratch Querier (one setup
// allocation for the whole batch, none per word). See WordScorer.
func (f *Frozen) LogProbWords(words [][]int, out []float64) []float64 {
	return f.NewQuerier().LogProbWords(words, out)
}

// Querier carries the per-query scratch state of a frozen model so the
// hot loop performs zero allocations: an epoch-stamped exclusion array
// sized to the alphabet (clearing it per query is a single counter
// increment, not an O(alphabet) wipe) and the context-node stack. A
// Querier is cheap (one allocation of alphabet uint32s) but not safe for
// concurrent use; give each goroutine its own.
type Querier struct {
	f *Frozen
	// exclEpoch[s] == epoch marks symbol s excluded in the current query.
	exclEpoch []uint32
	epoch     uint32
	// nexcl counts the distinct symbols excluded in the current query.
	nexcl int
	// ctx is the reusable context-node stack (root..deepest).
	ctx []int32
}

// NewQuerier returns fresh scratch state for querying f.
func (f *Frozen) NewQuerier() *Querier {
	return &Querier{
		f:         f,
		exclEpoch: make([]uint32, f.alphabet),
		ctx:       make([]int32, 0, f.depth+1),
	}
}

// Rebind points the querier at another frozen model, reusing its scratch
// buffers when they are large enough (the corpus engine pools queriers
// across analyses this way instead of allocating one per model). Stale
// exclusion stamps in a retained buffer are harmless: every stamp is at
// most the querier's current epoch, and each query runs under a fresh
// epoch, so old stamps can never read as "excluded".
func (q *Querier) Rebind(f *Frozen) {
	q.f = f
	if cap(q.exclEpoch) < f.alphabet {
		q.exclEpoch = make([]uint32, f.alphabet)
		q.epoch = 0
	} else {
		old := len(q.exclEpoch)
		q.exclEpoch = q.exclEpoch[:f.alphabet]
		// Region beyond the previous length may hold stamps that predate
		// an epoch wraparound (the wrap wipe only covers the then-current
		// length); zero is always safe — queries run at epoch >= 1.
		for i := old; i < f.alphabet; i++ {
			q.exclEpoch[i] = 0
		}
	}
	if cap(q.ctx) < f.depth+1 {
		q.ctx = make([]int32, 0, f.depth+1)
	}
}

// Model returns the frozen model this querier scores against.
func (q *Querier) Model() *Frozen { return q.f }

// LogProb returns ln Pr(sym | hist) under PPM-C with the same query-time
// update exclusion as Model.LogProb, allocation-free. The two paths run
// the identical arithmetic in the identical order (integer count sums,
// then one Log per backoff level), so the results are bit-identical.
func (q *Querier) LogProb(sym int, hist []int) float64 {
	f := q.f
	// Context chain root -> deepest context seen in training.
	q.ctx = append(q.ctx[:0], 0)
	n := int32(0)
	for k := 1; k <= f.depth && k <= len(hist); k++ {
		c := hist[len(hist)-k]
		if c < 0 || c >= f.alphabet {
			break // symbol outside the alphabet: no trained context has it
		}
		child := f.child(n, int32(c))
		if child < 0 {
			break
		}
		n = child
		q.ctx = append(q.ctx, n)
	}
	// New exclusion epoch; on uint32 wraparound wipe the stale stamps once.
	q.epoch++
	if q.epoch == 0 {
		for i := range q.exclEpoch {
			q.exclEpoch[i] = 0
		}
		q.epoch = 1
	}
	q.nexcl = 0

	lp := 0.0
	for k := len(q.ctx) - 1; k >= 0; k-- {
		nd := &f.nodes[q.ctx[k]]
		total, distinct := 0, 0
		symCount := -1
		for i := nd.symOff; i < nd.symOff+nd.symN; i++ {
			s := f.syms[i]
			if q.exclEpoch[s] == q.epoch {
				continue
			}
			c := int(f.counts[i])
			total += c
			distinct++
			if int(s) == sym {
				symCount = c
			}
		}
		if distinct == 0 {
			continue // every symbol here already excluded: free backoff
		}
		remaining := f.alphabet - q.nexcl
		denom := float64(total + distinct)
		if distinct >= remaining {
			denom = float64(total)
		}
		if symCount >= 0 {
			return lp + math.Log(float64(symCount)/denom)
		}
		if distinct >= remaining {
			return lp + math.Log(1e-12)
		}
		lp += math.Log(float64(distinct) / denom) // escape
		for i := nd.symOff; i < nd.symOff+nd.symN; i++ {
			if s := f.syms[i]; q.exclEpoch[s] != q.epoch {
				q.exclEpoch[s] = q.epoch
				q.nexcl++
			}
		}
	}
	remaining := f.alphabet - q.nexcl
	if remaining < 1 {
		remaining = 1
	}
	return lp + math.Log(1.0/float64(remaining))
}

// Prob returns Pr(sym | hist).
func (q *Querier) Prob(sym int, hist []int) float64 {
	return math.Exp(q.LogProb(sym, hist))
}

// LogProbSeq returns ln Pr(seq), allocation-free.
func (q *Querier) LogProbSeq(seq []int) float64 {
	lp := 0.0
	for i, sym := range seq {
		lo := i - q.f.depth
		if lo < 0 {
			lo = 0
		}
		lp += q.LogProb(sym, seq[lo:i])
	}
	return lp
}

// LogProbWords evaluates a whole word set in one pass, reusing this
// querier's scratch across words. out is reused when it has capacity for
// len(words) results; with a caller-provided out the call performs zero
// allocations.
func (q *Querier) LogProbWords(words [][]int, out []float64) []float64 {
	if cap(out) < len(words) {
		out = make([]float64, len(words))
	}
	out = out[:len(words)]
	for i, w := range words {
		out[i] = q.LogProbSeq(w)
	}
	return out
}

// Dump renders the frozen trie exactly as Model.Dump renders its builder:
// freezing then dumping yields the identical string.
func (f *Frozen) Dump(name func(int) string) string {
	var d dumper
	var walk func(n int32, depth int)
	walk = func(n int32, depth int) {
		nd := &f.nodes[n]
		d.syms = d.syms[:0]
		d.counts = d.counts[:0]
		for i := nd.symOff; i < nd.symOff+nd.symN; i++ {
			d.syms = append(d.syms, int(f.syms[i]))
			d.counts = append(d.counts, int(f.counts[i]))
		}
		d.line(depth, int(nd.total), name)
		for i := nd.childOff; i < nd.childOff+nd.childN; i++ {
			d.path = append(d.path, int(f.childSyms[i]))
			walk(f.childNodes[i], depth+1)
			d.path = d.path[:len(d.path)-1]
		}
	}
	walk(0, 0)
	return d.b.String()
}
