package slm

import (
	"math"
	"math/rand"
	"testing"
)

// randomModel trains a model on a randomized corpus: random depth,
// alphabet, and training sequences. Roughly half the trials get a small
// alphabet (dense tries, exclusion churn), half a larger one.
func randomModel(rng *rand.Rand) *Model {
	alpha := 2 + rng.Intn(6)
	if rng.Intn(2) == 0 {
		alpha = 2 + rng.Intn(31)
	}
	m := New(rng.Intn(5), alpha)
	for n := rng.Intn(12); n >= 0; n-- {
		seq := make([]int, 1+rng.Intn(12))
		for i := range seq {
			seq[i] = rng.Intn(alpha)
		}
		m.Train(seq)
	}
	return m
}

func randomSeq(rng *rand.Rand, alpha, maxLen int) []int {
	seq := make([]int, rng.Intn(maxLen+1))
	for i := range seq {
		seq[i] = rng.Intn(alpha)
	}
	return seq
}

// sameBits requires exact floating-point equality — the frozen kernel
// must run the identical arithmetic, not merely approximate it.
func sameBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: frozen %v (%#x) != builder %v (%#x)",
			what, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestFrozenBitIdenticalLogProb is the central property test of the
// frozen representation: on randomized corpora, LogProb and LogProbSeq
// through a frozen model are bit-identical to the map-based builder, for
// random symbols and histories (including histories longer than the
// model depth and untrained contexts).
func TestFrozenBitIdenticalLogProb(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		f := m.Freeze()
		if f.Depth() != m.Depth() || f.Alphabet() != m.Alphabet() || f.Trained() != m.Trained() {
			t.Fatalf("trial %d: frozen header diverged", trial)
		}
		q := f.NewQuerier()
		for i := 0; i < 20; i++ {
			sym := rng.Intn(m.Alphabet())
			hist := randomSeq(rng, m.Alphabet(), m.Depth()+3)
			sameBits(t, "LogProb", q.LogProb(sym, hist), m.LogProb(sym, hist))
			sameBits(t, "Frozen.LogProb", f.LogProb(sym, hist), m.LogProb(sym, hist))
		}
		for i := 0; i < 10; i++ {
			seq := randomSeq(rng, m.Alphabet(), 16)
			sameBits(t, "LogProbSeq", q.LogProbSeq(seq), m.LogProbSeq(seq))
		}
	}
}

// TestFrozenBitIdenticalDistances: word distributions and every metric
// computed over frozen models equal the builder results bit for bit, both
// through the package-level functions and through a DistanceCalculator
// keyed by frozen scorers.
func TestFrozenBitIdenticalDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		alpha := 2 + rng.Intn(10)
		a, b := New(2, alpha), New(2, alpha)
		for n := 0; n < 6; n++ {
			a.Train(randomSeq(rng, alpha, 10))
			b.Train(randomSeq(rng, alpha, 10))
		}
		words := make([][]int, 8)
		for i := range words {
			words[i] = randomSeq(rng, alpha, 8)
		}
		fa, fb := a.Freeze(), b.Freeze()

		da := WordDistribution(a, words)
		dfa := WordDistribution(fa, words)
		for i := range da {
			sameBits(t, "WordDistribution", dfa[i], da[i])
		}
		for _, metric := range []Metric{MetricKL, MetricJSDivergence, MetricJSDistance} {
			sameBits(t, metric.String(),
				Distance(metric, fa, fb, words), Distance(metric, a, b, words))
			calc := NewDistanceCalculator(metric, words)
			sameBits(t, metric.String()+" calculator",
				calc.Distance(fa, fb), Distance(metric, a, b, words))
			sameBits(t, metric.String()+" calculator rev",
				calc.Distance(fb, fa), Distance(metric, b, a, words))
		}
	}
}

// TestFrozenDumpIdentical: freezing preserves the Fig. 8 rendering
// exactly, including untrained models and deep tries.
func TestFrozenDumpIdentical(t *testing.T) {
	name := func(s int) string { return string(rune('a' + s%26)) }
	rng := rand.New(rand.NewSource(3))
	if got, want := New(2, 4).Freeze().Dump(name), New(2, 4).Dump(name); got != want {
		t.Fatalf("untrained dump diverged:\n%q\n%q", got, want)
	}
	for trial := 0; trial < 40; trial++ {
		m := randomModel(rng)
		if got, want := m.Freeze().Dump(name), m.Dump(name); got != want {
			t.Fatalf("trial %d: dump diverged:\nfrozen:\n%s\nbuilder:\n%s", trial, got, want)
		}
	}
}

// TestFrozenQueryAllocs pins the tentpole guarantee: the frozen query
// path — LogProb, LogProbSeq, and a batched LogProbWords into a
// caller-provided buffer — performs zero allocations per operation.
func TestFrozenQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation may allocate; alloc counts are asserted in the non-race run")
	}
	m := New(2, 24)
	rng := rand.New(rand.NewSource(9))
	for n := 0; n < 64; n++ {
		m.Train(randomSeq(rng, 24, 7))
	}
	f := m.Freeze()
	q := f.NewQuerier()
	hist := []int{3, 5}
	seq := []int{1, 2, 3, 4, 5, 6, 7}
	words := make([][]int, 32)
	for i := range words {
		words[i] = randomSeq(rng, 24, 7)
	}
	out := make([]float64, len(words))

	if n := testing.AllocsPerRun(100, func() { q.LogProb(4, hist) }); n != 0 {
		t.Errorf("Querier.LogProb allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { q.LogProbSeq(seq) }); n != 0 {
		t.Errorf("Querier.LogProbSeq allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { q.LogProbWords(words, out) }); n != 0 {
		t.Errorf("Querier.LogProbWords allocates %v per op, want 0", n)
	}

	// The memoized distance path: once a calculator's distributions are
	// warm, Distance is a pure reduction over the cached vectors — zero
	// allocations per call (the corpus engine leans on this when sweeping
	// many images through shared calculators).
	m2 := New(2, 24)
	for n := 0; n < 64; n++ {
		m2.Train(randomSeq(rng, 24, 7))
	}
	f2 := m2.Freeze()
	calc := NewDistanceCalculator(MetricKL, words)
	calc.Precompute(f)
	calc.Precompute(f2)
	if n := testing.AllocsPerRun(100, func() { calc.Distance(f, f2) }); n != 0 {
		t.Errorf("warm DistanceCalculator.Distance allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { calc.Precompute(f) }); n != 0 {
		t.Errorf("warm DistanceCalculator.Precompute allocates %v per op, want 0", n)
	}
}

// TestQuerierRebind: a querier rebound across models (the pooled corpus
// scratch path) answers bit-identically to a fresh querier per model,
// including when the new alphabet is smaller, equal, or larger than the
// buffers it inherited.
func TestQuerierRebind(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := make([]*Model, 12)
	for i := range models {
		models[i] = randomModel(rng)
	}
	var q *Querier
	for trial := 0; trial < 60; trial++ {
		m := models[rng.Intn(len(models))]
		f := m.Freeze()
		if q == nil {
			q = f.NewQuerier()
		} else {
			q.Rebind(f)
		}
		for i := 0; i < 8; i++ {
			sym := rng.Intn(m.Alphabet())
			hist := randomSeq(rng, m.Alphabet(), m.Depth()+2)
			sameBits(t, "rebound LogProb", q.LogProb(sym, hist), m.LogProb(sym, hist))
		}
	}
}

// TestQuerierRebindAfterWraparound: growing a rebound querier's exclusion
// buffer must not resurrect stamps written before an epoch wraparound.
func TestQuerierRebindAfterWraparound(t *testing.T) {
	small := New(1, 4)
	small.Train([]int{0, 1, 2, 3})
	big := New(1, 16)
	big.Train([]int{0, 5, 10, 15})
	q := big.Freeze().NewQuerier()
	for i := range q.exclEpoch {
		q.exclEpoch[i] = math.MaxUint32 // poison the wide region pre-wrap
	}
	q.Rebind(small.Freeze())
	q.epoch = math.MaxUint32 - 1 // wrap imminent; wipe covers only len 4
	_ = q.LogProb(0, nil)
	_ = q.LogProb(0, nil) // wraps; exclEpoch[0:4) wiped, epoch restarts
	fb := big.Freeze()
	q.Rebind(fb)
	for sym := 0; sym < 16; sym++ {
		sameBits(t, "post-wrap rebind", q.LogProb(sym, []int{5}), big.LogProb(sym, []int{5}))
	}
}

// TestQuerierEpochWraparound: a querier whose epoch counter wraps must
// wipe its stale exclusion stamps instead of treating them as current.
func TestQuerierEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomModel(rng)
	f := m.Freeze()
	q := f.NewQuerier()
	q.epoch = math.MaxUint32 - 3
	for i := range q.exclEpoch {
		q.exclEpoch[i] = q.epoch // poison: everything "excluded" pre-wrap
	}
	for i := 0; i < 10; i++ {
		sym := rng.Intn(m.Alphabet())
		hist := randomSeq(rng, m.Alphabet(), m.Depth()+2)
		sameBits(t, "post-wrap LogProb", q.LogProb(sym, hist), m.LogProb(sym, hist))
	}
}

// TestFrozenOutOfAlphabetHistory: history symbols outside the alphabet
// cannot match any trained context; both representations fall back to the
// shorter context chain identically.
func TestFrozenOutOfAlphabetHistory(t *testing.T) {
	m := New(2, 4)
	m.Train([]int{0, 1, 2, 3, 0, 1})
	f := m.Freeze()
	q := f.NewQuerier()
	for _, hist := range [][]int{{-1}, {99}, {0, -5}, {1, 99, 2}} {
		for sym := 0; sym < 4; sym++ {
			sameBits(t, "out-of-alphabet hist", q.LogProb(sym, hist), m.LogProb(sym, hist))
		}
	}
}

// TestLogProbWordsReusesBuffer: the batched API writes into the provided
// buffer when it has capacity and allocates a fresh one otherwise.
func TestLogProbWordsReusesBuffer(t *testing.T) {
	m := New(2, 4)
	m.Train([]int{0, 1, 2, 3})
	words := [][]int{{0, 1}, {2, 3}, {1}}
	buf := make([]float64, 8)
	got := m.Freeze().LogProbWords(words, buf)
	if len(got) != len(words) || &got[0] != &buf[0] {
		t.Errorf("LogProbWords did not reuse the provided buffer")
	}
	short := m.LogProbWords(words, nil)
	if len(short) != len(words) {
		t.Errorf("LogProbWords(nil) returned %d results, want %d", len(short), len(words))
	}
	for i := range got {
		sameBits(t, "buffer reuse", got[i], short[i])
	}
}
