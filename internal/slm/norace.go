//go:build !race

package slm

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
