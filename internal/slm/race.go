//go:build race

package slm

// raceEnabled reports whether the race detector instruments this build.
// The frozen-path alloc assertions (testing.AllocsPerRun == 0) are skipped
// under -race because instrumentation may allocate; the property tests
// themselves still run.
const raceEnabled = true
