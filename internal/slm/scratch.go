package slm

import "sync"

// Scratch bundles the reusable query-side buffers one goroutine needs to
// derive word distributions: a rebindable Querier (the allocation-free
// frozen-trie query kernel) and the intermediate log-probability buffer,
// plus the multi-model state of the blocked batch kernel (one querier and
// one log-probability row per model of the current batch). A Scratch is
// not safe for concurrent use; obtain one per goroutine from a
// ScratchPool.
type Scratch struct {
	q   *Querier
	lps []float64

	qs   []*Querier
	rows [][]float64
}

// batchWordBlock is the word-block width of the multi-model batch kernel:
// every model of the batch scores one block of words before the sweep
// advances to the next block, so the block's symbol slices stay cache-hot
// across all models of the batch.
const batchWordBlock = 64

// logProbWordsBatch scores the word set against every frozen model of the
// batch in one blocked pass: words are visited in blocks of
// batchWordBlock, and each block is scored by every model while its
// symbol data is hot, instead of streaming the whole word set per model.
// Row i of the result is bit-identical to ms[i].LogProbWords(words, nil)
// — the kernel only reorders the (model, word) loop; the per-(model,
// word) arithmetic is the unchanged Querier walk. Queriers and rows are
// retained by the Scratch, so a warm Scratch scores without allocating;
// the rows are valid until its next use.
func (s *Scratch) logProbWordsBatch(ms []*Frozen, words [][]int) [][]float64 {
	for len(s.qs) < len(ms) {
		s.qs = append(s.qs, nil)
	}
	for len(s.rows) < len(ms) {
		s.rows = append(s.rows, nil)
	}
	for i, f := range ms {
		if s.qs[i] == nil {
			s.qs[i] = f.NewQuerier()
		} else {
			s.qs[i].Rebind(f)
		}
		if cap(s.rows[i]) < len(words) {
			s.rows[i] = make([]float64, len(words))
		}
		s.rows[i] = s.rows[i][:len(words)]
	}
	for lo := 0; lo < len(words); lo += batchWordBlock {
		hi := min(lo+batchWordBlock, len(words))
		for mi := range ms {
			q, row := s.qs[mi], s.rows[mi]
			for wi := lo; wi < hi; wi++ {
				row[wi] = q.LogProbSeq(words[wi])
			}
		}
	}
	return s.rows[:len(ms)]
}

// logProbWords scores every word through the scratch buffers: frozen
// scorers reuse (or rebind) the pooled Querier, other scorers evaluate
// directly; either way the log-probability buffer is retained across
// calls. The returned slice is valid until the next use of the Scratch.
func (s *Scratch) logProbWords(m WordScorer, words [][]int) []float64 {
	if f, ok := m.(*Frozen); ok {
		if s.q == nil {
			s.q = f.NewQuerier()
		} else {
			s.q.Rebind(f)
		}
		s.lps = s.q.LogProbWords(words, s.lps)
		return s.lps
	}
	s.lps = m.LogProbWords(words, s.lps)
	return s.lps
}

// ScratchPool shares Scratch values across goroutines and across
// analyses: the corpus engine hands one pool to every image so queriers
// and distribution buffers stop being re-allocated per image. The zero
// value is ready to use; the pool is safe for concurrent use and its
// contents are garbage-collectible under memory pressure (sync.Pool
// semantics).
type ScratchPool struct {
	p sync.Pool
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// Get returns a Scratch for exclusive use; pair with Put.
func (sp *ScratchPool) Get() *Scratch {
	if s, ok := sp.p.Get().(*Scratch); ok {
		return s
	}
	return &Scratch{}
}

// Put returns a Scratch to the pool.
func (sp *ScratchPool) Put(s *Scratch) { sp.p.Put(s) }

// sharedScratch is the process-wide default pool, used by any
// DistanceCalculator that was not handed an explicit pool — so even
// independent sequential analyses in one process reuse query scratch.
var sharedScratch = NewScratchPool()
