package slm

import "sync"

// Scratch bundles the reusable query-side buffers one goroutine needs to
// derive word distributions: a rebindable Querier (the allocation-free
// frozen-trie query kernel) and the intermediate log-probability buffer.
// A Scratch is not safe for concurrent use; obtain one per goroutine from
// a ScratchPool.
type Scratch struct {
	q   *Querier
	lps []float64
}

// logProbWords scores every word through the scratch buffers: frozen
// scorers reuse (or rebind) the pooled Querier, other scorers evaluate
// directly; either way the log-probability buffer is retained across
// calls. The returned slice is valid until the next use of the Scratch.
func (s *Scratch) logProbWords(m WordScorer, words [][]int) []float64 {
	if f, ok := m.(*Frozen); ok {
		if s.q == nil {
			s.q = f.NewQuerier()
		} else {
			s.q.Rebind(f)
		}
		s.lps = s.q.LogProbWords(words, s.lps)
		return s.lps
	}
	s.lps = m.LogProbWords(words, s.lps)
	return s.lps
}

// ScratchPool shares Scratch values across goroutines and across
// analyses: the corpus engine hands one pool to every image so queriers
// and distribution buffers stop being re-allocated per image. The zero
// value is ready to use; the pool is safe for concurrent use and its
// contents are garbage-collectible under memory pressure (sync.Pool
// semantics).
type ScratchPool struct {
	p sync.Pool
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// Get returns a Scratch for exclusive use; pair with Put.
func (sp *ScratchPool) Get() *Scratch {
	if s, ok := sp.p.Get().(*Scratch); ok {
		return s
	}
	return &Scratch{}
}

// Put returns a Scratch to the pool.
func (sp *ScratchPool) Put(s *Scratch) { sp.p.Put(s) }

// sharedScratch is the process-wide default pool, used by any
// DistanceCalculator that was not handed an explicit pool — so even
// independent sequential analyses in one process reuse query scratch.
var sharedScratch = NewScratchPool()
