// Package slm implements the statistical language models of §3.1: n-gram
// models with smoothing and backoff ("variable-order n-gram models") based
// on prediction by partial matching, variant PPM-C. A model of maximum
// order D is a tree of contexts; querying backs off from the longest seen
// context through escape probabilities down to a uniform order -1 model
// over the alphabet:
//
//	Pr_k(sigma|s) = counts-based estimate       if s·sigma seen in training
//	              = 1/|Sigma|                   if |s| = 0 and sigma unseen
//	              = Pr(escape|s)·Pr_{k-1}(...)  otherwise
//
// Under PPM-C the escape mass of a context with n symbol occurrences over d
// distinct symbols is d/(n+d), and a seen symbol sigma has probability
// c(sigma)/(n+d).
//
// The package also provides the Kullback–Leibler divergence between two
// models over a word set (§4.2.1) and the JS-divergence/JS-distance
// variants the paper evaluates and rejects ("Other Metrics", §6.4). The
// per-family divergence sweep that turns these metrics into hierarchy
// edge scores lives behind the evidence-provider abstraction
// (internal/evidence/slmkl); this package stays metric-only.
package slm

import (
	"fmt"
	"math"
	"sort"
)

// Model is a trained PPM-C variable-order Markov model over an integer
// alphabet [0, Alphabet).
type Model struct {
	depth    int
	alphabet int
	root     *node
	// trained counts the training sequences consumed.
	trained int
}

type node struct {
	children map[int]*node
	counts   map[int]int
	total    int
}

func newNode() *node {
	return &node{children: map[int]*node{}, counts: map[int]int{}}
}

// New returns an empty model with the given maximum order (context length)
// and alphabet size. Depth 2 matches the paper's Fig. 8 example.
func New(depth, alphabet int) *Model {
	if depth < 0 {
		depth = 0
	}
	if alphabet < 1 {
		alphabet = 1
	}
	return &Model{depth: depth, alphabet: alphabet, root: newNode()}
}

// Depth returns the maximum context length D.
func (m *Model) Depth() int { return m.depth }

// Alphabet returns the alphabet size.
func (m *Model) Alphabet() int { return m.alphabet }

// Trained returns how many sequences the model was trained on.
func (m *Model) Trained() int { return m.trained }

// Train updates the model with one training sequence.
func (m *Model) Train(seq []int) {
	for i, sym := range seq {
		if sym < 0 || sym >= m.alphabet {
			panic(fmt.Sprintf("slm: symbol %d outside alphabet %d", sym, m.alphabet))
		}
		// Update every context of length 0..D ending just before position i.
		n := m.root
		n.counts[sym]++
		n.total++
		for k := 1; k <= m.depth && k <= i; k++ {
			c := seq[i-k] // walk from most recent to older
			child, ok := n.children[c]
			if !ok {
				child = newNode()
				n.children[c] = child
			}
			n = child
			n.counts[sym]++
			n.total++
		}
	}
	m.trained++
}

// contextNodes returns the chain of context nodes for the history suffix,
// from order 0 (root) up to the deepest context seen in training.
func (m *Model) contextNodes(hist []int) []*node {
	nodes := []*node{m.root}
	n := m.root
	for k := 1; k <= m.depth && k <= len(hist); k++ {
		c := hist[len(hist)-k]
		child, ok := n.children[c]
		if !ok {
			break
		}
		n = child
		nodes = append(nodes, n)
	}
	return nodes
}

// Prob returns Pr(sym | hist) with PPM-C backoff.
func (m *Model) Prob(sym int, hist []int) float64 {
	return math.Exp(m.LogProb(sym, hist))
}

// LogProb returns ln Pr(sym | hist) under PPM-C with update exclusion at
// query time: once a context level is escaped, the symbols it accounted
// for are excluded from lower-order estimates (they cannot be the escaped
// symbol), which renormalizes the backoff chain into a proper
// distribution.
func (m *Model) LogProb(sym int, hist []int) float64 {
	nodes := m.contextNodes(hist)
	excluded := map[int]bool{}
	lp := 0.0
	for k := len(nodes) - 1; k >= 0; k-- {
		n := nodes[k]
		total, distinct := 0, 0
		for s, c := range n.counts {
			if excluded[s] {
				continue
			}
			total += c
			distinct++
		}
		if distinct == 0 {
			continue // every symbol here already excluded: free backoff
		}
		// When the context has seen every remaining alphabet symbol there
		// is nothing to escape to, so the escape mass is dropped and the
		// seen counts are fully normalized.
		remaining := m.alphabet - len(excluded)
		denom := float64(total + distinct)
		if distinct >= remaining {
			denom = float64(total)
		}
		if c, ok := n.counts[sym]; ok && !excluded[sym] {
			return lp + math.Log(float64(c)/denom)
		}
		if distinct >= remaining {
			// No escape possible, yet sym was unseen: it must have been
			// excluded at a higher level; treat as vanishing probability.
			return lp + math.Log(1e-12)
		}
		lp += math.Log(float64(distinct) / denom) // escape
		for s := range n.counts {
			excluded[s] = true
		}
	}
	// Order -1: uniform over the not-yet-excluded alphabet.
	remaining := m.alphabet - len(excluded)
	if remaining < 1 {
		remaining = 1
	}
	return lp + math.Log(1.0/float64(remaining))
}

// LogProbSeq returns ln Pr(seq) = sum_i ln Pr(seq[i] | seq[:i]), with the
// history truncated to the model depth.
func (m *Model) LogProbSeq(seq []int) float64 {
	lp := 0.0
	for i, sym := range seq {
		lo := i - m.depth
		if lo < 0 {
			lo = 0
		}
		lp += m.LogProb(sym, seq[lo:i])
	}
	return lp
}

// ProbSeq returns Pr(seq).
func (m *Model) ProbSeq(seq []int) float64 { return math.Exp(m.LogProbSeq(seq)) }

// LogProbWords scores every word with LogProbSeq. See WordScorer; the
// frozen counterpart (Frozen.LogProbWords) is the fast path.
func (m *Model) LogProbWords(words [][]int, out []float64) []float64 {
	if cap(out) < len(words) {
		out = make([]float64, len(words))
	}
	out = out[:len(words)]
	for i, w := range words {
		out[i] = m.LogProbSeq(w)
	}
	return out
}

// Dump renders the trained context tree with the probability each context
// assigns to each next symbol and to escape — the Fig. 8 view of a model.
// name maps symbols to display strings. Frozen.Dump prints the identical
// string for the frozen form of the model.
func (m *Model) Dump(name func(int) string) string {
	var d dumper
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		d.syms = d.syms[:0]
		for s := range n.counts {
			d.syms = append(d.syms, s)
		}
		sort.Ints(d.syms)
		d.counts = d.counts[:0]
		for _, s := range d.syms {
			d.counts = append(d.counts, n.counts[s])
		}
		d.line(depth, n.total, name)
		kids := make([]int, 0, len(n.children))
		for s := range n.children {
			kids = append(kids, s)
		}
		sort.Ints(kids)
		for _, s := range kids {
			d.path = append(d.path, s)
			walk(n.children[s], depth+1)
			d.path = d.path[:len(d.path)-1]
		}
	}
	walk(m.root, 0)
	return d.b.String()
}
