package slm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyModelUniform(t *testing.T) {
	m := New(2, 4)
	for s := 0; s < 4; s++ {
		if p := m.Prob(s, nil); math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("untrained model Prob=%v, want uniform 0.25", p)
		}
	}
}

func TestTrainingCountsAndEscape(t *testing.T) {
	// Train on "aa" and "ab" (a=0, b=1). Per the §3.1 example: a is the
	// only first symbol; after context a, a and b each appeared once.
	m := New(2, 3)
	m.Train([]int{0, 0})
	m.Train([]int{0, 1})
	// Order-0: a appeared 3 times, b once, c never (2 distinct symbols);
	// PPM-C: P(a) = 3/(4+2) = 1/2.
	if p := m.Prob(0, nil); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P(a) = %v, want 1/2", p)
	}
	// After context a: counts a:1 b:1 -> P(a|a) = 1/(2+2) = 0.25.
	if p := m.Prob(0, []int{0}); math.Abs(p-0.25) > 1e-12 {
		t.Errorf("P(a|a) = %v, want 0.25", p)
	}
	// Unseen symbol c after a: escape (2/4); with a and b excluded, c is
	// the only remaining symbol, so P(c|a) = 1/2 exactly — and the
	// conditional distribution sums to one.
	if pc := m.Prob(2, []int{0}); math.Abs(pc-0.5) > 1e-12 {
		t.Errorf("P(c|a) = %v, want 1/2", pc)
	}
}

// TestProbabilitiesSumToOne: for any trained model and any context, the
// next-symbol distribution must sum to 1 (a property of correct PPM
// smoothing/backoff bookkeeping).
func TestProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		alpha := 2 + rng.Intn(6)
		m := New(1+rng.Intn(3), alpha)
		for s := 0; s < 5; s++ {
			seq := make([]int, 3+rng.Intn(10))
			for i := range seq {
				seq[i] = rng.Intn(alpha)
			}
			m.Train(seq)
		}
		ctx := make([]int, rng.Intn(4))
		for i := range ctx {
			ctx[i] = rng.Intn(alpha)
		}
		sum := 0.0
		for s := 0; s < alpha; s++ {
			sum += m.Prob(s, ctx)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: sum of next-symbol probabilities = %v", trial, sum)
		}
	}
}

// TestTrainedSequenceMoreProbable: a model must assign higher probability
// to its training sequence than an untrained uniform model does.
func TestTrainedSequenceMoreProbable(t *testing.T) {
	seq := []int{0, 1, 0, 1, 0, 1}
	m := New(2, 4)
	m.Train(seq)
	uniform := New(2, 4)
	if m.LogProbSeq(seq) <= uniform.LogProbSeq(seq) {
		t.Fatalf("training did not increase sequence probability")
	}
}

func TestKLProperties(t *testing.T) {
	a := New(2, 6)
	b := New(2, 6)
	for i := 0; i < 20; i++ {
		a.Train([]int{0, 1, 2, 0, 1, 2})
		b.Train([]int{0, 1, 2, 0, 1, 2})
	}
	b.Train([]int{3, 4, 5, 3, 4, 5})
	words := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 1, 2, 0, 1, 2}}
	if d := KL(a, a, words); math.Abs(d) > 1e-9 {
		t.Errorf("KL(a||a) = %v, want 0", d)
	}
	dab := KL(a, b, words)
	dba := KL(b, a, words)
	if dab < 0 || dba < 0 {
		t.Errorf("normalized KL must be non-negative: %v %v", dab, dba)
	}
	// b has behaviors a lacks, so encoding b's behaviors with a's model is
	// costlier than the reverse — the asymmetry the paper exploits.
	if !(dba > dab) {
		t.Errorf("expected KL(b||a)=%v > KL(a||b)=%v", dba, dab)
	}
}

func TestJSDivergenceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := New(2, 5)
	b := New(2, 5)
	var words [][]int
	for i := 0; i < 10; i++ {
		w := make([]int, 4)
		for j := range w {
			w[j] = rng.Intn(5)
		}
		words = append(words, w)
		if i%2 == 0 {
			a.Train(w)
		} else {
			b.Train(w)
		}
	}
	dab := JSDivergence(a, b, words)
	dba := JSDivergence(b, a, words)
	if math.Abs(dab-dba) > 1e-9 {
		t.Errorf("JS not symmetric: %v vs %v", dab, dba)
	}
	if dab < 0 || dab > math.Log(2)+1e-9 {
		t.Errorf("JS divergence out of [0, ln 2]: %v", dab)
	}
	if d := JSDistance(a, b, words); math.Abs(d-math.Sqrt(dab)) > 1e-12 {
		t.Errorf("JSDistance != sqrt(JSDivergence)")
	}
}

// TestQuickLogProbFinite: property — log-probabilities of arbitrary
// sequences over the alphabet are finite and non-positive.
func TestQuickLogProbFinite(t *testing.T) {
	m := New(3, 8)
	m.Train([]int{0, 1, 2, 3, 4, 5, 6, 7})
	m.Train([]int{7, 6, 5, 4, 3, 2, 1, 0})
	f := func(raw []uint8) bool {
		seq := make([]int, len(raw))
		for i, r := range raw {
			seq[i] = int(r % 8)
		}
		lp := m.LogProbSeq(seq)
		return !math.IsNaN(lp) && !math.IsInf(lp, 0) && lp <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDumpShowsEscape(t *testing.T) {
	m := New(2, 3)
	m.Train([]int{0, 1, 0, 1})
	out := m.Dump(func(s int) string { return string(rune('a' + s)) })
	if !strings.Contains(out, "escape=") || !strings.Contains(out, "context [a]") {
		t.Errorf("dump missing expected content:\n%s", out)
	}
}

func TestMetricString(t *testing.T) {
	if MetricKL.String() != "DKL" || MetricJSDivergence.String() != "JS-divergence" || MetricJSDistance.String() != "JS-distance" {
		t.Error("metric names wrong")
	}
}
