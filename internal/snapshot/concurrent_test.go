package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentWriteFileSamePath is the store's multi-writer contract
// (the daemon can finish identical analyses back to back, and several
// processes may share one -cache directory): N goroutines racing
// WriteFile on the SAME path must leave exactly one complete, loadable
// snapshot and no temp droppings — the atomic temp+rename discipline,
// under -race.
func TestConcurrentWriteFileSamePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.rsnap")
	s := sampleSnapshot()

	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.WriteFile(path)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	got, err := Load(path)
	if err != nil {
		t.Fatalf("snapshot unreadable after racing writers: %v", err)
	}
	want, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(enc, want) {
		t.Fatal("snapshot content corrupted by concurrent writers")
	}
	assertNoTempFiles(t, dir)
}

// TestConcurrentWriteReadHeader: readers probing the header (the warm
// scheduler's ReadKey path) while writers rename over the file must only
// ever see complete headers — never a torn one.
func TestConcurrentWriteReadHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.rsnap")
	s := sampleSnapshot()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	wantKey, err := ReadKey(path)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < 50; i++ {
				if err := s.WriteFile(path); err != nil {
					t.Errorf("WriteFile: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				key, err := ReadKey(path)
				if err != nil {
					t.Errorf("ReadKey mid-rename: %v", err)
					return
				}
				if key != wantKey {
					t.Errorf("torn header: key %v != %v", key, wantKey)
					return
				}
			}
		}()
	}
	writerWG.Wait() // readers probe throughout every rename
	close(stop)
	readerWG.Wait()
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles fails the test if any .rsnap-* temp file survived —
// every WriteFile path (success or failure) must clean up after itself.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".rsnap-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
