package snapshot

import (
	"testing"
)

// FuzzDecodeSnapshot is the satellite fuzz target: Decode must never
// panic, hang, or allocate beyond what the input size warrants, no matter
// how corrupted the bytes are — a bad snapshot is a cache miss, not a
// crash. Anything Decode accepts must also re-encode cleanly (the decoded
// structure is internally consistent).
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := sampleSnapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// Truncations at section-ish boundaries and corruptions of the
	// length-prefix bytes seed the mutator near the interesting guards.
	for _, n := range []int{0, 3, 4, 8, 136, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}
	for _, off := range []int{4, 136, 140, 200, len(valid) - 8} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	// A huge count right where the alphabet length lives.
	huge := append([]byte(nil), valid[:136]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := s.Encode(); err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
	})
}
