package snapshot

import (
	"testing"
)

// FuzzDecodeSnapshot is the satellite fuzz target: Decode must never
// panic, hang, or allocate beyond what the input size warrants, no matter
// how corrupted the bytes are — a bad snapshot is a cache miss, not a
// crash. Anything Decode accepts must also re-encode cleanly (the decoded
// structure is internally consistent). Both supported format versions
// seed the corpus: v3 (with the function-granular section) and v2 (the
// compat layout).
func FuzzDecodeSnapshot(f *testing.F) {
	valid, err := sampleSnapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	v2, err := sampleSnapshot().EncodeVersion(2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(v2)
	// Truncations at section-ish boundaries and corruptions of the
	// length-prefix bytes seed the mutator near the interesting guards:
	// both header sizes, the body, and the tail where the function
	// section and its type-key table live.
	for _, n := range []int{0, 3, 4, 8, headerLenV2, HeaderLen, len(valid) / 2, len(valid) - 1} {
		if n <= len(valid) {
			f.Add(append([]byte(nil), valid[:n]...))
		}
	}
	for _, n := range []int{headerLenV2, len(v2) / 2, len(v2) - 1} {
		f.Add(append([]byte(nil), v2[:n]...))
	}
	for _, off := range []int{4, headerLenV2, HeaderLen, HeaderLen + 4, 200, len(valid) - 100, len(valid) - 40, len(valid) - 8} {
		if off >= 0 && off < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			f.Add(mut)
		}
	}
	// A huge count right where each version's alphabet length lives.
	huge := append([]byte(nil), valid[:HeaderLen]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f)
	f.Add(huge)
	hugeV2 := append([]byte(nil), v2[:headerLenV2]...)
	hugeV2 = append(hugeV2, 0xff, 0xff, 0xff, 0x7f)
	f.Add(hugeV2)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := s.Encode(); err != nil {
			t.Fatalf("decoded snapshot fails to re-encode: %v", err)
		}
	})
}
