// Package snapshot implements the persistent, content-addressed analysis
// cache: everything the pipeline derives from a binary image — the
// interned event alphabet, discovered vtables, extracted tracelets and
// structural observations, the per-type frozen SLM tries, and the
// hierarchy-stage outputs (pairwise distances, per-family arborescences,
// chosen parents) — serialized into one versioned binary file keyed by the
// image's content digest plus per-stage configuration fingerprints.
//
// The key is the image content digest plus one configuration fingerprint
// per pipeline section, in section order (internal/pipeline is the single
// source of truth for the sections, their order, and how each fingerprint
// is derived from the stage graph's canonical configuration renderings):
//
//	image digest   SHA-256 of the image's analysis-relevant content
//	               (image.ContentDigest)
//	extract FP     pipeline.SecExtraction — front-end config (tracelet
//	               bounds + structural heuristics) guarding the
//	               extraction section
//	model FP       pipeline.SecModels — SLM config (depth) guarding the
//	               frozen-models section
//	hier FP        pipeline.SecHierarchy — back-end config (metric, root
//	               weight, enumeration bounds, plus the evidence-provider
//	               configuration whenever it differs from the SLM-only
//	               default) guarding the hierarchy section
//
// The sections form a strict dependency chain (models are trained on the
// extraction, the hierarchy is solved over the models), so a snapshot is
// usable up to the first fingerprint that disagrees: changing only the
// distance metric reuses extraction and models and recomputes the
// hierarchy; changing the tracelet window invalidates everything. Worker
// counts appear in no fingerprint — the pipeline's results are identical
// for every worker count.
//
// Every variable-length count is validated against the bytes actually
// remaining before anything is allocated, so a corrupted or truncated
// snapshot fails fast with an error — never a panic or an attempted
// multi-gigabyte allocation (fuzz-tested by FuzzDecodeSnapshot). The file
// ends with a SHA-256 checksum of everything before it, so even a bit
// flip inside an opaque payload (a distance value, a model count) is
// detected and treated as a cache miss instead of silently poisoning a
// warm analysis.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/objtrace"
	"repro/internal/pipeline"
	"repro/internal/slm"
	"repro/internal/structural"
	"repro/internal/vtable"
)

const (
	magic = "RSNP"
	// Version is the snapshot format version; bumped on any layout change.
	// A version mismatch is a cache miss, never a decode attempt — with one
	// deliberate exception: version 2 files (the pre-incremental layout)
	// stay fully decodable as whole-image-valid snapshots, they just carry
	// no function-granular section (Funcs == nil), so they can warm an
	// identical image but never feed the incremental lane.
	// v2: Family carries the enumeration-truncation flag.
	// v3: header gains the image-family name hash; body gains the
	// function-granular extraction section (per-function bundles keyed by
	// content digest + per-type training-input keys).
	Version = 3

	// headerLenV2 is the v2 fixed header: magic, version, image digest,
	// and one fingerprint per pipeline section.
	headerLenV2 = 4 + 4 + (1+int(pipeline.NumSections))*32
	// HeaderLen is the v3 fixed header: the v2 header plus the
	// image-family name hash. parseHeader/appendHeader are the only code
	// that knows this layout; ReadKey, ReadHeader, Encode, and Decode all
	// go through them.
	HeaderLen = headerLenV2 + 32
)

// Section reuse levels, in dependency order: level k means the first k
// pipeline sections are reusable. Derived from the stage graph so the
// snapshot chain can never drift from the pipeline's section order.
const (
	// LevelNone: nothing reusable (cold run).
	LevelNone = 0
	// LevelExtraction: alphabet, vtables, tracelets, structural results.
	LevelExtraction = int(pipeline.SecExtraction) + 1
	// LevelModels: LevelExtraction plus the frozen SLM tries.
	LevelModels = int(pipeline.SecModels) + 1
	// LevelHierarchy: everything — distances, arborescences, parents.
	LevelHierarchy = int(pipeline.SecHierarchy) + 1
)

// Key identifies the analysis a snapshot caches.
type Key struct {
	// Digest is the image content digest (image.ContentDigest).
	Digest [32]byte
	// FPs is the per-section configuration fingerprint chain, indexed by
	// pipeline.Section (pipeline.Graph.Fingerprints).
	FPs [pipeline.NumSections][32]byte
}

// FileName returns the snapshot's file name within a cache directory. It
// is derived from the image digest alone, so one image owns one cache slot
// regardless of configuration: re-analyzing under a changed config
// overwrites the slot (after salvaging whatever sections still match).
func (k Key) FileName() string {
	return hex.EncodeToString(k.Digest[:16]) + ".rsnap"
}

// Usable returns the highest reuse level the snapshot supports for this
// key: sections are valid only up to the first fingerprint mismatch, and
// nothing is valid across an image-digest mismatch. The walk is generic
// over the pipeline's section chain — a mismatch at section s caps reuse
// at the levels before it.
func (k Key) Usable(s *Snapshot) int {
	if s == nil || s.Key.Digest != k.Digest {
		return LevelNone
	}
	for sec := pipeline.Section(0); sec < pipeline.NumSections; sec++ {
		if s.Key.FPs[sec] != k.FPs[sec] {
			return int(sec)
		}
	}
	return LevelHierarchy
}

// Header is the decoded fixed-size file header: the format version, the
// content-addressed key, and (v3+) the image-family name hash. It is the
// single description of the header layout shared by the encoder and every
// reader.
type Header struct {
	Version uint32
	Key     Key
	// NameHash identifies the image family (HashName of the module name;
	// zero for v2 files). The incremental lane's auto-discovery scans cache
	// headers for prior versions of the same family without decoding
	// bodies.
	NameHash [32]byte
}

// HashName hashes a module/display name into the header's image-family
// slot. The raw name never lands on disk, matching ContentDigest's
// name-independence everywhere else.
func HashName(name string) [32]byte {
	return sha256.Sum256([]byte("rockname\x00" + name))
}

// appendHeader serializes a header. Version 2 omits the name hash.
func appendHeader(buf []byte, h Header) []byte {
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, h.Version)
	buf = append(buf, h.Key.Digest[:]...)
	for sec := range h.Key.FPs {
		buf = append(buf, h.Key.FPs[sec][:]...)
	}
	if h.Version >= 3 {
		buf = append(buf, h.NameHash[:]...)
	}
	return buf
}

// parseHeader decodes the fixed header from the start of data and returns
// it with the number of bytes it occupied. Only versions 2 and 3 parse;
// anything else (including future versions) is an error, which callers
// treat as a cache miss.
func parseHeader(data []byte) (Header, int, error) {
	if len(data) < headerLenV2 {
		return Header{}, 0, fmt.Errorf("snapshot: short header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return Header{}, 0, fmt.Errorf("snapshot: bad magic")
	}
	var h Header
	h.Version = binary.LittleEndian.Uint32(data[4:8])
	if h.Version != 2 && h.Version != Version {
		return Header{}, 0, fmt.Errorf("snapshot: unsupported version %d", h.Version)
	}
	copy(h.Key.Digest[:], data[8:40])
	for sec := range h.Key.FPs {
		copy(h.Key.FPs[sec][:], data[40+32*sec:])
	}
	n := headerLenV2
	if h.Version >= 3 {
		if len(data) < HeaderLen {
			return Header{}, 0, fmt.Errorf("snapshot: short v3 header (%d bytes)", len(data))
		}
		copy(h.NameHash[:], data[headerLenV2:HeaderLen])
		n = HeaderLen
	}
	return h, n, nil
}

// FnBundle is one function's cached extraction, addressed by the
// function's content digest (image.FunctionDigest). On a version-diff run
// a bundle is adopted verbatim when its digest and the section's context
// digest both match the new image.
type FnBundle struct {
	Digest [32]byte
	Ext    objtrace.FnExtraction
}

// FnSection is the v3 function-granular extraction section: everything
// the incremental lane needs to re-analyze a patched sibling of this
// image without re-running unchanged work.
type FnSection struct {
	// ContextDigest guards the cross-function extractor inputs
	// (objtrace.ContextDigest): bundles are only reusable under an
	// identical context.
	ContextDigest [32]byte
	// Funcs holds one bundle per function, in function (entry) order.
	Funcs []FnBundle
	// TypeKeys maps each type to a digest of its training input
	// (core's TypeKey); a match certifies the prior frozen model is the
	// one training would reproduce.
	TypeKeys map[uint64][32]byte
}

// Family is one cached per-family outcome (mirrors core.FamilyResult).
type Family struct {
	// Types lists the family members, ascending.
	Types []uint64
	// Weight is the minimum arborescence weight.
	Weight float64
	// Truncated records that the co-optimal enumeration for this family
	// was cut short by an internal cap (see arborescence.EnumerateMin).
	Truncated bool
	// Arbs holds the surviving arborescences as child→parent maps.
	Arbs []map[uint64]uint64
}

// Snapshot is the decoded cache content.
type Snapshot struct {
	Key Key
	// NameHash is the image-family name hash (HashName; zero when decoded
	// from a v2 file or when the producer declined to name the image).
	NameHash [32]byte

	// Extraction section (LevelExtraction).
	Alphabet   []objtrace.Event
	VTables    []*vtable.VTable
	Tracelets  *objtrace.Result
	Structural *structural.Result

	// Models section (LevelModels).
	Frozen map[uint64]*slm.Frozen

	// Hierarchy section (LevelHierarchy).
	Dist map[[2]uint64]float64
	// Families holds the per-family outcomes in family order.
	Families []Family
	// Parents is the reconstructed forest as a child→parent map.
	Parents map[uint64]uint64
	// MultiParents maps multiple-inheritance types to their parent sets.
	MultiParents map[uint64][]uint64

	// Funcs is the function-granular extraction section (nil for v2 files
	// and for producers that skip it). Its validity is guarded separately:
	// bundle reuse re-checks per-function digests and the context digest,
	// so a nil or stale section degrades to re-execution, never to wrong
	// results.
	Funcs *FnSection
}

// Load reads and decodes a snapshot file. A missing, unreadable, or
// corrupted file returns an error; callers treat any error as a cache
// miss.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// ReadKey reads only the fixed-size header of a snapshot file — magic,
// version, and the four key hashes — without loading or checksumming the
// body. It is an advisory probe for cache-aware scheduling: a matching key
// predicts a warm hit cheaply, but the full Load still validates the
// checksum, so a stale or corrupt body is caught on the real read. Any
// error (including a version mismatch) means "treat as cold".
func ReadKey(path string) (Key, error) {
	h, err := ReadHeader(path)
	return h.Key, err
}

// ReadHeader reads only the fixed-size header of a snapshot file without
// loading or checksumming the body. Like ReadKey it is advisory: the full
// Load still validates the checksum. Version 2 headers parse with a zero
// NameHash.
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	var hdr [HeaderLen]byte
	n, err := io.ReadFull(f, hdr[:])
	if err == io.ErrUnexpectedEOF && n >= headerLenV2 {
		// A file shorter than the v3 header can still carry a complete v2
		// header; parseHeader sorts it out from the version field.
		err = nil
	}
	if err != nil {
		return Header{}, fmt.Errorf("snapshot: short header: %w", err)
	}
	h, _, err := parseHeader(hdr[:n])
	return h, err
}

// WriteFile atomically writes the encoded snapshot: the bytes land in a
// temporary file in the target directory first and are renamed into
// place, so a concurrent reader never observes a half-written snapshot.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".rsnap-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Encoding ---------------------------------------------------------------

// Encode serializes the snapshot deterministically: map keys are emitted
// in sorted order, so the same snapshot content always produces the same
// bytes.
func (s *Snapshot) Encode() ([]byte, error) {
	return s.EncodeVersion(Version)
}

// EncodeVersion encodes in an explicit format version. Version 2 emits
// the pre-incremental layout — no name hash, no function-granular
// section — and exists so migration tests (and tools) can materialize old
// files; everything else uses Encode.
func (s *Snapshot) EncodeVersion(v uint32) ([]byte, error) {
	if v != 2 && v != Version {
		return nil, fmt.Errorf("snapshot: cannot encode version %d", v)
	}
	w := &writer{}
	w.buf = appendHeader(w.buf, Header{Version: v, Key: s.Key, NameHash: s.NameHash})

	// Extraction section. Tracelet events are stored as indices into the
	// interned alphabet (every event appearing in a tracelet is interned
	// by construction).
	idx := make(map[objtrace.Event]int, len(s.Alphabet))
	for i, e := range s.Alphabet {
		idx[e] = i
	}
	w.u32(uint32(len(s.Alphabet)))
	for _, e := range s.Alphabet {
		w.u8(uint8(e.Kind))
		w.u64(e.N)
	}
	w.u32(uint32(len(s.VTables)))
	for _, v := range s.VTables {
		w.u64(v.Addr)
		w.u32(uint32(len(v.Slots)))
		for _, f := range v.Slots {
			w.u64(f)
		}
	}
	writeSeqs := func(seqs map[uint64][][]objtrace.Event) error {
		keys := sortedKeys(seqs)
		w.u32(uint32(len(keys)))
		for _, t := range keys {
			w.u64(t)
			w.u32(uint32(len(seqs[t])))
			for _, seq := range seqs[t] {
				w.u32(uint32(len(seq)))
				for _, e := range seq {
					sym, ok := idx[e]
					if !ok {
						return fmt.Errorf("snapshot: tracelet event %v not in the interned alphabet", e)
					}
					w.u32(uint32(sym))
				}
			}
		}
		return nil
	}
	perType := make(map[uint64][][]objtrace.Event, len(s.Tracelets.PerType))
	for t, tls := range s.Tracelets.PerType {
		seqs := make([][]objtrace.Event, len(tls))
		for i, tl := range tls {
			seqs[i] = tl
		}
		perType[t] = seqs
	}
	if err := writeSeqs(perType); err != nil {
		return nil, err
	}
	if err := writeSeqs(s.Tracelets.RawPerType); err != nil {
		return nil, err
	}
	w.u32(uint32(len(s.Tracelets.Structs)))
	for _, os := range s.Tracelets.Structs {
		w.u64(os.Fn)
		w.bool(os.EntryThis)
		w.u32(uint32(len(os.Events)))
		for _, e := range os.Events {
			w.bool(e.Install)
			w.u32(uint32(e.Off))
			w.u64(e.VT)
			w.u64(e.Callee)
		}
	}
	w.addrsMap(s.Tracelets.FnVTables)
	w.u32(uint32(len(s.Structural.Families)))
	for _, fam := range s.Structural.Families {
		w.addrs(fam)
	}
	w.addrsMap(s.Structural.PossibleParents)
	w.pairsMap(s.Structural.DefinitiveParent)
	w.u64(s.Structural.Purecall)
	w.addrsMap(s.Structural.SecondaryInstalls)
	w.addrsMap(s.Structural.InstallerOf)

	// Models section.
	w.u32(uint32(len(s.Frozen)))
	for _, t := range sortedKeys(s.Frozen) {
		w.u64(t)
		w.buf = s.Frozen[t].AppendBinary(w.buf)
	}

	// Hierarchy section.
	dk := make([][2]uint64, 0, len(s.Dist))
	for pc := range s.Dist {
		dk = append(dk, pc)
	}
	sort.Slice(dk, func(i, j int) bool {
		if dk[i][0] != dk[j][0] {
			return dk[i][0] < dk[j][0]
		}
		return dk[i][1] < dk[j][1]
	})
	w.u32(uint32(len(dk)))
	for _, pc := range dk {
		w.u64(pc[0])
		w.u64(pc[1])
		w.u64(math.Float64bits(s.Dist[pc]))
	}
	w.u32(uint32(len(s.Families)))
	for _, fr := range s.Families {
		w.addrs(fr.Types)
		w.u64(math.Float64bits(fr.Weight))
		w.bool(fr.Truncated)
		w.u32(uint32(len(fr.Arbs)))
		for _, arb := range fr.Arbs {
			w.pairsMap(arb)
		}
	}
	w.pairsMap(s.Parents)
	w.addrsMap(s.MultiParents)

	// Function-granular section (v3 only), behind a presence flag so
	// producers can skip it without ambiguity. Bundle events are stored
	// raw (kind + operand), not as alphabet indices: a bundle can carry
	// segments that never reached any type's tracelets (and thus the
	// alphabet), and a patched sibling's alphabet differs anyway.
	if v >= 3 {
		if s.Funcs == nil {
			w.u8(0)
		} else {
			w.u8(1)
			w.raw(string(s.Funcs.ContextDigest[:]))
			w.u32(uint32(len(s.Funcs.Funcs)))
			for _, fb := range s.Funcs.Funcs {
				w.raw(string(fb.Digest[:]))
				w.u64(fb.Ext.Entry)
				w.u32(uint32(len(fb.Ext.Segments)))
				for _, seg := range fb.Ext.Segments {
					w.u64(seg.VT)
					w.u32(uint32(len(seg.Events)))
					for _, e := range seg.Events {
						w.u8(uint8(e.Kind))
						w.u64(e.N)
					}
				}
				// Struct Fn duplicates the bundle entry; reconstructed on
				// decode.
				w.u32(uint32(len(fb.Ext.Structs)))
				for _, os := range fb.Ext.Structs {
					w.bool(os.EntryThis)
					w.u32(uint32(len(os.Events)))
					for _, e := range os.Events {
						w.bool(e.Install)
						w.u32(uint32(e.Off))
						w.u64(e.VT)
						w.u64(e.Callee)
					}
				}
			}
			tk := sortedKeys(s.Funcs.TypeKeys)
			w.u32(uint32(len(tk)))
			for _, t := range tk {
				w.u64(t)
				k := s.Funcs.TypeKeys[t]
				w.raw(string(k[:]))
			}
		}
	}
	sum := sha256.Sum256(w.buf)
	return append(w.buf, sum[:]...), nil
}

// Decode parses an encoded snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < sha256.Size {
		return nil, fmt.Errorf("snapshot: truncated before checksum (%d bytes)", len(data))
	}
	payload := data[:len(data)-sha256.Size]
	if sum := sha256.Sum256(payload); string(sum[:]) != string(data[len(payload):]) {
		return nil, fmt.Errorf("snapshot: checksum mismatch")
	}
	h, hlen, err := parseHeader(payload)
	if err != nil {
		return nil, err
	}
	r := &reader{data: payload, pos: hlen}
	s := &Snapshot{Key: h.Key, NameHash: h.NameHash}

	// Extraction section.
	n := r.count(9) // kind u8 + n u64
	for i := 0; i < n && r.err == nil; i++ {
		kind := r.u8()
		ev := objtrace.Event{Kind: objtrace.EventKind(kind), N: r.u64()}
		if r.err == nil && kind > uint8(objtrace.EvCallF) {
			return nil, fmt.Errorf("snapshot: unknown event kind %d", kind)
		}
		s.Alphabet = append(s.Alphabet, ev)
	}
	n = r.count(12) // addr u64 + slot count u32
	for i := 0; i < n && r.err == nil; i++ {
		v := &vtable.VTable{Addr: r.u64()}
		v.Slots = r.addrs()
		s.VTables = append(s.VTables, v)
	}
	readSeqs := func() map[uint64][][]objtrace.Event {
		out := map[uint64][][]objtrace.Event{}
		nt := r.count(12)
		for i := 0; i < nt && r.err == nil; i++ {
			t := r.u64()
			ns := r.count(4)
			var seqs [][]objtrace.Event
			for j := 0; j < ns && r.err == nil; j++ {
				ne := r.count(4)
				seq := make([]objtrace.Event, 0, min(ne, r.remaining()/4+1))
				for k := 0; k < ne && r.err == nil; k++ {
					sym := int(r.u32())
					if r.err == nil && sym >= len(s.Alphabet) {
						r.fail(fmt.Errorf("snapshot: tracelet symbol %d outside alphabet %d", sym, len(s.Alphabet)))
						break
					}
					seq = append(seq, s.Alphabet[sym])
				}
				seqs = append(seqs, seq)
			}
			out[t] = seqs
		}
		return out
	}
	s.Tracelets = &objtrace.Result{}
	perType := readSeqs()
	s.Tracelets.PerType = make(map[uint64][]objtrace.Tracelet, len(perType))
	for t, seqs := range perType {
		tls := make([]objtrace.Tracelet, len(seqs))
		for i, seq := range seqs {
			tls[i] = objtrace.Tracelet(seq)
		}
		s.Tracelets.PerType[t] = tls
	}
	s.Tracelets.RawPerType = readSeqs()
	n = r.count(13) // fn u64 + entryThis u8 + event count u32
	for i := 0; i < n && r.err == nil; i++ {
		os := objtrace.ObjStruct{Fn: r.u64(), EntryThis: r.bool()}
		ne := r.count(21) // install u8 + off u32 + vt u64 + callee u64
		for j := 0; j < ne && r.err == nil; j++ {
			os.Events = append(os.Events, objtrace.StructEvent{
				Install: r.bool(),
				Off:     int32(r.u32()),
				VT:      r.u64(),
				Callee:  r.u64(),
			})
		}
		s.Tracelets.Structs = append(s.Tracelets.Structs, os)
	}
	s.Tracelets.FnVTables = r.addrsMap()
	s.Structural = &structural.Result{FamilyOf: map[uint64]int{}}
	n = r.count(4)
	for i := 0; i < n && r.err == nil; i++ {
		fam := r.addrs()
		s.Structural.Families = append(s.Structural.Families, fam)
		for _, t := range fam {
			s.Structural.FamilyOf[t] = i
		}
	}
	// Candidate-free types keep nil slices, matching how the structural
	// analysis materializes them (addrs decodes empty as nil).
	s.Structural.PossibleParents = r.addrsMap()
	s.Structural.DefinitiveParent = r.pairsMap()
	s.Structural.Purecall = r.u64()
	s.Structural.SecondaryInstalls = r.addrsMap()
	s.Structural.InstallerOf = r.addrsMap()

	// Models section.
	n = r.count(8)
	s.Frozen = make(map[uint64]*slm.Frozen, n)
	for i := 0; i < n && r.err == nil; i++ {
		t := r.u64()
		if r.err != nil {
			break
		}
		f, rest, err := slm.DecodeFrozen(r.data[r.pos:])
		if err != nil {
			return nil, err
		}
		r.pos = len(r.data) - len(rest)
		s.Frozen[t] = f
	}

	// Hierarchy section.
	n = r.count(24) // p u64 + c u64 + bits u64
	s.Dist = make(map[[2]uint64]float64, n)
	for i := 0; i < n && r.err == nil; i++ {
		p, c := r.u64(), r.u64()
		s.Dist[[2]uint64{p, c}] = math.Float64frombits(r.u64())
	}
	n = r.count(17) // types count u32 + weight u64 + truncated u8 + arbs count u32
	for i := 0; i < n && r.err == nil; i++ {
		fr := Family{Types: r.addrs(), Weight: math.Float64frombits(r.u64()), Truncated: r.bool()}
		na := r.count(4)
		for j := 0; j < na && r.err == nil; j++ {
			fr.Arbs = append(fr.Arbs, r.pairsMap())
		}
		s.Families = append(s.Families, fr)
	}
	s.Parents = r.pairsMap()
	s.MultiParents = r.addrsMap()

	// Function-granular section (v3 only; v2 files end here with a nil
	// Funcs, which every consumer treats as "no incremental data").
	if h.Version >= 3 {
		switch r.u8() {
		case 0:
		case 1:
			fs := &FnSection{}
			copy(fs.ContextDigest[:], r.bytes(32))
			nf := r.count(48) // digest 32 + entry u64 + two counts
			for i := 0; i < nf && r.err == nil; i++ {
				var fb FnBundle
				copy(fb.Digest[:], r.bytes(32))
				fb.Ext.Entry = r.u64()
				ns := r.count(12) // vt u64 + event count u32
				for j := 0; j < ns && r.err == nil; j++ {
					seg := objtrace.Segment{VT: r.u64()}
					ne := r.count(9) // kind u8 + n u64
					for k := 0; k < ne && r.err == nil; k++ {
						kind := r.u8()
						if r.err == nil && kind > uint8(objtrace.EvCallF) {
							r.fail(fmt.Errorf("snapshot: unknown event kind %d in function bundle", kind))
							break
						}
						seg.Events = append(seg.Events, objtrace.Event{Kind: objtrace.EventKind(kind), N: r.u64()})
					}
					fb.Ext.Segments = append(fb.Ext.Segments, seg)
				}
				nos := r.count(5) // entryThis u8 + event count u32
				for j := 0; j < nos && r.err == nil; j++ {
					os := objtrace.ObjStruct{Fn: fb.Ext.Entry, EntryThis: r.bool()}
					ne := r.count(21)
					for k := 0; k < ne && r.err == nil; k++ {
						os.Events = append(os.Events, objtrace.StructEvent{
							Install: r.bool(),
							Off:     int32(r.u32()),
							VT:      r.u64(),
							Callee:  r.u64(),
						})
					}
					fb.Ext.Structs = append(fb.Ext.Structs, os)
				}
				fs.Funcs = append(fs.Funcs, fb)
			}
			nt := r.count(40) // type u64 + key 32
			fs.TypeKeys = make(map[uint64][32]byte, nt)
			for i := 0; i < nt && r.err == nil; i++ {
				t := r.u64()
				var k [32]byte
				copy(k[:], r.bytes(32))
				fs.TypeKeys[t] = k
			}
			s.Funcs = fs
		default:
			r.fail(fmt.Errorf("snapshot: bad function-section flag"))
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", len(r.data)-r.pos)
	}
	return s, nil
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// writer ----------------------------------------------------------------

type writer struct {
	buf []byte
}

func (w *writer) raw(s string) { w.buf = append(w.buf, s...) }
func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *writer) addrs(s []uint64) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.u64(v)
	}
}

// addrsMap writes a map of address slices with sorted keys.
func (w *writer) addrsMap(m map[uint64][]uint64) {
	keys := sortedKeys(m)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.u64(k)
		w.addrs(m[k])
	}
}

// pairsMap writes a map of single addresses with sorted keys.
func (w *writer) pairsMap(m map[uint64]uint64) {
	keys := sortedKeys(m)
	w.u32(uint32(len(keys)))
	for _, k := range keys {
		w.u64(k)
		w.u64(m[k])
	}
}

// reader ----------------------------------------------------------------

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return make([]byte, n)
	}
	if r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("snapshot: truncated input at offset %d", r.pos))
		return make([]byte, n)
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8   { return r.bytes(1)[0] }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }

func (r *reader) bool() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("snapshot: bad bool at offset %d", r.pos-1))
		return false
	}
}

// count reads an element count and validates it against the bytes
// remaining, given the minimum encoded size of one element — the guard
// that keeps a corrupted count from driving a huge allocation loop.
func (r *reader) count(minElem int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > r.remaining()/minElem {
		r.fail(fmt.Errorf("snapshot: count %d exceeds input size at offset %d", n, r.pos))
		return 0
	}
	return n
}

// addrs reads a length-prefixed address slice (nil when empty).
func (r *reader) addrs() []uint64 {
	n := r.count(8)
	if n == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.u64())
	}
	return out
}

// addrsMap reads a map of address slices (non-nil, possibly empty).
func (r *reader) addrsMap() map[uint64][]uint64 {
	n := r.count(12)
	out := make(map[uint64][]uint64, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.u64()
		out[k] = r.addrs()
	}
	return out
}

// pairsMap reads a map of single addresses (non-nil, possibly empty).
func (r *reader) pairsMap() map[uint64]uint64 {
	n := r.count(16)
	out := make(map[uint64]uint64, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := r.u64()
		out[k] = r.u64()
	}
	return out
}
