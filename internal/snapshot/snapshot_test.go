package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/objtrace"
	"repro/internal/pipeline"
	"repro/internal/slm"
	"repro/internal/structural"
	"repro/internal/vtable"
)

// sampleSnapshot builds a fully populated snapshot by hand, exercising
// every section including the empty-vs-nil conventions the decoder
// guarantees (nil address slices for empty candidate sets, non-nil maps).
func sampleSnapshot() *Snapshot {
	ev := func(k objtrace.EventKind, n uint64) objtrace.Event { return objtrace.Event{Kind: k, N: n} }
	alphabet := []objtrace.Event{
		ev(objtrace.EvCall, 0), ev(objtrace.EvCall, 1), ev(objtrace.EvThis, 0),
		ev(objtrace.EvRet, 0), ev(objtrace.EvCallF, 0x4010),
	}
	m := slm.New(2, len(alphabet))
	m.Train([]int{0, 2, 1})
	m.Train([]int{0, 1, 3})
	frozen := m.Freeze()

	s := &Snapshot{
		Alphabet: alphabet,
		VTables: []*vtable.VTable{
			{Addr: 0x2000, Slots: []uint64{0x4000, 0x4010}},
			{Addr: 0x2010, Slots: []uint64{0x4020}},
		},
		Tracelets: &objtrace.Result{
			PerType: map[uint64][]objtrace.Tracelet{
				0x2000: {
					objtrace.Tracelet{alphabet[0], alphabet[2]},
					objtrace.Tracelet{alphabet[1]},
				},
				0x2010: {objtrace.Tracelet{alphabet[4]}},
			},
			RawPerType: map[uint64][][]objtrace.Event{
				0x2000: {{alphabet[0], alphabet[2], alphabet[1]}},
			},
			Structs: []objtrace.ObjStruct{
				{Fn: 0x4000, EntryThis: true, Events: []objtrace.StructEvent{
					{Install: true, Off: 0, VT: 0x2000},
					{Install: false, Off: 8, Callee: 0x4020},
				}},
				{Fn: 0x4020, Events: []objtrace.StructEvent{
					{Install: true, Off: 16, VT: 0x2010},
				}},
			},
			FnVTables: map[uint64][]uint64{0x4000: {0x2000}, 0x4020: {0x2000, 0x2010}},
		},
		Structural: &structural.Result{
			Families: [][]uint64{{0x2000, 0x2010}},
			FamilyOf: map[uint64]int{0x2000: 0, 0x2010: 0},
			PossibleParents: map[uint64][]uint64{
				0x2000: nil, // candidate-free types keep nil slices
				0x2010: {0x2000},
			},
			DefinitiveParent:  map[uint64]uint64{0x2010: 0x2000},
			Purecall:          0x4fff,
			SecondaryInstalls: map[uint64][]uint64{0x2000: {0x2010}},
			InstallerOf:       map[uint64][]uint64{0x4000: {0x2000}},
		},
		Frozen: map[uint64]*slm.Frozen{0x2000: frozen, 0x2010: frozen},
		Dist: map[[2]uint64]float64{
			{0x2000, 0x2010}: 0.25,
			{0x2010, 0x2000}: 1.75,
		},
		Families: []Family{
			{Types: []uint64{0x2000, 0x2010}, Weight: 0.25, Arbs: []map[uint64]uint64{
				{0x2010: 0x2000},
			}},
		},
		Parents:      map[uint64]uint64{0x2010: 0x2000},
		MultiParents: map[uint64][]uint64{0x2010: {0x2000, 0x2010}},
		NameHash:     HashName("sample"),
		Funcs: &FnSection{
			ContextDigest: [32]byte{0xcc, 1, 2, 3},
			Funcs: []FnBundle{
				{Digest: [32]byte{0xfd, 0}, Ext: objtrace.FnExtraction{
					Entry: 0x4000,
					Segments: []objtrace.Segment{
						{VT: 0x2000, Events: []objtrace.Event{ev(objtrace.EvCall, 0), ev(objtrace.EvThis, 0)}},
						{VT: objtrace.EntryThisVT, Events: []objtrace.Event{ev(objtrace.EvRet, 0)}},
					},
					Structs: []objtrace.ObjStruct{
						{Fn: 0x4000, EntryThis: true, Events: []objtrace.StructEvent{
							{Install: true, Off: 0, VT: 0x2000},
						}},
					},
				}},
				// A function with no extraction output at all.
				{Digest: [32]byte{0xfd, 1}, Ext: objtrace.FnExtraction{Entry: 0x4010}},
			},
			TypeKeys: map[uint64][32]byte{
				0x2000: {0x7a, 0},
				0x2010: {0x7a, 1},
			},
		},
	}
	for i := range s.Key.Digest {
		s.Key.Digest[i] = byte(i)
		for sec := range s.Key.FPs {
			s.Key.FPs[sec][i] = byte(i + 1 + sec)
		}
	}
	return s
}

// TestSnapshotRoundTrip checks Encode→Decode full fidelity (DeepEqual over
// every section) and that encoding is canonical: re-encoding the decoded
// snapshot reproduces the original bytes exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip not deep-equal:\n want %+v\n got  %+v", s, got)
	}
	again, err := got.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !reflect.DeepEqual(data, again) {
		t.Fatal("re-encoding the decoded snapshot changed the bytes")
	}
}

// TestSnapshotWriteFileLoad checks the atomic write path: the file lands
// under its key-derived name, loads back deep-equal, and leaves no
// temporary droppings in the cache directory.
func TestSnapshotWriteFileLoad(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	path := filepath.Join(dir, s.Key.FileName())
	if err := s.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("loaded snapshot not deep-equal to the written one")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != s.Key.FileName() {
		t.Fatalf("cache dir holds %v, want only %s", entries, s.Key.FileName())
	}
}

// TestKeyUsable walks the staged-validity chain: reuse extends exactly up
// to the first fingerprint mismatch, and an image-digest mismatch (or a
// missing snapshot) invalidates everything.
func TestKeyUsable(t *testing.T) {
	s := sampleSnapshot()
	k := s.Key
	if got := k.Usable(s); got != LevelHierarchy {
		t.Errorf("matching key: level %d, want %d", got, LevelHierarchy)
	}
	if got := k.Usable(nil); got != LevelNone {
		t.Errorf("nil snapshot: level %d, want %d", got, LevelNone)
	}
	flipDigest := k
	flipDigest.Digest[0] ^= 1
	flipFP := func(sec pipeline.Section) Key {
		fk := k
		fk.FPs[sec][0] ^= 1
		return fk
	}
	cases := []struct {
		name string
		k    Key
		want int
	}{
		{"digest", flipDigest, LevelNone},
		{"extract", flipFP(pipeline.SecExtraction), LevelNone},
		{"model", flipFP(pipeline.SecModels), LevelExtraction},
		{"hier", flipFP(pipeline.SecHierarchy), LevelModels},
	}
	for _, c := range cases {
		if got := c.k.Usable(s); got != c.want {
			t.Errorf("%s mismatch: level %d, want %d", c.name, got, c.want)
		}
	}
}

// TestDecodeRejectsCorruption covers the decode guards the fuzzer also
// probes: truncations, bad magic, wrong version, and trailing garbage all
// error without panicking.
func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := sampleSnapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	bad[4] = Version + 1
	if _, err := Decode(bad); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A snapshot without a function section stays encodable and decodes
	// with Funcs nil (the presence flag, not heuristics, carries that).
	s := sampleSnapshot()
	s.Funcs = nil
	noFn, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := Decode(noFn); err != nil || got.Funcs != nil {
		t.Errorf("nil-Funcs round trip: funcs=%v err=%v", got.Funcs, err)
	}
}

// TestV2CompatRoundTrip pins the migration contract: a v2-encoded file
// (pre-incremental layout) still decodes as a whole-image-valid snapshot —
// same key and sections, nil function section, zero name hash — and its
// header parses through both probes.
func TestV2CompatRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data, err := s.EncodeVersion(2)
	if err != nil {
		t.Fatalf("encode v2: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode v2: %v", err)
	}
	if got.Funcs != nil {
		t.Error("v2 decode produced a function section")
	}
	if got.NameHash != ([32]byte{}) {
		t.Error("v2 decode produced a name hash")
	}
	want := sampleSnapshot()
	want.Funcs = nil
	want.NameHash = [32]byte{}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("v2 round trip lost sections")
	}
	if got.Key.Usable(got) != LevelHierarchy {
		t.Error("v2 snapshot not fully usable for its own key")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "v2.rsnap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	k, err := ReadKey(path)
	if err != nil || k != s.Key {
		t.Errorf("ReadKey on v2 file: key match=%v err=%v", k == s.Key, err)
	}
	h, err := ReadHeader(path)
	if err != nil || h.Version != 2 || h.NameHash != ([32]byte{}) {
		t.Errorf("ReadHeader on v2 file: %+v err=%v", h, err)
	}

	if _, err := s.EncodeVersion(1); err == nil {
		t.Error("EncodeVersion(1) accepted")
	}
}

// TestReadHeaderV3 checks the cheap probe surfaces the v3 name hash the
// incremental auto-discovery keys on.
func TestReadHeaderV3(t *testing.T) {
	s := sampleSnapshot()
	dir := t.TempDir()
	path := filepath.Join(dir, s.Key.FileName())
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != Version || h.Key != s.Key || h.NameHash != HashName("sample") {
		t.Fatalf("header mismatch: %+v", h)
	}
	if HashName("sample") == HashName("elsewhere") {
		t.Error("distinct names share a hash")
	}
}
