// Package structural implements the preprocessing phase of §5: it clusters
// binary types (vtables) into type families (Phase I) and eliminates
// impossible child→parent pairs within each family (Phase II), producing
// the possibleParent relation that focuses the behavioral analysis.
//
// Family evidence (Phase I):
//   - two vtables sharing a function pointer (inherited, un-overridden
//     implementations — the "DNA fingerprint" of §5.1); the pure-virtual
//     stub is excluded, since unrelated abstract classes share it;
//   - two vtables installed into the same object (observed instances,
//     including constructor-chain double installs and the subobject
//     installs of multiple inheritance);
//   - a constructor/destructor of one type calling the constructor/
//     destructor of another (§5.2 rule 3), which also yields a definitive
//     parent.
//
// Elimination rules (Phase II), for a candidate pair (child c, parent p):
//   - a child's vtable cannot have fewer slots than its parent's (§5.2
//     rule 1, as justified there: "a child class may only add functions to
//     the vtable of its parent or replace existing ones");
//   - if slot i of c is the pure-virtual stub but slot i of p is a concrete
//     implementation, c cannot derive from p: it would have inherited the
//     implementation or defined its own (§5.2 rule 2);
//   - a type with a constructor-derived definitive parent admits no other
//     candidates.
package structural

import (
	"sort"

	"repro/internal/image"
	"repro/internal/ir"
	"repro/internal/objtrace"
	"repro/internal/vtable"
)

// Config toggles the individual structural heuristics (for the ablation
// benchmarks).
type Config struct {
	// DisableSharedSlots turns off vtable-intersection family evidence.
	DisableSharedSlots bool
	// DisableInstanceInstalls turns off same-object multi-install family
	// evidence.
	DisableInstanceInstalls bool
	// DisableCtorCalls turns off rule 3 (definitive parents via ctor/dtor
	// chains) and its family joins.
	DisableCtorCalls bool
	// DisableSizeRule turns off elimination rule 1.
	DisableSizeRule bool
	// DisablePurecallRule turns off elimination rule 2.
	DisablePurecallRule bool
}

// Result is the output of the structural analysis.
type Result struct {
	// Families partitions the vtable addresses; each family is sorted.
	Families [][]uint64
	// FamilyOf maps a vtable address to its index in Families.
	FamilyOf map[uint64]int
	// PossibleParents maps each type to its surviving candidate parents
	// (always within the same family), sorted.
	PossibleParents map[uint64][]uint64
	// DefinitiveParent records parents established by rule 3.
	DefinitiveParent map[uint64]uint64
	// Purecall is the detected pure-virtual stub address (0 if none).
	Purecall uint64
	// SecondaryInstalls maps a primary type to the secondary vtables
	// installed at nonzero offsets of its instances (multiple-inheritance
	// evidence, §5.3).
	SecondaryInstalls map[uint64][]uint64
	// InstallerOf maps a function entry to the primary vtables it installs
	// on its receiver (constructor/destructor summaries).
	InstallerOf map[uint64][]uint64
}

// Analyze runs both phases.
func Analyze(img *image.Image, fns []*ir.Function, vts []*vtable.VTable, tr *objtrace.Result, cfg Config) *Result {
	res := &Result{
		FamilyOf:          map[uint64]int{},
		PossibleParents:   map[uint64][]uint64{},
		DefinitiveParent:  map[uint64]uint64{},
		SecondaryInstalls: map[uint64][]uint64{},
		InstallerOf:       map[uint64][]uint64{},
	}
	res.Purecall = findPurecall(img, fns)

	byAddr := vtable.ByAddr(vts)
	uf := newUnionFind()
	for _, v := range vts {
		uf.add(v.Addr)
	}

	// Phase I evidence 1: shared slots.
	if !cfg.DisableSharedSlots {
		owner := map[uint64]uint64{} // function -> first vtable seen containing it
		for _, v := range vts {
			for _, f := range v.Slots {
				if f == res.Purecall {
					continue
				}
				if prev, ok := owner[f]; ok {
					uf.union(prev, v.Addr)
				} else {
					owner[f] = v.Addr
				}
			}
		}
	}

	// Constructor/destructor summaries: functions that install a vtable at
	// offset 0 of their receiver.
	for _, os := range tr.Structs {
		if !os.EntryThis {
			continue
		}
		for _, e := range os.Events {
			if e.Install && e.Off == 0 {
				res.InstallerOf[os.Fn] = appendUnique(res.InstallerOf[os.Fn], e.VT)
			}
		}
	}

	// Phase I evidence 2 + 3, secondary installs, and definitive parents.
	for _, os := range tr.Structs {
		var primaries []uint64
		var secondaries []uint64
		var installerCallees []uint64
		for _, e := range os.Events {
			switch {
			case e.Install && e.Off == 0:
				primaries = append(primaries, e.VT)
			case e.Install:
				secondaries = append(secondaries, e.VT)
			case e.Callee != 0:
				if len(res.InstallerOf[e.Callee]) > 0 {
					installerCallees = append(installerCallees, e.Callee)
				}
			}
		}
		if len(primaries) == 0 {
			continue
		}
		// The most-derived type of the object is the last primary install
		// in a construction sequence; destructors install their own type
		// first. Either way every installed vtable shares the family.
		if !cfg.DisableInstanceInstalls {
			for _, vt := range primaries[1:] {
				uf.union(primaries[0], vt)
			}
			for _, vt := range secondaries {
				uf.union(primaries[0], vt)
			}
		}
		self := primaries[len(primaries)-1]
		if _, ok := byAddr[self]; !ok {
			continue
		}
		for _, vt := range secondaries {
			res.SecondaryInstalls[self] = appendUnique(res.SecondaryInstalls[self], vt)
		}
		if !cfg.DisableCtorCalls {
			for _, g := range installerCallees {
				installed := res.InstallerOf[g]
				parent := installed[len(installed)-1]
				if parent != self {
					res.DefinitiveParent[self] = parent
					uf.union(self, parent)
				}
			}
		}
	}

	// Materialize families.
	groups := map[uint64][]uint64{}
	for _, v := range vts {
		r := uf.find(v.Addr)
		groups[r] = append(groups[r], v.Addr)
	}
	roots := make([]uint64, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		fam := groups[r]
		sort.Slice(fam, func(i, j int) bool { return fam[i] < fam[j] })
		idx := len(res.Families)
		res.Families = append(res.Families, fam)
		for _, vt := range fam {
			res.FamilyOf[vt] = idx
		}
	}

	// Phase II: eliminate impossible parents within each family.
	for _, fam := range res.Families {
		for _, c := range fam {
			cv := byAddr[c]
			if dp, ok := res.DefinitiveParent[c]; ok {
				res.PossibleParents[c] = []uint64{dp}
				continue
			}
			var cands []uint64
			for _, p := range fam {
				if p == c {
					continue
				}
				pv := byAddr[p]
				if !cfg.DisableSizeRule && cv.NumSlots() < pv.NumSlots() {
					continue
				}
				if !cfg.DisablePurecallRule && res.Purecall != 0 && violatesPurecall(cv, pv, res.Purecall) {
					continue
				}
				cands = append(cands, p)
			}
			res.PossibleParents[c] = cands
		}
	}
	return res
}

// violatesPurecall reports whether child c has the pure stub at a slot
// where candidate parent p has a concrete implementation.
func violatesPurecall(c, p *vtable.VTable, purecall uint64) bool {
	n := c.NumSlots()
	if p.NumSlots() < n {
		n = p.NumSlots()
	}
	for i := 0; i < n; i++ {
		if c.Slots[i] == purecall && p.Slots[i] != purecall {
			return true
		}
	}
	return false
}

// findPurecall detects the pure-virtual stub: a function that calls the
// abort import and ends in a self-loop (a noreturn trap), the shape of
// MSVC's _purecall.
func findPurecall(img *image.Image, fns []*ir.Function) uint64 {
	for _, f := range fns {
		callsAbort := false
		selfLoop := false
		for i, in := range f.Insts {
			if in.Op == ir.OpCall && img.Imports[in.Imm] == image.ImportAbort {
				callsAbort = true
			}
			if in.Op == ir.OpJmp && in.Imm == f.AddrOf(i) {
				selfLoop = true
			}
		}
		if callsAbort && selfLoop {
			return f.Entry
		}
	}
	return 0
}

// Resolvable reports whether the structural analysis alone pins down a
// single hierarchy (§6.4's distinction between the benchmarks above and
// below the line): every type has at most one possible parent and the
// candidate graph is acyclic (two types that are each other's only
// candidate still admit two hierarchies).
func (r *Result) Resolvable() bool {
	for _, ps := range r.PossibleParents {
		if len(ps) > 1 {
			return false
		}
	}
	// Cycle check over the single-candidate edges.
	state := map[uint64]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(t uint64) bool
	visit = func(t uint64) bool {
		switch state[t] {
		case 1:
			return false
		case 2:
			return true
		}
		state[t] = 1
		for _, p := range r.PossibleParents[t] {
			if !visit(p) {
				return false
			}
		}
		state[t] = 2
		return true
	}
	for t := range r.PossibleParents {
		if !visit(t) {
			return false
		}
	}
	return true
}

func appendUnique(s []uint64, v uint64) []uint64 {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// union-find ------------------------------------------------------------------

type unionFind struct {
	parent map[uint64]uint64
}

func newUnionFind() *unionFind { return &unionFind{parent: map[uint64]uint64{}} }

func (u *unionFind) add(x uint64) {
	if _, ok := u.parent[x]; !ok {
		u.parent[x] = x
	}
}

func (u *unionFind) find(x uint64) uint64 {
	u.add(x)
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b uint64) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		u.parent[rb] = ra
	}
}
