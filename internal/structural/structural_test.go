package structural

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/cpp"
	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/objtrace"
	"repro/internal/vtable"
)

func analyze(t *testing.T, p *cpp.Program, opts compiler.Options, cfg Config) (*image.Image, *Result) {
	t.Helper()
	img, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, err := disasm.All(stripped)
	if err != nil {
		t.Fatal(err)
	}
	vts := vtable.Discover(stripped, fns)
	tr := objtrace.Extract(stripped, fns, vts, objtrace.DefaultConfig())
	return img, Analyze(stripped, fns, vts, tr, cfg)
}

func family(name string) *cpp.Program {
	b := &cpp.Program{Name: name}
	b.Classes = []*cpp.Class{
		{Name: "P", Methods: []*cpp.Method{{Name: "m", Virtual: true}}},
		{Name: "C1", Bases: []string{"P"}, Methods: []*cpp.Method{{Name: "a", Virtual: true}}},
		{Name: "C2", Bases: []string{"P"}, Methods: []*cpp.Method{{Name: "b", Virtual: true}, {Name: "c", Virtual: true}}},
		{Name: "X", Methods: []*cpp.Method{{Name: "z", Virtual: true}}},
	}
	for _, cls := range []string{"P", "C1", "C2", "X"} {
		b.Funcs = append(b.Funcs, &cpp.Func{Name: "use" + cls, Body: []cpp.Stmt{cpp.New{Dst: "o", Class: cls}}})
	}
	return b
}

func TestFamilyClusteringBySharedSlots(t *testing.T) {
	img, res := analyze(t, family("t"), compiler.DefaultOptions(), Config{})
	if len(res.Families) != 2 {
		t.Fatalf("got %d families, want 2 (P-family and X alone): %v", len(res.Families), res.Families)
	}
	p := img.Meta.TypeByName("P").VTable
	x := img.Meta.TypeByName("X").VTable
	if res.FamilyOf[p] == res.FamilyOf[x] {
		t.Error("unrelated X merged into P's family")
	}
}

func TestSizeRuleEliminatesLargerParents(t *testing.T) {
	img, res := analyze(t, family("t"), compiler.DefaultOptions(), Config{})
	p := img.Meta.TypeByName("P").VTable
	c1 := img.Meta.TypeByName("C1").VTable
	c2 := img.Meta.TypeByName("C2").VTable
	// P (2 slots) cannot have C1 (3) or C2 (4) as parents.
	if len(res.PossibleParents[p]) != 0 {
		t.Errorf("P candidates = %v, want none", res.PossibleParents[p])
	}
	// C1 can only descend from P; C2 from P or C1.
	if got := res.PossibleParents[c1]; len(got) != 1 || got[0] != p {
		t.Errorf("C1 candidates = %v", got)
	}
	if got := res.PossibleParents[c2]; len(got) != 2 {
		t.Errorf("C2 candidates = %v, want [P C1]", got)
	}
	// Ablation: with the size rule disabled, P picks up candidates.
	_, res = analyze(t, family("t"), compiler.DefaultOptions(), Config{DisableSizeRule: true})
	if len(res.PossibleParents[p]) == 0 {
		t.Error("size-rule ablation had no effect")
	}
}

func TestCtorCallsGiveDefinitiveParents(t *testing.T) {
	img, res := analyze(t, family("t"), compiler.DebugFriendlyOptions(), Config{})
	p := img.Meta.TypeByName("P").VTable
	c2 := img.Meta.TypeByName("C2").VTable
	if got := res.DefinitiveParent[c2]; got != p {
		t.Errorf("definitive parent of C2 = %#x, want P %#x", got, p)
	}
	if got := res.PossibleParents[c2]; len(got) != 1 || got[0] != p {
		t.Errorf("definitive parent should collapse candidates: %v", got)
	}
	if !res.Resolvable() {
		t.Error("cue-preserving build should be structurally resolvable")
	}
	// Ablation: without rule 3 the same build is unresolvable.
	_, res = analyze(t, family("t"), compiler.DebugFriendlyOptions(), Config{DisableCtorCalls: true})
	if res.Resolvable() {
		t.Error("ctor-rule ablation had no effect")
	}
}

func TestPurecallRule(t *testing.T) {
	p := &cpp.Program{
		Name: "t",
		Classes: []*cpp.Class{
			// Abstract A with a pure slot; concrete S of the same size with
			// a concrete slot at the same position.
			{Name: "A", Methods: []*cpp.Method{{Name: "m", Virtual: true, Pure: true}}},
			{Name: "B", Bases: []string{"A"}, Methods: []*cpp.Method{{Name: "m", Virtual: true}, {Name: "n", Virtual: true}}},
			{Name: "S", Methods: []*cpp.Method{{Name: "q", Virtual: true, Body: []cpp.Stmt{cpp.Opaque{Seed: 9}}}}},
		},
		Funcs: []*cpp.Func{
			{Name: "u1", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "B"}}},
			{Name: "u2", Body: []cpp.Stmt{cpp.New{Dst: "o", Class: "S"}}},
		},
	}
	opts := compiler.DebugFriendlyOptions()
	img, err := compiler.Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Strip()
	fns, _ := disasm.All(stripped)
	vts := vtable.Discover(stripped, fns)
	tr := objtrace.Extract(stripped, fns, vts, objtrace.DefaultConfig())
	res := Analyze(stripped, fns, vts, tr, Config{})
	if res.Purecall == 0 {
		t.Fatal("purecall stub not detected")
	}
	// A (child) pure at slot 1 where S (parent) is concrete: impossible.
	a := img.Meta.TypeByName("A").VTable
	s := img.Meta.TypeByName("S").VTable
	// Force them into one family for the test by checking the rule
	// directly.
	av := vtable.ByAddr(vts)[a]
	sv := vtable.ByAddr(vts)[s]
	if !violatesPurecall(av, sv, res.Purecall) {
		t.Error("pure child / concrete parent should violate rule 2")
	}
	if violatesPurecall(sv, av, res.Purecall) {
		t.Error("concrete child / pure parent is legitimate")
	}
}

func TestInstallerSummaries(t *testing.T) {
	img, res := analyze(t, family("t"), compiler.DebugFriendlyOptions(), Config{})
	found := 0
	for _, vts := range res.InstallerOf {
		found += len(vts)
	}
	if found == 0 {
		t.Fatal("no constructor summaries recorded")
	}
	_ = img
}
