package synth_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/image"
	"repro/internal/synth"
)

// FuzzGenerate drives the generator with arbitrary bounded Params and
// compile options: generation, compilation, and image loading must never
// panic, and the returned ground truth must stay consistent with the
// emitted program (a forest matching SourceHierarchy's primary map).
func FuzzGenerate(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(2), uint8(2), uint8(1), uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(42), uint8(4), uint8(8), uint8(1), uint8(3), uint8(2), uint8(2), uint8(1), uint8(0x1f), uint8(0xff))
	f.Add(int64(-7), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(2), uint8(0x05), uint8(0x24))
	f.Fuzz(func(t *testing.T, seed int64, families, depth, branch, methods, fields, reps, shape, knobs, optbits uint8) {
		p := synth.Params{
			Seed:            seed,
			Families:        int(families % 5),
			MaxDepth:        int(depth % 9),
			MaxBranch:       int(branch % 5),
			MethodsPerClass: int(methods % 4),
			FieldsPerClass:  int(fields % 4),
			UseReps:         int(reps % 4),
			Shape:           synth.Shape(shape % 3),
			Diamonds:        knobs&1 != 0,
			AbstractRoots:   knobs&2 != 0,
			Interleave:      knobs&4 != 0,
			Getters:         knobs&8 != 0,
		}
		prog, parents := synth.Generate(p)
		if err := prog.Validate(); err != nil {
			t.Fatalf("invalid program: %v", err)
		}
		prim, _ := prog.SourceHierarchy()
		if len(parents) != len(prim) {
			t.Fatalf("ground truth has %d edges, SourceHierarchy %d", len(parents), len(prim))
		}
		for c, par := range parents {
			if prim[c] != par {
				t.Fatalf("ground truth %s -> %s, SourceHierarchy says %q", c, par, prim[c])
			}
			steps := 0
			for n := c; n != ""; n = parents[n] {
				if steps++; steps > len(prog.Classes) {
					t.Fatalf("ground-truth cycle through %s", c)
				}
			}
		}
		opts := compiler.Options{
			InlineCtorAtNew:          optbits&1 != 0,
			InlineParentCtors:        optbits&2 != 0,
			ElideDeadVtableStores:    optbits&4 != 0,
			RemoveAbstractClasses:    optbits&8 != 0,
			FoldIdenticalBodies:      optbits&16 != 0,
			EmitDtors:                optbits&32 != 0,
			DevirtualizeMono:         optbits&64 != 0,
			ComdatFoldMethods:        optbits&128 != 0,
			PartialInlineParentCtors: optbits&2 == 0 && knobs&16 != 0,
		}
		img, err := compiler.Compile(prog, opts)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		buf, err := img.Strip().Marshal()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := image.Load(buf); err != nil {
			t.Fatalf("load: %v", err)
		}
	})
}
