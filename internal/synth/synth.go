// Package synth generates random object-oriented programs for property
// tests, scalability runs, and the adversarial accuracy grid — the
// stand-in for the paper's large no-ground-truth binary (Skype, 21.6 MB):
// a seeded generator produces programs with many independent hierarchies,
// graded usage functions, and a known source hierarchy to validate
// against.
//
// Beyond the legacy random trees, Params carries hierarchy-shape knobs
// (deep chains, wide fans, multiple-inheritance diamonds,
// hierarchy-splitting abstract roots, interleaved multi-family
// declaration order, COMDAT-foldable accessor methods) so the accuracy
// harness (internal/eval, rockbench -synth) can sweep scenarios the 19
// hand-written Table 2 benchmarks never reach. Generation is a pure
// function of Params: equal Params yield byte-identical programs and
// ground-truth maps.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/cpp"
)

// Shape selects the hierarchy skeleton of every generated family.
type Shape int

const (
	// ShapeRandom is the legacy seeded random tree bounded by
	// MaxDepth/MaxBranch.
	ShapeRandom Shape = iota
	// ShapeDeep grows chain-heavy families: single-child descent to
	// MaxDepth, stressing long ancestry gradients and graded containment.
	ShapeDeep
	// ShapeWide grows flat families: MaxBranch children under the root
	// (and a random second level below each), stressing sibling
	// disambiguation where structural evidence is symmetric.
	ShapeWide
)

// String names the shape for reports and config labels.
func (s Shape) String() string {
	switch s {
	case ShapeDeep:
		return "deep"
	case ShapeWide:
		return "wide"
	default:
		return "random"
	}
}

// Params controls program generation.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// Families is the number of independent class hierarchies.
	Families int
	// MaxDepth bounds each hierarchy's depth (>= 1).
	MaxDepth int
	// MaxBranch bounds the children per class.
	MaxBranch int
	// MethodsPerClass bounds the new virtual methods a class introduces
	// (at least 1 is always introduced by a root).
	MethodsPerClass int
	// FieldsPerClass bounds the fields a class introduces.
	FieldsPerClass int
	// UseReps is the idiom repetition count in usage functions.
	UseReps int

	// Shape selects the skeleton of every family. ShapeRandom (the zero
	// value) with every knob below unset reproduces the legacy generator
	// byte for byte.
	Shape Shape
	// Diamonds inserts a multiple-inheritance diamond at the top of each
	// family: root -> left/right, then a join class inheriting both (the
	// source model's analogue of a virtual-inheritance diamond — the base
	// subobject is duplicated, as in non-virtual C++ diamonds). The rest
	// of the family grows below the join.
	Diamonds bool
	// AbstractRoots makes every family root pure-virtual with at least
	// two concrete subtrees, so compiling with RemoveAbstractClasses
	// splits the family into several binary trees (§4.1, Fig. 9).
	AbstractRoots bool
	// Interleave declares classes round-robin across families instead of
	// contiguously per family, scattering each hierarchy's vtables across
	// the image layout.
	Interleave bool
	// Getters adds to every class with fields a virtual accessor reading
	// its first field: classes whose first field lands on the same byte
	// offset compile to byte-identical bodies — the bait for
	// identical-code / COMDAT folding modes.
	Getters bool
}

// DefaultParams returns a mid-sized workload.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:            seed,
		Families:        8,
		MaxDepth:        4,
		MaxBranch:       3,
		MethodsPerClass: 3,
		FieldsPerClass:  2,
		UseReps:         3,
	}
}

// normalized clamps the bounds the generator relies on.
func (p Params) normalized() Params {
	p.Families = max(1, p.Families)
	p.MaxDepth = max(1, p.MaxDepth)
	p.MaxBranch = max(1, p.MaxBranch)
	p.UseReps = max(1, p.UseReps)
	if p.FieldsPerClass < 0 {
		p.FieldsPerClass = 0
	}
	return p
}

// shaped reports whether any of the new shape knobs is set (the legacy
// path is kept verbatim so existing seeds keep producing the exact same
// programs).
func (p Params) shaped() bool {
	return p.Shape != ShapeRandom || p.Diamonds || p.AbstractRoots || p.Interleave || p.Getters
}

// Generate builds a random program and its expected source hierarchy
// (child class -> primary parent class). The returned map is always a
// forest: every parent is a generated class and parent links are acyclic.
func Generate(p Params) (*cpp.Program, map[string]string) {
	p = p.normalized()
	if p.shaped() {
		return generateShaped(p)
	}
	return generateLegacy(p)
}

// generateLegacy is the original recursive generator, kept byte-for-byte
// compatible: programs produced for a given seed before the shape knobs
// existed are reproduced exactly.
func generateLegacy(p Params) (*cpp.Program, map[string]string) {
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &cpp.Program{Name: fmt.Sprintf("synth-%d", p.Seed)}
	parents := map[string]string{}

	clsID := 0
	methodID := 0
	// newMethods / newFields per class for usage generation.
	newMethods := map[string][]string{}
	newFields := map[string][]string{}
	chainOf := map[string][]string{} // root-first ancestry including self

	var grow func(fam int, parent string, depth int)
	grow = func(fam int, parent string, depth int) {
		name := fmt.Sprintf("F%dC%d", fam, clsID)
		clsID++
		c := &cpp.Class{Name: name}
		if parent != "" {
			c.Bases = []string{parent}
			parents[name] = parent
		}
		nm := 1 + rng.Intn(max(1, p.MethodsPerClass))
		for i := 0; i < nm; i++ {
			m := fmt.Sprintf("m%d", methodID)
			methodID++
			c.Methods = append(c.Methods, &cpp.Method{
				Name: m, Virtual: true,
				Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(methodID)*2654435761 + 17}},
			})
			newMethods[name] = append(newMethods[name], m)
		}
		nf := rng.Intn(p.FieldsPerClass + 1)
		for i := 0; i < nf; i++ {
			f := fmt.Sprintf("f%d_%d", clsID, i)
			c.Fields = append(c.Fields, cpp.Field{Name: f})
			newFields[name] = append(newFields[name], f)
		}
		// Occasionally override one inherited method.
		if parent != "" && rng.Intn(2) == 0 {
			inherited := newMethods[chainOf[parent][0]]
			if len(inherited) > 0 {
				m := inherited[rng.Intn(len(inherited))]
				c.Methods = append(c.Methods, &cpp.Method{
					Name: m, Virtual: true,
					Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(clsID)*97 + uint64(len(m))}},
				})
			}
		}
		prog.Classes = append(prog.Classes, c)
		if parent == "" {
			chainOf[name] = []string{name}
		} else {
			chainOf[name] = append(append([]string(nil), chainOf[parent]...), name)
		}

		// Helper function (distinctive call(f) symbol per class).
		helper := "h_" + name
		prog.Funcs = append(prog.Funcs, &cpp.Func{
			Name:   helper,
			Params: []cpp.Param{{Name: "o", Class: name}},
			Body:   []cpp.Stmt{cpp.Opaque{Seed: uint64(clsID) * 31}, cpp.Return{}},
		})

		// Usage function: graded idiom over the ancestry chain.
		body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
		for _, level := range chainOf[name] {
			for r := 0; r < p.UseReps; r++ {
				for _, m := range newMethods[level] {
					body = append(body, cpp.VCall{Obj: "o", Method: m})
				}
				for _, f := range newFields[level] {
					body = append(body, cpp.WriteField{Obj: "o", Field: f})
				}
				body = append(body, cpp.CallFunc{Name: "h_" + level, Args: []cpp.Arg{cpp.ObjArg("o")}})
			}
		}
		prog.Funcs = append(prog.Funcs, &cpp.Func{Name: "use_" + name, Body: body})

		if depth < p.MaxDepth {
			kids := rng.Intn(p.MaxBranch + 1)
			if depth == 1 && kids == 0 {
				kids = 1 // every family has at least one edge
			}
			for k := 0; k < kids; k++ {
				grow(fam, name, depth+1)
			}
		}
	}
	for fam := 0; fam < p.Families; fam++ {
		grow(fam, "", 1)
	}
	return prog, parents
}

// skelNode is one class of a family skeleton before emission: the shape
// pass fixes names and inheritance, the emission pass draws methods,
// fields, and usage functions in declaration order.
type skelNode struct {
	name     string
	parent   string // primary base ("" for a root)
	second   string // secondary base ("" unless a diamond join)
	depth    int
	abstract bool
}

// generateShaped is the structured generator behind the shape knobs. It
// runs in two deterministic passes: skeleton construction (family by
// family, one rng stream) and class/function emission in declaration
// order (contiguous per family, or round-robin with Interleave).
func generateShaped(p Params) (*cpp.Program, map[string]string) {
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &cpp.Program{Name: fmt.Sprintf("synth-%d", p.Seed)}

	// Pass 1: skeletons. Each family's node list is parent-before-child.
	clsID := 0
	var fams [][]*skelNode
	for fam := 0; fam < p.Families; fam++ {
		var nodes []*skelNode
		add := func(parent, second *skelNode, depth int, abstract bool) *skelNode {
			n := &skelNode{name: fmt.Sprintf("F%dC%d", fam, clsID), depth: depth, abstract: abstract}
			clsID++
			if parent != nil {
				n.parent = parent.name
			}
			if second != nil {
				n.second = second.name
			}
			nodes = append(nodes, n)
			return n
		}
		root := add(nil, nil, 1, p.AbstractRoots)
		top := root
		if p.Diamonds {
			l := add(root, nil, 2, false)
			r := add(root, nil, 2, false)
			top = add(l, r, 3, false) // the join: primary base l, secondary r
		}
		// minKids guarantees an abstract root splits into >= 2 subtrees
		// (the diamond's two arms already do).
		minKids := 1
		if p.AbstractRoots && !p.Diamonds {
			minKids = 2
		}
		switch p.Shape {
		case ShapeDeep:
			chains := max(1, minKids)
			for c := 0; c < chains; c++ {
				cur := top
				for d := top.depth; d < p.MaxDepth; d++ {
					cur = add(cur, nil, d+1, false)
				}
			}
		case ShapeWide:
			kids := max(p.MaxBranch, minKids)
			for k := 0; k < kids; k++ {
				c := add(top, nil, top.depth+1, false)
				if c.depth < p.MaxDepth {
					for j, n2 := 0, rng.Intn(p.MaxBranch+1); j < n2; j++ {
						add(c, nil, c.depth+1, false)
					}
				}
			}
		default: // ShapeRandom skeleton
			var grow func(parent *skelNode)
			grow = func(parent *skelNode) {
				if parent.depth >= p.MaxDepth {
					return
				}
				for k, kids := 0, rng.Intn(p.MaxBranch+1); k < kids; k++ {
					grow(add(parent, nil, parent.depth+1, false))
				}
			}
			kids := max(rng.Intn(p.MaxBranch+1), minKids)
			for k := 0; k < kids; k++ {
				grow(add(top, nil, top.depth+1, false))
			}
		}
		fams = append(fams, nodes)
	}

	// Declaration order: contiguous per family, or round-robin across
	// families. Both keep every parent declared before its children.
	var order []*skelNode
	if p.Interleave {
		for i := 0; ; i++ {
			took := false
			for _, nodes := range fams {
				if i < len(nodes) {
					order = append(order, nodes[i])
					took = true
				}
			}
			if !took {
				break
			}
		}
	} else {
		for _, nodes := range fams {
			order = append(order, nodes...)
		}
	}

	// Pass 2: emission in declaration order.
	parents := map[string]string{}
	newMethods := map[string][]string{}
	newFields := map[string][]string{}
	chainOf := map[string][]string{} // root-first primary ancestry incl. self
	byName := map[string]*skelNode{}
	methodID := 0
	for _, n := range order {
		byName[n.name] = n
		c := &cpp.Class{Name: n.name}
		if n.parent != "" {
			c.Bases = []string{n.parent}
			if n.second != "" {
				c.Bases = append(c.Bases, n.second)
			}
			parents[n.name] = n.parent
			chainOf[n.name] = append(append([]string(nil), chainOf[n.parent]...), n.name)
		} else {
			chainOf[n.name] = []string{n.name}
		}

		nm := 1 + rng.Intn(max(1, p.MethodsPerClass))
		for i := 0; i < nm; i++ {
			m := fmt.Sprintf("m%d", methodID)
			methodID++
			mm := &cpp.Method{Name: m, Virtual: true}
			if n.abstract {
				mm.Pure = true
			} else {
				mm.Body = []cpp.Stmt{cpp.Opaque{Seed: uint64(methodID)*2654435761 + 17}}
			}
			c.Methods = append(c.Methods, mm)
			newMethods[n.name] = append(newMethods[n.name], m)
		}
		nf := rng.Intn(p.FieldsPerClass + 1)
		for i := 0; i < nf; i++ {
			f := fmt.Sprintf("f_%s_%d", n.name, i)
			c.Fields = append(c.Fields, cpp.Field{Name: f})
			newFields[n.name] = append(newFields[n.name], f)
		}
		if p.Getters && nf > 0 {
			// Accessor of the first own field: classes whose first field
			// sits at the same offset compile to identical bodies.
			g := fmt.Sprintf("g%d", methodID)
			methodID++
			c.Methods = append(c.Methods, &cpp.Method{
				Name: g, Virtual: true,
				Body: []cpp.Stmt{cpp.ReadField{Obj: "this", Field: newFields[n.name][0]}},
			})
			newMethods[n.name] = append(newMethods[n.name], g)
		}
		if n.parent != "" {
			if par := byName[n.parent]; par.abstract {
				// A concrete child of an abstract root must override every
				// inherited method to be instantiable.
				for _, m := range newMethods[n.parent] {
					c.Methods = append(c.Methods, &cpp.Method{
						Name: m, Virtual: true,
						Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(methodID)*131 + uint64(len(m))}},
					})
					methodID++
				}
			} else if rng.Intn(2) == 0 {
				// Occasionally override one root-introduced method.
				inherited := newMethods[chainOf[n.parent][0]]
				if len(inherited) > 0 {
					m := inherited[rng.Intn(len(inherited))]
					if c.Method(m) == nil {
						c.Methods = append(c.Methods, &cpp.Method{
							Name: m, Virtual: true,
							Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(methodID)*97 + uint64(len(m))}},
						})
						methodID++
					}
				}
			}
		}
		prog.Classes = append(prog.Classes, c)

		// Helper function (distinctive call(f) symbol per class).
		prog.Funcs = append(prog.Funcs, &cpp.Func{
			Name:   "h_" + n.name,
			Params: []cpp.Param{{Name: "o", Class: n.name}},
			Body:   []cpp.Stmt{cpp.Opaque{Seed: uint64(len(prog.Classes)) * 31}, cpp.Return{}},
		})

		// Usage function: graded idiom over the primary chain; a diamond
		// join additionally performs its secondary base's idiom, so the
		// behavioral containment covers both arms.
		if n.abstract {
			continue
		}
		levels := append([]string(nil), chainOf[n.name]...)
		if n.second != "" {
			levels = append(levels[:len(levels)-1], n.second, n.name)
		}
		body := []cpp.Stmt{cpp.New{Dst: "o", Class: n.name}}
		for _, level := range levels {
			for r := 0; r < p.UseReps; r++ {
				for _, m := range newMethods[level] {
					body = append(body, cpp.VCall{Obj: "o", Method: m})
				}
				for _, f := range newFields[level] {
					body = append(body, cpp.WriteField{Obj: "o", Field: f})
				}
				body = append(body, cpp.CallFunc{Name: "h_" + level, Args: []cpp.Arg{cpp.ObjArg("o")}})
			}
		}
		prog.Funcs = append(prog.Funcs, &cpp.Func{Name: "use_" + n.name, Body: body})
	}
	return prog, parents
}
