// Package synth generates random object-oriented programs for property
// tests and scalability runs — the stand-in for the paper's large
// no-ground-truth binary (Skype, 21.6 MB): a seeded generator produces
// programs with many independent hierarchies, graded usage functions, and
// a known source hierarchy to validate against.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/cpp"
)

// Params controls program generation.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// Families is the number of independent class hierarchies.
	Families int
	// MaxDepth bounds each hierarchy's depth (>= 1).
	MaxDepth int
	// MaxBranch bounds the children per class.
	MaxBranch int
	// MethodsPerClass bounds the new virtual methods a class introduces
	// (at least 1 is always introduced by a root).
	MethodsPerClass int
	// FieldsPerClass bounds the fields a class introduces.
	FieldsPerClass int
	// UseReps is the idiom repetition count in usage functions.
	UseReps int
}

// DefaultParams returns a mid-sized workload.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:            seed,
		Families:        8,
		MaxDepth:        4,
		MaxBranch:       3,
		MethodsPerClass: 3,
		FieldsPerClass:  2,
		UseReps:         3,
	}
}

// Generate builds a random program and its expected source hierarchy
// (child class -> parent class).
func Generate(p Params) (*cpp.Program, map[string]string) {
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &cpp.Program{Name: fmt.Sprintf("synth-%d", p.Seed)}
	parents := map[string]string{}
	if p.Families < 1 {
		p.Families = 1
	}
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	if p.MaxBranch < 1 {
		p.MaxBranch = 1
	}
	if p.UseReps < 1 {
		p.UseReps = 1
	}

	clsID := 0
	methodID := 0
	// newMethods / newFields per class for usage generation.
	newMethods := map[string][]string{}
	newFields := map[string][]string{}
	chainOf := map[string][]string{} // root-first ancestry including self

	var grow func(fam int, parent string, depth int)
	grow = func(fam int, parent string, depth int) {
		name := fmt.Sprintf("F%dC%d", fam, clsID)
		clsID++
		c := &cpp.Class{Name: name}
		if parent != "" {
			c.Bases = []string{parent}
			parents[name] = parent
		}
		nm := 1 + rng.Intn(maxi(1, p.MethodsPerClass))
		for i := 0; i < nm; i++ {
			m := fmt.Sprintf("m%d", methodID)
			methodID++
			c.Methods = append(c.Methods, &cpp.Method{
				Name: m, Virtual: true,
				Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(methodID)*2654435761 + 17}},
			})
			newMethods[name] = append(newMethods[name], m)
		}
		nf := rng.Intn(p.FieldsPerClass + 1)
		for i := 0; i < nf; i++ {
			f := fmt.Sprintf("f%d_%d", clsID, i)
			c.Fields = append(c.Fields, cpp.Field{Name: f})
			newFields[name] = append(newFields[name], f)
		}
		// Occasionally override one inherited method.
		if parent != "" && rng.Intn(2) == 0 {
			inherited := newMethods[chainOf[parent][0]]
			if len(inherited) > 0 {
				m := inherited[rng.Intn(len(inherited))]
				c.Methods = append(c.Methods, &cpp.Method{
					Name: m, Virtual: true,
					Body: []cpp.Stmt{cpp.Opaque{Seed: uint64(clsID)*97 + uint64(len(m))}},
				})
			}
		}
		prog.Classes = append(prog.Classes, c)
		if parent == "" {
			chainOf[name] = []string{name}
		} else {
			chainOf[name] = append(append([]string(nil), chainOf[parent]...), name)
		}

		// Helper function (distinctive call(f) symbol per class).
		helper := "h_" + name
		prog.Funcs = append(prog.Funcs, &cpp.Func{
			Name:   helper,
			Params: []cpp.Param{{Name: "o", Class: name}},
			Body:   []cpp.Stmt{cpp.Opaque{Seed: uint64(clsID) * 31}, cpp.Return{}},
		})

		// Usage function: graded idiom over the ancestry chain.
		body := []cpp.Stmt{cpp.New{Dst: "o", Class: name}}
		for _, level := range chainOf[name] {
			for r := 0; r < p.UseReps; r++ {
				for _, m := range newMethods[level] {
					body = append(body, cpp.VCall{Obj: "o", Method: m})
				}
				for _, f := range newFields[level] {
					body = append(body, cpp.WriteField{Obj: "o", Field: f})
				}
				body = append(body, cpp.CallFunc{Name: "h_" + level, Args: []cpp.Arg{cpp.ObjArg("o")}})
			}
		}
		prog.Funcs = append(prog.Funcs, &cpp.Func{Name: "use_" + name, Body: body})

		if depth < p.MaxDepth {
			kids := rng.Intn(p.MaxBranch + 1)
			if depth == 1 && kids == 0 {
				kids = 1 // every family has at least one edge
			}
			for k := 0; k < kids; k++ {
				grow(fam, name, depth+1)
			}
		}
	}
	for fam := 0; fam < p.Families; fam++ {
		grow(fam, "", 1)
	}
	return prog, parents
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
