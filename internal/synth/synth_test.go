package synth

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/eval"
)

// TestGeneratedProgramsCompileAndValidate checks generator output across
// seeds.
func TestGeneratedProgramsCompileAndValidate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog, parents := Generate(DefaultParams(seed))
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		if len(parents) == 0 {
			t.Fatalf("seed %d: no hierarchy edges generated", seed)
		}
		if _, err := compiler.Compile(prog, compiler.DebugFriendlyOptions()); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
	}
}

// TestStructuralRecoveryOnRandomPrograms: with constructor cues retained,
// the structural analysis alone must recover the exact induced hierarchy of
// random programs.
func TestStructuralRecoveryOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		prog, _ := Generate(DefaultParams(seed))
		img, err := compiler.Compile(prog, compiler.DebugFriendlyOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Analyze(img.Strip(), core.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gt, err := eval.GroundTruthForest(img.Meta)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tt := range gt.Nodes() {
			wantP, wantOK := gt.Parent(tt)
			gotP, gotOK := res.Hierarchy.Parent(tt)
			if wantOK != gotOK || (wantOK && wantP != gotP) {
				t.Errorf("seed %d: type %s parent mismatch (want %v,%v got %v,%v)",
					seed, core.TypeNamer(img.Meta)(tt), wantP, wantOK, gotP, gotOK)
			}
		}
	}
}

// TestBehavioralRecoveryOnRandomPrograms: with all cues optimized away, the
// statistical analysis should still recover most parents of random
// programs via graded usage (Hypothesis 4.1 at scale).
func TestBehavioralRecoveryOnRandomPrograms(t *testing.T) {
	total, correct := 0, 0
	for seed := int64(100); seed < 104; seed++ {
		prog, _ := Generate(DefaultParams(seed))
		img, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Analyze(img.Strip(), core.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gt, err := eval.GroundTruthForest(img.Meta)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tt := range gt.Nodes() {
			wantP, wantOK := gt.Parent(tt)
			gotP, gotOK := res.Hierarchy.Parent(tt)
			total++
			if wantOK == gotOK && (!wantOK || wantP == gotP) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no types analyzed")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("behavioral parent accuracy %.2f (%d/%d) below 0.8", acc, correct, total)
	}
	t.Logf("behavioral parent accuracy: %.3f (%d/%d)", acc, correct, total)
}
