package synth_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpp"
	"repro/internal/eval"
	"repro/internal/synth"
)

// shapedParamsGrid covers every shape knob (and their combinations) for
// the property tests below.
func shapedParamsGrid() []synth.Params {
	var out []synth.Params
	out = append(out, synth.DefaultParams(3)) // legacy path
	deep := synth.DefaultParams(5)
	deep.Shape = synth.ShapeDeep
	deep.MaxDepth = 7
	deep.MaxBranch = 1
	out = append(out, deep)
	wide := synth.DefaultParams(7)
	wide.Shape = synth.ShapeWide
	wide.MaxDepth = 3
	wide.MaxBranch = 5
	out = append(out, wide)
	diamonds := synth.DefaultParams(11)
	diamonds.Diamonds = true
	out = append(out, diamonds)
	split := synth.DefaultParams(13)
	split.AbstractRoots = true
	out = append(out, split)
	inter := synth.DefaultParams(17)
	inter.Interleave = true
	inter.Getters = true
	out = append(out, inter)
	all := synth.DefaultParams(19)
	all.Shape = synth.ShapeDeep
	all.Diamonds = true
	all.AbstractRoots = true
	all.Interleave = true
	all.Getters = true
	out = append(out, all)
	return out
}

// TestGenerateDeterminism: generation is a pure function of synth.Params — equal
// synth.Params yield deep-equal programs and ground-truth maps, and the
// compiled images are byte-identical.
func TestGenerateDeterminism(t *testing.T) {
	for i, p := range shapedParamsGrid() {
		progA, parentsA := synth.Generate(p)
		progB, parentsB := synth.Generate(p)
		if !reflect.DeepEqual(progA, progB) {
			t.Fatalf("params %d: programs differ across runs", i)
		}
		if !reflect.DeepEqual(parentsA, parentsB) {
			t.Fatalf("params %d: ground-truth maps differ across runs", i)
		}
		imgA, err := compiler.Compile(progA, compiler.DebugFriendlyOptions())
		if err != nil {
			t.Fatalf("params %d: compile: %v", i, err)
		}
		imgB, err := compiler.Compile(progB, compiler.DebugFriendlyOptions())
		if err != nil {
			t.Fatalf("params %d: compile: %v", i, err)
		}
		bufA, err := imgA.Strip().Marshal()
		if err != nil {
			t.Fatalf("params %d: marshal: %v", i, err)
		}
		bufB, err := imgB.Strip().Marshal()
		if err != nil {
			t.Fatalf("params %d: marshal: %v", i, err)
		}
		if !bytes.Equal(bufA, bufB) {
			t.Fatalf("params %d: compiled images differ across runs", i)
		}
	}
}

// checkForest asserts the ground-truth map is a forest over the program's
// classes: every parent is a generated class, every link matches the
// source model's primary base, and parent links are acyclic.
func checkForest(t *testing.T, prog *cpp.Program, parents map[string]string) {
	t.Helper()
	prim, _ := prog.SourceHierarchy()
	if !reflect.DeepEqual(parents, prim) {
		t.Fatalf("ground truth disagrees with SourceHierarchy:\n got  %v\n want %v", parents, prim)
	}
	for child, parent := range parents {
		if prog.Class(child) == nil || prog.Class(parent) == nil {
			t.Fatalf("edge %s -> %s references unknown class", child, parent)
		}
		// Walk up; a cycle would exceed the class count.
		steps := 0
		for n := child; n != ""; n = parents[n] {
			if steps++; steps > len(prog.Classes) {
				t.Fatalf("cycle through %s", child)
			}
		}
	}
}

// TestGroundTruthIsForest: across every shape, the returned hierarchy is
// a forest consistent with the generated source.
func TestGroundTruthIsForest(t *testing.T) {
	for i, p := range shapedParamsGrid() {
		prog, parents := synth.Generate(p)
		if err := prog.Validate(); err != nil {
			t.Fatalf("params %d: invalid program: %v", i, err)
		}
		if len(parents) == 0 {
			t.Fatalf("params %d: no hierarchy edges generated", i)
		}
		checkForest(t, prog, parents)
	}
}

// TestShapeKnobs spot-checks that each knob produces its advertised
// structure.
func TestShapeKnobs(t *testing.T) {
	depthOf := func(parents map[string]string, c string) int {
		d := 0
		for n := c; parents[n] != ""; n = parents[n] {
			d++
		}
		return d
	}
	t.Run("deep", func(t *testing.T) {
		p := synth.DefaultParams(5)
		p.Shape = synth.ShapeDeep
		p.MaxDepth = 7
		p.MaxBranch = 1
		_, parents := synth.Generate(p)
		maxDepth := 0
		for c := range parents {
			maxDepth = max(maxDepth, depthOf(parents, c))
		}
		if maxDepth < p.MaxDepth-1 {
			t.Errorf("deep shape max depth %d, want >= %d", maxDepth, p.MaxDepth-1)
		}
	})
	t.Run("wide", func(t *testing.T) {
		p := synth.DefaultParams(7)
		p.Shape = synth.ShapeWide
		p.MaxBranch = 5
		_, parents := synth.Generate(p)
		kids := map[string]int{}
		for _, par := range parents {
			kids[par]++
		}
		widest := 0
		for _, n := range kids {
			widest = max(widest, n)
		}
		if widest < p.MaxBranch {
			t.Errorf("wide shape max fan-out %d, want >= %d", widest, p.MaxBranch)
		}
	})
	t.Run("diamonds", func(t *testing.T) {
		p := synth.DefaultParams(11)
		p.Diamonds = true
		prog, _ := synth.Generate(p)
		_, sec := prog.SourceHierarchy()
		if len(sec) < p.Families {
			t.Errorf("diamonds produced %d MI joins, want >= %d", len(sec), p.Families)
		}
	})
	t.Run("abstract-roots", func(t *testing.T) {
		p := synth.DefaultParams(13)
		p.AbstractRoots = true
		prog, parents := synth.Generate(p)
		roots := map[string]bool{}
		for c := range parents {
			n := c
			for parents[n] != "" {
				n = parents[n]
			}
			roots[n] = true
		}
		for r := range roots {
			if !prog.IsAbstract(r) {
				t.Errorf("root %s is not abstract", r)
			}
			if prog.Instantiated(r) {
				t.Errorf("abstract root %s is instantiated", r)
			}
		}
	})
	t.Run("getters", func(t *testing.T) {
		p := synth.DefaultParams(17)
		p.Getters = true
		prog, _ := synth.Generate(p)
		n := 0
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				if len(m.Body) == 1 {
					if _, ok := m.Body[0].(cpp.ReadField); ok {
						n++
					}
				}
			}
		}
		if n == 0 {
			t.Error("no accessor methods generated with Getters set")
		}
	})
}

// TestGeneratedProgramsCompileAndValidate checks generator output across
// seeds.
func TestGeneratedProgramsCompileAndValidate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog, parents := synth.Generate(synth.DefaultParams(seed))
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		if len(parents) == 0 {
			t.Fatalf("seed %d: no hierarchy edges generated", seed)
		}
		if _, err := compiler.Compile(prog, compiler.DebugFriendlyOptions()); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
	}
}

// TestStructuralRecoveryOnRandomPrograms: with constructor cues retained,
// the structural analysis alone must recover the exact induced hierarchy of
// random programs.
func TestStructuralRecoveryOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		prog, _ := synth.Generate(synth.DefaultParams(seed))
		img, err := compiler.Compile(prog, compiler.DebugFriendlyOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Analyze(img.Strip(), core.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gt, err := eval.GroundTruthForest(img.Meta)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tt := range gt.Nodes() {
			wantP, wantOK := gt.Parent(tt)
			gotP, gotOK := res.Hierarchy.Parent(tt)
			if wantOK != gotOK || (wantOK && wantP != gotP) {
				t.Errorf("seed %d: type %s parent mismatch (want %v,%v got %v,%v)",
					seed, core.TypeNamer(img.Meta)(tt), wantP, wantOK, gotP, gotOK)
			}
		}
	}
}

// TestBehavioralRecoveryOnRandomPrograms: with all cues optimized away, the
// statistical analysis should still recover most parents of random
// programs via graded usage (Hypothesis 4.1 at scale).
func TestBehavioralRecoveryOnRandomPrograms(t *testing.T) {
	total, correct := 0, 0
	for seed := int64(100); seed < 104; seed++ {
		prog, _ := synth.Generate(synth.DefaultParams(seed))
		img, err := compiler.Compile(prog, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := core.Analyze(img.Strip(), core.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gt, err := eval.GroundTruthForest(img.Meta)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, tt := range gt.Nodes() {
			wantP, wantOK := gt.Parent(tt)
			gotP, gotOK := res.Hierarchy.Parent(tt)
			total++
			if wantOK == gotOK && (!wantOK || wantP == gotP) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("no types analyzed")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("behavioral parent accuracy %.2f (%d/%d) below 0.8", acc, correct, total)
	}
	t.Logf("behavioral parent accuracy: %.3f (%d/%d)", acc, correct, total)
}
