// Package vtable discovers binary types in a stripped image. Following the
// paper (§1, "binary types are represented as virtual function tables") and
// standard practice (Marx, OOAnalyzer), a vtable is a code-referenced run of
// consecutive function pointers in read-only data: the reference comes from
// the constructor's vtable-pointer install, and the run ends at the first
// word that is not a function entry or at the start of the next referenced
// table.
package vtable

import (
	"fmt"
	"sort"

	"repro/internal/disasm"
	"repro/internal/image"
	"repro/internal/ir"
)

// VTable is one discovered virtual function table.
type VTable struct {
	// Addr is the table's address in rodata.
	Addr uint64
	// Slots holds the function entry addresses, in slot order.
	Slots []uint64
}

// NumSlots returns the number of virtual function slots.
func (v *VTable) NumSlots() int { return len(v.Slots) }

// SlotSet returns the set of function addresses appearing in the table.
func (v *VTable) SlotSet() map[uint64]bool {
	s := make(map[uint64]bool, len(v.Slots))
	for _, f := range v.Slots {
		s[f] = true
	}
	return s
}

// String renders the table compactly.
func (v *VTable) String() string {
	return fmt.Sprintf("vtable@0x%x (%d slots)", v.Addr, len(v.Slots))
}

// Discover finds all vtables in the image given its decoded functions.
func Discover(img *image.Image, fns []*ir.Function) []*VTable {
	refs := disasm.CodeRefs(img, fns)
	refSet := make(map[uint64]bool, len(refs))
	for _, r := range refs {
		refSet[r] = true
	}
	isFuncEntry := func(a uint64) bool { return img.IsEntry(a) }

	var out []*VTable
	for _, start := range refs {
		if start%8 != 0 {
			continue
		}
		var slots []uint64
		for a := start; ; a += 8 {
			if a != start && refSet[a] {
				break // next referenced table begins here
			}
			w, ok := img.ReadRodataWord(a)
			if !ok || !isFuncEntry(w) {
				break
			}
			slots = append(slots, w)
		}
		if len(slots) == 0 {
			continue // referenced rodata that is not a function-pointer table
		}
		out = append(out, &VTable{Addr: start, Slots: slots})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ByAddr indexes the tables by address.
func ByAddr(vts []*VTable) map[uint64]*VTable {
	m := make(map[uint64]*VTable, len(vts))
	for _, v := range vts {
		m[v.Addr] = v
	}
	return m
}
