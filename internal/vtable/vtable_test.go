package vtable

import (
	"encoding/binary"
	"testing"

	"repro/internal/image"
	"repro/internal/ir"
)

// handImage builds an image by hand: two functions, rodata holding one
// referenced two-slot vtable, one referenced non-table word, and one
// unreferenced table.
func handImage() *image.Image {
	fnA := image.CodeBase
	var code []byte
	emit := func(in ir.Inst) {
		var b [ir.InstSize]byte
		in.Encode(b[:])
		code = append(code, b[:]...)
	}
	vt1 := image.RodataBase
	junk := image.RodataBase + 24
	// Function A references vt1 and the junk word, then returns.
	emit(ir.Inst{Op: ir.OpLea, Rd: 8, Imm: vt1})
	emit(ir.Inst{Op: ir.OpLea, Rd: 9, Imm: junk})
	emit(ir.Inst{Op: ir.OpRet})
	fnB := image.CodeBase + uint64(len(code))
	emit(ir.Inst{Op: ir.OpRet})

	rodata := make([]byte, 48)
	binary.LittleEndian.PutUint64(rodata[0:], fnA)  // vt1[0]
	binary.LittleEndian.PutUint64(rodata[8:], fnB)  // vt1[1]
	binary.LittleEndian.PutUint64(rodata[16:], 0)   // separator
	binary.LittleEndian.PutUint64(rodata[24:], 42)  // junk (referenced, not a table)
	binary.LittleEndian.PutUint64(rodata[32:], fnA) // unreferenced table
	binary.LittleEndian.PutUint64(rodata[40:], fnB)

	return &image.Image{
		Name: "hand", Code: code, Rodata: rodata,
		Entries: []uint64{fnA, fnB},
		Imports: map[uint64]string{},
	}
}

func TestDiscoverFindsReferencedTables(t *testing.T) {
	img := handImage()
	fns := []*ir.Function{}
	for _, e := range img.Entries {
		f := &ir.Function{Entry: e}
		start, end, _ := img.FuncBounds(e)
		for a := start; a < end; a += ir.InstSize {
			in, err := ir.Decode(img.Code[a-image.CodeBase : a-image.CodeBase+ir.InstSize])
			if err != nil {
				t.Fatal(err)
			}
			f.Insts = append(f.Insts, in)
		}
		fns = append(fns, f)
	}
	vts := Discover(img, fns)
	if len(vts) != 1 {
		t.Fatalf("discovered %d tables, want exactly the referenced one: %v", len(vts), vts)
	}
	if vts[0].Addr != image.RodataBase || vts[0].NumSlots() != 2 {
		t.Fatalf("wrong table: %v", vts[0])
	}
	if !vts[0].SlotSet()[img.Entries[1]] {
		t.Error("SlotSet missing function B")
	}
}

func TestRunStopsAtNextReference(t *testing.T) {
	// If two adjacent tables are both referenced, the first run must stop
	// where the second begins.
	fnA := image.CodeBase
	var code []byte
	emit := func(in ir.Inst) {
		var b [ir.InstSize]byte
		in.Encode(b[:])
		code = append(code, b[:]...)
	}
	vt1 := image.RodataBase
	vt2 := image.RodataBase + 8
	emit(ir.Inst{Op: ir.OpLea, Rd: 8, Imm: vt1})
	emit(ir.Inst{Op: ir.OpLea, Rd: 9, Imm: vt2})
	emit(ir.Inst{Op: ir.OpRet})
	rodata := make([]byte, 16)
	binary.LittleEndian.PutUint64(rodata[0:], fnA)
	binary.LittleEndian.PutUint64(rodata[8:], fnA)
	img := &image.Image{Name: "adj", Code: code, Rodata: rodata,
		Entries: []uint64{fnA}, Imports: map[uint64]string{}}
	f := &ir.Function{Entry: fnA}
	for i := 0; i < 3; i++ {
		in, _ := ir.Decode(img.Code[i*ir.InstSize : (i+1)*ir.InstSize])
		f.Insts = append(f.Insts, in)
	}
	vts := Discover(img, []*ir.Function{f})
	if len(vts) != 2 || vts[0].NumSlots() != 1 || vts[1].NumSlots() != 1 {
		t.Fatalf("adjacent referenced tables not split: %v", vts)
	}
}
