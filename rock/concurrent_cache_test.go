package rock

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentAnalyzeSharedCacheDir: N goroutines analyzing the SAME
// binary against ONE cache directory — the daemon's steady state, and
// what happens when several CLI invocations share a -cache. Every
// analysis must succeed with an identical report, the directory must end
// up with exactly one readable snapshot for the image, and no .rsnap-*
// temp files may survive the races.
func TestConcurrentAnalyzeSharedCacheDir(t *testing.T) {
	dir := t.TempDir()
	bin := motivatingBinary(t)
	opts := Options{Workers: 2, CacheDir: dir}

	const n = 8
	var wg sync.WaitGroup
	reports := make([]*Report, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = Analyze(bin, opts)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		reports[i].Stats = nil // wall times differ run to run
		if !reflect.DeepEqual(reports[i].Types, reports[0].Types) ||
			!reflect.DeepEqual(reports[i].Edges, reports[0].Edges) ||
			!reflect.DeepEqual(reports[i].Families, reports[0].Families) {
			t.Fatalf("goroutine %d diverged from goroutine 0", i)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".rsnap-") {
			t.Fatalf("leftover temp file %s after racing analyses", e.Name())
		}
		if filepath.Ext(e.Name()) == ".rsnap" {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots for one image, want 1", snaps)
	}

	// The survivors' snapshot is warm for the next analysis.
	rep, err := Analyze(bin, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotReuse == 0 {
		t.Fatal("post-race analysis did not reuse the snapshot")
	}
}
