package rock

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// CorpusOptions configures a batch analysis over many images. The
// embedded Options apply to every image; Workers there is the capacity of
// the ONE shared worker pool all analyses draw from (not a per-image
// bound).
type CorpusOptions struct {
	Options
	// MaxInFlight bounds how many cold images are analyzed concurrently.
	// 0 defaults to Workers.
	MaxInFlight int
	// SoftMemBytes, when non-zero, is a corpus-wide soft heap ceiling: new
	// cold analyses are not admitted while the live heap sits above it and
	// something is already running. At least one image is always in
	// flight, so the ceiling throttles but never wedges the batch.
	SoftMemBytes uint64
	// OnResult, when non-nil, streams each image's outcome as it completes
	// (completion order, serialized calls) — for progress display. The
	// final CorpusReport is always in input order regardless.
	OnResult func(CorpusItem)
	// Observe attaches a fresh Observer to every image's analysis, so each
	// CorpusItem (and its Report) carries per-stage Stats. Off by default —
	// the unobserved batch pays nothing.
	Observe bool
	// Trace, when non-nil, additionally draws every image's stages and
	// fan-out helpers as chrome-tracing spans on the shared sink (each
	// image on its own lane, so corpus scheduling is visible in Perfetto).
	// Implies Observe for the images' buses.
	Trace *Trace
}

// CorpusItem is one image's outcome within a batch.
type CorpusItem struct {
	// Index is the image's position in the input slice.
	Index int
	// Report is the per-image analysis report; nil when Err is set.
	Report *Report
	// Err is this image's failure (other images are unaffected), or the
	// context error if cancellation aborted the image.
	Err error
	// Warm reports the image restored fully from its snapshot and bypassed
	// the analysis queue.
	Warm bool
	// Wait is how long the image queued (admission, memory gate, pool
	// token) before its analysis started.
	Wait time.Duration
	// Stats is the image's per-stage observability record; nil unless
	// CorpusOptions.Observe (or Trace) was set. Same pointer as
	// Report.Stats.
	Stats *Stats
}

// CorpusReport aggregates a finished batch.
type CorpusReport struct {
	// Items holds the per-image outcomes in input order — identical to
	// analyzing each image alone, for every worker count.
	Items []CorpusItem
	// PeakHeap is the highest live-heap sample observed during the batch.
	PeakHeap uint64
	// Warm and Cold count images per admission path.
	Warm, Cold int
}

// AnalyzeCorpus analyzes many images as one batch over a shared bounded
// worker pool (see internal/corpus): cross-image admission scheduling,
// cache-aware warm bypass (with a CacheDir, images whose snapshots probe
// fully warm decode immediately instead of queueing), shared query
// scratch across analyses, and an optional soft memory ceiling. Per-image
// results are deep-equal to AnalyzeImage run sequentially; the returned
// error is non-nil only when ctx was canceled.
func AnalyzeCorpus(ctx context.Context, images []*image.Image, opts CorpusOptions) (*CorpusReport, error) {
	cfg, err := config(opts.Options)
	if err != nil {
		return nil, err
	}
	n := len(images)
	metas := make([]*image.Metadata, n)
	stripped := make([]*image.Image, n)
	for i, img := range images {
		metas[i] = img.Meta
		stripped[i] = img
		if img.Meta != nil {
			stripped[i] = img.Strip()
		}
	}
	scratch := slm.NewScratchPool()
	ch, wait := corpus.Stream(ctx, n,
		corpus.Options{
			Workers:      opts.Workers,
			MaxInFlight:  opts.MaxInFlight,
			SoftMemBytes: opts.SoftMemBytes,
		},
		func(i int) bool {
			return core.ProbeSnapshot(stripped[i], cfg) == snapshot.LevelHierarchy
		},
		func(ctx context.Context, i int, sh *pool.Shared) (*Report, error) {
			c := cfg
			c.Pool = sh
			c.Scratch = scratch
			if opts.Observe || opts.Trace != nil {
				bus := obs.NewBus()
				if opts.Trace != nil {
					// Each image's stage spans draw on a lane of its own for
					// the image's duration; a released lane is reused, so the
					// trace's thread count tracks in-flight images, not n.
					bus.Trace = opts.Trace
					bus.Lane = opts.Trace.AcquireLane()
					defer opts.Trace.ReleaseLane(bus.Lane)
					sp := bus.Span(fmt.Sprintf("image %d", i))
					defer sp.End()
				}
				c.Obs = bus
			}
			res, err := core.AnalyzeContext(ctx, stripped[i], c)
			if err != nil {
				return nil, err
			}
			rep := buildReport(res, metas[i])
			rep.Stats = c.Obs.Report() // nil-safe: unobserved batches stay nil
			return rep, nil
		})
	for it := range ch {
		if opts.OnResult != nil {
			opts.OnResult(corpusItem(it))
		}
	}
	items, stats, err := wait()
	if err != nil {
		return nil, err
	}
	rep := &CorpusReport{
		Items:    make([]CorpusItem, n),
		PeakHeap: stats.PeakHeap,
		Warm:     stats.Warm,
		Cold:     stats.Cold,
	}
	for i, it := range items {
		rep.Items[i] = corpusItem(it)
	}
	return rep, nil
}

// corpusItem translates a scheduler outcome into the public form.
func corpusItem(it corpus.Item[*Report]) CorpusItem {
	ci := CorpusItem{Index: it.Index, Report: it.Value, Err: it.Err, Warm: it.Warm, Wait: it.Wait}
	if it.Value != nil {
		ci.Stats = it.Value.Stats
	}
	return ci
}
