package rock

import (
	"context"
	"os"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/image"
)

func buildSuite(t *testing.T) []*image.Image {
	t.Helper()
	var imgs []*image.Image
	for _, b := range bench.All() {
		img, meta, err := b.Build()
		if err != nil {
			t.Fatalf("build %s: %v", b.Name, err)
		}
		img.Meta = meta // AnalyzeCorpus strips; names decorate the reports
		imgs = append(imgs, img)
	}
	return imgs
}

// TestAnalyzeCorpusMatchesSequential: the batch engine's Reports are
// deep-equal to AnalyzeImage run one image at a time, for a serial pool
// and a contended one.
func TestAnalyzeCorpusMatchesSequential(t *testing.T) {
	imgs := buildSuite(t)
	want := make([]*Report, len(imgs))
	for i, img := range imgs {
		rep, err := AnalyzeImage(img, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for _, workers := range []int{1, 8} {
		var streamed int
		var mu sync.Mutex
		got, err := AnalyzeCorpus(context.Background(), imgs, CorpusOptions{
			Options: Options{Workers: workers},
			OnResult: func(CorpusItem) {
				mu.Lock()
				streamed++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if streamed != len(imgs) {
			t.Fatalf("workers=%d: streamed %d of %d results", workers, streamed, len(imgs))
		}
		if got.Cold != len(imgs) || got.Warm != 0 {
			t.Fatalf("workers=%d: cacheless corpus classified %d warm", workers, got.Warm)
		}
		for i, it := range got.Items {
			if it.Err != nil {
				t.Fatalf("workers=%d: image %d: %v", workers, i, it.Err)
			}
			if !reflect.DeepEqual(it.Report, want[i]) {
				t.Errorf("workers=%d: image %d report diverged from sequential AnalyzeImage", workers, i)
			}
		}
	}
}

// TestAnalyzeCorpusWarmBypass: with a populated snapshot cache, a second
// corpus pass classifies every image warm, bypasses the analysis queue,
// and still returns reports deep-equal to the cold pass.
func TestAnalyzeCorpusWarmBypass(t *testing.T) {
	imgs := buildSuite(t)
	cacheDir, err := os.MkdirTemp(t.TempDir(), "corpus-cache-")
	if err != nil {
		t.Fatal(err)
	}
	opts := CorpusOptions{Options: Options{Workers: 4, CacheDir: cacheDir}}
	cold, err := AnalyzeCorpus(context.Background(), imgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warm != 0 {
		t.Fatalf("cold pass classified %d images warm", cold.Warm)
	}
	warm, err := AnalyzeCorpus(context.Background(), imgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Warm != len(imgs) {
		t.Fatalf("warm pass classified only %d of %d images warm", warm.Warm, len(imgs))
	}
	for i := range imgs {
		if !warm.Items[i].Warm {
			t.Errorf("image %d not flagged warm", i)
		}
		// The provenance fields record HOW each run executed (warm runs
		// report their snapshot reuse level); everything the analysis
		// computed must be identical.
		w, c := *warm.Items[i].Report, *cold.Items[i].Report
		w.SnapshotReuse, c.SnapshotReuse = 0, 0
		if !reflect.DeepEqual(w, c) {
			t.Errorf("image %d warm report diverged from cold", i)
		}
	}
}

// TestAnalyzeCorpusCancellation: a canceled batch returns the context
// error rather than partial results.
func TestAnalyzeCorpusCancellation(t *testing.T) {
	imgs := buildSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCorpus(ctx, imgs, CorpusOptions{}); err == nil {
		t.Fatal("canceled corpus returned nil error")
	}
}
