package rock

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/disasm"
	"repro/internal/objtrace"
	"repro/internal/vtable"
)

// TestReportDeterminismAcrossWorkers is the core guard for the parallel
// pipeline: analyzing every Table 2 benchmark with Workers: 1 (the fully
// serial path) and Workers: 8 must produce deep-equal Reports — same
// types, families, candidate relations, edges, and multi-parent sets. The
// parallel stages write only to index-owned slots and are merged in a
// fixed order, so any divergence is a scheduling-dependent bug.
func TestReportDeterminismAcrossWorkers(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img, _, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			serial, err := AnalyzeImage(img, Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial analysis: %v", err)
			}
			parallel, err := AnalyzeImage(img, Options{Workers: 8})
			if err != nil {
				t.Fatalf("parallel analysis: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				diffReports(t, serial, parallel)
			}
		})
	}
}

// TestSynthDeterminismAcrossWorkers extends the worker-count guard beyond
// the 19 hand-written benchmarks to the procedurally generated adversarial
// grid: one config per generator shape, each under a different hard-case
// compiler mode, analyzed at Workers 1 vs 8.
func TestSynthDeterminismAcrossWorkers(t *testing.T) {
	names := []string{
		"deep/devirt",
		"wide/opt",
		"diamond/opt",
		"split/comdat",
		"interleaved/partial",
	}
	for _, name := range names {
		c := bench.SynthByName(name)
		if c == nil {
			t.Fatalf("unknown synth config %q", name)
		}
		t.Run(name, func(t *testing.T) {
			img, _, err := c.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			serial, err := AnalyzeImage(img, Options{Workers: 1})
			if err != nil {
				t.Fatalf("serial analysis: %v", err)
			}
			parallel, err := AnalyzeImage(img, Options{Workers: 8})
			if err != nil {
				t.Fatalf("parallel analysis: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				diffReports(t, serial, parallel)
			}
		})
	}
}

// TestExtractDeterminismAcrossWorkers pins the newly parallel front end in
// isolation: objtrace.Extract with Workers: 1 and Workers: 8 must produce
// deep-equal Results — tracelet multisets, raw sequences, structural
// observations in function order, and function→vtable attributions — on
// every Table 2 benchmark. Per-function execution writes to index-owned
// slots and the merge (including cross-function dedup) runs serially in
// function order, so the output is byte-identical for any worker count.
func TestExtractDeterminismAcrossWorkers(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			img, _, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			fns, err := disasm.All(img)
			if err != nil {
				t.Fatalf("disasm: %v", err)
			}
			vts := vtable.Discover(img, fns)
			cfg := objtrace.DefaultConfig()
			cfg.Workers = 1
			serial := objtrace.Extract(img, fns, vts, cfg)
			cfg.Workers = 8
			parallel := objtrace.Extract(img, fns, vts, cfg)
			if reflect.DeepEqual(serial, parallel) {
				return
			}
			check := func(name string, a, b any) {
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s diverged between Workers:1 and Workers:8", name)
				}
			}
			check("PerType", serial.PerType, parallel.PerType)
			check("RawPerType", serial.RawPerType, parallel.RawPerType)
			check("Structs", serial.Structs, parallel.Structs)
			check("FnVTables", serial.FnVTables, parallel.FnVTables)
		})
	}
}

// diffReports reports which Report fields diverged, field by field, so a
// determinism regression names the guilty pipeline stage instead of
// printing two opaque structs.
func diffReports(t *testing.T, serial, parallel *Report) {
	t.Helper()
	check := func(name string, a, b any) {
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s diverged between Workers:1 and Workers:8\n serial:   %v\n parallel: %v", name, a, b)
		}
	}
	check("Types", serial.Types, parallel.Types)
	check("Families", serial.Families, parallel.Families)
	check("PossibleParents", serial.PossibleParents, parallel.PossibleParents)
	check("StructurallyResolved", serial.StructurallyResolved, parallel.StructurallyResolved)
	check("Edges", serial.Edges, parallel.Edges)
	check("MultiParents", serial.MultiParents, parallel.MultiParents)
	check("GroundTruthEdges", serial.GroundTruthEdges, parallel.GroundTruthEdges)
	if !t.Failed() {
		t.Errorf("reports diverged in an unexported field")
	}
}
