package rock

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/pool"
	"repro/internal/slm"
	"repro/internal/snapshot"
)

// Engine is a long-lived analyzer for serving workloads: unlike the
// one-shot Analyze/AnalyzeImage entry points, an Engine owns ONE shared
// bounded worker pool and one recycled query-scratch pool that every
// analysis it runs draws from, so concurrent requests compete for a fixed
// parallelism budget instead of each assuming it owns the machine —
// exactly the resource model of the corpus batch engine, but for an
// open-ended request stream instead of a fixed batch. The analysis daemon
// (internal/rockd) runs every submission through one Engine.
//
// An Engine is safe for concurrent use; results are identical to the
// one-shot entry points for every pool capacity and interleaving.
type Engine struct {
	cfg     core.Config
	pool    *pool.Shared
	scratch *slm.ScratchPool
	workers int
}

// NewEngine validates opts once and builds the shared execution state.
// Options.Observer is ignored — observation is per-request, passed to
// AnalyzeImage instead.
func NewEngine(opts Options) (*Engine, error) {
	opts.Observer = nil
	cfg, err := config(opts)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		cfg:     cfg,
		pool:    pool.NewShared(workers),
		scratch: slm.NewScratchPool(),
		workers: workers,
	}, nil
}

// Workers returns the capacity of the engine's shared worker pool.
func (e *Engine) Workers() int { return e.workers }

// ProbeWarm predicts, from the snapshot file's header alone, whether img
// would restore fully warm (no analysis, just a decode) under this
// engine's configuration. Advisory, like core.ProbeSnapshot: the real run
// still validates the checksummed snapshot.
func (e *Engine) ProbeWarm(img *image.Image) bool {
	stripped := img
	if img.Meta != nil {
		stripped = img.Strip()
	}
	return core.ProbeSnapshot(stripped, e.cfg) == snapshot.LevelHierarchy
}

// AnalyzeImage analyzes one image on the engine's shared pool. Cold work
// holds one pool token for its duration — mirroring the corpus
// scheduler's cold lane, so the number of concurrently *running* analyses
// never exceeds the pool capacity — while a fully-warm image decodes
// token-free on the caller's goroutine (a decode is not an analysis).
// o, when non-nil, observes just this request; its Stats land in
// Report.Stats. Metadata, if present, is stripped before analysis and
// used only to decorate the report.
func (e *Engine) AnalyzeImage(ctx context.Context, img *image.Image, o *Observer) (*Report, error) {
	meta := img.Meta
	stripped := img
	if meta != nil {
		stripped = img.Strip()
	}
	c := e.cfg
	c.Pool = e.pool
	c.Scratch = e.scratch
	c.Obs = o
	if core.ProbeSnapshot(stripped, c) != snapshot.LevelHierarchy {
		if err := e.pool.Acquire(ctx); err != nil {
			return nil, err
		}
		defer e.pool.Release()
	}
	res, err := core.AnalyzeContext(ctx, stripped, c)
	if err != nil {
		return nil, err
	}
	rep := buildReport(res, meta)
	rep.Stats = o.Report() // nil-safe: unobserved requests stay nil
	return rep, nil
}
