// Package rock is the public API of the Rock class-hierarchy reconstructor
// (Katz, Rinetzky, Yahav — "Statistical Reconstruction of Class Hierarchies
// in Binaries", ASPLOS 2018).
//
// Given a serialized binary image (see the repository's image format), Rock
// discovers the binary types (virtual function tables), partitions them
// into type families with a structural analysis, trains one statistical
// language model per type from statically extracted object tracelets, and
// reconstructs the most likely class hierarchy per family by solving a
// minimum-weight spanning arborescence over Kullback–Leibler distances
// between the models. After training, each model is frozen into a flat,
// allocation-free trie (internal/slm.Frozen) and the entire distance sweep
// queries the frozen forms; the frozen kernel is bit-identical to the
// training representation, so this is purely a performance property.
//
// The analysis never consumes names or ground truth: if the input image
// carries metadata (a ground-truth side channel produced by the bundled
// compiler), Rock analyzes a stripped copy and uses the metadata only to
// decorate the report with display names and reference edges.
package rock

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/image"
	"repro/internal/objtrace"
	"repro/internal/obs"
	"repro/internal/slm"
)

// Observer is a per-analysis observability bus: it collects per-stage
// wall times, allocation estimates, cache-hit attribution, and domain
// counters (vtables found, tracelets extracted, edges pruned, ...), and —
// with a Trace attached — chrome-tracing spans. One Observer observes one
// analysis; create one with NewObserver, pass it in Options.Observer, and
// read Report.Stats (or call its Report method) afterwards. Results are
// never affected by observation.
type Observer = obs.Bus

// Stats is the machine-readable per-stage record an Observer collects.
type Stats = obs.Report

// Trace is a chrome-tracing (Perfetto-loadable) span sink. One Trace may
// be shared by many Observers — the corpus engine draws every image on
// its own lane — and is serialized with WriteTo/WriteFile.
type Trace = obs.Trace

// NewObserver returns an empty enabled Observer.
func NewObserver() *Observer { return obs.NewBus() }

// NewTrace returns an empty Trace whose epoch is now.
func NewTrace() *Trace { return obs.NewTrace() }

// Options configures an analysis. The zero value selects the paper's
// defaults (SLM depth 2, tracelet window 7, DKL metric, behavioral analysis
// enabled).
type Options struct {
	// SLMDepth is the maximum order of the per-type language models.
	SLMDepth int
	// Window is the object-tracelet length bound.
	Window int
	// Metric selects the pairwise distance: "kl" (default),
	// "js-divergence", or "js-distance".
	Metric string
	// StructuralOnly disables the behavioral analysis, reproducing the
	// paper's "without SLMs" baseline: only type families and the
	// possible-parents relation are reported.
	StructuralOnly bool
	// DenseDistances restores the full n×n per-family pairwise distance
	// matrix instead of the default sparse sweep, which reduces only the
	// structurally-admissible candidate pairs the arborescence can use.
	// The reconstructed hierarchy is unaffected; dense mode exists for
	// reporting and diagnostics that read every pairwise distance, at
	// quadratic cost per family.
	DenseDistances bool
	// Workers bounds the analysis concurrency (tracelet extraction, SLM
	// training, pairwise distance matrices, per-family arborescences).
	// 0 uses all CPUs (runtime.GOMAXPROCS); 1 runs fully serially. The
	// Report is identical for every value.
	Workers int
	// CacheDir, when non-empty, enables the content-addressed snapshot
	// cache: analysis artifacts are persisted under this directory keyed
	// by the image's content digest and config fingerprints, and repeat
	// analyses of the same binary reuse every stage whose configuration
	// is unchanged. The directory must exist. The Report of a warm run is
	// identical to a cold one.
	CacheDir string
	// Invalidate caps snapshot reuse for a cached run: "" or "none" reuses
	// everything valid, "hierarchy" recomputes distances and
	// arborescences, "models" also retrains the SLMs, and "all" forces a
	// fully cold run (rewriting the cache).
	Invalidate string
	// IncrementalFrom names a prior version's snapshot (.rsnap) to diff
	// the analysis against: functions, models, and families whose inputs
	// are provably unchanged since that snapshot are reused instead of
	// recomputed. Empty with CacheDir set auto-discovers the nearest
	// prior of the same image name in the cache directory. The Report is
	// identical to a cold run either way.
	IncrementalFrom string
	// Evidence selects the edge-evidence providers whose scores are fused
	// into the hierarchy solve, as a comma-separated list: "slm" (the
	// paper's behavioral divergence sweep), "subtype" (the
	// constraint-based structural subtyping scorer), or "slm,subtype".
	// Empty selects the default SLM-only configuration.
	Evidence string
	// FuseWeights overrides per-provider fusion weights as a
	// comma-separated "name=weight" list, e.g. "slm=1,subtype=5".
	// Providers absent from the list keep their defaults. Empty keeps
	// every default.
	FuseWeights string
	// Observer, when non-nil, records the analysis on an observability bus;
	// the collected Stats land in Report.Stats. Attach a Trace to the
	// Observer to additionally capture chrome-tracing spans. Observation
	// never changes results, and a nil Observer costs nothing.
	Observer *Observer
}

// Type describes one discovered binary type.
type Type struct {
	// VTable is the type's vtable address — its identity.
	VTable uint64
	// Slots is the number of virtual function slots.
	Slots int
	// Name is a display name from metadata, or "vt_0x..." for a stripped
	// input.
	Name string
	// Secondary marks a secondary (multiple-inheritance) subobject vtable.
	Secondary bool
}

// Edge is a child → parent link in a hierarchy.
type Edge struct {
	Child, Parent uint64
}

// Report is the analysis result.
type Report struct {
	// Types lists every discovered binary type, by ascending vtable address.
	Types []Type
	// Families partitions the vtable addresses into type families.
	Families [][]uint64
	// PossibleParents is the post-structural candidate relation.
	PossibleParents map[uint64][]uint64
	// StructurallyResolved reports whether the structural analysis alone
	// pinned down a single hierarchy (at most one candidate per type).
	StructurallyResolved bool
	// Edges is the reconstructed hierarchy (absent with StructuralOnly).
	Edges []Edge
	// MultiParents lists the parent sets chosen for multiple-inheritance
	// types (§5.3).
	MultiParents map[uint64][]uint64
	// GroundTruthEdges holds the metadata hierarchy when the input image
	// carried one (for the caller's convenience; never used by analysis).
	GroundTruthEdges []Edge
	// SnapshotReuse reports how much of a cached snapshot this run reused
	// (snapshot reuse levels 0..3; 3 means fully warm — the whole analysis
	// was restored from disk). Always 0 without a CacheDir.
	SnapshotReuse int
	// Incremental reports that the version-diff warm lane engaged: the
	// exact snapshot missed but a prior version of the same binary was
	// diffed against, reusing unchanged functions, models, and families.
	Incremental bool
	// Stats is the observability record of this analysis — per-stage wall
	// times, cache attribution, and domain counters. Nil unless
	// Options.Observer was set.
	Stats *Stats

	names map[uint64]string
}

// Analyze loads a serialized image and reconstructs its class hierarchy.
func Analyze(binary []byte, opts Options) (*Report, error) {
	return AnalyzeContext(context.Background(), binary, opts)
}

// AnalyzeContext is Analyze with cancellation: when ctx is canceled the
// in-flight stages drain and the analysis returns ctx.Err() promptly
// without writing a snapshot.
func AnalyzeContext(ctx context.Context, binary []byte, opts Options) (*Report, error) {
	img, err := image.Load(binary)
	if err != nil {
		return nil, err
	}
	return AnalyzeImageContext(ctx, img, opts)
}

// config translates the public Options into a pipeline configuration.
func config(opts Options) (core.Config, error) {
	cfg := core.DefaultConfig()
	if opts.SLMDepth > 0 {
		cfg.SLMDepth = opts.SLMDepth
	}
	if opts.Window > 0 {
		cfg.Trace = objtrace.DefaultConfig()
		cfg.Trace.Window = opts.Window
	}
	switch strings.ToLower(opts.Metric) {
	case "", "kl", "dkl":
		cfg.Metric = slm.MetricKL
	case "js-divergence", "js":
		cfg.Metric = slm.MetricJSDivergence
	case "js-distance", "jsd":
		cfg.Metric = slm.MetricJSDistance
	default:
		return cfg, fmt.Errorf("rock: unknown metric %q", opts.Metric)
	}
	cfg.UseSLM = !opts.StructuralOnly
	cfg.DenseDist = opts.DenseDistances
	cfg.Workers = opts.Workers
	cfg.CacheDir = opts.CacheDir
	inv, err := core.ParseInvalidate(opts.Invalidate)
	if err != nil {
		return cfg, err
	}
	cfg.Invalidate = inv
	cfg.IncrementalFrom = opts.IncrementalFrom
	if cfg.Evidence, err = evidence.ParseNames(opts.Evidence); err != nil {
		return cfg, fmt.Errorf("rock: %w", err)
	}
	if cfg.FuseWeights, err = evidence.ParseWeights(opts.FuseWeights); err != nil {
		return cfg, fmt.Errorf("rock: %w", err)
	}
	cfg.Obs = opts.Observer
	return cfg, nil
}

// AnalyzeImage analyzes an already-loaded image. Metadata, if present, is
// stripped before analysis and used only to decorate the report.
func AnalyzeImage(img *image.Image, opts Options) (*Report, error) {
	return AnalyzeImageContext(context.Background(), img, opts)
}

// AnalyzeImageContext is AnalyzeImage with cancellation (see
// AnalyzeContext).
func AnalyzeImageContext(ctx context.Context, img *image.Image, opts Options) (*Report, error) {
	meta := img.Meta
	stripped := img
	if meta != nil {
		stripped = img.Strip()
	}
	cfg, err := config(opts)
	if err != nil {
		return nil, err
	}
	res, err := core.AnalyzeContext(ctx, stripped, cfg)
	if err != nil {
		return nil, err
	}
	rep := buildReport(res, meta)
	rep.Stats = opts.Observer.Report() // nil-safe: nil Observer, nil Stats
	return rep, nil
}

// buildReport decorates a pipeline result into the public Report.
func buildReport(res *core.Result, meta *image.Metadata) *Report {
	rep := &Report{
		PossibleParents:      map[uint64][]uint64{},
		MultiParents:         map[uint64][]uint64{},
		StructurallyResolved: res.Structural.Resolvable(),
		SnapshotReuse:        res.SnapshotReuse,
		Incremental:          res.Incremental != nil,
		names:                map[uint64]string{},
	}
	namer := core.TypeNamer(meta)
	for _, v := range res.VTables {
		t := Type{VTable: v.Addr, Slots: v.NumSlots(), Name: namer(v.Addr)}
		if meta != nil {
			if tm := meta.TypeByVTable(v.Addr); tm != nil {
				t.Secondary = tm.Secondary
			}
		}
		rep.names[v.Addr] = t.Name
		rep.Types = append(rep.Types, t)
	}
	for _, fam := range res.Structural.Families {
		rep.Families = append(rep.Families, append([]uint64(nil), fam...))
	}
	for c, ps := range res.Structural.PossibleParents {
		rep.PossibleParents[c] = append([]uint64(nil), ps...)
	}
	if res.Hierarchy != nil {
		for _, t := range res.Hierarchy.Nodes() {
			if p, ok := res.Hierarchy.Parent(t); ok {
				rep.Edges = append(rep.Edges, Edge{Child: t, Parent: p})
			}
		}
		sort.Slice(rep.Edges, func(i, j int) bool { return rep.Edges[i].Child < rep.Edges[j].Child })
	}
	for t, ps := range res.MultiParents {
		rep.MultiParents[t] = append([]uint64(nil), ps...)
	}
	if meta != nil {
		for _, tm := range meta.Types {
			if tm.Parent != 0 {
				rep.GroundTruthEdges = append(rep.GroundTruthEdges, Edge{Child: tm.VTable, Parent: tm.Parent})
			}
		}
		sort.Slice(rep.GroundTruthEdges, func(i, j int) bool {
			return rep.GroundTruthEdges[i].Child < rep.GroundTruthEdges[j].Child
		})
	}
	return rep
}

// Name returns the display name of a type.
func (r *Report) Name(vt uint64) string {
	if n, ok := r.names[vt]; ok {
		return n
	}
	return fmt.Sprintf("vt_0x%x", vt)
}

// HierarchyString renders the reconstructed forest as an indented tree.
func (r *Report) HierarchyString() string {
	parent := map[uint64]uint64{}
	for _, e := range r.Edges {
		parent[e.Child] = e.Parent
	}
	children := map[uint64][]uint64{}
	var roots []uint64
	for _, t := range r.Types {
		if p, ok := parent[t.VTable]; ok {
			children[p] = append(children[p], t.VTable)
		} else {
			roots = append(roots, t.VTable)
		}
	}
	var b strings.Builder
	var rec func(t uint64, depth int)
	rec = func(t uint64, depth int) {
		fmt.Fprintf(&b, "%s%s\n", strings.Repeat("  ", depth), r.Name(t))
		for _, c := range children[t] {
			rec(c, depth+1)
		}
	}
	for _, root := range roots {
		rec(root, 0)
	}
	return b.String()
}
