package rock

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/compiler"
)

func motivatingBinary(t *testing.T) []byte {
	t.Helper()
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestAnalyzeEndToEnd(t *testing.T) {
	rep, err := Analyze(motivatingBinary(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Types) != 3 || len(rep.Families) != 1 {
		t.Fatalf("types=%d families=%d", len(rep.Types), len(rep.Families))
	}
	if rep.StructurallyResolved {
		t.Error("motivating example must not be structurally resolvable")
	}
	// Both children under Stream.
	byName := map[string]uint64{}
	for _, ty := range rep.Types {
		byName[ty.Name] = ty.VTable
	}
	parents := map[uint64]uint64{}
	for _, e := range rep.Edges {
		parents[e.Child] = e.Parent
	}
	if parents[byName["ConfirmableStream"]] != byName["Stream"] ||
		parents[byName["FlushableStream"]] != byName["Stream"] {
		t.Errorf("wrong hierarchy: %v", rep.Edges)
	}
	if len(rep.GroundTruthEdges) != 2 {
		t.Errorf("ground truth edges = %v", rep.GroundTruthEdges)
	}
	if rep.HierarchyString() == "" {
		t.Error("empty hierarchy rendering")
	}
}

func TestStructuralOnlyMode(t *testing.T) {
	rep, err := Analyze(motivatingBinary(t), Options{StructuralOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 0 {
		t.Error("structural-only mode must not build a hierarchy")
	}
	if len(rep.PossibleParents) == 0 {
		t.Error("possible parents missing")
	}
}

func TestMetricSelection(t *testing.T) {
	bin := motivatingBinary(t)
	for _, m := range []string{"", "kl", "js-divergence", "js-distance", "JS", "jsd"} {
		if _, err := Analyze(bin, Options{Metric: m}); err != nil {
			t.Errorf("metric %q rejected: %v", m, err)
		}
	}
	if _, err := Analyze(bin, Options{Metric: "cosine"}); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestAnalyzeRejectsGarbage(t *testing.T) {
	if _, err := Analyze([]byte("not a binary"), Options{}); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestStrippedInputHasPlaceholderNames(t *testing.T) {
	img, err := compiler.Compile(bench.Motivating(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := img.Strip().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ty := range rep.Types {
		if ty.Name == "" || ty.Name[0] != 'v' { // vt_0x...
			t.Errorf("stripped input produced name %q", ty.Name)
		}
	}
	if len(rep.GroundTruthEdges) != 0 {
		t.Error("stripped input cannot have ground truth edges")
	}
}
